// Package energydb is an energy-aware relational database engine running
// on simulated, power-metered hardware — a from-scratch reproduction of
// the system envisioned by Harizopoulos, Meza, Shah and Ranganathan in
// "Energy Efficiency: The New Holy Grail of Data Management Systems
// Research" (CIDR 2009).
//
// The engine is real (SQL front end, cost-based optimizer, vectorised
// executor, compression, buffer pool, WAL); the hardware is a
// deterministic discrete-event simulation with calibrated 2008-era device
// models, so every query returns joules alongside rows:
//
//	db, _ := energydb.Open(energydb.Config{Server: energydb.SmallServer(4)})
//	db.Exec("CREATE TABLE t (a BIGINT, b DOUBLE)")
//	db.Exec("INSERT INTO t VALUES (1, 2.5)")
//	res, _ := db.Exec("SELECT a FROM t WHERE b > 1")
//	fmt.Println(res.Elapsed, res.Joules)
//
// The optimizer prices every plan in both seconds and joules; switch
// Config.Objective to MinEnergy to make it optimise the paper's way.
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured results.
package energydb

import (
	"energydb/internal/core"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/storage"
	"energydb/internal/table"
	"energydb/internal/tpch"
)

// Config selects the simulated hardware and engine policies.
type Config = core.Config

// DB is an open energy-aware database over one simulated server.
type DB = core.DB

// Result is a completed query with its energy account.
type Result = core.Result

// Open builds the simulated machine and an empty database on it.
func Open(cfg Config) (*DB, error) { return core.Open(cfg) }

// Optimizer objectives.
const (
	// MinTime optimises for speed, the classical objective.
	MinTime = opt.MinTime
	// MinEnergy optimises for joules, the paper's proposal.
	MinEnergy = opt.MinEnergy
	// MinEDP optimises the energy-delay product.
	MinEDP = opt.MinEDP
)

// Volume layouts.
const (
	// Striped is RAID-0.
	Striped = storage.Striped
	// RAID5 uses rotating parity with the classic write penalty.
	RAID5 = storage.RAID5
)

// Server specs from the device catalog.
var (
	// DL785 is the paper's Figure 1 machine (8x quad-core Opteron, 64 GB,
	// N 15K-RPM SCSI disks).
	DL785 = hw.DL785
	// ScanRig is the paper's Figure 2 machine (one 90 W CPU, three flash
	// SSDs totalling 5 W).
	ScanRig = hw.ScanRig
	// SmallServer is a modest 8-core box for examples and tests.
	SmallServer = hw.SmallServer
)

// Schema and column constructors for LoadTable users.
type (
	// Schema describes a relation.
	Schema = table.Schema
	// Table is an in-memory relation.
	Table = table.Table
	// Value is one typed datum.
	Value = table.Value
)

// NewSchema builds a schema from columns.
var NewSchema = table.NewSchema

// NewTable builds an empty in-memory table.
var NewTable = table.NewTable

// Column constructors.
var (
	Col  = table.Col
	ColW = table.ColW
)

// Value constructors.
var (
	IntVal     = table.IntVal
	FloatVal   = table.FloatVal
	StrVal     = table.StrVal
	DateVal    = table.DateVal
	DecimalVal = table.DecimalVal
)

// Column types.
const (
	Int64   = table.Int64
	Float64 = table.Float64
	String  = table.String
	Date    = table.Date
	Decimal = table.Decimal
)

// GenerateTPCH builds the deterministic TPC-H-like dataset at a scale
// factor; load its tables with DB.LoadTable.
func GenerateTPCH(sf float64, seed int64) map[string]*Table {
	return tpch.Generate(sf, seed).Tables
}

// TPCHQueries returns the named simplified TPC-H queries ("q1", "q3",
// "q5", "q6", "scan") in the engine's SQL dialect.
func TPCHQueries() map[string]string { return tpch.Queries() }
