// Package energydb is an energy-aware relational database engine running
// on simulated, power-metered hardware — a from-scratch reproduction of
// the system envisioned by Harizopoulos, Meza, Shah and Ranganathan in
// "Energy Efficiency: The New Holy Grail of Data Management Systems
// Research" (CIDR 2009).
//
// The engine is real (SQL front end, cost-based optimizer, vectorised
// executor, compression, buffer pool, WAL); the hardware is a
// deterministic discrete-event simulation with calibrated 2008-era device
// models, so every query returns joules alongside rows. Queries run
// through sessions: a Session is one client's serial statement stream,
// Prepare binds a statement once, and Query submits it to the engine's
// admission controller, which grants the query its degree of parallelism
// from the cores that are free at admission time and queues arrivals when
// the box is saturated. Results stream back through Rows:
//
//	db, _ := energydb.Open(energydb.Config{Server: energydb.SmallServer(4)})
//	db.Exec("CREATE TABLE t (a BIGINT, b DOUBLE)")
//	db.Exec("INSERT INTO t VALUES (1, 2.5), (2, 0.5)")
//
//	sess := db.Session()
//	stmt, _ := sess.Prepare("SELECT a FROM t WHERE b > 1")
//	rows, _ := stmt.Query()
//	for rows.Next() {
//		_ = rows.Batch() // vectorised batches, as the query produces them
//	}
//	rows.Close()
//
//	res, _ := stmt.Query() // prepared statements re-execute cheaply
//	r, _ := res.Collect()  // or materialise everything at once
//	fmt.Println(r.Elapsed, r.Joules, r.Attributed, r.Granted)
//
// Because queries from concurrent sessions overlap on one metered server,
// each Result carries two energy numbers: Joules is the whole-server
// meter delta over the query's window (meaningful when it runs alone),
// and Attributed is the query's own share — the marginal energy its
// processes charged on the devices plus an idle-floor share proportional
// to its wall-clock overlap — which sums to the wall meter across all
// concurrent queries by construction. DB.Exec remains the one-statement
// convenience wrapper over a session, and DB.Drain runs every submitted
// statement to completion for multi-stream drivers.
//
// The optimizer prices every plan in both seconds and joules; switch
// Config.Objective to MinEnergy to make it optimise the paper's way.
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured results.
package energydb

import (
	"energydb/internal/core"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/storage"
	"energydb/internal/table"
	"energydb/internal/tpch"
)

// Config selects the simulated hardware and engine policies.
type Config = core.Config

// DB is an open energy-aware database over one simulated server.
type DB = core.DB

// Result is a completed query with its energy account.
type Result = core.Result

// Session is one client's serial statement stream; concurrency comes
// from opening several sessions on one DB.
type Session = core.Session

// Stmt is a prepared SELECT, planned per admission grant.
type Stmt = core.Stmt

// Rows is a submitted statement's streaming result and, on completion,
// its attributed energy account.
type Rows = core.Rows

// Open builds the simulated machine and an empty database on it.
func Open(cfg Config) (*DB, error) { return core.Open(cfg) }

// Optimizer objectives.
const (
	// MinTime optimises for speed, the classical objective.
	MinTime = opt.MinTime
	// MinEnergy optimises for joules, the paper's proposal.
	MinEnergy = opt.MinEnergy
	// MinEDP optimises the energy-delay product.
	MinEDP = opt.MinEDP
)

// Volume layouts.
const (
	// Striped is RAID-0.
	Striped = storage.Striped
	// RAID5 uses rotating parity with the classic write penalty.
	RAID5 = storage.RAID5
)

// Server specs from the device catalog.
var (
	// DL785 is the paper's Figure 1 machine (8x quad-core Opteron, 64 GB,
	// N 15K-RPM SCSI disks).
	DL785 = hw.DL785
	// ScanRig is the paper's Figure 2 machine (one 90 W CPU, three flash
	// SSDs totalling 5 W).
	ScanRig = hw.ScanRig
	// SmallServer is a modest 8-core box for examples and tests.
	SmallServer = hw.SmallServer
)

// Schema and column constructors for LoadTable users.
type (
	// Schema describes a relation.
	Schema = table.Schema
	// Table is an in-memory relation.
	Table = table.Table
	// Value is one typed datum.
	Value = table.Value
)

// NewSchema builds a schema from columns.
var NewSchema = table.NewSchema

// NewTable builds an empty in-memory table.
var NewTable = table.NewTable

// Column constructors.
var (
	Col  = table.Col
	ColW = table.ColW
)

// Value constructors.
var (
	IntVal     = table.IntVal
	FloatVal   = table.FloatVal
	StrVal     = table.StrVal
	DateVal    = table.DateVal
	DecimalVal = table.DecimalVal
)

// Column types.
const (
	Int64   = table.Int64
	Float64 = table.Float64
	String  = table.String
	Date    = table.Date
	Decimal = table.Decimal
)

// GenerateTPCH builds the deterministic TPC-H-like dataset at a scale
// factor; load its tables with DB.LoadTable.
func GenerateTPCH(sf float64, seed int64) map[string]*Table {
	return tpch.Generate(sf, seed).Tables
}

// TPCHQueries returns the named simplified TPC-H queries ("q1", "q3",
// "q5", "q6", "scan") in the engine's SQL dialect.
func TPCHQueries() map[string]string { return tpch.Queries() }
