module energydb

go 1.24
