// The paper's Figure 1 story: sweep the number of disks under a TPC-H
// throughput test and find the energy-efficiency knee at an interior
// configuration — the fastest system is not the most efficient one.
package main

import (
	"fmt"
	"log"

	"energydb/internal/bench"
)

func main() {
	res, err := bench.RunFigure1(bench.Figure1Config{SF: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println()
	fmt.Printf("Every disk beyond %d adds more watts than it removes seconds.\n", res.Best().Disks)
}
