// The paper's Figure 1 story, told on the session API: concurrent client
// sessions submit the TPC-H mix, the admission controller grants each
// query its parallelism from the cores that are free, and every query
// comes back with an attributed energy bill that sums to the wall meter.
// Then the classic sweep: re-partition the database across more and more
// disks and find the energy-efficiency knee at an interior configuration
// — the fastest system is not the most efficient one.
package main

import (
	"fmt"
	"log"

	"energydb/internal/bench"
)

func main() {
	// Act 1: eight concurrent sessions on one small server — per-query
	// energy attribution under admission-controlled concurrency.
	st, err := bench.RunStreams(bench.StreamsConfig{Streams: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(st.Render())
	fmt.Println()

	// Act 2: the Figure 1 disk-count sweep, 24 such streams per point.
	res, err := bench.RunFigure1(bench.Figure1Config{SF: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println()
	fmt.Printf("Every disk beyond %d adds more watts than it removes seconds.\n", res.Best().Disks)
}
