// The §4.1 story: the same SQL compiles to different physical plans under
// the time and energy objectives — the optimizer's cost model is dual.
package main

import (
	"fmt"
	"log"

	"energydb"
)

func main() {
	const q = "SELECT SUM(l_orderkey) AS s FROM lineitem"

	for _, obj := range []struct {
		name string
		o    int
	}{{"time", 0}, {"energy", 1}} {
		cfg := energydb.Config{Server: energydb.ScanRig()}
		if obj.o == 1 {
			cfg.Objective = energydb.MinEnergy
		}
		db, err := energydb.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range energydb.GenerateTPCH(0.01, 42) {
			if err := db.LoadTable(t); err != nil {
				log.Fatal(err)
			}
		}
		plan, err := db.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== objective: %s\n%s\n", obj.name, plan.Explain())
	}
	fmt.Println("The time objective picks the compressed placement (less I/O, scan is")
	fmt.Println("I/O-bound); the energy objective picks raw (decompression joules on a")
	fmt.Println("90 W CPU cost more than the flash I/O they save).")
}
