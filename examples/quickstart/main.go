// Quickstart: open an energy-aware database on a simulated server, create
// a table, and watch every query return joules alongside rows.
package main

import (
	"fmt"
	"log"

	"energydb"
)

func main() {
	db, err := energydb.Open(energydb.Config{
		Server:    energydb.SmallServer(4), // 8 cores, 4 x 15K disks, metered
		Objective: energydb.MinTime,
	})
	if err != nil {
		log.Fatal(err)
	}

	statements := []string{
		"CREATE TABLE sensors (id BIGINT, room VARCHAR(12), temp DOUBLE, day DATE)",
		`INSERT INTO sensors VALUES
			(1, 'lab', 21.5, DATE '2009-01-04'),
			(2, 'lab', 22.0, DATE '2009-01-05'),
			(3, 'office', 19.5, DATE '2009-01-04'),
			(4, 'server-room', 31.0, DATE '2009-01-05')`,
	}
	for _, s := range statements {
		if _, err := db.Exec(s); err != nil {
			log.Fatal(err)
		}
	}

	res, err := db.Exec(`
		SELECT room, COUNT(*) AS n, AVG(temp) AS avg_temp
		FROM sensors
		GROUP BY room
		ORDER BY avg_temp DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Rows.Rows(); i++ {
		row := res.Rows.Slice(i, i+1).Row(0)
		fmt.Printf("%-12s n=%s avg=%s\n", row[0].String(), row[1].String(), row[2].String())
	}
	fmt.Printf("\nsimulated elapsed: %v   energy: %v   efficiency: %.3g rows/J\n",
		res.Elapsed, res.Joules, float64(res.Efficiency()))
	fmt.Println("\nper-component breakdown:")
	fmt.Print(res.Report)
}
