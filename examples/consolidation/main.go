// The §4.2 story: the admission controller consolidates work in time
// (holding arrivals in a window so disks can spin down between bursts)
// and the cluster layer consolidates it in space (packing tenants onto
// fewer nodes so whole servers can power down).
package main

import (
	"fmt"
	"log"

	"energydb/internal/bench"
)

func main() {
	c, err := bench.RunConsolidation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Render())
	fmt.Println()

	cl, err := bench.RunCluster()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cl.Render())
	fmt.Println()
	fmt.Println("Admission windows buy disk spin-downs with latency; packing tenants onto")
	fmt.Println("fewer nodes buys whole-server power-downs with migration energy.")
}
