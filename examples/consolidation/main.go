// The §4.2 story: consolidating work in time (admission batching) and in
// space (cluster packing) creates idle periods long enough to power
// hardware down.
package main

import (
	"fmt"
	"log"

	"energydb/internal/bench"
)

func main() {
	c, err := bench.RunConsolidation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c.Render())
	fmt.Println()

	cl, err := bench.RunCluster()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cl.Render())
	fmt.Println()
	fmt.Println("Batching buys disk spin-downs with latency; packing tenants onto fewer")
	fmt.Println("nodes buys whole-server power-downs with migration energy.")
}
