// The paper's Figure 2 story: on a 90 W CPU fed by 5 W flash, compressing
// the table makes the scan faster and LESS energy-efficient at once.
package main

import (
	"fmt"
	"log"

	"energydb/internal/bench"
)

func main() {
	res, err := bench.RunFigure2(bench.Figure2Config{SF: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println()
	fmt.Println("Compression trades CPU cycles for disk bandwidth. Here the CPU is 18x")
	fmt.Println("hungrier than the flash array, so the faster plan burns more joules —")
	fmt.Println("optimizing for performance is not optimizing for energy.")
}
