// Package compress implements the column compression codecs the engine
// chooses among, each annotated with a CPU cost model (cycles per byte).
//
// Compression is the paper's flagship example of a software knob whose
// energy effect is counter-intuitive (Figure 2, §4.1): it "trades off CPU
// cycles for reduced bandwidth requirements", so on a 90 W CPU fed by 5 W
// flash it *costs* energy even while it halves runtime. The codecs here
// really compress real bytes — ratios are measured, not assumed — and the
// cost models are what the executor charges to the simulated CPU and what
// the optimizer's energy model reasons about.
package compress

import (
	"errors"
	"fmt"
)

// Codec transforms byte blocks. Implementations must be deterministic and
// self-contained per block (no cross-block state), so blocks can be decoded
// in any order.
type Codec interface {
	// Name is the registry key, e.g. "rle".
	Name() string
	// Encode appends the encoded form of src to dst and returns it.
	Encode(dst, src []byte) []byte
	// Decode appends the decoded form of src to dst and returns it.
	Decode(dst, src []byte) ([]byte, error)
	// Cost returns the codec's CPU cost model.
	Cost() CostModel
}

// CostModel gives the cycles charged per byte. Encode cost is per input
// (uncompressed) byte; decode cost is per output (uncompressed) byte, so
// both scale with the logical data size regardless of the achieved ratio.
type CostModel struct {
	EncodeCyclesPerByte float64
	DecodeCyclesPerByte float64
}

// ErrCorrupt is returned when encoded input cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt input")

// decodeBudget bounds how much output a decoder may produce for a given
// input size, so corrupt (or adversarial) blocks fail fast instead of
// allocating unboundedly. Real blocks never get near 8192x expansion.
func decodeBudget(srcLen int) int {
	b := 8192 * srcLen
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

var registry = map[string]Codec{}

func register(c Codec) Codec {
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
	return c
}

// ByName returns the registered codec with the given name.
func ByName(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names lists registered codec names (unordered).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// Ratio reports encoded/decoded size for src under c (1.0 = incompressible,
// smaller is better).
func Ratio(c Codec, src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	enc := c.Encode(nil, src)
	return float64(len(enc)) / float64(len(src))
}

// Raw is the identity codec: the "uncompressed" configuration.
var Raw Codec = register(rawCodec{})

type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }
func (rawCodec) Encode(dst, src []byte) []byte {
	return append(dst, src...)
}
func (rawCodec) Decode(dst, src []byte) ([]byte, error) {
	return append(dst, src...), nil
}
func (rawCodec) Cost() CostModel {
	return CostModel{EncodeCyclesPerByte: 0.2, DecodeCyclesPerByte: 0.2}
}

// putUvarint / uvarint are local varint helpers (LEB128, as in
// encoding/binary but append-based).
func putUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

func uvarint(src []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range src {
		if i == 10 {
			return 0, -1
		}
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}
