package compress

// RLE is a byte-level run-length codec: the stream is a sequence of
// (run length varint, value byte) pairs. Column-major integer data is full
// of long zero runs (high-order bytes), which is why RLE is a classic
// column-store codec despite its simplicity.
var RLE Codec = register(rleCodec{})

type rleCodec struct{}

func (rleCodec) Name() string { return "rle" }

func (rleCodec) Encode(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		dst = putUvarint(dst, uint64(j-i))
		dst = append(dst, src[i])
		i = j
	}
	return dst
}

func (rleCodec) Decode(dst, src []byte) ([]byte, error) {
	budget := decodeBudget(len(src))
	produced := 0
	for len(src) > 0 {
		n, k := uvarint(src)
		if k <= 0 || k >= len(src)+1 {
			return dst, ErrCorrupt
		}
		src = src[k:]
		if len(src) == 0 {
			return dst, ErrCorrupt
		}
		v := src[0]
		src = src[1:]
		if n == 0 || n > uint64(budget-produced) {
			return dst, ErrCorrupt
		}
		produced += int(n)
		for ; n > 0; n-- {
			dst = append(dst, v)
		}
	}
	return dst, nil
}

func (rleCodec) Cost() CostModel {
	return CostModel{EncodeCyclesPerByte: 1.5, DecodeCyclesPerByte: 0.8}
}

// Delta is an int64 delta + zigzag + varint codec for fixed-width 8-byte
// little-endian integer streams (sorted keys compress to ~1 byte/value).
// Inputs whose length is not a multiple of 8 keep a raw tail.
var Delta Codec = register(deltaCodec{})

type deltaCodec struct{}

func (deltaCodec) Name() string { return "delta" }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func le64(b []byte) int64 {
	return int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
}

func putLE64(dst []byte, v int64) []byte {
	u := uint64(v)
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func (deltaCodec) Encode(dst, src []byte) []byte {
	n := len(src) / 8
	tail := src[n*8:]
	dst = putUvarint(dst, uint64(n))
	var prev int64
	for i := 0; i < n; i++ {
		v := le64(src[i*8 : i*8+8])
		dst = putUvarint(dst, zigzag(v-prev))
		prev = v
	}
	dst = putUvarint(dst, uint64(len(tail)))
	return append(dst, tail...)
}

func (deltaCodec) Decode(dst, src []byte) ([]byte, error) {
	n, k := uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	var prev int64
	for i := uint64(0); i < n; i++ {
		u, k := uvarint(src)
		if k <= 0 {
			return dst, ErrCorrupt
		}
		src = src[k:]
		prev += unzigzag(u)
		dst = putLE64(dst, prev)
	}
	tn, k := uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	if uint64(len(src)) != tn {
		return dst, ErrCorrupt
	}
	return append(dst, src...), nil
}

func (deltaCodec) Cost() CostModel {
	return CostModel{EncodeCyclesPerByte: 2.2, DecodeCyclesPerByte: 1.6}
}

// Bitpack frame-of-reference packs int64 streams: per 128-value frame it
// stores the minimum and the bit width of offsets, then the packed bits.
var Bitpack Codec = register(bitpackCodec{})

type bitpackCodec struct{}

const bpFrame = 128

func (bitpackCodec) Name() string { return "bitpack" }

func (bitpackCodec) Encode(dst, src []byte) []byte {
	n := len(src) / 8
	tail := src[n*8:]
	dst = putUvarint(dst, uint64(n))
	for f := 0; f < n; f += bpFrame {
		hi := f + bpFrame
		if hi > n {
			hi = n
		}
		lo64 := le64(src[f*8 : f*8+8])
		maxOff := uint64(0)
		for i := f; i < hi; i++ {
			v := le64(src[i*8 : i*8+8])
			if v < lo64 {
				lo64 = v
			}
		}
		for i := f; i < hi; i++ {
			off := uint64(le64(src[i*8:i*8+8]) - lo64)
			if off > maxOff {
				maxOff = off
			}
		}
		width := 0
		for maxOff != 0 {
			width++
			maxOff >>= 1
		}
		dst = putUvarint(dst, zigzag(lo64))
		// Widths above 56 bits cannot be streamed through the 64-bit
		// accumulator without overflow; store such frames raw (width
		// sentinel 255). They are incompressible anyway.
		if width > 56 {
			dst = append(dst, 255)
			dst = append(dst, src[f*8:hi*8]...)
			continue
		}
		dst = append(dst, byte(width))
		var acc uint64
		var bits uint
		for i := f; i < hi; i++ {
			off := uint64(le64(src[i*8:i*8+8]) - lo64)
			acc |= off << bits
			bits += uint(width)
			for bits >= 8 {
				dst = append(dst, byte(acc))
				acc >>= 8
				bits -= 8
			}
		}
		if bits > 0 {
			dst = append(dst, byte(acc))
		}
	}
	dst = putUvarint(dst, uint64(len(tail)))
	return append(dst, tail...)
}

func (bitpackCodec) Decode(dst, src []byte) ([]byte, error) {
	n, k := uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	for f := uint64(0); f < n; f += bpFrame {
		hi := f + bpFrame
		if hi > n {
			hi = n
		}
		cnt := int(hi - f)
		zl, k := uvarint(src)
		if k <= 0 {
			return dst, ErrCorrupt
		}
		src = src[k:]
		lo := unzigzag(zl)
		if len(src) == 0 {
			return dst, ErrCorrupt
		}
		width := int(src[0])
		src = src[1:]
		if width == 255 { // raw frame
			if len(src) < cnt*8 {
				return dst, ErrCorrupt
			}
			dst = append(dst, src[:cnt*8]...)
			src = src[cnt*8:]
			continue
		}
		if width > 56 {
			return dst, ErrCorrupt
		}
		nbytes := (cnt*width + 7) / 8
		if len(src) < nbytes {
			return dst, ErrCorrupt
		}
		var acc uint64
		var bits uint
		bi := 0
		mask := uint64(1)<<uint(width) - 1
		if width == 64 {
			mask = ^uint64(0)
		}
		for i := 0; i < cnt; i++ {
			for bits < uint(width) {
				acc |= uint64(src[bi]) << bits
				bi++
				bits += 8
			}
			off := acc & mask
			acc >>= uint(width)
			bits -= uint(width)
			dst = putLE64(dst, lo+int64(off))
		}
		src = src[nbytes:]
	}
	tn, k := uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	if uint64(len(src)) != tn {
		return dst, ErrCorrupt
	}
	return append(dst, src...), nil
}

func (bitpackCodec) Cost() CostModel {
	return CostModel{EncodeCyclesPerByte: 2.0, DecodeCyclesPerByte: 1.2}
}
