package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func allCodecs() []Codec { return []Codec{Raw, RLE, Delta, Bitpack, Dict, LZ} }

func roundTrip(t *testing.T, c Codec, src []byte) {
	t.Helper()
	enc := c.Encode(nil, src)
	dec, err := c.Decode(nil, enc)
	if err != nil {
		t.Fatalf("%s: decode error: %v (len %d)", c.Name(), err, len(src))
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("%s: round trip mismatch: %d bytes in, %d out", c.Name(), len(src), len(dec))
	}
}

func TestRoundTripStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Integer column (little-endian 8-byte values, mildly increasing):
	ints := make([]byte, 0, 8*2000)
	v := int64(1000)
	for i := 0; i < 2000; i++ {
		v += int64(rng.Intn(50))
		ints = putLE64(ints, v)
	}
	// Low-cardinality length-prefixed strings:
	words := []string{"URGENT", "HIGH", "MEDIUM", "LOW", "NOT SPECIFIED"}
	strs := make([]byte, 0, 16*2000)
	for i := 0; i < 2000; i++ {
		w := words[rng.Intn(len(words))]
		strs = putUvarint(strs, uint64(len(w)))
		strs = append(strs, w...)
	}
	// Runny bytes:
	runs := bytes.Repeat([]byte{0, 0, 0, 0, 7, 7, 7, 9}, 512)

	for _, c := range allCodecs() {
		for _, src := range [][]byte{ints, strs, runs, nil, {1}, bytes.Repeat([]byte{255}, 3)} {
			roundTrip(t, c, src)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(src []byte) bool {
				enc := c.Encode(nil, src)
				dec, err := c.Decode(nil, enc)
				return err == nil && bytes.Equal(dec, src)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCompressionRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Sorted keys: Delta and Bitpack should crush these.
	keys := make([]byte, 0, 8*4096)
	for i := 0; i < 4096; i++ {
		keys = putLE64(keys, int64(i*4+rng.Intn(4)))
	}
	if r := Ratio(Delta, keys); r > 0.3 {
		t.Errorf("delta ratio on sorted keys = %v, want < 0.3", r)
	}
	if r := Ratio(Bitpack, keys); r > 0.3 {
		t.Errorf("bitpack ratio on sorted keys = %v, want < 0.3", r)
	}

	// Low-cardinality strings: Dict should get close to 1 byte/value.
	words := []string{"F", "O", "P"}
	strs := make([]byte, 0, 2*4096)
	for i := 0; i < 4096; i++ {
		w := words[rng.Intn(len(words))]
		strs = putUvarint(strs, uint64(len(w)))
		strs = append(strs, w...)
	}
	if r := Ratio(Dict, strs); r > 0.6 {
		t.Errorf("dict ratio on low-cardinality strings = %v, want < 0.6", r)
	}

	// Small ints have long zero runs: RLE should win on the byte level.
	zeros := make([]byte, 0, 8*4096)
	for i := 0; i < 4096; i++ {
		zeros = putLE64(zeros, int64(rng.Intn(100)))
	}
	if r := Ratio(RLE, zeros); r > 0.7 {
		t.Errorf("rle ratio on small ints = %v, want < 0.7", r)
	}

	// Repetitive text: LZ should find matches.
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	if r := Ratio(LZ, text); r > 0.2 {
		t.Errorf("lz ratio on repetitive text = %v, want < 0.2", r)
	}

	// Random bytes are incompressible; codecs must not blow up too much.
	rnd := make([]byte, 16384)
	rng.Read(rnd)
	for _, c := range allCodecs() {
		if r := Ratio(c, rnd); r > 2.2 {
			t.Errorf("%s expands random data by %v", c.Name(), r)
		}
	}
}

func TestRatioEmptyInput(t *testing.T) {
	if Ratio(LZ, nil) != 1 {
		t.Fatal("empty input ratio should be 1")
	}
}

func TestDecodeCorruptInput(t *testing.T) {
	// Random garbage must either decode to something or fail cleanly; it
	// must never panic. Structured codecs with markers should mostly fail.
	rng := rand.New(rand.NewSource(99))
	for _, c := range allCodecs() {
		for i := 0; i < 200; i++ {
			garbage := make([]byte, rng.Intn(64))
			rng.Read(garbage)
			_, _ = c.Decode(nil, garbage) // must not panic
		}
	}
	if _, err := Dict.Decode(nil, []byte{0x77, 1, 2}); err != ErrCorrupt {
		t.Errorf("dict should reject unknown marker, got %v", err)
	}
	if _, err := LZ.Decode(nil, []byte{1}); err != ErrCorrupt {
		t.Errorf("lz should reject truncated stream, got %v", err)
	}
}

func TestHugeLengthVarintDoesNotPanic(t *testing.T) {
	// Regression: a length varint >= 2^63 wrapped negative through int()
	// and bypassed bounds checks, panicking in Dict's parseStrings.
	huge := putUvarint(nil, 1<<63)
	huge = append(huge, 'x')
	for _, c := range allCodecs() {
		_ = c.Encode(nil, huge)    // must not panic
		_, _ = c.Decode(nil, huge) // must not panic
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"raw", "rle", "delta", "bitpack", "dict", "lz"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("zstd"); err == nil {
		t.Error("unknown codec should error")
	}
	if len(Names()) != 6 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestCostModelsSane(t *testing.T) {
	// Decode must be cheaper than encode; Raw must be cheapest; LZ encode
	// must be the most expensive (it is the knob the optimizer weighs).
	for _, c := range allCodecs() {
		cm := c.Cost()
		if cm.EncodeCyclesPerByte <= 0 || cm.DecodeCyclesPerByte <= 0 {
			t.Errorf("%s: non-positive cost model %+v", c.Name(), cm)
		}
		if cm.DecodeCyclesPerByte > cm.EncodeCyclesPerByte {
			t.Errorf("%s: decode costlier than encode: %+v", c.Name(), cm)
		}
		if c != Raw && cm.DecodeCyclesPerByte <= Raw.Cost().DecodeCyclesPerByte {
			t.Errorf("%s: decode cheaper than raw copy", c.Name())
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		b := putUvarint(nil, x)
		y, k := uvarint(b)
		return k == len(b) && y == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, k := uvarint(nil); k != 0 {
		t.Fatal("empty varint should report 0")
	}
	if _, k := uvarint(bytes.Repeat([]byte{0x80}, 11)); k != -1 {
		t.Fatal("overlong varint should report -1")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func TestDictPreservesHighCardinality(t *testing.T) {
	// Unique strings: dictionary gains nothing but must stay correct.
	var src []byte
	for i := 0; i < 500; i++ {
		s := []byte{byte(i), byte(i >> 8), byte(i % 7)}
		src = putUvarint(src, uint64(len(s)))
		src = append(src, s...)
	}
	roundTrip(t, Dict, src)
}

func TestLZOverlappingMatch(t *testing.T) {
	// aaaa... forces self-overlapping matches, the classic LZ edge case.
	src := bytes.Repeat([]byte{'a'}, 1000)
	roundTrip(t, LZ, src)
	if r := Ratio(LZ, src); r > 0.05 {
		t.Errorf("run-of-a ratio = %v", r)
	}
}

func BenchmarkCodecs(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 0, 8*8192)
	for i := 0; i < 8192; i++ {
		src = putLE64(src, int64(rng.Intn(10000)))
	}
	for _, c := range allCodecs() {
		enc := c.Encode(nil, src)
		b.Run(c.Name()+"/encode", func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				c.Encode(nil, src)
			}
		})
		b.Run(c.Name()+"/decode", func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(nil, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
