package compress

// Dict is a dictionary codec for streams of length-prefixed strings (the
// wire format the table layer uses for string columns): it collects the
// distinct strings of a block into a symbol table and replaces each
// occurrence by a varint index. Low-cardinality columns (order status,
// priorities, nation names) collapse to ~1 byte per value.
//
// Input format: repeated (len uvarint, bytes). Inputs that do not parse as
// that format are stored verbatim with a marker byte.
var Dict Codec = register(dictCodec{})

type dictCodec struct{}

func (dictCodec) Name() string { return "dict" }

const (
	dictMarker = 0xD1
	rawMarker  = 0x00
)

// parseStrings splits a length-prefixed string stream; ok is false when
// the input is not in that format.
func parseStrings(src []byte) (vals [][]byte, ok bool) {
	for off := 0; off < len(src); {
		n, k := uvarint(src[off:])
		// Guard n before converting: a 2^63+ length would wrap negative.
		if k <= 0 || n > uint64(len(src)) || off+k+int(n) > len(src) {
			return nil, false
		}
		off += k
		vals = append(vals, src[off:off+int(n)])
		off += int(n)
	}
	return vals, true
}

func (dictCodec) Encode(dst, src []byte) []byte {
	vals, ok := parseStrings(src)
	if !ok {
		dst = append(dst, rawMarker)
		return append(dst, src...)
	}
	index := map[string]int{}
	var symbols []string
	for _, v := range vals {
		if _, seen := index[string(v)]; !seen {
			index[string(v)] = len(symbols)
			symbols = append(symbols, string(v))
		}
	}
	dst = append(dst, dictMarker)
	dst = putUvarint(dst, uint64(len(symbols)))
	for _, s := range symbols {
		dst = putUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	dst = putUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = putUvarint(dst, uint64(index[string(v)]))
	}
	return dst
}

func (dictCodec) Decode(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return dst, nil
	}
	switch src[0] {
	case rawMarker:
		return append(dst, src[1:]...), nil
	case dictMarker:
		src = src[1:]
	default:
		return dst, ErrCorrupt
	}
	nsym, k := uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	symbols := make([][]byte, 0, nsym)
	for i := uint64(0); i < nsym; i++ {
		n, k := uvarint(src)
		if k <= 0 || uint64(len(src[k:])) < n {
			return dst, ErrCorrupt
		}
		symbols = append(symbols, src[k:k+int(n)])
		src = src[k+int(n):]
	}
	nvals, k := uvarint(src)
	if k <= 0 {
		return dst, ErrCorrupt
	}
	src = src[k:]
	for i := uint64(0); i < nvals; i++ {
		idx, k := uvarint(src)
		if k <= 0 || idx >= uint64(len(symbols)) {
			return dst, ErrCorrupt
		}
		src = src[k:]
		s := symbols[idx]
		dst = putUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	if len(src) != 0 {
		return dst, ErrCorrupt
	}
	return dst, nil
}

func (dictCodec) Cost() CostModel {
	return CostModel{EncodeCyclesPerByte: 5.0, DecodeCyclesPerByte: 1.8}
}
