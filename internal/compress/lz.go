package compress

// LZ is a byte-oriented LZ77 codec in the LZ4 spirit: a greedy hash-chain
// match finder producing (literal run, match) tokens. It is the "heavy"
// general-purpose codec of the catalog — the role played by the commercial
// system's table compression in the paper's Figure 2 experiment: best
// ratios on mixed row data, highest CPU cost per byte.
//
// Token format, repeated until end of input:
//
//	litLen  uvarint
//	lits    litLen bytes
//	matchLen uvarint   (0 means end of stream, no offset follows)
//	offset  uvarint    (1..65535, distance back from current position)
var LZ Codec = register(lzCodec{})

type lzCodec struct{}

func (lzCodec) Name() string { return "lz" }

const (
	lzMinMatch = 4
	lzMaxDist  = 64 << 10
	lzHashBits = 14
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func (lzCodec) Encode(dst, src []byte) []byte {
	var table [1 << lzHashBits]int // position+1 of last occurrence of hash
	litStart := 0
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(load32(src, i))
		cand := table[h] - 1
		table[h] = i + 1
		if cand >= 0 && i-cand <= lzMaxDist && load32(src, cand) == load32(src, i) {
			// Extend the match.
			mlen := lzMinMatch
			for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			// Emit pending literals, then the match.
			dst = putUvarint(dst, uint64(i-litStart))
			dst = append(dst, src[litStart:i]...)
			dst = putUvarint(dst, uint64(mlen))
			dst = putUvarint(dst, uint64(i-cand))
			i += mlen
			litStart = i
			continue
		}
		i++
	}
	// Trailing literals with end-of-stream marker.
	dst = putUvarint(dst, uint64(len(src)-litStart))
	dst = append(dst, src[litStart:]...)
	dst = putUvarint(dst, 0)
	return dst
}

func (lzCodec) Decode(dst, src []byte) ([]byte, error) {
	base := len(dst)
	budget := decodeBudget(len(src))
	for {
		litLen, k := uvarint(src)
		if k <= 0 || uint64(len(src[k:])) < litLen {
			return dst, ErrCorrupt
		}
		src = src[k:]
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]

		mlen, k := uvarint(src)
		if k <= 0 {
			return dst, ErrCorrupt
		}
		src = src[k:]
		if mlen == 0 {
			if len(src) != 0 {
				return dst, ErrCorrupt
			}
			return dst, nil
		}
		off, k := uvarint(src)
		if k <= 0 {
			return dst, ErrCorrupt
		}
		src = src[k:]
		pos := len(dst) - int(off)
		if off == 0 || pos < base || mlen > uint64(budget-(len(dst)-base)) {
			return dst, ErrCorrupt
		}
		// Byte-wise copy: matches may overlap themselves (run encoding).
		for j := uint64(0); j < mlen; j++ {
			dst = append(dst, dst[pos+int(j)])
		}
	}
}

func (lzCodec) Cost() CostModel {
	return CostModel{EncodeCyclesPerByte: 8.0, DecodeCyclesPerByte: 2.4}
}
