package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"energydb/internal/fault"
	"energydb/internal/table"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := AppendStr(AppendU64(nil, 42), "hello")
	if err := WriteFrame(&buf, MsgPrepare, body); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgOK, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgPrepare || !bytes.Equal(got, body) {
		t.Fatalf("frame 1: typ=%d body=%v err=%v", typ, got, err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != MsgOK || len(got) != 0 {
		t.Fatalf("frame 2: typ=%d body=%v err=%v", typ, got, err)
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream read = %v, want io.EOF", err)
	}
}

// TestTornFrames: every truncation point of a valid frame must fail
// cleanly — io.EOF at a frame boundary, io.ErrUnexpectedEOF inside a
// header or body — never a hang or a garbage decode.
func TestTornFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgBatch, AppendStr(nil, "payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(whole))
		}
		if err != io.ErrUnexpectedEOF && err != io.EOF {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
}

func TestFrameGuards(t *testing.T) {
	// Oversized length prefix must be rejected before allocation.
	hdr := AppendU32(nil, MaxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(append(hdr, 0))); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized frame err = %v, want ErrProtocol", err)
	}
	// Zero-length frames carry no type byte.
	if _, _, err := ReadFrame(bytes.NewReader(AppendU32(nil, 0))); !errors.Is(err, ErrProtocol) {
		t.Fatalf("zero frame err = %v, want ErrProtocol", err)
	}
	if err := WriteFrame(io.Discard, MsgBatch, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

// TestTypedErrorRoundTrip: every fault sentinel must survive
// encode → decode with errors.Is intact, the property the client driver
// depends on.
func TestTypedErrorRoundTrip(t *testing.T) {
	sentinels := []error{
		fault.ErrDeviceFailed,
		fault.ErrTransientIO,
		fault.ErrDeadlineExceeded,
		fault.ErrCanceled,
		fault.ErrMemBudget,
		fault.ErrCrashed,
	}
	for _, want := range sentinels {
		wrapped := fmt.Errorf("query q6 on disk0: %w", want)
		code := CodeFor(wrapped)
		if code == CodeOK || code == CodeGeneric {
			t.Fatalf("%v classified as code %d", want, code)
		}
		back := DecodeError(code, wrapped.Error())
		if !errors.Is(back, want) {
			t.Fatalf("decoded error %v does not match sentinel %v", back, want)
		}
		// And not any *other* sentinel.
		for _, other := range sentinels {
			if other != want && errors.Is(back, other) {
				t.Fatalf("decoded %v also matches %v", want, other)
			}
		}
		//lint:ignore errtaxonomy the round-trip test asserts the codec preserves the message verbatim
		if back.Error() != wrapped.Error() {
			t.Fatalf("message %q != %q", back.Error(), wrapped.Error())
		}
	}
	if got := CodeFor(errors.New("boring")); got != CodeGeneric {
		t.Fatalf("plain error code = %d", got)
	}
	if got := CodeFor(nil); got != CodeOK {
		t.Fatalf("nil error code = %d", got)
	}
	if DecodeError(CodeOK, "") != nil {
		t.Fatal("CodeOK decoded to a non-nil error")
	}
}

func testBatch() *table.Batch {
	s := table.NewSchema("t",
		table.Col("id", table.Int64),
		table.Col("price", table.Decimal),
		table.Col("x", table.Float64),
		table.Col("name", table.String),
		table.Col("day", table.Date),
	)
	b := table.NewBatch(s, 4)
	b.AppendRow(table.IntVal(1), table.DecimalVal(199), table.FloatVal(1.5), table.StrVal("ann"), table.DateVal(100))
	b.AppendRow(table.IntVal(2), table.DecimalVal(-5), table.FloatVal(-0.25), table.StrVal(""), table.DateVal(0))
	b.AppendRow(table.IntVal(3), table.DecimalVal(0), table.FloatVal(3e18), table.StrVal("bob with spaces"), table.DateVal(-7))
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	b := testBatch()
	body := AppendBatch(nil, b)
	got, err := DecodeBatch(NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != b.Rows() || got.Schema.Name != "t" || len(got.Vecs) != len(b.Vecs) {
		t.Fatalf("shape: %d rows, %d cols, schema %q", got.Rows(), len(got.Vecs), got.Schema.Name)
	}
	for i, c := range b.Schema.Cols {
		g := got.Schema.Cols[i]
		if g != c {
			t.Fatalf("col %d schema %+v != %+v", i, g, c)
		}
	}
	want := AppendBatch(nil, got)
	if !bytes.Equal(body, want) {
		t.Fatal("re-encoding the decoded batch differs")
	}
}

// TestBatchSelCompaction: a batch carrying a selection must ship only
// its logical rows.
func TestBatchSelCompaction(t *testing.T) {
	b := testBatch()
	b.SetSel([]int32{2, 0})
	got, err := DecodeBatch(NewReader(AppendBatch(nil, b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", got.Rows())
	}
	if got.Vecs[0].I[0] != 3 || got.Vecs[0].I[1] != 1 {
		t.Fatalf("ids = %v, want [3 1]", got.Vecs[0].I)
	}
	if got.Vecs[3].S[0] != "bob with spaces" || got.Vecs[3].S[1] != "ann" {
		t.Fatalf("names = %v", got.Vecs[3].S)
	}
}

// TestBatchTornBodies: truncating the encoded batch at every byte must
// produce an error, never a partial batch or a panic.
func TestBatchTornBodies(t *testing.T) {
	body := AppendBatch(nil, testBatch())
	for cut := 0; cut < len(body); cut++ {
		if got, err := DecodeBatch(NewReader(body[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded a %d-row batch", cut, len(body), got.Rows())
		}
	}
	// Corrupt the column type of the first column.
	bad := append([]byte(nil), body...)
	// name("t")=2 bytes, ncols u32, nrows u32, colname("id")=3 bytes → type at offset 13.
	bad[13] = 200
	if _, err := DecodeBatch(NewReader(bad)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("corrupt type err = %v", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := Result{
		Elapsed: 1.25, Joules: 300.5, Attributed: 120.25, Marginal: 100,
		Shared: 20.25, Wait: 0.5, Granted: 4, RowCount: 9001, Retries: 2,
	}
	body := AppendResult(nil, in, CodeDeadlineExceeded, "too slow")
	out, code, msg, err := DecodeResult(NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if out != in || code != CodeDeadlineExceeded || msg != "too slow" {
		t.Fatalf("got %+v code=%d msg=%q", out, code, msg)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, _, _, err := DecodeResult(NewReader(body[:cut])); err == nil {
			t.Fatalf("truncated result at %d decoded", cut)
		}
	}
}

func TestMeterReportRoundTrip(t *testing.T) {
	in := MeterReport{
		Now: 86400, MeterJ: 1e6, UnattributedJ: 2.5e5,
		Tenants: []TenantBill{
			{Tenant: "acme", AttributedJ: 5e5, Queries: 120, Inserts: 40},
			{Tenant: "zeta", AttributedJ: 2.5e5, Queries: 60, Inserts: 0},
		},
	}
	body := AppendMeterReport(nil, in)
	out, err := DecodeMeterReport(NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if out.Now != in.Now || out.MeterJ != in.MeterJ || out.UnattributedJ != in.UnattributedJ || len(out.Tenants) != 2 {
		t.Fatalf("got %+v", out)
	}
	for i := range in.Tenants {
		if out.Tenants[i] != in.Tenants[i] {
			t.Fatalf("tenant %d: %+v != %+v", i, out.Tenants[i], in.Tenants[i])
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(AppendU64(nil, 7))
	if r.U64() != 7 || r.Err() != nil {
		t.Fatal("first read failed")
	}
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("read past end did not fail")
	}
	// Subsequent reads stay failed and zero-valued.
	if r.Str() != "" || r.U32() != 0 || r.Err() == nil {
		t.Fatal("sticky error not sticky")
	}
	if !errors.Is(r.Err(), ErrProtocol) {
		t.Fatalf("reader error %v not a protocol error", r.Err())
	}
}
