// Package wire is the front door's length-prefixed frame protocol,
// shared by internal/server and internal/client. It defines the frame
// format, the message types, a columnar batch encoding that reuses
// table.Batch's byte layout, and an error-code taxonomy mapped onto the
// internal/fault sentinels so typed errors survive the wire:
// errors.Is(err, fault.ErrDeadlineExceeded) holds on the client for a
// query the server cancelled at its deadline.
//
// Frame layout:
//
//	uint32 LE payload length | 1 byte message type | body
//
// Bodies are built from three primitives matching the engine's storage
// encodings (table/bytes.go): 8-byte little-endian integers, 8-byte IEEE
// float bits, and uvarint-length-prefixed strings. Every frame is a
// complete request or reply; the protocol is strict request/response per
// connection, so a reader never has to interleave streams.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"energydb/internal/fault"
	"energydb/internal/table"
)

// Version is the protocol version exchanged in Hello/Welcome.
const Version = 1

// MaxFrame bounds a frame's payload so a torn or hostile length prefix
// cannot make the reader allocate unboundedly.
const MaxFrame = 64 << 20

// Message types. Client-to-server frames ask; server-to-client frames
// answer. Every request gets exactly one terminal reply frame.
const (
	// MsgHello opens a connection: version, tenant ID (auth-lite).
	MsgHello byte = iota + 1
	// MsgWelcome acknowledges the handshake: version.
	MsgWelcome
	// MsgSessionOpen asks for a new session → MsgSessionOK{sid}.
	MsgSessionOpen
	// MsgSessionOK carries the new session's id.
	MsgSessionOK
	// MsgSessionClose closes a session → MsgOK.
	MsgSessionClose
	// MsgPrepare binds a SELECT on a session: sid, sql → MsgPrepared.
	MsgPrepare
	// MsgPrepared carries the prepared statement's id.
	MsgPrepared
	// MsgExecute submits a prepared statement: stmt id, flags, at,
	// deadline → MsgExecuted{qid}. FlagDiscard drops result batches
	// server-side, keeping only the row count.
	MsgExecute
	// MsgExecuted carries the submitted query's id.
	MsgExecuted
	// MsgDiscard marks a submitted query discard-results: qid → MsgOK.
	MsgDiscard
	// MsgFetch asks for the query's next result batch: qid → MsgBatch
	// (one batch) or MsgDone (stream finished, stats and any error).
	MsgFetch
	// MsgBatch carries one columnar result batch.
	MsgBatch
	// MsgDone terminates a result stream: the query's Result stats plus
	// an error code when it failed.
	MsgDone
	// MsgCancel cancels/closes a submitted query: qid → MsgOK. Safe on
	// finished queries (it just releases server-side buffers).
	MsgCancel
	// MsgExec runs a non-SELECT statement (CREATE/INSERT): at, sql →
	// MsgOK. at > now schedules the statement at simulated time at
	// (fire-and-forget; errors surface at MsgDrain), at <= now runs it
	// synchronously.
	MsgExec
	// MsgExplain plans a SELECT without running it: sid, sql → MsgBatch
	// holding the plan rows (operator, detail, dop, pstate, ms, joules).
	MsgExplain
	// MsgDrain runs the simulation until no scheduled work remains →
	// MsgOK (carrying the first deferred-statement error, if any).
	MsgDrain
	// MsgMeter asks for the energy ledger → MsgMeterReport.
	MsgMeter
	// MsgMeterReport carries the wall meter, the unattributed idle floor,
	// and the per-tenant attributed bill.
	MsgMeterReport
	// MsgOK is the generic ack, carrying an error code (0 = success).
	MsgOK
	// MsgError reports a protocol-level failure (malformed frame, unknown
	// id); the server closes the connection after sending it.
	MsgError
)

// Execute flags.
const (
	// FlagDiscard drops result batches server-side as they are produced,
	// keeping only the row count (throughput drivers).
	FlagDiscard byte = 1 << 0
)

// Error codes carried by MsgDone/MsgOK/MsgError. Every internal/fault
// sentinel has a code so errors.Is classification survives the wire.
const (
	CodeOK uint32 = iota
	CodeGeneric
	CodeDeviceFailed
	CodeTransientIO
	CodeDeadlineExceeded
	CodeCanceled
	CodeMemBudget
	CodeCrashed
	CodeProtocol // malformed frame or unknown id
)

// ErrProtocol is the sentinel wrapped by protocol-level wire errors.
var ErrProtocol = errors.New("wire: protocol error")

// CodeFor classifies an error against the fault taxonomy.
func CodeFor(err error) uint32 {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, fault.ErrDeviceFailed):
		return CodeDeviceFailed
	case errors.Is(err, fault.ErrTransientIO):
		return CodeTransientIO
	case errors.Is(err, fault.ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, fault.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, fault.ErrMemBudget):
		return CodeMemBudget
	case errors.Is(err, fault.ErrCrashed):
		return CodeCrashed
	case errors.Is(err, ErrProtocol):
		return CodeProtocol
	default:
		return CodeGeneric
	}
}

// sentinelFor maps a code back to its fault sentinel (nil for generic).
func sentinelFor(code uint32) error {
	switch code {
	case CodeDeviceFailed:
		return fault.ErrDeviceFailed
	case CodeTransientIO:
		return fault.ErrTransientIO
	case CodeDeadlineExceeded:
		return fault.ErrDeadlineExceeded
	case CodeCanceled:
		return fault.ErrCanceled
	case CodeMemBudget:
		return fault.ErrMemBudget
	case CodeCrashed:
		return fault.ErrCrashed
	case CodeProtocol:
		return ErrProtocol
	default:
		return nil
	}
}

// Error is a remote failure reconstructed from its wire code: its Unwrap
// exposes the matching fault sentinel, so errors.Is works exactly as it
// would against the server-side error.
type Error struct {
	Code uint32
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return e.Msg }

// Unwrap exposes the fault sentinel for errors.Is / errors.As.
func (e *Error) Unwrap() error { return sentinelFor(e.Code) }

// DecodeError reconstructs a remote error from its code and message;
// code 0 returns nil.
func DecodeError(code uint32, msg string) error {
	if code == CodeOK {
		return nil
	}
	if msg == "" {
		msg = fmt.Sprintf("wire: remote error code %d", code)
	}
	return &Error{Code: code, Msg: msg}
}

// WriteFrame writes one frame: length prefix, type byte, body.
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	if len(body)+1 > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(body)+1)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame. A torn length prefix, an oversized length,
// or a body shorter than its prefix all return an error wrapping
// ErrProtocol (or io.EOF/io.ErrUnexpectedEOF for a cleanly closed or
// truncated stream).
func ReadFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame: %w", ErrProtocol)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame: %w", n, ErrProtocol)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Body encoding primitives: append-style writers and a cursor reader
// with sticky error, matching the storage layer's byte formats.

// AppendU64 appends an 8-byte little-endian integer.
func AppendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendU32 appends a 4-byte little-endian integer.
func AppendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendF64 appends a float64 as its 8 IEEE bits, little-endian.
func AppendF64(dst []byte, v float64) []byte {
	return AppendU64(dst, math.Float64bits(v))
}

// AppendStr appends a uvarint length prefix and the string bytes.
func AppendStr(dst []byte, s string) []byte {
	return append(appendUvarint(dst, uint64(len(s))), s...)
}

func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// Reader is a cursor over a frame body with a sticky error: reads past
// the end (a torn body) set Err instead of panicking, so decoders check
// once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over body.
func NewReader(body []byte) *Reader { return &Reader{b: body} }

// Err reports the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Rest reports the number of unread bytes.
func (r *Reader) Rest() int { return len(r.b) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s at offset %d: %w", what, r.off, ErrProtocol)
	}
}

// U64 reads an 8-byte little-endian integer.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// U32 reads a 4-byte little-endian integer.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// F64 reads a float64 from its IEEE bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a uvarint-length-prefixed string.
func (r *Reader) Str() string {
	if r.err != nil {
		return ""
	}
	var x uint64
	var s uint
	i := r.off
	for {
		if i >= len(r.b) || i-r.off == 10 {
			r.fail("string length")
			return ""
		}
		c := r.b[i]
		i++
		if c < 0x80 {
			x |= uint64(c) << s
			break
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	if x > uint64(len(r.b)-i) {
		r.fail("string body")
		return ""
	}
	out := string(r.b[i : i+int(x)])
	r.off = i + int(x)
	return out
}

// Bytes reads exactly n raw bytes.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail("bytes")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// AppendBatch appends the columnar wire form of a batch: schema name,
// column count, row count, then per column its name, type, declared
// width, and the column's EncodeBytes payload. A batch carrying a
// deferred selection is compacted first, so filtered-out rows never hit
// the wire.
func AppendBatch(dst []byte, b *table.Batch) []byte {
	if b.Sel != nil {
		b = b.Clone()
	}
	dst = AppendStr(dst, b.Schema.Name)
	dst = AppendU32(dst, uint32(len(b.Vecs)))
	dst = AppendU32(dst, uint32(b.Rows()))
	for i, v := range b.Vecs {
		c := b.Schema.Cols[i]
		dst = AppendStr(dst, c.Name)
		dst = append(dst, byte(c.Type))
		dst = AppendU32(dst, uint32(c.Width))
		payload := v.EncodeBytes(nil, 0, v.Len())
		dst = AppendU32(dst, uint32(len(payload)))
		dst = append(dst, payload...)
	}
	return dst
}

// DecodeBatch parses a batch in the AppendBatch format.
func DecodeBatch(r *Reader) (*table.Batch, error) {
	name := r.Str()
	ncols := int(r.U32())
	nrows := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if ncols > 4096 || nrows > MaxFrame {
		return nil, fmt.Errorf("wire: implausible batch %d cols × %d rows: %w", ncols, nrows, ErrProtocol)
	}
	cols := make([]table.Column, 0, ncols)
	vecs := make([]*table.Vector, 0, ncols)
	for i := 0; i < ncols; i++ {
		cname := r.Str()
		ctype := table.Type(r.U8())
		width := int(r.U32())
		n := int(r.U32())
		data := r.Bytes(n)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if ctype > table.Decimal {
			return nil, fmt.Errorf("wire: unknown column type %d: %w", ctype, ErrProtocol)
		}
		v, err := table.DecodeVector(ctype, data, nrows)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrProtocol)
		}
		cols = append(cols, table.Column{Name: cname, Type: ctype, Width: width})
		vecs = append(vecs, v)
	}
	b := &table.Batch{Schema: &table.Schema{Name: name, Cols: cols}, Vecs: vecs}
	b.SetRows(nrows)
	return b, nil
}

// Result is a completed query's stats as they cross the wire — the
// subset of core.Result a remote client can hold (plans and materialised
// rows stay server-side; batches stream separately).
type Result struct {
	Elapsed    float64 // submission to completion, simulated seconds
	Joules     float64 // whole-server meter delta over the query's window
	Attributed float64 // this query's energy share (Marginal + Shared)
	Marginal   float64 // energy charged directly by the query's processes
	Shared     float64 // idle-floor (residual) share
	Wait       float64 // admission queueing delay
	Granted    int64   // cores granted at admission
	RowCount   int64   // rows produced (survives Discard)
	Retries    int64   // transient-fault re-executions
}

// AppendResult appends a Result plus an error code and message (the
// MsgDone body).
func AppendResult(dst []byte, res Result, code uint32, msg string) []byte {
	dst = AppendU32(dst, code)
	dst = AppendStr(dst, msg)
	dst = AppendF64(dst, res.Elapsed)
	dst = AppendF64(dst, res.Joules)
	dst = AppendF64(dst, res.Attributed)
	dst = AppendF64(dst, res.Marginal)
	dst = AppendF64(dst, res.Shared)
	dst = AppendF64(dst, res.Wait)
	dst = AppendU64(dst, uint64(res.Granted))
	dst = AppendU64(dst, uint64(res.RowCount))
	dst = AppendU64(dst, uint64(res.Retries))
	return dst
}

// DecodeResult parses a MsgDone body.
func DecodeResult(r *Reader) (Result, uint32, string, error) {
	code := r.U32()
	msg := r.Str()
	res := Result{
		Elapsed:    r.F64(),
		Joules:     r.F64(),
		Attributed: r.F64(),
		Marginal:   r.F64(),
		Shared:     r.F64(),
		Wait:       r.F64(),
		Granted:    int64(r.U64()),
		RowCount:   int64(r.U64()),
		Retries:    int64(r.U64()),
	}
	return res, code, msg, r.Err()
}

// TenantBill is one tenant's line in a MsgMeterReport.
type TenantBill struct {
	Tenant      string
	AttributedJ float64 // Σ attributed joules over the tenant's statements
	Queries     int64   // SELECTs billed
	Inserts     int64   // deferred inserts billed
}

// MeterReport is the server's energy ledger: the wall meter, the idle
// floor nobody owns, and the per-tenant bill. After a drain,
// Σ Tenants.AttributedJ + UnattributedJ == MeterJ to float rounding —
// the attribution invariant extended across the wire.
type MeterReport struct {
	Now           float64 // simulated seconds
	MeterJ        float64 // whole-server meter reading
	UnattributedJ float64 // idle-floor intervals with no active query
	Tenants       []TenantBill
}

// AppendMeterReport appends a MsgMeterReport body.
func AppendMeterReport(dst []byte, m MeterReport) []byte {
	dst = AppendF64(dst, m.Now)
	dst = AppendF64(dst, m.MeterJ)
	dst = AppendF64(dst, m.UnattributedJ)
	dst = AppendU32(dst, uint32(len(m.Tenants)))
	for _, t := range m.Tenants {
		dst = AppendStr(dst, t.Tenant)
		dst = AppendF64(dst, t.AttributedJ)
		dst = AppendU64(dst, uint64(t.Queries))
		dst = AppendU64(dst, uint64(t.Inserts))
	}
	return dst
}

// DecodeMeterReport parses a MsgMeterReport body.
func DecodeMeterReport(r *Reader) (MeterReport, error) {
	m := MeterReport{
		Now:           r.F64(),
		MeterJ:        r.F64(),
		UnattributedJ: r.F64(),
	}
	n := int(r.U32())
	if r.Err() != nil {
		return m, r.Err()
	}
	if n > 1<<20 {
		return m, fmt.Errorf("wire: implausible tenant count %d: %w", n, ErrProtocol)
	}
	for i := 0; i < n; i++ {
		m.Tenants = append(m.Tenants, TenantBill{
			Tenant:      r.Str(),
			AttributedJ: r.F64(),
			Queries:     int64(r.U64()),
			Inserts:     int64(r.U64()),
		})
	}
	return m, r.Err()
}
