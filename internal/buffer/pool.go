package buffer

import (
	"fmt"

	"energydb/internal/hw"
	"energydb/internal/sim"
)

// Stats counts pool activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate reports hits/(hits+misses), 0 when no accesses happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	pins int
}

// Pool is a fixed-capacity buffer pool over simulated storage. It caches
// page *presence*: a hit skips the backing I/O charge entirely; a miss
// runs the caller's load function (which charges device time) and may
// evict a victim chosen by the policy.
type Pool struct {
	capacity int
	policy   Policy
	pages    map[PageKey]*frame
	stats    Stats

	// PageBytes is the page size the pool manages, used by RanksNeeded.
	PageBytes int64
	// DRAM, if set, has its powered ranks adjusted on Resize so unused
	// memory stops drawing refresh power.
	DRAM *hw.DRAM
}

// NewPool returns a pool holding up to capacity pages under the policy.
func NewPool(capacity int, policy Policy) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: pool capacity %d", capacity))
	}
	return &Pool{
		capacity: capacity,
		policy:   policy,
		pages:    make(map[PageKey]*frame),
	}
}

// Capacity reports the frame count.
func (pl *Pool) Capacity() int { return pl.capacity }

// Len reports the cached page count.
func (pl *Pool) Len() int { return len(pl.pages) }

// Stats returns a copy of the counters.
func (pl *Pool) Stats() Stats { return pl.stats }

// Policy returns the replacement policy.
func (pl *Pool) Policy() Policy { return pl.policy }

// Contains reports whether k is resident.
func (pl *Pool) Contains(k PageKey) bool {
	_, ok := pl.pages[k]
	return ok
}

// Get pins page k, calling load to charge the backing I/O if the page is
// not resident. Callers must Unpin when done. If the pool is full of
// pinned pages, the new page is loaded and passed through unpinned-on-
// arrival (it still counts as a miss and is not cached), so Get never
// deadlocks. A load error propagates to the caller: the page is neither
// pinned nor cached, and no Unpin is owed.
func (pl *Pool) Get(p *sim.Proc, k PageKey, load func(p *sim.Proc) error) error {
	if f, ok := pl.pages[k]; ok {
		pl.stats.Hits++
		f.pins++
		pl.policy.Touched(k)
		return nil
	}
	pl.stats.Misses++
	if load != nil {
		if err := load(p); err != nil {
			return err
		}
	}
	if !pl.makeRoom() {
		// Everything is pinned: serve the page without caching it by
		// inserting a transient pinned frame the Unpin will drop.
		pl.pages[k] = &frame{pins: 1}
		pl.policy.Inserted(k)
		return nil
	}
	pl.pages[k] = &frame{pins: 1}
	pl.policy.Inserted(k)
	return nil
}

// makeRoom evicts until a free frame exists; reports success.
func (pl *Pool) makeRoom() bool {
	for len(pl.pages) >= pl.capacity {
		victim, ok := pl.policy.Victim(func(k PageKey) bool {
			f, present := pl.pages[k]
			return present && f.pins > 0
		})
		if !ok {
			return false
		}
		delete(pl.pages, victim)
		pl.policy.Removed(victim)
		pl.stats.Evictions++
	}
	return true
}

// Unpin releases one pin on k. Unpinning a non-resident or unpinned page
// panics: it always indicates a caller bug.
func (pl *Pool) Unpin(k PageKey) {
	f, ok := pl.pages[k]
	if !ok || f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of %v with no pins", k))
	}
	f.pins--
	// Transient overflow frames (beyond capacity) leave immediately.
	if f.pins == 0 && len(pl.pages) > pl.capacity {
		delete(pl.pages, k)
		pl.policy.Removed(k)
		pl.stats.Evictions++
	}
}

// Reset drops every cached page and every pin. The pool's contents are
// volatile — they do not survive a crash — and the pins held by killed
// query processes must not brick frames forever, so recovery empties the
// pool and the replacement policy together.
func (pl *Pool) Reset() {
	for k := range pl.pages {
		delete(pl.pages, k)
		pl.policy.Removed(k)
	}
}

// SetRefetchCost forwards a page's re-fetch energy estimate to policies
// that use one (NewEnergyAware); it is a no-op otherwise.
func (pl *Pool) SetRefetchCost(k PageKey, joules float64) {
	if rc, ok := pl.policy.(RefetchCoster); ok {
		rc.SetRefetchCost(k, joules)
	}
}

// Resize changes the pool capacity, evicting as needed when shrinking, and
// powers DRAM ranks up or down to match the new footprint when a DRAM
// device is attached — the §4.2 "consolidate and power down" move.
func (pl *Pool) Resize(capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: resize to %d", capacity))
	}
	pl.capacity = capacity
	for len(pl.pages) > pl.capacity {
		victim, ok := pl.policy.Victim(func(k PageKey) bool {
			f, present := pl.pages[k]
			return present && f.pins > 0
		})
		if !ok {
			break // everything pinned: shrink takes effect as pins drop
		}
		delete(pl.pages, victim)
		pl.policy.Removed(victim)
		pl.stats.Evictions++
	}
	if pl.DRAM != nil && pl.PageBytes > 0 {
		pl.DRAM.SetPoweredRanks(pl.RanksNeeded())
	}
}

// RanksNeeded reports how many DRAM ranks the pool's footprint requires.
func (pl *Pool) RanksNeeded() int {
	if pl.DRAM == nil || pl.PageBytes <= 0 {
		return 0
	}
	bytes := int64(pl.capacity) * pl.PageBytes
	perRank := pl.DRAM.Spec().BytesPerRank
	n := int((bytes + perRank - 1) / perRank)
	if n < 1 {
		n = 1
	}
	return n
}
