package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
)

func key(page int64) PageKey { return PageKey{File: 1, Page: page} }

// drive runs accesses through a pool inside a trivial simulation and
// returns the miss count.
func drive(t *testing.T, pl *Pool, accesses []int64) int64 {
	t.Helper()
	e := sim.NewEngine()
	e.Go("driver", func(p *sim.Proc) {
		for _, pg := range accesses {
			k := key(pg)
			pl.Get(p, k, nil)
			pl.Unpin(k)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return pl.Stats().Misses
}

func TestHitMissAccounting(t *testing.T) {
	pl := NewPool(2, NewLRU())
	misses := drive(t, pl, []int64{1, 2, 1, 2, 1})
	if misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
	st := pl.Stats()
	if st.Hits != 3 || st.HitRate() != 0.6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	pl := NewPool(2, NewLRU())
	drive(t, pl, []int64{1, 2, 3}) // evicts 1
	if pl.Contains(key(1)) || !pl.Contains(key(2)) || !pl.Contains(key(3)) {
		t.Fatalf("LRU evicted wrong page")
	}
	drive(t, pl, []int64{2, 4}) // touch 2, insert 4: evicts 3
	if pl.Contains(key(3)) || !pl.Contains(key(2)) {
		t.Fatal("LRU recency not respected")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	pl := NewPool(2, NewLRU())
	e := sim.NewEngine()
	e.Go("driver", func(p *sim.Proc) {
		pl.Get(p, key(1), nil) // pinned
		pl.Get(p, key(2), nil)
		pl.Unpin(key(2))
		pl.Get(p, key(3), nil) // must evict 2, not pinned 1
		pl.Unpin(key(3))
		if !pl.Contains(key(1)) || pl.Contains(key(2)) {
			t.Error("pinned page was evicted")
		}
		pl.Unpin(key(1))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPinnedOverflow(t *testing.T) {
	pl := NewPool(1, NewLRU())
	e := sim.NewEngine()
	e.Go("driver", func(p *sim.Proc) {
		pl.Get(p, key(1), nil)
		pl.Get(p, key(2), nil) // pool full of pins: transient frame
		if pl.Len() != 2 {
			t.Errorf("Len = %d, want 2 (transient overflow)", pl.Len())
		}
		pl.Unpin(key(2))
		if pl.Contains(key(2)) {
			t.Error("transient frame should leave on unpin")
		}
		pl.Unpin(key(1))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(1, NewLRU()).Unpin(key(9))
}

func TestLoadChargedOnlyOnMiss(t *testing.T) {
	pl := NewPool(4, NewLRU())
	e := sim.NewEngine()
	loads := 0
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			pl.Get(p, key(7), func(*sim.Proc) error { loads++; return nil })
			pl.Unpin(key(7))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("load ran %d times, want 1", loads)
	}
}

func TestClockSecondChance(t *testing.T) {
	// After {1,2,3,4} on a 3-frame pool all reference bits are cleared by
	// the eviction sweep. Touching 2 re-sets its bit, so the next victim
	// must not be 2.
	pl := NewPool(3, NewClock())
	drive(t, pl, []int64{1, 2, 3, 4, 2, 5})
	if !pl.Contains(key(2)) {
		t.Fatal("clock evicted a page whose reference bit was set")
	}
	if !pl.Contains(key(5)) {
		t.Fatal("newly inserted page missing")
	}
}

func TestTwoQScanResistance(t *testing.T) {
	// Hot pages are re-referenced (promoted to main); then a long one-shot
	// scan passes through. 2Q must keep the hot set; LRU must lose it.
	hot := []int64{1, 2, 3}
	build := func(p Policy) *Pool {
		pl := NewPool(6, p)
		var trace []int64
		trace = append(trace, hot...)
		trace = append(trace, hot...) // re-reference: promote
		for pg := int64(100); pg < 140; pg++ {
			trace = append(trace, pg) // the scan
		}
		drive(t, pl, trace)
		return pl
	}
	twoq := build(NewTwoQ())
	for _, h := range hot {
		if !twoq.Contains(key(h)) {
			t.Fatalf("2Q lost hot page %d to a scan", h)
		}
	}
	lru := build(NewLRU())
	lost := 0
	for _, h := range hot {
		if !lru.Contains(key(h)) {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("LRU unexpectedly survived the scan (test is vacuous)")
	}
}

func TestEnergyAwareKeepsExpensivePages(t *testing.T) {
	pol := NewEnergyAware()
	pl := NewPool(2, pol)
	e := sim.NewEngine()
	e.Go("driver", func(p *sim.Proc) {
		pl.Get(p, key(1), nil) // disk page: expensive re-fetch
		pl.SetRefetchCost(key(1), 0.50)
		pl.Unpin(key(1))
		pl.Get(p, key(2), nil) // flash page: cheap re-fetch
		pl.SetRefetchCost(key(2), 0.001)
		pl.Unpin(key(2))
		// Touch the flash page so pure LRU would evict the disk page.
		pl.Get(p, key(2), nil)
		pl.Unpin(key(2))
		pl.Get(p, key(3), nil)
		pl.SetRefetchCost(key(3), 0.001)
		pl.Unpin(key(3))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !pl.Contains(key(1)) {
		t.Fatal("energy-aware policy evicted the expensive disk page")
	}
	if pl.Contains(key(2)) {
		t.Fatal("energy-aware policy kept the cheap flash page instead")
	}
}

func TestEnergyAwareTieBreaksLRU(t *testing.T) {
	pl := NewPool(2, NewEnergyAware())
	drive(t, pl, []int64{1, 2, 1, 3}) // equal (zero) costs: evict LRU = 2
	if pl.Contains(key(2)) || !pl.Contains(key(1)) {
		t.Fatal("energy policy with equal costs should degrade to LRU")
	}
}

func TestResizeWithDRAM(t *testing.T) {
	e := sim.NewEngine()
	m := energy.NewMeter()
	dram := hw.NewDRAM(e, m, "dram", hw.DRAMSpec{
		Name: "d", Ranks: 4, BytesPerRank: 1 << 20, WattsPerRank: 2, AccessJPerGiB: 0.5,
	})
	pl := NewPool(64, NewLRU())
	pl.PageBytes = 64 << 10 // 64 KiB pages: 64 pages = 4 MiB = 4 ranks
	pl.DRAM = dram
	pl.Resize(64)
	if dram.PoweredRanks() != 4 {
		t.Fatalf("ranks = %d, want 4", dram.PoweredRanks())
	}
	pl.Resize(16) // 1 MiB = 1 rank
	if dram.PoweredRanks() != 1 {
		t.Fatalf("ranks after shrink = %d, want 1", dram.PoweredRanks())
	}
	if pl.Capacity() != 16 {
		t.Fatalf("capacity = %d", pl.Capacity())
	}
}

func TestResizeEvicts(t *testing.T) {
	pl := NewPool(8, NewLRU())
	drive(t, pl, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	pl.Resize(3)
	if pl.Len() > 3 {
		t.Fatalf("len after shrink = %d", pl.Len())
	}
	// Most recent pages survive.
	for _, pg := range []int64{6, 7, 8} {
		if !pl.Contains(key(pg)) {
			t.Fatalf("page %d should have survived shrink", pg)
		}
	}
}

// Property: under any access pattern and any policy, residency never
// exceeds capacity (after unpinning), hits+misses equals accesses, and a
// resident page always hits.
func TestPoolInvariants(t *testing.T) {
	policies := map[string]func() Policy{
		"lru":    NewLRU,
		"clock":  NewClock,
		"2q":     NewTwoQ,
		"energy": NewEnergyAware,
	}
	for name, mk := range policies {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, capLog uint8) bool {
				capacity := 1 << (capLog % 5) // 1..16
				rng := rand.New(rand.NewSource(seed))
				pl := NewPool(capacity, mk())
				n := rng.Intn(300) + 50
				e := sim.NewEngine()
				ok := true
				e.Go("driver", func(p *sim.Proc) {
					for i := 0; i < n; i++ {
						pg := int64(rng.Intn(40))
						k := key(pg)
						resident := pl.Contains(k)
						before := pl.Stats()
						pl.Get(p, k, nil)
						after := pl.Stats()
						if resident && after.Hits != before.Hits+1 {
							ok = false
						}
						pl.Unpin(k)
						if pl.Len() > capacity {
							ok = false
						}
					}
				})
				if err := e.Run(); err != nil {
					return false
				}
				st := pl.Stats()
				return ok && st.Hits+st.Misses == int64(n)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
