package buffer

import "container/list"

// energyAware ranks eviction victims by the energy a re-fetch would cost:
// when memory pressure forces a choice, it evicts the page whose re-read
// is cheapest in joules (e.g. a sequential flash page) and keeps pages
// whose re-read is expensive (a random 15K-RPM disk page, or worse, one on
// a spun-down disk that would force a spin-up).
//
// This is the §4.3 redesign: "With energy savings in mind, the access
// costs of memory hierarchy levels are going to be different." Recency
// still breaks ties so the policy degrades to LRU when all pages cost the
// same.
type energyAware struct {
	order   *list.List // front = most recent, used for tie-breaks
	elems   map[PageKey]*list.Element
	refetch map[PageKey]float64 // joules to re-fetch
}

// NewEnergyAware returns the energy-aware replacement policy. Callers
// register per-page re-fetch costs with SetRefetchCost via the Pool;
// unregistered pages default to cost 0 (cheapest, evicted first).
func NewEnergyAware() Policy {
	return &energyAware{
		order:   list.New(),
		elems:   make(map[PageKey]*list.Element),
		refetch: make(map[PageKey]float64),
	}
}

func (p *energyAware) Name() string { return "energy" }

func (p *energyAware) Inserted(k PageKey) { p.elems[k] = p.order.PushFront(k) }

func (p *energyAware) Touched(k PageKey) {
	if e, ok := p.elems[k]; ok {
		p.order.MoveToFront(e)
	}
}

func (p *energyAware) Removed(k PageKey) {
	if e, ok := p.elems[k]; ok {
		p.order.Remove(e)
		delete(p.elems, k)
	}
	delete(p.refetch, k)
}

// SetRefetchCost records the estimated joules to re-load k on a miss.
func (p *energyAware) SetRefetchCost(k PageKey, joules float64) {
	p.refetch[k] = joules
}

func (p *energyAware) Victim(pinned func(PageKey) bool) (PageKey, bool) {
	var best PageKey
	bestCost := 0.0
	found := false
	// Walk from least to most recent; strict improvement keeps the
	// least-recent page among equal costs.
	for e := p.order.Back(); e != nil; e = e.Prev() {
		k := e.Value.(PageKey)
		if pinned(k) {
			continue
		}
		c := p.refetch[k]
		if !found || c < bestCost {
			best, bestCost, found = k, c, true
		}
	}
	return best, found
}

// RefetchCoster is implemented by policies that use per-page re-fetch
// energy estimates; the pool forwards costs to it when present.
type RefetchCoster interface {
	SetRefetchCost(k PageKey, joules float64)
}
