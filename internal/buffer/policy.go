// Package buffer implements the buffer pool and its replacement policies.
//
// The paper (§4.3, §5.2) argues the buffer manager must be redesigned for
// energy: classic policies minimise miss *latency*, but with energy as the
// objective a page's value is the energy a re-fetch would cost (which
// differs by an order of magnitude between disk and flash) weighed against
// the DRAM power spent holding it. Policies here include the classical
// trio (LRU, CLOCK, 2Q) and an energy-aware policy that ranks victims by
// estimated re-fetch energy.
package buffer

import "container/list"

// PageKey identifies a cached page: a file (stored object) and a page
// number within it.
type PageKey struct {
	File int32
	Page int64
}

// Policy is a replacement strategy. The pool calls Inserted/Touched/
// Removed to maintain policy state and Victim to choose an eviction
// candidate; Victim must not return pinned pages (the pool passes a
// pinned-test callback).
type Policy interface {
	Name() string
	Inserted(k PageKey)
	Touched(k PageKey)
	Removed(k PageKey)
	Victim(pinned func(PageKey) bool) (PageKey, bool)
}

// lru is least-recently-used via an intrusive list.
type lru struct {
	order *list.List // front = most recent
	elems map[PageKey]*list.Element
}

// NewLRU returns the classic least-recently-used policy.
func NewLRU() Policy {
	return &lru{order: list.New(), elems: make(map[PageKey]*list.Element)}
}

func (p *lru) Name() string { return "lru" }

func (p *lru) Inserted(k PageKey) {
	p.elems[k] = p.order.PushFront(k)
}

func (p *lru) Touched(k PageKey) {
	if e, ok := p.elems[k]; ok {
		p.order.MoveToFront(e)
	}
}

func (p *lru) Removed(k PageKey) {
	if e, ok := p.elems[k]; ok {
		p.order.Remove(e)
		delete(p.elems, k)
	}
}

func (p *lru) Victim(pinned func(PageKey) bool) (PageKey, bool) {
	for e := p.order.Back(); e != nil; e = e.Prev() {
		k := e.Value.(PageKey)
		if !pinned(k) {
			return k, true
		}
	}
	return PageKey{}, false
}

// clock is the second-chance approximation of LRU.
type clock struct {
	ring []PageKey
	ref  map[PageKey]bool
	pos  map[PageKey]int
	hand int
}

// NewClock returns the CLOCK (second chance) policy.
func NewClock() Policy {
	return &clock{ref: make(map[PageKey]bool), pos: make(map[PageKey]int)}
}

func (p *clock) Name() string { return "clock" }

func (p *clock) Inserted(k PageKey) {
	p.pos[k] = len(p.ring)
	p.ring = append(p.ring, k)
	p.ref[k] = true
}

func (p *clock) Touched(k PageKey) {
	if _, ok := p.pos[k]; ok {
		p.ref[k] = true
	}
}

func (p *clock) Removed(k PageKey) {
	i, ok := p.pos[k]
	if !ok {
		return
	}
	last := len(p.ring) - 1
	p.ring[i] = p.ring[last]
	p.pos[p.ring[i]] = i
	p.ring = p.ring[:last]
	delete(p.pos, k)
	delete(p.ref, k)
	if p.hand > last {
		p.hand = 0
	}
}

func (p *clock) Victim(pinned func(PageKey) bool) (PageKey, bool) {
	if len(p.ring) == 0 {
		return PageKey{}, false
	}
	// Two sweeps clearing reference bits, then one accepting anything
	// unpinned regardless of the bit.
	for sweep := 0; sweep < 3; sweep++ {
		for range p.ring {
			if p.hand >= len(p.ring) {
				p.hand = 0
			}
			k := p.ring[p.hand]
			p.hand++
			if pinned(k) {
				continue
			}
			if sweep < 2 && p.ref[k] {
				p.ref[k] = false
				continue
			}
			return k, true
		}
	}
	return PageKey{}, false
}

// twoQ is the 2Q scan-resistant policy: new pages enter a FIFO probation
// queue (a1); only pages re-referenced while resident are promoted to the
// main LRU (am). One sequential scan therefore cannot flush the hot set.
type twoQ struct {
	a1     *list.List
	am     *list.List
	where  map[PageKey]*list.Element
	inMain map[PageKey]bool
	// a1Max caps probation at a fraction of total entries.
}

// NewTwoQ returns the 2Q scan-resistant policy.
func NewTwoQ() Policy {
	return &twoQ{
		a1:     list.New(),
		am:     list.New(),
		where:  make(map[PageKey]*list.Element),
		inMain: make(map[PageKey]bool),
	}
}

func (p *twoQ) Name() string { return "2q" }

func (p *twoQ) Inserted(k PageKey) {
	p.where[k] = p.a1.PushFront(k)
	p.inMain[k] = false
}

func (p *twoQ) Touched(k PageKey) {
	e, ok := p.where[k]
	if !ok {
		return
	}
	if p.inMain[k] {
		p.am.MoveToFront(e)
		return
	}
	// Promote from probation to main on re-reference.
	p.a1.Remove(e)
	p.where[k] = p.am.PushFront(k)
	p.inMain[k] = true
}

func (p *twoQ) Removed(k PageKey) {
	e, ok := p.where[k]
	if !ok {
		return
	}
	if p.inMain[k] {
		p.am.Remove(e)
	} else {
		p.a1.Remove(e)
	}
	delete(p.where, k)
	delete(p.inMain, k)
}

func (p *twoQ) Victim(pinned func(PageKey) bool) (PageKey, bool) {
	// Prefer evicting probation (a1) back-to-front, then main LRU.
	for _, q := range []*list.List{p.a1, p.am} {
		for e := q.Back(); e != nil; e = e.Prev() {
			k := e.Value.(PageKey)
			if !pinned(k) {
				return k, true
			}
		}
	}
	return PageKey{}, false
}
