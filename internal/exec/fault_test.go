package exec

import (
	"errors"
	"testing"

	"energydb/internal/fault"
	"energydb/internal/sim"
)

// TestHashJoinMemBudgetTyped: a build side exceeding Ctx.MemBudgetBytes
// must fail with the typed fault.ErrMemBudget (so the session layer can
// classify it as non-retryable), free the partial build state, and leave
// zero live processes once the engine drains.
func TestHashJoinMemBudgetTyped(t *testing.T) {
	build := ordersLike(5000)
	probe := ordersLike(100)
	r := newRig(2)
	r.eng.Go("query", func(p *sim.Proc) {
		ctx := NewCtx(p, r.cpu)
		ctx.MemBudgetBytes = 1 << 10 // tiny: the build side cannot fit
		j := NewHashJoin(&Values{Tab: build}, &Values{Tab: probe}, 0, 0)
		_, err := RowCount(ctx, j)
		if err == nil {
			t.Error("join under a 1 KiB budget succeeded")
			return
		}
		if !errors.Is(err, fault.ErrMemBudget) {
			t.Errorf("error not typed ErrMemBudget: %v", err)
		}
		if j.bs != nil || j.MemBytes() != 0 {
			t.Error("partial build state not freed after budget failure")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d live process(es) after drain: %v", live, r.eng.LiveNames())
	}
}
