package exec

import (
	"fmt"

	"energydb/internal/compress"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// TableLayout selects the physical organisation of a stored table — the
// paper's first "future direction" (§5.1 physical database design).
type TableLayout int

const (
	// RowMajor stores complete tuples in slotted blocks (the classic
	// N-ary layout); scans must read every column.
	RowMajor TableLayout = iota
	// ColumnMajor stores each column in its own block sequence, each
	// independently compressed; scans read only projected columns.
	ColumnMajor
)

func (l TableLayout) String() string {
	if l == RowMajor {
		return "row"
	}
	return "column"
}

// block is one placed unit: a row range encoded to real bytes and mapped
// to a contiguous page range on the volume.
type block struct {
	lo, hi  int // row range [lo, hi)
	enc     []byte
	rawSize int64 // pre-compression byte size
	byteLo  int64 // volume byte extent [byteLo, byteHi)
	byteHi  int64
}

// StoredTable is a table placed onto a simulated volume: the encoding is
// real (codecs actually ran, sizes are measured), the pages are charged on
// the volume when scanned.
type StoredTable struct {
	Tab       *table.Table
	Vol       *storage.Volume
	Layout    TableLayout
	FileID    int32
	BlockRows int

	// Codecs holds the per-column codec for ColumnMajor placements; for
	// RowMajor placements RowCodec compresses whole blocks.
	Codecs   []compress.Codec
	RowCodec compress.Codec

	cols [][]block // [column][block], ColumnMajor
	rows []block   // RowMajor
}

// PlaceColumnMajor encodes t column-by-column in blocks of blockRows rows,
// compresses each block with the column's codec, and allocates contiguous
// volume pages per column.
func PlaceColumnMajor(t *table.Table, vol *storage.Volume, fileID int32, blockRows int, codecs []compress.Codec) (*StoredTable, error) {
	if len(codecs) != len(t.Schema.Cols) {
		return nil, fmt.Errorf("exec: %d codecs for %d columns", len(codecs), len(t.Schema.Cols))
	}
	if blockRows <= 0 {
		return nil, fmt.Errorf("exec: blockRows = %d", blockRows)
	}
	st := &StoredTable{
		Tab: t, Vol: vol, Layout: ColumnMajor, FileID: fileID,
		BlockRows: blockRows, Codecs: codecs,
		cols: make([][]block, len(t.Schema.Cols)),
	}
	n := t.Rows()
	for ci := range t.Schema.Cols {
		v := t.Column(ci)
		for lo := 0; lo < n; lo += blockRows {
			hi := lo + blockRows
			if hi > n {
				hi = n
			}
			raw := v.EncodeBytes(nil, lo, hi)
			enc := codecs[ci].Encode(nil, raw)
			off := vol.AllocExtent(int64(len(enc)))
			st.cols[ci] = append(st.cols[ci], block{
				lo: lo, hi: hi, enc: enc, rawSize: int64(len(raw)),
				byteLo: off, byteHi: off + int64(len(enc)),
			})
		}
	}
	return st, nil
}

// PlaceRowMajor encodes t row-by-row in blocks of blockRows rows,
// compresses each block with codec, and allocates contiguous pages.
func PlaceRowMajor(t *table.Table, vol *storage.Volume, fileID int32, blockRows int, codec compress.Codec) (*StoredTable, error) {
	if blockRows <= 0 {
		return nil, fmt.Errorf("exec: blockRows = %d", blockRows)
	}
	if codec == nil {
		codec = compress.Raw
	}
	st := &StoredTable{
		Tab: t, Vol: vol, Layout: RowMajor, FileID: fileID,
		BlockRows: blockRows, RowCodec: codec,
	}
	n := t.Rows()
	for lo := 0; lo < n; lo += blockRows {
		hi := lo + blockRows
		if hi > n {
			hi = n
		}
		b := t.Slice(lo, hi)
		raw := b.EncodeRows(nil, 0, b.Rows())
		enc := codec.Encode(nil, raw)
		off := vol.AllocExtent(int64(len(enc)))
		st.rows = append(st.rows, block{
			lo: lo, hi: hi, enc: enc, rawSize: int64(len(raw)),
			byteLo: off, byteHi: off + int64(len(enc)),
		})
	}
	return st, nil
}

// blockSpan reports the row range [lo, hi) of block b — the placement's
// cardinality metadata, available even when a scan reads no columns.
func (st *StoredTable) blockSpan(b int) (lo, hi int) {
	if st.Layout == RowMajor {
		return st.rows[b].lo, st.rows[b].hi
	}
	blk := st.cols[0][b]
	return blk.lo, blk.hi
}

// NumBlocks reports the block count (per column for ColumnMajor — all
// columns have the same count).
func (st *StoredTable) NumBlocks() int {
	if st.Layout == RowMajor {
		return len(st.rows)
	}
	if len(st.cols) == 0 {
		return 0
	}
	return len(st.cols[0])
}

// EncodedBytes reports the total on-volume bytes (all columns).
func (st *StoredTable) EncodedBytes() int64 {
	var n int64
	if st.Layout == RowMajor {
		for _, b := range st.rows {
			n += int64(len(b.enc))
		}
		return n
	}
	for _, col := range st.cols {
		for _, b := range col {
			n += int64(len(b.enc))
		}
	}
	return n
}

// RawBytes reports the total pre-compression bytes.
func (st *StoredTable) RawBytes() int64 {
	var n int64
	if st.Layout == RowMajor {
		for _, b := range st.rows {
			n += b.rawSize
		}
		return n
	}
	for _, col := range st.cols {
		for _, b := range col {
			n += b.rawSize
		}
	}
	return n
}

// ColEncodedBytes reports the on-volume bytes of one column
// (ColumnMajor only).
func (st *StoredTable) ColEncodedBytes(ci int) int64 {
	var n int64
	for _, b := range st.cols[ci] {
		n += int64(len(b.enc))
	}
	return n
}

// ColRawBytes reports the pre-compression bytes of one column
// (ColumnMajor only).
func (st *StoredTable) ColRawBytes(ci int) int64 {
	var n int64
	for _, b := range st.cols[ci] {
		n += b.rawSize
	}
	return n
}

// CompressionRatio reports encoded/raw across the whole table.
func (st *StoredTable) CompressionRatio() float64 {
	raw := st.RawBytes()
	if raw == 0 {
		return 1
	}
	return float64(st.EncodedBytes()) / float64(raw)
}
