package exec

import (
	"fmt"

	"energydb/internal/table"
)

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

func cmpMatches(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	default:
		return c >= 0
	}
}

// Pred is a vectorised predicate: Eval ANDs its result into sel (callers
// pass an all-true slice of b.Rows() length). Leaves charge CPU for every
// row they inspect.
type Pred interface {
	Eval(ctx *Ctx, b *table.Batch, sel []bool)
	String() string
}

// ColConst compares a column against a constant.
type ColConst struct {
	Col int
	Op  CmpOp
	Val table.Value
}

// Eval implements Pred.
func (p *ColConst) Eval(ctx *Ctx, b *table.Batch, sel []bool) {
	ctx.ChargeRows(b.Rows(), ctx.Costs.FilterCyclesPerRow)
	v := b.Vecs[p.Col]
	switch v.Type.Physical() {
	case table.PhysInt:
		c := p.Val.I
		for i, x := range v.I {
			if sel[i] && !cmpMatches(p.Op, cmp64(x, c)) {
				sel[i] = false
			}
		}
	case table.PhysFloat:
		c := p.Val.F
		for i, x := range v.F {
			if sel[i] && !cmpMatches(p.Op, cmpF(x, c)) {
				sel[i] = false
			}
		}
	default:
		c := p.Val.S
		for i, x := range v.S {
			if sel[i] && !cmpMatches(p.Op, cmpS(x, c)) {
				sel[i] = false
			}
		}
	}
}

func (p *ColConst) String() string {
	return fmt.Sprintf("col%d %v %v", p.Col, p.Op, p.Val)
}

// ColCol compares two columns of the same physical class.
type ColCol struct {
	Left, Right int
	Op          CmpOp
}

// Eval implements Pred.
func (p *ColCol) Eval(ctx *Ctx, b *table.Batch, sel []bool) {
	ctx.ChargeRows(b.Rows(), ctx.Costs.FilterCyclesPerRow)
	l, r := b.Vecs[p.Left], b.Vecs[p.Right]
	for i := range sel {
		if sel[i] && !cmpMatches(p.Op, l.Value(i).Compare(r.Value(i))) {
			sel[i] = false
		}
	}
}

func (p *ColCol) String() string {
	return fmt.Sprintf("col%d %v col%d", p.Left, p.Op, p.Right)
}

// And conjoins predicates (evaluated in order; later terms see earlier
// selections, so put cheap selective terms first).
type And struct{ Preds []Pred }

// Eval implements Pred.
func (p *And) Eval(ctx *Ctx, b *table.Batch, sel []bool) {
	for _, q := range p.Preds {
		q.Eval(ctx, b, sel)
	}
}

func (p *And) String() string {
	s := "("
	for i, q := range p.Preds {
		if i > 0 {
			s += " AND "
		}
		s += q.String()
	}
	return s + ")"
}

// Or disjoins predicates.
type Or struct{ Preds []Pred }

// Eval implements Pred.
func (p *Or) Eval(ctx *Ctx, b *table.Batch, sel []bool) {
	n := b.Rows()
	acc := make([]bool, n)
	tmp := make([]bool, n)
	for _, q := range p.Preds {
		for i := range tmp {
			tmp[i] = sel[i]
		}
		q.Eval(ctx, b, tmp)
		for i := range acc {
			acc[i] = acc[i] || tmp[i]
		}
	}
	for i := range sel {
		sel[i] = sel[i] && acc[i]
	}
}

func (p *Or) String() string {
	s := "("
	for i, q := range p.Preds {
		if i > 0 {
			s += " OR "
		}
		s += q.String()
	}
	return s + ")"
}

// Not negates a predicate.
type Not struct{ Pred Pred }

// Eval implements Pred.
func (p *Not) Eval(ctx *Ctx, b *table.Batch, sel []bool) {
	n := b.Rows()
	tmp := make([]bool, n)
	for i := range tmp {
		tmp[i] = sel[i]
	}
	p.Pred.Eval(ctx, b, tmp)
	for i := range sel {
		sel[i] = sel[i] && !tmp[i]
	}
}

func (p *Not) String() string { return "NOT " + p.Pred.String() }

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpS(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Scalar is a per-row expression producing a vector; projections and
// aggregate inputs use it.
type Scalar interface {
	Type(s *table.Schema) table.Type
	EvalInto(ctx *Ctx, b *table.Batch) *table.Vector
	String() string
}

// ColRef reads a column through unchanged.
type ColRef struct{ Col int }

// Type implements Scalar.
func (e *ColRef) Type(s *table.Schema) table.Type { return s.Cols[e.Col].Type }

// EvalInto implements Scalar.
func (e *ColRef) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector { return b.Vecs[e.Col] }

func (e *ColRef) String() string { return fmt.Sprintf("col%d", e.Col) }

// Const produces a constant vector.
type Const struct{ Val table.Value }

// Type implements Scalar.
func (e *Const) Type(*table.Schema) table.Type { return e.Val.Type }

// EvalInto implements Scalar.
func (e *Const) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	v := table.NewVector(e.Val.Type, b.Rows())
	for i := 0; i < b.Rows(); i++ {
		v.Append(e.Val)
	}
	return v
}

func (e *Const) String() string { return e.Val.String() }

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[o]
}

// Arith combines two numeric scalars. Integer-class operands promote to
// float64 when mixed with floats; Div always produces float64.
type Arith struct {
	Op   ArithOp
	L, R Scalar
}

// Type implements Scalar.
func (e *Arith) Type(s *table.Schema) table.Type {
	if e.Op == Div {
		return table.Float64
	}
	lt, rt := e.L.Type(s), e.R.Type(s)
	if lt.Physical() == table.PhysFloat || rt.Physical() == table.PhysFloat {
		return table.Float64
	}
	return lt
}

// EvalInto implements Scalar.
func (e *Arith) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	ctx.ChargeRows(b.Rows(), ctx.Costs.ProjectCyclesPerRow)
	l := e.L.EvalInto(ctx, b)
	r := e.R.EvalInto(ctx, b)
	out := table.NewVector(e.Type(b.Schema), b.Rows())
	n := b.Rows()
	if out.Type.Physical() == table.PhysFloat {
		for i := 0; i < n; i++ {
			out.F = append(out.F, arithF(e.Op, numAsF(l, i), numAsF(r, i)))
		}
		return out
	}
	for i := 0; i < n; i++ {
		out.I = append(out.I, arithI(e.Op, l.I[i], r.I[i]))
	}
	return out
}

func (e *Arith) String() string {
	return fmt.Sprintf("(%s %v %s)", e.L, e.Op, e.R)
}

func numAsF(v *table.Vector, i int) float64 {
	if v.Type.Physical() == table.PhysFloat {
		return v.F[i]
	}
	return float64(v.I[i])
}

func arithF(op ArithOp, a, b float64) float64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	default:
		if b == 0 {
			return 0
		}
		return a / b
	}
}

func arithI(op ArithOp, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	default:
		if b == 0 {
			return 0
		}
		return a / b
	}
}

// TruePred matches every row (no per-row charge: it does no work).
type TruePred struct{}

// Eval implements Pred.
func (TruePred) Eval(*Ctx, *table.Batch, []bool) {}

func (TruePred) String() string { return "true" }
