package exec

import (
	"fmt"

	"energydb/internal/table"
)

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Pred is a vectorised predicate. Eval filters the selection vector sel —
// ascending row indexes into b — in place and returns the surviving
// prefix (aliasing sel's backing array). Leaves charge CPU for every
// selected row they inspect, so later conjuncts after a selective one
// both run and cost less.
type Pred interface {
	Eval(ctx *Ctx, b *table.Batch, sel []int32) []int32
	String() string
}

// filterConst is the typed selection kernel for column-vs-constant
// comparisons: the operator and constant are hoisted out of the loop, and
// survivors are compacted into the front of sel.
func filterConst[T int64 | float64 | string](op CmpOp, col []T, c T, sel []int32) []int32 {
	out := sel[:0]
	switch op {
	case Eq:
		for _, i := range sel {
			if col[i] == c {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if col[i] != c {
				out = append(out, i)
			}
		}
	case Lt:
		for _, i := range sel {
			if col[i] < c {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if col[i] <= c {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if col[i] > c {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if col[i] >= c {
				out = append(out, i)
			}
		}
	}
	return out
}

// filterColCol is the typed kernel for column-vs-column comparisons.
func filterColCol[T int64 | float64 | string](op CmpOp, l, r []T, sel []int32) []int32 {
	out := sel[:0]
	switch op {
	case Eq:
		for _, i := range sel {
			if l[i] == r[i] {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if l[i] != r[i] {
				out = append(out, i)
			}
		}
	case Lt:
		for _, i := range sel {
			if l[i] < r[i] {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if l[i] <= r[i] {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if l[i] > r[i] {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if l[i] >= r[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

// ColConst compares a column against a constant.
type ColConst struct {
	Col int
	Op  CmpOp
	Val table.Value
}

// Eval implements Pred.
func (p *ColConst) Eval(ctx *Ctx, b *table.Batch, sel []int32) []int32 {
	ctx.ChargeRows(len(sel), ctx.Costs.FilterCyclesPerRow)
	v := b.Vecs[p.Col]
	switch v.Type.Physical() {
	case table.PhysInt:
		return filterConst(p.Op, v.I, p.Val.I, sel)
	case table.PhysFloat:
		return filterConst(p.Op, v.F, p.Val.F, sel)
	default:
		return filterConst(p.Op, v.S, p.Val.S, sel)
	}
}

func (p *ColConst) String() string {
	return fmt.Sprintf("col%d %v %v", p.Col, p.Op, p.Val)
}

// ColCol compares two columns of the same physical class.
type ColCol struct {
	Left, Right int
	Op          CmpOp
}

// Eval implements Pred.
func (p *ColCol) Eval(ctx *Ctx, b *table.Batch, sel []int32) []int32 {
	ctx.ChargeRows(len(sel), ctx.Costs.FilterCyclesPerRow)
	l, r := b.Vecs[p.Left], b.Vecs[p.Right]
	switch l.Type.Physical() {
	case table.PhysInt:
		return filterColCol(p.Op, l.I, r.I, sel)
	case table.PhysFloat:
		return filterColCol(p.Op, l.F, r.F, sel)
	default:
		return filterColCol(p.Op, l.S, r.S, sel)
	}
}

func (p *ColCol) String() string {
	return fmt.Sprintf("col%d %v col%d", p.Left, p.Op, p.Right)
}

// And conjoins predicates (evaluated in order; later terms see earlier
// selections, so put cheap selective terms first).
type And struct{ Preds []Pred }

// Eval implements Pred.
func (p *And) Eval(ctx *Ctx, b *table.Batch, sel []int32) []int32 {
	for _, q := range p.Preds {
		sel = q.Eval(ctx, b, sel)
	}
	return sel
}

func (p *And) String() string {
	s := "("
	for i, q := range p.Preds {
		if i > 0 {
			s += " AND "
		}
		s += q.String()
	}
	return s + ")"
}

// Or disjoins predicates.
type Or struct {
	Preds []Pred

	keep []bool
	tmp  []int32
}

// Eval implements Pred.
func (p *Or) Eval(ctx *Ctx, b *table.Batch, sel []int32) []int32 {
	if len(sel) == 0 {
		return sel
	}
	n := b.PhysRows() // sel holds physical row indexes
	if cap(p.keep) < n {
		p.keep = make([]bool, n)
	}
	keep := p.keep[:n]
	if cap(p.tmp) < len(sel) {
		p.tmp = make([]int32, len(sel))
	}
	tmp := p.tmp
	for _, q := range p.Preds {
		for _, i := range q.Eval(ctx, b, tmp[:copy(tmp, sel)]) {
			keep[i] = true
		}
	}
	// Marked positions are a subset of sel, so clearing while compacting
	// restores the all-false invariant in O(len(sel)), not O(rows).
	out := sel[:0]
	for _, i := range sel {
		if keep[i] {
			keep[i] = false
			out = append(out, i)
		}
	}
	return out
}

func (p *Or) String() string {
	s := "("
	for i, q := range p.Preds {
		if i > 0 {
			s += " OR "
		}
		s += q.String()
	}
	return s + ")"
}

// Not negates a predicate.
type Not struct {
	Pred Pred

	tmp []int32
}

// Eval implements Pred.
func (p *Not) Eval(ctx *Ctx, b *table.Batch, sel []int32) []int32 {
	if len(sel) == 0 {
		return sel
	}
	if cap(p.tmp) < len(sel) {
		p.tmp = make([]int32, len(sel))
	}
	tmp := p.tmp
	kept := p.Pred.Eval(ctx, b, tmp[:copy(tmp, sel)])
	// Both sel and kept are ascending: emit sel minus kept with one merge.
	out := sel[:0]
	k := 0
	for _, i := range sel {
		for k < len(kept) && kept[k] < i {
			k++
		}
		if k < len(kept) && kept[k] == i {
			continue
		}
		out = append(out, i)
	}
	return out
}

func (p *Not) String() string { return "NOT " + p.Pred.String() }

// Scalar is a per-row expression producing a vector; projections and
// aggregate inputs use it. EvalInto evaluates over the batch's physical
// rows (the full vectors), so a selection riding on the batch composes
// onto the result unchanged.
type Scalar interface {
	Type(s *table.Schema) table.Type
	EvalInto(ctx *Ctx, b *table.Batch) *table.Vector
	String() string
}

// ColRef reads a column through unchanged.
type ColRef struct{ Col int }

// Type implements Scalar.
func (e *ColRef) Type(s *table.Schema) table.Type { return s.Cols[e.Col].Type }

// EvalInto implements Scalar.
func (e *ColRef) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector { return b.Vecs[e.Col] }

func (e *ColRef) String() string { return fmt.Sprintf("col%d", e.Col) }

// Const produces a constant vector.
type Const struct {
	Val table.Value

	scratch *table.Vector
}

// Type implements Scalar.
func (e *Const) Type(*table.Schema) table.Type { return e.Val.Type }

// EvalInto implements Scalar. The output vector is node-local scratch,
// reused per batch (valid until the producer's next Next, per the
// operator contract).
func (e *Const) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	n := b.PhysRows()
	if e.scratch == nil {
		e.scratch = scratchVec(ctx, e.Val.Type, n)
	}
	e.scratch.Reset()
	e.scratch.AppendN(e.Val, n)
	return e.scratch
}

func (e *Const) String() string { return e.Val.String() }

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[o]
}

// Arith combines two numeric scalars. Integer-class operands promote to
// float64 when mixed with floats; Div always produces float64.
type Arith struct {
	Op   ArithOp
	L, R Scalar

	scratch *table.Vector
}

// Type implements Scalar.
func (e *Arith) Type(s *table.Schema) table.Type {
	if e.Op == Div {
		return table.Float64
	}
	lt, rt := e.L.Type(s), e.R.Type(s)
	if lt.Physical() == table.PhysFloat || rt.Physical() == table.PhysFloat {
		return table.Float64
	}
	return lt
}

// EvalInto implements Scalar. This is the node-at-a-time fallback path
// (FuseScalar compiles whole trees out of it); its output vector is
// node-local scratch reused per batch.
func (e *Arith) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	ctx.ChargeRows(b.Rows(), ctx.Costs.ProjectCyclesPerRow)
	l := e.L.EvalInto(ctx, b)
	r := e.R.EvalInto(ctx, b)
	n := b.PhysRows()
	if e.scratch == nil {
		e.scratch = scratchVec(ctx, e.Type(b.Schema), n)
	}
	e.scratch.Reset()
	out := e.scratch
	if out.Type.Physical() == table.PhysFloat {
		for i := 0; i < n; i++ {
			out.F = append(out.F, arithF(e.Op, numAsF(l, i), numAsF(r, i)))
		}
		return out
	}
	for i := 0; i < n; i++ {
		out.I = append(out.I, arithI(e.Op, l.I[i], r.I[i]))
	}
	return out
}

func (e *Arith) String() string {
	return fmt.Sprintf("(%s %v %s)", e.L, e.Op, e.R)
}

func numAsF(v *table.Vector, i int) float64 {
	if v.Type.Physical() == table.PhysFloat {
		return v.F[i]
	}
	return float64(v.I[i])
}

func arithF(op ArithOp, a, b float64) float64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	default:
		if b == 0 {
			return 0
		}
		return a / b
	}
}

func arithI(op ArithOp, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	default:
		if b == 0 {
			return 0
		}
		return a / b
	}
}

// TruePred matches every row (no per-row charge: it does no work).
type TruePred struct{}

// Eval implements Pred.
func (TruePred) Eval(_ *Ctx, _ *table.Batch, sel []int32) []int32 { return sel }

func (TruePred) String() string { return "true" }
