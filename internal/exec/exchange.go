package exec

import (
	"fmt"
	"math"

	"energydb/internal/sim"
	"energydb/internal/table"
)

// This file is the exchange layer: the primitives that move work and data
// across simulated-process boundaries so whole pipelines — not just scans —
// can run in parallel. Three shapes cover the executor's needs:
//
//   - Parallel (parallel.go) is the streaming exchange: DOP fragments feed
//     one consumer through a completion-order merge, batch by batch.
//   - RunFragments is the barrier exchange: DOP fragment pipelines run to
//     completion, each absorbed by a per-worker sink inside the worker's
//     own process; control returns when every fragment has exited. It is
//     the accumulation phase of partitioned aggregation and join builds.
//   - ParDo is plain task parallelism for the phases after the barrier
//     (partition-wise merges, per-partition hash-table builds).
//
// Ownership across an exchange boundary follows one rule (see CONTRACT.md):
// a batch never crosses a process boundary while its producer may still
// mutate it — sinks run inside the producing worker, and anything that
// outlives the worker is copied into state the next phase owns.

// fragDone is a worker-exit notification.
type fragDone struct {
	w   int
	err error
}

// RunFragments runs each fragment pipeline to completion in its own
// simulated process and feeds every non-empty batch it produces to
// sink(w, wctx, batch), called in worker w's process so CPU charged by the
// sink lands on that worker's core, concurrently with its siblings.
//
// The batch passed to sink is owned by the fragment and valid only for the
// duration of the call; a sink that keeps rows must copy them into
// worker-local state (per-worker accumulators need no locking — the sim
// engine interleaves processes deterministically, one at a time).
//
// An error from any fragment or sink stops the remaining workers at their
// next batch boundary; RunFragments blocks until every worker has exited
// and returns the first error in completion order. Fragments sharing a
// Morsels dispenser must have it Reset by the caller beforehand.
func RunFragments(ctx *Ctx, name string, frags []Operator, sink func(w int, wctx *Ctx, b *table.Batch) error) error {
	return runFragments(ctx, name, frags, sink, nil, nil)
}

// RunFragmentsWiden is RunFragments plus mid-run widening: while the
// barrier is live and the shared queue still has unclaimed morsels, a
// re-grant offer (Ctx.Widen) spawns spawn(w) as one more fragment worker
// against the live dispenser. spawn sees the new worker's index w before
// the worker starts, so the caller grows per-worker sink state (e.g. a
// fresh partial aggregation table) first. Results are unchanged by
// construction: fragment count never affects the merged result (see
// CONTRACT.md), widening only changes which core drains which morsel.
func RunFragmentsWiden(ctx *Ctx, name string, frags []Operator, sink func(w int, wctx *Ctx, b *table.Batch) error, spawn func(w int) (Operator, error), queue *Morsels) error {
	return runFragments(ctx, name, frags, sink, spawn, queue)
}

func runFragments(ctx *Ctx, name string, frags []Operator, sink func(w int, wctx *Ctx, b *table.Batch) error, spawn func(w int) (Operator, error), queue *Morsels) error {
	eng := ctx.P.Engine()
	done := sim.NewMailbox[fragDone](eng, name+":done")
	stop := false
	spawned := 0
	start := func(i int, frag Operator) *sim.Proc {
		return eng.Go(fmt.Sprintf("%s:w%d", name, i), func(wp *sim.Proc) {
			wctx := *ctx
			wctx.P = wp
			err := frag.Open(&wctx)
			if err == nil {
				for !stop {
					var b *table.Batch
					b, err = frag.Next(&wctx)
					if err != nil || b == nil {
						break
					}
					if b.Rows() == 0 {
						continue
					}
					if err = sink(i, &wctx, b); err != nil {
						break
					}
				}
				if cerr := frag.Close(&wctx); err == nil {
					err = cerr
				}
			}
			if err != nil {
				stop = true
			}
			done.Put(fragDone{w: i, err: err})
		})
	}
	for _, frag := range frags {
		start(spawned, frag)
		spawned++
	}
	registered := false
	if spawn != nil && queue != nil && ctx.Widen != nil {
		// Widening applies from scheduler event context, so new workers
		// take their attribution owner from the coordinator, captured here.
		owner := ctx.P.Owner()
		registered = ctx.Widen.Register(func(extra int) int {
			accepted := 0
			for accepted < extra && !stop && queue.Remaining() > 0 {
				frag, err := spawn(spawned)
				if err != nil || frag == nil {
					break
				}
				p := start(spawned, frag)
				p.SetOwner(owner)
				spawned++
				accepted++
			}
			return accepted
		})
	}
	// The coordinator is parked in done.Get whenever a widening offer can
	// fire, so spawned only grows while the loop below still has workers to
	// wait for; once all workers have exited the queue is drained and
	// further offers are declined.
	var first error
	for fin := 0; fin < spawned; fin++ {
		if d := done.Get(ctx.P); d.err != nil && first == nil {
			first = d.err
		}
	}
	if registered {
		ctx.Widen.Deregister()
	}
	return first
}

// ParDo runs n tasks, each in its own simulated process, and blocks until
// all have finished; it returns the first error in completion order.
// Tasks charge CPU through their own process, so up to n cores execute
// concurrently (excess tasks queue on the CPU resource). n == 1 runs the
// task inline on the caller's process, spawning nothing.
func ParDo(ctx *Ctx, name string, n int, task func(i int, wctx *Ctx) error) error {
	if n == 1 {
		return task(0, ctx)
	}
	eng := ctx.P.Engine()
	done := sim.NewMailbox[fragDone](eng, name+":done")
	for i := 0; i < n; i++ {
		i := i
		eng.Go(fmt.Sprintf("%s:p%d", name, i), func(wp *sim.Proc) {
			wctx := *ctx
			wctx.P = wp
			done.Put(fragDone{w: i, err: task(i, &wctx)})
		})
	}
	var first error
	for k := 0; k < n; k++ {
		if d := done.Get(ctx.P); d.err != nil && first == nil {
			first = d.err
		}
	}
	return first
}

// The partitioning hashes below split key space across partitions for the
// partitioned aggregation and join paths. They must be pure functions of
// the key value: the probe side recomputes them to route lookups to the
// partition the build side filed the key under.

// hashInt64 scrambles an int64 key (Fibonacci multiplicative hashing), so
// dense sequential keys spread across partitions instead of striping.
func hashInt64(x int64) uint32 {
	return uint32((uint64(x) * 0x9E3779B97F4A7C15) >> 32)
}

// hashFloat64 hashes a float64 key by its bit pattern, canonicalising
// negative zero first: Go map equality treats +0.0 and -0.0 as the same
// key, so they must land in the same partition or a partitioned probe
// would miss matches the serial single-map join finds. (NaN keys never
// match under map equality in either path.)
func hashFloat64(f float64) uint32 {
	if f == 0 {
		f = 0 // collapse -0.0 onto +0.0, matching map key equality
	}
	return hashInt64(int64(math.Float64bits(f)))
}

// hashString is FNV-1a over the key bytes; the aggregation path applies it
// to the collision-free binary group keys, so equal group tuples always
// land in the same partition.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ceilPow2 rounds n up to the next power of two (minimum 1), so partition
// routing can mask instead of divide.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
