package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"energydb/internal/buffer"
	"energydb/internal/compress"
	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// rig bundles a minimal simulated machine for executor tests.
type rig struct {
	eng   *sim.Engine
	meter *energy.Meter
	cpu   *hw.CPU
	vol   *storage.Volume
}

func newRig(nSSD int) *rig {
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	cpu := hw.NewCPU(eng, meter, "cpu", hw.ScanCPU2008())
	devs := make([]storage.BlockDevice, nSSD)
	for i := range devs {
		devs[i] = hw.NewSSD(eng, meter, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	vol := storage.NewVolume("vol", storage.Striped, 16<<10, devs)
	return &rig{eng: eng, meter: meter, cpu: cpu, vol: vol}
}

// run executes fn as the only query process and returns elapsed sim time.
func (r *rig) run(t *testing.T, fn func(ctx *Ctx)) float64 {
	t.Helper()
	r.eng.Go("query", func(p *sim.Proc) {
		ctx := NewCtx(p, r.cpu)
		fn(ctx)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return r.eng.Now()
}

// ordersLike builds a small deterministic table shaped like TPC-H ORDERS.
func ordersLike(n int) *table.Table {
	s := table.NewSchema("orders",
		table.Col("o_orderkey", table.Int64),
		table.Col("o_custkey", table.Int64),
		table.ColW("o_orderstatus", table.String, 1),
		table.Col("o_totalprice", table.Float64),
		table.Col("o_orderdate", table.Date),
		table.ColW("o_orderpriority", table.String, 15),
		table.ColW("o_clerk", table.String, 15),
	)
	rng := rand.New(rand.NewSource(17))
	statuses := []string{"F", "O", "P"}
	prios := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	t := table.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendRow(
			table.IntVal(int64(i+1)),
			table.IntVal(rng.Int63n(int64(n/4+1))+1),
			table.StrVal(statuses[rng.Intn(3)]),
			table.FloatVal(1000+rng.Float64()*99000),
			table.DateVal(int64(8000+rng.Intn(2400))),
			table.StrVal(prios[rng.Intn(5)]),
			table.StrVal(fmt.Sprintf("Clerk#%09d", rng.Intn(1000))),
		)
	}
	return t
}

func rawCodecs(n int) []compress.Codec {
	cs := make([]compress.Codec, n)
	for i := range cs {
		cs[i] = compress.Raw
	}
	return cs
}

func TestColumnScanProjectsAndFilters(t *testing.T) {
	r := newRig(3)
	tab := ordersLike(5000)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		// Read orderkey + totalprice, keep price > 50000, emit both.
		scan := NewColumnScan(st, []int{0, 3}, []int{0, 1},
			&ColConst{Col: 1, Op: Gt, Val: table.FloatVal(50000)})
		var err error
		got, err = Collect(ctx, scan)
		if err != nil {
			t.Error(err)
		}
	})
	want := 0
	for i := 0; i < tab.Rows(); i++ {
		if tab.Column(3).F[i] > 50000 {
			want++
		}
	}
	if got.Rows() != want {
		t.Fatalf("filtered rows = %d, want %d", got.Rows(), want)
	}
	if len(got.Schema.Cols) != 2 || got.Schema.Cols[1].Name != "o_totalprice" {
		t.Fatalf("schema = %v", got.Schema)
	}
	for i := 0; i < got.Rows(); i++ {
		if got.Column(1).F[i] <= 50000 {
			t.Fatal("predicate violated")
		}
	}
}

func TestColumnScanReadsOnlyProjectedColumns(t *testing.T) {
	tab := ordersLike(20000)

	bytesFor := func(readCols []int) int64 {
		r := newRig(3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 4096, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		emit := make([]int, len(readCols))
		for i := range emit {
			emit[i] = i
		}
		r.run(t, func(ctx *Ctx) {
			if _, err := RowCount(ctx, NewColumnScan(st, readCols, emit, nil)); err != nil {
				t.Error(err)
			}
		})
		return r.vol.Stats().BytesRead
	}
	two := bytesFor([]int{0, 1})
	seven := bytesFor([]int{0, 1, 2, 3, 4, 5, 6})
	if two*2 >= seven {
		t.Fatalf("projection pushdown broken: 2 cols read %d bytes vs 7 cols %d", two, seven)
	}
}

func TestRowScanMatchesColumnScanResults(t *testing.T) {
	tab := ordersLike(3000)
	pred := func() Pred { return &ColConst{Col: 1, Op: Le, Val: table.IntVal(100)} }

	rRow := newRig(2)
	stRow, err := PlaceRowMajor(tab, rRow.vol, 1, 512, compress.Raw)
	if err != nil {
		t.Fatal(err)
	}
	var rowRes *table.Table
	rRow.run(t, func(ctx *Ctx) {
		rowRes, err = Collect(ctx, NewRowScan(stRow, []int{0, 1}, pred()))
		if err != nil {
			t.Error(err)
		}
	})

	rCol := newRig(2)
	stCol, err := PlaceColumnMajor(tab, rCol.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	var colRes *table.Table
	rCol.run(t, func(ctx *Ctx) {
		colRes, err = Collect(ctx, NewColumnScan(stCol, []int{0, 1}, []int{0, 1}, pred()))
		if err != nil {
			t.Error(err)
		}
	})

	if rowRes.Rows() != colRes.Rows() {
		t.Fatalf("row scan %d rows, column scan %d rows", rowRes.Rows(), colRes.Rows())
	}
	for i := 0; i < rowRes.Rows(); i++ {
		if rowRes.Column(0).I[i] != colRes.Column(0).I[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestRowScanUsesBufferPool(t *testing.T) {
	r := newRig(2)
	tab := ordersLike(2000)
	st, err := PlaceRowMajor(tab, r.vol, 7, 512, compress.Raw)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(1024, buffer.NewLRU())
	r.eng.Go("query", func(p *sim.Proc) {
		ctx := NewCtx(p, r.cpu)
		ctx.Pool = pool
		// Scan twice: second pass should be all hits.
		for i := 0; i < 2; i++ {
			if _, err := RowCount(ctx, NewRowScan(st, []int{0}, nil)); err != nil {
				t.Error(err)
			}
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	stats := pool.Stats()
	// Every unique page misses exactly once (first pass); the second pass
	// plus boundary pages shared between adjacent blocks are all hits.
	if stats.Misses == 0 || stats.Hits <= stats.Misses {
		t.Fatalf("pool stats = %+v, want hits > misses > 0", stats)
	}
	// Volume I/O only happened for the misses.
	if r.vol.Stats().PagesRead != stats.Misses {
		t.Fatalf("volume reads %d != misses %d", r.vol.Stats().PagesRead, stats.Misses)
	}
}

func TestCompressedScanFasterButHotterOnWeakStorage(t *testing.T) {
	// The Figure 2 shape in miniature: LZ-compressed column scan on a
	// 90 W CPU + 5 W flash rig must be faster but use more energy.
	tab := ordersLike(60000)
	type res struct {
		elapsed float64
		joules  float64
		cpuSec  float64
	}
	measure := func(codec compress.Codec) res {
		r := newRig(3)
		codecs := make([]compress.Codec, 7)
		for i := range codecs {
			codecs[i] = codec
		}
		st, err := PlaceColumnMajor(tab, r.vol, 1, 8192, codecs)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := r.run(t, func(ctx *Ctx) {
			scan := NewColumnScan(st, []int{0, 1, 3, 4, 5}, []int{0, 1, 2, 3, 4},
				&ColConst{Col: 2, Op: Gt, Val: table.FloatVal(0)})
			if _, err := RowCount(ctx, scan); err != nil {
				t.Error(err)
			}
		})
		return res{
			elapsed: elapsed,
			joules:  float64(r.meter.TotalEnergy(energy.Seconds(elapsed))),
			cpuSec:  r.cpu.BusyCoreSeconds(),
		}
	}
	raw := measure(compress.Raw)
	lz := measure(compress.LZ)
	if lz.elapsed >= raw.elapsed {
		t.Fatalf("compressed scan not faster: lz=%v raw=%v", lz.elapsed, raw.elapsed)
	}
	if lz.joules <= raw.joules {
		t.Fatalf("compressed scan should cost more energy on this rig: lz=%vJ raw=%vJ",
			lz.joules, raw.joules)
	}
	if lz.cpuSec <= raw.cpuSec {
		t.Fatalf("compression should add CPU time: lz=%v raw=%v", lz.cpuSec, raw.cpuSec)
	}
}

func TestFilterAndProject(t *testing.T) {
	tab := ordersLike(1000)
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		src := &Values{Tab: tab, BatchRows: 256}
		f := &Filter{In: src, Pred: &ColConst{Col: 0, Op: Le, Val: table.IntVal(10)}}
		p := NewProject(f,
			[]Scalar{&ColRef{Col: 0}, &Arith{Op: Mul, L: &ColRef{Col: 3}, R: &Const{Val: table.FloatVal(2)}}},
			[]string{"k", "double_price"})
		var err error
		got, err = Collect(ctx, p)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 10 {
		t.Fatalf("rows = %d, want 10", got.Rows())
	}
	for i := 0; i < 10; i++ {
		wantP := tab.Column(3).F[i] * 2
		if got.Column(1).F[i] != wantP {
			t.Fatalf("row %d: price %v, want %v", i, got.Column(1).F[i], wantP)
		}
	}
}

func TestHashJoinCorrectness(t *testing.T) {
	// Join orders to a small customers table and verify against a naive
	// nested loop over the raw data.
	orders := ordersLike(2000)
	custSchema := table.NewSchema("cust",
		table.Col("c_custkey", table.Int64),
		table.ColW("c_name", table.String, 18),
	)
	cust := table.NewTable(custSchema)
	for i := 1; i <= 200; i++ {
		cust.AppendRow(table.IntVal(int64(i)), table.StrVal(fmt.Sprintf("Customer%04d", i)))
	}

	want := 0
	for i := 0; i < orders.Rows(); i++ {
		if orders.Column(1).I[i] <= 200 {
			want++
		}
	}

	r := newRig(1)
	var hj, nl int64
	r.run(t, func(ctx *Ctx) {
		j := NewHashJoin(
			&Values{Tab: cust}, &Values{Tab: orders},
			0, // c_custkey
			1, // o_custkey
		)
		var err error
		hj, err = RowCount(ctx, j)
		if err != nil {
			t.Error(err)
		}
		n := NewNestedLoopJoin(&Values{Tab: cust, BatchRows: 64}, &Values{Tab: orders, BatchRows: 512}, 0, 1)
		nl, err = RowCount(ctx, n)
		if err != nil {
			t.Error(err)
		}
	})
	if hj != int64(want) || nl != int64(want) {
		t.Fatalf("hash join %d, NL join %d, want %d", hj, nl, want)
	}
}

func TestNestedLoopRescansInnerIO(t *testing.T) {
	// Block NL join over a stored inner must re-read the inner relation
	// once per outer block — that is the I/O-for-memory trade.
	orders := ordersLike(4000)
	r := newRig(2)
	st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	outerSchema := table.NewSchema("keys", table.Col("k", table.Int64))
	outer := table.NewTable(outerSchema)
	for i := 1; i <= 8; i++ {
		outer.AppendRow(table.IntVal(int64(i * 100)))
	}
	r.run(t, func(ctx *Ctx) {
		inner := NewColumnScan(st, []int{0}, []int{0}, nil)
		j := NewNestedLoopJoin(&Values{Tab: outer, BatchRows: 2}, inner, 0, 0)
		if _, err := RowCount(ctx, j); err != nil {
			t.Error(err)
		}
	})
	// 8 outer rows in blocks of 2 = 4 rescans of the inner column.
	onePass := st.ColEncodedBytes(0)
	gotBytes := r.vol.Stats().BytesRead
	if gotBytes < 3*onePass {
		t.Fatalf("inner not rescanned: read %d bytes, one pass is %d", gotBytes, onePass)
	}
}

func TestSortOrdersRows(t *testing.T) {
	tab := ordersLike(500)
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		s := &Sort{In: &Values{Tab: tab}, Keys: []SortKey{{Col: 3, Desc: true}}}
		var err error
		got, err = Collect(ctx, s)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 500 {
		t.Fatalf("rows = %d", got.Rows())
	}
	for i := 1; i < got.Rows(); i++ {
		if got.Column(3).F[i] > got.Column(3).F[i-1] {
			t.Fatal("descending order violated")
		}
	}
}

func TestSortSpillsChargeTempIO(t *testing.T) {
	tab := ordersLike(4000)
	r := newRig(2)
	r.eng.Go("query", func(p *sim.Proc) {
		ctx := NewCtx(p, r.cpu)
		ctx.MemBudgetBytes = 16 << 10 // tiny: force spill
		ctx.Temp = r.vol
		s := &Sort{In: &Values{Tab: tab}, Keys: []SortKey{{Col: 0}}}
		if _, err := RowCount(ctx, s); err != nil {
			t.Error(err)
		}
		if s.Spills == 0 {
			t.Error("expected spills with tiny memory budget")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.vol.Stats()
	if st.PagesWritten == 0 || st.PagesRead == 0 {
		t.Fatalf("spill I/O not charged: %+v", st)
	}
}

func TestHashAgg(t *testing.T) {
	tab := ordersLike(3000)
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: tab},
			[]int{2}, // group by o_orderstatus
			[]AggSpec{
				{Func: Count, As: "n"},
				{Func: Sum, Col: 3, As: "revenue"},
				{Func: Min, Col: 0, As: "first_key"},
				{Func: Max, Col: 0, As: "last_key"},
				{Func: Avg, Col: 3, As: "avg_price"},
			})
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 3 { // statuses F, O, P
		t.Fatalf("groups = %d, want 3", got.Rows())
	}
	// Cross-check totals against raw data.
	var wantN [3]int64
	var wantSum [3]float64
	statusIdx := map[string]int{"F": 0, "O": 1, "P": 2}
	for i := 0; i < tab.Rows(); i++ {
		si := statusIdx[tab.Column(2).S[i]]
		wantN[si]++
		wantSum[si] += tab.Column(3).F[i]
	}
	var totalN int64
	for i := 0; i < got.Rows(); i++ {
		si := statusIdx[got.Column(0).S[i]]
		if got.Column(1).I[i] != wantN[si] {
			t.Fatalf("group %v count = %d, want %d", got.Column(0).S[i], got.Column(1).I[i], wantN[si])
		}
		diff := got.Column(2).F[i] - wantSum[si]
		if diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("group %v sum mismatch", got.Column(0).S[i])
		}
		totalN += got.Column(1).I[i]
	}
	if totalN != int64(tab.Rows()) {
		t.Fatalf("counts sum to %d, want %d", totalN, tab.Rows())
	}
}

func TestHashAggGlobalNoRows(t *testing.T) {
	empty := table.NewTable(table.NewSchema("e", table.Col("x", table.Int64)))
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: empty}, nil, []AggSpec{{Func: Count, As: "n"}})
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 1 || got.Column(0).I[0] != 0 {
		t.Fatalf("global count over empty input = %v", got)
	}
}

func TestLimitStopsEarlyAndCancelsScanIO(t *testing.T) {
	tab := ordersLike(50000)
	r := newRig(3)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	r.run(t, func(ctx *Ctx) {
		scan := NewColumnScan(st, []int{0}, []int{0}, nil)
		lim := &Limit{In: scan, N: 10}
		got, err = RowCount(ctx, lim)
		if err != nil {
			t.Error(err)
		}
	})
	if got != 10 {
		t.Fatalf("limit rows = %d", got)
	}
	// The scan must not have read the whole column.
	if r.vol.Stats().BytesRead >= st.ColEncodedBytes(0) {
		t.Fatalf("limit did not cancel the scan: read %d of %d bytes",
			r.vol.Stats().BytesRead, st.ColEncodedBytes(0))
	}
}

func TestOrPredicate(t *testing.T) {
	tab := ordersLike(1000)
	r := newRig(1)
	var got int64
	r.run(t, func(ctx *Ctx) {
		p := &Or{Preds: []Pred{
			&ColConst{Col: 0, Op: Le, Val: table.IntVal(5)},
			&ColConst{Col: 0, Op: Gt, Val: table.IntVal(995)},
		}}
		f := &Filter{In: &Values{Tab: tab}, Pred: p}
		var err error
		got, err = RowCount(ctx, f)
		if err != nil {
			t.Error(err)
		}
	})
	if got != 10 {
		t.Fatalf("or-pred rows = %d, want 10", got)
	}
}

func TestNotPredicate(t *testing.T) {
	tab := ordersLike(100)
	r := newRig(1)
	var got int64
	r.run(t, func(ctx *Ctx) {
		p := &Not{Pred: &ColConst{Col: 0, Op: Le, Val: table.IntVal(40)}}
		got, _ = RowCount(ctx, &Filter{In: &Values{Tab: tab}, Pred: p})
	})
	if got != 60 {
		t.Fatalf("not-pred rows = %d, want 60", got)
	}
}

func TestColColPredicate(t *testing.T) {
	s := table.NewSchema("t", table.Col("a", table.Int64), table.Col("b", table.Int64))
	tab := table.NewTable(s)
	for i := 0; i < 100; i++ {
		tab.AppendRow(table.IntVal(int64(i)), table.IntVal(int64(i%10)*10))
	}
	r := newRig(1)
	var got int64
	r.run(t, func(ctx *Ctx) {
		got, _ = RowCount(ctx, &Filter{In: &Values{Tab: tab},
			Pred: &ColCol{Left: 0, Right: 1, Op: Eq}})
	})
	want := int64(0)
	for i := 0; i < 100; i++ {
		if int64(i) == int64(i%10)*10 {
			want++
		}
	}
	if got != want {
		t.Fatalf("colcol rows = %d, want %d", got, want)
	}
}

func TestCompressionRatioMeasured(t *testing.T) {
	tab := ordersLike(20000)
	r := newRig(1)
	codecs := []compress.Codec{
		compress.Delta, compress.Bitpack, compress.Dict, compress.LZ,
		compress.Bitpack, compress.Dict, compress.Dict,
	}
	st, err := PlaceColumnMajor(tab, r.vol, 1, 4096, codecs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := st.CompressionRatio()
	if ratio >= 0.8 || ratio <= 0.05 {
		t.Fatalf("orders-like compression ratio = %v, expected meaningful compression", ratio)
	}
	if st.RawBytes() <= 0 || st.EncodedBytes() <= 0 || st.NumBlocks() == 0 {
		t.Fatal("placement accounting broken")
	}
}
