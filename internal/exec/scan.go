package exec

import (
	"fmt"

	"energydb/internal/buffer"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// ColumnScan reads a ColumnMajor StoredTable: only the columns in ReadCols
// are fetched from the volume, each block is really decompressed (charging
// the codec's decode cycles), a predicate filters rows, and Emit selects
// the output columns.
//
// I/O is pipelined: a background reader process fetches block b+1..b+W
// while the consumer decodes and processes block b, so elapsed time tends
// to max(I/O, CPU) — the overlap the paper's Figure 2 assumes ("by
// overlapping disk with CPU time, the total time is 10 secs").
//
// A scan owns the whole table by default. When Morsels points at a shared
// dispenser the scan is one fragment of a parallel scan: its reader claims
// block ranges from the dispenser instead, and together the fragments
// under one Parallel operator cover every block exactly once.
type ColumnScan struct {
	ST       *StoredTable
	ReadCols []int    // source column indexes fetched (projection ∪ predicate columns)
	Emit     []int    // positions within ReadCols forming the output row
	Pred     Pred     // evaluated over the ReadCols batch; nil = all rows
	Window   int      // pipeline depth in blocks (default 2)
	Morsels  *Morsels // shared block dispenser; nil = scan all blocks

	schema  *table.Schema
	readSch *table.Schema
	nblocks int
	eof     bool
	started bool
	cancel  bool
	ready   *sim.Mailbox[blockMsg]
	credits *sim.Mailbox[int]
	sel     []int32      // reusable selection vector
	view    *table.Batch // reusable output view batch
}

// blockMsg is one delivery from a scan reader process: a fetched block
// index, an I/O error, or (b < 0, err == nil) end of stream.
type blockMsg struct {
	b   int
	err error
}

// NewColumnScan builds a scan; emit positions index into readCols. A scan
// may read (and emit) no columns at all — a count-only plan — in which
// case it produces zero-column batches carrying each block's cardinality
// without touching the volume.
func NewColumnScan(st *StoredTable, readCols, emit []int, pred Pred) *ColumnScan {
	if st.Layout != ColumnMajor {
		panic("exec: ColumnScan over non-columnar placement")
	}
	cols := make([]table.Column, len(emit))
	for i, e := range emit {
		cols[i] = st.Tab.Schema.Cols[readCols[e]]
	}
	readCs := make([]table.Column, len(readCols))
	for i, ci := range readCols {
		readCs[i] = st.Tab.Schema.Cols[ci]
	}
	return &ColumnScan{
		ST:       st,
		ReadCols: readCols,
		Emit:     emit,
		Pred:     pred,
		schema:   table.NewSchema(st.Tab.Schema.Name, cols...),
		readSch:  table.NewSchema(st.Tab.Schema.Name, readCs...),
	}
}

// Schema implements Operator.
func (s *ColumnScan) Schema() *table.Schema { return s.schema }

// Open implements Operator. A shared Morsels dispenser is NOT reset here:
// sibling fragments claim from the same queue and the Parallel operator
// owns its reset.
func (s *ColumnScan) Open(ctx *Ctx) error {
	s.nblocks = s.ST.NumBlocks()
	s.eof = false
	s.started = false
	s.cancel = false
	return nil
}

func (s *ColumnScan) start(ctx *Ctx) {
	s.started = true
	st := s.ST
	morsels := s.Morsels
	if morsels == nil {
		// Serial scan: one private morsel covering every block keeps the
		// reader streaming blocks in order exactly as before.
		morsels = NewMorsels(s.nblocks, max(1, s.nblocks))
	}
	// Fetch all projected columns' pages for each block in one parallel
	// batch so every device works at once.
	s.ready, s.credits = startMorselReader(ctx, fmt.Sprintf("colscan:%s", st.Tab.Schema.Name),
		s.Window, st.Vol, morsels, func() bool { return s.cancel },
		func(b int, pages []int64) []int64 {
			for _, ci := range s.ReadCols {
				blk := st.cols[ci][b]
				plo, phi := st.Vol.PageSpan(blk.byteLo, blk.byteHi)
				for pg := plo; pg < phi; pg++ {
					pages = append(pages, pg)
				}
			}
			return pages
		})
}

// Next implements Operator.
func (s *ColumnScan) Next(ctx *Ctx) (*table.Batch, error) {
	if s.eof {
		return nil, nil
	}
	if !s.started {
		s.start(ctx)
	}
	m := s.ready.Get(ctx.P)
	if m.err != nil {
		s.eof = true
		return nil, fmt.Errorf("exec: scan %s: %w", s.schema.Name, m.err)
	}
	b := m.b
	if b < 0 {
		s.eof = true
		return nil, nil
	}
	s.credits.Put(1)

	read := table.NewBatch(s.readSch, 0)
	var logicalBytes int64
	for i, ci := range s.ReadCols {
		blk := s.ST.cols[ci][b]
		raw, err := s.ST.Codecs[ci].Decode(nil, blk.enc)
		if err != nil {
			return nil, fmt.Errorf("exec: column %d block %d: %w", ci, b, err)
		}
		// Real decompression cost: decode cycles per logical byte.
		ctx.ChargeBytes(blk.rawSize, s.ST.Codecs[ci].Cost().DecodeCyclesPerByte)
		v, err := table.DecodeVector(s.ST.Tab.Schema.Cols[ci].Type, raw, blk.hi-blk.lo)
		if err != nil {
			return nil, fmt.Errorf("exec: column %d block %d: %w", ci, b, err)
		}
		read.Vecs[i] = v
		logicalBytes += blk.rawSize
	}
	lo, hi := s.ST.blockSpan(b)
	read.SetRows(hi - lo)
	// Scanner work proper: predicate + projection over the logical bytes.
	ctx.ChargeBytes(logicalBytes, ctx.Costs.ScanCyclesPerByte)
	ctx.TouchDRAM(logicalBytes)
	return applyPredEmit(ctx, read, s.Pred, s.Emit, s.schema, &s.sel, &s.view), nil
}

// Close implements Operator. Closing early cancels the reader process.
func (s *ColumnScan) Close(ctx *Ctx) error {
	if s.started && !s.eof {
		s.cancel = true
		// Unblock the reader if it is waiting for credit, and release any
		// blocks it already fetched.
		s.credits.Put(1)
		for {
			if _, ok := s.ready.TryGet(); !ok {
				break
			}
		}
	}
	return nil
}

// RowScan reads a RowMajor StoredTable: every page of every block is
// fetched (all columns travel together), blocks are decompressed and
// parsed back into tuples, then filtered and projected.
//
// With Window > 0 the scan pipelines: a reader process prefetches up to
// Window blocks ahead with all devices in parallel, bypassing the buffer
// pool (big scans should not pollute it). With Window == 0 pages go one
// at a time through ctx.Pool when present — the point-lookup path.
//
// When Morsels points at a shared dispenser the scan is one fragment of a
// parallel scan (see Parallel): its reader claims block ranges from the
// dispenser and prefetches them with a Window-deep credit pipeline.
type RowScan struct {
	ST      *StoredTable
	Emit    []int // source schema positions forming the output row
	Pred    Pred  // evaluated over the full source batch; nil = all rows
	Window  int
	Morsels *Morsels // shared block dispenser; nil = scan all blocks

	schema  *table.Schema
	next    int
	eof     bool
	started bool
	cancel  bool
	ready   *sim.Mailbox[blockMsg]
	credits *sim.Mailbox[int]
	sel     []int32      // reusable selection vector
	view    *table.Batch // reusable output view batch
}

// NewRowScan builds a row-store scan; emit positions index the source
// schema.
func NewRowScan(st *StoredTable, emit []int, pred Pred) *RowScan {
	if st.Layout != RowMajor {
		panic("exec: RowScan over non-row placement")
	}
	cols := make([]table.Column, len(emit))
	for i, e := range emit {
		cols[i] = st.Tab.Schema.Cols[e]
	}
	return &RowScan{ST: st, Emit: emit, Pred: pred,
		schema: table.NewSchema(st.Tab.Schema.Name, cols...)}
}

// Schema implements Operator.
func (s *RowScan) Schema() *table.Schema { return s.schema }

// Open implements Operator. As with ColumnScan, a shared Morsels
// dispenser is reset by the owning Parallel operator, not here.
func (s *RowScan) Open(ctx *Ctx) error {
	s.next = 0
	s.eof = false
	s.started = false
	s.cancel = false
	return nil
}

// startMorsels launches the fragment reader: it claims morsels from the
// shared dispenser and prefetches their blocks under a Window-deep credit
// pipeline, bypassing the buffer pool like the streaming reader.
func (s *RowScan) startMorsels(ctx *Ctx) {
	s.started = true
	st := s.ST
	s.ready, s.credits = startMorselReader(ctx, fmt.Sprintf("rowscan:%s", st.Tab.Schema.Name),
		s.Window, st.Vol, s.Morsels, func() bool { return s.cancel },
		func(b int, pages []int64) []int64 {
			blk := st.rows[b]
			plo, phi := st.Vol.PageSpan(blk.byteLo, blk.byteHi)
			for pg := plo; pg < phi; pg++ {
				pages = append(pages, pg)
			}
			return pages
		})
}

// startMorselReader wires the fragment-reader pipeline shared by both
// scans — a ready and a credits mailbox with window credits primed
// (window <= 0 selects 2) and a reader process — and runs the protocol:
// claim a morsel, gate each of its blocks on a pipeline credit, collect
// the block's pages via pageList, fetch them in one vectored request and
// announce the block on ready; when the dispenser runs dry a sentinel
// (b < 0) marks end of stream. A device error is announced the same way
// (b < 0 with err set) and ends the reader. Cancellation is checked
// after every credit, so a closing consumer can always release a parked
// reader with a single credit.
func startMorselReader(ctx *Ctx, name string, window int, vol *storage.Volume, morsels *Morsels, cancelled func() bool, pageList func(b int, pages []int64) []int64) (ready *sim.Mailbox[blockMsg], credits *sim.Mailbox[int]) {
	if window <= 0 {
		window = 2
	}
	eng := ctx.P.Engine()
	ready = sim.NewMailbox[blockMsg](eng, name+":ready")
	credits = sim.NewMailbox[int](eng, name+":credits")
	for i := 0; i < window; i++ {
		credits.Put(1)
	}
	eng.Go(name, func(rp *sim.Proc) {
		var pages []int64
		for {
			lo, hi, ok := morsels.Claim()
			if !ok {
				break
			}
			for b := lo; b < hi; b++ {
				credits.Get(rp)
				if cancelled() {
					return
				}
				pages = pageList(b, pages[:0])
				if err := vol.ReadPages(rp, pages); err != nil {
					ready.Put(blockMsg{b: -1, err: err})
					return
				}
				ready.Put(blockMsg{b: b})
			}
		}
		ready.Put(blockMsg{b: -1}) // end of stream
	})
	return ready, credits
}

func (s *RowScan) start(ctx *Ctx) {
	s.started = true
	eng := ctx.P.Engine()
	s.ready = sim.NewMailbox[blockMsg](eng, "rowscan:ready")
	st := s.ST
	if len(st.rows) == 0 {
		return
	}
	// Map every page of the table's extent to the blocks it completes
	// (adjacent blocks share boundary pages).
	firstPage, _ := st.Vol.PageSpan(st.rows[0].byteLo, st.rows[0].byteHi)
	last := st.rows[len(st.rows)-1]
	_, lastPage := st.Vol.PageSpan(last.byteLo, last.byteHi)
	remaining := make([]int, len(st.rows))
	blocksOf := make(map[int64][]int)
	for b, blk := range st.rows {
		lo, hi := st.Vol.PageSpan(blk.byteLo, blk.byteHi)
		remaining[b] = int(hi - lo)
		for pg := lo; pg < hi; pg++ {
			blocksOf[pg] = append(blocksOf[pg], b)
		}
	}
	window := s.Window * 32 // pages in flight
	eng.Go(fmt.Sprintf("rowscan:%s", st.Tab.Schema.Name), func(rp *sim.Proc) {
		err := st.Vol.Scan(rp, firstPage, lastPage, window, func(pg int64) {
			for _, b := range blocksOf[pg] {
				remaining[b]--
				if remaining[b] == 0 {
					s.ready.Put(blockMsg{b: b})
				}
			}
		})
		if err != nil {
			s.ready.Put(blockMsg{b: -1, err: err})
		}
	})
}

// Next implements Operator.
func (s *RowScan) Next(ctx *Ctx) (*table.Batch, error) {
	var bi int // placement block index (errors name the on-disk block)
	switch {
	case s.Morsels != nil:
		if s.eof {
			return nil, nil
		}
		if !s.started {
			s.startMorsels(ctx)
		}
		m := s.ready.Get(ctx.P)
		if m.err != nil {
			s.eof = true
			return nil, fmt.Errorf("exec: scan %s: %w", s.schema.Name, m.err)
		}
		bi = m.b
		if bi < 0 {
			s.eof = true
			return nil, nil
		}
		s.credits.Put(1)
		s.next++
	case s.Window > 0:
		if s.next >= len(s.ST.rows) {
			return nil, nil
		}
		if !s.started {
			s.start(ctx)
		}
		// Blocks arrive in I/O completion order; row order within the
		// relation is not semantically meaningful.
		m := s.ready.Get(ctx.P)
		if m.err != nil {
			s.eof = true
			s.next = len(s.ST.rows)
			return nil, fmt.Errorf("exec: scan %s: %w", s.schema.Name, m.err)
		}
		bi = m.b
		s.next++
	default:
		if s.next >= len(s.ST.rows) {
			return nil, nil
		}
		bi = s.next
		s.next++
	}
	blk := s.ST.rows[bi]

	if s.Morsels == nil && s.Window <= 0 {
		// Unpipelined path: fetch pages through the pool when attached.
		pageLo, pageHi := s.ST.Vol.PageSpan(blk.byteLo, blk.byteHi)
		for pg := pageLo; pg < pageHi; pg++ {
			if ctx.Pool != nil {
				k := buffer.PageKey{File: s.ST.FileID, Page: pg}
				err := ctx.Pool.Get(ctx.P, k, func(p *sim.Proc) error {
					if err := s.ST.Vol.ReadPage(p, pg); err != nil {
						return err
					}
					if ctx.PageRefetchJoules > 0 {
						ctx.Pool.SetRefetchCost(k, ctx.PageRefetchJoules)
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("exec: scan %s: %w", s.schema.Name, err)
				}
				ctx.Pool.Unpin(k)
			} else {
				if err := s.ST.Vol.ReadPage(ctx.P, pg); err != nil {
					return nil, fmt.Errorf("exec: scan %s: %w", s.schema.Name, err)
				}
			}
		}
	}

	raw, err := s.ST.RowCodec.Decode(nil, blk.enc)
	if err != nil {
		return nil, fmt.Errorf("exec: row block %d: %w", bi, err)
	}
	ctx.ChargeBytes(blk.rawSize, s.ST.RowCodec.Cost().DecodeCyclesPerByte)
	full, err := table.DecodeRows(s.ST.Tab.Schema, raw, blk.hi-blk.lo)
	if err != nil {
		return nil, fmt.Errorf("exec: row block %d: %w", bi, err)
	}
	// Row stores pay tuple-parsing cost on top of the scan work.
	ctx.ChargeBytes(blk.rawSize, ctx.Costs.ScanCyclesPerByte+ctx.Costs.RowParseCyclesPerByte)
	ctx.TouchDRAM(blk.rawSize)
	return applyPredEmit(ctx, full, s.Pred, s.Emit, s.schema, &s.sel, &s.view), nil
}

// Close implements Operator. An early close lets the streaming reader run
// out on its own (it holds no consumer-owned resources); a morsel-mode
// reader blocked on credits is released explicitly. Remaining ready
// notifications are drained.
func (s *RowScan) Close(ctx *Ctx) error {
	s.cancel = true
	if s.started {
		if s.Morsels != nil && !s.eof {
			s.credits.Put(1)
		}
		for {
			if _, ok := s.ready.TryGet(); !ok {
				break
			}
		}
	}
	return nil
}

// iotaSel returns scratch resized to [0, 1, ..., n-1], growing its backing
// array only when needed so steady-state filtering allocates nothing.
func iotaSel(scratch *[]int32, n int) []int32 {
	s := *scratch
	if cap(s) < n {
		s = make([]int32, n)
		*scratch = s
	}
	s = s[:n]
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// applyPredEmit filters batch rows with pred and projects emit positions.
// The output columns are always views of in's vectors; when only some
// rows survive, the surviving selection vector rides on the batch instead
// of being gathered here — compaction is deferred to the consumer's
// materialisation boundary. view holds the caller's reusable output view
// and scratch its reusable selection vector (both aliased by the returned
// batch, which is valid until the caller's next call).
func applyPredEmit(ctx *Ctx, in *table.Batch, pred Pred, emit []int, schema *table.Schema, scratch *[]int32, view **table.Batch) *table.Batch {
	n := in.Rows()
	sel := iotaSel(scratch, n)
	if pred != nil {
		sel = pred.Eval(ctx, in, sel)
	}
	if *view == nil {
		*view = &table.Batch{Schema: schema, Vecs: make([]*table.Vector, len(emit))}
	}
	o := *view
	for oi, e := range emit {
		o.Vecs[oi] = in.Vecs[e]
	}
	if len(sel) == n || len(emit) == 0 {
		// All rows survive, or there are no columns to select over: a
		// plain batch with explicit cardinality (zero-column batches never
		// carry a selection).
		o.SetRows(len(sel))
	} else {
		o.SetSel(sel)
	}
	return o
}
