package exec

// Widener is the mid-pipeline re-grant hook. A fragmented exchange that
// can absorb extra workers while running (the streaming Parallel merge,
// the partitioned aggregation barrier) registers an apply callback when
// it starts and deregisters when it finishes; the session offers freed
// cores through Offer. Accepting an offer adds fragments to the live
// morsel dispenser — no restart, no result change (fragment count never
// affects results; see CONTRACT.md).
//
// All calls happen under the engine's one-event-at-a-time discipline
// (Offer from scheduler event context, Register/Deregister from the
// consumer's process), so no locking is needed.
type Widener struct {
	apply func(extra int) int
}

// Register installs the live exchange's apply callback and reports
// whether it took the slot. The callback is offered free cores and
// returns how many it accepted (0..extra), having already spawned that
// many extra fragment workers. The widener holds at most one callback —
// the outermost live exchange wins — so a nested exchange (a join build
// running inside an aggregation fragment) is declined and runs at its
// granted width.
func (w *Widener) Register(fn func(extra int) int) bool {
	if w == nil || w.apply != nil {
		return false
	}
	w.apply = fn
	return true
}

// Deregister removes the callback; subsequent offers are declined.
func (w *Widener) Deregister() { w.apply = nil }

// Offer hands extra free cores to the registered exchange, returning
// how many were accepted. Safe on a nil Widener.
func (w *Widener) Offer(extra int) int {
	if w == nil || w.apply == nil || extra <= 0 {
		return 0
	}
	n := w.apply(extra)
	if n < 0 {
		n = 0
	}
	if n > extra {
		n = extra
	}
	return n
}
