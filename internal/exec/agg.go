package exec

import (
	"sort"

	"energydb/internal/table"
)

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate column: Func applied to the child's column Col
// (ignored for Count), labelled As in the output.
type AggSpec struct {
	Func AggFunc
	Col  int
	As   string
}

// HashAgg groups rows by the GroupBy columns and computes aggregates. The
// output schema is the group columns followed by one column per spec.
// Output order is deterministic (sorted by group key) so results are
// reproducible.
type HashAgg struct {
	In      Operator
	GroupBy []int
	Aggs    []AggSpec

	schema *table.Schema
	groups map[string]*aggState
	keys   map[string][]table.Value
	order  []string
	next   int
}

type aggState struct {
	count int64
	sumI  []int64
	sumF  []float64
	minV  []table.Value
	maxV  []table.Value
	seen  []bool
}

// NewHashAgg builds a grouping aggregation.
func NewHashAgg(in Operator, groupBy []int, aggs []AggSpec) *HashAgg {
	ins := in.Schema()
	var cols []table.Column
	for _, g := range groupBy {
		cols = append(cols, ins.Cols[g])
	}
	for _, a := range aggs {
		t := table.Int64
		switch a.Func {
		case Count:
			t = table.Int64
		case Avg:
			t = table.Float64
		default:
			t = ins.Cols[a.Col].Type
			if a.Func == Sum && t.Physical() == table.PhysFloat {
				t = table.Float64
			}
		}
		name := a.As
		if name == "" {
			name = a.Func.String()
		}
		cols = append(cols, table.Col(name, t))
	}
	return &HashAgg{In: in, GroupBy: groupBy, Aggs: aggs,
		schema: table.NewSchema(ins.Name, cols...)}
}

// Schema implements Operator.
func (h *HashAgg) Schema() *table.Schema { return h.schema }

// Open implements Operator: it drains the child and builds all groups.
func (h *HashAgg) Open(ctx *Ctx) error {
	if err := h.In.Open(ctx); err != nil {
		return err
	}
	h.groups = make(map[string]*aggState)
	h.keys = make(map[string][]table.Value)
	h.order = nil
	h.next = 0
	for {
		b, err := h.In.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		ctx.ChargeRows(b.Rows()*max(1, len(h.Aggs)), ctx.Costs.AggCyclesPerRow)
		for r := 0; r < b.Rows(); r++ {
			key := h.groupKey(b, r)
			st, ok := h.groups[key]
			if !ok {
				st = &aggState{
					sumI: make([]int64, len(h.Aggs)),
					sumF: make([]float64, len(h.Aggs)),
					minV: make([]table.Value, len(h.Aggs)),
					maxV: make([]table.Value, len(h.Aggs)),
					seen: make([]bool, len(h.Aggs)),
				}
				h.groups[key] = st
				kv := make([]table.Value, len(h.GroupBy))
				for i, g := range h.GroupBy {
					kv[i] = b.Vecs[g].Value(r)
				}
				h.keys[key] = kv
				h.order = append(h.order, key)
			}
			st.count++
			for ai, a := range h.Aggs {
				if a.Func == Count {
					continue
				}
				v := b.Vecs[a.Col].Value(r)
				if v.Type.Physical() == table.PhysFloat {
					st.sumF[ai] += v.F
				} else if v.Type.Physical() == table.PhysInt {
					st.sumI[ai] += v.I
					st.sumF[ai] += float64(v.I)
				}
				if !st.seen[ai] || v.Compare(st.minV[ai]) < 0 {
					st.minV[ai] = v
				}
				if !st.seen[ai] || v.Compare(st.maxV[ai]) > 0 {
					st.maxV[ai] = v
				}
				st.seen[ai] = true
			}
		}
	}
	sort.Strings(h.order)
	return h.In.Close(ctx)
}

func (h *HashAgg) groupKey(b *table.Batch, r int) string {
	key := ""
	for _, g := range h.GroupBy {
		key += b.Vecs[g].Value(r).String() + "\x00"
	}
	return key
}

// Next implements Operator.
func (h *HashAgg) Next(ctx *Ctx) (*table.Batch, error) {
	if h.next >= len(h.order) {
		// No input rows and no grouping: emit the global aggregate row.
		if h.next == 0 && len(h.GroupBy) == 0 && len(h.order) == 0 {
			h.next = 1
			b := table.NewBatch(h.schema, 1)
			empty := &aggState{
				sumI: make([]int64, len(h.Aggs)),
				sumF: make([]float64, len(h.Aggs)),
				minV: make([]table.Value, len(h.Aggs)),
				maxV: make([]table.Value, len(h.Aggs)),
				seen: make([]bool, len(h.Aggs)),
			}
			b.AppendRow(h.resultRow(nil, empty)...)
			return b, nil
		}
		return nil, nil
	}
	hi := h.next + ctx.VectorSize
	if hi > len(h.order) {
		hi = len(h.order)
	}
	b := table.NewBatch(h.schema, hi-h.next)
	for _, key := range h.order[h.next:hi] {
		b.AppendRow(h.resultRow(h.keys[key], h.groups[key])...)
	}
	h.next = hi
	return b, nil
}

func (h *HashAgg) resultRow(groupVals []table.Value, st *aggState) []table.Value {
	row := append([]table.Value(nil), groupVals...)
	for ai, a := range h.Aggs {
		colType := h.schema.Cols[len(h.GroupBy)+ai].Type
		switch a.Func {
		case Count:
			row = append(row, table.IntVal(st.count))
		case Sum:
			if colType.Physical() == table.PhysFloat {
				row = append(row, table.FloatVal(st.sumF[ai]))
			} else {
				row = append(row, table.Value{Type: colType, I: st.sumI[ai]})
			}
		case Avg:
			if st.count == 0 {
				row = append(row, table.FloatVal(0))
			} else {
				row = append(row, table.FloatVal(st.sumF[ai]/float64(st.count)))
			}
		case Min:
			row = append(row, zeroIfUnseen(st.minV[ai], st.seen[ai], colType))
		case Max:
			row = append(row, zeroIfUnseen(st.maxV[ai], st.seen[ai], colType))
		}
	}
	return row
}

func zeroIfUnseen(v table.Value, seen bool, t table.Type) table.Value {
	if !seen {
		return table.Value{Type: t}
	}
	return v
}

// Close implements Operator.
func (h *HashAgg) Close(ctx *Ctx) error {
	h.groups = nil
	h.keys = nil
	return nil
}

// GroupCount reports the number of groups after Open.
func (h *HashAgg) GroupCount() int { return len(h.order) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
