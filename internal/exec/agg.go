package exec

import (
	"encoding/binary"
	"math"
	"sort"

	"energydb/internal/table"
)

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate column: Func applied to the child's column Col
// (ignored for Count), labelled As in the output.
type AggSpec struct {
	Func AggFunc
	Col  int
	As   string
}

// HashAgg groups rows by the GroupBy columns and computes aggregates. The
// output schema is the group columns followed by one column per spec.
// Output order is deterministic (sorted by group key values) so results
// are reproducible.
//
// Group keys are a collision-free binary encoding of the raw column
// values — fixed 8 bytes for int- and float-class columns, length-prefixed
// bytes for strings — built into a reused buffer, so the per-row path
// neither formats nor allocates. Aggregate state is columnar (one slice
// per aggregate, indexed by group id) and updated from the raw typed
// slices without boxing.
type HashAgg struct {
	In      Operator
	GroupBy []int
	Aggs    []AggSpec

	schema  *table.Schema
	groups  map[string]int32 // encoded key -> group id
	keys    [][]table.Value  // per group: boxed group-by values (output only)
	counts  []int64          // per group: row count
	aggs    []aggCol         // per spec: columnar state
	order   []int32          // group ids in output order
	next    int
	keyBuf  []byte   // reused per-row key encoding buffer
	gids    []int32  // reused per-batch group-id vector
	keyCols []keyCol // reused per-batch resolved group columns
}

// keyCol is a group column with its physical class and raw slices
// resolved once per batch, so the per-row key encoder does not re-dispatch
// on the column type.
type keyCol struct {
	phys table.Phys
	i    []int64
	f    []float64
	s    []string
}

// aggCol is the columnar state of one aggregate spec, indexed by group id.
// Only the slices matching the input column's physical class are used.
type aggCol struct {
	phys table.Phys
	sumI []int64
	sumF []float64
	minI []int64
	maxI []int64
	minF []float64
	maxF []float64
	minS []string
	maxS []string
	seen []bool
}

// NewHashAgg builds a grouping aggregation.
func NewHashAgg(in Operator, groupBy []int, aggs []AggSpec) *HashAgg {
	ins := in.Schema()
	var cols []table.Column
	for _, g := range groupBy {
		cols = append(cols, ins.Cols[g])
	}
	for _, a := range aggs {
		t := table.Int64
		switch a.Func {
		case Count:
			t = table.Int64
		case Avg:
			t = table.Float64
		default:
			t = ins.Cols[a.Col].Type
			if a.Func == Sum && t.Physical() == table.PhysFloat {
				t = table.Float64
			}
		}
		name := a.As
		if name == "" {
			name = a.Func.String()
		}
		cols = append(cols, table.Col(name, t))
	}
	return &HashAgg{In: in, GroupBy: groupBy, Aggs: aggs,
		schema: table.NewSchema(ins.Name, cols...)}
}

// Schema implements Operator.
func (h *HashAgg) Schema() *table.Schema { return h.schema }

// Open implements Operator: it drains the child and builds all groups.
func (h *HashAgg) Open(ctx *Ctx) error {
	if err := h.In.Open(ctx); err != nil {
		return err
	}
	h.groups = make(map[string]int32)
	h.keys = nil
	h.counts = nil
	h.order = nil
	h.next = 0
	ins := h.In.Schema()
	h.aggs = make([]aggCol, len(h.Aggs))
	for ai, a := range h.Aggs {
		if a.Func != Count {
			h.aggs[ai].phys = ins.Cols[a.Col].Type.Physical()
		}
	}
	for {
		b, err := h.In.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		// A deferred upstream selection is read through, not compacted:
		// the key encoder and the typed update loops index the physical
		// vectors via Batch.Sel, so the last scan-side gather is gone.
		ctx.ChargeRows(b.Rows()*max(1, len(h.Aggs)), ctx.Costs.AggCyclesPerRow)
		h.assignGroups(b)
		for _, gid := range h.gids {
			h.counts[gid]++
		}
		for ai, a := range h.Aggs {
			if a.Func == Count {
				continue
			}
			h.aggs[ai].update(b.Vecs[a.Col], h.gids, b.Sel)
		}
	}
	h.order = make([]int32, len(h.keys))
	for i := range h.order {
		h.order[i] = int32(i)
	}
	sort.Slice(h.order, func(x, y int) bool {
		a, b := h.keys[h.order[x]], h.keys[h.order[y]]
		for i := range a {
			if c := a[i].Compare(b[i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return h.In.Close(ctx)
}

// assignGroups fills h.gids with the group id of every logical row of b
// (h.gids[k] belongs to selected row k when a selection rides the batch),
// creating groups on first sight. The encoded key is injective: 8 fixed
// bytes per int/float column, uvarint length prefix + bytes per string
// column — two distinct key tuples can never encode to the same byte
// string (the old Value.String()+"\x00" scheme collided on strings
// containing NUL).
func (h *HashAgg) assignGroups(b *table.Batch) {
	n := b.Rows()
	sel := b.Sel
	if cap(h.gids) < n {
		h.gids = make([]int32, n)
	}
	h.gids = h.gids[:n]
	// Hoist the per-column dispatch out of the row loop: resolve each
	// group column's physical class and raw slice once per batch.
	if h.keyCols == nil {
		h.keyCols = make([]keyCol, len(h.GroupBy))
	}
	cols := h.keyCols
	for ci, g := range h.GroupBy {
		v := b.Vecs[g]
		cols[ci] = keyCol{phys: v.Type.Physical(), i: v.I, f: v.F, s: v.S}
	}
	for k := 0; k < n; k++ {
		r := k
		if sel != nil {
			r = int(sel[k])
		}
		buf := h.keyBuf[:0]
		for _, c := range cols {
			switch c.phys {
			case table.PhysInt:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(c.i[r]))
			case table.PhysFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.f[r]))
			default:
				s := c.s[r]
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		}
		h.keyBuf = buf
		gid, ok := h.groups[string(buf)] // compiler avoids the alloc on lookup
		if !ok {
			gid = h.newGroup(b, r, string(buf))
		}
		h.gids[k] = gid
	}
}

func (h *HashAgg) newGroup(b *table.Batch, r int, key string) int32 {
	gid := int32(len(h.keys))
	h.groups[key] = gid
	kv := make([]table.Value, len(h.GroupBy))
	for i, g := range h.GroupBy {
		kv[i] = b.Vecs[g].Value(r)
	}
	h.keys = append(h.keys, kv)
	h.counts = append(h.counts, 0)
	for ai := range h.aggs {
		if h.Aggs[ai].Func != Count {
			h.aggs[ai].grow()
		}
	}
	return gid
}

func (c *aggCol) grow() {
	switch c.phys {
	case table.PhysInt:
		c.sumI = append(c.sumI, 0)
		c.sumF = append(c.sumF, 0)
		c.minI = append(c.minI, 0)
		c.maxI = append(c.maxI, 0)
	case table.PhysFloat:
		c.sumF = append(c.sumF, 0)
		c.minF = append(c.minF, 0)
		c.maxF = append(c.maxF, 0)
	default:
		// Sums stay allocated (and zero) so Sum/Avg over a string column
		// yields the zero value instead of panicking.
		c.sumI = append(c.sumI, 0)
		c.sumF = append(c.sumF, 0)
		c.minS = append(c.minS, "")
		c.maxS = append(c.maxS, "")
	}
	c.seen = append(c.seen, false)
}

// update folds one input column into the per-group state, one typed loop
// per physical class with no Value boxing. gids[k] is the group of logical
// row k; with a deferred selection the physical row is sel[k], read
// through in place rather than pre-gathered.
func (c *aggCol) update(v *table.Vector, gids []int32, sel []int32) {
	switch c.phys {
	case table.PhysInt:
		for k, gid := range gids {
			r := k
			if sel != nil {
				r = int(sel[k])
			}
			x := v.I[r]
			c.sumI[gid] += x
			c.sumF[gid] += float64(x)
			if !c.seen[gid] {
				c.minI[gid], c.maxI[gid] = x, x
				c.seen[gid] = true
			} else if x < c.minI[gid] {
				c.minI[gid] = x
			} else if x > c.maxI[gid] {
				c.maxI[gid] = x
			}
		}
	case table.PhysFloat:
		for k, gid := range gids {
			r := k
			if sel != nil {
				r = int(sel[k])
			}
			x := v.F[r]
			c.sumF[gid] += x
			if !c.seen[gid] {
				c.minF[gid], c.maxF[gid] = x, x
				c.seen[gid] = true
			} else if x < c.minF[gid] {
				c.minF[gid] = x
			} else if x > c.maxF[gid] {
				c.maxF[gid] = x
			}
		}
	default:
		for k, gid := range gids {
			r := k
			if sel != nil {
				r = int(sel[k])
			}
			x := v.S[r]
			if !c.seen[gid] {
				c.minS[gid], c.maxS[gid] = x, x
				c.seen[gid] = true
			} else if x < c.minS[gid] {
				c.minS[gid] = x
			} else if x > c.maxS[gid] {
				c.maxS[gid] = x
			}
		}
	}
}

// Next implements Operator.
func (h *HashAgg) Next(ctx *Ctx) (*table.Batch, error) {
	if h.next >= len(h.order) {
		// No input rows and no grouping: emit the global aggregate row.
		if h.next == 0 && len(h.GroupBy) == 0 && len(h.order) == 0 {
			h.next = 1
			b := table.NewBatch(h.schema, 1)
			h.appendEmptyRow(b)
			b.SetRows(1)
			return b, nil
		}
		return nil, nil
	}
	hi := h.next + ctx.VectorSize
	if hi > len(h.order) {
		hi = len(h.order)
	}
	b := table.NewBatch(h.schema, hi-h.next)
	for _, gid := range h.order[h.next:hi] {
		h.appendRow(b, gid)
	}
	b.SetRows(hi - h.next)
	h.next = hi
	return b, nil
}

// appendRow boxes group gid into one output row (per group, not per input
// row, so boxing here is off the hot path).
func (h *HashAgg) appendRow(b *table.Batch, gid int32) {
	for i, v := range h.keys[gid] {
		b.Vecs[i].Append(v)
	}
	for ai, a := range h.Aggs {
		colType := h.schema.Cols[len(h.GroupBy)+ai].Type
		c := &h.aggs[ai]
		out := b.Vecs[len(h.GroupBy)+ai]
		switch a.Func {
		case Count:
			out.Append(table.IntVal(h.counts[gid]))
		case Sum:
			if colType.Physical() == table.PhysFloat {
				out.Append(table.FloatVal(c.sumF[gid]))
			} else {
				out.Append(table.Value{Type: colType, I: c.sumI[gid]})
			}
		case Avg:
			if h.counts[gid] == 0 {
				out.Append(table.FloatVal(0))
			} else {
				out.Append(table.FloatVal(c.sumF[gid] / float64(h.counts[gid])))
			}
		case Min, Max:
			out.Append(c.extreme(a.Func, gid, colType))
		}
	}
}

// extreme boxes the min or max of group gid as a Value of type t, zero if
// the group saw no rows.
func (c *aggCol) extreme(f AggFunc, gid int32, t table.Type) table.Value {
	if !c.seen[gid] {
		return table.Value{Type: t}
	}
	switch c.phys {
	case table.PhysInt:
		if f == Min {
			return table.Value{Type: t, I: c.minI[gid]}
		}
		return table.Value{Type: t, I: c.maxI[gid]}
	case table.PhysFloat:
		if f == Min {
			return table.Value{Type: t, F: c.minF[gid]}
		}
		return table.Value{Type: t, F: c.maxF[gid]}
	default:
		if f == Min {
			return table.Value{Type: t, S: c.minS[gid]}
		}
		return table.Value{Type: t, S: c.maxS[gid]}
	}
}

// appendEmptyRow emits the zero-group global aggregate (count 0, sum 0,
// zero-valued min/max) for aggregation over an empty input.
func (h *HashAgg) appendEmptyRow(b *table.Batch) {
	for ai, a := range h.Aggs {
		colType := h.schema.Cols[ai].Type
		switch a.Func {
		case Count:
			b.Vecs[ai].Append(table.IntVal(0))
		case Avg:
			b.Vecs[ai].Append(table.FloatVal(0))
		default:
			b.Vecs[ai].Append(table.Value{Type: colType})
		}
	}
}

// Close implements Operator.
func (h *HashAgg) Close(ctx *Ctx) error {
	h.groups = nil
	h.keys = nil
	h.counts = nil
	h.aggs = nil
	h.gids = nil
	h.keyCols = nil
	return nil
}

// GroupCount reports the number of groups after Open.
func (h *HashAgg) GroupCount() int { return len(h.order) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
