package exec

import (
	"encoding/binary"
	"math"
	"sort"

	"energydb/internal/table"
)

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate column: Func applied to the child's column Col
// (ignored for Count), labelled As in the output.
type AggSpec struct {
	Func AggFunc
	Col  int
	As   string
}

// HashAgg groups rows by the GroupBy columns and computes aggregates. The
// output schema is the group columns followed by one column per spec.
// Output order is deterministic (sorted by group key values) so results
// are reproducible at any degree of parallelism.
//
// The serial plan is the one-fragment, one-partition special case of the
// partitioned parallel aggregation: with In set (Frags nil) the input is
// drained inline into a single aggTable; with Frags set, each fragment
// pipeline runs in its own simulated process under the RunFragments
// barrier exchange, aggregating its morsel stream into a thread-local
// partial table, and a partition-wise merge phase — the binary group keys
// hash-partition the group space into disjoint slices, one merge process
// per partition — combines the partials. Both paths share every per-row
// code path (aggTable.absorb) and the output stage.
//
// Group keys are a collision-free binary encoding of the raw column
// values — fixed 8 bytes for int- and float-class columns, length-prefixed
// bytes for strings — built into a reused buffer, so the per-row path
// neither formats nor allocates. Aggregate state is columnar (one slice
// per aggregate, indexed by group id) and updated from the raw typed
// slices without boxing.
type HashAgg struct {
	In      Operator   // serial input; ignored when Frags is set
	Frags   []Operator // parallel fragment pipelines sharing Queue
	Queue   *Morsels   // shared dispenser behind Frags; reset on Open
	GroupBy []int
	Aggs    []AggSpec

	// Spawn, when set, constructs one more fragment over Queue so a
	// mid-pipeline re-grant can widen the running accumulation barrier
	// (see Ctx.Widen); the late worker gets its own partial table, merged
	// with the rest after the barrier.
	Spawn func() (Operator, error)

	schema *table.Schema
	ins    *table.Schema // input schema (In's or the fragments')
	tab    *aggTable     // merged result after Open
	order  []int32       // group ids in output order
	next   int
}

// aggSchema derives the output schema: group columns then aggregates.
func aggSchema(ins *table.Schema, groupBy []int, aggs []AggSpec) *table.Schema {
	var cols []table.Column
	for _, g := range groupBy {
		cols = append(cols, ins.Cols[g])
	}
	for _, a := range aggs {
		t := table.Int64
		switch a.Func {
		case Count:
			t = table.Int64
		case Avg:
			t = table.Float64
		default:
			t = ins.Cols[a.Col].Type
			if a.Func == Sum && t.Physical() == table.PhysFloat {
				t = table.Float64
			}
		}
		name := a.As
		if name == "" {
			name = a.Func.String()
		}
		cols = append(cols, table.Col(name, t))
	}
	return table.NewSchema(ins.Name, cols...)
}

// NewHashAgg builds a serial grouping aggregation over in.
func NewHashAgg(in Operator, groupBy []int, aggs []AggSpec) *HashAgg {
	return &HashAgg{In: in, GroupBy: groupBy, Aggs: aggs,
		ins: in.Schema(), schema: aggSchema(in.Schema(), groupBy, aggs)}
}

// NewPartitionedHashAgg builds a partitioned parallel aggregation over
// len(frags) fragment pipelines sharing the queue dispenser. The fragments
// must produce identical schemas and be exclusively owned (they run
// concurrently and may not share mutable state such as predicate scratch).
func NewPartitionedHashAgg(frags []Operator, queue *Morsels, groupBy []int, aggs []AggSpec) *HashAgg {
	if len(frags) == 0 {
		panic("exec: partitioned HashAgg needs at least one fragment")
	}
	return &HashAgg{Frags: frags, Queue: queue, GroupBy: groupBy, Aggs: aggs,
		ins: frags[0].Schema(), schema: aggSchema(frags[0].Schema(), groupBy, aggs)}
}

// Schema implements Operator.
func (h *HashAgg) Schema() *table.Schema { return h.schema }

// Open implements Operator: it drains the input — inline for the serial
// path, under the barrier exchange for the partitioned one — merges the
// partial tables partition-wise, and fixes the output order.
func (h *HashAgg) Open(ctx *Ctx) error {
	h.next = 0
	h.order = nil
	h.tab = nil
	if len(h.Frags) == 0 {
		t := newAggTable(h.ins, h.GroupBy, h.Aggs)
		if err := h.In.Open(ctx); err != nil {
			return err
		}
		for {
			b, err := h.In.Next(ctx)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			t.absorb(ctx, b)
		}
		if err := h.In.Close(ctx); err != nil {
			return err
		}
		h.tab = t
	} else {
		if h.Queue != nil {
			h.Queue.Reset()
		}
		locals := make([]*aggTable, len(h.Frags))
		for i := range locals {
			locals[i] = newAggTable(h.ins, h.GroupBy, h.Aggs)
		}
		sink := func(w int, wctx *Ctx, b *table.Batch) error {
			locals[w].absorb(wctx, b)
			return nil
		}
		var spawn func(w int) (Operator, error)
		if h.Spawn != nil {
			spawn = func(w int) (Operator, error) {
				op, err := h.Spawn()
				if err != nil || op == nil {
					return nil, err
				}
				for len(locals) <= w {
					locals = append(locals, newAggTable(h.ins, h.GroupBy, h.Aggs))
				}
				return op, nil
			}
		}
		if err := RunFragmentsWiden(ctx, "hashagg", h.Frags, sink, spawn, h.Queue); err != nil {
			return err
		}
		tab, err := mergePartitioned(ctx, h.ins, h.GroupBy, h.Aggs, locals)
		if err != nil {
			return err
		}
		h.tab = tab
	}
	h.order = make([]int32, len(h.tab.keys))
	for i := range h.order {
		h.order[i] = int32(i)
	}
	sort.Slice(h.order, func(x, y int) bool {
		a, b := h.tab.keys[h.order[x]], h.tab.keys[h.order[y]]
		for i := range a {
			if c := a[i].Compare(b[i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// mergePartitioned combines per-worker partial tables partition-wise: the
// binary group keys split the group space into ceilPow2(workers) disjoint
// partitions, one merge process per partition folds every worker's share
// of its partition (charging its own core), and the disjoint results
// concatenate. A single partial table needs no merge and is used as-is.
func mergePartitioned(ctx *Ctx, ins *table.Schema, groupBy []int, specs []AggSpec, locals []*aggTable) (*aggTable, error) {
	if len(locals) == 1 {
		return locals[0], nil
	}
	nparts := uint32(ceilPow2(len(locals)))
	parts := make([]*aggTable, nparts)
	if err := ParDo(ctx, "aggmerge", int(nparts), func(p int, wctx *Ctx) error {
		t := newAggTable(ins, groupBy, specs)
		for _, src := range locals {
			t.mergeFrom(wctx, src, uint32(p), nparts)
		}
		parts[p] = t
		return nil
	}); err != nil {
		return nil, err
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out.concat(p)
	}
	return out, nil
}

// aggTable is the grouping state shared by the serial and partitioned
// aggregation paths: the group hash table, boxed output keys, and columnar
// per-group aggregate state.
type aggTable struct {
	groupBy []int
	specs   []AggSpec
	groups  map[string]int32 // encoded key -> group id
	encKeys []string         // per group: the collision-free binary key
	keys    [][]table.Value  // per group: boxed group-by values (output only)
	counts  []int64          // per group: row count
	aggs    []aggCol         // per spec: columnar state
	keyBuf  []byte           // reused per-row key encoding buffer
	gids    []int32          // reused per-batch group-id vector
	keyCols []keyCol         // reused per-batch resolved group columns
}

func newAggTable(ins *table.Schema, groupBy []int, specs []AggSpec) *aggTable {
	t := &aggTable{groupBy: groupBy, specs: specs,
		groups: make(map[string]int32), aggs: make([]aggCol, len(specs))}
	for ai, a := range specs {
		if a.Func != Count {
			t.aggs[ai].phys = ins.Cols[a.Col].Type.Physical()
		}
	}
	return t
}

// keyCol is a group column with its physical class and raw slices
// resolved once per batch, so the per-row key encoder does not re-dispatch
// on the column type.
type keyCol struct {
	phys table.Phys
	i    []int64
	f    []float64
	s    []string
}

// absorb folds one input batch into the table. A deferred upstream
// selection is read through, not compacted: the key encoder and the typed
// update loops index the physical vectors via Batch.Sel.
func (t *aggTable) absorb(ctx *Ctx, b *table.Batch) {
	ctx.ChargeRows(b.Rows()*max(1, len(t.specs)), ctx.Costs.AggCyclesPerRow)
	t.assignGroups(b)
	for _, gid := range t.gids {
		t.counts[gid]++
	}
	for ai, a := range t.specs {
		if a.Func == Count {
			continue
		}
		t.aggs[ai].update(b.Vecs[a.Col], t.gids, b.Sel)
	}
}

// assignGroups fills t.gids with the group id of every logical row of b
// (t.gids[k] belongs to selected row k when a selection rides the batch),
// creating groups on first sight. The encoded key is injective: 8 fixed
// bytes per int/float column, uvarint length prefix + bytes per string
// column — two distinct key tuples can never encode to the same byte
// string (the old Value.String()+"\x00" scheme collided on strings
// containing NUL).
func (t *aggTable) assignGroups(b *table.Batch) {
	n := b.Rows()
	sel := b.Sel
	if cap(t.gids) < n {
		t.gids = make([]int32, n)
	}
	t.gids = t.gids[:n]
	// Hoist the per-column dispatch out of the row loop: resolve each
	// group column's physical class and raw slice once per batch.
	if t.keyCols == nil {
		t.keyCols = make([]keyCol, len(t.groupBy))
	}
	cols := t.keyCols
	for ci, g := range t.groupBy {
		v := b.Vecs[g]
		cols[ci] = keyCol{phys: v.Type.Physical(), i: v.I, f: v.F, s: v.S}
	}
	for k := 0; k < n; k++ {
		r := k
		if sel != nil {
			r = int(sel[k])
		}
		buf := t.keyBuf[:0]
		for _, c := range cols {
			switch c.phys {
			case table.PhysInt:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(c.i[r]))
			case table.PhysFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.f[r]))
			default:
				s := c.s[r]
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		}
		t.keyBuf = buf
		gid, ok := t.groups[string(buf)] // compiler avoids the alloc on lookup
		if !ok {
			gid = t.newGroup(b, r, string(buf))
		}
		t.gids[k] = gid
	}
}

func (t *aggTable) newGroup(b *table.Batch, r int, key string) int32 {
	gid := int32(len(t.keys))
	t.groups[key] = gid
	t.encKeys = append(t.encKeys, key)
	kv := make([]table.Value, len(t.groupBy))
	for i, g := range t.groupBy {
		kv[i] = b.Vecs[g].Value(r)
	}
	t.keys = append(t.keys, kv)
	t.counts = append(t.counts, 0)
	for ai := range t.aggs {
		if t.specs[ai].Func != Count {
			t.aggs[ai].grow()
		}
	}
	return gid
}

// mergeFrom folds src's groups whose binary key hashes to partition part
// (of nparts) into t. Partial states combine exactly: counts and sums
// add, extrema compare, and Avg re-derives from the merged sum and count.
// Folding charges the merge work — one aggregate update per partial group
// per spec — to the calling (merge worker's) process.
func (t *aggTable) mergeFrom(ctx *Ctx, src *aggTable, part, nparts uint32) {
	mask := nparts - 1
	folded := 0
	for sg, key := range src.encKeys {
		if nparts > 1 && hashString(key)&mask != part {
			continue
		}
		folded++
		gid, ok := t.groups[key]
		if !ok {
			gid = int32(len(t.keys))
			t.groups[key] = gid
			t.encKeys = append(t.encKeys, key)
			t.keys = append(t.keys, src.keys[sg])
			t.counts = append(t.counts, 0)
			for ai := range t.aggs {
				if t.specs[ai].Func != Count {
					t.aggs[ai].grow()
				}
			}
		}
		t.counts[gid] += src.counts[sg]
		for ai := range t.aggs {
			if t.specs[ai].Func == Count {
				continue
			}
			t.aggs[ai].mergeGroup(gid, &src.aggs[ai], int32(sg))
		}
	}
	ctx.ChargeRows(folded*max(1, len(t.specs)), ctx.Costs.AggCyclesPerRow)
}

// concat appends src's groups to t. The tables must be key-disjoint (they
// hold different partitions), so ids simply shift by t's group count.
func (t *aggTable) concat(src *aggTable) {
	base := int32(len(t.keys))
	for sg, key := range src.encKeys {
		t.groups[key] = base + int32(sg)
	}
	t.encKeys = append(t.encKeys, src.encKeys...)
	t.keys = append(t.keys, src.keys...)
	t.counts = append(t.counts, src.counts...)
	for ai := range t.aggs {
		if t.specs[ai].Func != Count {
			t.aggs[ai].concat(&src.aggs[ai])
		}
	}
}

// aggCol is the columnar state of one aggregate spec, indexed by group id.
// Only the slices matching the input column's physical class are used.
type aggCol struct {
	phys table.Phys
	sumI []int64
	sumF []float64
	minI []int64
	maxI []int64
	minF []float64
	maxF []float64
	minS []string
	maxS []string
	seen []bool
}

func (c *aggCol) grow() {
	switch c.phys {
	case table.PhysInt:
		c.sumI = append(c.sumI, 0)
		c.sumF = append(c.sumF, 0)
		c.minI = append(c.minI, 0)
		c.maxI = append(c.maxI, 0)
	case table.PhysFloat:
		c.sumF = append(c.sumF, 0)
		c.minF = append(c.minF, 0)
		c.maxF = append(c.maxF, 0)
	default:
		// Sums stay allocated (and zero) so Sum/Avg over a string column
		// yields the zero value instead of panicking.
		c.sumI = append(c.sumI, 0)
		c.sumF = append(c.sumF, 0)
		c.minS = append(c.minS, "")
		c.maxS = append(c.maxS, "")
	}
	c.seen = append(c.seen, false)
}

// update folds one input column into the per-group state, one typed loop
// per physical class with no Value boxing. gids[k] is the group of logical
// row k; with a deferred selection the physical row is sel[k], read
// through in place rather than pre-gathered.
func (c *aggCol) update(v *table.Vector, gids []int32, sel []int32) {
	switch c.phys {
	case table.PhysInt:
		for k, gid := range gids {
			r := k
			if sel != nil {
				r = int(sel[k])
			}
			x := v.I[r]
			c.sumI[gid] += x
			c.sumF[gid] += float64(x)
			if !c.seen[gid] {
				c.minI[gid], c.maxI[gid] = x, x
				c.seen[gid] = true
			} else if x < c.minI[gid] {
				c.minI[gid] = x
			} else if x > c.maxI[gid] {
				c.maxI[gid] = x
			}
		}
	case table.PhysFloat:
		for k, gid := range gids {
			r := k
			if sel != nil {
				r = int(sel[k])
			}
			x := v.F[r]
			c.sumF[gid] += x
			if !c.seen[gid] {
				c.minF[gid], c.maxF[gid] = x, x
				c.seen[gid] = true
			} else if x < c.minF[gid] {
				c.minF[gid] = x
			} else if x > c.maxF[gid] {
				c.maxF[gid] = x
			}
		}
	default:
		for k, gid := range gids {
			r := k
			if sel != nil {
				r = int(sel[k])
			}
			x := v.S[r]
			if !c.seen[gid] {
				c.minS[gid], c.maxS[gid] = x, x
				c.seen[gid] = true
			} else if x < c.minS[gid] {
				c.minS[gid] = x
			} else if x > c.maxS[gid] {
				c.maxS[gid] = x
			}
		}
	}
}

// mergeGroup folds src's partial state for group sg into t's group gid.
func (c *aggCol) mergeGroup(gid int32, src *aggCol, sg int32) {
	switch c.phys {
	case table.PhysInt:
		c.sumI[gid] += src.sumI[sg]
		c.sumF[gid] += src.sumF[sg]
		if src.seen[sg] {
			if !c.seen[gid] {
				c.minI[gid], c.maxI[gid] = src.minI[sg], src.maxI[sg]
				c.seen[gid] = true
			} else {
				if src.minI[sg] < c.minI[gid] {
					c.minI[gid] = src.minI[sg]
				}
				if src.maxI[sg] > c.maxI[gid] {
					c.maxI[gid] = src.maxI[sg]
				}
			}
		}
	case table.PhysFloat:
		c.sumF[gid] += src.sumF[sg]
		if src.seen[sg] {
			if !c.seen[gid] {
				c.minF[gid], c.maxF[gid] = src.minF[sg], src.maxF[sg]
				c.seen[gid] = true
			} else {
				if src.minF[sg] < c.minF[gid] {
					c.minF[gid] = src.minF[sg]
				}
				if src.maxF[sg] > c.maxF[gid] {
					c.maxF[gid] = src.maxF[sg]
				}
			}
		}
	default:
		c.sumI[gid] += src.sumI[sg]
		c.sumF[gid] += src.sumF[sg]
		if src.seen[sg] {
			if !c.seen[gid] {
				c.minS[gid], c.maxS[gid] = src.minS[sg], src.maxS[sg]
				c.seen[gid] = true
			} else {
				if src.minS[sg] < c.minS[gid] {
					c.minS[gid] = src.minS[sg]
				}
				if src.maxS[sg] > c.maxS[gid] {
					c.maxS[gid] = src.maxS[sg]
				}
			}
		}
	}
}

// concat appends src's per-group state (disjoint partitions, ids shift).
func (c *aggCol) concat(src *aggCol) {
	c.sumI = append(c.sumI, src.sumI...)
	c.sumF = append(c.sumF, src.sumF...)
	c.minI = append(c.minI, src.minI...)
	c.maxI = append(c.maxI, src.maxI...)
	c.minF = append(c.minF, src.minF...)
	c.maxF = append(c.maxF, src.maxF...)
	c.minS = append(c.minS, src.minS...)
	c.maxS = append(c.maxS, src.maxS...)
	c.seen = append(c.seen, src.seen...)
}

// Next implements Operator.
func (h *HashAgg) Next(ctx *Ctx) (*table.Batch, error) {
	if h.next >= len(h.order) {
		// No input rows and no grouping: emit the global aggregate row.
		if h.next == 0 && len(h.GroupBy) == 0 && len(h.order) == 0 {
			h.next = 1
			b := table.NewBatch(h.schema, 1)
			h.appendEmptyRow(b)
			b.SetRows(1)
			return b, nil
		}
		return nil, nil
	}
	hi := h.next + ctx.VectorSize
	if hi > len(h.order) {
		hi = len(h.order)
	}
	b := table.NewBatch(h.schema, hi-h.next)
	for _, gid := range h.order[h.next:hi] {
		h.appendRow(b, gid)
	}
	b.SetRows(hi - h.next)
	h.next = hi
	return b, nil
}

// appendRow boxes group gid into one output row (per group, not per input
// row, so boxing here is off the hot path).
func (h *HashAgg) appendRow(b *table.Batch, gid int32) {
	for i, v := range h.tab.keys[gid] {
		b.Vecs[i].Append(v)
	}
	for ai, a := range h.Aggs {
		colType := h.schema.Cols[len(h.GroupBy)+ai].Type
		c := &h.tab.aggs[ai]
		out := b.Vecs[len(h.GroupBy)+ai]
		switch a.Func {
		case Count:
			out.Append(table.IntVal(h.tab.counts[gid]))
		case Sum:
			if colType.Physical() == table.PhysFloat {
				out.Append(table.FloatVal(c.sumF[gid]))
			} else {
				out.Append(table.Value{Type: colType, I: c.sumI[gid]})
			}
		case Avg:
			if h.tab.counts[gid] == 0 {
				out.Append(table.FloatVal(0))
			} else {
				out.Append(table.FloatVal(c.sumF[gid] / float64(h.tab.counts[gid])))
			}
		case Min, Max:
			out.Append(c.extreme(a.Func, gid, colType))
		}
	}
}

// extreme boxes the min or max of group gid as a Value of type t, zero if
// the group saw no rows.
func (c *aggCol) extreme(f AggFunc, gid int32, t table.Type) table.Value {
	if !c.seen[gid] {
		return table.Value{Type: t}
	}
	switch c.phys {
	case table.PhysInt:
		if f == Min {
			return table.Value{Type: t, I: c.minI[gid]}
		}
		return table.Value{Type: t, I: c.maxI[gid]}
	case table.PhysFloat:
		if f == Min {
			return table.Value{Type: t, F: c.minF[gid]}
		}
		return table.Value{Type: t, F: c.maxF[gid]}
	default:
		if f == Min {
			return table.Value{Type: t, S: c.minS[gid]}
		}
		return table.Value{Type: t, S: c.maxS[gid]}
	}
}

// appendEmptyRow emits the zero-group global aggregate (count 0, sum 0,
// zero-valued min/max) for aggregation over an empty input.
func (h *HashAgg) appendEmptyRow(b *table.Batch) {
	for ai, a := range h.Aggs {
		colType := h.schema.Cols[ai].Type
		switch a.Func {
		case Count:
			b.Vecs[ai].Append(table.IntVal(0))
		case Avg:
			b.Vecs[ai].Append(table.FloatVal(0))
		default:
			b.Vecs[ai].Append(table.Value{Type: colType})
		}
	}
}

// Close implements Operator.
func (h *HashAgg) Close(ctx *Ctx) error {
	h.tab = nil
	h.order = nil
	return nil
}

// GroupCount reports the number of groups after Open.
func (h *HashAgg) GroupCount() int { return len(h.order) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
