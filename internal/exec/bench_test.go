package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// benchCtx returns a Ctx with all simulated-hardware cost constants zeroed,
// so benchmarks measure the real CPU work of the executor kernels rather
// than discrete-event bookkeeping: with zero cycles charged, hw.CPU.Use
// returns before touching the event queue and nothing ever parks.
func benchCtx() *Ctx {
	eng := sim.NewEngine()
	cpu := hw.NewCPU(eng, energy.NewMeter(), "cpu", hw.ScanCPU2008())
	return &Ctx{CPU: cpu, Costs: CostParams{}, VectorSize: 4096}
}

// benchInts builds an n-row table of two int64 columns: a sequential key
// and a uniform value in [0, 1000).
func benchInts(n int) *table.Table {
	s := table.NewSchema("ints",
		table.Col("k", table.Int64),
		table.Col("v", table.Int64),
	)
	rng := rand.New(rand.NewSource(42))
	t := table.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendRow(table.IntVal(int64(i)), table.IntVal(rng.Int63n(1000)))
	}
	return t
}

// benchStrings builds an n-row table of a string column drawn from nGroups
// distinct values plus an int64 payload.
func benchStrings(n, nGroups int) *table.Table {
	s := table.NewSchema("strs",
		table.Col("g", table.String),
		table.Col("v", table.Int64),
	)
	rng := rand.New(rand.NewSource(43))
	groups := make([]string, nGroups)
	for i := range groups {
		groups[i] = fmt.Sprintf("group-%06d", i)
	}
	t := table.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendRow(table.StrVal(groups[rng.Intn(nGroups)]), table.IntVal(rng.Int63n(1000)))
	}
	return t
}

const benchRows = 1 << 16

// BenchmarkFilterInt drains a ~50% selective int64 comparison filter.
func BenchmarkFilterInt(b *testing.B) {
	tab := benchInts(benchRows)
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := RowCount(ctx, &Filter{
			In:   &Values{Tab: tab},
			Pred: &ColConst{Col: 1, Op: Lt, Val: table.IntVal(500)},
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no rows passed")
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
}

// BenchmarkFilterString drains a selective string comparison filter.
func BenchmarkFilterString(b *testing.B) {
	tab := benchStrings(benchRows, 1000)
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := RowCount(ctx, &Filter{
			In:   &Values{Tab: tab},
			Pred: &ColConst{Col: 0, Op: Lt, Val: table.StrVal("group-000500")},
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no rows passed")
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
}

// BenchmarkHashAggGroups aggregates 64k rows into 1000 string groups
// (count, sum, min, max over the int payload).
func BenchmarkHashAggGroups(b *testing.B) {
	tab := benchStrings(benchRows, 1000)
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewHashAgg(&Values{Tab: tab}, []int{0}, []AggSpec{
			{Func: Count, As: "n"},
			{Func: Sum, Col: 1, As: "s"},
			{Func: Min, Col: 1, As: "lo"},
			{Func: Max, Col: 1, As: "hi"},
		})
		n, err := RowCount(ctx, agg)
		if err != nil {
			b.Fatal(err)
		}
		if n != 1000 {
			b.Fatalf("groups = %d", n)
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
}

// BenchmarkHashJoinProbe joins a 64k-row probe side against a 256-row
// build side on an int64 key (~25% of probe rows match).
func BenchmarkHashJoinProbe(b *testing.B) {
	probe := benchInts(benchRows) // v in [0, 1000)
	bs := table.NewSchema("dim", table.Col("d_key", table.Int64), table.Col("d_name", table.String))
	build := table.NewTable(bs)
	for i := 0; i < 256; i++ {
		build.AppendRow(table.IntVal(int64(i)), table.StrVal(fmt.Sprintf("dim-%04d", i)))
	}
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(&Values{Tab: build}, &Values{Tab: probe}, 0, 1)
		n, err := RowCount(ctx, j)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no matches")
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
}

// prefusionArith is the pre-fusion reference evaluator: node-at-a-time
// with a fresh output vector per node per batch, exactly what
// Arith.EvalInto did before the fusion pass and the scratch pool. It
// anchors the before/after allocs/op comparison in BenchmarkFusedExpr.
type prefusionArith struct {
	Op   ArithOp
	L, R Scalar
}

func (e *prefusionArith) Type(s *table.Schema) table.Type {
	return (&Arith{Op: e.Op, L: e.L, R: e.R}).Type(s)
}

func (e *prefusionArith) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	ctx.ChargeRows(b.Rows(), ctx.Costs.ProjectCyclesPerRow)
	l := e.L.EvalInto(ctx, b)
	r := e.R.EvalInto(ctx, b)
	n := b.PhysRows()
	out := table.NewVector(e.Type(b.Schema), n)
	if out.Type.Physical() == table.PhysFloat {
		for i := 0; i < n; i++ {
			out.F = append(out.F, arithF(e.Op, numAsF(l, i), numAsF(r, i)))
		}
		return out
	}
	for i := 0; i < n; i++ {
		out.I = append(out.I, arithI(e.Op, l.I[i], r.I[i]))
	}
	return out
}

func (e *prefusionArith) String() string { return "prefusion" }

// prefusionConst is the pre-fusion Const: a fresh constant vector per
// batch.
type prefusionConst struct{ Val table.Value }

func (e *prefusionConst) Type(*table.Schema) table.Type { return e.Val.Type }

func (e *prefusionConst) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	n := b.PhysRows()
	v := table.NewVector(e.Val.Type, n)
	v.AppendN(e.Val, n)
	return v
}

func (e *prefusionConst) String() string { return e.Val.String() }

// BenchmarkFusedExpr drains a projection computing (v*2 + k) / (v + 1)
// over 64k rows (16 batches), operator built once and re-drained per
// iteration. "fused" is the compiled single-kernel path NewProject
// produces for pure arithmetic trees; "fallback" is today's
// node-at-a-time path with pooled scratch (forced by an opaque child);
// "prefusion" is the pre-PR evaluator allocating per node per batch.
// allocs/op fused vs prefusion is the headline.
func BenchmarkFusedExpr(b *testing.B) {
	tab := benchInts(benchRows)
	ident := func(s Scalar) Scalar { return s }
	opaque := func(s Scalar) Scalar { return &opaqueScalar{s} }
	modern := func(wrap func(Scalar) Scalar) Scalar {
		return &Arith{Op: Div,
			L: &Arith{Op: Add,
				L: &Arith{Op: Mul, L: wrap(&ColRef{Col: 1}), R: &Const{Val: table.IntVal(2)}},
				R: wrap(&ColRef{Col: 0})},
			R: &Arith{Op: Add, L: wrap(&ColRef{Col: 1}), R: &Const{Val: table.IntVal(1)}}}
	}
	prefusion := &prefusionArith{Op: Div,
		L: &prefusionArith{Op: Add,
			L: &prefusionArith{Op: Mul, L: &ColRef{Col: 1}, R: &prefusionConst{Val: table.IntVal(2)}},
			R: &ColRef{Col: 0}},
		R: &prefusionArith{Op: Add, L: &ColRef{Col: 1}, R: &prefusionConst{Val: table.IntVal(1)}}}
	for _, m := range []struct {
		name string
		expr Scalar
	}{{"fused", modern(ident)}, {"fallback", modern(opaque)}, {"prefusion", prefusion}} {
		b.Run(m.name, func(b *testing.B) {
			ctx := benchCtx()
			p := NewProject(&Values{Tab: tab}, []Scalar{m.expr}, []string{"x"})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := RowCount(ctx, p)
				if err != nil {
					b.Fatal(err)
				}
				if n != benchRows {
					b.Fatalf("rows = %d", n)
				}
			}
			b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
		})
	}
}

// BenchmarkSortInt sorts 64k rows by the random int64 payload column.
func BenchmarkSortInt(b *testing.B) {
	tab := benchInts(benchRows)
	ctx := benchCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &Sort{In: &Values{Tab: tab}, Keys: []SortKey{{Col: 1}, {Col: 0}}}
		n, err := RowCount(ctx, s)
		if err != nil {
			b.Fatal(err)
		}
		if n != benchRows {
			b.Fatalf("rows = %d", n)
		}
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
}

// benchScan runs one simulated column scan of tab at the given DOP on a
// fresh multi-core rig and returns the simulated elapsed seconds. Unlike
// the kernel benchmarks above, this path keeps the discrete-event engine
// live (charges are real), because the morsel/merge machinery under test
// *is* simulator bookkeeping plus real block decoding.
func benchScan(b *testing.B, tab *table.Table, dop int) float64 {
	b.Helper()
	// Rig construction and placement encoding are per-iteration setup, not
	// the scan under measurement: keep them off the timer.
	b.StopTimer()
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	spec := hw.ScanCPU2008()
	spec.Cores = 8
	cpu := hw.NewCPU(eng, meter, "cpu", spec)
	devs := make([]storage.BlockDevice, 3)
	for i := range devs {
		devs[i] = hw.NewSSD(eng, meter, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	vol := storage.NewVolume("vol", storage.Striped, 16<<10, devs)
	st, err := PlaceColumnMajor(tab, vol, 1, 4096, rawCodecs(len(tab.Schema.Cols)))
	if err != nil {
		b.Fatal(err)
	}
	eng.Go("query", func(p *sim.Proc) {
		ctx := NewCtx(p, cpu)
		newPred := func() Pred {
			return &ColConst{Col: 1, Op: Lt, Val: table.IntVal(500)}
		}
		var op Operator
		if dop <= 1 {
			op = NewColumnScan(st, []int{0, 1}, []int{0, 1}, newPred())
		} else {
			op = parallelColScan(st, []int{0, 1}, []int{0, 1}, newPred, dop, 0)
		}
		n, err := RowCount(ctx, op)
		if err != nil {
			b.Error(err)
		}
		if n == 0 {
			b.Error("no rows passed")
		}
	})
	b.StartTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	return eng.Now()
}

// BenchmarkColumnScan measures the full simulated scan path (placement
// decode + predicate + event bookkeeping) at DOP 1, 4 and 8. ns/op is the
// real cost of simulating the scan; the sim_ms metric is the *simulated*
// elapsed time, which is what shrinks with DOP.
func BenchmarkColumnScan(b *testing.B) {
	tab := benchInts(benchRows)
	for _, dop := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			var simSecs float64
			for i := 0; i < b.N; i++ {
				simSecs = benchScan(b, tab, dop)
			}
			b.ReportMetric(simSecs*1e3, "sim_ms")
			b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
		})
	}
}

// benchPipelineRig builds the simulated machine the pipeline benchmarks
// run on (8 cores, 3 SSDs) and returns its parts.
func benchPipelineRig() (*sim.Engine, *hw.CPU, *storage.Volume) {
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	spec := hw.ScanCPU2008()
	spec.Cores = 8
	cpu := hw.NewCPU(eng, meter, "cpu", spec)
	devs := make([]storage.BlockDevice, 3)
	for i := range devs {
		devs[i] = hw.NewSSD(eng, meter, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	return eng, cpu, storage.NewVolume("vol", storage.Striped, 16<<10, devs)
}

// BenchmarkParallelHashAgg measures the partitioned parallel aggregation
// end to end (scan fragments → thread-local partials → partition-wise
// merge) at DOP 1, 4 and 8 over a stored table. sim_ms is the simulated
// elapsed time; ns/op the real cost of simulating it.
func BenchmarkParallelHashAgg(b *testing.B) {
	tab := benchStrings(benchRows, 1000)
	specs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Col: 1, As: "s"},
		{Func: Min, Col: 1, As: "lo"},
		{Func: Max, Col: 1, As: "hi"},
	}
	for _, dop := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			var simSecs float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, cpu, vol := benchPipelineRig()
				st, err := PlaceColumnMajor(tab, vol, 1, 4096, rawCodecs(2))
				if err != nil {
					b.Fatal(err)
				}
				eng.Go("query", func(p *sim.Proc) {
					ctx := NewCtx(p, cpu)
					frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, dop, 0)
					agg := NewPartitionedHashAgg(frags, q, []int{0}, specs)
					n, err := RowCount(ctx, agg)
					if err != nil {
						b.Error(err)
					}
					if n != 1000 {
						b.Errorf("groups = %d", n)
					}
				})
				b.StartTimer()
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				simSecs = eng.Now()
			}
			b.ReportMetric(simSecs*1e3, "sim_ms")
			b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
		})
	}
}

// BenchmarkParallelJoinBuild measures the partitioned parallel hash-join
// build (scan fragments → key partitioning → concurrent per-partition
// table builds) plus a serial probe, at build DOP 1, 4 and 8.
func BenchmarkParallelJoinBuild(b *testing.B) {
	build := benchInts(benchRows) // build side: 64k rows, sequential keys
	probeT := benchInts(1 << 12)  // small probe: the build is what's measured
	for _, dop := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			var simSecs float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, cpu, vol := benchPipelineRig()
				st, err := PlaceColumnMajor(build, vol, 1, 4096, rawCodecs(2))
				if err != nil {
					b.Fatal(err)
				}
				eng.Go("query", func(p *sim.Proc) {
					ctx := NewCtx(p, cpu)
					frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, dop, 0)
					j := NewPartitionedHashJoin(frags, q, &Values{Tab: probeT}, 0, 0, dop)
					n, err := RowCount(ctx, j)
					if err != nil {
						b.Error(err)
					}
					if n == 0 {
						b.Error("no matches")
					}
				})
				b.StartTimer()
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				simSecs = eng.Now()
			}
			b.ReportMetric(simSecs*1e3, "sim_ms")
			b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
		})
	}
}

// BenchmarkParallelFilterPipeline measures the fragmented filter pipeline
// (scan fragments → per-fragment Filter → Parallel merge → serial agg) at
// DOP 1, 4 and 8 — the scan→filter→agg shape the optimizer sweeps.
func BenchmarkParallelFilterPipeline(b *testing.B) {
	tab := benchInts(benchRows)
	for _, dop := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			var simSecs float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, cpu, vol := benchPipelineRig()
				st, err := PlaceColumnMajor(tab, vol, 1, 4096, rawCodecs(2))
				if err != nil {
					b.Fatal(err)
				}
				eng.Go("query", func(p *sim.Proc) {
					ctx := NewCtx(p, cpu)
					frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, dop, 0)
					for i := range frags {
						frags[i] = &Filter{In: frags[i],
							Pred: &ColConst{Col: 1, Op: Lt, Val: table.IntVal(500)}}
					}
					agg := NewHashAgg(NewParallel(frags, q), nil,
						[]AggSpec{{Func: Count, As: "n"}, {Func: Sum, Col: 1, As: "s"}})
					if _, err := RowCount(ctx, agg); err != nil {
						b.Error(err)
					}
				})
				b.StartTimer()
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				simSecs = eng.Now()
			}
			b.ReportMetric(simSecs*1e3, "sim_ms")
			b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
		})
	}
}

// BenchmarkParallelProbe measures the fragmented probe pipeline (scan
// fragments → Probers over one shared build → Parallel merge) at probe
// DOP 1, 4 and 8 — the scan→probe→agg shape. The build side is small so
// the probe stream is what's measured.
func BenchmarkParallelProbe(b *testing.B) {
	probeT := benchInts(benchRows) // probe side: 64k rows, what's measured
	build := benchInts(1 << 12)    // small build
	for _, dop := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			var simSecs float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, cpu, vol := benchPipelineRig()
				st, err := PlaceColumnMajor(probeT, vol, 1, 4096, rawCodecs(2))
				if err != nil {
					b.Fatal(err)
				}
				eng.Go("query", func(p *sim.Proc) {
					ctx := NewCtx(p, cpu)
					frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, dop, 0)
					sb := NewSharedBuild(&Values{Tab: build}, nil, nil, 0, 1)
					for i := range frags {
						frags[i] = NewProber(sb, frags[i], 0)
					}
					n, err := RowCount(ctx, NewParallel(frags, q))
					if err != nil {
						b.Error(err)
					}
					if n == 0 {
						b.Error("no matches")
					}
				})
				b.StartTimer()
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				simSecs = eng.Now()
			}
			b.ReportMetric(simSecs*1e3, "sim_ms")
			b.ReportMetric(float64(benchRows)*float64(b.N)/float64(b.Elapsed().Seconds())/1e6, "Mrows/s")
		})
	}
}
