package exec

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// multiCoreCPU2008 is ScanCPU2008 widened to n cores with a non-zero idle
// floor, so parallel-scan tests can observe both the DOP speedup and the
// race-to-idle energy win (idle watts are paid for the whole elapsed time).
func multiCoreCPU2008(n int) hw.CPUSpec {
	spec := hw.ScanCPU2008()
	spec.Name = fmt.Sprintf("scan-cpu-%dc", n)
	spec.Cores = n
	spec.IdleWatts = 40
	spec.ActivePerCore = 20
	return spec
}

// newParRig builds a rig whose CPU has the given core count.
func newParRig(cores, nSSD int) *rig {
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	cpu := hw.NewCPU(eng, meter, "cpu", multiCoreCPU2008(cores))
	devs := make([]storage.BlockDevice, nSSD)
	for i := range devs {
		devs[i] = hw.NewSSD(eng, meter, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	vol := storage.NewVolume("vol", storage.Striped, 16<<10, devs)
	return &rig{eng: eng, meter: meter, cpu: cpu, vol: vol}
}

// parallelColScan builds a DOP-way parallel column scan over st: dop
// fragments sharing one morsel dispenser under a Parallel merge. newPred
// builds a fresh predicate per fragment (predicates carry scratch state
// and must not be shared); nil means no predicate.
func parallelColScan(st *StoredTable, readCols, emit []int, newPred func() Pred, dop, morselBlocks int) *Parallel {
	q := NewMorsels(st.NumBlocks(), morselBlocks)
	frags := make([]Operator, dop)
	for i := range frags {
		var p Pred
		if newPred != nil {
			p = newPred()
		}
		cs := NewColumnScan(st, readCols, emit, p)
		cs.Morsels = q
		frags[i] = cs
	}
	return NewParallel(frags, q)
}

// sortByCol orders batches' rows by an int64 column for order-insensitive
// comparison (parallel scans emit blocks in completion order).
func flattenSorted(t *testing.T, sch *table.Schema, batches []*table.Batch, keyCol int) *table.Table {
	t.Helper()
	out := table.NewTable(sch)
	for _, b := range batches {
		out.AppendBatch(b)
	}
	idx := make([]int, out.Rows())
	for i := range idx {
		idx[i] = i
	}
	key := out.Column(keyCol)
	sort.Slice(idx, func(a, b int) bool { return key.I[idx[a]] < key.I[idx[b]] })
	sorted := table.NewTable(sch)
	for _, r := range idx {
		row := make([]table.Value, len(sch.Cols))
		for c := range sch.Cols {
			row[c] = out.Column(c).Value(r)
		}
		sorted.AppendRow(row...)
	}
	return sorted
}

func tablesEqual(t *testing.T, want, got *table.Table) {
	t.Helper()
	if want.Rows() != got.Rows() {
		t.Fatalf("row count: want %d, got %d", want.Rows(), got.Rows())
	}
	for c := range want.Schema.Cols {
		wv, gv := want.Column(c), got.Column(c)
		for r := 0; r < want.Rows(); r++ {
			if wv.Value(r).Compare(gv.Value(r)) != 0 {
				t.Fatalf("row %d col %d: want %v, got %v", r, c, wv.Value(r), gv.Value(r))
			}
		}
	}
}

func TestParallelColumnScanMatchesSerial(t *testing.T) {
	tab := ordersLike(20000)
	newPred := func() Pred {
		// Position within the read-set batch: o_totalprice is read[1].
		return &ColConst{Col: 1, Op: Lt, Val: table.FloatVal(40000)}
	}
	read := []int{0, 3}       // o_orderkey, o_totalprice
	emit := []int{0, 1}       // both
	var serial *table.Table   // baseline
	var serialElapsed float64 // baseline sim time
	for _, dop := range []int{1, 2, 4, 8} {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		elapsed := r.run(t, func(ctx *Ctx) {
			var op Operator
			if dop == 0 {
				op = NewColumnScan(st, read, emit, newPred())
			} else {
				op = parallelColScan(st, read, emit, newPred, dop, 2)
			}
			batches, err := Run(ctx, op)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, op.Schema(), batches, 0)
		})
		if serial == nil {
			// dop==1 over the parallel path is the reference; also check
			// it against the plain serial scan.
			r2 := newParRig(8, 3)
			st2, err := PlaceColumnMajor(tab, r2.vol, 1, 1024, rawCodecs(7))
			if err != nil {
				t.Fatal(err)
			}
			var ser *table.Table
			serialElapsed = r2.run(t, func(ctx *Ctx) {
				op := NewColumnScan(st2, read, emit, newPred())
				batches, err := Run(ctx, op)
				if err != nil {
					t.Error(err)
					return
				}
				ser = flattenSorted(t, op.Schema(), batches, 0)
			})
			serial = ser
		}
		tablesEqual(t, serial, got)
		if dop == 1 {
			// DOP=1 is the serial plan with an extra process hop: results
			// identical (checked above) and timing within a whisker.
			if elapsed > serialElapsed*1.05 {
				t.Fatalf("DOP=1 elapsed %.4fs, serial %.4fs", elapsed, serialElapsed)
			}
		}
	}
}

func TestParallelScanEmptyTable(t *testing.T) {
	r := newParRig(4, 2)
	empty := table.NewTable(ordersLike(0).Schema)
	st, err := PlaceColumnMajor(empty, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		op := parallelColScan(st, []int{0}, []int{0}, nil, 4, 2)
		n, err := RowCount(ctx, op)
		if err != nil {
			t.Error(err)
		}
		if n != 0 {
			t.Errorf("empty table scan returned %d rows", n)
		}
	})
}

func TestParallelScanFewerBlocksThanWorkers(t *testing.T) {
	// 700 rows in 1024-row blocks = 1 block; 4 workers, 3 of which claim
	// nothing and exit immediately.
	r := newParRig(4, 2)
	tab := ordersLike(700)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		op := parallelColScan(st, []int{0}, []int{0}, nil, 4, 2)
		n, err := RowCount(ctx, op)
		if err != nil {
			t.Error(err)
		}
		if n != 700 {
			t.Errorf("got %d rows, want 700", n)
		}
	})
}

func TestParallelScanDeterministic(t *testing.T) {
	run := func() (float64, energy.Joules, int64) {
		r := newParRig(4, 3)
		tab := ordersLike(12000)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		elapsed := r.run(t, func(ctx *Ctx) {
			op := parallelColScan(st, []int{0, 1}, []int{0, 1}, func() Pred {
				return &ColConst{Col: 1, Op: Gt, Val: table.IntVal(100)}
			}, 4, 2)
			n, err = RowCount(ctx, op)
			if err != nil {
				t.Error(err)
			}
		})
		return elapsed, r.meter.TotalEnergy(energy.Seconds(elapsed)), n
	}
	t1, e1, n1 := run()
	t2, e2, n2 := run()
	if t1 != t2 || e1 != e2 || n1 != n2 {
		t.Fatalf("non-deterministic: (%.9f s, %.6f J, %d rows) vs (%.9f s, %.6f J, %d rows)",
			t1, float64(e1), n1, t2, float64(e2), n2)
	}
}

func TestParallelScanEarlyClose(t *testing.T) {
	// A LIMIT above the merge cancels all workers mid-scan; the engine
	// must drain with no process left blocked.
	r := newParRig(4, 3)
	tab := ordersLike(20000)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		op := &Limit{In: parallelColScan(st, []int{0}, []int{0}, nil, 4, 2), N: 100}
		n, err := RowCount(ctx, op)
		if err != nil {
			t.Error(err)
		}
		if n != 100 {
			t.Errorf("got %d rows, want 100", n)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after early close", live)
	}
}

func TestParallelRowScanMatchesSerial(t *testing.T) {
	tab := ordersLike(10000)
	newPred := func() Pred {
		return &ColConst{Col: 3, Op: Ge, Val: table.FloatVal(50000)}
	}
	collect := func(mk func(st *StoredTable) Operator) (*table.Table, *rig) {
		r := newParRig(4, 3)
		st, err := PlaceRowMajor(tab, r.vol, 1, 1024, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			op := mk(st)
			batches, err := Run(ctx, op)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, op.Schema(), batches, 0)
		})
		return got, r
	}
	serial, _ := collect(func(st *StoredTable) Operator {
		rs := NewRowScan(st, []int{0, 3}, newPred())
		rs.Window = 4
		return rs
	})
	par, _ := collect(func(st *StoredTable) Operator {
		q := NewMorsels(st.NumBlocks(), 2)
		frags := make([]Operator, 4)
		for i := range frags {
			rs := NewRowScan(st, []int{0, 3}, newPred())
			rs.Window = 2
			rs.Morsels = q
			frags[i] = rs
		}
		return NewParallel(frags, q)
	})
	tablesEqual(t, serial, par)
}

// TestParallelScanRaceToIdle is the tentpole's acceptance check at the
// operator level: on a multi-core CPU a CPU-bound scan finishes ~DOP×
// sooner while drawing DOP× active power, so elapsed time falls and — with
// a real idle floor amortised over less time — total energy falls too.
func TestParallelScanRaceToIdle(t *testing.T) {
	tab := ordersLike(30000)
	measure := func(dop int) (elapsed float64, joules float64, rows int64) {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		elapsed = r.run(t, func(ctx *Ctx) {
			newPred := func() Pred {
				return &ColConst{Col: 1, Op: Gt, Val: table.IntVal(0)}
			}
			var op Operator
			if dop == 1 {
				op = NewColumnScan(st, []int{0, 1}, []int{0, 1}, newPred())
			} else {
				op = parallelColScan(st, []int{0, 1}, []int{0, 1}, newPred, dop, 2)
			}
			n, err = RowCount(ctx, op)
			if err != nil {
				t.Error(err)
			}
		})
		return elapsed, float64(r.meter.TotalEnergy(energy.Seconds(elapsed))), n
	}
	t1, e1, n1 := measure(1)
	t4, e4, n4 := measure(4)
	if n1 != n4 {
		t.Fatalf("row counts differ: %d vs %d", n1, n4)
	}
	if t4 >= t1 {
		t.Fatalf("DOP=4 no faster: %.4fs vs %.4fs serial", t4, t1)
	}
	if e4 > e1*1.001 {
		t.Fatalf("DOP=4 used more energy: %.3fJ vs %.3fJ serial", e4, e1)
	}
	t.Logf("serial: %.4fs %.3fJ; DOP=4: %.4fs %.3fJ (%.2fx faster, %.2fx energy)",
		t1, e1, t4, e4, t1/t4, e4/e1)
}

// errExploded is the sentinel errAfterOne fails with; tests assert on it
// with errors.Is, per the typed-error taxonomy (no message matching).
var errExploded = errors.New("fragment exploded")

// errAfterOne produces one row then fails, standing in for a fragment
// hitting e.g. a codec decode error mid-scan.
type errAfterOne struct {
	sch  *table.Schema
	sent bool
}

func (e *errAfterOne) Schema() *table.Schema { return e.sch }
func (e *errAfterOne) Open(ctx *Ctx) error   { e.sent = false; return nil }
func (e *errAfterOne) Close(ctx *Ctx) error  { return nil }
func (e *errAfterOne) Next(ctx *Ctx) (*table.Batch, error) {
	if e.sent {
		return nil, errExploded
	}
	e.sent = true
	b := table.NewBatch(e.sch, 1)
	b.Vecs[0].Append(table.IntVal(1))
	b.SetRows(1)
	return b, nil
}

// TestParallelFragmentErrorFailsFast: when one fragment errors, Next must
// cancel and drain the sibling workers before surfacing the error — the
// doomed query must not scan the rest of the table — and the engine must
// be left with no live process.
func TestParallelFragmentErrorFailsFast(t *testing.T) {
	r := newParRig(4, 3)
	tab := ordersLike(20000)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		q := NewMorsels(st.NumBlocks(), 2)
		frags := []Operator{
			&errAfterOne{sch: table.NewSchema("orders", tab.Schema.Cols[0])},
		}
		for i := 0; i < 3; i++ {
			cs := NewColumnScan(st, []int{0}, []int{0}, nil)
			cs.Morsels = q
			frags = append(frags, cs)
		}
		_, err := Run(ctx, NewParallel(frags, q))
		if !errors.Is(err, errExploded) {
			t.Errorf("err = %v, want fragment error", err)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after fragment error", live)
	}
}
