package exec

import (
	"math"
	"sort"

	"energydb/internal/table"
)

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materialises its input and emits it ordered by the keys. When the
// materialised input exceeds ctx.MemBudgetBytes and a spill volume is
// attached, it behaves as an external sort: runs of budget size are
// charged as writes to the spill volume and read back once during the
// merge (the data-plane sort itself happens in memory; the timing plane
// pays the real I/O an external sort would).
type Sort struct {
	In   Operator
	Keys []SortKey

	out  *table.Table
	next int
	// Spills reports how many runs were spilled during the last Open.
	Spills int
}

// Schema implements Operator.
func (s *Sort) Schema() *table.Schema { return s.In.Schema() }

// Open implements Operator: it fully sorts the input.
func (s *Sort) Open(ctx *Ctx) error {
	if err := s.In.Open(ctx); err != nil {
		return err
	}
	s.out = table.NewTable(s.In.Schema())
	s.next = 0
	s.Spills = 0
	var bytes int64
	for {
		b, err := s.In.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		bytes += b.ByteSize()
		ctx.TouchDRAM(b.ByteSize())
		for r := 0; r < b.Rows(); r++ {
			s.out.AppendRow(b.Row(r)...)
		}
	}
	if err := s.In.Close(ctx); err != nil {
		return err
	}

	n := s.out.Rows()
	if n > 1 {
		// Comparison sort cost: n log2 n per key column.
		logN := math.Log2(float64(n))
		ctx.ChargeRows(n, ctx.Costs.SortCyclesPerRowLog*logN*float64(len(s.Keys)))
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return s.less(idx[a], idx[b]) })
		sorted := table.NewTable(s.out.Schema)
		for _, i := range idx {
			sorted.AppendRow(s.out.Slice(i, i+1).Row(0)...)
		}
		s.out = sorted
	}

	// External-sort spill charge: write all runs, read them back to merge.
	if ctx.MemBudgetBytes > 0 && bytes > ctx.MemBudgetBytes && ctx.Temp != nil {
		runs := int((bytes + ctx.MemBudgetBytes - 1) / ctx.MemBudgetBytes)
		s.Spills = runs
		firstPage, pages := ctx.Temp.AllocBytes(bytes)
		for pg := firstPage; pg < firstPage+pages; pg++ {
			ctx.Temp.WritePage(ctx.P, pg)
		}
		ctx.Temp.ReadRange(ctx.P, firstPage, firstPage+pages)
		// Merge cost: one more comparison pass.
		ctx.ChargeRows(n, ctx.Costs.SortCyclesPerRowLog*math.Log2(float64(runs+1)))
	}
	return nil
}

func (s *Sort) less(a, b int) bool {
	for _, k := range s.Keys {
		c := s.out.Column(k.Col).Value(a).Compare(s.out.Column(k.Col).Value(b))
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Next implements Operator.
func (s *Sort) Next(ctx *Ctx) (*table.Batch, error) {
	if s.next >= s.out.Rows() {
		return nil, nil
	}
	hi := s.next + ctx.VectorSize
	if hi > s.out.Rows() {
		hi = s.out.Rows()
	}
	b := s.out.Slice(s.next, hi)
	s.next = hi
	return b, nil
}

// Close implements Operator.
func (s *Sort) Close(ctx *Ctx) error {
	s.out = nil
	return nil
}
