package exec

import (
	"fmt"
	"math"
	"slices"

	"energydb/internal/table"
)

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materialises its input and emits it ordered by the keys. When the
// materialised input exceeds ctx.MemBudgetBytes and a spill volume is
// attached, it behaves as an external sort: runs of budget size are
// charged as writes to the spill volume and read back once during the
// merge (the data-plane sort itself happens in memory; the timing plane
// pays the real I/O an external sort would).
//
// The comparison sort runs over an index permutation with one typed
// comparator per key closing over the raw column slice — no per-compare
// Value boxing — and the sorted order is materialised with one
// batch-level gather.
type Sort struct {
	In   Operator
	Keys []SortKey

	out  *table.Batch
	next int
	// Spills reports how many runs were spilled during the last Open.
	Spills int
}

// Schema implements Operator.
func (s *Sort) Schema() *table.Schema { return s.In.Schema() }

// keyCmp returns an ascending three-way comparator over rows a, b of the
// key column, specialised to the column's physical class.
func keyCmp(v *table.Vector) func(a, b int32) int {
	switch v.Type.Physical() {
	case table.PhysInt:
		col := v.I
		return func(a, b int32) int { return cmpOrd(col[a], col[b]) }
	case table.PhysFloat:
		col := v.F
		return func(a, b int32) int { return cmpOrd(col[a], col[b]) }
	default:
		col := v.S
		return func(a, b int32) int { return cmpOrd(col[a], col[b]) }
	}
}

func cmpOrd[T int64 | float64 | string](x, y T) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// Open implements Operator: it fully sorts the input.
func (s *Sort) Open(ctx *Ctx) error {
	if err := s.In.Open(ctx); err != nil {
		return err
	}
	s.out = table.NewBatch(s.In.Schema(), 0)
	s.next = 0
	s.Spills = 0
	var bytes int64
	for {
		b, err := s.In.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		bytes += b.ByteSize()
		ctx.TouchDRAM(b.ByteSize())
		s.out.AppendBatch(b)
	}
	if err := s.In.Close(ctx); err != nil {
		return err
	}

	n := s.out.Rows()
	if n > 1 {
		// Comparison sort cost: n log2 n per key column.
		logN := math.Log2(float64(n))
		ctx.ChargeRows(n, ctx.Costs.SortCyclesPerRowLog*logN*float64(len(s.Keys)))
		cmps := make([]func(a, b int32) int, len(s.Keys))
		for i, k := range s.Keys {
			cmps[i] = keyCmp(s.out.Vecs[k.Col])
			if k.Desc {
				asc := cmps[i]
				cmps[i] = func(a, b int32) int { return -asc(a, b) }
			}
		}
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		if len(cmps) == 1 {
			slices.SortStableFunc(perm, cmps[0])
		} else {
			slices.SortStableFunc(perm, func(a, b int32) int {
				for _, cmp := range cmps {
					if c := cmp(a, b); c != 0 {
						return c
					}
				}
				return 0
			})
		}
		s.out = s.out.Gather(perm)
	}

	// External-sort spill charge: write all runs, read them back to merge.
	if ctx.MemBudgetBytes > 0 && bytes > ctx.MemBudgetBytes && ctx.Temp != nil {
		runs := int((bytes + ctx.MemBudgetBytes - 1) / ctx.MemBudgetBytes)
		s.Spills = runs
		firstPage, pages := ctx.Temp.AllocBytes(bytes)
		for pg := firstPage; pg < firstPage+pages; pg++ {
			if err := ctx.Temp.WritePage(ctx.P, pg); err != nil {
				return fmt.Errorf("exec: sort spill: %w", err)
			}
		}
		if err := ctx.Temp.ReadRange(ctx.P, firstPage, firstPage+pages); err != nil {
			return fmt.Errorf("exec: sort spill: %w", err)
		}
		// Merge cost: one more comparison pass.
		ctx.ChargeRows(n, ctx.Costs.SortCyclesPerRowLog*math.Log2(float64(runs+1)))
	}
	return nil
}

// Next implements Operator.
func (s *Sort) Next(ctx *Ctx) (*table.Batch, error) {
	if s.next >= s.out.Rows() {
		return nil, nil
	}
	hi := s.next + ctx.VectorSize
	if hi > s.out.Rows() {
		hi = s.out.Rows()
	}
	b := s.out.Slice(s.next, hi)
	s.next = hi
	return b, nil
}

// Close implements Operator.
func (s *Sort) Close(ctx *Ctx) error {
	s.out = nil
	return nil
}
