//go:build ee_invariants

package exec

import (
	"testing"

	"energydb/internal/table"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("expected panic (%s), got none", want)
		}
	}()
	fn()
}

func TestVecPoolDoublePutPanics(t *testing.T) {
	p := &VecPool{}
	v := table.NewVector(table.Int64, 8)
	p.Put(v)
	mustPanic(t, "double Put", func() { p.Put(v) })
}

func TestVecPoolUseAfterPutPanics(t *testing.T) {
	p := &VecPool{}
	v := table.NewVector(table.Int64, 8)
	p.Put(v)
	// The old holder keeps appending to a vector the pool now owns.
	v.Append(table.Value{Type: table.Int64, I: 42})
	mustPanic(t, "use after Put", func() { p.Get(table.Int64, 8) })
}

func TestVecPoolCleanLifecycle(t *testing.T) {
	p := &VecPool{}
	v := table.NewVector(table.Int64, 8)
	v.Append(table.Value{Type: table.Int64, I: 1})
	p.Put(v)
	got := p.Get(table.Int64, 8)
	if got != v {
		t.Fatalf("expected the pooled vector back")
	}
	if got.Len() != 0 {
		t.Fatalf("Get must hand out a reset vector, len = %d", got.Len())
	}
	// A full Put/Get round trip re-arms cleanly.
	p.Put(got)
	if again := p.Get(table.Int64, 8); again != v {
		t.Fatalf("expected the pooled vector back on the second cycle")
	}
}
