package exec

import "fmt"

// QueryError is the typed failure a statement surfaces through Rows.Err:
// it names the query and wraps the underlying cause, which is always
// classifiable against the internal/fault taxonomy (ErrDeviceFailed,
// ErrTransientIO, ErrDeadlineExceeded, ErrCanceled, ErrMemBudget,
// ErrCrashed) via errors.Is.
type QueryError struct {
	Query string // statement name or SQL fragment, for diagnostics
	ID    int64  // session statement id, 0 if unknown
	Err   error  // the underlying cause
}

// Error implements error.
func (e *QueryError) Error() string {
	if e.Query == "" {
		return fmt.Sprintf("query %d: %v", e.ID, e.Err)
	}
	return fmt.Sprintf("query %d (%s): %v", e.ID, e.Query, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *QueryError) Unwrap() error { return e.Err }
