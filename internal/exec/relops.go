package exec

import (
	"fmt"

	"energydb/internal/table"
)

// Filter drops rows failing the predicate (predicate positions reference
// the child's schema). Batches that pass entirely are forwarded as-is;
// partial survivors are NOT gathered — the surviving selection vector
// rides on a reused view batch sharing the child's vectors, and chains of
// filters compose their selections in place, deferring the one compaction
// to the consumer's materialisation boundary.
type Filter struct {
	In   Operator
	Pred Pred

	sel  []int32
	view *table.Batch
}

// Schema implements Operator.
func (f *Filter) Schema() *table.Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error { return f.In.Open(ctx) }

// Next implements Operator.
func (f *Filter) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		b, err := f.In.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		n := b.Rows()
		// Start from the child's selection when it carries one (copied into
		// our scratch: Eval compacts in place and must not corrupt the
		// child's batch), else from the identity.
		var sel []int32
		if b.Sel != nil {
			if cap(f.sel) < n {
				f.sel = make([]int32, n)
			}
			sel = f.sel[:n]
			copy(sel, b.Sel)
		} else {
			sel = iotaSel(&f.sel, n)
		}
		if f.Pred != nil {
			sel = f.Pred.Eval(ctx, b, sel)
		}
		switch len(sel) {
		case 0:
			continue
		case n:
			return b, nil
		}
		if f.view == nil {
			f.view = &table.Batch{Schema: f.In.Schema(), Vecs: make([]*table.Vector, len(b.Vecs))}
		}
		copy(f.view.Vecs, b.Vecs)
		f.view.SetSel(sel)
		return f.view, nil
	}
}

// Close implements Operator.
func (f *Filter) Close(ctx *Ctx) error { return f.In.Close(ctx) }

// compactDensity is the selection density below which Project compacts a
// selected input batch before evaluating arithmetic: Arith kernels run
// over physical rows, so once fewer than half the rows are selected the
// one-off gather is cheaper than the arithmetic wasted on deselected rows.
const compactDensity = 0.5

// Project evaluates scalar expressions into a new batch.
type Project struct {
	In    Operator
	Exprs []Scalar
	Names []string

	schema  *table.Schema
	arith   bool         // some unfused expression does per-row arithmetic
	scratch *table.Batch // reusable compaction buffer for sparse selections
	out     *table.Batch // reused output batch header
}

// NewProject builds a projection; names label the output columns.
// Arithmetic expression trees are compiled into fused kernels here
// (FuseScalar); only trees the fusion pass declines keep the
// node-at-a-time path and its sparse-selection compaction.
func NewProject(in Operator, exprs []Scalar, names []string) *Project {
	if len(exprs) != len(names) {
		panic(fmt.Sprintf("exec: %d exprs, %d names", len(exprs), len(names)))
	}
	compiled := make([]Scalar, len(exprs))
	copy(compiled, exprs)
	cols := make([]table.Column, len(exprs))
	arith := false
	for i, e := range compiled {
		if f, ok := FuseScalar(e, in.Schema()); ok {
			compiled[i] = f
		} else if _, ok := e.(*Arith); ok {
			arith = true
		}
		cols[i] = table.Col(names[i], compiled[i].Type(in.Schema()))
	}
	return &Project{In: in, Exprs: compiled, Names: names, arith: arith,
		schema: table.NewSchema(in.Schema().Name, cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *table.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error { return p.In.Open(ctx) }

// Next implements Operator. Expressions evaluate over the child's
// physical rows; an incoming selection is normally not compacted here but
// composed onto the output batch, so filter→project chains stay
// gather-free. The exception is a very sparse selection feeding
// arithmetic: below compactDensity the batch is gathered once into a
// scratch buffer first, so Arith kernels stop burning cycles on rows a
// filter already dropped.
func (p *Project) Next(ctx *Ctx) (*table.Batch, error) {
	b, err := p.In.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	if p.arith && b.Sel != nil {
		if phys := b.PhysRows(); phys > 0 && float64(b.Rows()) < compactDensity*float64(phys) {
			if p.scratch == nil {
				p.scratch = table.NewBatch(p.In.Schema(), b.Rows())
			}
			p.scratch.Reset()
			p.scratch.AppendBatch(b)
			b = p.scratch
		}
	}
	if p.out == nil {
		p.out = &table.Batch{Schema: p.schema, Vecs: make([]*table.Vector, len(p.Exprs))}
	}
	out := p.out
	for i, e := range p.Exprs {
		out.Vecs[i] = e.EvalInto(ctx, b)
	}
	if b.Sel != nil && len(p.Exprs) > 0 {
		out.SetSel(b.Sel)
	} else {
		out.SetRows(b.Rows())
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close(ctx *Ctx) error {
	p.scratch = nil
	p.out = nil
	return p.In.Close(ctx)
}

// Limit passes through at most N rows; N <= 0 yields an empty result
// without pulling from the child at all.
type Limit struct {
	In Operator
	N  int64

	seen int64
}

// Schema implements Operator.
func (l *Limit) Schema() *table.Schema { return l.In.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx) error {
	l.seen = 0
	return l.In.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx *Ctx) (*table.Batch, error) {
	if l.N <= 0 || l.seen >= l.N {
		return nil, nil
	}
	b, err := l.In.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	remain := l.N - l.seen
	if int64(b.Rows()) <= remain {
		l.seen += int64(b.Rows())
		return b, nil
	}
	l.seen = l.N
	return b.Slice(0, int(remain)), nil
}

// Close implements Operator.
func (l *Limit) Close(ctx *Ctx) error { return l.In.Close(ctx) }

// Values is a leaf operator over an in-memory table (no storage charge):
// used for tests, INSERT sources and tiny dimension tables. It reuses one
// view batch across Next calls, re-pointing its vectors at the table.
type Values struct {
	Tab       *table.Table
	BatchRows int

	next int
	view *table.Batch
}

// Schema implements Operator.
func (v *Values) Schema() *table.Schema { return v.Tab.Schema }

// Open implements Operator.
func (v *Values) Open(ctx *Ctx) error {
	v.next = 0
	if v.BatchRows <= 0 {
		v.BatchRows = 4096
	}
	return nil
}

// Next implements Operator.
func (v *Values) Next(ctx *Ctx) (*table.Batch, error) {
	if v.next >= v.Tab.Rows() {
		return nil, nil
	}
	hi := v.next + v.BatchRows
	if hi > v.Tab.Rows() {
		hi = v.Tab.Rows()
	}
	if v.view == nil {
		v.view = &table.Batch{Schema: v.Tab.Schema, Vecs: make([]*table.Vector, len(v.Tab.Schema.Cols))}
		for i := range v.view.Vecs {
			v.view.Vecs[i] = &table.Vector{}
		}
	}
	for i := range v.view.Vecs {
		v.Tab.Column(i).SliceInto(v.view.Vecs[i], v.next, hi)
	}
	v.view.SetRows(hi - v.next)
	v.next = hi
	return v.view, nil
}

// Close implements Operator.
func (v *Values) Close(ctx *Ctx) error { return nil }
