package exec

import (
	"errors"
	"testing"

	"energydb/internal/table"
)

// This file tests the fragmented whole-pipeline shapes: Filter fragments
// and hash-join Probers running under the Parallel merge, plus mid-run
// widening of both exchange flavours. The serial operators are the
// reference; DOP 1 must reproduce them bit for bit (a single fragment
// drains morsels in serial order), and any DOP must reproduce the same
// multiset of rows.

// filterFrags builds dop Filter-over-scan fragments sharing one morsel
// dispenser — the exec shape the optimizer's PFilter.BuildFragments
// produces. Each fragment gets fresh predicate scratch (fragments run
// concurrently and must not share mutable state).
func filterFrags(st *StoredTable, readCols, emit []int, newPred func() Pred, dop, morselBlocks int) ([]Operator, *Morsels) {
	frags, q := colScanFrags(st, readCols, emit, nil, dop, morselBlocks)
	for i := range frags {
		frags[i] = &Filter{In: frags[i], Pred: newPred()}
	}
	return frags, q
}

// TestParallelFilterDOP1BitIdentical: one filter fragment under the
// Parallel merge is the serial pipeline in different clothes — even an
// order-sensitive float sum above it must match bit for bit.
func TestParallelFilterDOP1BitIdentical(t *testing.T) {
	tab := ordersLike(12000)
	read := []int{1, 3} // o_custkey, o_totalprice
	emit := []int{0, 1}
	newPred := func() Pred {
		return &ColConst{Col: 1, Op: Lt, Val: table.FloatVal(70000)}
	}
	specs := []AggSpec{
		{Func: Sum, Col: 1, As: "sum_price"}, // float sum: order-sensitive
		{Func: Count, As: "n"},
	}
	run := func(fragmented bool) *table.Table {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			var in Operator
			if fragmented {
				frags, q := filterFrags(st, read, emit, newPred, 1, 2)
				in = NewParallel(frags, q)
			} else {
				in = &Filter{In: NewColumnScan(st, read, emit, nil), Pred: newPred()}
			}
			got, err = Collect(ctx, NewHashAgg(in, []int{0}, specs))
			if err != nil {
				t.Error(err)
			}
		})
		return got
	}
	want, got := run(false), run(true)
	if want.Rows() != got.Rows() {
		t.Fatalf("rows: %d vs %d", want.Rows(), got.Rows())
	}
	for c := range want.Schema.Cols {
		for i := 0; i < want.Rows(); i++ {
			wv, gv := want.Column(c).Value(i), got.Column(c).Value(i)
			if wv.Type.Physical() == table.PhysFloat {
				if wv.F != gv.F { // bitwise, not tolerance
					t.Fatalf("row %d col %d: %v != %v", i, c, wv.F, gv.F)
				}
			} else if wv.Compare(gv) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, c, wv, gv)
			}
		}
	}
}

// TestParallelFilterMatchesSerialAnyDOP: fragmented filter pipelines at
// DOP 2, 4, 8 must aggregate to exactly the serial results (the specs are
// accumulation-order independent) and leave no live process.
func TestParallelFilterMatchesSerialAnyDOP(t *testing.T) {
	tab := ordersLike(20000)
	read := []int{0, 1, 2, 3}
	emit := []int{0, 1, 2, 3}
	newPred := func() Pred {
		return &ColConst{Col: 3, Op: Gt, Val: table.FloatVal(30000)}
	}
	groupBy := []int{2} // o_orderstatus

	serial := func() *table.Table {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			f := &Filter{In: NewColumnScan(st, read, emit, nil), Pred: newPred()}
			got, err = Collect(ctx, NewHashAgg(f, groupBy, aggSpecsExact()))
			if err != nil {
				t.Error(err)
			}
		})
		return got
	}()

	for _, dop := range []int{2, 4, 8} {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			frags, q := filterFrags(st, read, emit, newPred, dop, 2)
			got, err = Collect(ctx, NewHashAgg(NewParallel(frags, q), groupBy, aggSpecsExact()))
			if err != nil {
				t.Error(err)
			}
		})
		tablesEqual(t, serial, got)
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("dop=%d: %d processes still live", dop, live)
		}
	}
}

// proberFrags builds dop Probers over scan fragments sharing one morsel
// dispenser, all probing one shared build of dim — the exec shape
// PJoin.BuildFragments produces.
func proberFrags(st *StoredTable, dim *table.Table, readCols, emit []int, probeKey, dop, morselBlocks int) ([]Operator, *Morsels) {
	frags, q := colScanFrags(st, readCols, emit, nil, dop, morselBlocks)
	sb := NewSharedBuild(&Values{Tab: dim}, nil, nil, 0, 1)
	for i := range frags {
		frags[i] = NewProber(sb, frags[i], probeKey)
	}
	return frags, q
}

// TestParallelProbeDOP1BitIdentical: one Prober under the Parallel merge
// reproduces the serial HashJoin bit for bit, output order included.
func TestParallelProbeDOP1BitIdentical(t *testing.T) {
	orders := ordersLike(8000)
	dim := joinFixture(8000)
	run := func(fragmented bool) *table.Table {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			var j Operator
			if fragmented {
				frags, q := proberFrags(st, dim, []int{0, 3}, []int{0, 1}, 0, 1, 2)
				j = NewParallel(frags, q)
			} else {
				j = NewHashJoin(&Values{Tab: dim}, NewColumnScan(st, []int{0, 3}, []int{0, 1}, nil), 0, 0)
			}
			got, err = Collect(ctx, j)
			if err != nil {
				t.Error(err)
			}
		})
		return got
	}
	tablesEqual(t, run(false), run(true))
}

// TestParallelProbeMatchesSerialAnyDOP: DOP probers over one shared
// build must join exactly the serial rows (sorted compare: fragments
// complete in I/O order) at every DOP, leaving no live process.
func TestParallelProbeMatchesSerialAnyDOP(t *testing.T) {
	orders := ordersLike(16000)
	dim := joinFixture(16000)
	read := []int{0, 3}
	emit := []int{0, 1}

	serial := func() *table.Table {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			j := NewHashJoin(&Values{Tab: dim}, NewColumnScan(st, read, emit, nil), 0, 0)
			batches, err := Run(ctx, j)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, j.Schema(), batches, 0)
		})
		return got
	}()

	for _, dop := range []int{2, 4, 8} {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			frags, q := proberFrags(st, dim, read, emit, 0, dop, 2)
			par := NewParallel(frags, q)
			batches, err := Run(ctx, par)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, par.Schema(), batches, 0)
		})
		tablesEqual(t, serial, got)
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("dop=%d: %d processes still live", dop, live)
		}
	}
}

// TestParallelProbeChargesManyCores: probe fragments must charge their
// own cores — realised concurrency on the probe side, not just a
// parallel scan feeding a serial probe.
func TestParallelProbeChargesManyCores(t *testing.T) {
	orders := ordersLike(20000)
	dim := joinFixture(20000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(orders, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		frags, q := proberFrags(st, dim, []int{0, 3}, []int{0, 1}, 0, 4, 2)
		if _, err := RowCount(ctx, NewParallel(frags, q)); err != nil {
			t.Error(err)
		}
	})
	if peak := r.cpu.PeakBusyCores(); peak < 2 {
		t.Fatalf("peak busy cores = %d, want >= 2 (probers did not run concurrently)", peak)
	}
}

// TestParallelProbeEarlyCloseUnderLimit: LIMIT above the merged probers
// closes them mid-stream; the workers must unwind and the shared build
// must release, leaving no live process.
func TestParallelProbeEarlyCloseUnderLimit(t *testing.T) {
	orders := ordersLike(16000)
	dim := joinFixture(16000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(orders, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		frags, q := proberFrags(st, dim, []int{0, 3}, []int{0, 1}, 0, 4, 2)
		n, err := RowCount(ctx, &Limit{In: NewParallel(frags, q), N: 25})
		if err != nil {
			t.Error(err)
		}
		if n != 25 {
			t.Errorf("got %d rows, want 25", n)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after early close", live)
	}
}

// TestParallelProbeFragmentError: a probe fragment failing mid-stream
// must fail the merge fast and leave no live process; the shared build's
// sticky error state must not pin anything either.
func TestParallelProbeFragmentError(t *testing.T) {
	orders := ordersLike(16000)
	dim := joinFixture(16000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(orders, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		q := NewMorsels(st.NumBlocks(), 2)
		sb := NewSharedBuild(&Values{Tab: dim}, nil, nil, 0, 1)
		bad := &errAfterOne{sch: table.NewSchema("orders", orders.Schema.Cols[0])}
		frags := []Operator{NewProber(sb, bad, 0)}
		for i := 0; i < 3; i++ {
			cs := NewColumnScan(st, []int{0, 3}, []int{0, 1}, nil)
			cs.Morsels = q
			frags = append(frags, NewProber(sb, cs, 0))
		}
		_, err := Run(ctx, NewParallel(frags, q))
		if !errors.Is(err, errExploded) {
			t.Errorf("err = %v, want fragment error", err)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after fragment error", live)
	}
}

// TestParallelWidenMidStream: offering cores to a live Parallel merge
// with a Spawn hook must add fragments against the live dispenser and
// change nothing about the result — the widened run scans each block
// exactly once, like the fixed-DOP run.
func TestParallelWidenMidStream(t *testing.T) {
	orders := ordersLike(20000)
	read := []int{0, 3}
	emit := []int{0, 1}

	run := func(widenBy int) (*table.Table, int) {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 512, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		accepted := 0
		r.run(t, func(ctx *Ctx) {
			frags, q := colScanFrags(st, read, emit, nil, 2, 2)
			par := NewParallel(frags, q)
			par.Spawn = func() (Operator, error) {
				cs := NewColumnScan(st, read, emit, nil)
				cs.Morsels = q
				return cs, nil
			}
			if err := par.Open(ctx); err != nil {
				t.Error(err)
				return
			}
			var batches []*table.Batch
			for {
				b, err := par.Next(ctx)
				if err != nil {
					t.Error(err)
					break
				}
				if b == nil {
					break
				}
				batches = append(batches, b.Clone())
				if len(batches) == 1 && widenBy > 0 {
					accepted = ctx.Widen.Offer(widenBy)
				}
			}
			if err := par.Close(ctx); err != nil {
				t.Error(err)
			}
			got = flattenSorted(t, par.Schema(), batches, 0)
		})
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("%d processes still live", live)
		}
		return got, accepted
	}

	fixed, _ := run(0)
	widened, accepted := run(4)
	if accepted == 0 {
		t.Fatal("widening offer declined (dispenser drained too early?)")
	}
	tablesEqual(t, fixed, widened)
	t.Logf("merge absorbed %d extra fragments mid-stream; results identical", accepted)
}

// TestPartitionedAggWidensMidRun: the property test for re-granting into
// a running partitioned aggregation. A scheduler event fires mid-scan and
// offers two more cores; the barrier exchange spawns extra fragments
// against the live dispenser. The widened run must produce exactly the
// fixed-DOP results (integer aggregates only: per-worker partials merge
// in worker order, so float sums may legally differ) and finish no later.
func TestPartitionedAggWidensMidRun(t *testing.T) {
	tab := ordersLike(24000)
	read := []int{0, 1, 2}
	emit := []int{0, 1, 2}
	groupBy := []int{2}
	specs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Col: 1, As: "sum_cust"}, // int sum: exact at any split
	}

	run := func(widenAt float64, widenBy int) (*table.Table, float64, int) {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 512, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		var widen *Widener
		accepted := 0
		if widenBy > 0 {
			r.eng.At(widenAt, "regrant", func() {
				if widen != nil {
					accepted += widen.Offer(widenBy)
				}
			})
		}
		elapsed := r.run(t, func(ctx *Ctx) {
			widen = ctx.Widen
			frags, q := colScanFrags(st, read, emit, nil, 2, 2)
			agg := NewPartitionedHashAgg(frags, q, groupBy, specs)
			agg.Spawn = func() (Operator, error) {
				cs := NewColumnScan(st, read, emit, nil)
				cs.Morsels = q
				return cs, nil
			}
			got, err = Collect(ctx, agg)
			if err != nil {
				t.Error(err)
			}
		})
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("%d processes still live", live)
		}
		return got, elapsed, accepted
	}

	fixed, baseline, _ := run(0, 0)
	widened, elapsed, accepted := run(baseline*0.3, 2)
	if accepted == 0 {
		t.Fatalf("mid-run offer at t=%.6f accepted nothing", baseline*0.3)
	}
	tablesEqual(t, fixed, widened)
	if elapsed > baseline {
		t.Fatalf("widened run slower: %.6fs vs %.6fs fixed", elapsed, baseline)
	}
	t.Logf("widened by %d at 30%% of %.6fs: %.6fs (%.2fx); results identical",
		accepted, baseline, elapsed, baseline/elapsed)
}
