package exec

import (
	"errors"
	"math"
	"testing"

	"energydb/internal/energy"
	"energydb/internal/table"
)

// colScanFrags builds dop column-scan fragments sharing one morsel
// dispenser, ready to wire under any exchange (Parallel merge, partitioned
// agg, partitioned join build). newPred builds a fresh predicate per
// fragment; nil means no predicate.
func colScanFrags(st *StoredTable, readCols, emit []int, newPred func() Pred, dop, morselBlocks int) ([]Operator, *Morsels) {
	q := NewMorsels(st.NumBlocks(), morselBlocks)
	frags := make([]Operator, dop)
	for i := range frags {
		var p Pred
		if newPred != nil {
			p = newPred()
		}
		cs := NewColumnScan(st, readCols, emit, p)
		cs.Morsels = q
		frags[i] = cs
	}
	return frags, q
}

// TestMorselTailDistribution pins the skew-aware sizing: full-size morsels
// until fewer than two remain, then claims halve so the tail tapers and
// the final claims are small; coverage is exact and in order.
func TestMorselTailDistribution(t *testing.T) {
	m := NewMorsels(64, 4)
	var sizes []int
	next := 0
	for {
		lo, hi, ok := m.Claim()
		if !ok {
			break
		}
		if lo != next {
			t.Fatalf("claim starts at %d, want %d (gap or overlap)", lo, next)
		}
		if hi <= lo {
			t.Fatalf("empty claim [%d, %d)", lo, hi)
		}
		sizes = append(sizes, hi-lo)
		next = hi
	}
	if next != 64 {
		t.Fatalf("claims cover [0, %d), want [0, 64)", next)
	}
	// 14 full morsels (56 blocks), then the tail halves: 4, 2, 1, 1.
	want := []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 2, 1, 1}
	if len(sizes) != len(want) {
		t.Fatalf("claim sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("claim %d size %d, want %d (%v)", i, sizes[i], want[i], sizes)
		}
	}
	// A whole-range dispenser (the serial scan's private one) is exempt:
	// one claim, no tail split.
	s := NewMorsels(10, 10)
	if lo, hi, ok := s.Claim(); !ok || lo != 0 || hi != 10 {
		t.Fatalf("serial dispenser claim = [%d, %d) ok=%v, want [0, 10)", lo, hi, ok)
	}
	if _, _, ok := s.Claim(); ok {
		t.Fatal("serial dispenser handed out a second claim")
	}
	// After Reset all blocks are claimable again.
	m.Reset()
	if lo, hi, ok := m.Claim(); !ok || lo != 0 || hi != 4 {
		t.Fatalf("post-reset claim = [%d, %d) ok=%v, want [0, 4)", lo, hi, ok)
	}
}

// aggSpecsExact are aggregate specs whose results are independent of
// accumulation order (integer sums, extrema, averages of integers), so
// serial and partitioned plans must agree exactly at any DOP.
func aggSpecsExact() []AggSpec {
	return []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Col: 1, As: "sum_cust"},  // o_custkey (int)
		{Func: Min, Col: 3, As: "min_price"}, // o_totalprice (float)
		{Func: Max, Col: 3, As: "max_price"},
		{Func: Avg, Col: 1, As: "avg_cust"},
	}
}

// TestPartitionedAggMatchesSerial: the partitioned parallel aggregation
// must produce exactly the serial HashAgg's output (same groups, same
// values, same deterministic order) at every DOP.
func TestPartitionedAggMatchesSerial(t *testing.T) {
	tab := ordersLike(20000)
	read := []int{0, 1, 2, 3} // o_orderkey, o_custkey, o_orderstatus, o_totalprice
	emit := []int{0, 1, 2, 3}
	newPred := func() Pred {
		return &ColConst{Col: 3, Op: Lt, Val: table.FloatVal(80000)}
	}
	groupBy := []int{2} // o_orderstatus

	serial := func() *table.Table {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			agg := NewHashAgg(NewColumnScan(st, read, emit, newPred()), groupBy, aggSpecsExact())
			got, err = Collect(ctx, agg)
			if err != nil {
				t.Error(err)
			}
		})
		return got
	}()

	for _, dop := range []int{1, 2, 4} {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			frags, q := colScanFrags(st, read, emit, newPred, dop, 2)
			agg := NewPartitionedHashAgg(frags, q, groupBy, aggSpecsExact())
			got, err = Collect(ctx, agg)
			if err != nil {
				t.Error(err)
			}
		})
		tablesEqual(t, serial, got)
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("dop=%d: %d processes still live", dop, live)
		}
	}
}

// TestPartitionedAggDOP1BitIdentical: one fragment, one partition is the
// serial code path — even order-sensitive float sums must match bit for
// bit, because the single worker drains morsels in exactly serial order.
func TestPartitionedAggDOP1BitIdentical(t *testing.T) {
	tab := ordersLike(12000)
	read := []int{1, 3, 5} // o_custkey, o_totalprice, o_orderpriority
	emit := []int{0, 1, 2}
	specs := []AggSpec{
		{Func: Sum, Col: 1, As: "sum_price"}, // float sum: order-sensitive
		{Func: Count, As: "n"},
	}
	run := func(partitioned bool) *table.Table {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			var agg *HashAgg
			if partitioned {
				frags, q := colScanFrags(st, read, emit, nil, 1, 2)
				agg = NewPartitionedHashAgg(frags, q, []int{2}, specs)
			} else {
				agg = NewHashAgg(NewColumnScan(st, read, emit, nil), []int{2}, specs)
			}
			got, err = Collect(ctx, agg)
			if err != nil {
				t.Error(err)
			}
		})
		return got
	}
	want, got := run(false), run(true)
	if want.Rows() != got.Rows() {
		t.Fatalf("rows: %d vs %d", want.Rows(), got.Rows())
	}
	for c := range want.Schema.Cols {
		for i := 0; i < want.Rows(); i++ {
			wv, gv := want.Column(c).Value(i), got.Column(c).Value(i)
			if wv.Type.Physical() == table.PhysFloat {
				if wv.F != gv.F { // bitwise, not tolerance
					t.Fatalf("row %d col %d: %v != %v", i, c, wv.F, gv.F)
				}
			} else if wv.Compare(gv) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, c, wv, gv)
			}
		}
	}
}

// TestPartitionedAggEmptyInput: a partitioned aggregation over an empty
// table yields no groups with GROUP BY, and the single zero row without.
func TestPartitionedAggEmptyInput(t *testing.T) {
	empty := table.NewTable(ordersLike(0).Schema)
	for _, grouped := range []bool{true, false} {
		r := newParRig(4, 2)
		st, err := PlaceColumnMajor(empty, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, 4, 2)
			var gb []int
			if grouped {
				gb = []int{0}
			}
			agg := NewPartitionedHashAgg(frags, q, gb, []AggSpec{{Func: Count, As: "n"}, {Func: Sum, Col: 1, As: "s"}})
			got, err = Collect(ctx, agg)
			if err != nil {
				t.Error(err)
			}
		})
		want := 0
		if !grouped {
			want = 1 // the global zero row
		}
		if got.Rows() != want {
			t.Fatalf("grouped=%v: rows = %d, want %d", grouped, got.Rows(), want)
		}
		if !grouped && got.Column(0).I[0] != 0 {
			t.Fatalf("global count over empty input = %d, want 0", got.Column(0).I[0])
		}
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("%d processes still live", live)
		}
	}
}

// TestPartitionedAggDeterministic: same program, same seeds → bit-identical
// results, simulated elapsed time and energy across runs.
func TestPartitionedAggDeterministic(t *testing.T) {
	tab := ordersLike(15000)
	run := func() (float64, energy.Joules, *table.Table) {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		elapsed := r.run(t, func(ctx *Ctx) {
			frags, q := colScanFrags(st, []int{1, 2, 3}, []int{0, 1, 2}, func() Pred {
				return &ColConst{Col: 2, Op: Gt, Val: table.FloatVal(20000)}
			}, 4, 2)
			agg := NewPartitionedHashAgg(frags, q, []int{1}, aggSpecsExact2())
			got, err = Collect(ctx, agg)
			if err != nil {
				t.Error(err)
			}
		})
		return elapsed, r.meter.TotalEnergy(energy.Seconds(elapsed)), got
	}
	t1, e1, tab1 := run()
	t2, e2, tab2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%.9fs, %.6fJ) vs (%.9fs, %.6fJ)", t1, float64(e1), t2, float64(e2))
	}
	tablesEqual(t, tab1, tab2)
}

// aggSpecsExact2 matches the 3-column read set of the determinism test
// (cols: o_custkey, o_orderstatus, o_totalprice).
func aggSpecsExact2() []AggSpec {
	return []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Col: 0, As: "s"},
		{Func: Min, Col: 2, As: "lo"},
		{Func: Max, Col: 2, As: "hi"},
	}
}

// TestPartitionedAggEarlyCloseUnderLimit: a LIMIT above the aggregation
// closes it before the output drains; every worker and merge process must
// already have exited (the barrier exchange completes inside Open).
func TestPartitionedAggEarlyCloseUnderLimit(t *testing.T) {
	tab := ordersLike(15000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, 4, 2)
		agg := NewPartitionedHashAgg(frags, q, []int{1}, []AggSpec{{Func: Count, As: "n"}})
		n, err := RowCount(ctx, &Limit{In: agg, N: 3})
		if err != nil {
			t.Error(err)
		}
		if n != 3 {
			t.Errorf("got %d rows, want 3", n)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after early close", live)
	}
}

// TestPartitionedAggChargesManyCores: the fragment workers must charge
// their own cores — realised concurrency, not just planned DOP.
func TestPartitionedAggChargesManyCores(t *testing.T) {
	tab := ordersLike(20000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		frags, q := colScanFrags(st, []int{0, 1}, []int{0, 1}, nil, 4, 2)
		agg := NewPartitionedHashAgg(frags, q, []int{1}, []AggSpec{{Func: Sum, Col: 0, As: "s"}})
		if _, err := RowCount(ctx, agg); err != nil {
			t.Error(err)
		}
	})
	if peak := r.cpu.PeakBusyCores(); peak < 2 {
		t.Fatalf("peak busy cores = %d, want >= 2 (workers did not run concurrently)", peak)
	}
}

// TestPartitionedAggFragmentError: a fragment failing mid-stream must
// surface its error from Open and leave no live process.
func TestPartitionedAggFragmentError(t *testing.T) {
	tab := ordersLike(20000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		q := NewMorsels(st.NumBlocks(), 2)
		frags := []Operator{
			&errAfterOne{sch: table.NewSchema("orders", tab.Schema.Cols[0])},
		}
		for i := 0; i < 3; i++ {
			cs := NewColumnScan(st, []int{0}, []int{0}, nil)
			cs.Morsels = q
			frags = append(frags, cs)
		}
		agg := NewPartitionedHashAgg(frags, q, nil, []AggSpec{{Func: Count, As: "n"}})
		_, err := Run(ctx, agg)
		if !errors.Is(err, errExploded) {
			t.Errorf("err = %v, want fragment error", err)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after fragment error", live)
	}
}

// joinFixture builds a dimension table whose keys cover a quarter of the
// orders key space, so joins produce a deterministic, non-trivial match set.
func joinFixture(n int) *table.Table {
	s := table.NewSchema("dim", table.Col("d_key", table.Int64), table.Col("d_tag", table.String))
	d := table.NewTable(s)
	for i := 1; i <= n; i += 4 {
		d.AppendRow(table.IntVal(int64(i)), table.StrVal("t"))
	}
	return d
}

// TestPartitionedJoinBuildMatchesSerial: the partitioned parallel build
// must join exactly the serial HashJoin's rows at every DOP (row order may
// differ: build rows regroup by partition, so compare sorted).
func TestPartitionedJoinBuildMatchesSerial(t *testing.T) {
	orders := ordersLike(16000)
	dim := joinFixture(16000)
	read := []int{0, 3} // o_orderkey, o_totalprice
	emit := []int{0, 1}

	serial := func() *table.Table {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		var sch *table.Schema
		r.run(t, func(ctx *Ctx) {
			j := NewHashJoin(NewColumnScan(st, read, emit, nil), &Values{Tab: dim}, 0, 0)
			sch = j.Schema()
			batches, err := Run(ctx, j)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, sch, batches, 0)
		})
		return got
	}()

	for _, dop := range []int{1, 2, 4} {
		r := newParRig(8, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			frags, q := colScanFrags(st, read, emit, nil, dop, 2)
			j := NewPartitionedHashJoin(frags, q, &Values{Tab: dim}, 0, 0, dop)
			batches, err := Run(ctx, j)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, j.Schema(), batches, 0)
		})
		tablesEqual(t, serial, got)
		if live := r.eng.Live(); live != 0 {
			t.Fatalf("dop=%d: %d processes still live", dop, live)
		}
	}
}

// TestPartitionedJoinBuildDOP1BitIdentical: one build fragment, one
// partition reproduces the serial join bit for bit, output order included.
func TestPartitionedJoinBuildDOP1BitIdentical(t *testing.T) {
	orders := ordersLike(8000)
	dim := joinFixture(8000)
	run := func(partitioned bool) *table.Table {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		r.run(t, func(ctx *Ctx) {
			var j *HashJoin
			if partitioned {
				frags, q := colScanFrags(st, []int{0, 3}, []int{0, 1}, nil, 1, 2)
				j = NewPartitionedHashJoin(frags, q, &Values{Tab: dim}, 0, 0, 1)
			} else {
				j = NewHashJoin(NewColumnScan(st, []int{0, 3}, []int{0, 1}, nil), &Values{Tab: dim}, 0, 0)
			}
			got, err = Collect(ctx, j)
			if err != nil {
				t.Error(err)
			}
		})
		return got
	}
	tablesEqual(t, run(false), run(true))
}

// TestPartitionedJoinEmptyBuild: an empty build side joins to nothing and
// leaves no live process at any DOP.
func TestPartitionedJoinEmptyBuild(t *testing.T) {
	empty := table.NewTable(ordersLike(0).Schema)
	dim := joinFixture(1000)
	r := newParRig(4, 2)
	st, err := PlaceColumnMajor(empty, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		frags, q := colScanFrags(st, []int{0}, []int{0}, nil, 4, 2)
		j := NewPartitionedHashJoin(frags, q, &Values{Tab: dim}, 0, 0, 4)
		n, err := RowCount(ctx, j)
		if err != nil {
			t.Error(err)
		}
		if n != 0 {
			t.Errorf("empty build joined %d rows", n)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live", live)
	}
}

// TestPartitionedJoinEarlyCloseUnderLimit: LIMIT above the join closes it
// mid-probe; the build workers finished in Open and the probe holds no
// processes, so the engine must drain clean.
func TestPartitionedJoinEarlyCloseUnderLimit(t *testing.T) {
	orders := ordersLike(16000)
	dim := joinFixture(16000)
	r := newParRig(4, 3)
	st, err := PlaceColumnMajor(orders, r.vol, 1, 512, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(ctx *Ctx) {
		frags, q := colScanFrags(st, []int{0, 3}, []int{0, 1}, nil, 4, 2)
		j := NewPartitionedHashJoin(frags, q, &Values{Tab: dim}, 0, 0, 4)
		n, err := RowCount(ctx, &Limit{In: j, N: 50})
		if err != nil {
			t.Error(err)
		}
		if n != 50 {
			t.Errorf("got %d rows, want 50", n)
		}
	})
	if live := r.eng.Live(); live != 0 {
		t.Fatalf("%d processes still live after early close", live)
	}
}

// TestPartitionedJoinDeterministic: repeated runs produce identical
// timing, energy and (sorted) results.
func TestPartitionedJoinDeterministic(t *testing.T) {
	orders := ordersLike(12000)
	dim := joinFixture(12000)
	run := func() (float64, energy.Joules, *table.Table) {
		r := newParRig(4, 3)
		st, err := PlaceColumnMajor(orders, r.vol, 1, 1024, rawCodecs(7))
		if err != nil {
			t.Fatal(err)
		}
		var got *table.Table
		elapsed := r.run(t, func(ctx *Ctx) {
			frags, q := colScanFrags(st, []int{0, 3}, []int{0, 1}, nil, 4, 2)
			j := NewPartitionedHashJoin(frags, q, &Values{Tab: dim}, 0, 0, 4)
			batches, err := Run(ctx, j)
			if err != nil {
				t.Error(err)
				return
			}
			got = flattenSorted(t, j.Schema(), batches, 0)
		})
		return elapsed, r.meter.TotalEnergy(energy.Seconds(elapsed)), got
	}
	t1, e1, tab1 := run()
	t2, e2, tab2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%.9fs, %.6fJ) vs (%.9fs, %.6fJ)", t1, float64(e1), t2, float64(e2))
	}
	tablesEqual(t, tab1, tab2)
}

// TestPartitionedJoinNegativeZeroKey: Go map equality treats +0.0 and
// -0.0 as the same key, so the partition hash must collapse them too — a
// partitioned build filing 0.0 must be found by a probe carrying -0.0,
// exactly as the serial single-map join does.
func TestPartitionedJoinNegativeZeroKey(t *testing.T) {
	negZeroHash := hashFloat64(math.Copysign(0, -1))
	if hashFloat64(0) != negZeroHash {
		t.Fatalf("hashFloat64(+0)=%#x != hashFloat64(-0)=%#x: ±0 must share a partition", hashFloat64(0), negZeroHash)
	}
	fs := table.NewSchema("fkeys", table.Col("k", table.Float64), table.Col("v", table.Int64))
	build := table.NewTable(fs)
	probe := table.NewTable(fs)
	negZero := math.Copysign(0, -1)
	for i := 0; i < 64; i++ {
		build.AppendRow(table.FloatVal(float64(i)), table.IntVal(int64(i)))
		probe.AppendRow(table.FloatVal(float64(i)), table.IntVal(int64(i)))
	}
	build.AppendRow(table.FloatVal(0), table.IntVal(1000))       // +0.0 on the build side
	probe.AppendRow(table.FloatVal(negZero), table.IntVal(2000)) // -0.0 probes it

	count := func(mk func() *HashJoin) int64 {
		r := newParRig(4, 2)
		var n int64
		r.run(t, func(ctx *Ctx) {
			var err error
			n, err = RowCount(ctx, mk())
			if err != nil {
				t.Error(err)
			}
		})
		return n
	}
	serial := count(func() *HashJoin {
		return NewHashJoin(&Values{Tab: build}, &Values{Tab: probe}, 0, 0)
	})
	// Values doesn't morsel, so fragments must cover disjoint row sets:
	// one real fragment plus one over an empty table keeps the build rows
	// exact while still exercising the multi-fragment, multi-partition path.
	par := count(func() *HashJoin {
		empty := table.NewTable(fs)
		frags := []Operator{&Values{Tab: build}, &Values{Tab: empty}}
		return NewPartitionedHashJoin(frags, nil, &Values{Tab: probe}, 0, 0, 4)
	})
	if serial != par {
		t.Fatalf("partitioned join found %d rows, serial %d (±0.0 keys must match)", par, serial)
	}
	// Both must include the ±0.0 match: 64 diagonal matches + the zero-key
	// cross matches (+0.0 build row also matches the probe's k=0 row, etc.).
	if serial < 65 {
		t.Fatalf("serial join found %d rows, want >= 65", serial)
	}
}
