//go:build !ee_invariants

package exec

import "energydb/internal/table"

// vecPoolInv is the release-build stand-in for the VecPool lifecycle
// checker: zero-size, and its hooks inline to nothing. Build with
// -tags ee_invariants for the checking version (invariants_on.go).
type vecPoolInv struct{}

func (*vecPoolInv) onPut(*table.Vector) {}
func (*vecPoolInv) onGet(*table.Vector) {}
