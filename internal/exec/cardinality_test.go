package exec

import (
	"testing"

	"energydb/internal/compress"
	"energydb/internal/table"
)

// selProbe wraps an operator and records, per batch, the logical row
// count and whether the batch carried a deferred selection — the test
// hook for the (batch, sel) pushdown contract.
type selProbe struct {
	In Operator

	batches  int
	selected int // batches that carried a selection vector
	rows     int // logical rows seen
}

func (p *selProbe) Schema() *table.Schema { return p.In.Schema() }
func (p *selProbe) Open(ctx *Ctx) error   { return p.In.Open(ctx) }
func (p *selProbe) Close(ctx *Ctx) error  { return p.In.Close(ctx) }

func (p *selProbe) Next(ctx *Ctx) (*table.Batch, error) {
	b, err := p.In.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	p.batches++
	if b.Sel != nil {
		p.selected++
	}
	p.rows += b.Rows()
	return b, nil
}

// TestColumnScanZeroColumns: a scan that projects no columns (the
// count-only plan) must emit the table's full cardinality without reading
// a single byte from the volume.
func TestColumnScanZeroColumns(t *testing.T) {
	tab := ordersLike(5000)
	r := newRig(2)
	st, err := PlaceColumnMajor(tab, r.vol, 1, 1024, rawCodecs(7))
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	r.run(t, func(ctx *Ctx) {
		got, err = RowCount(ctx, NewColumnScan(st, nil, nil, nil))
		if err != nil {
			t.Error(err)
		}
	})
	if got != 5000 {
		t.Fatalf("zero-column scan rows = %d, want 5000", got)
	}
	if read := r.vol.Stats().BytesRead; read != 0 {
		t.Fatalf("zero-column scan read %d bytes, want 0", read)
	}
}

// TestRowScanZeroEmitCountsRows: a row scan with an empty emit list still
// reads the blocks (row stores carry all columns together) but must emit
// zero-column batches with the surviving cardinality.
func TestRowScanZeroEmitCountsRows(t *testing.T) {
	tab := ordersLike(3000)
	r := newRig(2)
	st, err := PlaceRowMajor(tab, r.vol, 1, 512, compress.Raw)
	if err != nil {
		t.Fatal(err)
	}
	pred := &ColConst{Col: 1, Op: Le, Val: table.IntVal(100)}
	want := int64(0)
	for i := 0; i < tab.Rows(); i++ {
		if tab.Column(1).I[i] <= 100 {
			want++
		}
	}
	var got int64
	r.run(t, func(ctx *Ctx) {
		got, err = RowCount(ctx, NewRowScan(st, nil, pred))
		if err != nil {
			t.Error(err)
		}
	})
	if got != want {
		t.Fatalf("zero-emit row scan rows = %d, want %d", got, want)
	}
}

// TestFilterChainPushdown drives a 3-deep filter chain and checks both
// the result and the contract: partially-selective filters hand their
// survivors downstream as (batch, sel) views — no intermediate gather —
// and the final materialisation resolves the composed selection once.
func TestFilterChainPushdown(t *testing.T) {
	tab := ordersLike(4000)
	r := newRig(1)

	want := 0
	for i := 0; i < tab.Rows(); i++ {
		if tab.Column(0).I[i] > 500 && tab.Column(3).F[i] > 30000 && tab.Column(2).S[i] != "P" {
			want++
		}
	}
	if want == 0 || want == tab.Rows() {
		t.Fatalf("degenerate selectivity: want = %d", want)
	}

	probe2, probe3 := &selProbe{}, &selProbe{}
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		f1 := &Filter{In: &Values{Tab: tab, BatchRows: 512},
			Pred: &ColConst{Col: 0, Op: Gt, Val: table.IntVal(500)}}
		probe2.In = f1
		f2 := &Filter{In: probe2, Pred: &ColConst{Col: 3, Op: Gt, Val: table.FloatVal(30000)}}
		probe3.In = f2
		f3 := &Filter{In: probe3, Pred: &ColConst{Col: 2, Op: Ne, Val: table.StrVal("P")}}
		var err error
		got, err = Collect(ctx, f3)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != want {
		t.Fatalf("filter chain rows = %d, want %d", got.Rows(), want)
	}
	for i := 0; i < got.Rows(); i++ {
		if got.Column(0).I[i] <= 500 || got.Column(3).F[i] <= 30000 || got.Column(2).S[i] == "P" {
			t.Fatalf("row %d violates a predicate", i)
		}
	}
	// Selections were pushed, not gathered: the partially-filtered batches
	// between the filters carried selection vectors.
	if probe2.selected == 0 || probe3.selected == 0 {
		t.Fatalf("no deferred selections between filters: probe2=%+v probe3=%+v", probe2, probe3)
	}
	if probe3.rows >= probe2.rows {
		t.Fatalf("second filter dropped nothing: %d -> %d", probe2.rows, probe3.rows)
	}
}

// TestProjectComposesSelection: a projection between filters must forward
// a dense-enough incoming selection instead of compacting (below
// compactDensity the gather is the better trade — see
// TestProjectCompactsSparseSelection), and arithmetic over a selected
// batch must produce values aligned with the survivors.
func TestProjectComposesSelection(t *testing.T) {
	tab := ordersLike(2000)
	r := newRig(1)
	probe := &selProbe{}
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		// Gt 700 leaves the partial batch (keys 513..1024) at 324/512
		// survivors — above the compaction threshold.
		f := &Filter{In: &Values{Tab: tab, BatchRows: 512},
			Pred: &ColConst{Col: 0, Op: Gt, Val: table.IntVal(700)}}
		p := NewProject(f,
			[]Scalar{&ColRef{Col: 0}, &Arith{Op: Mul, L: &ColRef{Col: 3}, R: &Const{Val: table.FloatVal(2)}}},
			[]string{"k", "double_price"})
		probe.In = p
		var err error
		got, err = Collect(ctx, probe)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 1300 {
		t.Fatalf("rows = %d, want 1300", got.Rows())
	}
	if probe.selected == 0 {
		t.Fatal("projection compacted the selection instead of composing it")
	}
	for i := 0; i < got.Rows(); i++ {
		k := got.Column(0).I[i]
		if k <= 700 {
			t.Fatalf("row %d: key %d failed the filter", i, k)
		}
		wantP := tab.Column(3).F[k-1] * 2 // o_orderkey is i+1
		if got.Column(1).F[i] != wantP {
			t.Fatalf("row %d: price %v, want %v", i, got.Column(1).F[i], wantP)
		}
	}
}

// TestProjectFusedSparseSelection: a fused arithmetic kernel is
// selection-aware, so even a far-below-compactDensity selection rides
// through the projection uncompacted (no gather, no wasted arithmetic
// on deselected rows) and the values still line up row for row.
func TestProjectFusedSparseSelection(t *testing.T) {
	tab := ordersLike(2000)
	r := newRig(1)
	probe := &selProbe{}
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		// Gt 1000 leaves batch 513..1024 at 24/512 survivors — far below
		// compactDensity, but the fused kernel evaluates only selected rows.
		f := &Filter{In: &Values{Tab: tab, BatchRows: 512},
			Pred: &ColConst{Col: 0, Op: Gt, Val: table.IntVal(1000)}}
		p := NewProject(f,
			[]Scalar{&ColRef{Col: 0}, &Arith{Op: Mul, L: &ColRef{Col: 3}, R: &Const{Val: table.FloatVal(2)}}},
			[]string{"k", "double_price"})
		probe.In = p
		var err error
		got, err = Collect(ctx, probe)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 1000 {
		t.Fatalf("rows = %d, want 1000", got.Rows())
	}
	if probe.selected == 0 {
		t.Fatal("fused projection compacted the sparse selection instead of composing it")
	}
	for i := 0; i < got.Rows(); i++ {
		k := got.Column(0).I[i]
		if k <= 1000 {
			t.Fatalf("row %d: key %d failed the filter", i, k)
		}
		wantP := tab.Column(3).F[k-1] * 2
		if got.Column(1).F[i] != wantP {
			t.Fatalf("row %d: price %v, want %v", i, got.Column(1).F[i], wantP)
		}
	}
}

// opaqueScalar hides a Scalar from the fusion pass, forcing the
// node-at-a-time fallback (and, for sparse selections, the projection's
// pre-arithmetic compaction).
type opaqueScalar struct{ Scalar }

// TestProjectCompactsSparseUnfused: when fusion declines a tree (here an
// Arith over an opaque child), a below-compactDensity selection is still
// gathered once before evaluation, so the fallback path doesn't burn
// per-node arithmetic on deselected rows.
func TestProjectCompactsSparseUnfused(t *testing.T) {
	tab := ordersLike(2000)
	r := newRig(1)
	probe := &selProbe{}
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		f := &Filter{In: &Values{Tab: tab, BatchRows: 512},
			Pred: &ColConst{Col: 0, Op: Gt, Val: table.IntVal(1000)}}
		p := NewProject(f,
			[]Scalar{&ColRef{Col: 0},
				&Arith{Op: Mul, L: &opaqueScalar{&ColRef{Col: 3}}, R: &Const{Val: table.FloatVal(2)}}},
			[]string{"k", "double_price"})
		probe.In = p
		var err error
		got, err = Collect(ctx, probe)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 1000 {
		t.Fatalf("rows = %d, want 1000", got.Rows())
	}
	if probe.selected != 0 {
		t.Fatalf("sparse selection rode through the unfused projection uncompacted (%d selected batches)", probe.selected)
	}
	for i := 0; i < got.Rows(); i++ {
		k := got.Column(0).I[i]
		if k <= 1000 {
			t.Fatalf("row %d: key %d failed the filter", i, k)
		}
		wantP := tab.Column(3).F[k-1] * 2
		if got.Column(1).F[i] != wantP {
			t.Fatalf("row %d: price %v, want %v", i, got.Column(1).F[i], wantP)
		}
	}
}

// TestSelectedBatchesIntoJoinsAndAggs runs filtered (selected) inputs
// into both join algorithms and the aggregate, which must resolve the
// deferred selections at their materialisation boundaries.
func TestSelectedBatchesIntoJoinsAndAggs(t *testing.T) {
	orders := ordersLike(2000)
	keysSchema := table.NewSchema("keys", table.Col("k", table.Int64))
	keys := table.NewTable(keysSchema)
	for i := 1; i <= 2000; i += 4 {
		keys.AppendRow(table.IntVal(int64(i)))
	}
	filtered := func() Operator {
		return &Filter{In: &Values{Tab: orders, BatchRows: 256},
			Pred: &ColConst{Col: 0, Op: Le, Val: table.IntVal(1000)}}
	}
	want := int64(250) // keys 1,5,...,997 within 1..1000

	r := newRig(1)
	var hj, nl, aggN int64
	var aggSum float64
	r.run(t, func(ctx *Ctx) {
		var err error
		// Filtered probe side (selection-aware probe loop).
		if hj, err = RowCount(ctx, NewHashJoin(&Values{Tab: keys}, filtered(), 0, 0)); err != nil {
			t.Error(err)
		}
		// Filtered build side and filtered NL inner (compaction boundary).
		if _, err = RowCount(ctx, NewHashJoin(filtered(), &Values{Tab: keys}, 0, 0)); err != nil {
			t.Error(err)
		}
		if nl, err = RowCount(ctx, NewNestedLoopJoin(&Values{Tab: keys, BatchRows: 128}, filtered(), 0, 0)); err != nil {
			t.Error(err)
		}
		agg := NewHashAgg(filtered(), nil, []AggSpec{
			{Func: Count, As: "n"}, {Func: Sum, Col: 3, As: "s"},
		})
		res, err := Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
		aggN = res.Column(0).I[0]
		aggSum = res.Column(1).F[0]
	})
	if hj != want || nl != want {
		t.Fatalf("hash join %d, NL join %d, want %d", hj, nl, want)
	}
	if aggN != 1000 {
		t.Fatalf("agg count over filtered input = %d, want 1000", aggN)
	}
	var wantSum float64
	for i := 0; i < 1000; i++ {
		wantSum += orders.Column(3).F[i]
	}
	if diff := aggSum - wantSum; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("agg sum over filtered input = %v, want %v", aggSum, wantSum)
	}
}

// TestLimitZeroAndNegative: Limit with N == 0 or N < 0 yields an empty
// stream without touching the child.
func TestLimitZeroAndNegative(t *testing.T) {
	tab := ordersLike(100)
	r := newRig(1)
	for _, n := range []int64{0, -1} {
		var got int64
		r.run(t, func(ctx *Ctx) {
			var err error
			got, err = RowCount(ctx, &Limit{In: &Values{Tab: tab}, N: n})
			if err != nil {
				t.Error(err)
			}
		})
		if got != 0 {
			t.Fatalf("LIMIT %d rows = %d, want 0", n, got)
		}
	}
}
