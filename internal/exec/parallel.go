package exec

import (
	"fmt"

	"energydb/internal/sim"
	"energydb/internal/table"
)

// DefaultMorselBlocks is the morsel size in placement blocks. With the
// default 8192-row blocks a morsel is ~32k rows — large enough that claim
// overhead vanishes, small enough that workers finishing early can steal
// work from a skewed tail.
const DefaultMorselBlocks = 4

// Morsels is a shared work dispenser for morsel-driven parallel scans: the
// block range [0, total) is handed out in fixed-size chunks ("morsels") to
// whichever scan fragment asks next. Fragments that hit cheap morsels
// (sparse predicates, well-compressed blocks) simply come back sooner and
// claim more — dynamic load balancing without a scheduler.
//
// All claims happen from simulated processes, which the sim engine runs
// one at a time with channel handoffs between them, so no locking is
// needed and the claim order is deterministic.
type Morsels struct {
	total int // blocks to hand out
	size  int // blocks per morsel
	next  int
}

// NewMorsels returns a dispenser over [0, totalBlocks) handing out
// morselBlocks blocks per claim (<= 0 selects DefaultMorselBlocks).
func NewMorsels(totalBlocks, morselBlocks int) *Morsels {
	if morselBlocks <= 0 {
		morselBlocks = DefaultMorselBlocks
	}
	return &Morsels{total: totalBlocks, size: morselBlocks}
}

// Claim hands out the next unclaimed block range [lo, hi); ok reports
// whether any work remained.
//
// Near the tail the chunk shrinks: once fewer than two full morsels
// remain, each claim takes half the remaining blocks (rounded up) instead
// of a full morsel, so the final claims taper off and the last worker to
// ask never walks away with one big straggler chunk while its siblings sit
// idle. A dispenser whose morsel covers the whole range (the serial scan's
// private dispenser) is exempt — there are no siblings to balance against.
func (m *Morsels) Claim() (lo, hi int, ok bool) {
	rem := m.total - m.next
	if rem <= 0 {
		return 0, 0, false
	}
	size := m.size
	if size < m.total && rem <= 2*size {
		if half := (rem + 1) / 2; half < size {
			size = half
		}
	}
	lo = m.next
	hi = lo + size
	if hi > m.total {
		hi = m.total
	}
	m.next = hi
	return lo, hi, true
}

// Reset makes all blocks claimable again (for operator re-open).
func (m *Morsels) Reset() { m.next = 0 }

// Remaining reports how many blocks are still unclaimed — the widening
// hook uses it to decline extra workers when the scan is nearly done.
func (m *Morsels) Remaining() int {
	if rem := m.total - m.next; rem > 0 {
		return rem
	}
	return 0
}

// parItem is one message from a scan fragment to the merge point.
type parItem struct {
	batch *table.Batch // nil on done/error items
	w     int          // producing worker index
	err   error
	done  bool // worker exited (err, if any, rides along)
}

// Parallel is the streaming flavour of the exchange layer (see
// exchange.go): it runs DOP fragment operators, each in its own simulated
// process, and merges their batches into one stream in completion order.
// Pipelines that accumulate rather than stream (partitioned aggregation,
// join builds) use the RunFragments barrier exchange instead.
//
// Contract. Every fragment is a scan over the same stored table whose
// Morsels field points at one shared dispenser, so together the fragments
// cover each block exactly once; which fragment produces which block is
// decided dynamically but deterministically (the engine interleaves
// processes in a fixed order). Each fragment charges CPU work through its
// own process, so up to DOP cores of the shared hw.CPU are busy at once —
// elapsed time shrinks toward cpu/DOP while power rises by DOP × active
// watts, which is exactly the race-to-idle trade the energy tests measure.
//
// Batch validity and selection vectors are preserved across the merge
// without a gather: a worker that has produced a batch parks until the
// consumer's *next* Next (or Close) acknowledges it, so the fragment may
// not reuse its buffers while the batch is live, and a deferred selection
// (Batch.Sel) rides through untouched. At most DOP batches are therefore
// in flight, bounding memory. Rows arrive in completion order, not table
// order — exactly the guarantee scans already give (blocks complete in
// I/O order), so every downstream operator works unchanged.
type Parallel struct {
	Frags []Operator // fragments sharing one Morsels dispenser
	Queue *Morsels   // the shared dispenser; reset on Open

	// Spawn, when set, constructs one more fragment over Queue, letting a
	// mid-pipeline re-grant widen the running merge (see Ctx.Widen): the
	// new fragment claims morsels from the same live dispenser, so the
	// result is unchanged — only more cores race through the remainder.
	Spawn func() (Operator, error)

	schema     *table.Schema
	out        *sim.Mailbox[parItem]
	acks       []*sim.Mailbox[bool] // per worker: true = consumed, false = cancel
	live       int                  // workers not yet exited
	last       int                  // worker owed an ack at the next Next, or -1
	started    bool
	failed     error
	registered bool // holding the Ctx.Widen slot
}

// NewParallel builds the merge over fragments that share queue. The
// fragments must produce identical schemas; each must be exclusively owned
// (fragments run concurrently and may not share mutable state such as
// predicate scratch).
func NewParallel(frags []Operator, queue *Morsels) *Parallel {
	if len(frags) == 0 {
		panic("exec: Parallel needs at least one fragment")
	}
	return &Parallel{Frags: frags, Queue: queue, schema: frags[0].Schema()}
}

// Schema implements Operator.
func (s *Parallel) Schema() *table.Schema { return s.schema }

// Open implements Operator. Workers start lazily on first Next so that an
// Open/Close pair without iteration (and re-opens by nested-loop joins)
// spawns no processes.
func (s *Parallel) Open(ctx *Ctx) error {
	if s.Queue != nil {
		s.Queue.Reset()
	}
	s.started = false
	s.live = 0
	s.last = -1
	s.failed = nil
	return nil
}

func (s *Parallel) start(ctx *Ctx) {
	s.started = true
	eng := ctx.P.Engine()
	s.out = sim.NewMailbox[parItem](eng, "parallel:out")
	s.acks = s.acks[:0]
	s.live = 0
	for _, frag := range s.Frags {
		s.startWorker(ctx, eng, frag)
	}
	if s.Spawn != nil && ctx.Widen != nil {
		owner := ctx.P.Owner()
		s.registered = ctx.Widen.Register(func(extra int) int {
			return s.widen(ctx, eng, owner, extra)
		})
	}
}

// startWorker spawns the next fragment worker (index len(s.acks)).
func (s *Parallel) startWorker(ctx *Ctx, eng *sim.Engine, frag Operator) *sim.Proc {
	i := len(s.acks)
	s.acks = append(s.acks, sim.NewMailbox[bool](eng, fmt.Sprintf("parallel:ack%d", i)))
	s.live++
	return eng.Go(fmt.Sprintf("parallel:w%d", i), func(wp *sim.Proc) {
		// Each worker executes its fragment against a private context
		// whose process is the worker itself: CPU charges land on a
		// core of the shared CPU concurrently with the other workers.
		// (The worker inherits the consumer's attribution owner at
		// spawn — sim.Engine.Go — so the whole tree charges one
		// account.)
		wctx := *ctx
		wctx.P = wp
		err := frag.Open(&wctx)
		if err == nil {
			for {
				var b *table.Batch
				b, err = frag.Next(&wctx)
				if err != nil || b == nil {
					break
				}
				if b.Rows() == 0 {
					continue
				}
				s.out.Put(parItem{batch: b, w: i})
				if !s.acks[i].Get(wp) {
					break // consumer closed early
				}
			}
			if cerr := frag.Close(&wctx); err == nil {
				err = cerr
			}
		}
		s.out.Put(parItem{w: i, err: err, done: true})
	})
}

// widen is the re-grant hook: it absorbs up to extra freed cores by
// spawning additional fragments against the live morsel dispenser. It
// runs from scheduler event context (not a query process), so the new
// workers take their attribution owner from the consumer, captured at
// registration. Offers are declined once the merge is failing, finished,
// or the dispenser is nearly drained — late extra workers would only pay
// startup cost to find no morsels left.
func (s *Parallel) widen(ctx *Ctx, eng *sim.Engine, owner any, extra int) int {
	accepted := 0
	for accepted < extra {
		if !s.started || s.failed != nil || s.live == 0 || s.Queue == nil || s.Queue.Remaining() == 0 {
			break
		}
		frag, err := s.Spawn()
		if err != nil || frag == nil {
			break
		}
		// Keep Frags in sync so a later re-open keeps the wider shape.
		s.Frags = append(s.Frags, frag)
		p := s.startWorker(ctx, eng, frag)
		p.SetOwner(owner)
		accepted++
	}
	return accepted
}

// Next implements Operator. It releases the previously returned batch back
// to its producing worker, then blocks for the next batch from any worker.
// A fragment error fails fast: the sibling workers are cancelled and
// drained before the error surfaces, so a doomed query does not scan the
// rest of the table first.
func (s *Parallel) Next(ctx *Ctx) (*table.Batch, error) {
	if !s.started {
		s.start(ctx)
	}
	if s.last >= 0 {
		s.acks[s.last].Put(true)
		s.last = -1
	}
	for s.live > 0 {
		it := s.out.Get(ctx.P)
		if it.done {
			s.live--
			if it.err != nil && s.failed == nil {
				s.failed = it.err
			}
			if s.failed != nil {
				s.cancelWorkers(ctx)
				return nil, s.failed
			}
			continue
		}
		s.last = it.w
		return it.batch, nil
	}
	return nil, s.failed
}

// cancelWorkers tells every outstanding worker to stop and drains them to
// exit, leaving no process blocked in the engine.
func (s *Parallel) cancelWorkers(ctx *Ctx) {
	if s.last >= 0 {
		s.acks[s.last].Put(false)
		s.last = -1
	}
	for s.live > 0 {
		it := s.out.Get(ctx.P)
		if it.done {
			s.live--
			if it.err != nil && s.failed == nil {
				s.failed = it.err
			}
			continue
		}
		s.acks[it.w].Put(false)
	}
}

// Close implements Operator: it cancels outstanding workers and drains
// them, so an early close (LIMIT, error upstream) leaves no process
// blocked in the engine.
func (s *Parallel) Close(ctx *Ctx) error {
	if s.registered {
		ctx.Widen.Deregister()
		s.registered = false
	}
	if !s.started {
		return nil
	}
	s.cancelWorkers(ctx)
	s.started = false
	return s.failed
}
