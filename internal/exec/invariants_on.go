//go:build ee_invariants

package exec

import (
	"fmt"

	"energydb/internal/table"
)

// vecPoolInv is the checking version of the VecPool lifecycle hooks,
// compiled in with -tags ee_invariants (CI's race job uses it). It
// enforces the ownership half of the scratch-vector contract:
//
//   - double Put: returning the same vector twice would hand one buffer
//     to two operators, which then silently overwrite each other.
//   - use after Put: a Put transfers ownership to the pool, so any
//     append/reset by the old holder while the vector sits in the free
//     list is a write to memory someone else may now own. Detected by
//     snapshotting Len() at Put and comparing at Get.
//
// Violations panic: they are programming errors in operator code, never
// data-dependent conditions.
type vecPoolInv struct {
	released map[*table.Vector]int // pooled vector -> Len() snapshot at Put
}

func (inv *vecPoolInv) onPut(v *table.Vector) {
	if inv.released == nil {
		inv.released = make(map[*table.Vector]int)
	}
	if _, dup := inv.released[v]; dup {
		panic(fmt.Sprintf("exec: VecPool double Put of vector %p", v))
	}
	inv.released[v] = v.Len()
}

func (inv *vecPoolInv) onGet(v *table.Vector) {
	want, ok := inv.released[v]
	if !ok {
		return // entered the free list before checking was enabled
	}
	if got := v.Len(); got != want {
		panic(fmt.Sprintf("exec: VecPool vector %p mutated after Put (len %d at Put, %d now): the old holder kept writing to pooled memory", v, want, got))
	}
	delete(inv.released, v)
}
