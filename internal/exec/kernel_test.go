package exec

import (
	"testing"

	"energydb/internal/table"
)

// TestHashAggNulByteGroupsDistinct is the regression test for the old
// group-key scheme (Value.String() + "\x00" concatenation): the key
// tuples ("a\x00", "b") and ("a", "\x00b") rendered to the same string
// and their groups merged. The length-prefixed binary encoding keeps
// them distinct.
func TestHashAggNulByteGroupsDistinct(t *testing.T) {
	s := table.NewSchema("t",
		table.Col("g1", table.String),
		table.Col("g2", table.String),
		table.Col("v", table.Int64),
	)
	tab := table.NewTable(s)
	tab.AppendRow(table.StrVal("a\x00"), table.StrVal("b"), table.IntVal(1))
	tab.AppendRow(table.StrVal("a"), table.StrVal("\x00b"), table.IntVal(10))
	tab.AppendRow(table.StrVal("a\x00"), table.StrVal("b"), table.IntVal(2))

	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: tab}, []int{0, 1},
			[]AggSpec{{Func: Count, As: "n"}, {Func: Sum, Col: 2, As: "s"}})
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 2 {
		t.Fatalf("groups = %d, want 2 (NUL-containing keys collided)", got.Rows())
	}
	sums := map[string]int64{}
	for i := 0; i < got.Rows(); i++ {
		sums[got.Column(0).S[i]+"|"+got.Column(1).S[i]] = got.Column(3).I[i]
	}
	if sums["a\x00|b"] != 3 || sums["a|\x00b"] != 10 {
		t.Fatalf("group sums = %v", sums)
	}
}

// TestHashAggIntFloatKeysDistinct checks the fixed-width halves of the
// key encoding: int and float group columns that share raw bit patterns
// across rows must still form distinct groups.
func TestHashAggIntFloatKeysDistinct(t *testing.T) {
	s := table.NewSchema("t",
		table.Col("gi", table.Int64),
		table.Col("gf", table.Float64),
	)
	tab := table.NewTable(s)
	tab.AppendRow(table.IntVal(1), table.FloatVal(2))
	tab.AppendRow(table.IntVal(1), table.FloatVal(3))
	tab.AppendRow(table.IntVal(2), table.FloatVal(2))
	tab.AppendRow(table.IntVal(1), table.FloatVal(2))

	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: tab}, []int{0, 1}, []AggSpec{{Func: Count, As: "n"}})
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 3 {
		t.Fatalf("groups = %d, want 3", got.Rows())
	}
}

// TestHashAggOutputSortedByKey pins the deterministic output order:
// groups emit sorted ascending by the group key values.
func TestHashAggOutputSortedByKey(t *testing.T) {
	tab := ordersLike(2000)
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: tab}, []int{1}, []AggSpec{{Func: Count, As: "n"}})
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})
	for i := 1; i < got.Rows(); i++ {
		if got.Column(0).I[i] <= got.Column(0).I[i-1] {
			t.Fatalf("group keys not ascending at %d: %d after %d",
				i, got.Column(0).I[i], got.Column(0).I[i-1])
		}
	}
}

// TestHashAggSumAvgOverStringYieldsZero pins the ill-typed-but-reachable
// case (the SQL binder does not reject SUM over a string column): it must
// produce the zero value, not panic.
func TestHashAggSumAvgOverStringYieldsZero(t *testing.T) {
	s := table.NewSchema("t", table.Col("g", table.Int64), table.Col("s", table.String))
	tab := table.NewTable(s)
	tab.AppendRow(table.IntVal(1), table.StrVal("a"))
	tab.AppendRow(table.IntVal(1), table.StrVal("b"))

	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: tab}, []int{0},
			[]AggSpec{{Func: Sum, Col: 1, As: "s"}, {Func: Avg, Col: 1, As: "a"}})
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 1 || got.Column(1).S[0] != "" || got.Column(2).F[0] != 0 {
		t.Fatalf("sum/avg over string: %v rows, sum=%q avg=%v",
			got.Rows(), got.Column(1).S[0], got.Column(2).F[0])
	}
}

// TestPredSelectionVectors exercises the selection-vector kernels through
// And/Or/Not composition against a scalar reference evaluation.
func TestPredSelectionVectors(t *testing.T) {
	tab := ordersLike(3000)
	pred := &And{Preds: []Pred{
		&Or{Preds: []Pred{
			&ColConst{Col: 0, Op: Le, Val: table.IntVal(500)},
			&ColConst{Col: 0, Op: Gt, Val: table.IntVal(2500)},
		}},
		&Not{Pred: &ColConst{Col: 2, Op: Eq, Val: table.StrVal("F")}},
		&ColConst{Col: 3, Op: Ge, Val: table.FloatVal(30000)},
	}}
	want := 0
	for i := 0; i < tab.Rows(); i++ {
		k := tab.Column(0).I[i]
		if (k <= 500 || k > 2500) && tab.Column(2).S[i] != "F" && tab.Column(3).F[i] >= 30000 {
			want++
		}
	}
	r := newRig(1)
	var got int64
	r.run(t, func(ctx *Ctx) {
		var err error
		got, err = RowCount(ctx, &Filter{In: &Values{Tab: tab, BatchRows: 700}, Pred: pred})
		if err != nil {
			t.Error(err)
		}
	})
	if got != int64(want) {
		t.Fatalf("rows = %d, want %d", got, want)
	}
}

// TestFilterBatchReuseSafeWithCollect ensures the buffer-reuse contract
// holds end to end: a selective filter's reused output batch must not
// corrupt rows already drained into a table.
func TestFilterBatchReuseSafeWithCollect(t *testing.T) {
	tab := ordersLike(4000)
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		f := &Filter{In: &Values{Tab: tab, BatchRows: 256},
			Pred: &ColConst{Col: 1, Op: Le, Val: table.IntVal(300)}}
		var err error
		got, err = Collect(ctx, f)
		if err != nil {
			t.Error(err)
		}
	})
	i := 0
	for r := 0; r < tab.Rows(); r++ {
		if tab.Column(1).I[r] > 300 {
			continue
		}
		if got.Column(0).I[i] != tab.Column(0).I[r] || got.Column(6).S[i] != tab.Column(6).S[r] {
			t.Fatalf("filtered row %d corrupted", i)
		}
		i++
	}
	if i != got.Rows() {
		t.Fatalf("rows = %d, want %d", got.Rows(), i)
	}
}

// TestLimitSliceView checks Limit's zero-copy partial batch.
func TestLimitSliceView(t *testing.T) {
	tab := ordersLike(1000)
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		var err error
		got, err = Collect(ctx, &Limit{In: &Values{Tab: tab, BatchRows: 300}, N: 450})
		if err != nil {
			t.Error(err)
		}
	})
	if got.Rows() != 450 {
		t.Fatalf("rows = %d, want 450", got.Rows())
	}
	for i := 0; i < 450; i++ {
		if got.Column(0).I[i] != tab.Column(0).I[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestHashAggReadsThroughSelection checks the selection-aware grouping
// path: a filtered batch carrying a deferred selection vector must
// aggregate identically to the pre-compacted equivalent, with the key
// encoder and the typed update loops indexing physical rows through Sel
// instead of gathering into a scratch batch first.
func TestHashAggReadsThroughSelection(t *testing.T) {
	s := table.NewSchema("t",
		table.Col("g", table.String),
		table.Col("v", table.Int64),
		table.Col("f", table.Float64),
	)
	tab := table.NewTable(s)
	groups := []string{"red", "green", "blue"}
	for i := 0; i < 5000; i++ {
		tab.AppendRow(
			table.StrVal(groups[i%3]),
			table.IntVal(int64(i)),
			table.FloatVal(float64(i)/7),
		)
	}
	specs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Col: 1, As: "s"},
		{Func: Min, Col: 1, As: "lo"},
		{Func: Max, Col: 2, As: "hi"},
		{Func: Avg, Col: 2, As: "m"},
	}
	pred := &ColConst{Col: 1, Op: Lt, Val: table.IntVal(3000)}

	// Through the selection: Filter defers its gather, HashAgg reads Sel.
	r := newRig(1)
	var got *table.Table
	r.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Filter{In: &Values{Tab: tab}, Pred: pred}, []int{0}, specs)
		var err error
		got, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})

	// Reference: compact the survivors first, then aggregate.
	compact := table.NewTable(s)
	for i := 0; i < 3000; i++ {
		compact.AppendRow(tab.Column(0).Value(i), tab.Column(1).Value(i), tab.Column(2).Value(i))
	}
	r2 := newRig(1)
	var want *table.Table
	r2.run(t, func(ctx *Ctx) {
		agg := NewHashAgg(&Values{Tab: compact}, []int{0}, specs)
		var err error
		want, err = Collect(ctx, agg)
		if err != nil {
			t.Error(err)
		}
	})

	if got.Rows() != want.Rows() {
		t.Fatalf("groups: got %d, want %d", got.Rows(), want.Rows())
	}
	for r := 0; r < want.Rows(); r++ {
		for c := range want.Schema.Cols {
			if got.Column(c).Value(r).Compare(want.Column(c).Value(r)) != 0 {
				t.Fatalf("row %d col %d: got %v, want %v",
					r, c, got.Column(c).Value(r), want.Column(c).Value(r))
			}
		}
	}
}
