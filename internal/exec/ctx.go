// Package exec is the vectorised volcano executor: storage-backed scans
// (row- and column-oriented, with per-column compression), filters,
// projections, hash and block-nested-loop joins, external sort, hash
// aggregation and limit.
//
// Operators do real work on real data (codecs really decode, joins really
// match) and *charge* that work to the simulated hardware: CPU cycles via
// hw.CPU, page I/O via storage.Volume / buffer.Pool. Simulated elapsed
// time and energy therefore reflect exactly the bytes moved and tuples
// processed by the chosen plan — which is the mechanism behind both of the
// paper's experiments.
package exec

import (
	"energydb/internal/buffer"
	"energydb/internal/hw"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// CostParams are the CPU cost constants (cycles per unit of work) charged
// by operators. The scan constant is calibrated so a simple projection
// scan processes ~0.75 GB/s per 2.4 GHz core, matching the relational
// scanner of Harizopoulos et al. [HLA+06] that Figure 2 draws on.
type CostParams struct {
	ScanCyclesPerByte      float64 // predicate+projection work per scanned byte
	RowParseCyclesPerByte  float64 // extra row-store tuple parsing cost
	FilterCyclesPerRow     float64 // per predicate term per row
	ProjectCyclesPerRow    float64 // per scalar expression per row
	HashBuildCyclesPerRow  float64
	HashProbeCyclesPerRow  float64
	JoinOutputCyclesPerRow float64
	SortCyclesPerRowLog    float64 // per row per log2(rows)
	AggCyclesPerRow        float64 // per row per aggregate
}

// DefaultCosts returns the calibrated cost constants.
func DefaultCosts() CostParams {
	return CostParams{
		ScanCyclesPerByte:      3.2,
		RowParseCyclesPerByte:  2.2,
		FilterCyclesPerRow:     8,
		ProjectCyclesPerRow:    12,
		HashBuildCyclesPerRow:  60,
		HashProbeCyclesPerRow:  45,
		JoinOutputCyclesPerRow: 25,
		SortCyclesPerRowLog:    14,
		AggCyclesPerRow:        30,
	}
}

// Ctx carries the simulated hardware an operator tree executes against.
type Ctx struct {
	P     *sim.Proc
	CPU   *hw.CPU
	DRAM  *hw.DRAM        // optional: charged for working-set traffic
	Pool  *buffer.Pool    // optional: row scans go through it when set
	Temp  *storage.Volume // optional: spill target for external sort
	Costs CostParams

	// MemBudgetBytes caps operator working memory (hash tables, sort
	// runs); 0 means unlimited. Exceeding it forces spills.
	MemBudgetBytes int64

	// PageRefetchJoules, when positive, is the estimated energy to re-read
	// one page from the backing store; row scans forward it to energy-
	// aware buffer policies.
	PageRefetchJoules float64

	// VectorSize is the preferred rows per batch for non-scan operators.
	VectorSize int

	// Scratch recycles per-operator scratch vectors (scalar expression
	// outputs) across the operators of one query. Worker contexts copied
	// from this one share the pool by pointer; the engine's one-process-
	// at-a-time discipline makes that sound. Nil is allowed — operators
	// fall back to allocating.
	Scratch *VecPool

	// Widen, when non-nil, lets a live fragmented exchange accept extra
	// cores mid-pipeline (see Widener). Shared by pointer with worker
	// contexts like Scratch.
	Widen *Widener
}

// NewCtx builds a context with default costs and vector size.
func NewCtx(p *sim.Proc, cpu *hw.CPU) *Ctx {
	return &Ctx{P: p, CPU: cpu, Costs: DefaultCosts(), VectorSize: 4096,
		Scratch: &VecPool{}, Widen: &Widener{}}
}

// VecPool is a free list of scratch vectors. Operators acquire a vector
// once (typically on first batch) and keep it for their lifetime,
// resetting it per batch — so the pool's job is recycling across
// operator instances (pipeline restarts, per-fragment expression
// copies), not per-batch churn.
type VecPool struct {
	free []*table.Vector
	inv  vecPoolInv // lifecycle assertions; no-op unless built with -tags ee_invariants
}

// Get returns a reusable vector retyped to t, or a fresh one with the
// given capacity when none of the right physical class is free.
func (p *VecPool) Get(t table.Type, capacity int) *table.Vector {
	for i, v := range p.free {
		if v.Type.Physical() == t.Physical() {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.inv.onGet(v)
			v.Type = t
			v.Reset()
			return v
		}
	}
	return table.NewVector(t, capacity)
}

// Put returns a vector to the free list. The caller gives up ownership:
// touching v after Put is a contract violation (the pool may hand it to
// another operator), caught under the ee_invariants build tag.
func (p *VecPool) Put(v *table.Vector) {
	if v != nil {
		p.inv.onPut(v)
		p.free = append(p.free, v)
	}
}

// scratchVec acquires a scratch vector through the context's pool, or
// allocates when the context has none (hand-built test contexts).
func scratchVec(ctx *Ctx, t table.Type, capacity int) *table.Vector {
	if ctx != nil && ctx.Scratch != nil {
		return ctx.Scratch.Get(t, capacity)
	}
	return table.NewVector(t, capacity)
}

// ChargeBytes charges byte-proportional CPU work.
func (c *Ctx) ChargeBytes(n int64, cyclesPerByte float64) {
	if n > 0 {
		c.CPU.Use(c.P, float64(n)*cyclesPerByte)
	}
}

// ChargeRows charges row-proportional CPU work.
func (c *Ctx) ChargeRows(n int, cyclesPerRow float64) {
	if n > 0 {
		c.CPU.Use(c.P, float64(n)*cyclesPerRow)
	}
}

// TouchDRAM charges marginal memory access energy for n bytes, if a DRAM
// device is attached.
func (c *Ctx) TouchDRAM(n int64) {
	if c.DRAM != nil && n > 0 {
		c.DRAM.Access(n)
	}
}
