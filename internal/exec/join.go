package exec

import (
	"fmt"

	"energydb/internal/fault"
	"energydb/internal/table"
)

// joinSchema concatenates build and probe schemas, prefixing duplicate
// column names with the side's relation name.
func joinSchema(name string, l, r *table.Schema) *table.Schema {
	seen := map[string]bool{}
	var cols []table.Column
	add := func(rel string, c table.Column) {
		n := c.Name
		if seen[n] {
			n = rel + "." + n
		}
		seen[n] = true
		cols = append(cols, table.Column{Name: n, Type: c.Type, Width: c.Width})
	}
	for _, c := range l.Cols {
		add(l.Name, c)
	}
	for _, c := range r.Cols {
		add(r.Name, c)
	}
	return table.NewSchema(name, cols...)
}

// HashJoin is an equi-join that materialises the build side into in-memory
// hash tables and streams the probe side. It is fast but holds the whole
// build relation in memory — the power-hungry choice §4.1 calls out: hash
// join "relies on using a large chunk of memory ... From a power
// perspective, these are expensive operations and may tip the balance in
// favor of nested-loop join".
//
// The serial plan is the one-fragment, one-partition special case of the
// partitioned parallel build: with Build set (BuildFrags nil) the build
// side drains inline into a single partition; with BuildFrags set, each
// fragment pipeline runs in its own simulated process under the
// RunFragments barrier exchange, hash-partitioning its rows by key into
// per-worker per-partition row stores, and the per-partition typed hash
// tables are then built concurrently (one process per partition). The
// probe side routes through the same partitioning: each probe key hashes
// to the partition whose table can hold it.
//
// Hash tables are typed on the key column's physical class (raw int64,
// float64 or string keys — int-class types share the int64 table, which
// is what normalises Int64/Date/Decimal keys across relations), and the
// probe inner loop only accumulates (buildRow, probeRow) index pairs;
// output rows are materialised with one batch-level gather per side.
type HashJoin struct {
	Build      Operator   // serial build input; ignored when BuildFrags is set
	BuildFrags []Operator // parallel build fragment pipelines sharing BuildQueue
	BuildQueue *Morsels   // shared dispenser behind BuildFrags; reset on Open
	Probe      Operator
	BuildKey   int // column index in the build schema
	ProbeKey   int // column index in Probe's schema
	Partitions int // build hash partitions, rounded up to a power of two; <= 1 builds one table

	schema     *table.Schema
	nparts     uint32
	htI        []map[int64][]int32 // per partition; values are global buildB rows
	htF        []map[float64][]int32
	htS        []map[string][]int32
	buildB     *table.Batch // materialised build side (partitions concatenated)
	buildBytes int64
	bsel, psel []int32      // reusable gather index scratch
	out        *table.Batch // reusable output batch
}

// NewHashJoin builds a serial hash join of two operators on single key
// columns.
func NewHashJoin(build, probe Operator, buildKey, probeKey int) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe, BuildKey: buildKey, ProbeKey: probeKey,
		schema: joinSchema("hashjoin", build.Schema(), probe.Schema()),
	}
}

// NewPartitionedHashJoin builds a hash join whose build side runs as
// len(frags) parallel fragment pipelines sharing the queue dispenser,
// partitioned partitions-ways. The fragments must produce identical
// schemas and be exclusively owned.
func NewPartitionedHashJoin(frags []Operator, queue *Morsels, probe Operator, buildKey, probeKey, partitions int) *HashJoin {
	if len(frags) == 0 {
		panic("exec: partitioned HashJoin needs at least one build fragment")
	}
	return &HashJoin{
		BuildFrags: frags, BuildQueue: queue, Probe: probe,
		BuildKey: buildKey, ProbeKey: probeKey, Partitions: partitions,
		schema: joinSchema("hashjoin", frags[0].Schema(), probe.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *table.Schema { return j.schema }

// MemBytes reports the hash-table working set after Open; the optimizer's
// energy model charges DRAM power for it.
func (j *HashJoin) MemBytes() int64 { return j.buildBytes }

// buildSchema is the build side's input schema.
func (j *HashJoin) buildSchema() *table.Schema {
	if j.BuildFrags != nil {
		return j.BuildFrags[0].Schema()
	}
	return j.Build.Schema()
}

// buildPartitioner routes build-side rows into per-partition materialised
// row stores by the hash of their key — the same hash the probe side uses
// to route lookups. One partition appends whole batches (the serial path's
// behaviour, bit for bit).
type buildPartitioner struct {
	key    int
	nparts uint32
	parts  []*table.Batch
	bytes  int64
	sel    [][]int32 // reusable per-partition row-index scratch
}

func newBuildPartitioner(schema *table.Schema, key int, nparts uint32) *buildPartitioner {
	bp := &buildPartitioner{key: key, nparts: nparts,
		parts: make([]*table.Batch, nparts), sel: make([][]int32, nparts)}
	for p := range bp.parts {
		bp.parts[p] = table.NewBatch(schema, 0)
	}
	return bp
}

// route appends sel[p] for every logical row of b, honouring a deferred
// selection on the batch.
func route[T comparable](keys []T, hash func(T) uint32, mask uint32, bsel []int32, n int, sel [][]int32) {
	if bsel == nil {
		for r := 0; r < n; r++ {
			p := hash(keys[r]) & mask
			sel[p] = append(sel[p], int32(r))
		}
		return
	}
	for _, r := range bsel {
		p := hash(keys[r]) & mask
		sel[p] = append(sel[p], r)
	}
}

// absorb folds one build batch into the partitioned row stores, charging
// the build work to the calling (worker's) process.
func (bp *buildPartitioner) absorb(ctx *Ctx, b *table.Batch) {
	ctx.ChargeRows(b.Rows(), ctx.Costs.HashBuildCyclesPerRow)
	bp.bytes += b.ByteSize()
	ctx.TouchDRAM(b.ByteSize())
	if bp.nparts == 1 {
		bp.parts[0].AppendBatch(b)
		return
	}
	for p := range bp.sel {
		bp.sel[p] = bp.sel[p][:0]
	}
	kv := b.Vecs[bp.key]
	mask := bp.nparts - 1
	switch kv.Type.Physical() {
	case table.PhysInt:
		route(kv.I, hashInt64, mask, b.Sel, b.Rows(), bp.sel)
	case table.PhysFloat:
		route(kv.F, hashFloat64, mask, b.Sel, b.Rows(), bp.sel)
	default:
		route(kv.S, hashString, mask, b.Sel, b.Rows(), bp.sel)
	}
	for p, sel := range bp.sel {
		if len(sel) > 0 {
			bp.parts[p].AppendGather(b, sel)
		}
	}
}

// Open implements Operator: it drains the build side — inline for the
// serial path, under the barrier exchange for the fragmented one — then
// builds the per-partition typed hash tables (concurrently when the build
// was fragmented) and opens the probe.
func (j *HashJoin) Open(ctx *Ctx) error {
	bschema := j.buildSchema()
	nparts := 1
	if j.Partitions > 1 {
		nparts = ceilPow2(j.Partitions)
	}
	j.nparts = uint32(nparts)

	// Phase 1: drain build pipelines into per-worker partitioned row stores.
	var locals []*buildPartitioner
	if j.BuildFrags == nil {
		bp := newBuildPartitioner(bschema, j.BuildKey, j.nparts)
		if err := j.Build.Open(ctx); err != nil {
			return err
		}
		for {
			b, err := j.Build.Next(ctx)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			bp.absorb(ctx, b)
		}
		if err := j.Build.Close(ctx); err != nil {
			return err
		}
		locals = []*buildPartitioner{bp}
	} else {
		if j.BuildQueue != nil {
			j.BuildQueue.Reset()
		}
		locals = make([]*buildPartitioner, len(j.BuildFrags))
		for i := range locals {
			locals[i] = newBuildPartitioner(bschema, j.BuildKey, j.nparts)
		}
		if err := RunFragments(ctx, "hashjoin:build", j.BuildFrags, func(w int, wctx *Ctx, b *table.Batch) error {
			locals[w].absorb(wctx, b)
			return nil
		}); err != nil {
			return err
		}
	}

	// Phase 2: concatenate the workers' shares of each partition (worker
	// order within a partition, partitions in order) into one build batch,
	// recording every partition's global row span. The serial path (one
	// worker, one partition) adopts the materialised rows as-is — absorb
	// already copied them once.
	j.buildBytes = 0
	spans := make([][2]int, nparts)
	if len(locals) == 1 && nparts == 1 {
		j.buildB = locals[0].parts[0]
		locals[0].parts[0] = nil
		spans[0] = [2]int{0, j.buildB.Rows()}
	} else {
		j.buildB = table.NewBatch(bschema, 0)
		for p := 0; p < nparts; p++ {
			lo := j.buildB.Rows()
			for _, l := range locals {
				j.buildB.AppendBatch(l.parts[p])
				l.parts[p] = nil
			}
			spans[p] = [2]int{lo, j.buildB.Rows()}
		}
	}
	for _, l := range locals {
		j.buildBytes += l.bytes
	}
	if ctx.MemBudgetBytes > 0 && j.buildBytes > ctx.MemBudgetBytes {
		// Free the partial build state before failing so an aborted query
		// does not pin the materialised build side for the Rows' lifetime.
		over := j.buildBytes
		j.buildB, j.buildBytes = nil, 0
		j.htI, j.htF, j.htS = nil, nil, nil
		return fmt.Errorf("exec: hash join build side (%d bytes) exceeds memory budget (%d): %w",
			over, ctx.MemBudgetBytes, fault.ErrMemBudget)
	}

	// Phase 3: build each partition's typed hash table over its row span —
	// one process per partition when the build was fragmented, inline for
	// the serial plan. Values are global buildB row indexes, so the probe
	// and output paths are partition-agnostic.
	kv := j.buildB.Vecs[j.BuildKey]
	j.htI, j.htF, j.htS = nil, nil, nil
	phys := kv.Type.Physical()
	switch phys {
	case table.PhysInt:
		j.htI = make([]map[int64][]int32, nparts)
	case table.PhysFloat:
		j.htF = make([]map[float64][]int32, nparts)
	default:
		j.htS = make([]map[string][]int32, nparts)
	}
	buildPart := func(p int) {
		lo, hi := spans[p][0], spans[p][1]
		switch phys {
		case table.PhysInt:
			ht := make(map[int64][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				ht[kv.I[i]] = append(ht[kv.I[i]], int32(i))
			}
			j.htI[p] = ht
		case table.PhysFloat:
			ht := make(map[float64][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				ht[kv.F[i]] = append(ht[kv.F[i]], int32(i))
			}
			j.htF[p] = ht
		default:
			ht := make(map[string][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				ht[kv.S[i]] = append(ht[kv.S[i]], int32(i))
			}
			j.htS[p] = ht
		}
	}
	if j.BuildFrags != nil && nparts > 1 {
		if err := ParDo(ctx, "hashjoin:tables", nparts, func(p int, wctx *Ctx) error {
			buildPart(p)
			return nil
		}); err != nil {
			return err
		}
	} else {
		for p := 0; p < nparts; p++ {
			buildPart(p)
		}
	}
	return j.Probe.Open(ctx)
}

// probeHT probes one typed hash table with the probe batch's key column,
// honouring a selection vector when one rides on the batch (sel == nil
// probes every physical row). Matching (build, probe) physical index
// pairs are appended to bsel/psel.
func probeHT[T comparable](ht map[T][]int32, key []T, sel, bsel, psel []int32) ([]int32, []int32) {
	if sel == nil {
		for r, x := range key {
			for _, bi := range ht[x] {
				bsel = append(bsel, bi)
				psel = append(psel, int32(r))
			}
		}
		return bsel, psel
	}
	for _, pi := range sel {
		for _, bi := range ht[key[pi]] {
			bsel = append(bsel, bi)
			psel = append(psel, pi)
		}
	}
	return bsel, psel
}

// probePartHT routes every probe key to its partition — the same hash the
// build side filed it under — and probes that partition's table.
func probePartHT[T comparable](hts []map[T][]int32, hash func(T) uint32, mask uint32, key []T, sel, bsel, psel []int32) ([]int32, []int32) {
	if sel == nil {
		for r, x := range key {
			for _, bi := range hts[hash(x)&mask][x] {
				bsel = append(bsel, bi)
				psel = append(psel, int32(r))
			}
		}
		return bsel, psel
	}
	for _, pi := range sel {
		x := key[pi]
		for _, bi := range hts[hash(x)&mask][x] {
			bsel = append(bsel, bi)
			psel = append(psel, pi)
		}
	}
	return bsel, psel
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		pb, err := j.Probe.Next(ctx)
		if err != nil {
			return nil, err
		}
		if pb == nil {
			return nil, nil
		}
		ctx.ChargeRows(pb.Rows(), ctx.Costs.HashProbeCyclesPerRow)
		bsel, psel := j.bsel[:0], j.psel[:0]
		kv := pb.Vecs[j.ProbeKey]
		mask := j.nparts - 1
		switch kv.Type.Physical() {
		case table.PhysInt:
			if j.nparts == 1 {
				bsel, psel = probeHT(j.htI[0], kv.I, pb.Sel, bsel, psel)
			} else {
				bsel, psel = probePartHT(j.htI, hashInt64, mask, kv.I, pb.Sel, bsel, psel)
			}
		case table.PhysFloat:
			if j.nparts == 1 {
				bsel, psel = probeHT(j.htF[0], kv.F, pb.Sel, bsel, psel)
			} else {
				bsel, psel = probePartHT(j.htF, hashFloat64, mask, kv.F, pb.Sel, bsel, psel)
			}
		default:
			if j.nparts == 1 {
				bsel, psel = probeHT(j.htS[0], kv.S, pb.Sel, bsel, psel)
			} else {
				bsel, psel = probePartHT(j.htS, hashString, mask, kv.S, pb.Sel, bsel, psel)
			}
		}
		j.bsel, j.psel = bsel, psel
		if len(psel) == 0 {
			// Keep pulling probe batches until something matches or EOF.
			continue
		}
		ctx.ChargeRows(len(psel), ctx.Costs.JoinOutputCyclesPerRow)
		if j.out == nil {
			j.out = table.NewBatch(j.schema, len(psel))
		}
		j.out.Reset()
		nb := len(j.buildB.Vecs)
		for c, v := range j.buildB.Vecs {
			j.out.Vecs[c].AppendGather(v, bsel)
		}
		for c, v := range pb.Vecs {
			j.out.Vecs[nb+c].AppendGather(v, psel)
		}
		j.out.SetRows(len(psel))
		return j.out, nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	j.htI, j.htF, j.htS = nil, nil, nil
	j.buildB = nil
	j.out = nil
	return j.Probe.Close(ctx)
}

// NestedLoopJoin is the block nested-loop equi-join: for every outer
// batch it re-executes the inner operator from scratch. It needs almost
// no memory but re-reads the inner relation once per outer block —
// trading DRAM watts for repeated I/O, the other side of the §4.1
// tradeoff.
type NestedLoopJoin struct {
	Outer    Operator
	Inner    Operator
	OuterKey int
	InnerKey int

	schema     *table.Schema
	outerB     *table.Batch
	inner      bool // inner currently open
	osel, isel []int32
	out        *table.Batch // reusable output batch
	iscratch   *table.Batch // reusable compaction buffer for selected inner batches
}

// NewNestedLoopJoin builds a block nested-loop equi-join.
func NewNestedLoopJoin(outer, inner Operator, outerKey, innerKey int) *NestedLoopJoin {
	return &NestedLoopJoin{
		Outer: outer, Inner: inner, OuterKey: outerKey, InnerKey: innerKey,
		schema: joinSchema("nljoin", outer.Schema(), inner.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	j.outerB = nil
	j.inner = false
	return j.Outer.Open(ctx)
}

// matchPairs compares every (outer, inner) key pair over the raw typed
// slices and appends matching index pairs to osel/isel.
func matchPairs[T int64 | float64 | string](ok, ik []T, osel, isel []int32) ([]int32, []int32) {
	for or, ov := range ok {
		for ir, iv := range ik {
			if ov == iv {
				osel = append(osel, int32(or))
				isel = append(isel, int32(ir))
			}
		}
	}
	return osel, isel
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		if j.outerB == nil {
			ob, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, err
			}
			if ob == nil {
				return nil, nil
			}
			if ob.Rows() == 0 {
				continue
			}
			// Copy: the outer child may reuse its batch while we hold this
			// block across many inner batches.
			j.outerB = ob.Clone()
			if err := j.Inner.Open(ctx); err != nil { // rescan inner
				return nil, err
			}
			j.inner = true
		}
		ib, err := j.Inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if ib == nil {
			if err := j.Inner.Close(ctx); err != nil {
				return nil, err
			}
			j.inner = false
			j.outerB = nil
			continue
		}
		if ib.Sel != nil {
			// The pairwise kernels run over whole vectors: compact a
			// selected inner batch once, here at the consumption boundary.
			if j.iscratch == nil {
				j.iscratch = table.NewBatch(j.Inner.Schema(), ib.Rows())
			}
			j.iscratch.Reset()
			j.iscratch.AppendBatch(ib)
			ib = j.iscratch
		}
		// Compare every (outer, inner) pair in the two blocks.
		ctx.ChargeRows(j.outerB.Rows()*ib.Rows(), ctx.Costs.FilterCyclesPerRow)
		osel, isel := j.osel[:0], j.isel[:0]
		ov, iv := j.outerB.Vecs[j.OuterKey], ib.Vecs[j.InnerKey]
		switch ov.Type.Physical() {
		case table.PhysInt:
			osel, isel = matchPairs(ov.I, iv.I, osel, isel)
		case table.PhysFloat:
			osel, isel = matchPairs(ov.F, iv.F, osel, isel)
		default:
			osel, isel = matchPairs(ov.S, iv.S, osel, isel)
		}
		j.osel, j.isel = osel, isel
		if len(osel) == 0 {
			continue
		}
		ctx.ChargeRows(len(osel), ctx.Costs.JoinOutputCyclesPerRow)
		if j.out == nil {
			j.out = table.NewBatch(j.schema, len(osel))
		}
		j.out.Reset()
		no := len(j.outerB.Vecs)
		for c, v := range j.outerB.Vecs {
			j.out.Vecs[c].AppendGather(v, osel)
		}
		for c, v := range ib.Vecs {
			j.out.Vecs[no+c].AppendGather(v, isel)
		}
		j.out.SetRows(len(osel))
		return j.out, nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close(ctx *Ctx) error {
	var err error
	if j.inner {
		err = j.Inner.Close(ctx)
		j.inner = false
	}
	j.outerB = nil
	j.out = nil
	j.iscratch = nil
	if e := j.Outer.Close(ctx); err == nil {
		err = e
	}
	return err
}
