package exec

import (
	"fmt"

	"energydb/internal/table"
)

// joinSchema concatenates build and probe schemas, prefixing duplicate
// column names with the side's relation name.
func joinSchema(name string, l, r *table.Schema) *table.Schema {
	seen := map[string]bool{}
	var cols []table.Column
	add := func(rel string, c table.Column) {
		n := c.Name
		if seen[n] {
			n = rel + "." + n
		}
		seen[n] = true
		cols = append(cols, table.Column{Name: n, Type: c.Type, Width: c.Width})
	}
	for _, c := range l.Cols {
		add(l.Name, c)
	}
	for _, c := range r.Cols {
		add(r.Name, c)
	}
	return table.NewSchema(name, cols...)
}

// HashJoin is an equi-join that materialises the build side into an
// in-memory hash table and streams the probe side. It is fast but holds
// the whole build relation in memory — the power-hungry choice §4.1 calls
// out: hash join "relies on using a large chunk of memory ... From a power
// perspective, these are expensive operations and may tip the balance in
// favor of nested-loop join".
type HashJoin struct {
	Build    Operator
	Probe    Operator
	BuildKey int // column index in Build's schema
	ProbeKey int // column index in Probe's schema

	schema     *table.Schema
	ht         map[table.Value][]int
	buildRows  *table.Table
	buildBytes int64
}

// NewHashJoin builds a hash join of two operators on single key columns.
func NewHashJoin(build, probe Operator, buildKey, probeKey int) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe, BuildKey: buildKey, ProbeKey: probeKey,
		schema: joinSchema("hashjoin", build.Schema(), probe.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *table.Schema { return j.schema }

// MemBytes reports the hash-table working set after Open; the optimizer's
// energy model charges DRAM power for it.
func (j *HashJoin) MemBytes() int64 { return j.buildBytes }

// Open implements Operator: it drains the build side.
func (j *HashJoin) Open(ctx *Ctx) error {
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	j.ht = make(map[table.Value][]int)
	j.buildRows = table.NewTable(j.Build.Schema())
	j.buildBytes = 0
	for {
		b, err := j.Build.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		ctx.ChargeRows(b.Rows(), ctx.Costs.HashBuildCyclesPerRow)
		j.buildBytes += b.ByteSize()
		ctx.TouchDRAM(b.ByteSize())
		for r := 0; r < b.Rows(); r++ {
			key := normKey(b.Vecs[j.BuildKey].Value(r))
			j.ht[key] = append(j.ht[key], j.buildRows.Rows())
			j.buildRows.AppendRow(b.Row(r)...)
		}
	}
	if err := j.Build.Close(ctx); err != nil {
		return err
	}
	if ctx.MemBudgetBytes > 0 && j.buildBytes > ctx.MemBudgetBytes {
		return fmt.Errorf("exec: hash join build side (%d bytes) exceeds memory budget (%d)",
			j.buildBytes, ctx.MemBudgetBytes)
	}
	return j.Probe.Open(ctx)
}

// normKey normalises int-class values so Int64/Date/Decimal keys compare
// equal across relations.
func normKey(v table.Value) table.Value {
	switch v.Type.Physical() {
	case table.PhysInt:
		return table.Value{Type: table.Int64, I: v.I}
	case table.PhysFloat:
		return table.Value{Type: table.Float64, F: v.F}
	default:
		return table.Value{Type: table.String, S: v.S}
	}
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		pb, err := j.Probe.Next(ctx)
		if err != nil {
			return nil, err
		}
		if pb == nil {
			return nil, nil
		}
		ctx.ChargeRows(pb.Rows(), ctx.Costs.HashProbeCyclesPerRow)
		out := table.NewBatch(j.schema, pb.Rows())
		matches := 0
		for r := 0; r < pb.Rows(); r++ {
			key := normKey(pb.Vecs[j.ProbeKey].Value(r))
			for _, bi := range j.ht[key] {
				row := append(j.buildRows.Slice(bi, bi+1).Row(0), pb.Row(r)...)
				out.AppendRow(row...)
				matches++
			}
		}
		ctx.ChargeRows(matches, ctx.Costs.JoinOutputCyclesPerRow)
		if out.Rows() > 0 {
			return out, nil
		}
		// Keep pulling probe batches until something matches or EOF.
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	j.ht = nil
	j.buildRows = nil
	return j.Probe.Close(ctx)
}

// NestedLoopJoin is the block nested-loop equi-join: for every outer
// batch it re-executes the inner operator from scratch. It needs almost
// no memory but re-reads the inner relation once per outer block —
// trading DRAM watts for repeated I/O, the other side of the §4.1
// tradeoff.
type NestedLoopJoin struct {
	Outer    Operator
	Inner    Operator
	OuterKey int
	InnerKey int

	schema *table.Schema
	outerB *table.Batch
	inner  bool // inner currently open
}

// NewNestedLoopJoin builds a block nested-loop equi-join.
func NewNestedLoopJoin(outer, inner Operator, outerKey, innerKey int) *NestedLoopJoin {
	return &NestedLoopJoin{
		Outer: outer, Inner: inner, OuterKey: outerKey, InnerKey: innerKey,
		schema: joinSchema("nljoin", outer.Schema(), inner.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	j.outerB = nil
	j.inner = false
	return j.Outer.Open(ctx)
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		if j.outerB == nil {
			ob, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, err
			}
			if ob == nil {
				return nil, nil
			}
			if ob.Rows() == 0 {
				continue
			}
			j.outerB = ob
			if err := j.Inner.Open(ctx); err != nil { // rescan inner
				return nil, err
			}
			j.inner = true
		}
		ib, err := j.Inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if ib == nil {
			if err := j.Inner.Close(ctx); err != nil {
				return nil, err
			}
			j.inner = false
			j.outerB = nil
			continue
		}
		// Compare every (outer, inner) pair in the two blocks.
		ctx.ChargeRows(j.outerB.Rows()*ib.Rows(), ctx.Costs.FilterCyclesPerRow)
		out := table.NewBatch(j.schema, 0)
		matches := 0
		for or := 0; or < j.outerB.Rows(); or++ {
			ok := normKey(j.outerB.Vecs[j.OuterKey].Value(or))
			for ir := 0; ir < ib.Rows(); ir++ {
				ik := normKey(ib.Vecs[j.InnerKey].Value(ir))
				if ok == ik {
					row := append(j.outerB.Row(or), ib.Row(ir)...)
					out.AppendRow(row...)
					matches++
				}
			}
		}
		ctx.ChargeRows(matches, ctx.Costs.JoinOutputCyclesPerRow)
		if out.Rows() > 0 {
			return out, nil
		}
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close(ctx *Ctx) error {
	var err error
	if j.inner {
		err = j.Inner.Close(ctx)
		j.inner = false
	}
	if e := j.Outer.Close(ctx); err == nil {
		err = e
	}
	return err
}
