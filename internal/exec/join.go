package exec

import (
	"fmt"

	"energydb/internal/table"
)

// joinSchema concatenates build and probe schemas, prefixing duplicate
// column names with the side's relation name.
func joinSchema(name string, l, r *table.Schema) *table.Schema {
	seen := map[string]bool{}
	var cols []table.Column
	add := func(rel string, c table.Column) {
		n := c.Name
		if seen[n] {
			n = rel + "." + n
		}
		seen[n] = true
		cols = append(cols, table.Column{Name: n, Type: c.Type, Width: c.Width})
	}
	for _, c := range l.Cols {
		add(l.Name, c)
	}
	for _, c := range r.Cols {
		add(r.Name, c)
	}
	return table.NewSchema(name, cols...)
}

// HashJoin is an equi-join that materialises the build side into an
// in-memory hash table and streams the probe side. It is fast but holds
// the whole build relation in memory — the power-hungry choice §4.1 calls
// out: hash join "relies on using a large chunk of memory ... From a power
// perspective, these are expensive operations and may tip the balance in
// favor of nested-loop join".
//
// The hash table is typed on the key column's physical class (raw int64,
// float64 or string keys — int-class types share the int64 table, which
// is what normalised Int64/Date/Decimal keys across relations), and the
// probe inner loop only accumulates (buildRow, probeRow) index pairs;
// output rows are materialised with one batch-level gather per side.
type HashJoin struct {
	Build    Operator
	Probe    Operator
	BuildKey int // column index in Build's schema
	ProbeKey int // column index in Probe's schema

	schema     *table.Schema
	htI        map[int64][]int32
	htF        map[float64][]int32
	htS        map[string][]int32
	buildB     *table.Batch // materialised build side
	buildBytes int64
	bsel, psel []int32      // reusable gather index scratch
	out        *table.Batch // reusable output batch
}

// NewHashJoin builds a hash join of two operators on single key columns.
func NewHashJoin(build, probe Operator, buildKey, probeKey int) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe, BuildKey: buildKey, ProbeKey: probeKey,
		schema: joinSchema("hashjoin", build.Schema(), probe.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *table.Schema { return j.schema }

// MemBytes reports the hash-table working set after Open; the optimizer's
// energy model charges DRAM power for it.
func (j *HashJoin) MemBytes() int64 { return j.buildBytes }

// Open implements Operator: it drains the build side.
func (j *HashJoin) Open(ctx *Ctx) error {
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	j.buildB = table.NewBatch(j.Build.Schema(), 0)
	j.buildBytes = 0
	for {
		b, err := j.Build.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		ctx.ChargeRows(b.Rows(), ctx.Costs.HashBuildCyclesPerRow)
		j.buildBytes += b.ByteSize()
		ctx.TouchDRAM(b.ByteSize())
		j.buildB.AppendBatch(b)
	}
	if err := j.Build.Close(ctx); err != nil {
		return err
	}
	if ctx.MemBudgetBytes > 0 && j.buildBytes > ctx.MemBudgetBytes {
		return fmt.Errorf("exec: hash join build side (%d bytes) exceeds memory budget (%d)",
			j.buildBytes, ctx.MemBudgetBytes)
	}
	// Hash the raw key column, unboxed.
	kv := j.buildB.Vecs[j.BuildKey]
	j.htI, j.htF, j.htS = nil, nil, nil
	switch kv.Type.Physical() {
	case table.PhysInt:
		j.htI = make(map[int64][]int32, kv.Len())
		for i, x := range kv.I {
			j.htI[x] = append(j.htI[x], int32(i))
		}
	case table.PhysFloat:
		j.htF = make(map[float64][]int32, kv.Len())
		for i, x := range kv.F {
			j.htF[x] = append(j.htF[x], int32(i))
		}
	default:
		j.htS = make(map[string][]int32, kv.Len())
		for i, x := range kv.S {
			j.htS[x] = append(j.htS[x], int32(i))
		}
	}
	return j.Probe.Open(ctx)
}

// probeHT probes the typed hash table with the probe batch's key column,
// honouring a selection vector when one rides on the batch (sel == nil
// probes every physical row). Matching (build, probe) physical index
// pairs are appended to bsel/psel.
func probeHT[T comparable](ht map[T][]int32, key []T, sel, bsel, psel []int32) ([]int32, []int32) {
	if sel == nil {
		for r, x := range key {
			for _, bi := range ht[x] {
				bsel = append(bsel, bi)
				psel = append(psel, int32(r))
			}
		}
		return bsel, psel
	}
	for _, pi := range sel {
		for _, bi := range ht[key[pi]] {
			bsel = append(bsel, bi)
			psel = append(psel, pi)
		}
	}
	return bsel, psel
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		pb, err := j.Probe.Next(ctx)
		if err != nil {
			return nil, err
		}
		if pb == nil {
			return nil, nil
		}
		ctx.ChargeRows(pb.Rows(), ctx.Costs.HashProbeCyclesPerRow)
		bsel, psel := j.bsel[:0], j.psel[:0]
		kv := pb.Vecs[j.ProbeKey]
		switch kv.Type.Physical() {
		case table.PhysInt:
			bsel, psel = probeHT(j.htI, kv.I, pb.Sel, bsel, psel)
		case table.PhysFloat:
			bsel, psel = probeHT(j.htF, kv.F, pb.Sel, bsel, psel)
		default:
			bsel, psel = probeHT(j.htS, kv.S, pb.Sel, bsel, psel)
		}
		j.bsel, j.psel = bsel, psel
		if len(psel) == 0 {
			// Keep pulling probe batches until something matches or EOF.
			continue
		}
		ctx.ChargeRows(len(psel), ctx.Costs.JoinOutputCyclesPerRow)
		if j.out == nil {
			j.out = table.NewBatch(j.schema, len(psel))
		}
		j.out.Reset()
		nb := len(j.buildB.Vecs)
		for c, v := range j.buildB.Vecs {
			j.out.Vecs[c].AppendGather(v, bsel)
		}
		for c, v := range pb.Vecs {
			j.out.Vecs[nb+c].AppendGather(v, psel)
		}
		j.out.SetRows(len(psel))
		return j.out, nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	j.htI, j.htF, j.htS = nil, nil, nil
	j.buildB = nil
	j.out = nil
	return j.Probe.Close(ctx)
}

// NestedLoopJoin is the block nested-loop equi-join: for every outer
// batch it re-executes the inner operator from scratch. It needs almost
// no memory but re-reads the inner relation once per outer block —
// trading DRAM watts for repeated I/O, the other side of the §4.1
// tradeoff.
type NestedLoopJoin struct {
	Outer    Operator
	Inner    Operator
	OuterKey int
	InnerKey int

	schema     *table.Schema
	outerB     *table.Batch
	inner      bool // inner currently open
	osel, isel []int32
	out        *table.Batch // reusable output batch
	iscratch   *table.Batch // reusable compaction buffer for selected inner batches
}

// NewNestedLoopJoin builds a block nested-loop equi-join.
func NewNestedLoopJoin(outer, inner Operator, outerKey, innerKey int) *NestedLoopJoin {
	return &NestedLoopJoin{
		Outer: outer, Inner: inner, OuterKey: outerKey, InnerKey: innerKey,
		schema: joinSchema("nljoin", outer.Schema(), inner.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	j.outerB = nil
	j.inner = false
	return j.Outer.Open(ctx)
}

// matchPairs compares every (outer, inner) key pair over the raw typed
// slices and appends matching index pairs to osel/isel.
func matchPairs[T int64 | float64 | string](ok, ik []T, osel, isel []int32) ([]int32, []int32) {
	for or, ov := range ok {
		for ir, iv := range ik {
			if ov == iv {
				osel = append(osel, int32(or))
				isel = append(isel, int32(ir))
			}
		}
	}
	return osel, isel
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		if j.outerB == nil {
			ob, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, err
			}
			if ob == nil {
				return nil, nil
			}
			if ob.Rows() == 0 {
				continue
			}
			// Copy: the outer child may reuse its batch while we hold this
			// block across many inner batches.
			j.outerB = ob.Clone()
			if err := j.Inner.Open(ctx); err != nil { // rescan inner
				return nil, err
			}
			j.inner = true
		}
		ib, err := j.Inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if ib == nil {
			if err := j.Inner.Close(ctx); err != nil {
				return nil, err
			}
			j.inner = false
			j.outerB = nil
			continue
		}
		if ib.Sel != nil {
			// The pairwise kernels run over whole vectors: compact a
			// selected inner batch once, here at the consumption boundary.
			if j.iscratch == nil {
				j.iscratch = table.NewBatch(j.Inner.Schema(), ib.Rows())
			}
			j.iscratch.Reset()
			j.iscratch.AppendBatch(ib)
			ib = j.iscratch
		}
		// Compare every (outer, inner) pair in the two blocks.
		ctx.ChargeRows(j.outerB.Rows()*ib.Rows(), ctx.Costs.FilterCyclesPerRow)
		osel, isel := j.osel[:0], j.isel[:0]
		ov, iv := j.outerB.Vecs[j.OuterKey], ib.Vecs[j.InnerKey]
		switch ov.Type.Physical() {
		case table.PhysInt:
			osel, isel = matchPairs(ov.I, iv.I, osel, isel)
		case table.PhysFloat:
			osel, isel = matchPairs(ov.F, iv.F, osel, isel)
		default:
			osel, isel = matchPairs(ov.S, iv.S, osel, isel)
		}
		j.osel, j.isel = osel, isel
		if len(osel) == 0 {
			continue
		}
		ctx.ChargeRows(len(osel), ctx.Costs.JoinOutputCyclesPerRow)
		if j.out == nil {
			j.out = table.NewBatch(j.schema, len(osel))
		}
		j.out.Reset()
		no := len(j.outerB.Vecs)
		for c, v := range j.outerB.Vecs {
			j.out.Vecs[c].AppendGather(v, osel)
		}
		for c, v := range ib.Vecs {
			j.out.Vecs[no+c].AppendGather(v, isel)
		}
		j.out.SetRows(len(osel))
		return j.out, nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close(ctx *Ctx) error {
	var err error
	if j.inner {
		err = j.Inner.Close(ctx)
		j.inner = false
	}
	j.outerB = nil
	j.out = nil
	j.iscratch = nil
	if e := j.Outer.Close(ctx); err == nil {
		err = e
	}
	return err
}
