package exec

import (
	"energydb/internal/table"
)

// joinSchema concatenates build and probe schemas, prefixing duplicate
// column names with the side's relation name.
func joinSchema(name string, l, r *table.Schema) *table.Schema {
	seen := map[string]bool{}
	var cols []table.Column
	add := func(rel string, c table.Column) {
		n := c.Name
		if seen[n] {
			n = rel + "." + n
		}
		seen[n] = true
		cols = append(cols, table.Column{Name: n, Type: c.Type, Width: c.Width})
	}
	for _, c := range l.Cols {
		add(l.Name, c)
	}
	for _, c := range r.Cols {
		add(r.Name, c)
	}
	return table.NewSchema(name, cols...)
}

// HashJoin is an equi-join that materialises the build side into in-memory
// hash tables and streams the probe side. It is fast but holds the whole
// build relation in memory — the power-hungry choice §4.1 calls out: hash
// join "relies on using a large chunk of memory ... From a power
// perspective, these are expensive operations and may tip the balance in
// favor of nested-loop join".
//
// The serial plan is the one-fragment, one-partition special case of the
// partitioned parallel build: with Build set (BuildFrags nil) the build
// side drains inline into a single partition; with BuildFrags set, each
// fragment pipeline runs in its own simulated process under the
// RunFragments barrier exchange, hash-partitioning its rows by key into
// per-worker per-partition row stores, and the per-partition typed hash
// tables are then built concurrently (one process per partition). The
// probe side routes through the same partitioning: each probe key hashes
// to the partition whose table can hold it.
//
// Hash tables are typed on the key column's physical class (raw int64,
// float64 or string keys — int-class types share the int64 table, which
// is what normalises Int64/Date/Decimal keys across relations), and the
// probe inner loop only accumulates (buildRow, probeRow) index pairs;
// output rows are materialised with one batch-level gather per side.
type HashJoin struct {
	Build      Operator   // serial build input; ignored when BuildFrags is set
	BuildFrags []Operator // parallel build fragment pipelines sharing BuildQueue
	BuildQueue *Morsels   // shared dispenser behind BuildFrags; reset on Open
	Probe      Operator
	BuildKey   int // column index in the build schema
	ProbeKey   int // column index in Probe's schema
	Partitions int // build hash partitions, rounded up to a power of two; <= 1 builds one table

	schema *table.Schema
	bs     *buildState // immutable build result (see probe.go)
	pc     probeCursor // streaming probe state shared with Prober
}

// NewHashJoin builds a serial hash join of two operators on single key
// columns.
func NewHashJoin(build, probe Operator, buildKey, probeKey int) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe, BuildKey: buildKey, ProbeKey: probeKey,
		schema: joinSchema("hashjoin", build.Schema(), probe.Schema()),
	}
}

// NewPartitionedHashJoin builds a hash join whose build side runs as
// len(frags) parallel fragment pipelines sharing the queue dispenser,
// partitioned partitions-ways. The fragments must produce identical
// schemas and be exclusively owned.
func NewPartitionedHashJoin(frags []Operator, queue *Morsels, probe Operator, buildKey, probeKey, partitions int) *HashJoin {
	if len(frags) == 0 {
		panic("exec: partitioned HashJoin needs at least one build fragment")
	}
	return &HashJoin{
		BuildFrags: frags, BuildQueue: queue, Probe: probe,
		BuildKey: buildKey, ProbeKey: probeKey, Partitions: partitions,
		schema: joinSchema("hashjoin", frags[0].Schema(), probe.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *table.Schema { return j.schema }

// MemBytes reports the hash-table working set after Open; the optimizer's
// energy model charges DRAM power for it.
func (j *HashJoin) MemBytes() int64 {
	if j.bs == nil {
		return 0
	}
	return j.bs.bytes
}

// buildSchema is the build side's input schema.
func (j *HashJoin) buildSchema() *table.Schema {
	if j.BuildFrags != nil {
		return j.BuildFrags[0].Schema()
	}
	return j.Build.Schema()
}

// buildPartitioner routes build-side rows into per-partition materialised
// row stores by the hash of their key — the same hash the probe side uses
// to route lookups. One partition appends whole batches (the serial path's
// behaviour, bit for bit).
type buildPartitioner struct {
	key    int
	nparts uint32
	parts  []*table.Batch
	bytes  int64
	sel    [][]int32 // reusable per-partition row-index scratch
}

func newBuildPartitioner(schema *table.Schema, key int, nparts uint32) *buildPartitioner {
	bp := &buildPartitioner{key: key, nparts: nparts,
		parts: make([]*table.Batch, nparts), sel: make([][]int32, nparts)}
	for p := range bp.parts {
		bp.parts[p] = table.NewBatch(schema, 0)
	}
	return bp
}

// route appends sel[p] for every logical row of b, honouring a deferred
// selection on the batch.
func route[T comparable](keys []T, hash func(T) uint32, mask uint32, bsel []int32, n int, sel [][]int32) {
	if bsel == nil {
		for r := 0; r < n; r++ {
			p := hash(keys[r]) & mask
			sel[p] = append(sel[p], int32(r))
		}
		return
	}
	for _, r := range bsel {
		p := hash(keys[r]) & mask
		sel[p] = append(sel[p], r)
	}
}

// absorb folds one build batch into the partitioned row stores, charging
// the build work to the calling (worker's) process.
func (bp *buildPartitioner) absorb(ctx *Ctx, b *table.Batch) {
	ctx.ChargeRows(b.Rows(), ctx.Costs.HashBuildCyclesPerRow)
	bp.bytes += b.ByteSize()
	ctx.TouchDRAM(b.ByteSize())
	if bp.nparts == 1 {
		bp.parts[0].AppendBatch(b)
		return
	}
	for p := range bp.sel {
		bp.sel[p] = bp.sel[p][:0]
	}
	kv := b.Vecs[bp.key]
	mask := bp.nparts - 1
	switch kv.Type.Physical() {
	case table.PhysInt:
		route(kv.I, hashInt64, mask, b.Sel, b.Rows(), bp.sel)
	case table.PhysFloat:
		route(kv.F, hashFloat64, mask, b.Sel, b.Rows(), bp.sel)
	default:
		route(kv.S, hashString, mask, b.Sel, b.Rows(), bp.sel)
	}
	for p, sel := range bp.sel {
		if len(sel) > 0 {
			bp.parts[p].AppendGather(b, sel)
		}
	}
}

// Open implements Operator: it runs the build — inline for the serial
// path, under the barrier exchange for the fragmented one (see
// runJoinBuild in probe.go) — then opens the probe. A failed build frees
// its partial state before surfacing, so an aborted query does not pin
// the materialised build side for the Rows' lifetime.
func (j *HashJoin) Open(ctx *Ctx) error {
	bs, err := runJoinBuild(ctx, j.buildSchema(), j.Build, j.BuildFrags, j.BuildQueue, j.BuildKey, j.Partitions)
	if err != nil {
		j.bs = nil
		return err
	}
	j.bs = bs
	j.pc = probeCursor{in: j.Probe, key: j.ProbeKey, schema: j.schema,
		bsel: j.pc.bsel, psel: j.pc.psel, out: j.pc.out}
	return j.Probe.Open(ctx)
}

// probeHT probes one typed hash table with the probe batch's key column,
// honouring a selection vector when one rides on the batch (sel == nil
// probes every physical row). Matching (build, probe) physical index
// pairs are appended to bsel/psel.
func probeHT[T comparable](ht map[T][]int32, key []T, sel, bsel, psel []int32) ([]int32, []int32) {
	if sel == nil {
		for r, x := range key {
			for _, bi := range ht[x] {
				bsel = append(bsel, bi)
				psel = append(psel, int32(r))
			}
		}
		return bsel, psel
	}
	for _, pi := range sel {
		for _, bi := range ht[key[pi]] {
			bsel = append(bsel, bi)
			psel = append(psel, pi)
		}
	}
	return bsel, psel
}

// probePartHT routes every probe key to its partition — the same hash the
// build side filed it under — and probes that partition's table.
func probePartHT[T comparable](hts []map[T][]int32, hash func(T) uint32, mask uint32, key []T, sel, bsel, psel []int32) ([]int32, []int32) {
	if sel == nil {
		for r, x := range key {
			for _, bi := range hts[hash(x)&mask][x] {
				bsel = append(bsel, bi)
				psel = append(psel, int32(r))
			}
		}
		return bsel, psel
	}
	for _, pi := range sel {
		x := key[pi]
		for _, bi := range hts[hash(x)&mask][x] {
			bsel = append(bsel, bi)
			psel = append(psel, pi)
		}
	}
	return bsel, psel
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (*table.Batch, error) {
	return j.pc.next(ctx, j.bs)
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Ctx) error {
	j.bs = nil
	j.pc.out = nil
	return j.Probe.Close(ctx)
}

// NestedLoopJoin is the block nested-loop equi-join: for every outer
// batch it re-executes the inner operator from scratch. It needs almost
// no memory but re-reads the inner relation once per outer block —
// trading DRAM watts for repeated I/O, the other side of the §4.1
// tradeoff.
type NestedLoopJoin struct {
	Outer    Operator
	Inner    Operator
	OuterKey int
	InnerKey int

	schema     *table.Schema
	outerB     *table.Batch
	inner      bool // inner currently open
	osel, isel []int32
	out        *table.Batch // reusable output batch
	iscratch   *table.Batch // reusable compaction buffer for selected inner batches
}

// NewNestedLoopJoin builds a block nested-loop equi-join.
func NewNestedLoopJoin(outer, inner Operator, outerKey, innerKey int) *NestedLoopJoin {
	return &NestedLoopJoin{
		Outer: outer, Inner: inner, OuterKey: outerKey, InnerKey: innerKey,
		schema: joinSchema("nljoin", outer.Schema(), inner.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	j.outerB = nil
	j.inner = false
	return j.Outer.Open(ctx)
}

// matchPairs compares every (outer, inner) key pair over the raw typed
// slices and appends matching index pairs to osel/isel.
func matchPairs[T int64 | float64 | string](ok, ik []T, osel, isel []int32) ([]int32, []int32) {
	for or, ov := range ok {
		for ir, iv := range ik {
			if ov == iv {
				osel = append(osel, int32(or))
				isel = append(isel, int32(ir))
			}
		}
	}
	return osel, isel
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Ctx) (*table.Batch, error) {
	for {
		if j.outerB == nil {
			ob, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, err
			}
			if ob == nil {
				return nil, nil
			}
			if ob.Rows() == 0 {
				continue
			}
			// Copy: the outer child may reuse its batch while we hold this
			// block across many inner batches.
			j.outerB = ob.Clone()
			if err := j.Inner.Open(ctx); err != nil { // rescan inner
				return nil, err
			}
			j.inner = true
		}
		ib, err := j.Inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if ib == nil {
			if err := j.Inner.Close(ctx); err != nil {
				return nil, err
			}
			j.inner = false
			j.outerB = nil
			continue
		}
		if ib.Sel != nil {
			// The pairwise kernels run over whole vectors: compact a
			// selected inner batch once, here at the consumption boundary.
			if j.iscratch == nil {
				j.iscratch = table.NewBatch(j.Inner.Schema(), ib.Rows())
			}
			j.iscratch.Reset()
			j.iscratch.AppendBatch(ib)
			ib = j.iscratch
		}
		// Compare every (outer, inner) pair in the two blocks.
		ctx.ChargeRows(j.outerB.Rows()*ib.Rows(), ctx.Costs.FilterCyclesPerRow)
		osel, isel := j.osel[:0], j.isel[:0]
		ov, iv := j.outerB.Vecs[j.OuterKey], ib.Vecs[j.InnerKey]
		switch ov.Type.Physical() {
		case table.PhysInt:
			osel, isel = matchPairs(ov.I, iv.I, osel, isel)
		case table.PhysFloat:
			osel, isel = matchPairs(ov.F, iv.F, osel, isel)
		default:
			osel, isel = matchPairs(ov.S, iv.S, osel, isel)
		}
		j.osel, j.isel = osel, isel
		if len(osel) == 0 {
			continue
		}
		ctx.ChargeRows(len(osel), ctx.Costs.JoinOutputCyclesPerRow)
		if j.out == nil {
			j.out = table.NewBatch(j.schema, len(osel))
		}
		j.out.Reset()
		no := len(j.outerB.Vecs)
		for c, v := range j.outerB.Vecs {
			j.out.Vecs[c].AppendGather(v, osel)
		}
		for c, v := range ib.Vecs {
			j.out.Vecs[no+c].AppendGather(v, isel)
		}
		j.out.SetRows(len(osel))
		return j.out, nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close(ctx *Ctx) error {
	var err error
	if j.inner {
		err = j.Inner.Close(ctx)
		j.inner = false
	}
	j.outerB = nil
	j.out = nil
	j.iscratch = nil
	if e := j.Outer.Close(ctx); err == nil {
		err = e
	}
	return err
}
