package exec

import (
	"energydb/internal/table"
)

// This file is the scalar expression fusion pass. Arith trees evaluate
// one node at a time through Scalar.EvalInto, each node allocating a
// fresh output vector per batch and visiting every physical row even
// when a selection has dropped most of them. FuseScalar compiles such a
// tree into a single typed kernel — a flat postorder register program —
// that runs one pass per instruction over reused scratch buffers
// (Filter-style: acquired once, recycled across batches) and touches
// only selected rows. Results are bit-identical to node-at-a-time
// evaluation: the same promotion rule (Div and int/float mixes go
// float64, integer ops wrap), the same div-by-zero-yields-zero, and the
// same per-element operation order.

// fuseArgKind says where an instruction operand comes from.
type fuseArgKind uint8

const (
	fuseCol   fuseArgKind = iota // an input batch column
	fuseConst                    // an inline constant
	fuseReg                      // an earlier instruction's register
)

// fuseArg is one operand of a fused instruction.
type fuseArg struct {
	kind  fuseArgKind
	idx   int     // column or register index
	float bool    // operand's own physical class
	ci    int64   // constant payload (int class)
	cf    float64 // constant payload (float class)
}

// fuseInstr is one compiled Arith node: dst = l op r.
type fuseInstr struct {
	op    ArithOp
	float bool // result class: float64 arithmetic (else wrapping int64)
	dst   int  // register index in the result class's bank
	l, r  fuseArg
}

// FusedExpr is a Scalar whose whole Arith tree evaluates in one kernel.
type FusedExpr struct {
	orig  Scalar // the tree it was compiled from (String, Type)
	prog  []fuseInstr
	typ   table.Type
	nI    int // int64 register bank size
	nF    int // float64 register bank size
	nodes int // Arith nodes fused (charging matches node-at-a-time)

	regsI [][]int64
	regsF [][]float64
	out   *table.Vector
	iota  []int32
}

// FuseScalar compiles e into a fused kernel when it is an arithmetic
// tree over column references and numeric constants. ok=false (string
// operands, non-Arith roots, unknown Scalar impls) means keep e as-is.
func FuseScalar(e Scalar, s *table.Schema) (*FusedExpr, bool) {
	root, isArith := e.(*Arith)
	if !isArith {
		return nil, false
	}
	c := fuseCompiler{s: s}
	arg, ok := c.compile(root)
	if !ok || arg.kind != fuseReg {
		return nil, false
	}
	f := &FusedExpr{
		orig: e, prog: c.prog, typ: root.Type(s),
		nI: c.maxI, nF: c.maxF, nodes: len(c.prog),
	}
	f.regsI = make([][]int64, f.nI)
	f.regsF = make([][]float64, f.nF)
	return f, true
}

// fuseCompiler walks the tree postorder, allocating registers with a
// stack discipline per class (bank size = tree depth, not node count).
type fuseCompiler struct {
	s          *table.Schema
	prog       []fuseInstr
	liveI      int
	liveF      int
	maxI, maxF int
}

func (c *fuseCompiler) compile(e Scalar) (fuseArg, bool) {
	switch v := e.(type) {
	case *ColRef:
		switch c.s.Cols[v.Col].Type.Physical() {
		case table.PhysInt:
			return fuseArg{kind: fuseCol, idx: v.Col}, true
		case table.PhysFloat:
			return fuseArg{kind: fuseCol, idx: v.Col, float: true}, true
		}
		return fuseArg{}, false
	case *Const:
		switch v.Val.Type.Physical() {
		case table.PhysInt:
			return fuseArg{kind: fuseConst, ci: v.Val.I}, true
		case table.PhysFloat:
			return fuseArg{kind: fuseConst, cf: v.Val.F, float: true}, true
		}
		return fuseArg{}, false
	case *Arith:
		l, ok := c.compile(v.L)
		if !ok {
			return fuseArg{}, false
		}
		r, ok := c.compile(v.R)
		if !ok {
			return fuseArg{}, false
		}
		// Child registers die here; the stack discipline frees them
		// before the destination is allocated, so a chain reuses one
		// register per class instead of one per node.
		c.free(l)
		c.free(r)
		float := v.Op == Div || l.float || r.float
		dst := c.alloc(float)
		c.prog = append(c.prog, fuseInstr{op: v.Op, float: float, dst: dst, l: l, r: r})
		return fuseArg{kind: fuseReg, idx: dst, float: float}, true
	}
	return fuseArg{}, false
}

func (c *fuseCompiler) free(a fuseArg) {
	if a.kind != fuseReg {
		return
	}
	if a.float {
		c.liveF--
	} else {
		c.liveI--
	}
}

func (c *fuseCompiler) alloc(float bool) int {
	if float {
		c.liveF++
		if c.liveF > c.maxF {
			c.maxF = c.liveF
		}
		return c.liveF - 1
	}
	c.liveI++
	if c.liveI > c.maxI {
		c.maxI = c.liveI
	}
	return c.liveI - 1
}

// Type implements Scalar.
func (e *FusedExpr) Type(*table.Schema) table.Type { return e.typ }

func (e *FusedExpr) String() string { return e.orig.String() }

// fOpd is a float-class operand resolved against one batch: exactly one
// of f/i is non-nil (column or register data, integers converted at
// read, matching numAsF), else the constant c applies.
type fOpd struct {
	f []float64
	i []int64
	c float64
}

func (o *fOpd) at(idx int32) float64 {
	if o.f != nil {
		return o.f[idx]
	}
	if o.i != nil {
		return float64(o.i[idx])
	}
	return o.c
}

// iOpd is an int-class operand: data or constant.
type iOpd struct {
	i []int64
	c int64
}

func (o *iOpd) at(idx int32) int64 {
	if o.i != nil {
		return o.i[idx]
	}
	return o.c
}

func (e *FusedExpr) resolveF(a fuseArg, b *table.Batch) fOpd {
	switch a.kind {
	case fuseCol:
		v := b.Vecs[a.idx]
		if a.float {
			return fOpd{f: v.F}
		}
		return fOpd{i: v.I}
	case fuseReg:
		if a.float {
			return fOpd{f: e.regsF[a.idx]}
		}
		return fOpd{i: e.regsI[a.idx]}
	default:
		if a.float {
			return fOpd{c: a.cf}
		}
		return fOpd{c: float64(a.ci)}
	}
}

func (e *FusedExpr) resolveI(a fuseArg, b *table.Batch) iOpd {
	switch a.kind {
	case fuseCol:
		return iOpd{i: b.Vecs[a.idx].I}
	case fuseReg:
		return iOpd{i: e.regsI[a.idx]}
	default:
		return iOpd{c: a.ci}
	}
}

// EvalInto implements Scalar. The kernel iterates the batch's selection
// (or the identity when dense), writing results at physical positions so
// an incoming Batch.Sel composes onto the output unchanged; deselected
// positions hold stale scratch values that no selection-honouring
// consumer reads. The charge equals node-at-a-time evaluation: one
// ProjectCyclesPerRow per fused node per selected row.
func (e *FusedExpr) EvalInto(ctx *Ctx, b *table.Batch) *table.Vector {
	ctx.ChargeRows(b.Rows(), float64(e.nodes)*ctx.Costs.ProjectCyclesPerRow)
	n := b.PhysRows()
	sel := b.Sel
	if sel == nil {
		sel = iotaSel(&e.iota, n)
	}
	for i := range e.regsI {
		if cap(e.regsI[i]) < n {
			e.regsI[i] = make([]int64, n)
		}
		e.regsI[i] = e.regsI[i][:n]
	}
	for i := range e.regsF {
		if cap(e.regsF[i]) < n {
			e.regsF[i] = make([]float64, n)
		}
		e.regsF[i] = e.regsF[i][:n]
	}
	for k := range e.prog {
		ins := &e.prog[k]
		if ins.float {
			l, r := e.resolveF(ins.l, b), e.resolveF(ins.r, b)
			fusedLoopF(ins.op, e.regsF[ins.dst], &l, &r, sel)
		} else {
			l, r := e.resolveI(ins.l, b), e.resolveI(ins.r, b)
			fusedLoopI(ins.op, e.regsI[ins.dst], &l, &r, sel)
		}
	}
	if e.out == nil {
		e.out = &table.Vector{Type: e.typ}
	}
	last := &e.prog[len(e.prog)-1]
	if last.float {
		e.out.F = e.regsF[last.dst]
	} else {
		e.out.I = e.regsI[last.dst]
	}
	return e.out
}

// fusedLoopF runs one float64 instruction over the selected rows, the
// operator hoisted out of the loop like the filter kernels.
func fusedLoopF(op ArithOp, dst []float64, l, r *fOpd, sel []int32) {
	switch op {
	case Add:
		for _, i := range sel {
			dst[i] = l.at(i) + r.at(i)
		}
	case Sub:
		for _, i := range sel {
			dst[i] = l.at(i) - r.at(i)
		}
	case Mul:
		for _, i := range sel {
			dst[i] = l.at(i) * r.at(i)
		}
	default:
		for _, i := range sel {
			if d := r.at(i); d == 0 {
				dst[i] = 0
			} else {
				dst[i] = l.at(i) / d
			}
		}
	}
}

// fusedLoopI runs one wrapping int64 instruction over the selected rows.
// Div never lands here: the compiler promotes it to float64, matching
// Arith.Type.
func fusedLoopI(op ArithOp, dst []int64, l, r *iOpd, sel []int32) {
	switch op {
	case Add:
		for _, i := range sel {
			dst[i] = l.at(i) + r.at(i)
		}
	case Sub:
		for _, i := range sel {
			dst[i] = l.at(i) - r.at(i)
		}
	case Mul:
		for _, i := range sel {
			dst[i] = l.at(i) * r.at(i)
		}
	default:
		for _, i := range sel {
			if d := r.at(i); d == 0 {
				dst[i] = 0
			} else {
				dst[i] = l.at(i) / d
			}
		}
	}
}
