package exec

import (
	"fmt"

	"energydb/internal/fault"
	"energydb/internal/sim"
	"energydb/internal/table"
)

// This file is the probe side of parallel hash joins. The build phase
// produces an immutable buildState; any number of probe pipelines — the
// serial HashJoin, or DOP Prober fragments sharing a morsel dispenser —
// stream against it concurrently. SharedBuild is the run-once latch that
// lets the fragments share one build.

// buildState is the materialised, immutable result of a hash-join build:
// the concatenated build-side batch plus the per-partition typed hash
// tables over it. After runJoinBuild returns it is read-only, so probe
// pipelines share it across simulated processes without copying.
type buildState struct {
	nparts uint32
	htI    []map[int64][]int32 // per partition; values are global buildB rows
	htF    []map[float64][]int32
	htS    []map[string][]int32
	buildB *table.Batch
	bytes  int64
}

// runJoinBuild drains the build side — inline on the caller's process for
// the serial path (frags nil), under the barrier exchange for the
// fragmented one — then builds the per-partition typed hash tables
// (concurrently when the build was fragmented).
func runJoinBuild(ctx *Ctx, bschema *table.Schema, build Operator, frags []Operator, queue *Morsels, buildKey, partitions int) (*buildState, error) {
	nparts := 1
	if partitions > 1 {
		nparts = ceilPow2(partitions)
	}
	bs := &buildState{nparts: uint32(nparts)}

	// Phase 1: drain build pipelines into per-worker partitioned row stores.
	var locals []*buildPartitioner
	if frags == nil {
		bp := newBuildPartitioner(bschema, buildKey, bs.nparts)
		if err := build.Open(ctx); err != nil {
			return nil, err
		}
		for {
			b, err := build.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			bp.absorb(ctx, b)
		}
		if err := build.Close(ctx); err != nil {
			return nil, err
		}
		locals = []*buildPartitioner{bp}
	} else {
		if queue != nil {
			queue.Reset()
		}
		locals = make([]*buildPartitioner, len(frags))
		for i := range locals {
			locals[i] = newBuildPartitioner(bschema, buildKey, bs.nparts)
		}
		if err := RunFragments(ctx, "hashjoin:build", frags, func(w int, wctx *Ctx, b *table.Batch) error {
			locals[w].absorb(wctx, b)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Phase 2: concatenate the workers' shares of each partition (worker
	// order within a partition, partitions in order) into one build batch,
	// recording every partition's global row span. The serial path (one
	// worker, one partition) adopts the materialised rows as-is — absorb
	// already copied them once.
	spans := make([][2]int, nparts)
	if len(locals) == 1 && nparts == 1 {
		bs.buildB = locals[0].parts[0]
		locals[0].parts[0] = nil
		spans[0] = [2]int{0, bs.buildB.Rows()}
	} else {
		bs.buildB = table.NewBatch(bschema, 0)
		for p := 0; p < nparts; p++ {
			lo := bs.buildB.Rows()
			for _, l := range locals {
				bs.buildB.AppendBatch(l.parts[p])
				l.parts[p] = nil
			}
			spans[p] = [2]int{lo, bs.buildB.Rows()}
		}
	}
	for _, l := range locals {
		bs.bytes += l.bytes
	}
	if ctx.MemBudgetBytes > 0 && bs.bytes > ctx.MemBudgetBytes {
		return nil, fmt.Errorf("exec: hash join build side (%d bytes) exceeds memory budget (%d): %w",
			bs.bytes, ctx.MemBudgetBytes, fault.ErrMemBudget)
	}

	// Phase 3: build each partition's typed hash table over its row span —
	// one process per partition when the build was fragmented, inline for
	// the serial plan. Values are global buildB row indexes, so the probe
	// and output paths are partition-agnostic.
	kv := bs.buildB.Vecs[buildKey]
	phys := kv.Type.Physical()
	switch phys {
	case table.PhysInt:
		bs.htI = make([]map[int64][]int32, nparts)
	case table.PhysFloat:
		bs.htF = make([]map[float64][]int32, nparts)
	default:
		bs.htS = make([]map[string][]int32, nparts)
	}
	buildPart := func(p int) {
		lo, hi := spans[p][0], spans[p][1]
		switch phys {
		case table.PhysInt:
			ht := make(map[int64][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				ht[kv.I[i]] = append(ht[kv.I[i]], int32(i))
			}
			bs.htI[p] = ht
		case table.PhysFloat:
			ht := make(map[float64][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				ht[kv.F[i]] = append(ht[kv.F[i]], int32(i))
			}
			bs.htF[p] = ht
		default:
			ht := make(map[string][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				ht[kv.S[i]] = append(ht[kv.S[i]], int32(i))
			}
			bs.htS[p] = ht
		}
	}
	if frags != nil && nparts > 1 {
		if err := ParDo(ctx, "hashjoin:tables", nparts, func(p int, wctx *Ctx) error {
			buildPart(p)
			return nil
		}); err != nil {
			return nil, err
		}
	} else {
		for p := 0; p < nparts; p++ {
			buildPart(p)
		}
	}
	return bs, nil
}

// probeInto probes one probe batch's key column against the tables,
// honouring a selection riding on the batch, and appends matching
// (build, probe) physical index pairs to bsel/psel.
func (bs *buildState) probeInto(pb *table.Batch, probeKey int, bsel, psel []int32) ([]int32, []int32) {
	kv := pb.Vecs[probeKey]
	mask := bs.nparts - 1
	switch kv.Type.Physical() {
	case table.PhysInt:
		if bs.nparts == 1 {
			return probeHT(bs.htI[0], kv.I, pb.Sel, bsel, psel)
		}
		return probePartHT(bs.htI, hashInt64, mask, kv.I, pb.Sel, bsel, psel)
	case table.PhysFloat:
		if bs.nparts == 1 {
			return probeHT(bs.htF[0], kv.F, pb.Sel, bsel, psel)
		}
		return probePartHT(bs.htF, hashFloat64, mask, kv.F, pb.Sel, bsel, psel)
	default:
		if bs.nparts == 1 {
			return probeHT(bs.htS[0], kv.S, pb.Sel, bsel, psel)
		}
		return probePartHT(bs.htS, hashString, mask, kv.S, pb.Sel, bsel, psel)
	}
}

// probeCursor is the streaming probe state shared by the serial HashJoin
// and the parallel Prober: a probe input, reusable match scratch and a
// reusable output batch.
type probeCursor struct {
	in         Operator
	key        int
	schema     *table.Schema
	bsel, psel []int32
	out        *table.Batch
}

// next pulls probe batches until one matches (or EOF), materialising the
// matched pairs with one batch-level gather per side. The returned batch
// is valid until the following next call, per the operator contract.
func (pc *probeCursor) next(ctx *Ctx, bs *buildState) (*table.Batch, error) {
	for {
		pb, err := pc.in.Next(ctx)
		if err != nil {
			return nil, err
		}
		if pb == nil {
			return nil, nil
		}
		ctx.ChargeRows(pb.Rows(), ctx.Costs.HashProbeCyclesPerRow)
		bsel, psel := bs.probeInto(pb, pc.key, pc.bsel[:0], pc.psel[:0])
		pc.bsel, pc.psel = bsel, psel
		if len(psel) == 0 {
			continue
		}
		ctx.ChargeRows(len(psel), ctx.Costs.JoinOutputCyclesPerRow)
		if pc.out == nil {
			pc.out = table.NewBatch(pc.schema, len(psel))
		}
		pc.out.Reset()
		nb := len(bs.buildB.Vecs)
		for c, v := range bs.buildB.Vecs {
			pc.out.Vecs[c].AppendGather(v, bsel)
		}
		for c, v := range pb.Vecs {
			pc.out.Vecs[nb+c].AppendGather(v, psel)
		}
		pc.out.SetRows(len(psel))
		return pc.out, nil
	}
}

// SharedBuild runs a hash-join build side exactly once per pipeline run on
// behalf of any number of parallel probe fragments (Prober). The first
// prober to open runs the build in its own process — siblings opening
// concurrently park on a condition until the tables exist — and the last
// prober to close drops the state, so a re-opened pipeline (a nested-loop
// rescan) rebuilds, matching the serial HashJoin's re-Open semantics.
// With BuildFrags set the build itself runs fragmented and partitioned,
// composing build- and probe-side parallelism.
type SharedBuild struct {
	Build      Operator   // serial build input; ignored when BuildFrags is set
	BuildFrags []Operator // parallel build fragment pipelines sharing BuildQueue
	BuildQueue *Morsels   // shared dispenser behind BuildFrags; reset per build
	Key        int        // build-key column in the build schema
	Partitions int        // hash partitions; <= 1 builds one table

	schema   *table.Schema
	bs       *buildState
	building bool
	cond     *sim.Cond
	opens    int
	err      error // sticky: a failed build fails every prober of the run
}

// NewSharedBuild wraps a build side for sharing across probe fragments.
// Pass either a serial build operator, or fragment pipelines plus their
// queue (build is then ignored).
func NewSharedBuild(build Operator, frags []Operator, queue *Morsels, key, partitions int) *SharedBuild {
	sb := &SharedBuild{Build: build, BuildFrags: frags, BuildQueue: queue,
		Key: key, Partitions: partitions}
	if frags != nil {
		sb.schema = frags[0].Schema()
	} else {
		sb.schema = build.Schema()
	}
	return sb
}

// Schema is the build side's schema.
func (sb *SharedBuild) Schema() *table.Schema { return sb.schema }

// acquire returns the shared build state, running the build if this is
// the first prober in. Callers that get an error must not release.
func (sb *SharedBuild) acquire(ctx *Ctx) (*buildState, error) {
	if sb.cond == nil {
		sb.cond = sim.NewCond(ctx.P.Engine(), "hashjoin:sharedbuild")
	}
	for sb.building {
		sb.cond.Wait(ctx.P)
	}
	if sb.err != nil {
		return nil, sb.err
	}
	if sb.bs == nil {
		sb.building = true
		bs, err := runJoinBuild(ctx, sb.schema, sb.Build, sb.BuildFrags, sb.BuildQueue, sb.Key, sb.Partitions)
		sb.building = false
		sb.cond.Broadcast()
		if err != nil {
			sb.err = err
			return nil, err
		}
		sb.bs = bs
	}
	sb.opens++
	return sb.bs, nil
}

// release drops one prober's reference; the last one out frees the build
// state so a rescan rebuilds (and an aborted run does not pin it).
func (sb *SharedBuild) release() {
	if sb.opens--; sb.opens <= 0 {
		sb.opens = 0
		sb.bs = nil
		sb.err = nil
	}
}

// Prober is one probe-side fragment of a parallel hash join: it streams
// its private share of the probe pipeline (fragments divide the table via
// a shared morsel dispenser upstream) against the join's shared build
// state. The serial HashJoin is semantically the one-prober special case
// of this shape; DOP probers under a Parallel merge produce the same
// multiset of rows with probe and output CPU spread across cores.
type Prober struct {
	SB       *SharedBuild
	In       Operator // probe fragment pipeline
	ProbeKey int      // column index in In's schema

	schema *table.Schema
	bs     *buildState
	pc     probeCursor
}

// NewProber builds one probe fragment over a shared build.
func NewProber(sb *SharedBuild, in Operator, probeKey int) *Prober {
	return &Prober{SB: sb, In: in, ProbeKey: probeKey,
		schema: joinSchema("hashjoin", sb.Schema(), in.Schema())}
}

// Schema implements Operator.
func (p *Prober) Schema() *table.Schema { return p.schema }

// Open implements Operator.
func (p *Prober) Open(ctx *Ctx) error {
	bs, err := p.SB.acquire(ctx)
	if err != nil {
		return err
	}
	p.bs = bs
	p.pc = probeCursor{in: p.In, key: p.ProbeKey, schema: p.schema,
		bsel: p.pc.bsel, psel: p.pc.psel, out: p.pc.out}
	if err := p.In.Open(ctx); err != nil {
		p.SB.release()
		p.bs = nil
		return err
	}
	return nil
}

// Next implements Operator.
func (p *Prober) Next(ctx *Ctx) (*table.Batch, error) {
	return p.pc.next(ctx, p.bs)
}

// Close implements Operator.
func (p *Prober) Close(ctx *Ctx) error {
	err := p.In.Close(ctx)
	if p.bs != nil {
		p.SB.release()
		p.bs = nil
	}
	p.pc.out = nil
	return err
}
