package exec

import (
	"energydb/internal/table"
)

// Operator is the volcano iterator contract, vectorised: Next returns
// batches until it returns nil. Open must (re)initialise state so an
// operator can be re-executed — block nested-loop join depends on
// re-opening its inner side.
//
// A returned batch (and the vectors and selection it references) is only
// valid until the next call to Next or Close on the same operator:
// producers may reuse buffers across calls. A consumer that retains rows
// beyond that — as Run does — must copy them first (Batch.Clone,
// Table.AppendBatch).
//
// Cardinality is explicit: Batch.Rows() is authoritative even for
// zero-column batches (count-only plans produce them). A batch may carry
// a deferred selection (Batch.Sel) instead of being compacted by the
// producer; consumers either compose it (Filter, Project, HashJoin's
// probe) or resolve it once at their materialisation boundary (join
// build, aggregation, sort, output) via the selection-aware Batch
// mutators.
type Operator interface {
	// Schema describes the batches this operator produces.
	Schema() *table.Schema
	// Open prepares (or resets) the operator for a full iteration.
	Open(ctx *Ctx) error
	// Next returns the next batch, or nil at end of stream.
	Next(ctx *Ctx) (*table.Batch, error)
	// Close releases resources acquired by Open.
	Close(ctx *Ctx) error
}

// Run drains op and returns all produced batches; it is the main entry
// point for tests and for queries that materialise their full result.
func Run(ctx *Ctx, op Operator) ([]*table.Batch, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	var out []*table.Batch
	for {
		b, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return nil, err
		}
		if b == nil {
			break
		}
		if b.Rows() > 0 {
			out = append(out, b.Clone()) // operators may reuse batch buffers
		}
	}
	return out, op.Close(ctx)
}

// Collect drains op into a single table for convenient inspection.
func Collect(ctx *Ctx, op Operator) (*table.Table, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	t := table.NewTable(op.Schema())
	for {
		b, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return nil, err
		}
		if b == nil {
			break
		}
		t.AppendBatch(b)
	}
	return t, op.Close(ctx)
}

// RowCount drains op and returns only the row count (no materialisation).
func RowCount(ctx *Ctx, op Operator) (int64, error) {
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	var n int64
	for {
		b, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return 0, err
		}
		if b == nil {
			break
		}
		n += int64(b.Rows())
	}
	return n, op.Close(ctx)
}
