// Package storage provides the block layer between the database engine and
// the simulated devices: fixed-size pages mapped onto arrays of disks or
// SSDs by striping (RAID-0) or rotating-parity RAID-5, a windowed parallel
// scan that keeps every spindle busy, and an energy-oriented burst
// prefetcher (Papathanasiou & Scott, USENIX'04 — cited in §4.2 of the
// paper).
//
// The volume is a *timing* plane: it charges simulated device time and
// tracks I/O statistics. Data bytes themselves live in the table layer;
// DESIGN.md documents this substitution.
package storage

import (
	"fmt"

	"energydb/internal/sim"
)

// BlockDevice is the device contract volumes build on; hw.Disk and hw.SSD
// implement it. Errors are typed against the internal/fault taxonomy
// (ErrDeviceFailed, ErrTransientIO) and propagate unchanged through the
// volume to the execution layer.
type BlockDevice interface {
	Read(p *sim.Proc, offset, size int64) error
	Write(p *sim.Proc, offset, size int64) error
}

// Layout selects how pages map to devices.
type Layout int

const (
	// Striped is RAID-0: pages round-robin across all devices.
	Striped Layout = iota
	// RAID5 rotates one parity page per stripe row; writes pay the classic
	// read-modify-write penalty (two reads + two writes).
	RAID5
)

func (l Layout) String() string {
	switch l {
	case Striped:
		return "raid0"
	case RAID5:
		return "raid5"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// VolumeStats counts volume-level I/O.
type VolumeStats struct {
	PagesRead    int64
	PagesWritten int64
	BytesRead    int64
	BytesWritten int64
}

// Volume maps a linear page space onto a set of devices.
type Volume struct {
	name     string
	devs     []BlockDevice
	pageSize int64
	layout   Layout
	stats    VolumeStats
	nextByte int64

	hostBW   float64
	hostLink *sim.Resource

	// MaxRunPages caps the pages coalesced into one device request during
	// Scan (0 = window/4). Real 2008 controllers capped transfers at
	// 64-256 KB per request; the cap fixes per-seek efficiency across
	// array sizes.
	MaxRunPages int
}

// NewVolume creates a volume. RAID5 requires at least three devices.
func NewVolume(name string, layout Layout, pageSize int64, devs []BlockDevice) *Volume {
	if len(devs) == 0 {
		panic("storage: volume needs at least one device")
	}
	if layout == RAID5 && len(devs) < 3 {
		panic("storage: RAID5 needs at least three devices")
	}
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	return &Volume{name: name, devs: devs, pageSize: pageSize, layout: layout}
}

// Name reports the volume name.
func (v *Volume) Name() string { return v.name }

// PageSize reports the page size in bytes.
func (v *Volume) PageSize() int64 { return v.pageSize }

// Devices reports the device count.
func (v *Volume) Devices() int { return len(v.devs) }

// Layout reports the volume layout.
func (v *Volume) Layout() Layout { return v.layout }

// Stats returns a copy of the I/O counters.
func (v *Volume) Stats() VolumeStats { return v.stats }

// SetHostLink models the shared controller/bus path between the device
// array and the host (SAS links, PCIe): every page transferred also holds
// a single shared link for bytes/bw seconds. Large arrays saturate this
// ceiling — the physical source of the diminishing returns in the paper's
// Figure 1 ("the 7th disk provides less incremental performance benefit
// than the 6th"). bw <= 0 disables the model.
func (v *Volume) SetHostLink(eng *sim.Engine, bw float64) {
	if bw <= 0 {
		v.hostBW = 0
		v.hostLink = nil
		return
	}
	v.hostBW = bw
	v.hostLink = sim.NewResource(eng, v.name+":host", 1)
}

// Reset quiesces the volume's shared host link after Engine.Crash has
// unwound every process that could be mid-transfer. The devices
// themselves are reset individually by their owners.
func (v *Volume) Reset() {
	if v.hostLink != nil {
		v.hostLink.Reset()
	}
}

// hostTransfer charges the shared link for moving n bytes to the host.
func (v *Volume) hostTransfer(p *sim.Proc, n int64) {
	if v.hostLink == nil {
		return
	}
	v.hostLink.Use(p, 1, float64(n)/v.hostBW)
}

// AllocExtent reserves n contiguous bytes and returns the starting byte
// offset. Extents pack tightly: adjacent extents may share a boundary
// page, exactly as column-store segments do on real volumes. Allocation
// is an instantaneous metadata operation.
func (v *Volume) AllocExtent(n int64) int64 {
	if n < 0 {
		panic(fmt.Sprintf("storage: alloc of %d bytes", n))
	}
	start := v.nextByte
	v.nextByte += n
	return start
}

// AllocPages reserves n contiguous page-aligned logical pages and returns
// the first page number.
func (v *Volume) AllocPages(n int64) int64 {
	if n < 0 {
		panic(fmt.Sprintf("storage: alloc of %d pages", n))
	}
	if rem := v.nextByte % v.pageSize; rem != 0 {
		v.nextByte += v.pageSize - rem
	}
	start := v.nextByte / v.pageSize
	v.nextByte += n * v.pageSize
	return start
}

// AllocBytes reserves enough contiguous whole pages for n bytes and
// returns the first page and the page count.
func (v *Volume) AllocBytes(n int64) (firstPage, pages int64) {
	pages = (n + v.pageSize - 1) / v.pageSize
	if pages == 0 {
		pages = 1
	}
	return v.AllocPages(pages), pages
}

// PageSpan reports the page range [pageLo, pageHi) covering the byte
// extent [byteLo, byteHi).
func (v *Volume) PageSpan(byteLo, byteHi int64) (pageLo, pageHi int64) {
	pageLo = byteLo / v.pageSize
	pageHi = (byteHi + v.pageSize - 1) / v.pageSize
	if pageHi <= pageLo {
		pageHi = pageLo + 1
	}
	return pageLo, pageHi
}

// ReadPages reads an arbitrary set of pages with all devices working in
// parallel (duplicates are read once). It returns when every reader has
// finished — on a device error the remaining readers stop at their next
// run boundary, every reader still exits, and the first error (in device
// order) is returned.
func (v *Volume) ReadPages(p *sim.Proc, pages []int64) error {
	if len(pages) == 0 {
		return nil
	}
	eng := p.Engine()
	done := sim.NewMailbox[error](eng, v.name+":rp")
	stop := new(bool)
	byDev := make([][]int64, len(v.devs))
	seen := make(map[int64]struct{}, len(pages))
	for _, pg := range pages {
		if _, dup := seen[pg]; dup {
			continue
		}
		seen[pg] = struct{}{}
		d, _ := v.locate(pg)
		byDev[d] = append(byDev[d], pg)
	}
	launched := 0
	errByDev := make([]error, len(v.devs))
	for d, pgs := range byDev {
		if len(pgs) == 0 {
			continue
		}
		launched++
		d, runs := d, coalesce(v, pgs)
		eng.Go(fmt.Sprintf("%s:rp%d", v.name, d), func(rp *sim.Proc) {
			for _, r := range runs {
				if *stop {
					break
				}
				// One vectored read per contiguous run: the device seeks
				// once and streams the whole run, exactly as a real
				// scatter-gather scan request would.
				if err := v.devs[d].Read(rp, r.off, r.bytes); err != nil {
					errByDev[d] = err
					break
				}
				v.hostTransfer(rp, r.bytes)
				v.stats.PagesRead += r.bytes / v.pageSize
				v.stats.BytesRead += r.bytes
			}
			done.Put(errByDev[d])
		})
	}
	for i := 0; i < launched; i++ {
		if err := done.Get(p); err != nil {
			*stop = true
		}
	}
	for _, err := range errByDev {
		if err != nil {
			return err
		}
	}
	return nil
}

type devRun struct {
	off   int64
	bytes int64
}

// coalesce merges a device's page list (in logical-page order, which is
// offset order per device) into contiguous runs.
func coalesce(v *Volume, pgs []int64) []devRun {
	var runs []devRun
	for _, pg := range pgs {
		_, off := v.locate(pg)
		if n := len(runs); n > 0 && runs[n-1].off+runs[n-1].bytes == off {
			runs[n-1].bytes += v.pageSize
			continue
		}
		runs = append(runs, devRun{off: off, bytes: v.pageSize})
	}
	return runs
}

// locate maps a logical page to (device index, device byte offset).
// For RAID-0: page i lives on device i%n at row i/n.
// For RAID-5 (left-symmetric): each row of n device-pages holds n-1 data
// pages plus one parity page whose device rotates by row.
func (v *Volume) locate(page int64) (dev int, off int64) {
	n := int64(len(v.devs))
	switch v.layout {
	case Striped:
		return int(page % n), (page / n) * v.pageSize
	case RAID5:
		nd := n - 1 // data pages per row
		row := page / nd
		k := page % nd
		parity := row % n
		d := k
		if d >= parity {
			d++
		}
		return int(d), row * v.pageSize
	default:
		panic("storage: unknown layout")
	}
}

// parityLoc returns the device and offset of the parity page for the row
// containing the given logical page (RAID5 only).
func (v *Volume) parityLoc(page int64) (dev int, off int64) {
	n := int64(len(v.devs))
	nd := n - 1
	row := page / nd
	return int(row % n), row * v.pageSize
}

// ReadPage charges the I/O time of reading one logical page.
func (v *Volume) ReadPage(p *sim.Proc, page int64) error {
	if page < 0 {
		panic(fmt.Sprintf("storage: read of negative page %d", page))
	}
	dev, off := v.locate(page)
	if err := v.devs[dev].Read(p, off, v.pageSize); err != nil {
		return err
	}
	v.hostTransfer(p, v.pageSize)
	v.stats.PagesRead++
	v.stats.BytesRead += v.pageSize
	return nil
}

// WritePage charges the I/O time of writing one logical page. On RAID-5
// this is the full read-modify-write: read old data, read old parity,
// write data, write parity.
func (v *Volume) WritePage(p *sim.Proc, page int64) error {
	if page < 0 {
		panic(fmt.Sprintf("storage: write of negative page %d", page))
	}
	dev, off := v.locate(page)
	if v.layout == RAID5 {
		pdev, poff := v.parityLoc(page)
		if err := v.devs[dev].Read(p, off, v.pageSize); err != nil {
			return err
		}
		if err := v.devs[pdev].Read(p, poff, v.pageSize); err != nil {
			return err
		}
		if err := v.devs[dev].Write(p, off, v.pageSize); err != nil {
			return err
		}
		if err := v.devs[pdev].Write(p, poff, v.pageSize); err != nil {
			return err
		}
		v.stats.BytesRead += 2 * v.pageSize
		v.stats.BytesWritten += 2 * v.pageSize
		v.stats.PagesRead += 2
		v.stats.PagesWritten += 2
		return nil
	}
	if err := v.devs[dev].Write(p, off, v.pageSize); err != nil {
		return err
	}
	v.stats.PagesWritten++
	v.stats.BytesWritten += v.pageSize
	return nil
}

// scanMsg is one delivery from a Scan reader to the consumer: a page, a
// device error, or an exit marker (the reader has terminated).
type scanMsg struct {
	page int64
	err  error
	exit bool
}

// Scan reads logical pages [start, end) using every device concurrently
// and invokes consume(page) from the calling process as pages arrive. The
// window bounds the number of pages in flight (<=0 selects 2x devices);
// consume may charge CPU time, and that work overlaps further I/O — this
// is the disk/CPU overlap the paper's Figure 2 relies on.
//
// Pages are delivered in completion order, not logical order; callers that
// need ordering must make pages self-describing (the table layer does).
//
// On a device error the scan stops: remaining readers unwind at their
// next window acquisition, Scan blocks until every reader has exited
// (so no simulated process outlives the call), and the first error
// delivered is returned. consume is never invoked after an error.
func (v *Volume) Scan(p *sim.Proc, start, end int64, window int, consume func(page int64)) error {
	if start >= end {
		return nil
	}
	if window <= 0 {
		window = 2 * len(v.devs)
	}
	eng := p.Engine()
	tokens := sim.NewResource(eng, v.name+":scanwin", window)
	done := sim.NewMailbox[scanMsg](eng, v.name+":scan")
	stop := new(bool)

	// Partition pages by owning device so each reader's accesses are
	// sequential on its device.
	byDev := make([][]int64, len(v.devs))
	for pg := start; pg < end; pg++ {
		d, _ := v.locate(pg)
		byDev[d] = append(byDev[d], pg)
	}
	// Coalesce each device's pages into vectored runs no larger than a
	// quarter of the window, so one seek covers many pages while the
	// window still bounds bytes in flight.
	maxRun := v.MaxRunPages
	if maxRun <= 0 {
		maxRun = window / 4
	}
	if maxRun < 1 {
		maxRun = 1
	}
	if maxRun > window {
		maxRun = window
	}
	launched := 0
	for d, pages := range byDev {
		if len(pages) == 0 {
			continue
		}
		launched++
		d, pages := d, pages
		eng.Go(fmt.Sprintf("%s:reader%d", v.name, d), func(rp *sim.Proc) {
			defer done.Put(scanMsg{exit: true})
			i := 0
			for i < len(pages) && !*stop {
				// Extend the run while pages stay contiguous on device.
				j := i + 1
				_, off := v.locate(pages[i])
				for j < len(pages) && j-i < maxRun {
					_, next := v.locate(pages[j])
					if next != off+int64(j-i)*v.pageSize {
						break
					}
					j++
				}
				n := j - i
				tokens.Acquire(rp, n)
				if *stop {
					tokens.Release(n)
					return
				}
				if err := v.devs[d].Read(rp, off, int64(n)*v.pageSize); err != nil {
					tokens.Release(n)
					done.Put(scanMsg{err: err})
					return
				}
				v.hostTransfer(rp, int64(n)*v.pageSize)
				v.stats.PagesRead += int64(n)
				v.stats.BytesRead += int64(n) * v.pageSize
				for ; i < j; i++ {
					done.Put(scanMsg{page: pages[i]})
				}
			}
		})
	}
	// Drive the scan until every reader has exited. Window tokens held by
	// undelivered pages are released even after an error so that readers
	// parked on the window can wake, observe stop, and unwind.
	var firstErr error
	for exits := 0; exits < launched; {
		m := done.Get(p)
		switch {
		case m.exit:
			exits++
		case m.err != nil:
			if firstErr == nil {
				firstErr = m.err
			}
			*stop = true
		default:
			if firstErr == nil {
				consume(m.page)
			}
			tokens.Release(1)
		}
	}
	return firstErr
}

// ReadRange reads pages [start, end) with all devices working in parallel
// and returns when every reader has finished. It is Scan without a
// consumer: the caller blocks for max-over-devices time instead of sum.
// On a device error the remaining readers stop at their next page and the
// first error (in device order) is returned.
func (v *Volume) ReadRange(p *sim.Proc, start, end int64) error {
	if start >= end {
		return nil
	}
	eng := p.Engine()
	done := sim.NewMailbox[error](eng, v.name+":rr")
	stop := new(bool)
	byDev := make([][]int64, len(v.devs))
	for pg := start; pg < end; pg++ {
		d, _ := v.locate(pg)
		byDev[d] = append(byDev[d], pg)
	}
	launched := 0
	errByDev := make([]error, len(v.devs))
	for d, pages := range byDev {
		if len(pages) == 0 {
			continue
		}
		launched++
		d, pages := d, pages
		eng.Go(fmt.Sprintf("%s:rr%d", v.name, d), func(rp *sim.Proc) {
			for _, pg := range pages {
				if *stop {
					break
				}
				_, off := v.locate(pg)
				if err := v.devs[d].Read(rp, off, v.pageSize); err != nil {
					errByDev[d] = err
					break
				}
				v.hostTransfer(rp, v.pageSize)
				v.stats.PagesRead++
				v.stats.BytesRead += v.pageSize
			}
			done.Put(errByDev[d])
		})
	}
	for i := 0; i < launched; i++ {
		if err := done.Get(p); err != nil {
			*stop = true
		}
	}
	for _, err := range errByDev {
		if err != nil {
			return err
		}
	}
	return nil
}
