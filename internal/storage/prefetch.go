package storage

import "energydb/internal/sim"

// Prefetcher implements the energy-oriented prefetching idea the paper
// borrows from Papathanasiou & Scott (§4.2): instead of trickling reads at
// the consumer's pace — which keeps a disk spinning at idle power between
// requests — fetch in large *bursts* so the inter-burst gaps become long
// enough to amortise a spin-down.
//
// Next blocks for the I/O time only when the local window is empty, at
// which point it reads BurstPages at once (back to back, sequential on the
// devices). A slow consumer therefore produces an I/O pattern of short
// intense bursts separated by long, device-idle gaps.
type Prefetcher struct {
	Vol        *Volume
	BurstPages int // pages fetched per burst; <=1 disables batching

	next    int64 // next page to hand out
	end     int64
	fetched int64 // pages already read from the volume
	bursts  int64
}

// NewPrefetcher returns a prefetcher over logical pages [start, end).
func NewPrefetcher(v *Volume, start, end int64, burstPages int) *Prefetcher {
	if burstPages < 1 {
		burstPages = 1
	}
	return &Prefetcher{Vol: v, BurstPages: burstPages, next: start, end: end, fetched: start}
}

// Next returns the next page number, fetching a new burst if the window is
// exhausted. It reports false when the range is consumed, and surfaces
// device errors from the burst read.
func (pf *Prefetcher) Next(p *sim.Proc) (int64, bool, error) {
	if pf.next >= pf.end {
		return 0, false, nil
	}
	if pf.next >= pf.fetched {
		hi := pf.fetched + int64(pf.BurstPages)
		if hi > pf.end {
			hi = pf.end
		}
		for pg := pf.fetched; pg < hi; pg++ {
			if err := pf.Vol.ReadPage(p, pg); err != nil {
				return 0, false, err
			}
			pf.fetched = pg + 1
		}
		pf.bursts++
	}
	pg := pf.next
	pf.next++
	return pg, true, nil
}

// Bursts reports how many device bursts have been issued.
func (pf *Prefetcher) Bursts() int64 { return pf.bursts }
