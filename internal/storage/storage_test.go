package storage

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
)

const testPage = 256 << 10 // 256 KiB

func ssdArray(e *sim.Engine, m *energy.Meter, n int) []BlockDevice {
	devs := make([]BlockDevice, n)
	for i := range devs {
		devs[i] = hw.NewSSD(e, m, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	return devs
}

func diskArray(e *sim.Engine, m *energy.Meter, n int) []BlockDevice {
	devs := make([]BlockDevice, n)
	for i := range devs {
		devs[i] = hw.NewDisk(e, m, fmt.Sprintf("disk%d", i), hw.Cheetah15K())
	}
	return devs
}

func TestStripedLocate(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", Striped, testPage, ssdArray(e, m, 3))
	wantDev := []int{0, 1, 2, 0, 1, 2}
	wantOff := []int64{0, 0, 0, testPage, testPage, testPage}
	for pg := range wantDev {
		d, off := v.locate(int64(pg))
		if d != wantDev[pg] || off != wantOff[pg] {
			t.Errorf("page %d -> (%d,%d), want (%d,%d)", pg, d, off, wantDev[pg], wantOff[pg])
		}
	}
}

func TestRAID5LocateAvoidsParity(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", RAID5, testPage, ssdArray(e, m, 4))
	// Row 0: parity on dev 0, data on 1,2,3. Row 1: parity on dev 1, etc.
	for pg := int64(0); pg < 100; pg++ {
		d, off := v.locate(pg)
		pd, poff := v.parityLoc(pg)
		if d == pd && off == poff {
			t.Fatalf("page %d mapped onto its own parity (%d,%d)", pg, d, off)
		}
	}
}

// Property: the page -> (device, offset) mapping is injective for both
// layouts, and never collides with the row's parity location under RAID5.
func TestLocateInjective(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	f := func(ndev uint8, layoutBit bool) bool {
		n := int(ndev%6) + 3
		layout := Striped
		if layoutBit {
			layout = RAID5
		}
		v := NewVolume("v", layout, testPage, ssdArray(e, m, n))
		seen := map[[2]int64]int64{}
		for pg := int64(0); pg < 500; pg++ {
			d, off := v.locate(pg)
			key := [2]int64{int64(d), off}
			if prev, dup := seen[key]; dup {
				t.Logf("pages %d and %d both at %v", prev, pg, key)
				return false
			}
			seen[key] = pg
			if layout == RAID5 {
				pd, poff := v.parityLoc(pg)
				if d == pd && off == poff {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPageTiming(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", Striped, testPage, ssdArray(e, m, 1))
	e.Go("io", func(p *sim.Proc) { v.ReadPage(p, 0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	spec := hw.FlashSSD2008()
	want := spec.ReadLatency + float64(testPage)/spec.ReadBW
	if math.Abs(e.Now()-want) > 1e-9 {
		t.Fatalf("page read took %v, want %v", e.Now(), want)
	}
	if st := v.Stats(); st.PagesRead != 1 || st.BytesRead != testPage {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRAID5WritePenalty(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", RAID5, testPage, ssdArray(e, m, 3))
	e.Go("io", func(p *sim.Proc) { v.WritePage(p, 0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.PagesRead != 2 || st.PagesWritten != 2 {
		t.Fatalf("RAID5 write should be 2 reads + 2 writes, got %+v", st)
	}

	// RAID-0 write is a single I/O.
	e2, m2 := sim.NewEngine(), energy.NewMeter()
	v2 := NewVolume("v", Striped, testPage, ssdArray(e2, m2, 3))
	e2.Go("io", func(p *sim.Proc) { v2.WritePage(p, 0) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if st := v2.Stats(); st.PagesWritten != 1 || st.PagesRead != 0 {
		t.Fatalf("striped write stats = %+v", st)
	}
}

func TestScanReadsAllPagesOnce(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", Striped, testPage, ssdArray(e, m, 3))
	const n = 50
	seen := map[int64]int{}
	e.Go("scan", func(p *sim.Proc) {
		v.Scan(p, 0, n, 0, func(pg int64) { seen[pg]++ })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct pages, want %d", len(seen), n)
	}
	for pg, c := range seen {
		if c != 1 {
			t.Fatalf("page %d consumed %d times", pg, c)
		}
	}
	if st := v.Stats(); st.PagesRead != n {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScanParallelismAcrossDevices(t *testing.T) {
	// Scanning N pages over k SSDs should take ~1/k the single-device time.
	timeFor := func(k int) float64 {
		e, m := sim.NewEngine(), energy.NewMeter()
		v := NewVolume("v", Striped, testPage, ssdArray(e, m, k))
		e.Go("scan", func(p *sim.Proc) {
			v.Scan(p, 0, 60, 0, func(int64) {})
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	t1, t3 := timeFor(1), timeFor(3)
	if ratio := t1 / t3; ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("3-device speedup = %v, want ~3 (t1=%v t3=%v)", ratio, t1, t3)
	}
}

func TestScanOverlapsCPUWithIO(t *testing.T) {
	// With consume() charging CPU time, total elapsed should approach
	// max(IO, CPU), not IO + CPU — the Figure 2 overlap.
	e, m := sim.NewEngine(), energy.NewMeter()
	cpu := hw.NewCPU(e, m, "cpu", hw.ScanCPU2008())
	v := NewVolume("v", Striped, testPage, ssdArray(e, m, 3))
	const n = 60
	perPageIO := float64(testPage) / hw.FlashSSD2008().ReadBW // per device
	ioTime := float64(n) / 3 * perPageIO
	cpuPerPage := ioTime / n * 1.5 // CPU is the bottleneck at 1.5x IO rate
	e.Go("scan", func(p *sim.Proc) {
		v.Scan(p, 0, n, 0, func(int64) {
			cpu.Use(p, cpuPerPage*cpu.Spec().FreqHz)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	cpuTotal := cpuPerPage * n
	serial := ioTime + cpuTotal
	if e.Now() >= serial*0.85 {
		t.Fatalf("no overlap: elapsed %v vs serial %v (io=%v cpu=%v)", e.Now(), serial, ioTime, cpuTotal)
	}
	if e.Now() < cpuTotal-1e-9 {
		t.Fatalf("elapsed %v below CPU lower bound %v", e.Now(), cpuTotal)
	}
}

func TestScanEmptyRange(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", Striped, testPage, ssdArray(e, m, 2))
	called := false
	e.Go("scan", func(p *sim.Proc) {
		v.Scan(p, 5, 5, 4, func(int64) { called = true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("consume called on empty range")
	}
}

func TestPrefetcherBurstsCreateIdleGaps(t *testing.T) {
	// A slow consumer with burst prefetching should let the disk spin down
	// between bursts; with trickle fetching it never can.
	run := func(burst int) (spinDowns int64, joules float64) {
		e, m := sim.NewEngine(), energy.NewMeter()
		d := hw.NewDisk(e, m, "d0", hw.Cheetah15K())
		d.SpinDownAfter = 8
		v := NewVolume("v", Striped, testPage, []BlockDevice{d})
		pf := NewPrefetcher(v, 0, 200, burst)
		e.Go("consumer", func(p *sim.Proc) {
			for {
				if _, ok, _ := pf.Next(p); !ok {
					return
				}
				p.Sleep(0.5) // slow consumer: 0.5s of downstream work per page
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().SpinDowns, float64(m.ComponentEnergy("d0", energy.Seconds(e.Now())))
	}
	trickleSpins, trickleJ := run(1)
	burstSpins, burstJ := run(100)
	// Each run ends with one trailing spin-down after the last I/O; only
	// the burst run should also spin down mid-workload.
	if trickleSpins > 1 {
		t.Fatalf("trickle fetch allowed %d spin-downs", trickleSpins)
	}
	if burstSpins < 2 {
		t.Fatalf("burst fetch never let the disk spin down mid-run (%d)", burstSpins)
	}
	if burstJ >= trickleJ {
		t.Fatalf("burst prefetch should save disk energy: burst=%v trickle=%v", burstJ, trickleJ)
	}
}

func TestPrefetcherDeliversAll(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	v := NewVolume("v", Striped, testPage, ssdArray(e, m, 2))
	pf := NewPrefetcher(v, 3, 17, 5)
	var got []int64
	e.Go("c", func(p *sim.Proc) {
		for {
			pg, ok, _ := pf.Next(p)
			if !ok {
				break
			}
			got = append(got, pg)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 14 || got[0] != 3 || got[13] != 16 {
		t.Fatalf("delivered %v", got)
	}
	if pf.Bursts() != 3 { // ceil(14/5)
		t.Fatalf("bursts = %d, want 3", pf.Bursts())
	}
}

func TestVolumeValidation(t *testing.T) {
	e, m := sim.NewEngine(), energy.NewMeter()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no devices", func() { NewVolume("v", Striped, testPage, nil) })
	mustPanic("raid5 too small", func() { NewVolume("v", RAID5, testPage, ssdArray(e, m, 2)) })
	mustPanic("bad page size", func() { NewVolume("v", Striped, 0, ssdArray(e, m, 1)) })
	if Striped.String() != "raid0" || RAID5.String() != "raid5" {
		t.Fatal("layout names")
	}
}
