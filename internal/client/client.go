// Package client is the driver for the wire protocol: a remote handle
// mirroring the embedded Session API (Open → Session → Prepare → Query
// → Rows), so one workload runs unchanged against a core.DB in-process
// or a server across a connection. Typed fault errors survive the wire —
// errors.Is(rows.Err(), fault.ErrDeadlineExceeded) holds on the client
// exactly when it would have held embedded.
//
// The protocol is strict request/response on one connection; the driver
// serializes its own requests under a mutex, so a *DB is safe for one
// goroutine per call but interleaves statements freely (each FETCH names
// its query).
package client

import (
	"fmt"
	"net"
	"sync"

	"energydb/internal/table"
	"energydb/internal/wire"
)

// DB is a connection to a server, authenticated as one tenant.
type DB struct {
	mu     sync.Mutex
	conn   net.Conn
	broken error // a protocol-level failure poisons the connection
}

// Dial connects to a server's TCP address as the given tenant.
func Dial(addr, tenant string) (*DB, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(c, tenant)
}

// New performs the handshake over an existing connection (a TCP conn, or
// one end of server.Pipe) and returns the driver handle.
func New(conn net.Conn, tenant string) (*DB, error) {
	db := &DB{conn: conn}
	body := wire.AppendStr(wire.AppendU32(nil, wire.Version), tenant)
	if err := wire.WriteFrame(conn, wire.MsgHello, body); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := db.expect(wire.MsgWelcome); err != nil {
		conn.Close()
		return nil, err
	}
	return db, nil
}

// Close closes the connection. The server tears down every session and
// running statement this connection owned.
func (db *DB) Close() error { return db.conn.Close() }

// roundTrip sends one request and reads its reply, which must be of type
// want (or MsgOK carrying an error code, or MsgError). It returns a
// reader positioned after the reply's code+msg prefix.
func (db *DB) roundTrip(reqType byte, body []byte, want byte) (*wire.Reader, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.roundTripLocked(reqType, body, want)
}

func (db *DB) roundTripLocked(reqType byte, body []byte, want byte) (*wire.Reader, error) {
	if db.broken != nil {
		return nil, db.broken
	}
	if err := wire.WriteFrame(db.conn, reqType, body); err != nil {
		db.broken = err
		return nil, err
	}
	return db.expect(want)
}

// expect reads one reply frame and peels its code+msg prefix. Every
// server reply except MsgDone and MsgMeterReport starts with one; a
// non-zero code comes back as the typed remote error.
func (db *DB) expect(want byte) (*wire.Reader, error) {
	typ, body, err := wire.ReadFrame(db.conn)
	if err != nil {
		db.broken = err
		return nil, err
	}
	r := wire.NewReader(body)
	switch typ {
	case want, wire.MsgOK:
		code := r.U32()
		msg := r.Str()
		if err := r.Err(); err != nil {
			db.broken = err
			return nil, err
		}
		if code != wire.CodeOK {
			return nil, wire.DecodeError(code, msg)
		}
		if typ != want {
			err := fmt.Errorf("client: reply type %d, want %d: %w", typ, want, wire.ErrProtocol)
			db.broken = err
			return nil, err
		}
		return r, nil
	case wire.MsgError:
		code := r.U32()
		msg := r.Str()
		err := wire.DecodeError(code, msg)
		if err == nil {
			err = fmt.Errorf("client: empty error frame: %w", wire.ErrProtocol)
		}
		db.broken = err
		return nil, err
	default:
		err := fmt.Errorf("client: unexpected frame type %d: %w", typ, wire.ErrProtocol)
		db.broken = err
		return nil, err
	}
}

// Session opens a remote session: one serial statement stream, exactly
// like core.DB.Session.
func (db *DB) Session() (*Session, error) {
	r, err := db.roundTrip(wire.MsgSessionOpen, nil, wire.MsgSessionOK)
	if err != nil {
		return nil, err
	}
	sid := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &Session{db: db, id: sid}, nil
}

// Exec runs a non-SELECT statement (CREATE/INSERT) at the current
// simulated time, mirroring core.DB.Exec's write path.
func (db *DB) Exec(sql string) error { return db.ExecAt(0, sql) }

// ExecAt schedules a non-SELECT statement at simulated time at: a
// present-time statement's reply carries its real outcome, a future
// one's errors surface at Drain, mirroring core.DB.ExecAt.
func (db *DB) ExecAt(at float64, sql string) error {
	_, err := db.roundTrip(wire.MsgExec, wire.AppendStr(wire.AppendF64(nil, at), sql), wire.MsgOK)
	return err
}

// Drain runs the server's simulation until no scheduled work remains,
// mirroring core.DB.Drain.
func (db *DB) Drain() error {
	_, err := db.roundTrip(wire.MsgDrain, nil, wire.MsgOK)
	return err
}

// Meter fetches the server's energy ledger: wall meter, idle floor, and
// the per-tenant attributed bill.
func (db *DB) Meter() (wire.MeterReport, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.broken != nil {
		return wire.MeterReport{}, db.broken
	}
	if err := wire.WriteFrame(db.conn, wire.MsgMeter, nil); err != nil {
		db.broken = err
		return wire.MeterReport{}, err
	}
	typ, body, err := wire.ReadFrame(db.conn)
	if err != nil {
		db.broken = err
		return wire.MeterReport{}, err
	}
	if typ != wire.MsgMeterReport {
		return wire.MeterReport{}, fmt.Errorf("client: meter reply type %d: %w", typ, wire.ErrProtocol)
	}
	return wire.DecodeMeterReport(wire.NewReader(body))
}

// Session is one remote serial statement stream.
type Session struct {
	db     *DB
	id     uint64
	closed bool
}

// Close closes the remote session; running statements are unaffected.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	_, err := s.db.roundTrip(wire.MsgSessionClose, wire.AppendU64(nil, s.id), wire.MsgOK)
	return err
}

// Prepare binds a SELECT on the server for repeated execution.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	body := wire.AppendStr(wire.AppendU64(nil, s.id), sql)
	r, err := s.db.roundTrip(wire.MsgPrepare, body, wire.MsgPrepared)
	if err != nil {
		return nil, err
	}
	id := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &Stmt{sess: s, id: id, text: sql}, nil
}

// Query prepares and submits a statement in one call.
func (s *Session) Query(sql string) (*Rows, error) {
	st, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Query()
}

// Explain plans a SELECT without running it and returns the chosen plan
// as a batch of opt.ExplainSchema rows (operator, detail, DOP, P-state,
// predicted ms and joules).
func (s *Session) Explain(sql string) (*table.Batch, error) {
	body := wire.AppendStr(wire.AppendU64(nil, s.id), sql)
	r, err := s.db.roundTrip(wire.MsgExplain, body, wire.MsgBatch)
	if err != nil {
		return nil, err
	}
	return wire.DecodeBatch(r)
}

// Stmt is a prepared statement on a remote session.
type Stmt struct {
	sess *Session
	id   uint64
	text string
}

// Text returns the statement's SQL.
func (st *Stmt) Text() string { return st.text }

// Query submits the statement, returning a Rows handle immediately;
// execution happens as the stream is fetched (the engine is lazy, same
// as embedded).
func (st *Stmt) Query() (*Rows, error) { return st.query(0, 0, 0) }

// QueryAt submits the statement at simulated time at.
func (st *Stmt) QueryAt(at float64) (*Rows, error) { return st.query(at, 0, 0) }

// QueryDeadline submits the statement with an absolute deadline
// (simulated seconds); a miss surfaces as fault.ErrDeadlineExceeded.
func (st *Stmt) QueryDeadline(deadline float64) (*Rows, error) {
	return st.query(0, deadline, 0)
}

// QueryAtDeadline combines an arrival time with a deadline.
func (st *Stmt) QueryAtDeadline(at, deadline float64) (*Rows, error) {
	return st.query(at, deadline, 0)
}

// QueryDiscard submits the statement with server-side result discarding:
// only the row count survives, for throughput drivers.
func (st *Stmt) QueryDiscard(at, deadline float64) (*Rows, error) {
	return st.query(at, deadline, wire.FlagDiscard)
}

func (st *Stmt) query(at, deadline float64, flags byte) (*Rows, error) {
	body := wire.AppendF64(wire.AppendF64(append(wire.AppendU64(nil, st.id), flags), at), deadline)
	r, err := st.sess.db.roundTrip(wire.MsgExecute, body, wire.MsgExecuted)
	if err != nil {
		return nil, err
	}
	qid := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &Rows{db: st.sess.db, id: qid}, nil
}

// Rows streams a remote statement's result: each Next is one FETCH
// round-trip returning one columnar batch, until the server reports the
// stream done with the query's settled stats and any typed error.
type Rows struct {
	db     *DB
	id     uint64
	cur    *table.Batch
	res    wire.Result
	err    error
	done   bool
	closed bool
}

// Next fetches the next result batch; false at end of stream, on error,
// or after Close.
func (r *Rows) Next() bool {
	if r.done || r.closed {
		return false
	}
	r.db.mu.Lock()
	defer r.db.mu.Unlock()
	if r.db.broken != nil {
		r.err, r.done = r.db.broken, true
		return false
	}
	if err := wire.WriteFrame(r.db.conn, wire.MsgFetch, wire.AppendU64(nil, r.id)); err != nil {
		r.db.broken, r.err, r.done = err, err, true
		return false
	}
	typ, body, err := wire.ReadFrame(r.db.conn)
	if err != nil {
		r.db.broken, r.err, r.done = err, err, true
		return false
	}
	br := wire.NewReader(body)
	switch typ {
	case wire.MsgBatch:
		code := br.U32()
		msg := br.Str()
		if code != wire.CodeOK {
			r.err, r.done = wire.DecodeError(code, msg), true
			return false
		}
		b, err := wire.DecodeBatch(br)
		if err != nil {
			r.db.broken, r.err, r.done = err, err, true
			return false
		}
		r.cur = b
		return true
	case wire.MsgDone:
		res, code, msg, derr := wire.DecodeResult(br)
		if derr != nil {
			r.db.broken, r.err, r.done = derr, derr, true
			return false
		}
		r.res, r.err, r.done = res, wire.DecodeError(code, msg), true
		return false
	default:
		err := fmt.Errorf("client: fetch reply type %d: %w", typ, wire.ErrProtocol)
		r.db.broken, r.err, r.done = err, err, true
		return false
	}
}

// Batch returns the batch fetched by the last successful Next.
func (r *Rows) Batch() *table.Batch { return r.cur }

// Err reports the statement's execution error, if any — a typed remote
// error matching the fault sentinels under errors.Is.
func (r *Rows) Err() error { return r.err }

// Close cancels the statement on the server if it is still pending or
// running and releases it; like the embedded Rows, a client-initiated
// close is not an error.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if _, cerr := r.db.roundTrip(wire.MsgCancel, wire.AppendU64(nil, r.id), wire.MsgOK); cerr != nil && r.err == nil {
		r.err = cerr
	}
	r.cur = nil
	return r.err
}

// Result drains the stream (discarding any unfetched batches) and
// returns the query's settled stats; the error is the statement's
// execution error, typed.
func (r *Rows) Result() (wire.Result, error) {
	for r.Next() {
	}
	return r.res, r.err
}

// Collect drains the stream into one table.
func (r *Rows) Collect() (*table.Table, wire.Result, error) {
	var t *table.Table
	for r.Next() {
		b := r.Batch()
		if t == nil {
			t = table.NewTable(b.Schema)
		}
		t.AppendBatch(b)
	}
	return t, r.res, r.err
}

// RowCount drains the stream and reports the rows the query produced
// (it survives server-side discard).
func (r *Rows) RowCount() (int64, error) {
	res, err := r.Result()
	return res.RowCount, err
}

// Attributed drains the stream and reports the query's settled energy
// share; unlike Result's error it is meaningful even for failed
// queries, matching the embedded Rows.Attributed.
func (r *Rows) Attributed() float64 {
	res, _ := r.Result()
	return res.Attributed
}
