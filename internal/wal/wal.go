// Package wal implements a write-ahead log with group commit and crash
// recovery.
//
// §5.2 of the paper singles logging out: "it may make sense to increase
// the batching factor (and increase response time) to avoid frequent
// commits on stable storage". The Log's batching factor and timeout are
// exactly that knob: commits are held until BatchSize records are pending
// (or Timeout elapses) and flushed with a single sequential device write,
// trading commit latency for fewer, larger log I/Os — and therefore fewer
// joules on the log device.
//
// Unlike the devices' pure timing planes, the log also keeps the byte
// image it would have on disk: every record carries a length header and a
// CRC32 checksum, a crash preserves only the durable image plus a torn
// prefix of any in-flight flush, and Replay walks the image back into
// records, truncating the torn or corrupt tail — the classic ARIES-style
// contract that recovery trusts exactly the checksummed prefix.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"energydb/internal/sim"
	"energydb/internal/storage"
)

// Stats counts log activity.
type Stats struct {
	Commits       int64 // records made durable
	Flushes       int64
	BytesWritten  int64   // payload bytes made durable
	DeviceBytes   int64   // on-device bytes including record headers
	FailedFlushes int64   // flushes that failed with a device error
	TotalLatency  float64 // sum of per-commit (durable - submit) times
}

// MeanLatency reports average commit latency.
func (s Stats) MeanLatency() float64 {
	if s.Commits == 0 {
		return 0
	}
	return s.TotalLatency / float64(s.Commits)
}

// Syncer is a device supporting synchronous write barriers; hw.Disk and
// hw.SSD implement it.
type Syncer interface {
	Sync(p *sim.Proc) error
}

// record layout on the device:
//
//	[u32 totalLen][u32 crc][u64 lsn][u32 payloadLen][payload bytes]
//
// totalLen counts the whole record including the header; crc covers
// everything after the crc field (lsn, payloadLen, payload). A record
// whose bytes are incomplete or whose crc mismatches ends replay.
const recHeader = 4 + 4 + 8 + 4

type record struct {
	lsn     int64
	payload []byte
	arrival float64
}

func encodeRecord(buf []byte, lsn int64, payload []byte) []byte {
	total := recHeader + len(payload)
	off := len(buf)
	buf = append(buf, make([]byte, total)...)
	b := buf[off:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(total))
	binary.LittleEndian.PutUint64(b[8:16], uint64(lsn))
	binary.LittleEndian.PutUint32(b[16:20], uint32(len(payload)))
	copy(b[recHeader:], payload)
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[8:total]))
	return buf
}

// ReplayRecord is one durable record decoded from a log image.
type ReplayRecord struct {
	LSN     int64
	Payload []byte
}

// Replay walks an on-device log image, verifying each record's length
// and checksum, and returns the decoded records plus the length of the
// valid byte prefix. Decoding stops at the first incomplete (torn) or
// checksum-corrupt record; everything after it is discarded, because
// nothing past an unverifiable record can be trusted to be record-
// aligned.
func Replay(img []byte) (recs []ReplayRecord, valid int) {
	off := 0
	for off+recHeader <= len(img) {
		b := img[off:]
		total := int(binary.LittleEndian.Uint32(b[0:4]))
		if total < recHeader || off+total > len(img) {
			break // torn or nonsense length
		}
		if crc32.ChecksumIEEE(b[8:total]) != binary.LittleEndian.Uint32(b[4:8]) {
			break // corrupt record
		}
		lsn := int64(binary.LittleEndian.Uint64(b[8:16]))
		plen := int(binary.LittleEndian.Uint32(b[16:20]))
		if recHeader+plen != total {
			break
		}
		recs = append(recs, ReplayRecord{
			LSN:     lsn,
			Payload: append([]byte(nil), b[recHeader:total]...),
		})
		off += total
	}
	return recs, off
}

// Log is a group-commit write-ahead log on a dedicated device.
type Log struct {
	eng *sim.Engine
	dev storage.BlockDevice

	// BatchSize is the group-commit batching factor: a flush is forced
	// when this many commits are pending. 1 disables batching.
	BatchSize int
	// Timeout bounds how long the first pending commit waits before the
	// batch is flushed regardless of size. 0 means only size triggers.
	Timeout float64

	lsn          int64
	image        []byte // bytes durable on the device
	writing      []byte // bytes of the flush currently in flight
	pending      []record
	batchID      int64 // id of the currently filling batch
	flushedBatch int64 // highest settled (durable or failed) batch id
	flushing     bool
	failed       map[int64]error // device error per failed batch
	cond         *sim.Cond
	stats        Stats
}

// NewLog creates a log writing to dev.
func NewLog(eng *sim.Engine, dev storage.BlockDevice, batchSize int, timeout float64) *Log {
	if batchSize < 1 {
		panic(fmt.Sprintf("wal: batch size %d", batchSize))
	}
	return &Log{
		eng: eng, dev: dev,
		BatchSize: batchSize, Timeout: timeout,
		batchID: 1,
		failed:  map[int64]error{},
		cond:    sim.NewCond(eng, "wal"),
	}
}

// Stats returns a copy of the counters.
func (l *Log) Stats() Stats { return l.stats }

// NextLSN reports the next log sequence number to be assigned.
func (l *Log) NextLSN() int64 { return l.lsn + 1 }

// DurableBytes reports the size of the durable on-device image.
func (l *Log) DurableBytes() int64 { return int64(len(l.image)) }

// Commit appends a record of the given payload size (content all zeros —
// the timing-only path) and blocks until it is durable. See Append.
func (l *Log) Commit(p *sim.Proc, recBytes int64) (int64, error) {
	if recBytes <= 0 {
		panic(fmt.Sprintf("wal: commit of %d bytes", recBytes))
	}
	return l.Append(p, make([]byte, recBytes))
}

// Append adds a record carrying payload and blocks the calling process
// until the record is durable (its batch has been flushed and synced).
// If the batch's device write fails, every commit in the batch fails
// with that error and nothing in the batch is durable.
func (l *Log) Append(p *sim.Proc, payload []byte) (int64, error) {
	l.lsn++
	lsn := l.lsn
	my := l.batchID
	l.pending = append(l.pending, record{lsn: lsn, payload: payload, arrival: p.Now()})

	switch {
	case len(l.pending) >= l.BatchSize:
		// This process completes the batch and performs the write itself.
		l.flush(p)
	case len(l.pending) == 1 && l.Timeout > 0:
		// First record of the batch arms the timeout flush.
		batch := my
		l.eng.After(l.Timeout, "wal-timeout", func() {
			if l.batchID == batch && len(l.pending) > 0 && !l.flushing {
				l.eng.Go("wal-flush", func(fp *sim.Proc) { l.flush(fp) })
			}
		})
	}
	for l.flushedBatch < my {
		l.cond.Wait(p)
	}
	if err := l.failed[my]; err != nil {
		return 0, fmt.Errorf("wal: batch %d flush: %w", my, err)
	}
	return lsn, nil
}

// flush writes the pending batch with one sequential I/O and wakes its
// waiters. New commits arriving during the write join the next batch.
func (l *Log) flush(p *sim.Proc) {
	if len(l.pending) == 0 || l.flushing {
		return
	}
	l.flushing = true
	batch := l.batchID
	recs := l.pending
	l.batchID++
	l.pending = nil

	var buf []byte
	var payloadBytes int64
	for _, r := range recs {
		buf = encodeRecord(buf, r.lsn, r.payload)
		payloadBytes += int64(len(r.payload))
	}
	l.writing = buf
	err := l.dev.Write(p, int64(len(l.image)), int64(len(buf)))
	if err == nil {
		if s, ok := l.dev.(Syncer); ok {
			err = s.Sync(p) // the flush is synchronous: pay the write barrier
		}
	}

	now := p.Now()
	if err != nil {
		// The batch never became durable: nothing joins the image and
		// every waiter in the batch learns the device error.
		l.failed[batch] = err
		l.stats.FailedFlushes++
	} else {
		l.image = append(l.image, buf...)
		for _, r := range recs {
			l.stats.TotalLatency += now - r.arrival
		}
		l.stats.Commits += int64(len(recs))
		l.stats.Flushes++
		l.stats.BytesWritten += payloadBytes
		l.stats.DeviceBytes += int64(len(buf))
	}
	l.writing = nil
	l.flushedBatch = batch
	l.flushing = false
	l.cond.Broadcast()

	// A batch may have filled while we were writing.
	if len(l.pending) >= l.BatchSize {
		l.flush(p)
	}
}

// CrashImage returns the byte image a crash at this instant would leave
// on the device: the durable image plus a torn prefix of any flush that
// was in flight (tornFrac in [0,1] selects how much of the in-flight
// write landed). Pending records that never entered a flush are lost.
func (l *Log) CrashImage(tornFrac float64) []byte {
	img := append([]byte(nil), l.image...)
	if len(l.writing) > 0 && tornFrac > 0 {
		n := int(tornFrac * float64(len(l.writing)))
		if n > len(l.writing) {
			n = len(l.writing)
		}
		img = append(img, l.writing[:n]...)
	}
	return img
}

// Recover resets the log onto a post-crash image: the torn or corrupt
// tail is truncated, the valid prefix becomes the durable image, the
// next LSN follows the last durable record, and all in-flight state is
// dropped (the crash already unwound every waiting process). It returns
// the replayed records for the storage layer to reapply.
func (l *Log) Recover(img []byte) []ReplayRecord {
	recs, valid := Replay(img)
	l.image = append(l.image[:0], img[:valid]...)
	l.writing = nil
	l.pending = nil
	l.flushing = false
	l.failed = map[int64]error{}
	l.flushedBatch = l.batchID - 1
	l.cond = sim.NewCond(l.eng, "wal") // drop waiters killed by the crash
	l.lsn = 0
	if n := len(recs); n > 0 {
		l.lsn = recs[n-1].LSN
	}
	return recs
}
