// Package wal implements a write-ahead log with group commit.
//
// §5.2 of the paper singles logging out: "it may make sense to increase
// the batching factor (and increase response time) to avoid frequent
// commits on stable storage". The Log's batching factor and timeout are
// exactly that knob: commits are held until BatchSize records are pending
// (or Timeout elapses) and flushed with a single sequential device write,
// trading commit latency for fewer, larger log I/Os — and therefore fewer
// joules on the log device.
package wal

import (
	"fmt"

	"energydb/internal/sim"
	"energydb/internal/storage"
)

// Stats counts log activity.
type Stats struct {
	Commits      int64
	Flushes      int64
	BytesWritten int64
	TotalLatency float64 // sum of per-commit (durable - submit) times
}

// MeanLatency reports average commit latency.
func (s Stats) MeanLatency() float64 {
	if s.Commits == 0 {
		return 0
	}
	return s.TotalLatency / float64(s.Commits)
}

// Syncer is a device supporting synchronous write barriers; hw.Disk and
// hw.SSD implement it.
type Syncer interface {
	Sync(p *sim.Proc)
}

// Log is a group-commit write-ahead log on a dedicated device.
type Log struct {
	eng *sim.Engine
	dev storage.BlockDevice

	// BatchSize is the group-commit batching factor: a flush is forced
	// when this many commits are pending. 1 disables batching.
	BatchSize int
	// Timeout bounds how long the first pending commit waits before the
	// batch is flushed regardless of size. 0 means only size triggers.
	Timeout float64

	lsn          int64
	offset       int64
	pendingBytes int64
	pendingArr   []float64 // arrival times of pending commits
	batchID      int64     // id of the currently filling batch
	flushedBatch int64     // highest durable batch id
	flushing     bool
	cond         *sim.Cond
	stats        Stats
}

// NewLog creates a log writing to dev.
func NewLog(eng *sim.Engine, dev storage.BlockDevice, batchSize int, timeout float64) *Log {
	if batchSize < 1 {
		panic(fmt.Sprintf("wal: batch size %d", batchSize))
	}
	return &Log{
		eng: eng, dev: dev,
		BatchSize: batchSize, Timeout: timeout,
		batchID: 1,
		cond:    sim.NewCond(eng, "wal"),
	}
}

// Stats returns a copy of the counters.
func (l *Log) Stats() Stats { return l.stats }

// NextLSN reports the next log sequence number to be assigned.
func (l *Log) NextLSN() int64 { return l.lsn + 1 }

// Commit appends a record of the given size and blocks the calling
// process until the record is durable (its batch has been flushed).
func (l *Log) Commit(p *sim.Proc, recBytes int64) int64 {
	if recBytes <= 0 {
		panic(fmt.Sprintf("wal: commit of %d bytes", recBytes))
	}
	l.lsn++
	lsn := l.lsn
	my := l.batchID
	l.pendingBytes += recBytes
	l.pendingArr = append(l.pendingArr, p.Now())

	switch {
	case len(l.pendingArr) >= l.BatchSize:
		// This process completes the batch and performs the write itself.
		l.flush(p)
	case len(l.pendingArr) == 1 && l.Timeout > 0:
		// First record of the batch arms the timeout flush.
		batch := my
		l.eng.After(l.Timeout, "wal-timeout", func() {
			if l.batchID == batch && len(l.pendingArr) > 0 && !l.flushing {
				l.eng.Go("wal-flush", func(fp *sim.Proc) { l.flush(fp) })
			}
		})
	}
	for l.flushedBatch < my {
		l.cond.Wait(p)
	}
	return lsn
}

// flush writes the pending batch with one sequential I/O and wakes its
// waiters. New commits arriving during the write join the next batch.
func (l *Log) flush(p *sim.Proc) {
	if len(l.pendingArr) == 0 || l.flushing {
		return
	}
	l.flushing = true
	batch := l.batchID
	bytes := l.pendingBytes
	arrivals := l.pendingArr
	l.batchID++
	l.pendingBytes = 0
	l.pendingArr = nil

	l.dev.Write(p, l.offset, bytes)
	l.offset += bytes
	if s, ok := l.dev.(Syncer); ok {
		s.Sync(p) // the flush is synchronous: pay the write barrier
	}

	now := p.Now()
	for _, a := range arrivals {
		l.stats.TotalLatency += now - a
	}
	l.stats.Commits += int64(len(arrivals))
	l.stats.Flushes++
	l.stats.BytesWritten += bytes
	l.flushedBatch = batch
	l.flushing = false
	l.cond.Broadcast()

	// A batch may have filled while we were writing.
	if len(l.pendingArr) >= l.BatchSize {
		l.flush(p)
	}
}
