package wal

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
)

func logRig() (*sim.Engine, *energy.Meter, *hw.Disk) {
	eng := sim.NewEngine()
	m := energy.NewMeter()
	d := hw.NewDisk(eng, m, "logdisk", hw.Cheetah15K())
	return eng, m, d
}

func TestSingleCommitDurable(t *testing.T) {
	eng, _, d := logRig()
	l := NewLog(eng, d, 1, 0)
	var lsn int64
	eng.Go("txn", func(p *sim.Proc) {
		lsn, _ = l.Commit(p, 512)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if lsn != 1 || st.Commits != 1 || st.Flushes != 1 || st.BytesWritten != 512 {
		t.Fatalf("stats = %+v lsn=%d", st, lsn)
	}
}

func TestGroupCommitBatchesFlushes(t *testing.T) {
	eng, _, d := logRig()
	l := NewLog(eng, d, 4, 0)
	const n = 16
	for i := 0; i < n; i++ {
		eng.Go(fmt.Sprintf("txn%d", i), func(p *sim.Proc) {
			l.Commit(p, 256)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Commits != n {
		t.Fatalf("commits = %d", st.Commits)
	}
	// BatchSize is a trigger, not a cap: commits arriving during a flush
	// coalesce into one larger group, so flushes <= n/4.
	if st.Flushes > n/4 || st.Flushes < 1 {
		t.Fatalf("flushes = %d, want in [1, %d]", st.Flushes, n/4)
	}
}

func TestTimeoutFlushesPartialBatch(t *testing.T) {
	eng, _, d := logRig()
	l := NewLog(eng, d, 100, 0.01)
	eng.Go("txn", func(p *sim.Proc) {
		l.Commit(p, 128) // alone: must be released by the timeout
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Commits != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanLatency() < 0.01 {
		t.Fatalf("latency %v below the timeout", st.MeanLatency())
	}
}

func TestBatchingTradesLatencyForEnergy(t *testing.T) {
	// The §5.2 knob: larger batching factor -> fewer forced log writes ->
	// less disk energy, but higher commit latency.
	run := func(batch int) (joules, latency float64) {
		eng, m, d := logRig()
		l := NewLog(eng, d, batch, 0.05)
		rng := rand.New(rand.NewSource(1))
		const n = 200
		at := 0.0
		for i := 0; i < n; i++ {
			at += rng.Float64() * 0.002 // ~1ms inter-arrival
			start := at
			eng.Go(fmt.Sprintf("txn%d", i), func(p *sim.Proc) {
				p.Sleep(start)
				l.Commit(p, 300)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(m.ComponentEnergy("logdisk", energy.Seconds(eng.Now()))) / n,
			l.Stats().MeanLatency()
	}
	j1, lat1 := run(1)
	j16, lat16 := run(16)
	if j16 >= j1 {
		t.Fatalf("batching should cut energy/commit: batch16=%v batch1=%v", j16, j1)
	}
	if lat16 <= lat1 {
		t.Fatalf("batching should raise latency: batch16=%v batch1=%v", lat16, lat1)
	}
}

func TestCommitDuringFlushJoinsNextBatch(t *testing.T) {
	eng, _, d := logRig()
	l := NewLog(eng, d, 2, 0)
	for i := 0; i < 5; i++ {
		i := i
		eng.Go(fmt.Sprintf("txn%d", i), func(p *sim.Proc) {
			p.Sleep(float64(i) * 0.0001) // arrivals staggered across flushes
			l.Commit(p, 100)
		})
	}
	// One leftover commit (5 = 2+2+1) would hang without a timeout.
	l.Timeout = 0.05
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Commits != 5 {
		t.Fatalf("commits = %d", l.Stats().Commits)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	eng, _, d := logRig()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("batch", func() { NewLog(eng, d, 0, 0) })
	l := NewLog(eng, d, 1, 0)
	mustPanic("bytes", func() {
		eng.Go("txn", func(p *sim.Proc) { l.Commit(p, 0) })
		_ = eng.Run()
	})
}

// Property: all commits become durable, LSNs are dense and increasing, and
// bytes written equals bytes committed, for any batch size and arrival mix.
func TestLogInvariants(t *testing.T) {
	f := func(seed int64, batchLog uint8) bool {
		batch := 1 << (batchLog % 5) // 1..16
		eng, _, d := logRig()
		l := NewLog(eng, d, batch, 0.02)
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		var total int64
		lsns := make([]int64, n)
		for i := 0; i < n; i++ {
			i := i
			sz := int64(rng.Intn(900) + 10)
			total += sz
			delay := rng.Float64() * 0.01
			eng.Go(fmt.Sprintf("txn%d", i), func(p *sim.Proc) {
				p.Sleep(delay)
				lsns[i], _ = l.Commit(p, sz)
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		st := l.Stats()
		if st.Commits != int64(n) || st.BytesWritten != total {
			return false
		}
		seen := map[int64]bool{}
		for _, lsn := range lsns {
			if lsn < 1 || lsn > int64(n) || seen[lsn] {
				return false
			}
			seen[lsn] = true
		}
		return st.Flushes <= st.Commits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
