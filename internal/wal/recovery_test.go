package wal

import (
	"bytes"
	"testing"

	"energydb/internal/sim"
)

func mustRecords(t *testing.T, img []byte) []ReplayRecord {
	t.Helper()
	recs, valid := Replay(img)
	if valid != len(img) {
		t.Fatalf("valid prefix %d of %d", valid, len(img))
	}
	return recs
}

// TestReplayRoundTrip: an intact image decodes back to exactly the
// records written, payloads included.
func TestReplayRoundTrip(t *testing.T) {
	p1, p2 := []byte("first record"), []byte("second, longer record payload")
	img := encodeRecord(nil, 1, p1)
	img = encodeRecord(img, 2, p2)
	recs := mustRecords(t, img)
	if len(recs) != 2 || recs[0].LSN != 1 || recs[1].LSN != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	if !bytes.Equal(recs[0].Payload, p1) || !bytes.Equal(recs[1].Payload, p2) {
		t.Fatal("payloads did not round-trip")
	}
}

// TestReplayTruncatesTornTail: cutting the image anywhere inside the last
// record must drop exactly that record — the valid prefix ends at the
// previous record boundary — at every possible tear point.
func TestReplayTornTail(t *testing.T) {
	p1, p2 := []byte("durable"), []byte("torn in flight")
	img1 := encodeRecord(nil, 1, p1)
	img := encodeRecord(append([]byte(nil), img1...), 2, p2)
	for cut := len(img1); cut < len(img); cut++ {
		recs, valid := Replay(img[:cut])
		if len(recs) != 1 || valid != len(img1) {
			t.Fatalf("cut=%d: %d recs, valid=%d (want 1, %d)", cut, len(recs), valid, len(img1))
		}
	}
}

// TestReplayRejectsCorruptRecord: flipping any byte of a record makes its
// checksum (or framing) fail, ending replay at the previous boundary;
// records after the corrupt one are discarded because nothing past an
// unverifiable record can be trusted to be record-aligned.
func TestReplayRejectsCorruptRecord(t *testing.T) {
	p1, p2, p3 := []byte("alpha"), []byte("beta"), []byte("gamma")
	img1 := encodeRecord(nil, 1, p1)
	img2 := encodeRecord(append([]byte(nil), img1...), 2, p2)
	img := encodeRecord(append([]byte(nil), img2...), 3, p3)

	for off := len(img1); off < len(img2); off++ {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0xff
		recs, valid := Replay(bad)
		if valid > len(img1) || len(recs) > 1 {
			t.Fatalf("corrupt byte %d: %d recs, valid=%d", off, len(recs), valid)
		}
	}
}

// TestCrashMidFlushLeavesTornPrefix: crash the engine while a flush is on
// the device. CrashImage contributes only the torn prefix of the
// in-flight write, Recover truncates it, and the log keeps working:
// post-recovery commits become durable with fresh LSNs following the
// durable prefix.
func TestCrashMidFlushLeavesTornPrefix(t *testing.T) {
	eng, _, d := logRig()
	l := NewLog(eng, d, 1, 0)

	// First commit completes normally and is durable.
	eng.Go("txn1", func(p *sim.Proc) { l.Commit(p, 512) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	durable := l.DurableBytes()

	// Second commit: step the engine only until its flush is in flight
	// (the flusher is parked in the device write), then crash.
	eng.Go("txn2", func(p *sim.Proc) { l.Commit(p, 512) })
	for l.flushing == false && eng.Step() {
	}
	if !l.flushing {
		t.Fatal("never caught the flush in flight")
	}
	eng.Crash()
	d.Reset()

	img := l.CrashImage(0.5)
	if int64(len(img)) <= durable {
		t.Fatalf("no torn prefix: image %d bytes, durable %d", len(img), durable)
	}
	recs := l.Recover(img)
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("recovered %+v, want just LSN 1", recs)
	}
	if l.DurableBytes() != durable {
		t.Fatalf("torn tail not truncated: %d != %d", l.DurableBytes(), durable)
	}

	// The log is usable again after recovery.
	var lsn int64
	eng.Go("txn3", func(p *sim.Proc) { lsn, _ = l.Commit(p, 256) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Fatalf("post-recovery lsn = %d, want 2 (following the durable prefix)", lsn)
	}
	if got := mustRecords(t, append([]byte(nil), l.image...)); len(got) != 2 {
		t.Fatalf("durable image holds %d records, want 2", len(got))
	}
}
