// Package sim is a deterministic discrete-event simulation kernel.
//
// It provides a virtual clock (float64 seconds), an event heap, and a
// cooperative process model: each simulated activity (a query stream, a
// background policy) runs in its own goroutine, but the engine guarantees
// that exactly one process executes at a time and that execution order is a
// deterministic function of (event time, schedule order). The same program
// with the same seeds therefore produces bit-identical timings, which the
// energy accounting layer depends on.
//
// The kernel knows nothing about hardware or databases; devices in
// internal/hw are built from Resource and timers.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrDeadlock is the sentinel Run wraps when processes remain blocked with
// no event left to wake them; match with errors.Is, not the message.
var ErrDeadlock = errors.New("sim: deadlock")

// event is a scheduled callback. Events with equal time fire in schedule
// order (seq), which keeps the simulation deterministic.
type event struct {
	t    float64
	seq  int64
	name string
	fn   func()
	idx  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the event queue.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     int64
	procSeq int64
	yield   chan struct{} // a running process signals here when it parks or ends
	procs   map[*Proc]struct{}
	live    int
	current *Proc // the process executing right now, nil in event context
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now reports the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t (>= Now). The name is used in
// diagnostics only.
func (e *Engine) At(t float64, name string, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past: %v < %v", name, t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{t: t, seq: e.seq, name: name, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	e.At(e.now+d, name, fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// Live reports the number of processes that have started but not finished.
func (e *Engine) Live() int { return e.live }

// LiveNames reports the names of live processes, sorted (diagnostics).
func (e *Engine) LiveNames() []string { return e.blockedNames() }

// Step processes the single earliest pending event, reporting whether one
// existed. Callers outside the simulation (a client iterating a streaming
// result) use it to advance the virtual clock just far enough to produce
// the data they are waiting for, instead of draining the whole event queue
// with Run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.step()
	return true
}

// Run processes events until none remain. If processes are still alive but
// no event can ever wake them, Run returns a deadlock error naming them.
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		e.step()
	}
	if e.live > 0 {
		return fmt.Errorf("%w: %d process(es) blocked forever: %v", ErrDeadlock, e.live, e.blockedNames())
	}
	return nil
}

// RunUntil processes all events with time <= t, then advances the clock to
// exactly t. Processes may still be alive (blocked or sleeping past t).
func (e *Engine) RunUntil(t float64) error {
	if t < e.now {
		return fmt.Errorf("sim: RunUntil(%v) is in the past (now=%v)", t, e.now)
	}
	for len(e.queue) > 0 && e.queue[0].t <= t {
		e.step()
	}
	e.now = t
	return nil
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	if ev.t < e.now {
		panic(fmt.Sprintf("sim: time went backwards popping %q: %v < %v", ev.name, ev.t, e.now))
	}
	e.now = ev.t
	ev.fn()
}

func (e *Engine) blockedNames() []string {
	var names []string
	for p := range e.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically by the engine. All blocking methods must be called from
// the process's own goroutine.
type Proc struct {
	eng      *Engine
	id       int64
	name     string
	resume   chan struct{}
	panicked any
	dead     bool
	killed   bool
	owner    any
}

// killSentinel is the panic value used to unwind a killed process. The
// spawn wrapper swallows it; any other panic still propagates.
type killSentinel struct{}

// Go starts fn as a new simulated process at the current time.
// fn begins executing when the engine next reaches the current instant in
// the event order.
//
// A process spawned from inside another process inherits the spawner's
// owner tag (see SetOwner): helper processes a query fans out — exchange
// workers, scan readers, per-device volume readers — charge the query's
// account without every spawn site having to thread it through.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{eng: e, id: e.procSeq, name: name, resume: make(chan struct{})}
	if e.current != nil {
		p.owner = e.current.owner
	}
	e.live++
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, k := r.(killSentinel); !k {
					p.panicked = r
				}
			}
			p.dead = true
			e.live--
			delete(e.procs, p)
			e.yield <- struct{}{}
		}()
		if p.killed {
			return // killed before first scheduling: never run fn
		}
		fn(p)
	}()
	e.After(0, "start:"+name, func() { e.wake(p) })
	return p
}

// Crash models a whole-engine failure at the current instant: every live
// process is unwound (its goroutine exits without running further user
// code) and every pending event is dropped. The clock is preserved.
// Processes are killed in spawn order so the unwind — and anything it
// observes — is deterministic. Must not be called from process context;
// call it from an event callback or between Run/Step calls.
func (e *Engine) Crash() {
	if e.current != nil {
		panic("sim: Crash called from process context")
	}
	victims := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, p := range victims {
		p.killed = true
		e.wake(p) // park (or the spawn wrapper) sees killed and unwinds
	}
	e.queue = nil
}

// wake transfers control to p and blocks the engine until p parks again or
// finishes. It must only be called from engine context (an event callback).
func (e *Engine) wake(p *Proc) {
	if p.dead {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yield
	e.current = prev
	if p.panicked != nil {
		panic(p.panicked)
	}
}

// park suspends the calling process until the engine wakes it. A killed
// process never parks again: it unwinds via the kill sentinel, which the
// spawn wrapper swallows (so cleanup defers run, then the goroutine
// exits) while handing control back to the engine.
func (p *Proc) park() {
	if p.killed {
		panic(killSentinel{})
	}
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Killed reports whether the process has been unwound by Engine.Crash.
// Long-running cleanup defers can consult it to skip work that would
// block.
func (p *Proc) Killed() bool { return p.killed }

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// SetOwner attaches an opaque accounting tag to the process. The kernel
// never interprets it; hardware models read it back through Owner to
// attribute the work a process drives (see energy.Charger). Processes
// spawned from this process while the tag is set inherit it (see Go), so
// a query's whole process tree charges one account.
func (p *Proc) SetOwner(o any) { p.owner = o }

// Owner reports the tag set by SetOwner, or nil.
func (p *Proc) Owner() any { return p.owner }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Proc) Now() float64 { return p.eng.now }

// Sleep suspends the process for d seconds of simulated time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %q", d, p.name))
	}
	e := p.eng
	e.After(d, "wake:"+p.name, func() { e.wake(p) })
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
