package sim

import "fmt"

// Resource is a counted resource (CPU cores, a disk's single actuator, a
// memory budget) with FIFO queueing. Acquire blocks the calling process
// until the requested units are available; waiters are served strictly in
// arrival order, which keeps simulations deterministic and starvation-free.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// onBusyChange, if set, is invoked whenever the number of busy units
	// changes. Hardware models use it to adjust device power draw.
	onBusyChange func(inUse int)
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given unit capacity.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive, got %d", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity reports the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse reports the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Waiters reports the number of blocked acquisitions.
func (r *Resource) Waiters() int { return len(r.waiters) }

// OnBusyChange registers a callback fired whenever InUse changes.
func (r *Resource) OnBusyChange(fn func(inUse int)) { r.onBusyChange = fn }

// Acquire blocks p until n units are available and then takes them.
// n must be in [1, capacity] or the process could never be satisfied.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of resource %q (capacity %d)", n, r.name, r.capacity))
	}
	// FIFO: even if units are free, queue behind existing waiters so a
	// large request cannot be starved by a stream of small ones.
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.grant(n)
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	p.park()
}

// TryAcquire takes n units if immediately available, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: try-acquire %d of resource %q (capacity %d)", n, r.name, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.grant(n)
		return true
	}
	return false
}

// Release returns n units and wakes as many queued waiters as now fit.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d of resource %q with %d in use", n, r.name, r.inUse))
	}
	r.inUse -= n
	r.notify()
	r.dispatch()
}

// Reset forcibly returns all units and drops all waiters. It is only
// meaningful after Engine.Crash has unwound every process that could
// hold or wait on the resource; recovery uses it to bring devices back
// to a quiescent state.
func (r *Resource) Reset() {
	r.inUse = 0
	r.waiters = nil
	r.notify()
}

// Use acquires n units, holds them for d seconds, and releases them.
func (r *Resource) Use(p *Proc, n int, d float64) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

func (r *Resource) grant(n int) {
	r.inUse += n
	r.notify()
}

func (r *Resource) notify() {
	if r.onBusyChange != nil {
		r.onBusyChange(r.inUse)
	}
}

// dispatch wakes waiters (in FIFO order) whose requests now fit. Wakeups
// are scheduled as zero-delay events so they interleave deterministically
// with the releasing process.
func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.grant(w.n)
		p := w.p
		r.eng.After(0, "grant:"+r.name, func() { r.eng.wake(p) })
	}
}

// Cond is a condition variable for simulated processes.
type Cond struct {
	eng     *Engine
	name    string
	waiters []*Proc
}

// NewCond returns a condition variable.
func NewCond(e *Engine, name string) *Cond {
	return &Cond{eng: e, name: name}
}

// Wait suspends p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.After(0, "signal:"+c.name, func() { c.eng.wake(p) })
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p := p
		c.eng.After(0, "broadcast:"+c.name, func() { c.eng.wake(p) })
	}
}

// Waiting reports the number of blocked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Mailbox is an unbounded FIFO queue connecting simulated processes;
// Get blocks while the mailbox is empty.
type Mailbox[T any] struct {
	eng   *Engine
	name  string
	items []T
	cond  *Cond
}

// NewMailbox returns an empty mailbox.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name, cond: NewCond(e, "mbox:"+name)}
}

// Put enqueues v and wakes one waiting consumer.
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	m.cond.Signal()
}

// Get dequeues the oldest item, blocking while the mailbox is empty.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.cond.Wait(p)
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v
}

// TryGet dequeues without blocking, reporting whether an item was present.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Len reports the queued item count.
func (m *Mailbox[T]) Len() int { return len(m.items) }
