package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, "c", func() { got = append(got, 3) })
	e.At(1, "a", func() { got = append(got, 1) })
	e.At(2, "b", func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.At(5, name, func() { got = append(got, name) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "xyz" {
		t.Fatalf("same-time events not FIFO: %v", got)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "later", func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, "past", func() {})
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake float64
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 2.5 {
		t.Fatalf("woke at %v, want 2.5", wake)
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d, want 0", e.Live())
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(float64(i % 3))
				log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				p.Sleep(1)
				log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic interleaving:\n%v\n%v", a, b)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var ends []float64
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("q%d", i), func(p *Proc) {
			r.Use(p, 1, 10)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ends) != "[10 20 30]" {
		t.Fatalf("unit resource did not serialize: %v", ends)
	}
}

func TestResourceParallelism(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2) // two cores
	var ends []float64
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("q%d", i), func(p *Proc) {
			r.Use(p, 1, 10)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ends) != "[10 10 20 20]" {
		t.Fatalf("2-wide resource wrong completion times: %v", ends)
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	// A big request queued behind small ones must not be bypassed.
	e := NewEngine()
	r := NewResource(e, "mem", 2)
	var order []string
	e.Go("small1", func(p *Proc) { r.Use(p, 1, 10); order = append(order, "small1") })
	e.Go("big", func(p *Proc) {
		p.Sleep(1) // arrive second
		r.Use(p, 2, 10)
		order = append(order, "big")
	})
	e.Go("small2", func(p *Proc) {
		p.Sleep(2) // arrive third; one unit is free but must queue behind big
		r.Use(p, 1, 10)
		order = append(order, "small2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[small1 big small2]" {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestResourceBusyCallback(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var transitions []int
	r.OnBusyChange(func(n int) { transitions = append(transitions, n) })
	e.Go("q", func(p *Proc) { r.Use(p, 1, 5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(transitions) != "[1 0]" {
		t.Fatalf("busy transitions = %v, want [1 0]", transitions)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release(1)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", r.InUse())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		// never releases, then blocks forever on a second acquire
		r.Acquire(p, 1)
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Go("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	_ = e.Run()
	t.Fatal("Run should have panicked")
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(1, "a", func() { fired = append(fired, 1) })
	e.At(5, "b", func() { fired = append(fired, 5) })
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fired) != "[1]" || e.Now() != 3 {
		t.Fatalf("RunUntil: fired=%v now=%v", fired, e.Now())
	}
	if err := e.RunUntil(2); err == nil {
		t.Fatal("RunUntil into the past should error")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fired) != "[1 5]" {
		t.Fatalf("remaining events not run: %v", fired)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "c")
	var woke []string
	for _, n := range []string{"a", "b", "c"} {
		n := n
		e.Go(n, func(p *Proc) {
			c.Wait(p)
			woke = append(woke, n)
		})
	}
	e.At(1, "signal", func() { c.Signal() })
	e.At(2, "broadcast", func() { c.Broadcast() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(woke) != "[a b c]" {
		t.Fatalf("cond wake order = %v", woke)
	}
}

func TestMailbox(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox[int](e, "jobs")
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1)
			mb.Put(i * 10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[10 20 30]" {
		t.Fatalf("mailbox order = %v", got)
	}
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox should fail")
	}
}

// Property: for any workload of jobs on a k-wide resource, the makespan is
// at least the critical bound max(total/k, longest job) and the resource is
// never over-committed.
func TestResourceInvariant(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		k := int(width%4) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "r", k)
		over := false
		r.OnBusyChange(func(n int) {
			if n > k || n < 0 {
				over = true
			}
		})
		var total, longest float64
		njobs := rng.Intn(12) + 1
		for i := 0; i < njobs; i++ {
			d := float64(rng.Intn(100)+1) / 10
			total += d
			if d > longest {
				longest = d
			}
			e.Go(fmt.Sprintf("j%d", i), func(p *Proc) { r.Use(p, 1, d) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		lower := total / float64(k)
		if longest > lower {
			lower = longest
		}
		return !over && e.Now() >= lower-1e-9 && e.Now() <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
