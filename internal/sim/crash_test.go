package sim

import (
	"reflect"
	"testing"
)

// TestCrashUnwindsEverything: a crash kills every live process — parked
// in a sleep, a resource queue, anywhere — running their deferred
// cleanups in spawn order, drops every pending event, preserves the
// clock, and leaves the engine usable for recovery.
func TestCrashUnwindsEverything(t *testing.T) {
	e := NewEngine()
	res := NewResource(e, "res", 1)
	var cleanups []string
	e.Go("holder", func(p *Proc) {
		defer func() { cleanups = append(cleanups, "holder") }()
		res.Acquire(p, 1)
		p.Sleep(100)
		res.Release(1)
	})
	e.Go("waiter", func(p *Proc) {
		defer func() { cleanups = append(cleanups, "waiter") }()
		res.Acquire(p, 1)
		res.Release(1)
	})
	if err := e.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 2 {
		t.Fatalf("live = %d before crash", e.Live())
	}

	e.Crash()

	if e.Live() != 0 {
		t.Fatalf("live = %d after crash: %v", e.Live(), e.LiveNames())
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events survived the crash", e.Pending())
	}
	if e.Now() != 1 {
		t.Fatalf("clock moved across the crash: %v", e.Now())
	}
	if !reflect.DeepEqual(cleanups, []string{"holder", "waiter"}) {
		t.Fatalf("cleanup order = %v, want spawn order", cleanups)
	}

	// Recovery: reset the resource the killed holder still held, then the
	// engine must run new work normally.
	res.Reset()
	ran := false
	e.Go("post-crash", func(p *Proc) {
		res.Use(p, 1, 0.5)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("post-crash process never ran")
	}
}

// TestCrashKillsUnstartedProc: a process spawned but not yet scheduled
// never runs its body.
func TestCrashKillsUnstartedProc(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Go("never", func(p *Proc) { ran = true })
	e.Crash()
	if ran {
		t.Fatal("killed-before-start process ran")
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d", e.Live())
	}
}

// TestCrashFromProcessContextPanics: Crash models a power failure
// observed from outside the simulation; calling it from inside a process
// is a driver bug and must panic rather than deadlock.
func TestCrashFromProcessContextPanics(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Crash from process context did not panic")
			}
		}()
		e.Crash()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
