// Package core assembles the paper's system: an energy-aware database
// engine running on simulated, power-metered hardware. It wires the
// device models, storage volumes, buffer pool, WAL, SQL front end and the
// dual-objective optimizer into a single DB handle whose every query
// returns an energy report alongside its rows.
package core

import (
	"fmt"
	"sort"

	"energydb/internal/buffer"
	"energydb/internal/compress"
	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/fault"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/sched"
	"energydb/internal/sim"
	"energydb/internal/sql"
	"energydb/internal/storage"
	"energydb/internal/table"
	"energydb/internal/tpch"
	"energydb/internal/wal"
)

// Config selects the simulated hardware and engine policies.
type Config struct {
	// Server is the machine to simulate; see hw.DL785, hw.ScanRig,
	// hw.SmallServer.
	Server hw.ServerSpec

	// PageBytes is the volume page size (default 64 KiB).
	PageBytes int64
	// VolumeLayout is RAID-0 or RAID-5 across the server's data devices
	// (default striped; the paper's Figure 1 system used RAID-5).
	VolumeLayout storage.Layout
	// BlockRows is the placement block size in rows (default 8192).
	BlockRows int

	// PoolPages sizes the buffer pool (default 1024 pages); PoolPolicy is
	// "lru", "clock", "2q" or "energy" (default "lru").
	PoolPages  int
	PoolPolicy string

	// Objective is what the optimizer minimises (default MinTime — the
	// classical DBMS; switch to MinEnergy for the paper's proposal).
	Objective opt.Objective

	// EnergyMode selects how the energy objectives price joules:
	// opt.MarginalEnergy (default, busy-minus-idle only) or
	// opt.IdleFloorAware (plus IdleWatts × Seconds, so MinEnergy agrees
	// with the wall meter).
	EnergyMode opt.EnergyMode

	// SchedPolicy selects the admission policy: "fifo" (default,
	// arrival order with fair-share grants), "edf" (earliest deadline
	// first), or "energy" (EDF for deadline work, consolidated wide
	// grants for background work).
	SchedPolicy string

	// HoldCores is the energy policy's DVFS headroom: cores held back
	// from background grants so arriving deadline work finds a free core.
	// Only meaningful with SchedPolicy "energy".
	HoldCores int

	// DVFS exposes the CPU's P-states to the planner (the optimizer
	// prices wide-and-slow at a low P-state against narrow-and-fast at
	// P0) and actuates the chosen operating point while the query runs:
	// a per-query vote governor keeps the CPU at the fastest P-state any
	// running query planned for.
	DVFS bool

	// ReGrant lets a running query widen when a completion frees cores
	// and nothing is queued: the query replans at the wider grant and
	// restarts its pipeline from the last restart point (results are
	// unaffected; work done so far stays on its energy account).
	ReGrant bool

	// DRAMWattPerByte overrides the energy model's memory holding power;
	// 0 keeps the datasheet-derived value.
	DRAMWattPerByte float64

	// WALBatch enables a group-commit log on the last device with the
	// given batching factor (0 disables the WAL).
	WALBatch   int
	WALTimeout float64

	// RetryMax is how many times a query is re-executed after a
	// transient device fault (fault.ErrTransientIO) before the error is
	// surfaced; 0 disables retry. RetryBackoff is the first retry's
	// simulated-time delay, doubled per attempt (default 2 ms when
	// RetryMax > 0).
	RetryMax     int
	RetryBackoff float64

	// Variants restricts which physical placements are built and offered
	// to the optimizer (subset of "col/default", "col/raw", "row/raw");
	// empty means all three. Experiments use it to pin the physical
	// design, e.g. to mimic the lightly-compressed commercial system of
	// the paper's Figure 1.
	Variants []string

	// HostIOBandwidth caps the aggregate device-to-host transfer rate
	// (bytes/s), modelling the shared SAS/PCIe path; 0 disables the cap.
	HostIOBandwidth float64

	// IORunPages caps pages per coalesced device request (0 = adaptive).
	IORunPages int
}

// DB is an open energy-aware database over one simulated server.
type DB struct {
	Srv  *hw.Server
	Vol  *storage.Volume
	Pool *buffer.Pool
	Log  *wal.Log

	Catalog   *opt.Catalog
	Env       *opt.Env
	Objective opt.Objective

	// Adm is the engine-resident admission controller: queries submitted
	// through sessions are granted their degree of parallelism from the
	// cores free at admission time, and queue when the box is saturated.
	Adm *sched.Admission
	// Attr splits the whole-server meter among concurrent queries.
	Attr *energy.Attributor

	cfg         Config
	schemas     map[string]*table.Schema
	mem         map[string]*table.Table // in-memory (unplaced or dirty) tables
	dirty       map[string]bool
	epochs      map[string]int64 // placement epoch per table, bumped by place()
	durableRows map[string]int64 // rows covered by the last placement (the checkpoint)
	inflight    map[int64]*Rows  // submitted-or-pending statements not yet finished
	pvotes      map[int64]int    // per-query P-state votes (DVFS governor)
	fileSeq     int32
	queries     int64
	crashes     int64
	nextSess    int64
	nextQuery   int64
}

// Open builds the simulated machine and an empty database on it.
func Open(cfg Config) (*DB, error) {
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 64 << 10
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 8192
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 1024
	}
	srv := hw.NewServer(cfg.Server)

	var devs []storage.BlockDevice
	var logDev storage.BlockDevice
	switch {
	case len(srv.SSDs) > 0:
		for _, s := range srv.SSDs {
			devs = append(devs, s)
		}
	case len(srv.Disks) > 0:
		for _, d := range srv.Disks {
			devs = append(devs, d)
		}
	default:
		return nil, fmt.Errorf("core: server %q has no storage devices", cfg.Server.Name)
	}
	if cfg.WALBatch > 0 {
		logDev = devs[len(devs)-1]
		if len(devs) > 1 {
			devs = devs[:len(devs)-1] // dedicate the last device to the log
		}
	}
	vol := storage.NewVolume("data", cfg.VolumeLayout, cfg.PageBytes, devs)
	if cfg.HostIOBandwidth > 0 {
		vol.SetHostLink(srv.Eng, cfg.HostIOBandwidth)
	}
	vol.MaxRunPages = cfg.IORunPages

	var policy buffer.Policy
	switch cfg.PoolPolicy {
	case "", "lru":
		policy = buffer.NewLRU()
	case "clock":
		policy = buffer.NewClock()
	case "2q":
		policy = buffer.NewTwoQ()
	case "energy":
		policy = buffer.NewEnergyAware()
	default:
		return nil, fmt.Errorf("core: unknown pool policy %q", cfg.PoolPolicy)
	}
	pool := buffer.NewPool(cfg.PoolPages, policy)
	pool.PageBytes = cfg.PageBytes
	pool.DRAM = srv.DRAM

	var schedPol sched.Policy
	switch cfg.SchedPolicy {
	case "", "fifo":
		schedPol = sched.FIFO{}
	case "edf":
		schedPol = sched.EDF{}
	case "energy":
		schedPol = sched.EnergyAware{HoldFree: cfg.HoldCores}
	default:
		return nil, fmt.Errorf("core: unknown sched policy %q", cfg.SchedPolicy)
	}
	adm := sched.NewAdmissionPolicy(srv.Eng, srv.CPU.Cores(), 0, schedPol)
	adm.ReGrant = cfg.ReGrant

	db := &DB{
		Srv: srv, Vol: vol, Pool: pool,
		Catalog:     opt.NewCatalog(),
		Objective:   cfg.Objective,
		Adm:         adm,
		Attr:        energy.NewAttributor(srv.Meter),
		cfg:         cfg,
		schemas:     map[string]*table.Schema{},
		mem:         map[string]*table.Table{},
		dirty:       map[string]bool{},
		epochs:      map[string]int64{},
		durableRows: map[string]int64{},
		inflight:    map[int64]*Rows{},
		pvotes:      map[int64]int{},
	}
	if cfg.RetryMax > 0 && cfg.RetryBackoff == 0 {
		db.cfg.RetryBackoff = 0.002
	}
	if cfg.WALBatch > 0 {
		if cfg.WALTimeout == 0 && cfg.WALBatch > 1 {
			cfg.WALTimeout = 0.005 // bound commit latency when batches trickle
		}
		db.Log = wal.NewLog(srv.Eng, logDev, cfg.WALBatch, cfg.WALTimeout)
	}
	db.Env = db.buildEnv()
	return db, nil
}

// buildEnv derives the optimizer's cost-model environment from the
// simulated hardware — the "simple models" of §4.1.
func (db *DB) buildEnv() *opt.Env {
	spec := db.cfg.Server
	env := &opt.Env{
		CPUFreqHz:      spec.CPU.FreqHz,
		Cores:          spec.CPU.Cores,
		PageBytes:      db.cfg.PageBytes,
		CPUWattPerCore: float64(spec.CPU.ActivePerCore),
		Costs:          exec.DefaultCosts(),
	}
	if len(db.Srv.SSDs) > 0 {
		s := spec.SSD
		env.ScanBW = s.ReadBW * float64(db.Vol.Devices())
		env.PageLatency = s.ReadLatency
		env.StorageWatt = float64(s.ActiveWatts-s.IdleWatts) * float64(db.Vol.Devices())
		if env.StorageWatt <= 0 {
			env.StorageWatt = float64(s.ActiveWatts) * float64(db.Vol.Devices())
		}
	} else {
		d := spec.Disk
		env.ScanBW = d.SeqReadBW * float64(db.Vol.Devices()) * 0.85 // stripe efficiency
		env.PageLatency = (d.AvgSeek + d.RotLatency) / 16           // amortised across a run
		env.StorageWatt = float64(d.ActiveWatts-d.IdleWatts) * float64(db.Vol.Devices())
	}
	if db.Srv.DRAM != nil {
		env.DRAMWattPerByte = db.Srv.DRAM.HoldingPower()
	} else {
		env.DRAMWattPerByte = 1.3e-9
	}
	if db.cfg.DRAMWattPerByte > 0 {
		env.DRAMWattPerByte = db.cfg.DRAMWattPerByte
	}
	env.EnergyMode = db.cfg.EnergyMode
	env.IdleWatts = float64(db.Srv.IdlePower())
	if db.cfg.DVFS {
		for _, ps := range db.Srv.CPU.Spec().PStates {
			env.PStates = append(env.PStates, opt.PStatePoint{
				Name: ps.Name, FreqScale: ps.FreqScale, PowerScale: ps.PowerScale})
		}
	}
	return env
}

// SchedStats returns a copy of the admission controller's counters
// (mean wait, expirations, peak queue depth, re-grants, ...), so benches
// and harnesses need not reach into scheduler internals.
func (db *DB) SchedStats() sched.Stats { return db.Adm.Stats() }

// votePState records a running query's planned CPU operating point and
// applies the governor: the CPU runs at the *fastest* (lowest-index)
// P-state any running query planned for, so a deadline query at P0 is
// never slowed by a background query's wide-and-slow plan — the
// background query just finishes a little earlier than priced.
func (db *DB) votePState(qid int64, ps int) {
	db.pvotes[qid] = ps
	db.applyPState()
}

// dropPState removes a finished query's vote; with no votes the CPU
// returns to P0.
func (db *DB) dropPState(qid int64) {
	delete(db.pvotes, qid)
	db.applyPState()
}

func (db *DB) applyPState() {
	best := 0
	first := true
	for _, ps := range db.pvotes {
		if first || ps < best {
			best, first = ps, false
		}
	}
	db.Srv.CPU.SetPState(best)
}

// CreateTable registers an empty in-memory table.
func (db *DB) CreateTable(s *table.Schema) error {
	if _, dup := db.schemas[s.Name]; dup {
		return fmt.Errorf("core: table %q already exists", s.Name)
	}
	db.schemas[s.Name] = s
	db.mem[s.Name] = table.NewTable(s)
	db.dirty[s.Name] = true
	return nil
}

// LoadTable registers a populated in-memory table (e.g. from the TPC-H
// generator) for placement on first use.
func (db *DB) LoadTable(t *table.Table) error {
	if _, dup := db.schemas[t.Schema.Name]; dup {
		return fmt.Errorf("core: table %q already exists", t.Schema.Name)
	}
	db.schemas[t.Schema.Name] = t.Schema
	db.mem[t.Schema.Name] = t
	db.dirty[t.Schema.Name] = true
	return nil
}

// Insert appends rows to a table; they become visible to queries after
// the next (re)placement, and are logged when a WAL is configured. It is
// the synchronous path: with a WAL it spawns a commit process and drains
// the engine, so it must not be called from event context — arrival-time
// inserts go through ExecAt instead.
func (db *DB) Insert(name string, rows [][]table.Value) error {
	coerced, err := db.coerceInsert(name, rows)
	if err != nil {
		return err
	}
	if db.Log != nil {
		committed := false
		err := db.run("wal", func(p *sim.Proc) error {
			if e := db.logInsert(p, name, coerced); e != nil {
				return e
			}
			committed = true
			return nil
		})
		if err != nil {
			return err
		}
		if !committed {
			// The engine crashed while the commit was in flight.
			return fmt.Errorf("core: insert into %q: %w", name, fault.ErrCrashed)
		}
	}
	db.applyInsert(name, coerced)
	return nil
}

// coerceInsert validates and coerces a whole insert batch before any row
// is appended: a type error on row k must not leave rows 0..k-1 visible.
func (db *DB) coerceInsert(name string, rows [][]table.Value) ([][]table.Value, error) {
	s, ok := db.schemas[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", name)
	}
	coerced := make([][]table.Value, len(rows))
	for ri, r := range rows {
		if len(r) != len(s.Cols) {
			return nil, fmt.Errorf("core: insert of %d values into %d columns", len(r), len(s.Cols))
		}
		cr := make([]table.Value, len(r))
		for i, v := range r {
			if v.Type.Physical() != s.Cols[i].Type.Physical() {
				return nil, fmt.Errorf("core: column %q wants %v, got %v", s.Cols[i].Name, s.Cols[i].Type, v.Type)
			}
			v.Type = s.Cols[i].Type
			cr[i] = v
		}
		coerced[ri] = cr
	}
	return coerced, nil
}

// logInsert makes a coerced insert durable from inside the committing
// process p. Write-ahead: the record carries the real row data and the
// table's current row count, so crash recovery can rebuild the table
// from its placement checkpoint plus the log suffix; a failed or crashed
// commit leaves no phantom rows behind.
func (db *DB) logInsert(p *sim.Proc, name string, coerced [][]table.Value) error {
	payload := encodeInsert(name, db.schemas[name], int64(db.mem[name].Rows()), coerced)
	if _, e := db.Log.Append(p, payload); e != nil {
		return fmt.Errorf("core: insert into %q not durable: %w", name, e)
	}
	return nil
}

// applyInsert appends a coerced batch and marks the table dirty for
// re-placement on next use.
func (db *DB) applyInsert(name string, coerced [][]table.Value) {
	t := db.mem[name]
	for _, r := range coerced {
		t.AppendRow(r...)
	}
	db.dirty[name] = true
}

// place (re)places a table's variants on the data volume.
func (db *DB) place(name string) error {
	t := db.mem[name]
	if t == nil {
		return fmt.Errorf("core: unknown table %q", name)
	}
	db.fileSeq += 3
	variants := make([]opt.Variant, 0, 3)
	want := func(name string) bool {
		if len(db.cfg.Variants) == 0 {
			return true
		}
		for _, v := range db.cfg.Variants {
			if v == name {
				return true
			}
		}
		return false
	}
	if t.Rows() > 0 {
		if want("col/default") {
			colDef, err := exec.PlaceColumnMajor(t, db.Vol, db.fileSeq, db.cfg.BlockRows, tpch.DefaultCodecs(t.Schema))
			if err != nil {
				return err
			}
			variants = append(variants, opt.Variant{Name: "col/default", ST: colDef})
		}
		if want("col/raw") {
			colRaw, err := exec.PlaceColumnMajor(t, db.Vol, db.fileSeq+1, db.cfg.BlockRows, tpch.RawCodecs(t.Schema))
			if err != nil {
				return err
			}
			variants = append(variants, opt.Variant{Name: "col/raw", ST: colRaw})
		}
		if want("row/raw") {
			rowRaw, err := exec.PlaceRowMajor(t, db.Vol, db.fileSeq+2, db.cfg.BlockRows, compress.Raw)
			if err != nil {
				return err
			}
			variants = append(variants, opt.Variant{Name: "row/raw", ST: rowRaw})
		}
		if len(variants) == 0 {
			return fmt.Errorf("core: config.Variants selects no placements")
		}
	} else {
		// Empty tables still need a (degenerate) placement for scans.
		empty, err := exec.PlaceColumnMajor(t, db.Vol, db.fileSeq, db.cfg.BlockRows, tpch.RawCodecs(t.Schema))
		if err != nil {
			return err
		}
		variants = append(variants, opt.Variant{Name: "col/raw", ST: empty})
	}
	db.Catalog.Add(name, &opt.Placement{Variants: variants, Stats: opt.Analyze(t)})
	db.dirty[name] = false
	db.epochs[name]++ // invalidates plans cached against the old placement
	// Placement doubles as the table's checkpoint: every placed row is on
	// the (crash-surviving) data volume, so recovery keeps this prefix
	// and replays only WAL records past it.
	db.durableRows[name] = int64(t.Rows())
	return nil
}

// Result is a completed query with its energy account.
type Result struct {
	Rows    *table.Table
	Plan    *opt.Plan
	Elapsed energy.Seconds // submission to completion (includes Wait)
	Joules  energy.Joules  // whole-server energy during the query's window
	Report  string         // per-component breakdown (empty for discarded queries)

	// Attributed is this query's share of the server's energy: the
	// marginal joules its own processes were charged plus an idle-floor
	// share proportional to its wall-clock overlap. Across concurrent
	// sessions the attributed joules sum to the whole-server meter —
	// which the whole-window Joules above cannot do once queries overlap.
	Attributed energy.Joules
	Marginal   energy.Joules // energy charged directly by this query's processes
	Shared     energy.Joules // idle-floor (residual) share

	Wait     energy.Seconds // admission queueing delay
	Granted  int            // cores granted at admission (caps pipeline DOP)
	RowCount int64          // rows produced (survives Rows.Discard)
}

// Efficiency reports rows per joule — the paper's work/energy metric.
func (r *Result) Efficiency() energy.Efficiency {
	if r.Rows == nil {
		return 0
	}
	return energy.EfficiencyOf(float64(r.Rows.Rows()), r.Joules)
}

// Exec parses, plans and executes one SQL statement on the simulated
// machine, advancing its clock and meter. It is the single-query
// convenience path: a SELECT runs as a one-statement session — submitted
// to the admission controller (which, on an otherwise idle box, grants it
// every core), executed, and collected — so it carries the same
// attributed energy account as session queries. Multi-stream drivers use
// DB.Session directly; ExecAt schedules a non-SELECT at a future arrival
// time instead of committing now; the network front door (internal/server)
// exposes both over the wire.
func (db *DB) Exec(query string) (*Result, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch {
	case st.Create != nil:
		return &Result{}, db.CreateTable(table.NewSchema(st.Create.Name, st.Create.Cols...))
	case st.Insert != nil:
		return &Result{}, db.Insert(st.Insert.Table, st.Insert.Rows)
	default:
		return db.execSelect(st, query)
	}
}

// Plan compiles a SELECT without executing it (EXPLAIN).
func (db *DB) Plan(query string) (*opt.Plan, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if st.Select == nil {
		return nil, fmt.Errorf("core: only SELECT can be explained")
	}
	q, err := db.bind(st.Select)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(q, db.Catalog, db.Env, db.Objective)
}

func (db *DB) bind(sel *sql.SelectStmt) (*opt.Query, error) {
	q, err := sql.Bind(sel, func(rel string) (*table.Schema, bool) {
		s, ok := db.schemas[rel]
		return s, ok
	})
	if err != nil {
		return nil, err
	}
	// Place (or re-place) every referenced table that changed.
	for _, a := range q.Tables {
		rel := q.Rels[a]
		if db.dirty[rel] {
			if err := db.place(rel); err != nil {
				return nil, err
			}
		}
	}
	return q, nil
}

func (db *DB) execSelect(st *sql.Stmt, query string) (*Result, error) {
	q, err := db.bind(st.Select)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		plan, err := opt.Optimize(q, db.Catalog, db.Env, db.Objective)
		if err != nil {
			return nil, err
		}
		return &Result{Plan: plan}, nil
	}
	sess := db.Session()
	defer sess.Close()
	rows, err := newStmt(sess, query, q).Query()
	if err != nil {
		return nil, err
	}
	// Run the engine to completion (matching the pre-session Exec, which
	// drained after every statement), then collect.
	if err := db.Drain(); err != nil {
		return nil, err
	}
	return rows.Collect()
}

// NewCtx builds an execution context wired to this DB's hardware; the
// benchmark drivers use it to run plans inside their own processes.
func (db *DB) NewCtx(p *sim.Proc) *exec.Ctx {
	ctx := exec.NewCtx(p, db.Srv.CPU)
	ctx.DRAM = db.Srv.DRAM
	ctx.Pool = db.Pool
	ctx.Temp = db.Vol
	if db.Env.StorageWatt > 0 && db.Env.ScanBW > 0 {
		perPage := float64(db.cfg.PageBytes) / db.Env.ScanBW
		ctx.PageRefetchJoules = perPage * db.Env.StorageWatt
	}
	return ctx
}

// run executes fn as a simulated process and drains the engine.
func (db *DB) run(name string, fn func(p *sim.Proc) error) error {
	var err error
	db.Srv.Eng.Go(name, func(p *sim.Proc) {
		err = fn(p)
	})
	if rerr := db.Srv.Eng.Run(); rerr != nil {
		return rerr
	}
	return err
}

// Queries reports how many SELECTs have completed (via Exec or sessions).
func (db *DB) Queries() int64 { return db.queries }

// Crashes reports how many times the engine has crashed and recovered.
func (db *DB) Crashes() int64 { return db.crashes }

// Schema returns a registered table's schema.
func (db *DB) Schema(name string) (*table.Schema, bool) {
	s, ok := db.schemas[name]
	return s, ok
}

// Tables lists registered table names, sorted, so EXPLAIN output,
// examples and golden tests are deterministic.
func (db *DB) Tables() []string {
	out := make([]string, 0, len(db.schemas))
	for n := range db.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
