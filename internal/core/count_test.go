package core

import (
	"strings"
	"testing"

	"energydb/internal/hw"
)

// countDB builds a small database with a fact table and a dimension so the
// count-only plan family (seed-verified broken: zero-column batches
// reported zero rows) can be exercised across scans, filters and joins.
func countDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Server: hw.SmallServer(4)})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE t (a BIGINT, b BIGINT)",
		"INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)",
		"CREATE TABLE d (k BIGINT, name TEXT)",
		"INSERT INTO d VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'y')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	return db
}

// one runs a query expected to produce a single int64 value.
func one(t *testing.T, db *DB, query string) int64 {
	t.Helper()
	res, err := db.Exec(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	if res.Rows.Rows() != 1 {
		t.Fatalf("%s: %d rows, want 1", query, res.Rows.Rows())
	}
	return res.Rows.Column(0).I[0]
}

// TestCountStarGlobal is the regression for the count-only plan family:
// global COUNT(*) — plain, with a WHERE clause, and over a join — used to
// return 0 because the aggregate's input projection emitted zero-column
// batches whose row count was inferred from a missing first vector.
func TestCountStarGlobal(t *testing.T) {
	db := countDB(t)
	if got := one(t, db, "SELECT COUNT(*) FROM t"); got != 4 {
		t.Errorf("COUNT(*) = %d, want 4", got)
	}
	if got := one(t, db, "SELECT COUNT(*) FROM t WHERE b > 15"); got != 3 {
		t.Errorf("COUNT(*) WHERE = %d, want 3", got)
	}
	if got := one(t, db, "SELECT COUNT(*) FROM t JOIN d ON a = k"); got != 4 {
		t.Errorf("COUNT(*) JOIN = %d, want 4", got)
	}
	if got := one(t, db, "SELECT COUNT(*) FROM t JOIN d ON a = k WHERE name = 'x'"); got != 2 {
		t.Errorf("COUNT(*) JOIN WHERE = %d, want 2", got)
	}
	// The plain count-only plan no longer needs a sentinel column: the
	// scan projects nothing and emits cardinality from placement metadata.
	plan, err := db.Plan("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if expl := plan.Explain(); !strings.Contains(expl, "cols=0") {
		t.Errorf("count-only plan still reads columns:\n%s", expl)
	}
}

// TestCountStarJoinGroupBy pins the JOIN + GROUP BY COUNT(*) output: the
// count column must survive the optimizer's final output projection with
// correct per-group values.
func TestCountStarJoinGroupBy(t *testing.T) {
	db := countDB(t)
	res, err := db.Exec("SELECT name, COUNT(*) FROM t JOIN d ON a = k GROUP BY name ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", res.Rows.Rows())
	}
	if got := res.Rows.Column(0).S; got[0] != "x" || got[1] != "y" {
		t.Errorf("groups = %v, want [x y]", got)
	}
	if got := res.Rows.Column(1).I; got[0] != 2 || got[1] != 2 {
		t.Errorf("counts = %v, want [2 2]", got)
	}
	// Aggregate-first select order must keep the count column too.
	res, err = db.Exec("SELECT COUNT(*), name FROM t JOIN d ON a = k WHERE b >= 20 GROUP BY name ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows.Column(0).I; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("counts = %v, want [1 2]", got)
	}
}

// TestLimitZero pins LIMIT 0 end to end: an empty result with the right
// schema, not a panic on the zero-length slice path and not a full scan.
func TestLimitZero(t *testing.T) {
	db := countDB(t)
	res, err := db.Exec("SELECT a, b FROM t LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Rows() != 0 {
		t.Fatalf("LIMIT 0 rows = %d, want 0", res.Rows.Rows())
	}
	if len(res.Rows.Schema.Cols) != 2 {
		t.Fatalf("LIMIT 0 schema = %v", res.Rows.Schema)
	}
	// LIMIT 1 on the same plan shape still works.
	res, err = db.Exec("SELECT a, b FROM t LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Rows() != 1 {
		t.Fatalf("LIMIT 1 rows = %d, want 1", res.Rows.Rows())
	}
}
