package core

import (
	"math"
	"strings"
	"testing"

	"energydb/internal/hw"
)

// TestExecAtDeferredInsert: an insert scheduled at a future simulated
// time commits at that time (not at submission), is billed to its own
// energy account, and the ledger closes: meter == Σ attributed +
// unattributed after the drain.
func TestExecAtDeferredInsert(t *testing.T) {
	db, err := Open(Config{Server: hw.SmallServer(2), WALBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE events (tenant BIGINT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	d, err := db.ExecAt(5.0, `INSERT INTO events VALUES (1, 2.5), (2, 0.25)`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Done() {
		t.Fatal("deferred insert ran before the clock reached its arrival")
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if now := db.Srv.Eng.Now(); now < 5.0 {
		t.Fatalf("clock at %.3f, insert was scheduled for t=5", now)
	}
	if d.Attributed() <= 0 {
		t.Fatalf("deferred insert attributed %.6fJ, want > 0 (WAL commit bills)", float64(d.Attributed()))
	}
	res, err := db.Exec(`SELECT COUNT(*) AS n FROM events`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows.Column(0).I[0]; n != 2 {
		t.Fatalf("%d rows visible, want 2", n)
	}

	meter, unattr := db.Ledger()
	attributed := float64(d.Attributed()) + float64(res.Attributed)
	if diff := math.Abs(float64(meter) - (attributed + float64(unattr))); diff > 1e-6 {
		t.Fatalf("ledger broken: meter %.6f != attributed %.6f + unattributed %.6f (diff %.2e)",
			float64(meter), attributed, float64(unattr), diff)
	}
}

// TestExecAtValidation: bad statements fail synchronously, before
// anything is scheduled.
func TestExecAtValidation(t *testing.T) {
	db, err := Open(Config{Server: hw.SmallServer(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE kv (k BIGINT, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecAt(1, `INSERT INTO missing VALUES (1, 'x')`); err == nil {
		t.Fatal("insert into unknown table scheduled")
	}
	if _, err := db.ExecAt(1, `INSERT INTO kv VALUES (1, 2)`); err == nil {
		t.Fatal("type-mismatched insert scheduled")
	}
	if _, err := db.ExecAt(1, `SELECT k FROM kv`); err == nil {
		t.Fatal("SELECT accepted by ExecAt")
	}
	if got := db.Srv.Eng.Live(); got != 0 {
		t.Fatalf("%d live processes after rejected statements", got)
	}
}

// TestSessionExplainRows: Explain returns the chosen plan as rows with
// the expected schema, a scan row naming the table, and positive cost
// estimates — the wire-encodable form of EXPLAIN.
func TestSessionExplainRows(t *testing.T) {
	db, err := Open(Config{Server: parallelRig(), BlockRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	loadTinyTPCH(t, db, 0.01)
	s := db.Session()
	defer s.Close()

	rows, err := s.Explain(`SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 25`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rows() == 0 {
		t.Fatal("empty explain")
	}
	if got := len(rows.Schema.Cols); got != 6 {
		t.Fatalf("%d explain columns, want 6", got)
	}
	var sawScan bool
	for i := 0; i < rows.Rows(); i++ {
		op := rows.Column(0).S[i]
		if strings.Contains(op, "scan") {
			sawScan = true
			if !strings.Contains(rows.Column(1).S[i], "lineitem") {
				t.Fatalf("scan detail %q does not name the table", rows.Column(1).S[i])
			}
			if rows.Column(2).I[i] < 1 {
				t.Fatalf("scan dop %d < 1", rows.Column(2).I[i])
			}
		}
		if rows.Column(4).F[i] < 0 || rows.Column(5).F[i] < 0 {
			t.Fatalf("negative cost estimate on row %d", i)
		}
	}
	if !sawScan {
		t.Fatal("no scan row in explain output")
	}
	// EXPLAIN prefix is accepted too.
	if _, err := s.Explain(`EXPLAIN SELECT COUNT(*) AS n FROM lineitem`); err != nil {
		t.Fatal(err)
	}
	// Explain must not have executed anything.
	if got := db.Srv.Eng.Live(); got != 0 {
		t.Fatalf("%d live processes after Explain", got)
	}
}
