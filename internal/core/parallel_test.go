package core

import (
	"strings"
	"testing"

	"energydb/internal/hw"
	"energydb/internal/opt"
)

// parallelRig is a modern-flavoured machine where scans are CPU-bound: a
// multi-core CPU with a real idle floor in front of a fast, low-latency
// flash array. This is the regime the paper's §3 argument anticipates —
// once storage stops being the bottleneck, the only way to use the power
// you are paying for is to keep more cores busy and finish sooner.
func parallelRig() hw.ServerSpec {
	ssd := hw.FlashSSD2008()
	ssd.ReadBW *= 6        // ~480 MB/s per device
	ssd.ReadLatency /= 100 // deep NVMe-style queueing
	return hw.ServerSpec{
		Name: "par-rig",
		CPU: hw.CPUSpec{
			Name:          "xeon-8c",
			Cores:         8,
			FreqHz:        2.4e9,
			CyclesPerByte: 3.2,
			IdleWatts:     40,
			ActivePerCore: 15,
		},
		NumSSDs: 4,
		SSD:     ssd,
	}
}

// TestParallelScanRaceToIdleEndToEnd is the PR's acceptance test: a
// scan-heavy COUNT(*) … WHERE over the TPC-H lineitem generator, planned
// and executed end to end. On the 8-core machine the MinTime optimizer
// picks a parallel morsel-driven scan; against the same machine planned
// serial (Cores=1), simulated elapsed time must shrink while whole-server
// energy — idle floor included — stays flat or falls: finishing sooner
// amortises the watts the hardware draws either way.
func TestParallelScanRaceToIdleEndToEnd(t *testing.T) {
	const query = `SELECT COUNT(*) AS n FROM lineitem
		WHERE l_quantity < 25 AND l_discount > 0.02 AND l_extendedprice < 50000`

	measure := func(cores int) (elapsed, joules float64, n int64, explain string) {
		db, err := Open(Config{
			Server:    parallelRig(),
			Objective: opt.MinTime,
			BlockRows: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		loadTinyTPCH(t, db, 0.01)
		db.Env.Cores = cores // plan for this many cores; hardware unchanged
		res, err := db.Exec(query)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows.Rows() != 1 {
			t.Fatalf("COUNT(*) returned %d rows", res.Rows.Rows())
		}
		return float64(res.Elapsed), float64(res.Joules),
			res.Rows.Column(0).I[0], res.Plan.Explain()
	}

	t1, e1, n1, ex1 := measure(1)
	t8, e8, n8, ex8 := measure(8)

	if strings.Contains(ex1, "dop=") {
		t.Fatalf("serial plan went parallel:\n%s", ex1)
	}
	if !strings.Contains(ex8, "dop=") {
		t.Fatalf("8-core MinTime plan stayed serial:\n%s", ex8)
	}
	if n1 == 0 || n1 != n8 {
		t.Fatalf("counts differ: serial %d, parallel %d", n1, n8)
	}
	if t8 >= t1*0.75 {
		t.Fatalf("parallel scan not meaningfully faster: %.5fs vs %.5fs serial", t8, t1)
	}
	if e8 > e1*1.001 {
		t.Fatalf("parallel scan used more energy: %.4fJ vs %.4fJ serial", e8, e1)
	}
	t.Logf("rows=%d  serial: %.5fs %.4fJ  parallel: %.5fs %.4fJ (%.2fx faster, %.2fx energy)",
		n1, t1, e1, t8, e8, t1/t8, e8/e1)
}

// TestParallelPlanMatchesSerialResults runs a grouped aggregate above the
// parallel scan: every downstream operator (projection, hash aggregation,
// sort) must work unchanged across the merge boundary, and the result must
// be identical at any DOP because aggregation is order-insensitive.
func TestParallelPlanMatchesSerialResults(t *testing.T) {
	const query = `SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
		FROM lineitem WHERE l_discount > 0.01
		GROUP BY l_returnflag ORDER BY l_returnflag`

	run := func(cores int) [][2]interface{} {
		db, err := Open(Config{
			Server:    parallelRig(),
			Objective: opt.MinTime,
			BlockRows: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		loadTinyTPCH(t, db, 0.01)
		db.Env.Cores = cores
		res, err := db.Exec(query)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][2]interface{}, res.Rows.Rows())
		for i := range out {
			out[i] = [2]interface{}{
				res.Rows.Column(0).S[i] + "|" + res.Rows.Column(1).Value(i).String(),
				res.Rows.Column(2).F[i],
			}
		}
		return out
	}

	want := run(1)
	for _, cores := range []int{2, 8} {
		got := run(cores)
		if len(got) != len(want) {
			t.Fatalf("cores=%d: %d groups, want %d", cores, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cores=%d row %d: got %v, want %v", cores, i, got[i], want[i])
			}
		}
	}
}
