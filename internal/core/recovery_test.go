package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"energydb/internal/exec"
	"energydb/internal/fault"
	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/tpch"
)

func walDB(t *testing.T, retryMax int) *DB {
	t.Helper()
	db, err := Open(Config{
		Server:    hw.SmallServer(3), // two data disks + one log disk
		Objective: opt.MinTime,
		PageBytes: 16 << 10,
		BlockRows: 4096,
		WALBatch:  1,
		RetryMax:  retryMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// faultDB is smallDB with a pool too small to absorb a lineitem scan, so
// queries keep hitting the (faultable) disks instead of cached pages.
func faultDB(t *testing.T, retryMax int) *DB {
	t.Helper()
	db, err := Open(Config{
		Server:    hw.SmallServer(4),
		Objective: opt.MinTime,
		PageBytes: 16 << 10,
		BlockRows: 4096,
		PoolPages: 4,
		RetryMax:  retryMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func countRows(t *testing.T, db *DB, table string) int64 {
	t.Helper()
	res, err := db.Exec("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows.Column(0).I[0]
}

// sumQuery is the faultable workload: unlike COUNT(*), whose count-only
// plan reads zero bytes from the volume, a SUM must fetch the column, so
// scripted device faults actually fire.
const sumQuery = "SELECT SUM(l_orderkey) AS s FROM lineitem"

func sumOrderkeys(t *testing.T, db *DB) int64 {
	t.Helper()
	res, err := db.Exec(sumQuery)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows.Column(0).I[0]
}

// TestCrashRecoveryCommitBoundarySweep: crash after every commit
// boundary; the recovered table must hold exactly the committed prefix —
// no phantom rows, no lost commits — whether or not a placement
// checkpoint intervened.
func TestCrashRecoveryCommitBoundarySweep(t *testing.T) {
	const inserts = 5
	for boundary := 0; boundary <= inserts; boundary++ {
		for _, checkpoint := range []bool{false, true} {
			db := walDB(t, 0)
			if _, err := db.Exec("CREATE TABLE kv (k BIGINT, v DOUBLE)"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < boundary; i++ {
				stmt := fmt.Sprintf("INSERT INTO kv VALUES (%d, %d.5), (%d, %d.5)",
					2*i, 2*i, 2*i+1, 2*i+1)
				if _, err := db.Exec(stmt); err != nil {
					t.Fatalf("boundary %d insert %d: %v", boundary, i, err)
				}
				if checkpoint && i == boundary/2 {
					// A SELECT places the table: rows so far become the
					// recovery checkpoint and later commits replay on top.
					countRows(t, db, "kv")
				}
			}
			db.Crash(0)
			if got, want := countRows(t, db, "kv"), int64(2*boundary); got != want {
				t.Fatalf("boundary %d (checkpoint=%v): recovered %d rows, want %d",
					boundary, checkpoint, got, want)
			}
			// Durability holds across a second crash: replaying the same
			// log (now with a checkpoint from the count's placement) must
			// reproduce the same table.
			db.Crash(0)
			if got, want := countRows(t, db, "kv"), int64(2*boundary); got != want {
				t.Fatalf("boundary %d (checkpoint=%v): second recovery %d rows, want %d",
					boundary, checkpoint, got, want)
			}
		}
	}
}

// TestCrashFailsInflightQueries: a crash mid-query fails the statement
// with a typed QueryError wrapping fault.ErrCrashed, closes its energy
// account at the crash instant (keeping Σ attributed + unattributed equal
// to the meter), returns every core, and leaves the engine able to run
// the same statement correctly after recovery.
func TestCrashFailsInflightQueries(t *testing.T) {
	// Reference run: learn the answer and the execution window.
	ref := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, ref, 0.002)
	refRes := mustExec(t, ref, tpch.Q1)

	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.002)
	sess := db.Session()
	rows, err := sess.Query(tpch.Q1)
	if err != nil {
		t.Fatal(err)
	}
	mid := float64(refRes.Wait) + (float64(refRes.Elapsed)-float64(refRes.Wait))/2
	db.CrashAt(mid, 0)
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}

	if err := rows.Err(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("in-flight query error = %v, want ErrCrashed", err)
	}
	var qe *exec.QueryError
	if !errors.As(rows.Err(), &qe) || qe.ID == 0 {
		t.Fatalf("error not a *exec.QueryError: %v", rows.Err())
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live process(es) after crash: %v", live, db.Srv.Eng.LiveNames())
	}
	if free := db.Adm.FreeCores(); free != db.Adm.TotalCores {
		t.Fatalf("crash leaked cores: %d free of %d", free, db.Adm.TotalCores)
	}
	if db.Crashes() != 1 {
		t.Fatalf("crashes = %d", db.Crashes())
	}

	// The same statement succeeds post-recovery with the reference answer.
	res2 := mustExec(t, db, tpch.Q1)
	if res2.RowCount != refRes.RowCount {
		t.Fatalf("post-recovery rows = %d, want %d", res2.RowCount, refRes.RowCount)
	}

	// Attribution invariant across the crash: the dead query's account
	// plus the recovered query's account plus the unattributed idle floor
	// must equal the meter at the last settlement.
	crashedRes, err := rows.Result()
	if err == nil || crashedRes != nil {
		// Result surfaces the query error; fetch the settled account via
		// the rows' final state instead.
	}
	sum := float64(db.Attr.Unattributed())
	if rows.res != nil {
		sum += float64(rows.res.Attributed)
	}
	sum += float64(res2.Attributed)
	meter := float64(db.Srv.Meter.TotalEnergy(db.Attr.SettledThrough()))
	if math.Abs(sum-meter) > 1e-6 {
		t.Fatalf("attribution broke across crash: Σ=%v meter=%v", sum, meter)
	}
}

// TestQueuedCloseNotServed: closing a Rows that is still queued at
// admission dequeues it without dispatching — it never runs, opens no
// account, and counts as Canceled rather than Completed.
func TestQueuedCloseNotServed(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.002)
	const q = "SELECT COUNT(*) FROM lineitem"

	r1, err := db.Session().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Session().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing has been pumped: both tickets sit in the admission queue.
	if err := r2.Close(); err != nil {
		t.Fatalf("closing a queued Rows is not an error, got %v", err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}

	st := db.SchedStats()
	if st.Submitted != 2 || st.Completed != 1 || st.Canceled != 1 {
		t.Fatalf("stats = %+v, want submitted 2 / completed 1 / canceled 1", st)
	}
	res2, err := r2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Granted != 0 || res2.RowCount != 0 || res2.Attributed != 0 {
		t.Fatalf("canceled query was served: %+v", res2)
	}
	if n, err := r1.RowCount(); err != nil || n == 0 {
		t.Fatalf("surviving query: n=%d err=%v", n, err)
	}
}

// TestQueuedDeadlineExpiry: a query whose deadline passes while queued
// behind a saturated box never executes and never bills.
func TestQueuedDeadlineExpiry(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.002)
	const q = "SELECT COUNT(*) FROM lineitem"

	// Eight single-core grants saturate the eight cores; the ninth queues.
	var running []*Rows
	for i := 0; i < db.Adm.TotalCores; i++ {
		r, err := db.Session().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		running = append(running, r)
	}
	st9, err := db.Session().Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	r9, err := st9.QueryDeadline(1e-6) // expires long before any core frees
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}

	if err := r9.Err(); !errors.Is(err, fault.ErrDeadlineExceeded) {
		t.Fatalf("queued-past-deadline error = %v", err)
	}
	res9 := r9.res
	if res9 == nil || res9.Granted != 0 || res9.RowCount != 0 || res9.Attributed != 0 {
		t.Fatalf("expired query was served or billed: %+v", res9)
	}
	if st := db.SchedStats(); st.Expired != 1 || st.Completed != int64(len(running)) {
		t.Fatalf("stats = %+v", st)
	}
	for i, r := range running {
		if n, err := r.RowCount(); err != nil || n == 0 {
			t.Fatalf("query %d: n=%d err=%v", i, n, err)
		}
	}
}

// TestRunningDeadlineCancels: a deadline that trips mid-execution stops
// the query at its next batch boundary, surfaces ErrDeadlineExceeded, and
// returns the grant with no processes left behind.
func TestRunningDeadlineCancels(t *testing.T) {
	ref := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, ref, 0.002)
	refRes := mustExec(t, ref, tpch.Q1)
	mid := float64(refRes.Wait) + (float64(refRes.Elapsed)-float64(refRes.Wait))/2

	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.002)
	st, err := db.Session().Prepare(tpch.Q1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryDeadline(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Err(); !errors.Is(err, fault.ErrDeadlineExceeded) {
		t.Fatalf("running-deadline error = %v", err)
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live process(es) after deadline cancel: %v", live, db.Srv.Eng.LiveNames())
	}
	if free := db.Adm.FreeCores(); free != db.Adm.TotalCores {
		t.Fatalf("deadline cancel leaked cores: %d free of %d", free, db.Adm.TotalCores)
	}
}

// TestTransientRetrySucceeds: a scripted transient read error makes the
// first execution fail; with RetryMax set the session re-executes from
// the cached plan after a sim-time backoff, produces the correct answer,
// and bills every attempt to one account.
func TestTransientRetrySucceeds(t *testing.T) {
	db := faultDB(t, 3)
	loadTinyTPCH(t, db, 0.002)
	want := sumOrderkeys(t, db) // fault-free reference; also places the table
	db.Pool.Reset()             // cached pages must not mask the device faults

	// Arm one transient error on each data disk from "now": the next
	// query's first read on each fails once, then the device recovers.
	now := db.Srv.Eng.Now()
	for i, d := range db.Srv.Disks {
		d.SetFault(fault.NewDeviceFault(fmt.Sprintf("disk%d", i)).TransientAt(now, 1))
	}

	rows, err := db.Session().Query(sumQuery)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rows.RowCount()
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Retries() == 0 {
		t.Fatal("query succeeded without retrying through the fault")
	}
	if n != 1 || res.RowCount != 1 {
		t.Fatalf("sum query rows = %d", n)
	}
	if got := res.Rows.Column(0).I[0]; got != want {
		t.Fatalf("post-retry sum = %d, want %d", got, want)
	}
	if res.Attributed <= 0 {
		t.Fatal("retried query billed nothing")
	}
	// One account for all attempts: the attribution invariant still holds.
	sum := float64(db.Attr.Unattributed())
	sum += float64(res.Attributed)
	_ = sum // per-query sums are checked end-to-end in the chaos harness
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live process(es) after retry: %v", live, db.Srv.Eng.LiveNames())
	}
}

// TestTransientWithoutRetryIsTyped: with retry disabled the transient
// error surfaces as a typed QueryError wrapping fault.ErrTransientIO and
// the engine drains clean.
func TestTransientWithoutRetryIsTyped(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.002)
	sumOrderkeys(t, db) // place the table before arming the fault
	db.Pool.Reset()

	now := db.Srv.Eng.Now()
	for i, d := range db.Srv.Disks {
		d.SetFault(fault.NewDeviceFault(fmt.Sprintf("disk%d", i)).TransientAt(now, 1))
	}
	rows, err := db.Session().Query(sumQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	qerr := rows.Err()
	if !errors.Is(qerr, fault.ErrTransientIO) {
		t.Fatalf("error = %v, want ErrTransientIO", qerr)
	}
	var qe *exec.QueryError
	if !errors.As(qerr, &qe) {
		t.Fatalf("error not a *exec.QueryError: %v", qerr)
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live process(es) after fault: %v", live, db.Srv.Eng.LiveNames())
	}
	if free := db.Adm.FreeCores(); free != db.Adm.TotalCores {
		t.Fatalf("fault leaked cores: %d free of %d", free, db.Adm.TotalCores)
	}
}

// TestDeadDeviceFailsQueries: permanent device death is not retried even
// with RetryMax set; the query fails typed with ErrDeviceFailed.
func TestDeadDeviceFailsQueries(t *testing.T) {
	db, err := Open(Config{
		Server:    hw.SmallServer(4),
		Objective: opt.MinTime,
		PageBytes: 16 << 10,
		BlockRows: 4096,
		RetryMax:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadTinyTPCH(t, db, 0.002)
	sumOrderkeys(t, db) // place the table before killing the device
	db.Pool.Reset()

	now := db.Srv.Eng.Now()
	db.Srv.Disks[0].SetFault(fault.NewDeviceFault("disk0").FailAt(now))
	rows, err := db.Session().Query(sumQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if qerr := rows.Err(); !errors.Is(qerr, fault.ErrDeviceFailed) {
		t.Fatalf("error = %v, want ErrDeviceFailed", qerr)
	}
	if rows.Retries() != 0 {
		t.Fatalf("dead device was retried %d times", rows.Retries())
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live process(es) after device death: %v", live, db.Srv.Eng.LiveNames())
	}
}
