package core

import (
	"fmt"

	"energydb/internal/energy"
	"energydb/internal/fault"
	"energydb/internal/sim"
	"energydb/internal/sql"
	"energydb/internal/table"
)

// This file is the arrival-time write path: workload drivers model an
// OLTP-ish insert stream by scheduling statements at simulated times,
// the way Session.QueryAt schedules reads. Insert cannot serve: with a
// WAL it drains the whole engine per call, which would run every
// already-scheduled future query. ExecAt instead schedules the commit as
// its own simulated process — WAL append inside the process, rows
// visible after — and bills it to its own energy account, so inserts
// show up in tenant bills like queries do.

// Deferred is a scheduled non-SELECT statement. Like Rows, it settles
// when the simulation is pumped past its completion (Err, or DB.Drain).
type Deferred struct {
	db   *DB
	done bool
	err  error
	acct *energy.Account
}

// Done reports whether the statement has executed (without pumping).
func (d *Deferred) Done() bool { return d.done }

// Err pumps the simulation until the statement completes and reports its
// error. A statement whose process was killed by an engine crash reports
// fault.ErrCrashed.
func (d *Deferred) Err() error {
	d.db.pumpUntil(func() bool { return d.done })
	if !d.done {
		return fmt.Errorf("core: deferred statement never ran: %w", fault.ErrCrashed)
	}
	return d.err
}

// Attributed reports the energy billed to the statement's account (zero
// until it has run, and for statements that open no account).
func (d *Deferred) Attributed() energy.Joules {
	if d.acct == nil {
		return 0
	}
	return d.acct.Attributed()
}

// ExecAt parses a non-SELECT statement and schedules it at simulated
// time at (or now, whichever is later). CREATE executes immediately —
// it is catalog-only and consumes no simulated time. INSERT is
// validated now (bad statements fail synchronously, before they are
// scheduled) and committed at its arrival time inside its own process:
// the WAL append, the row visibility flip and the dirty mark all happen
// at simulated time at, billed to the statement's own energy account.
// SELECTs are rejected; they go through sessions.
func (db *DB) ExecAt(at float64, query string) (*Deferred, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch {
	case st.Create != nil:
		return &Deferred{db: db, done: true},
			db.CreateTable(table.NewSchema(st.Create.Name, st.Create.Cols...))
	case st.Insert != nil:
		coerced, err := db.coerceInsert(st.Insert.Table, st.Insert.Rows)
		if err != nil {
			return nil, err
		}
		return db.insertAt(at, st.Insert.Table, coerced), nil
	default:
		return nil, fmt.Errorf("core: ExecAt takes CREATE or INSERT; SELECT goes through sessions")
	}
}

// InsertAt schedules a validated row batch for commit at simulated time
// at — the programmatic form of ExecAt's INSERT arm.
func (db *DB) InsertAt(at float64, name string, rows [][]table.Value) (*Deferred, error) {
	coerced, err := db.coerceInsert(name, rows)
	if err != nil {
		return nil, err
	}
	return db.insertAt(at, name, coerced), nil
}

func (db *DB) insertAt(at float64, name string, coerced [][]table.Value) *Deferred {
	d := &Deferred{db: db}
	eng := db.Srv.Eng
	t := at
	if now := eng.Now(); t < now {
		t = now
	}
	eng.At(t, fmt.Sprintf("insert@%s", name), func() {
		eng.Go("insert "+name, func(p *sim.Proc) {
			acct := db.Attr.Begin(energy.Seconds(p.Now()))
			d.acct = acct
			p.SetOwner(acct)
			var err error
			if db.Log != nil {
				err = db.logInsert(p, name, coerced)
			}
			if err == nil {
				db.applyInsert(name, coerced)
			}
			p.SetOwner(nil)
			db.Attr.End(acct, energy.Seconds(p.Now()))
			d.err = err
			d.done = true
		})
	})
	return d
}

// Ledger settles the energy attributor at the current simulated time and
// returns the wall meter's reading and the unattributed idle-floor
// energy. After a drain, meter - unattributed is exactly the sum of
// every settled account's Attributed — the invariant billing reports
// (and the server's METER frame) are built on.
func (db *DB) Ledger() (meterJ, unattributedJ energy.Joules) {
	now := energy.Seconds(db.Srv.Eng.Now())
	db.Attr.Settle(now)
	return db.Srv.Meter.TotalEnergy(now), db.Attr.Unattributed()
}
