package core

import (
	"strings"
	"testing"

	"energydb/internal/hw"
	"energydb/internal/opt"
	"energydb/internal/table"
	"energydb/internal/tpch"
)

func smallDB(t *testing.T, obj opt.Objective) *DB {
	t.Helper()
	db, err := Open(Config{
		Server:    hw.SmallServer(4),
		Objective: obj,
		PageBytes: 16 << 10,
		BlockRows: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func loadTinyTPCH(t *testing.T, db *DB, sf float64) *tpch.DB {
	t.Helper()
	gen := tpch.Generate(sf, 42)
	for _, tab := range gen.Tables {
		if err := db.LoadTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return gen
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Server: hw.ServerSpec{Name: "empty", CPU: hw.ScanCPU2008()}}); err == nil {
		t.Fatal("server without storage should fail")
	}
	if _, err := Open(Config{Server: hw.SmallServer(2), PoolPolicy: "mystery"}); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	statements := []string{
		"CREATE TABLE pets (id BIGINT, name VARCHAR(10), weight DOUBLE)",
		"INSERT INTO pets VALUES (1, 'rex', 12.5), (2, 'whiskers', 4.2), (3, 'bubbles', 0.1)",
	}
	for _, s := range statements {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	res, err := db.Exec("SELECT name, weight FROM pets WHERE weight > 1 ORDER BY weight DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Rows() != 2 || res.Rows.Column(0).S[0] != "rex" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Elapsed <= 0 || res.Joules <= 0 {
		t.Fatalf("energy accounting missing: %+v", res)
	}
}

func TestInsertVisibleAfterReplacement(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT)")
	mustExec(t, db, "INSERT INTO kv VALUES (1, 10)")
	res := mustExec(t, db, "SELECT k FROM kv")
	if res.Rows.Rows() != 1 {
		t.Fatalf("rows = %d", res.Rows.Rows())
	}
	mustExec(t, db, "INSERT INTO kv VALUES (2, 20), (3, 30)")
	res = mustExec(t, db, "SELECT k FROM kv")
	if res.Rows.Rows() != 3 {
		t.Fatalf("rows after second insert = %d", res.Rows.Rows())
	}
}

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func TestTPCHQueriesEndToEnd(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	gen := loadTinyTPCH(t, db, 0.002)

	// Q6-style: verify against a direct computation on the raw data.
	res := mustExec(t, db, tpch.Q6)
	li := gen.Tables["lineitem"]
	shipIdx := li.Schema.MustColIndex("l_shipdate")
	discIdx := li.Schema.MustColIndex("l_discount")
	qtyIdx := li.Schema.MustColIndex("l_quantity")
	priceIdx := li.Schema.MustColIndex("l_extendedprice")
	lo, _ := dateOf("1994-01-01")
	hi, _ := dateOf("1995-01-01")
	want := 0.0
	for i := 0; i < li.Rows(); i++ {
		d := li.Column(shipIdx).I[i]
		disc := li.Column(discIdx).F[i]
		if d >= lo && d < hi && disc >= 0.05 && disc <= 0.07 && li.Column(qtyIdx).F[i] < 24 {
			want += li.Column(priceIdx).F[i] * disc
		}
	}
	got := res.Rows.Column(0).F[0]
	if diff := got - want; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("Q6 revenue = %v, want %v", got, want)
	}

	// The other queries must at least run and produce sane shapes.
	if res := mustExec(t, db, tpch.Q1); res.Rows.Rows() < 2 {
		t.Fatalf("Q1 groups = %d", res.Rows.Rows())
	}
	if res := mustExec(t, db, tpch.Q3); res.Rows.Rows() > 10 {
		t.Fatalf("Q3 limit violated: %d", res.Rows.Rows())
	}
	if res := mustExec(t, db, tpch.Q5); res.Rows.Rows() == 0 {
		t.Fatal("Q5 empty")
	}
}

func dateOf(s string) (int64, error) {
	// small local copy to avoid importing internal/sql in the test
	var y, m, d int
	if _, err := sscanf3(s, &y, &m, &d); err != nil {
		return 0, err
	}
	days := int64(0)
	for yy := 1970; yy < y; yy++ {
		days += 365
		if leap(yy) {
			days++
		}
	}
	mdays := []int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	for mm := 1; mm < m; mm++ {
		days += int64(mdays[mm-1])
		if mm == 2 && leap(y) {
			days++
		}
	}
	return days + int64(d-1), nil
}

func leap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

func sscanf3(s string, y, m, d *int) (int, error) {
	parts := strings.SplitN(s, "-", 3)
	if len(parts) != 3 {
		return 0, nil
	}
	*y = atoi(parts[0])
	*m = atoi(parts[1])
	*d = atoi(parts[2])
	return 3, nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func TestExplainDoesNotExecute(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.001)
	res := mustExec(t, db, "EXPLAIN "+tpch.Q6)
	if res.Rows != nil {
		t.Fatal("explain returned rows")
	}
	if res.Plan == nil || !strings.Contains(res.Plan.Explain(), "scan") {
		t.Fatal("explain missing plan")
	}
	if db.Queries() != 0 {
		t.Fatal("explain counted as executed query")
	}
}

func TestObjectiveChangesChosenPlacement(t *testing.T) {
	timeDB := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, timeDB, 0.002)
	energyDB := smallDB(t, opt.MinEnergy)
	loadTinyTPCH(t, energyDB, 0.002)

	const q = "SELECT SUM(l_orderkey) AS s FROM lineitem"
	tp, err := timeDB.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := energyDB.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	// On a disk-backed server the compressed variant wins time; whether
	// energy flips depends on the power balance — but the two plans must
	// be internally consistent with their objectives.
	if tp.Cost().Seconds > ep.Cost().Seconds+1e-12 {
		t.Fatalf("time plan slower than energy plan: %v vs %v", tp.Cost(), ep.Cost())
	}
	if ep.Cost().Joules > tp.Cost().Joules+1e-12 {
		t.Fatalf("energy plan hotter than time plan: %v vs %v", ep.Cost(), tp.Cost())
	}
}

func TestWALConfigured(t *testing.T) {
	db, err := Open(Config{
		Server:   hw.SmallServer(3),
		WALBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Log == nil {
		t.Fatal("log missing")
	}
	if db.Vol.Devices() != 2 {
		t.Fatalf("data devices = %d, want 2 (one dedicated to log)", db.Vol.Devices())
	}
	mustExec(t, db, "CREATE TABLE t (a BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if db.Log.Stats().Commits != 1 {
		t.Fatalf("wal commits = %d", db.Log.Stats().Commits)
	}
}

func TestResultEfficiency(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	mustExec(t, db, "CREATE TABLE t (a BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	res := mustExec(t, db, "SELECT a FROM t")
	if res.Efficiency() <= 0 {
		t.Fatalf("efficiency = %v", res.Efficiency())
	}
}

// TestInsertAtomicOnTypeError: a type error anywhere in the batch must
// leave the table untouched — the old row-at-a-time path appended rows
// 0..k-1 before failing on row k.
func TestInsertAtomicOnTypeError(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	mustExec(t, db, "CREATE TABLE t (a BIGINT, b DOUBLE)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 1.5)")
	bad := [][]table.Value{
		{table.IntVal(2), table.FloatVal(2.5)},
		{table.IntVal(3), table.StrVal("oops")}, // type error on row 1
		{table.IntVal(4), table.FloatVal(4.5)},
	}
	if err := db.Insert("t", bad); err == nil {
		t.Fatal("mistyped batch should fail")
	}
	res := mustExec(t, db, "SELECT a FROM t")
	if res.Rows.Rows() != 1 {
		t.Fatalf("failed insert left %d rows visible, want 1", res.Rows.Rows())
	}
	// Arity errors must be atomic too.
	if err := db.Insert("t", [][]table.Value{
		{table.IntVal(5), table.FloatVal(5.5)},
		{table.IntVal(6)},
	}); err == nil {
		t.Fatal("wrong-arity batch should fail")
	}
	if res := mustExec(t, db, "SELECT a FROM t"); res.Rows.Rows() != 1 {
		t.Fatalf("failed insert left %d rows visible, want 1", res.Rows.Rows())
	}
}

func TestTablesSorted(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	for _, name := range []string{"zebra", "ant", "mole", "bee"} {
		mustExec(t, db, "CREATE TABLE "+name+" (a BIGINT)")
	}
	want := []string{"ant", "bee", "mole", "zebra"}
	for try := 0; try < 3; try++ {
		got := db.Tables()
		if len(got) != len(want) {
			t.Fatalf("tables = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tables = %v, want sorted %v", got, want)
			}
		}
	}
}

func TestErrorPaths(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	if _, err := db.Exec("SELECT x FROM ghost"); err == nil {
		t.Fatal("unknown table should fail")
	}
	if _, err := db.Exec("NOT SQL AT ALL"); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := db.Plan("CREATE TABLE t (a BIGINT)"); err == nil {
		t.Fatal("plan of non-select should fail")
	}
	mustExec(t, db, "CREATE TABLE t (a BIGINT)")
	if err := db.CreateTable(table.NewSchema("t", table.Col("a", table.Int64))); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if err := db.Insert("ghost", nil); err == nil {
		t.Fatal("insert into unknown table should fail")
	}
	if err := db.Insert("t", [][]table.Value{{table.StrVal("x")}}); err == nil {
		t.Fatal("type mismatch insert should fail")
	}
}
