package core

import (
	"math"
	"regexp"
	"strconv"
	"testing"

	"energydb/internal/energy"
	"energydb/internal/opt"
	"energydb/internal/tpch"
)

const sessAggQuery = `SELECT l_partkey, COUNT(*) AS n, SUM(l_quantity) AS q
	FROM lineitem GROUP BY l_partkey ORDER BY l_partkey`

// TestAttributionSumsToMeter is the attribution invariant: across
// concurrent sessions, per-query attributed joules sum to the
// whole-server meter delta, with nothing left unattributed while the
// streams cover the run wall-to-wall.
func TestAttributionSumsToMeter(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.01)

	queries := []string{tpch.Q6, sessAggQuery, tpch.Q1}
	var all []*Rows
	for s := 0; s < 4; s++ {
		sess := db.Session()
		for qi := range queries {
			rows, err := sess.Query(queries[(qi+s)%len(queries)])
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rows)
		}
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	var sum, marginal float64
	for _, rows := range all {
		res, err := rows.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Attributed <= 0 || res.Marginal <= 0 || res.Shared <= 0 {
			t.Fatalf("incomplete attribution: %+v", res)
		}
		if math.Abs(float64(res.Attributed-res.Marginal-res.Shared)) > 1e-9 {
			t.Fatalf("attribution does not decompose: %v != %v + %v",
				res.Attributed, res.Marginal, res.Shared)
		}
		sum += float64(res.Attributed)
		marginal += float64(res.Marginal)
	}
	meter := float64(db.Srv.Meter.TotalEnergy(energy.Seconds(db.Srv.Eng.Now())))
	if diff := math.Abs(sum - meter); diff > 1e-6*meter {
		t.Fatalf("attributed sum %.9f J vs meter %.9f J (diff %.3g)", sum, meter, diff)
	}
	if un := float64(db.Attr.Unattributed()); math.Abs(un) > 1e-6*meter {
		t.Fatalf("unattributed energy %.9f J with wall-to-wall streams", un)
	}
	// The idle floor is real on 2008 hardware: the shared component must
	// be a substantial part of the bill, not a rounding artifact.
	if marginal >= sum {
		t.Fatalf("marginal %.3f J >= total %.3f J: idle floor lost", marginal, sum)
	}
}

// TestAdmissionQueuesBeyondCores: more same-instant streams than cores —
// the surplus queues, nothing oversubscribes, and every query still
// completes with a serial-grant plan.
func TestAdmissionQueuesBeyondCores(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.005)
	cores := db.Srv.CPU.Cores()
	streams := cores + 4

	var all []*Rows
	for s := 0; s < streams; s++ {
		rows, err := db.Session().Query(tpch.Q6)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rows)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	waited := 0
	for _, rows := range all {
		res, err := rows.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Granted != 1 {
			t.Fatalf("saturated stream granted %d cores, want 1", res.Granted)
		}
		if res.Wait > 0 {
			waited++
		}
	}
	if waited != streams-cores {
		t.Fatalf("%d queries queued, want %d", waited, streams-cores)
	}
	st := db.SchedStats()
	if st.PeakActive > cores {
		t.Fatalf("admission oversubscribed: %d active on %d cores", st.PeakActive, cores)
	}
	if st.Waited != int64(streams-cores) || st.Completed != int64(streams) {
		t.Fatalf("admission stats: %+v", st)
	}
}

var sessDopRE = regexp.MustCompile(`dop=(\d+)`)

func maxPlanDop(p *opt.Plan) int {
	max := 1
	for _, m := range sessDopRE.FindAllStringSubmatch(p.Explain(), -1) {
		if d, _ := strconv.Atoi(m[1]); d > max {
			max = d
		}
	}
	return max
}

// TestAdmissionGrantsDOPFromFreeCores is the acceptance mix: the same
// parallel-friendly aggregation plans wide on an idle box, but submitted
// beside concurrent streams it is granted only cores the streams left
// free — its pipeline DOP shrinks to the grant instead of double-booking
// busy cores.
func TestAdmissionGrantsDOPFromFreeCores(t *testing.T) {
	// Control: alone on an idle 8-core box the query takes every core and
	// buys a parallel plan.
	alone := openParDB(t, opt.MinTime, 8, 0, 4096)
	rows, err := alone.Session().Query(sessAggQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted != 8 {
		t.Fatalf("lone query granted %d of 8 free cores", res.Granted)
	}
	if maxPlanDop(res.Plan) < 2 {
		t.Fatalf("lone 8-core grant kept the plan serial:\n%s", res.Plan.Explain())
	}

	// Mixed: three streams occupy the box (fair share: 2+2+2 of 8), then
	// the same query arrives; only 2 cores are free, and both grant and
	// plan DOP must respect that.
	mixed := openParDB(t, opt.MinTime, 8, 0, 4096)
	var streams []*Rows
	for s := 0; s < 3; s++ {
		r, err := mixed.Session().Query(sessAggQuery)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, r)
	}
	late, err := mixed.Session().QueryAt(1e-4, sessAggQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := mixed.Drain(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range streams {
		sres, err := r.Result()
		if err != nil {
			t.Fatal(err)
		}
		if sres.Granted != 2 {
			t.Fatalf("stream granted %d, want fair share 2", sres.Granted)
		}
		sum += float64(sres.Attributed)
	}
	lres, err := late.Result()
	if err != nil {
		t.Fatal(err)
	}
	sum += float64(lres.Attributed)
	if lres.Granted != 2 {
		t.Fatalf("late query granted %d cores with 2 free, want 2", lres.Granted)
	}
	if d := maxPlanDop(lres.Plan); d > lres.Granted {
		t.Fatalf("plan DOP %d exceeds the %d granted cores:\n%s", d, lres.Granted, lres.Plan.Explain())
	}
	// Attribution stays lossless under the mixed load.
	meter := float64(mixed.Srv.Meter.TotalEnergy(energy.Seconds(mixed.Srv.Eng.Now())))
	if diff := math.Abs(sum + float64(mixed.Attr.Unattributed()) - meter); diff > 1e-6*meter {
		t.Fatalf("mixed attribution: sum %.9f + unattributed %.9f vs meter %.9f",
			sum, float64(mixed.Attr.Unattributed()), meter)
	}
}

// TestRowsStreaming: Next/Batch stream the result incrementally and agree
// with Collect.
func TestRowsStreaming(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.005)

	sess := db.Session()
	st, err := sess.Prepare("SELECT l_partkey FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	for rows.Next() {
		streamed += rows.Batch().Rows()
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := db.Exec("SELECT l_partkey FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if streamed == 0 || streamed != ref.Rows.Rows() {
		t.Fatalf("streamed %d rows, want %d", streamed, ref.Rows.Rows())
	}

	// Re-executing the prepared statement reuses the cached plan.
	again, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	n, err := again.RowCount()
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != streamed {
		t.Fatalf("re-execution produced %d rows, want %d", n, streamed)
	}
}

// TestRowsEarlyClose: closing a Rows mid-stream — with a parallel scan
// fanned out underneath, and under LIMIT — cancels the query and leaves
// zero live processes in the engine.
func TestRowsEarlyClose(t *testing.T) {
	for _, query := range []string{
		"SELECT l_partkey FROM lineitem WHERE l_quantity > 1",
		"SELECT l_partkey FROM lineitem WHERE l_quantity > 1 LIMIT 5",
	} {
		db := openParDB(t, opt.MinTime, 8, 0, 1024)
		rows, err := db.Session().Query(query)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("%s: no first batch", query)
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		// The query process has exited; cancelled scan readers unwind at
		// their next boundary, so after the engine drains (with no
		// deadlock error) nothing is left alive.
		if !rows.done {
			t.Fatalf("%s: query still running after Close", query)
		}
		if err := db.Drain(); err != nil {
			t.Fatalf("%s: drain after close: %v", query, err)
		}
		if live := db.Srv.Eng.Live(); live != 0 {
			t.Fatalf("%s: %d live process(es) after early close: %v",
				query, live, db.Srv.Eng.LiveNames())
		}
		if rows.Next() {
			t.Fatalf("%s: Next succeeded after Close", query)
		}
	}
}

// TestEarlyCloseKeepsAttributionExact: a query cancelled mid-scan has
// readers that finish in-flight device operations after its account
// closed; those joules must fall back into the shared residual — not
// vanish — so Σ attributed + unattributed still equals the meter.
func TestEarlyCloseKeepsAttributionExact(t *testing.T) {
	db := openParDB(t, opt.MinTime, 8, 0, 1024)
	rows, err := db.Session().Query("SELECT l_partkey FROM lineitem WHERE l_quantity > 1")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first batch")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	closed := rows.res

	// A second query runs while the first query's cancelled readers are
	// still unwinding.
	after, err := db.Exec(sessAggQuery)
	if err != nil {
		t.Fatal(err)
	}

	sum := float64(closed.Attributed) + float64(after.Attributed) + float64(db.Attr.Unattributed())
	meter := float64(db.Srv.Meter.TotalEnergy(energy.Seconds(db.Srv.Eng.Now())))
	if diff := math.Abs(sum - meter); diff > 1e-6*meter {
		t.Fatalf("after early close: Σ attributed %.9f + unattributed %.9f != meter %.9f",
			float64(closed.Attributed)+float64(after.Attributed),
			float64(db.Attr.Unattributed()), meter)
	}
}

// TestExecMatchesSessionPath: DB.Exec is a thin wrapper over a
// one-statement session — results, timing and energy are bit-identical
// to driving the session API by hand.
func TestExecMatchesSessionPath(t *testing.T) {
	mk := func() *DB {
		db := smallDB(t, opt.MinTime)
		loadTinyTPCH(t, db, 0.005)
		return db
	}
	const q = sessAggQuery

	a := mk()
	execRes, err := a.Exec(q)
	if err != nil {
		t.Fatal(err)
	}

	b := mk()
	rows, err := b.Session().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	sessRes, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}

	if execRes.Elapsed != sessRes.Elapsed || execRes.Joules != sessRes.Joules {
		t.Fatalf("exec %v/%v vs session %v/%v",
			execRes.Elapsed, execRes.Joules, sessRes.Elapsed, sessRes.Joules)
	}
	if execRes.Attributed != sessRes.Attributed || execRes.Granted != sessRes.Granted {
		t.Fatalf("exec attribution %v/%d vs session %v/%d",
			execRes.Attributed, execRes.Granted, sessRes.Attributed, sessRes.Granted)
	}
	if execRes.Rows.Rows() != sessRes.Rows.Rows() {
		t.Fatalf("row counts differ: %d vs %d", execRes.Rows.Rows(), sessRes.Rows.Rows())
	}
	for i := 0; i < execRes.Rows.Rows(); i++ {
		for c := 0; c < 3; c++ {
			if execRes.Rows.Column(c).Value(i).Compare(sessRes.Rows.Column(c).Value(i)) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, c,
					execRes.Rows.Column(c).Value(i), sessRes.Rows.Column(c).Value(i))
			}
		}
	}
	// A lone Exec on an idle box is granted every core and is accounted
	// wall-to-wall: attributed == whole-server delta.
	if diff := math.Abs(float64(execRes.Attributed - execRes.Joules)); diff > 1e-6*float64(execRes.Joules) {
		t.Fatalf("lone query attributed %v != whole-server %v", execRes.Attributed, execRes.Joules)
	}
	// ...and its shared component is exactly the idle floor: every joule
	// of device activity — CPU work AND the scan's disk reads, performed
	// by reader processes that inherit the query's account — was charged
	// as marginal, leaving only base + idle power in the residual.
	idle := float64(a.Srv.IdlePower()) * float64(execRes.Elapsed)
	if diff := math.Abs(float64(execRes.Shared) - idle); diff > 1e-6*idle {
		t.Fatalf("lone query shared %v != idle floor %.9g J (device energy leaked out of Marginal)",
			execRes.Shared, idle)
	}
}

// TestSessionSerializesStatements: statements on one session run in
// submission order, back to back, never concurrently.
func TestSessionSerializesStatements(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.005)
	sess := db.Session()
	var rs []*Rows
	for i := 0; i < 3; i++ {
		r, err := sess.Query(tpch.Q6)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := db.SchedStats().PeakActive; got != 1 {
		t.Fatalf("one session ran %d statements concurrently", got)
	}
	prevEnd := 0.0
	for i, r := range rs {
		res, err := r.Result()
		if err != nil {
			t.Fatal(err)
		}
		if r.submitT < prevEnd {
			t.Fatalf("statement %d submitted at %v before predecessor finished at %v",
				i, r.submitT, prevEnd)
		}
		prevEnd = r.submitT + float64(res.Elapsed)
	}
}

// TestPreparedStmtSeesNewRows: re-executing a prepared statement after an
// INSERT to a referenced table must re-place the table and drop cached
// plans — not read the stale placement it was prepared against.
func TestPreparedStmtSeesNewRows(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v DOUBLE)")
	mustExec(t, db, "INSERT INTO kv VALUES (1, 2.5)")

	st, err := db.Session().Prepare("SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	// A second statement on the same table: the first statement to
	// re-place consumes the dirty flag, so other statements must
	// invalidate by placement epoch.
	st2, err := db.Session().Prepare("SELECT v FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	count := func(s *Stmt) int64 {
		t.Helper()
		rows, err := s.Query()
		if err != nil {
			t.Fatal(err)
		}
		n, err := rows.RowCount()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(st); n != 1 {
		t.Fatalf("first execution: %d rows", n)
	}
	if n := count(st2); n != 1 {
		t.Fatalf("first execution (stmt 2): %d rows", n)
	}

	mustExec(t, db, "INSERT INTO kv VALUES (2, 3.5), (3, 4.5)")
	if n := count(st); n != 3 {
		t.Fatalf("re-execution after insert: %d rows (stale placement?)", n)
	}
	if n := count(st2); n != 3 {
		t.Fatalf("sibling statement after insert: %d rows (stale plan cache?)", n)
	}
}

// TestSerialPlansReleaseGrant: a lone query is granted the whole box, but
// once its plan turns out serial the unused cores go back to the free
// pool — staggered arrivals run concurrently instead of queueing behind
// an idle grant.
func TestSerialPlansReleaseGrant(t *testing.T) {
	db := openParDB(t, opt.MinEnergy, 8, 0, 4096) // MinEnergy: plans stay serial
	const n = 4
	var all []*Rows
	for s := 0; s < n; s++ {
		// Staggered arrivals: each later query arrives while the earlier
		// ones are still running.
		rows, err := db.Session().QueryAt(float64(s)*1e-5, sessAggQuery)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rows)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, rows := range all {
		res, err := rows.Result()
		if err != nil {
			t.Fatal(err)
		}
		if d := maxPlanDop(res.Plan); d != 1 {
			t.Fatalf("MinEnergy plan went parallel (dop=%d)", d)
		}
	}
	if got := db.SchedStats().PeakActive; got != n {
		t.Fatalf("peak active = %d, want %d (serial plans should release their grants)", got, n)
	}
}

func TestSessionClosedRejects(t *testing.T) {
	db := smallDB(t, opt.MinTime)
	loadTinyTPCH(t, db, 0.005)
	sess := db.Session()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(tpch.Q6); err == nil {
		t.Fatal("query on closed session should fail")
	}
	if _, err := sess.Prepare(tpch.Q6); err == nil {
		t.Fatal("prepare on closed session should fail")
	}
}
