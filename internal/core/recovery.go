package core

import (
	"fmt"
	"sort"

	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/fault"
	"energydb/internal/table"
)

// This file is the crash half of the fault-tolerant query lifecycle: a
// whole-engine failure at a simulated instant, followed by ARIES-style
// recovery from the placement checkpoints and the WAL's durable image.
//
// A crash unwinds every live process (queries, scan readers, exchange
// workers, WAL flushers — their goroutines exit through their cleanup
// defers), drops every pending event, and resets the hardware models to
// a quiescent state so held resources do not leak into the next epoch.
// Volatile state — the buffer pool, partial results, the admission queue
// — is gone; what survives is the data volume (placements) and the log
// device's byte image, of which an in-flight flush contributes only a
// torn prefix. Recovery truncates the log at the first torn or corrupt
// record, rebuilds each table as checkpoint-prefix + replayed-suffix,
// and fails every in-flight statement with a typed QueryError so clients
// observe the crash instead of hanging.

// CrashAt schedules a whole-engine crash at simulated time t. tornFrac
// in [0,1] chooses how much of a WAL flush in flight at the crash
// instant lands on the device (a torn write). Statements submitted after
// recovery run normally.
func (db *DB) CrashAt(t float64, tornFrac float64) {
	db.Srv.Eng.At(t, "crash", func() { db.crash(tornFrac) })
}

// Crash crashes the engine at the current instant. It must not be called
// from process context (use CrashAt to crash mid-workload).
func (db *DB) Crash(tornFrac float64) { db.crash(tornFrac) }

func (db *DB) crash(tornFrac float64) {
	eng := db.Srv.Eng
	now := eng.Now()
	db.crashes++

	// Snapshot what the log device would hold the moment the power died:
	// the durable image plus a torn prefix of any in-flight flush.
	var img []byte
	if db.Log != nil {
		img = db.Log.CrashImage(tornFrac)
	}

	// Power failure: every live process unwinds, every pending event —
	// timers, dispatches, queued submissions — is dropped.
	eng.Crash()

	// Bring the hardware models back to a quiescent state: resources held
	// or waited on by killed processes are forcibly returned, spindles
	// settle at idle, and the (volatile) buffer pool empties.
	for _, d := range db.Srv.Disks {
		d.Reset()
	}
	for _, s := range db.Srv.SSDs {
		s.Reset()
	}
	db.Srv.CPU.Reset()
	db.Vol.Reset()
	db.Pool.Reset()
	db.Adm.Reset()
	// Dead queries can no longer vote for a P-state; back to nominal.
	db.pvotes = map[int64]int{}
	db.applyPState()

	// Rebuild every table from its placement checkpoint plus the log.
	db.recoverTables(img)

	// Settle the statements the crash caught in flight, in submission
	// order so recovery is deterministic. Open energy accounts are closed
	// at the crash instant — the joules a dead query burned are still its
	// joules, and the attribution invariant keeps holding. Statements not
	// yet submitted (future arrivals whose timer events were just
	// dropped) are re-armed instead of failed.
	// Snapshot who was submitted BEFORE settling anyone: failing a
	// statement fires its onDone hooks, which submit its chained successor
	// — that successor must then be recognised as a fresh post-crash
	// submission (and left alone), not failed as crashed in flight. The
	// dropped submit timers also left stale pending flags; clear them so
	// the re-arm pass can schedule replacements.
	ids := make([]int64, 0, len(db.inflight))
	for id := range db.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	wasSubmitted := make(map[int64]bool, len(ids))
	for _, id := range ids {
		r := db.inflight[id]
		wasSubmitted[id] = r.submitted
		r.pending = false
	}
	for _, id := range ids {
		r := db.inflight[id]
		if r == nil || r.done {
			continue // settled earlier in this pass
		}
		if !wasSubmitted[id] {
			db.submitRows(r) // no-op if a predecessor's onDone already did
			continue
		}
		if r.acct != nil && !r.acct.Closed() {
			db.Attr.End(r.acct, energy.Seconds(now))
		}
		r.err = &exec.QueryError{Query: r.stmt.text, ID: r.id,
			Err: fmt.Errorf("core: engine crashed at %.6f: %w", now, fault.ErrCrashed)}
		r.finish(now)
	}
}

// recoverTables rebuilds the in-memory tables after a crash: each keeps
// only the prefix covered by its last placement (the checkpoint — those
// rows live on the data volume), then WAL records whose start row lines
// up with the table's recovered tail are reapplied in log order. Every
// table is marked dirty so its next use re-places it, invalidating plans
// cached against the pre-crash placement.
func (db *DB) recoverTables(img []byte) {
	for name, t := range db.mem {
		keep := db.durableRows[name]
		if keep > int64(t.Rows()) {
			keep = int64(t.Rows())
		}
		nt := table.NewTable(t.Schema)
		if keep > 0 {
			nt.AppendBatch(t.Slice(0, int(keep)))
		}
		db.mem[name] = nt
		db.dirty[name] = true
	}
	if db.Log == nil {
		return
	}
	for _, rec := range db.Log.Recover(img) {
		name, startRow, rows, err := decodeInsert(rec.Payload, db.schemas)
		if err != nil {
			continue // not an insert record (or schema drift): nothing to apply
		}
		t := db.mem[name]
		if t == nil || startRow != int64(t.Rows()) {
			continue // already inside the checkpoint prefix
		}
		for _, r := range rows {
			t.AppendRow(r...)
		}
		db.dirty[name] = true
	}
}
