package core

import (
	"errors"
	"fmt"

	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/fault"
	"energydb/internal/opt"
	"energydb/internal/sched"
	"energydb/internal/sim"
	"energydb/internal/sql"
	"energydb/internal/table"
)

// This file is the session-based query API: the workload-level face of
// the engine the paper's §4.2 asks for. A Session is one client's serial
// statement stream; Prepare binds a statement once; Query submits it to
// the engine-resident admission controller, which grants the query its
// degree of parallelism from the cores that are actually free at
// admission time and queues arrivals when the box is saturated. Results
// stream back through Rows, and every completed query carries an
// attributed energy account — its own marginal joules plus its
// wall-clock-overlap share of the idle floor — that sums to the
// whole-server meter across concurrent sessions by construction.
//
// The simulation is advanced lazily: submitting a statement schedules
// work but runs nothing. Rows methods (Next, Collect, RowCount, Close)
// pump the engine just far enough to produce what they return, and
// DB.Drain runs every outstanding statement to completion. Execution is
// not consumer-paced — a running query proceeds at full simulated speed
// whether or not anyone is iterating its Rows — because the consumer
// lives outside simulated time and stalling the query on it would charge
// client think-time to the query's energy account.

// Session is one client's serial statement stream: statements submitted
// on a session execute in submission order, each admitted only after the
// previous one finished — exactly the behaviour of one TPC-H throughput
// stream. Concurrency comes from opening several sessions; the admission
// controller arbitrates cores across them.
type Session struct {
	db     *DB
	id     int64
	tail   *Rows // most recently submitted statement, for chaining
	closed bool
}

// Session opens a new session on the database.
func (db *DB) Session() *Session {
	db.nextSess++
	return &Session{db: db, id: db.nextSess}
}

// Close marks the session closed; further Prepare/Query calls fail.
// Statements already submitted are unaffected.
func (s *Session) Close() error {
	s.closed = true
	return nil
}

// Prepare parses and binds a SELECT for repeated execution. Binding
// places any referenced tables whose contents changed. The physical plan
// is chosen later, per execution, against the cores granted at admission.
func (s *Session) Prepare(query string) (*Stmt, error) {
	if s.closed {
		return nil, fmt.Errorf("core: session %d is closed", s.id)
	}
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if st.Select == nil {
		return nil, fmt.Errorf("core: only SELECT can be prepared")
	}
	q, err := s.db.bind(st.Select)
	if err != nil {
		return nil, err
	}
	return newStmt(s, query, q), nil
}

// newStmt wraps a bound query; Prepare and the Exec wrapper share it.
func newStmt(s *Session, text string, q *opt.Query) *Stmt {
	return &Stmt{sess: s, text: text, query: q,
		ps: &planSet{plans: map[int]*opt.Plan{}, epochs: map[string]int64{}}}
}

// Explain plans a SELECT (with or without a leading EXPLAIN keyword)
// without executing it and returns the chosen plan as rows of
// opt.ExplainSchema — one row per operator with its DOP, the plan's
// P-state, and predicted ms/J — so EXPLAIN output is wire-encodable
// like any result. The plan is priced at the full machine (planFor's
// per-grant pricing happens at admission; Explain shows the unloaded
// choice, like DB.Plan).
func (s *Session) Explain(query string) (*table.Table, error) {
	if s.closed {
		return nil, fmt.Errorf("core: session %d is closed", s.id)
	}
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if st.Select == nil {
		return nil, fmt.Errorf("core: only SELECT can be explained")
	}
	q, err := s.db.bind(st.Select)
	if err != nil {
		return nil, err
	}
	plan, err := opt.Optimize(q, s.db.Catalog, s.db.Env, s.db.Objective)
	if err != nil {
		return nil, err
	}
	return plan.ExplainRows(), nil
}

// Query prepares and submits a statement in one call.
func (s *Session) Query(query string) (*Rows, error) {
	st, err := s.Prepare(query)
	if err != nil {
		return nil, err
	}
	return st.Query()
}

// QueryAt prepares a statement and submits it at simulated time at (>= the
// current clock), for drivers that model an arrival process.
func (s *Session) QueryAt(at float64, query string) (*Rows, error) {
	st, err := s.Prepare(query)
	if err != nil {
		return nil, err
	}
	return st.QueryAt(at)
}

// Stmt is a prepared SELECT bound to its session. Physical plans are
// compiled on demand per admission grant (the optimizer prices degrees of
// parallelism against the granted cores — see opt.Env.Grant) and cached,
// so a statement re-executed under the same grant plans once. Statements
// produced by PrepareCached share one planSet across sessions, so any of
// them re-executing under an already-seen grant reuses the plan.
type Stmt struct {
	sess  *Session
	text  string
	query *opt.Query
	ps    *planSet
}

// planSet is a statement's compiled-plan cache: one physical plan per
// admission grant, all built against the same placement epochs. It is the
// unit PrepareCached shares between sessions; the simulation runs one
// event at a time, so no locking is needed.
type planSet struct {
	plans  map[int]*opt.Plan // by granted cores
	epochs map[string]int64  // placement epochs the cached plans were built on
}

// Text returns the statement's SQL.
func (st *Stmt) Text() string { return st.text }

// Query submits the statement for execution after the session's previous
// statement finishes, returning a Rows handle immediately. Nothing runs
// until the simulation is pumped (Rows methods or DB.Drain).
func (st *Stmt) Query() (*Rows, error) { return st.queryAt(0, 0) }

// QueryAt submits the statement at simulated time at (or when the
// session's previous statement finishes, whichever is later).
func (st *Stmt) QueryAt(at float64) (*Rows, error) { return st.queryAt(at, 0) }

// QueryDeadline submits the statement with an absolute deadline (engine
// seconds). A query whose deadline passes while it is queued never runs —
// it is rejected by admission without opening an energy account — and a
// query caught running at its deadline is cancelled at its next batch
// boundary, returning its core grant. Either way Rows.Err reports a
// *exec.QueryError wrapping fault.ErrDeadlineExceeded.
func (st *Stmt) QueryDeadline(deadline float64) (*Rows, error) {
	return st.queryAt(0, deadline)
}

// QueryAtDeadline combines QueryAt's arrival time with QueryDeadline's
// deadline, for drivers that model per-arrival latency budgets.
func (st *Stmt) QueryAtDeadline(at, deadline float64) (*Rows, error) {
	return st.queryAt(at, deadline)
}

func (st *Stmt) queryAt(at, deadline float64) (*Rows, error) {
	s := st.sess
	if s.closed {
		return nil, fmt.Errorf("core: session %d is closed", s.id)
	}
	db := s.db
	db.nextQuery++
	r := &Rows{db: db, stmt: st, id: db.nextQuery, at: at, deadline: deadline}
	db.inflight[r.id] = r
	prev := s.tail
	s.tail = r
	if prev == nil || prev.done {
		db.submitRows(r)
	} else {
		prev.onDone = append(prev.onDone, func() { db.submitRows(r) })
	}
	return r, nil
}

// planFor compiles (or recalls) the statement's plan for a grant, after
// re-placing any referenced table whose contents changed since the last
// execution. Cache invalidation is by placement epoch, not the dirty
// flag: the first statement to re-place a table consumes the flag, but
// every other prepared statement on that table must also drop plans
// built against the old placement.
//
// budget, when positive, is the seconds remaining until the query's
// deadline; it constrains plan choice (opt.Env.TimeBudget) and bypasses
// the plan cache — the budget differs per execution, so a budgeted plan
// is never reusable.
func (st *Stmt) planFor(granted int, budget float64) (*opt.Plan, error) {
	db := st.sess.db
	stale := false
	for _, a := range st.query.Tables {
		rel := st.query.Rels[a]
		if db.dirty[rel] {
			if err := db.place(rel); err != nil {
				return nil, err
			}
		}
		if e := db.epochs[rel]; st.ps.epochs[rel] != e {
			st.ps.epochs[rel] = e
			stale = true
		}
	}
	if stale {
		st.ps.plans = map[int]*opt.Plan{}
	}
	if budget <= 0 {
		if p, ok := st.ps.plans[granted]; ok {
			return p, nil
		}
	}
	env := db.Env.Grant(granted)
	env.TimeBudget = budget
	p, err := opt.Optimize(st.query, db.Catalog, env, db.Objective)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		st.ps.plans[granted] = p
	}
	return p, nil
}

// Rows is a submitted statement's result stream and, once the statement
// completes, its energy-accounted Result. Batches become available as the
// simulation executes the query; Next pumps the engine just far enough to
// return the next one.
type Rows struct {
	db   *DB
	stmt *Stmt
	id   int64
	at   float64 // requested submission time

	deadline  float64 // absolute engine time; 0 = none
	pending   bool    // a submit timer is scheduled for a future arrival
	submitted bool    // handed to the admission controller
	submitT   float64 // actual submission time
	startT    float64 // admission time
	startE    energy.Joules
	granted   int
	ticket    *sched.Ticket
	retries   int

	cancel  bool // producer stops at its next batch boundary
	expired bool // the deadline tripped while the query was running
	done    bool
	closed  bool
	discard bool

	err      error
	plan     *opt.Plan
	nextPlan *opt.Plan     // wider plan accepted through a re-grant offer
	restart  bool          // restart the pipeline on nextPlan at the next batch boundary
	widener  *exec.Widener // live pipeline's in-place widening hook
	schema   *table.Schema
	acct     *energy.Account
	batches  []*table.Batch
	pos      int
	cur      *table.Batch
	rowCount int64
	res      *Result
	onDone   []func()
}

// Discard drops result batches as they are produced, keeping only the
// row count — for throughput drivers that would otherwise buffer every
// stream's output. It must be called before the simulation is pumped.
func (r *Rows) Discard() { r.discard = true }

// Next advances to the next result batch, pumping the simulation as
// needed; it returns false at end of stream, on error, or after Close.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	r.db.pumpUntil(func() bool { return r.pos < len(r.batches) || r.done })
	if r.pos < len(r.batches) {
		r.cur = r.batches[r.pos]
		r.pos++
		return true
	}
	r.cur = nil
	return false
}

// Batch returns the batch produced by the last successful Next. It is
// owned by the Rows and valid until Close.
func (r *Rows) Batch() *table.Batch { return r.cur }

// Err reports the statement's execution error, if any.
func (r *Rows) Err() error { return r.err }

// Close cancels the statement if it is still pending or running — the
// query process (and the exchange workers under it) stops at its next
// batch boundary and its cancelled scan readers unwind at theirs, so
// once the engine drains no process of the query is left alive — and
// releases buffered batches. Closing a statement that is still *queued*
// at admission dequeues it without ever dispatching it: it opens no
// energy account and counts as Canceled, not Completed, in the admission
// stats. Closing a finished Rows just releases its buffers. A close is
// the client's own decision, so it is not an error: Err stays nil unless
// the query had already failed.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.cancel = true
	if !r.done && r.ticket != nil && r.db.Adm.Cancel(r.ticket) {
		// Dequeued before it ever ran: settle immediately. finish() sees
		// no plan and no account, so nothing is billed.
		r.finish(r.db.Srv.Eng.Now())
	}
	r.db.pumpUntil(func() bool { return r.done })
	r.batches = nil
	r.cur = nil
	return r.err
}

// Collect runs the statement to completion and materialises all result
// rows into Result.Rows — the convenience path DB.Exec uses. It fails on
// a closed Rows (Close released the buffered batches) and on a discarded
// one (use Result or RowCount there).
func (r *Rows) Collect() (*Result, error) {
	if r.closed {
		return nil, fmt.Errorf("core: Collect on closed Rows (batches released)")
	}
	if r.discard {
		return nil, fmt.Errorf("core: Collect on discarded Rows (use Result or RowCount)")
	}
	res, err := r.Result()
	if err != nil {
		return nil, err
	}
	if res.Rows == nil && r.schema != nil {
		t := table.NewTable(r.schema)
		for _, b := range r.batches {
			t.AppendBatch(b)
		}
		res.Rows = t
	}
	return res, nil
}

// Result runs the statement to completion and returns its Result without
// materialising rows into a table (Result.Rows stays nil unless Collect
// built it).
func (r *Rows) Result() (*Result, error) {
	r.db.pumpUntil(func() bool { return r.done })
	if !r.done {
		return nil, fmt.Errorf("core: query %d never completed (simulation ran dry)", r.id)
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.res, nil
}

// RowCount runs the statement to completion and reports how many rows it
// produced (it survives Discard).
func (r *Rows) RowCount() (int64, error) {
	if _, err := r.Result(); err != nil {
		return 0, err
	}
	return r.rowCount, nil
}

// Granted reports the cores granted at admission (0 until admitted).
func (r *Rows) Granted() int { return r.granted }

// Retries reports how many times the statement was re-executed after a
// transient device fault (see Config.RetryMax).
func (r *Rows) Retries() int { return r.retries }

// Stats returns the query's settled Result, nil until the statement has
// finished. Unlike Result it never pumps the simulation and is readable
// even when the query failed — finish() always builds it — which is what
// the server's DONE frame needs: a deadline-expired query still reports
// its elapsed time, wait, and attributed joules alongside its error.
func (r *Rows) Stats() *Result { return r.res }

// Attributed reports the energy billed to this query's account (zero
// until settled). Unlike Result it is readable even when the query
// failed: a crashed or faulted query's joules are still its joules, and
// harnesses verifying the attribution invariant need them.
func (r *Rows) Attributed() energy.Joules {
	if r.res == nil {
		return 0
	}
	return r.res.Attributed
}

// Drain runs the simulation until no scheduled work remains: every
// submitted statement on every session has finished. Multi-stream
// drivers submit their whole workload and then Drain once.
func (db *DB) Drain() error { return db.Srv.Eng.Run() }

// pumpUntil advances the simulation one event at a time until ready()
// holds or no events remain.
func (db *DB) pumpUntil(ready func() bool) {
	eng := db.Srv.Eng
	for !ready() && eng.Step() {
	}
}

// submitRows hands a statement to the admission controller, at its
// requested time if that is still in the future. It is idempotent: a
// statement can be offered both by its predecessor's onDone hook and by
// crash recovery's re-arm pass, and must be submitted exactly once.
func (db *DB) submitRows(r *Rows) {
	if r.pending || r.submitted || r.done {
		return
	}
	eng := db.Srv.Eng
	if r.at > eng.Now() {
		r.pending = true
		eng.At(r.at, fmt.Sprintf("submit%d", r.id), func() {
			r.pending = false
			db.doSubmit(r)
		})
		return
	}
	db.doSubmit(r)
}

func (db *DB) doSubmit(r *Rows) {
	if r.cancel {
		// Closed before it was ever handed to admission (a chained or
		// future-scheduled statement): settle without submitting.
		r.finish(db.Srv.Eng.Now())
		return
	}
	r.submitted = true
	r.submitT = db.Srv.Eng.Now()
	r.startE = db.Srv.Meter.TotalEnergy(energy.Seconds(r.submitT))
	r.ticket = db.Adm.SubmitJob(sched.Job{
		Name:     fmt.Sprintf("query%d", r.id),
		Want:     db.Env.Cores,
		Deadline: r.deadline,
		Tag:      r.stmt.text, // consolidating policies batch same-statement work
		Run:      func(p *sim.Proc, granted int) { db.runQuery(p, r, granted) },
		Fail:     func(err error) { db.failRows(r, err) },
	})
}

// failRows settles a query that admission rejected before it ever ran
// (its deadline passed while queued). No plan was compiled and no energy
// account was opened, so the query bills nothing.
func (db *DB) failRows(r *Rows, err error) {
	if r.done {
		return
	}
	r.err = &exec.QueryError{Query: r.stmt.text, ID: r.id, Err: err}
	r.finish(db.Srv.Eng.Now())
}

// runQuery is the admitted query's process: plan for the grant, open an
// attribution account, execute — retrying transient device faults with
// exponential sim-time backoff, every attempt billed to the same account
// — and settle the result.
func (db *DB) runQuery(p *sim.Proc, r *Rows, granted int) {
	if r.done {
		// Settled while queued (crash recovery or a late cancel lost the
		// race with dispatch): the grant goes straight back.
		return
	}
	r.granted = granted
	r.startT = p.Now()
	if !r.cancel {
		budget := 0.0
		if r.deadline > 0 {
			budget = r.deadline - p.Now()
		}
		plan, err := r.stmt.planFor(granted, budget)
		if err != nil {
			r.err = err
		} else {
			r.plan = plan
			// The plan is chosen: give cores it cannot occupy back to the
			// free pool, so a serial plan on a wide grant does not
			// serialize later arrivals behind idle cores. Result.Granted
			// keeps the admission grant the plan was priced against.
			db.Adm.Shrink(r.ticket, plan.MaxDOP())
			if db.cfg.DVFS {
				db.votePState(r.id, plan.PState)
			}
			if db.cfg.ReGrant {
				db.Adm.SetWiden(r.ticket, func(free int) int { return db.widenOffer(r, free) })
			}
			if r.deadline > 0 {
				// The admission-side timer cannot touch a running job;
				// this one can. At the deadline the query's cancel flag
				// trips and it stops at its next batch boundary,
				// returning its grant when the process exits.
				db.Srv.Eng.At(r.deadline, fmt.Sprintf("deadline%d", r.id), func() {
					if !r.done {
						r.expired = true
						r.cancel = true
					}
				})
			}
			acct := db.Attr.Begin(energy.Seconds(p.Now()))
			r.acct = acct
			p.SetOwner(acct)
			backoff := db.cfg.RetryBackoff
			for attempt := 0; ; attempt++ {
				r.err = db.executeRows(p, r, plan)
				if r.err == errRestartPlan {
					// A re-grant widened the query: drop the (empty) partial
					// state and re-execute on the wider plan, same account —
					// the narrow attempt's joules stay billed to this query.
					plan = r.nextPlan
					r.plan, r.nextPlan = plan, nil
					if db.cfg.DVFS {
						db.votePState(r.id, plan.PState)
					}
					r.batches, r.pos, r.cur, r.rowCount = nil, 0, nil, 0
					r.err = nil
					continue
				}
				if r.err == nil || r.cancel ||
					!fault.IsTransient(r.err) || attempt >= db.cfg.RetryMax {
					break
				}
				// Transient device fault: drop the partial result, back
				// off in simulated time, and re-execute from the cached
				// plan. The account stays open across attempts, so one
				// query bills exactly one account however often it runs.
				r.retries++
				r.batches, r.pos, r.cur, r.rowCount = nil, 0, nil, 0
				p.Sleep(backoff)
				backoff *= 2
			}
			p.SetOwner(nil)
			db.Attr.End(acct, energy.Seconds(p.Now()))
			if db.cfg.DVFS {
				db.dropPState(r.id)
			}
			if db.cfg.ReGrant {
				db.Adm.SetWiden(r.ticket, nil)
			}
		}
	}
	if r.expired && r.err == nil {
		r.err = fmt.Errorf("core: query %d past deadline %.6f: %w",
			r.id, r.deadline, fault.ErrDeadlineExceeded)
	}
	if r.err != nil {
		var qe *exec.QueryError
		if !errors.As(r.err, &qe) {
			r.err = &exec.QueryError{Query: r.stmt.text, ID: r.id, Err: r.err}
		}
	}
	r.finish(p.Now())
}

// errRestartPlan is the executeRows sentinel for a re-grant pipeline
// restart: the query accepted a wider grant and must re-execute on
// r.nextPlan. It never escapes runQuery.
var errRestartPlan = errors.New("core: pipeline restarting on a wider grant")

// executeRows drives the operator tree, buffering (or discarding) each
// produced batch; r.cancel stops it at the next batch boundary, and
// r.restart (a re-grant widening) tears the pipeline down there and asks
// runQuery to re-execute on the wider plan.
func (db *DB) executeRows(p *sim.Proc, r *Rows, plan *opt.Plan) error {
	ctx := db.NewCtx(p)
	r.widener = ctx.Widen
	op, err := plan.Build(ctx)
	if err != nil {
		return err
	}
	r.schema = op.Schema()
	if err := op.Open(ctx); err != nil {
		return err
	}
	for !r.cancel {
		if r.restart {
			r.restart = false
			_ = op.Close(ctx)
			return errRestartPlan
		}
		b, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return err
		}
		if b == nil {
			break
		}
		if b.Rows() == 0 {
			continue
		}
		r.rowCount += int64(b.Rows())
		if !r.discard {
			r.batches = append(r.batches, b.Clone()) // producers reuse buffers
		}
	}
	return op.Close(ctx)
}

// widenOffer is the re-grant callback: a completion left free cores with
// nothing queued, and the admission controller offers them to this
// running query. The cheap path widens the running pipeline in place: a
// fragmented exchange absorbs the cores by spawning extra fragments
// against its live morsel dispenser, so no work is redone and the result
// is unchanged (fragments only change which worker claims which morsel).
// Only when no running exchange can absorb the cores does the query fall
// back to a full replan-and-restart — and that restart point is "before
// the first batch", which keeps the result bit-identical to the narrow
// run (deterministic plans at every DOP) at the cost of redoing the
// narrow work already billed to this query's account. It returns the
// cores accepted; the controller moves them onto the ticket's grant.
func (db *DB) widenOffer(r *Rows, free int) int {
	if r.done || r.cancel || r.restart || r.err != nil || free <= 0 {
		return 0
	}
	if n := r.widener.Offer(free); n > 0 {
		return n
	}
	if r.rowCount > 0 {
		return 0
	}
	// Replanning re-places dirty tables; declining is safer than placing
	// from event context mid-run (and a dirty table would invalidate the
	// running plan anyway).
	for _, a := range r.stmt.query.Tables {
		if db.dirty[r.stmt.query.Rels[a]] {
			return 0
		}
	}
	cur := r.ticket.Granted
	budget := 0.0
	if r.deadline > 0 {
		budget = r.deadline - db.Srv.Eng.Now()
		if budget <= 0 {
			return 0
		}
	}
	wide, err := r.stmt.planFor(cur+free, budget)
	if err != nil || wide.MaxDOP() <= cur {
		return 0
	}
	r.nextPlan = wide
	r.restart = true
	return wide.MaxDOP() - cur
}

// finish settles the query's Result and releases chained statements.
func (r *Rows) finish(now float64) {
	meter := r.db.Srv.Meter
	endT := energy.Seconds(now)
	res := &Result{
		Plan:     r.plan,
		Elapsed:  endT - energy.Seconds(r.submitT),
		Joules:   meter.TotalEnergy(endT) - r.startE,
		Wait:     energy.Seconds(r.startT - r.submitT),
		Granted:  r.granted,
		RowCount: r.rowCount,
	}
	if !r.discard {
		// The per-component breakdown is a formatted string over every
		// device trace; throughput drivers that discard their rows do not
		// read it, so do not pay for it per query.
		res.Report = meter.Report(endT)
	}
	if r.acct != nil {
		res.Attributed = r.acct.Attributed()
		res.Marginal = r.acct.Direct()
		res.Shared = r.acct.Shared()
	}
	r.res = res
	if r.err == nil && r.plan != nil {
		r.db.queries++
	}
	delete(r.db.inflight, r.id)
	r.done = true
	for _, f := range r.onDone {
		f()
	}
	r.onDone = nil
}
