package core

import (
	"math"
	"regexp"
	"testing"

	"energydb/internal/hw"
	"energydb/internal/opt"
)

// planAggDop matches an agg plan line that carries a pipeline DOP.
var planAggDop = regexp.MustCompile(`(?m)^\s*agg .*dop=`)

// pipelineRig is parallelRig with an NVMe-class flash array: storage fast
// enough that whole-pipeline CPU — not the scan's I/O — bounds elapsed
// time. This is the regime where parallelism *above* the scan matters: on
// parallelRig the I/O floor hides the serial aggregation entirely, so the
// Amdahl gap PR 4 closes would be invisible.
func pipelineRig() hw.ServerSpec {
	spec := parallelRig()
	ssd := spec.SSD
	ssd.ReadBW *= 4
	spec.SSD = ssd
	return spec
}

// openParDB builds a DB on the CPU-bound pipeline rig, loads tiny TPC-H,
// and applies the planning knobs. blockRows trades page-read amplification
// (small blocks share pages and re-read them) against morsel count; tests
// that must fragment a small table use small blocks.
func openParDB(t *testing.T, obj opt.Objective, cores, maxPipelineDOP, blockRows int) *DB {
	t.Helper()
	db, err := Open(Config{
		Server:    pipelineRig(),
		Objective: obj,
		BlockRows: blockRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadTinyTPCH(t, db, 0.01)
	db.Env.Cores = cores
	db.Env.MaxPipelineDOP = maxPipelineDOP
	return db
}

// TestParallelAggEndToEnd is the tentpole's acceptance test: a many-group
// SELECT k, SUM(v) … GROUP BY k over generated lineitem must plan a
// partitioned parallel aggregation under MinTime, produce results
// identical to the serial plan, and beat the scan-only PR 3 plan's
// simulated elapsed time — while MinEnergy still picks the cheaper-joule
// (serial-aggregation) plan.
func TestParallelAggEndToEnd(t *testing.T) {
	const query = `SELECT l_partkey, COUNT(*) AS n, SUM(l_quantity) AS q
		FROM lineitem GROUP BY l_partkey ORDER BY l_partkey`

	measure := func(obj opt.Objective, cores, maxPipe int) *Result {
		db := openParDB(t, obj, cores, maxPipe, 4096)
		res, err := db.Exec(query)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := measure(opt.MinTime, 1, 0)
	scanOnly := measure(opt.MinTime, 8, 1) // PR 3 shape: parallel scan, serial agg
	par := measure(opt.MinTime, 8, 0)
	lean := measure(opt.MinEnergy, 8, 0)

	if planAggDop.MatchString(serial.Plan.Explain()) {
		t.Fatalf("1-core plan fragmented the aggregation:\n%s", serial.Plan.Explain())
	}
	if planAggDop.MatchString(scanOnly.Plan.Explain()) {
		t.Fatalf("MaxPipelineDOP=1 plan fragmented the aggregation:\n%s", scanOnly.Plan.Explain())
	}
	if !planAggDop.MatchString(par.Plan.Explain()) {
		t.Fatalf("8-core MinTime plan kept the aggregation serial:\n%s", par.Plan.Explain())
	}
	if planAggDop.MatchString(lean.Plan.Explain()) {
		t.Fatalf("MinEnergy plan bought parallel aggregation (joules are flat in DOP):\n%s", lean.Plan.Explain())
	}
	// MinEnergy's chosen plan must not model more joules than MinTime's.
	if lean.Plan.Cost().Joules > par.Plan.Cost().Joules+1e-12 {
		t.Fatalf("MinEnergy plan hotter than MinTime plan: %v vs %v", lean.Plan.Cost(), par.Plan.Cost())
	}

	// Identical results at every parallelism level (ORDER BY fixes the
	// order; COUNT and SUM over integer-valued quantities are exact).
	for _, res := range []*Result{scanOnly, par, lean} {
		if res.Rows.Rows() != serial.Rows.Rows() {
			t.Fatalf("group counts differ: %d vs serial %d", res.Rows.Rows(), serial.Rows.Rows())
		}
		for i := 0; i < serial.Rows.Rows(); i++ {
			for c := 0; c < 3; c++ {
				if serial.Rows.Column(c).Value(i).Compare(res.Rows.Column(c).Value(i)) != 0 {
					t.Fatalf("row %d col %d: %v vs serial %v",
						i, c, res.Rows.Column(c).Value(i), serial.Rows.Column(c).Value(i))
				}
			}
		}
	}

	// The partitioned aggregation must push simulated elapsed time beyond
	// what scan-only parallelism achieves on this agg-heavy workload.
	if float64(par.Elapsed) >= float64(scanOnly.Elapsed)*0.9 {
		t.Fatalf("parallel agg not meaningfully faster than scan-only plan: %.5fs vs %.5fs",
			float64(par.Elapsed), float64(scanOnly.Elapsed))
	}
	t.Logf("serial %.5fs | scan-only %.5fs | partitioned agg %.5fs (%.2fx vs scan-only)",
		float64(serial.Elapsed), float64(scanOnly.Elapsed), float64(par.Elapsed),
		float64(scanOnly.Elapsed)/float64(par.Elapsed))
}

// TestParallelJoinBuildEndToEnd: the join+group-by shape must parallelise
// the hash join under MinTime — via a fragmented build (build_dop), a
// fragmented probe pipeline (probe_dop), or both — match the serial
// plan's results exactly, and stay serial under MinEnergy.
func TestParallelJoinBuildEndToEnd(t *testing.T) {
	const query = `SELECT o_orderpriority, COUNT(*) AS n
		FROM lineitem, orders WHERE l_orderkey = o_orderkey
		GROUP BY o_orderpriority ORDER BY o_orderpriority`

	measure := func(obj opt.Objective, cores int) *Result {
		db := openParDB(t, obj, cores, 0, 1024)
		res, err := db.Exec(query)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := measure(opt.MinTime, 1)
	par := measure(opt.MinTime, 8)
	lean := measure(opt.MinEnergy, 8)

	joinDop := regexp.MustCompile(`(build_dop|probe_dop)=`)
	if ex := serial.Plan.Explain(); joinDop.MatchString(ex) {
		t.Fatalf("1-core plan fragmented the join:\n%s", ex)
	}
	if ex := par.Plan.Explain(); !joinDop.MatchString(ex) {
		t.Fatalf("8-core MinTime plan kept the join serial:\n%s", ex)
	}
	if ex := lean.Plan.Explain(); joinDop.MatchString(ex) {
		t.Fatalf("MinEnergy plan bought a parallel join:\n%s", ex)
	}

	if par.Rows.Rows() != serial.Rows.Rows() || lean.Rows.Rows() != serial.Rows.Rows() {
		t.Fatalf("group counts differ: serial %d, parallel %d, energy %d",
			serial.Rows.Rows(), par.Rows.Rows(), lean.Rows.Rows())
	}
	for i := 0; i < serial.Rows.Rows(); i++ {
		for c := 0; c < 2; c++ {
			if serial.Rows.Column(c).Value(i).Compare(par.Rows.Column(c).Value(i)) != 0 {
				t.Fatalf("row %d col %d: parallel %v vs serial %v",
					i, c, par.Rows.Column(c).Value(i), serial.Rows.Column(c).Value(i))
			}
			if serial.Rows.Column(c).Value(i).Compare(lean.Rows.Column(c).Value(i)) != 0 {
				t.Fatalf("row %d col %d: energy %v vs serial %v",
					i, c, lean.Rows.Column(c).Value(i), serial.Rows.Column(c).Value(i))
			}
		}
	}
	if float64(par.Elapsed) >= float64(serial.Elapsed) {
		t.Fatalf("parallel build no faster: %.5fs vs %.5fs serial",
			float64(par.Elapsed), float64(serial.Elapsed))
	}
	t.Logf("serial %.5fs | parallel build %.5fs (%.2fx)",
		float64(serial.Elapsed), float64(par.Elapsed),
		float64(serial.Elapsed)/float64(par.Elapsed))
}

// TestParallelShapesBusyCoresAndLedger covers the acceptance criteria for
// the two fragmented TPC-H shapes — scan→filter→agg (the filter runs
// inside the scan fragments) and scan→probe→residual-filter→agg (the
// probe and the cross-table residual run inside the fragments): under
// 8-core MinTime each must fragment, realise concurrency on the shared
// CPU (PeakBusyCores ≥ 2), beat its 1-core run, match its rows exactly,
// and keep the attribution invariant — attributed plus unattributed
// joules equal the wall meter within 1e-6 — on the parallel paths.
func TestParallelShapesBusyCoresAndLedger(t *testing.T) {
	shapes := []struct{ name, query string }{
		{"filter_agg", `SELECT l_returnflag, COUNT(*) AS n FROM lineitem
			WHERE l_quantity < 45 AND l_discount > 0.01
			GROUP BY l_returnflag ORDER BY l_returnflag`},
		{"probe_agg", `SELECT o_orderpriority, COUNT(*) AS n FROM lineitem, orders
			WHERE l_orderkey = o_orderkey AND l_extendedprice < o_totalprice
			GROUP BY o_orderpriority ORDER BY o_orderpriority`},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			measure := func(cores int) (*Result, *DB) {
				db := openParDB(t, opt.MinTime, cores, 0, 1024)
				res, err := db.Exec(sh.query)
				if err != nil {
					t.Fatal(err)
				}
				return res, db
			}
			serial, _ := measure(1)
			par, db := measure(8)

			if ex := par.Plan.Explain(); !regexp.MustCompile(`dop=`).MatchString(ex) {
				t.Fatalf("8-core MinTime plan did not fragment:\n%s", ex)
			}
			if peak := db.Srv.CPU.PeakBusyCores(); peak < 2 {
				t.Fatalf("peak busy cores = %d, want >= 2:\n%s", peak, par.Plan.Explain())
			}
			if par.Rows.Rows() != serial.Rows.Rows() {
				t.Fatalf("group counts differ: %d vs serial %d", par.Rows.Rows(), serial.Rows.Rows())
			}
			for i := 0; i < serial.Rows.Rows(); i++ {
				for c := 0; c < 2; c++ {
					if serial.Rows.Column(c).Value(i).Compare(par.Rows.Column(c).Value(i)) != 0 {
						t.Fatalf("row %d col %d: parallel %v vs serial %v",
							i, c, par.Rows.Column(c).Value(i), serial.Rows.Column(c).Value(i))
					}
				}
			}
			if float64(par.Elapsed) >= float64(serial.Elapsed) {
				t.Fatalf("parallel no faster: %.5fs vs %.5fs serial",
					float64(par.Elapsed), float64(serial.Elapsed))
			}
			meter, unattr := db.Ledger()
			attributed := float64(par.Attributed)
			if diff := math.Abs(float64(meter) - (attributed + float64(unattr))); diff > 1e-6 {
				t.Fatalf("ledger broken on parallel path: meter %.6f != attributed %.6f + unattributed %.6f (diff %.2e)",
					float64(meter), attributed, float64(unattr), diff)
			}
			t.Logf("%s: serial %.5fs | parallel %.5fs (%.2fx), peak %d cores, ledger diff ok",
				sh.name, float64(serial.Elapsed), float64(par.Elapsed),
				float64(serial.Elapsed)/float64(par.Elapsed), db.Srv.CPU.PeakBusyCores())
		})
	}
}
