package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"energydb/internal/table"
)

// This file encodes insert batches into WAL record payloads and back.
// A record is self-describing up to the schema: it names the table, the
// row index the batch starts at (so replay can tell records already
// covered by a placement checkpoint from ones that must be reapplied),
// and the row values serialised by physical class. Decoding borrows the
// column types from the live schema, which the catalog keeps — this
// engine models data loss, not catalog loss.
//
// layout:
//
//	[u16 nameLen][name][u64 startRow][u32 nRows][u32 nCols]
//	then per row, per column:
//	  PhysInt:   [u64 value]
//	  PhysFloat: [u64 IEEE-754 bits]
//	  PhysStr:   [u32 len][bytes]
//
// Payloads are zero-padded to walMinPayload so that tiny inserts still
// pay a realistic minimum commit size on the log device; the counts
// above make the padding self-delimiting.
const walMinPayload = 64

func encodeInsert(name string, s *table.Schema, startRow int64, rows [][]table.Value) []byte {
	buf := binary.LittleEndian.AppendUint16(nil, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(startRow))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Cols)))
	for _, r := range rows {
		for i, v := range r {
			switch s.Cols[i].Type.Physical() {
			case table.PhysInt:
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
			case table.PhysFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
			default:
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
				buf = append(buf, v.S...)
			}
		}
	}
	for len(buf) < walMinPayload {
		buf = append(buf, 0)
	}
	return buf
}

func decodeInsert(payload []byte, schemas map[string]*table.Schema) (name string, startRow int64, rows [][]table.Value, err error) {
	b := payload
	take := func(n int) ([]byte, error) {
		if len(b) < n {
			return nil, fmt.Errorf("core: truncated wal insert record")
		}
		v := b[:n]
		b = b[n:]
		return v, nil
	}
	hdr, err := take(2)
	if err != nil {
		return "", 0, nil, err
	}
	nb, err := take(int(binary.LittleEndian.Uint16(hdr)))
	if err != nil {
		return "", 0, nil, err
	}
	name = string(nb)
	s, ok := schemas[name]
	if !ok {
		return "", 0, nil, fmt.Errorf("core: wal insert into unknown table %q", name)
	}
	fixed, err := take(8 + 4 + 4)
	if err != nil {
		return "", 0, nil, err
	}
	startRow = int64(binary.LittleEndian.Uint64(fixed[0:8]))
	nRows := int(binary.LittleEndian.Uint32(fixed[8:12]))
	nCols := int(binary.LittleEndian.Uint32(fixed[12:16]))
	if nCols != len(s.Cols) {
		return "", 0, nil, fmt.Errorf("core: wal insert into %q has %d columns, schema has %d",
			name, nCols, len(s.Cols))
	}
	rows = make([][]table.Value, 0, nRows)
	for ri := 0; ri < nRows; ri++ {
		r := make([]table.Value, nCols)
		for i := 0; i < nCols; i++ {
			ct := s.Cols[i].Type
			switch ct.Physical() {
			case table.PhysInt:
				w, err := take(8)
				if err != nil {
					return "", 0, nil, err
				}
				r[i] = table.Value{Type: ct, I: int64(binary.LittleEndian.Uint64(w))}
			case table.PhysFloat:
				w, err := take(8)
				if err != nil {
					return "", 0, nil, err
				}
				r[i] = table.Value{Type: ct, F: math.Float64frombits(binary.LittleEndian.Uint64(w))}
			default:
				lw, err := take(4)
				if err != nil {
					return "", 0, nil, err
				}
				sw, err := take(int(binary.LittleEndian.Uint32(lw)))
				if err != nil {
					return "", 0, nil, err
				}
				r[i] = table.Value{Type: ct, S: string(sw)}
			}
		}
		rows = append(rows, r)
	}
	return name, startRow, rows, nil
}
