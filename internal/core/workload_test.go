package core

import (
	"fmt"
	"strings"
	"testing"

	"energydb/internal/hw"
	"energydb/internal/opt"
)

// This file tests the workload-energy manager end to end: the
// idle-floor-aware MinEnergy objective against the wall meter, and
// re-grant pipeline widening against the narrow reference run.

// TestIdleFloorAwareMinEnergyMatchesWallMeter is the acceptance check
// that objective and meter finally agree. On the race-to-idle rig and
// query (the PR 3 scenario: parallel is faster at *lower* whole-server
// energy because the idle floor dominates), marginal MinEnergy picks the
// serial plan the wall meter dislikes; idle-floor-aware MinEnergy picks
// the parallel plan the wall meter prefers.
func TestIdleFloorAwareMinEnergyMatchesWallMeter(t *testing.T) {
	const query = `SELECT COUNT(*) AS n FROM lineitem
		WHERE l_quantity < 25 AND l_discount > 0.02 AND l_extendedprice < 50000`

	measure := func(mode opt.EnergyMode) (joules float64, n int64, explain string) {
		db, err := Open(Config{
			Server:     parallelRig(),
			Objective:  opt.MinEnergy,
			EnergyMode: mode,
			BlockRows:  4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		loadTinyTPCH(t, db, 0.01)
		res, err := db.Exec(query)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Joules), res.Rows.Column(0).I[0], res.Plan.Explain()
	}

	jm, nm, exm := measure(opt.MarginalEnergy)
	ja, na, exa := measure(opt.IdleFloorAware)

	if strings.Contains(exm, "dop=") {
		t.Fatalf("marginal MinEnergy went parallel:\n%s", exm)
	}
	if !strings.Contains(exa, "dop=") {
		t.Fatalf("idle-floor-aware MinEnergy stayed serial:\n%s", exa)
	}
	if nm == 0 || nm != na {
		t.Fatalf("counts differ: %d vs %d", nm, na)
	}
	// The wall meter prefers the plan the aware objective picked.
	if ja >= jm {
		t.Fatalf("idle-floor-aware plan metered %.4fJ >= marginal plan's %.4fJ", ja, jm)
	}
	t.Logf("marginal: %.4fJ (serial)  idle-floor-aware: %.4fJ (parallel, %.2fx)", jm, ja, ja/jm)
}

// regrantPair runs a long aggregation and a short count concurrently on
// the 8-core rig (fair-share splits the box 4/4) and returns the long
// query's result fingerprint, its elapsed seconds, and the re-grant
// count. With ReGrant on, the short query's completion offers its cores
// back and the aggregation widens mid-run: the live pipeline spawns
// extra fragments against its morsel dispenser instead of restarting.
func regrantPair(t *testing.T, regrant bool) (fp string, elapsed float64, regrants int64) {
	t.Helper()
	db, err := Open(Config{
		Server:    parallelRig(),
		Objective: opt.MinTime,
		BlockRows: 1024, // enough morsels that an 8-core grant can out-fan a 4-core one
		ReGrant:   regrant,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadTinyTPCH(t, db, 0.03)

	s1, s2 := db.Session(), db.Session()
	defer s1.Close()
	defer s2.Close()
	// The aggregates are exact in float64 (counts and sums of small
	// integers), so a wider partitioning cannot perturb low-order bits;
	// the predicate work keeps the pipeline CPU-bound enough that eight
	// workers genuinely beat four.
	long, err := s1.Query(`SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q
		FROM lineitem
		WHERE l_quantity < 48 AND l_discount > 0.01 AND l_extendedprice < 80000 AND l_tax < 0.09
		GROUP BY l_returnflag ORDER BY l_returnflag`)
	if err != nil {
		t.Fatal(err)
	}
	short, err := s2.Query(`SELECT COUNT(*) AS n FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := short.Result(); err != nil {
		t.Fatal(err)
	}
	res, err := long.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := 0; i < res.Rows.Rows(); i++ {
		fmt.Fprintf(&b, "%s|%d|%.9f\n", res.Rows.Column(0).S[i],
			res.Rows.Column(1).I[i], res.Rows.Column(2).F[i])
	}
	return b.String(), float64(res.Elapsed), db.SchedStats().Regrants
}

// TestReGrantWidensAndPreservesResults: the widened run must actually
// widen (re-grants observed, and the extra fragments absorbed in place
// must make the long query finish sooner than the narrow run) and
// produce bit-identical rows to the narrow run.
func TestReGrantWidensAndPreservesResults(t *testing.T) {
	narrowFP, narrowElapsed, narrowRegrants := regrantPair(t, false)
	wideFP, wideElapsed, wideRegrants := regrantPair(t, true)

	if narrowRegrants != 0 {
		t.Fatalf("ReGrant off but %d regrants recorded", narrowRegrants)
	}
	if wideRegrants == 0 {
		t.Fatalf("ReGrant on but no widening happened (narrow %.5fs, wide %.5fs)",
			narrowElapsed, wideElapsed)
	}
	if wideElapsed >= narrowElapsed {
		t.Fatalf("widened run no faster: %.5fs vs %.5fs narrow", wideElapsed, narrowElapsed)
	}
	if wideFP != narrowFP {
		t.Fatalf("re-grant changed the result:\nnarrow:\n%swide:\n%s", narrowFP, wideFP)
	}
	t.Logf("narrow %.5fs, widened %.5fs (%.2fx) after %d regrants; results bit-identical",
		narrowElapsed, wideElapsed, narrowElapsed/wideElapsed, wideRegrants)
}

// TestDVFSGovernorActuatesPState: a DVFS-enabled MinEnergy query whose
// plan chose a low P-state drives the CPU there while it runs and back
// to P0 after; a concurrent P0 vote wins. SmallServer's CPU carries
// {P0, P1}.
func TestDVFSGovernorActuatesPState(t *testing.T) {
	db, err := Open(Config{
		Server:     parallelRigDVFS(),
		Objective:  opt.MinEnergy,
		EnergyMode: opt.IdleFloorAware,
		DVFS:       true,
		BlockRows:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadTinyTPCH(t, db, 0.01)

	res, err := db.Exec(`SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 30`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.PState != 1 {
		t.Fatalf("MinEnergy+DVFS plan at P-state %d, want 1:\n%s", res.Plan.PState, res.Plan.Explain())
	}
	// The governor dropped the vote at completion: back to P0.
	if got := db.Srv.CPU.PState(); got != 0 {
		t.Fatalf("CPU left at P-state %d after the query finished", got)
	}
	// While running, the CPU must actually have been slowed: the query's
	// elapsed matches the P1 frequency, not P0 — cheap proxy: the plan's
	// modelled seconds at P1 and the measured elapsed agree within the
	// model's usual slack, and both exceed the P0 model.
	if res.Plan.PStateName != "P1" {
		t.Fatalf("plan P-state name = %q", res.Plan.PStateName)
	}
}

// parallelRigDVFS is the race-to-idle rig with a low idle floor and a
// deep P-state, the regime where wide-and-slow wins: marginal power
// (8 × 15 W) dwarfs the 12 W floor, so trading seconds for active watts
// pays even after billing the extra floor seconds.
func parallelRigDVFS() hw.ServerSpec {
	spec := parallelRig()
	spec.CPU.IdleWatts = 12
	spec.CPU.PStates = []hw.PState{
		{Name: "P0", FreqScale: 1, PowerScale: 1},
		{Name: "P1", FreqScale: 0.7, PowerScale: 0.4},
	}
	return spec
}
