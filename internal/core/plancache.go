package core

import (
	"fmt"

	"energydb/internal/opt"
)

// PlanCache shares prepared statements across sessions: two sessions
// preparing the same SQL get Stmts backed by one bound query and one
// planSet, so the second session reuses every physical plan the first
// one compiled (per admission grant). The server front door keeps one
// cache per tenant — plan reuse must not leak placement or statistics
// across tenant boundaries, and a tenant's epoch-invalidated entries
// must not evict a neighbour's.
//
// Invalidation is the planSet's own: planFor compares the placement
// epochs its plans were built on against the tables' current epochs and
// drops stale plans before reuse, so a cached entry survives a table
// rewrite — it just replans on next use. The cache itself never goes
// stale; only its plans do.
//
// The simulation executes one event at a time, so the counters and map
// need no locking.
type PlanCache struct {
	entries map[string]*sharedPrepared // by SQL text
	hits    int64
	misses  int64
}

// sharedPrepared is the session-independent part of a prepared
// statement: the bound query and its compiled-plan cache.
type sharedPrepared struct {
	query *opt.Query
	ps    *planSet
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: map[string]*sharedPrepared{}}
}

// Stats reports how many PrepareCached calls reused an entry vs bound
// and planned from scratch.
func (c *PlanCache) Stats() (hits, misses int64) { return c.hits, c.misses }

// PrepareCached is Prepare through a shared cache: a hit skips parsing,
// binding, and — because the returned Stmt shares the entry's planSet —
// optimization for every grant already planned by any session using the
// same cache. The Stmt is still session-bound (its queries chain on this
// session's statement stream); only the immutable query and the plan
// cache are shared.
func (s *Session) PrepareCached(c *PlanCache, query string) (*Stmt, error) {
	if c == nil {
		return s.Prepare(query)
	}
	if s.closed {
		return nil, fmt.Errorf("core: session %d is closed", s.id)
	}
	if e, ok := c.entries[query]; ok {
		c.hits++
		return &Stmt{sess: s, text: query, query: e.query, ps: e.ps}, nil
	}
	st, err := s.Prepare(query)
	if err != nil {
		return nil, err
	}
	c.misses++
	c.entries[query] = &sharedPrepared{query: st.query, ps: st.ps}
	return st, nil
}
