package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Trace records the piecewise-constant power draw of a single component and
// integrates it into energy. The owning component calls Set whenever its
// power level changes; the trace accumulates energy for the interval since
// the previous change.
//
// Trace is not safe for concurrent use: the simulation engine guarantees
// only one process runs at a time.
type Trace struct {
	name   string
	lastT  Seconds
	lastW  Watts
	total  Joules
	peak   Watts
	busyAt Seconds // accumulated time at nonzero power
}

// NewTrace returns a trace starting at time 0 with power w0.
func NewTrace(name string, w0 Watts) *Trace {
	return &Trace{name: name, lastW: w0, peak: w0}
}

// Name reports the component name used in reports.
func (tr *Trace) Name() string { return tr.name }

// Set records that the component's power changed to w at time t. Time must
// be monotonically non-decreasing; Set panics on time travel because that
// always indicates a simulator bug that would silently corrupt energy.
func (tr *Trace) Set(t Seconds, w Watts) {
	if t < tr.lastT {
		panic(fmt.Sprintf("energy: trace %q time went backwards: %v -> %v", tr.name, tr.lastT, t))
	}
	dt := t - tr.lastT
	tr.total += Energy(tr.lastW, dt)
	if tr.lastW > 0 {
		tr.busyAt += dt
	}
	tr.lastT = t
	tr.lastW = w
	if w > tr.peak {
		tr.peak = w
	}
}

// Power reports the current power level.
func (tr *Trace) Power() Watts { return tr.lastW }

// EnergyAt returns total energy consumed through time t (t >= last change).
func (tr *Trace) EnergyAt(t Seconds) Joules {
	if t < tr.lastT {
		panic(fmt.Sprintf("energy: trace %q queried in the past: %v < %v", tr.name, t, tr.lastT))
	}
	return tr.total + Energy(tr.lastW, t-tr.lastT)
}

// Peak reports the highest power level ever set.
func (tr *Trace) Peak() Watts { return tr.peak }

// Meter aggregates the traces of all components of a system and answers
// whole-system energy questions. It is the simulated analogue of the wall
// power meter used in the paper's experiments.
type Meter struct {
	traces []*Trace
	byName map[string]*Trace
	// Overhead multiplies component energy in TotalEnergy to model power
	// delivery and cooling: the paper cites 0.5–1 W of cooling per server
	// watt [PBS+03]. 1.0 means no overhead.
	Overhead float64
}

// NewMeter returns an empty meter with no cooling/PSU overhead.
func NewMeter() *Meter {
	return &Meter{byName: make(map[string]*Trace), Overhead: 1.0}
}

// Register creates (or returns the existing) trace for a named component
// with initial power w0.
func (m *Meter) Register(name string, w0 Watts) *Trace {
	if tr, ok := m.byName[name]; ok {
		return tr
	}
	tr := NewTrace(name, w0)
	m.traces = append(m.traces, tr)
	m.byName[name] = tr
	return tr
}

// Trace returns the trace registered under name, or nil.
func (m *Meter) Trace(name string) *Trace { return m.byName[name] }

// ComponentEnergy returns energy through t for one component (0 if absent).
func (m *Meter) ComponentEnergy(name string, t Seconds) Joules {
	tr, ok := m.byName[name]
	if !ok {
		return 0
	}
	return tr.EnergyAt(t)
}

// RawEnergy is the sum of all component energies through t, with no
// overhead factor applied.
func (m *Meter) RawEnergy(t Seconds) Joules {
	var sum Joules
	for _, tr := range m.traces {
		sum += tr.EnergyAt(t)
	}
	return sum
}

// TotalEnergy is RawEnergy scaled by the cooling/PSU overhead factor.
func (m *Meter) TotalEnergy(t Seconds) Joules {
	return Joules(float64(m.RawEnergy(t)) * m.Overhead)
}

// TotalPower is the instantaneous whole-system power (with overhead).
func (m *Meter) TotalPower() Watts {
	var sum Watts
	for _, tr := range m.traces {
		sum += tr.Power()
	}
	return Watts(float64(sum) * m.Overhead)
}

// Breakdown returns per-component energy through t, sorted by descending
// energy, for report printing.
func (m *Meter) Breakdown(t Seconds) []ComponentEnergy {
	out := make([]ComponentEnergy, 0, len(m.traces))
	for _, tr := range m.traces {
		out = append(out, ComponentEnergy{Name: tr.name, Energy: tr.EnergyAt(t), Power: tr.Power()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Energy != out[j].Energy {
			return out[i].Energy > out[j].Energy
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ComponentEnergy is one row of a Meter breakdown.
type ComponentEnergy struct {
	Name   string
	Energy Joules
	Power  Watts // instantaneous power at query time
}

// Report formats a breakdown as a small text table.
func (m *Meter) Report(t Seconds) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %10s\n", "component", "energy", "power")
	for _, c := range m.Breakdown(t) {
		fmt.Fprintf(&b, "%-24s %14s %10s\n", c.Name, c.Energy, c.Power)
	}
	fmt.Fprintf(&b, "%-24s %14s %10s\n", "TOTAL (incl. overhead)", m.TotalEnergy(t), m.TotalPower())
	return b.String()
}
