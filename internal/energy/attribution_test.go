package energy

import (
	"math"
	"testing"
)

// TestAttributionSplit checks the arithmetic on a hand-computable trace:
// one 10 W component, two overlapping accounts, one direct charge.
func TestAttributionSplit(t *testing.T) {
	m := NewMeter()
	m.Register("dev", 10)
	at := NewAttributor(m)

	a := at.Begin(0)
	b := at.Begin(5) // settles [0,5): 50 J residual, all to a
	a.ChargeJoules(5)
	at.End(a, 10) // settles [5,10): 50 J total, 5 direct, 45 shared halfway
	at.End(b, 20) // settles [10,20): 100 J residual, all to b

	if got := float64(a.Attributed()); math.Abs(got-77.5) > 1e-12 {
		t.Fatalf("a attributed %v, want 77.5 (5 direct + 50 + 22.5 shared)", got)
	}
	if got := float64(b.Attributed()); math.Abs(got-122.5) > 1e-12 {
		t.Fatalf("b attributed %v, want 122.5 (22.5 + 100 shared)", got)
	}
	sum := float64(a.Attributed() + b.Attributed())
	total := float64(m.TotalEnergy(20))
	if math.Abs(sum-total) > 1e-12 {
		t.Fatalf("sum %v != meter %v", sum, total)
	}
	if at.Unattributed() != 0 {
		t.Fatalf("unattributed = %v with wall-to-wall accounts", at.Unattributed())
	}
	if begun, ended := a.Window(); begun != 0 || ended != 10 {
		t.Fatalf("a window = [%v, %v]", begun, ended)
	}
}

// TestAttributionIdleGapsUnattributed: energy drawn while no account is
// open lands in the unattributed bucket, and the invariant
// Σ attributed + unattributed = meter still holds.
func TestAttributionIdleGapsUnattributed(t *testing.T) {
	m := NewMeter()
	m.Register("dev", 4)
	at := NewAttributor(m)

	a := at.Begin(10) // [0,10): 40 J idle, unattributed
	at.End(a, 15)
	b := at.Begin(25) // [15,25): 40 J idle, unattributed
	at.End(b, 30)

	if got := float64(at.Unattributed()); math.Abs(got-80) > 1e-12 {
		t.Fatalf("unattributed = %v, want 80", got)
	}
	sum := float64(a.Attributed()+b.Attributed()) + float64(at.Unattributed())
	if total := float64(m.TotalEnergy(at.SettledThrough())); math.Abs(sum-total) > 1e-12 {
		t.Fatalf("sum %v != meter %v", sum, total)
	}
}

// TestAttributionOverheadScaling: with a cooling overhead on the meter,
// direct charges scale by it so the sum still matches the (scaled) meter.
func TestAttributionOverheadScaling(t *testing.T) {
	m := NewMeter()
	m.Overhead = 1.5
	m.Register("dev", 10)
	at := NewAttributor(m)

	a := at.Begin(0)
	a.ChargeJoules(20)
	at.End(a, 10)

	if got := float64(a.Direct()); math.Abs(got-30) > 1e-12 {
		t.Fatalf("direct = %v, want 30 (20 raw x 1.5 overhead)", got)
	}
	if got, total := float64(a.Attributed()), float64(m.TotalEnergy(10)); math.Abs(got-total) > 1e-12 {
		t.Fatalf("attributed %v != meter %v", got, total)
	}
}
