package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEnergyIdentity(t *testing.T) {
	// 1 Joule = 1 Watt x 1 second (Section 2.1).
	if got := Energy(1, 1); got != 1 {
		t.Fatalf("Energy(1W,1s) = %v, want 1J", got)
	}
	if got := Energy(90, 3.2); math.Abs(float64(got)-288) > 1e-9 {
		t.Fatalf("Energy(90W,3.2s) = %v, want 288J", got)
	}
}

func TestAvgPower(t *testing.T) {
	tests := []struct {
		e    Joules
		d    Seconds
		want Watts
	}{
		{100, 10, 10},
		{0, 10, 0},
		{100, 0, 0}, // guarded division
		{338, 10, 33.8},
	}
	for _, tc := range tests {
		if got := AvgPower(tc.e, tc.d); math.Abs(float64(got-tc.want)) > 1e-9 {
			t.Errorf("AvgPower(%v,%v) = %v, want %v", tc.e, tc.d, got, tc.want)
		}
	}
}

func TestEfficiencyOf(t *testing.T) {
	if got := EfficiencyOf(100, 50); got != 2 {
		t.Fatalf("EfficiencyOf = %v, want 2", got)
	}
	if got := EfficiencyOf(100, 0); got != 0 {
		t.Fatalf("EfficiencyOf with zero energy = %v, want 0", got)
	}
}

// Property: Energy/AvgPower round-trip for positive durations.
func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(w float64, d float64) bool {
		w = math.Abs(math.Mod(w, 1e6))
		d = math.Abs(math.Mod(d, 1e6)) + 1e-3
		e := Energy(Watts(w), Seconds(d))
		back := AvgPower(e, Seconds(d))
		return math.Abs(float64(back)-w) <= 1e-6*math.Max(1, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceIntegration(t *testing.T) {
	tr := NewTrace("cpu", 10)
	tr.Set(2, 90)  // 2s at 10W = 20J
	tr.Set(5, 0)   // 3s at 90W = 270J
	tr.Set(10, 10) // 5s at 0W = 0J
	if got := tr.EnergyAt(10); math.Abs(float64(got)-290) > 1e-9 {
		t.Fatalf("EnergyAt(10) = %v, want 290", got)
	}
	// Partial interval at current power: 2s more at 10W.
	if got := tr.EnergyAt(12); math.Abs(float64(got)-310) > 1e-9 {
		t.Fatalf("EnergyAt(12) = %v, want 310", got)
	}
	if tr.Peak() != 90 {
		t.Fatalf("Peak = %v, want 90", tr.Peak())
	}
}

func TestTracePanicsOnTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time going backwards")
		}
	}()
	tr := NewTrace("x", 1)
	tr.Set(5, 2)
	tr.Set(4, 3)
}

func TestTracePanicsOnPastQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on querying the past")
		}
	}()
	tr := NewTrace("x", 1)
	tr.Set(5, 2)
	tr.EnergyAt(1)
}

// Property: energy is additive over any split of a constant-power interval.
func TestTraceAdditivity(t *testing.T) {
	f := func(w uint16, split uint16) bool {
		total := Seconds(10)
		s := Seconds(float64(split%1000) / 100) // 0..10
		a := NewTrace("a", Watts(w))
		b := NewTrace("b", Watts(w))
		b.Set(s, Watts(w)) // a no-op power change mid-interval
		return math.Abs(float64(a.EnergyAt(total)-b.EnergyAt(total))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAggregation(t *testing.T) {
	m := NewMeter()
	cpu := m.Register("cpu", 90)
	ssd := m.Register("ssd", 5)
	cpu.Set(3.2, 0) // CPU busy for 3.2s then idle at 0W
	_ = ssd         // SSD stays at 5W

	// This is exactly the paper's Figure 2 uncompressed-scan arithmetic:
	// 90W x 3.2s + 5W x 10s = 338 J.
	if got := m.RawEnergy(10); math.Abs(float64(got)-338) > 1e-9 {
		t.Fatalf("RawEnergy = %v, want 338", got)
	}
}

func TestMeterOverhead(t *testing.T) {
	m := NewMeter()
	m.Register("cpu", 100)
	m.Overhead = 1.5 // 0.5W cooling per watt [PBS+03]
	if got := m.TotalEnergy(10); math.Abs(float64(got)-1500) > 1e-9 {
		t.Fatalf("TotalEnergy with overhead = %v, want 1500", got)
	}
	if got := m.TotalPower(); math.Abs(float64(got)-150) > 1e-9 {
		t.Fatalf("TotalPower with overhead = %v, want 150", got)
	}
}

func TestMeterRegisterIdempotent(t *testing.T) {
	m := NewMeter()
	a := m.Register("disk0", 10)
	b := m.Register("disk0", 99)
	if a != b {
		t.Fatal("Register should return the existing trace")
	}
	if m.Trace("disk0") != a {
		t.Fatal("Trace lookup mismatch")
	}
	if m.Trace("nope") != nil {
		t.Fatal("missing trace should be nil")
	}
}

func TestMeterBreakdownSorted(t *testing.T) {
	m := NewMeter()
	m.Register("small", 1)
	m.Register("big", 100)
	bd := m.Breakdown(10)
	if len(bd) != 2 || bd[0].Name != "big" || bd[1].Name != "small" {
		t.Fatalf("breakdown not sorted by energy: %+v", bd)
	}
	rep := m.Report(10)
	if !strings.Contains(rep, "big") || !strings.Contains(rep, "TOTAL") {
		t.Fatalf("report missing rows:\n%s", rep)
	}
}

func TestDynamicRange(t *testing.T) {
	tests := []struct {
		idle, peak Watts
		want       float64
	}{
		{0, 100, 1.0},   // ideal energy-proportional
		{50, 100, 0.5},  // typical server
		{100, 100, 0.0}, // fully inelastic
		{120, 100, 0.0}, // clamped
		{10, 0, 0.0},    // degenerate
	}
	for _, tc := range tests {
		if got := DynamicRange(tc.idle, tc.peak); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("DynamicRange(%v,%v) = %v, want %v", tc.idle, tc.peak, got, tc.want)
		}
	}
}

func TestProportionalityIndex(t *testing.T) {
	ideal := []UtilPoint{{0, 0}, {0.5, 50}, {1, 100}}
	if got := ProportionalityIndex(ideal); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ideal curve index = %v, want 1", got)
	}
	flat := []UtilPoint{{0, 100}, {0.5, 100}, {1, 100}}
	got := ProportionalityIndex(flat)
	if got > 0.6 {
		t.Fatalf("flat curve index = %v, want low", got)
	}
	if ProportionalityIndex(nil) != 0 {
		t.Fatal("empty curve should score 0")
	}
}

func TestEfficiencyCurveConstantForIdeal(t *testing.T) {
	// For an energy-proportional server, EE should be constant at all
	// utilisation levels (Section 2.3).
	pts := []UtilPoint{{0.25, 25}, {0.5, 50}, {1, 100}}
	ee := EfficiencyCurve(pts, 1000)
	for i := 1; i < len(ee); i++ {
		if math.Abs(float64(ee[i]-ee[0])) > 1e-9 {
			t.Fatalf("ideal EE curve not constant: %v", ee)
		}
	}
	// Zero power point is guarded.
	if got := EfficiencyCurve([]UtilPoint{{0, 0}}, 10); got[0] != 0 {
		t.Fatal("zero power should yield zero efficiency")
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(10, 5); got != 50 {
		t.Fatalf("EDP = %v, want 50", got)
	}
}

func TestUnitStrings(t *testing.T) {
	tests := []struct {
		s    string
		want string
	}{
		{Joules(338).String(), "338J"},
		{Joules(2.5e6).String(), "2.5MJ"},
		{Watts(0.005).String(), "5mW"},
		{Seconds(1500).String(), "1.5ks"},
		{Joules(0).String(), "0J"},
	}
	for _, tc := range tests {
		if tc.s != tc.want {
			t.Errorf("String() = %q, want %q", tc.s, tc.want)
		}
	}
}
