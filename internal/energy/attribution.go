package energy

// This file splits whole-server energy among concurrently executing
// queries. The paper's experiments meter the wall socket, which is honest
// for one query at a time but meaningless once queries overlap: the
// whole-server delta during query A includes query B's disk seeks and
// everyone's share of the idle floor. Attribution decomposes the meter
// exactly:
//
//	total = Σ_q direct(q) + Σ_intervals residual/|active|
//
// direct(q) is the marginal energy the devices charged to q's own
// processes (busy-minus-idle watts for the duration each device served
// them — see Charger); the residual of an interval is everything else,
// dominated by the idle floor (base watts, CPU package idle, DRAM
// refresh, disks spinning), and is shared equally among the queries
// active in that interval — i.e. proportional to each query's wall-clock
// overlap with it. The split telescopes, so the per-query attributions
// sum to the meter's reading by construction, whatever the device models
// were doing.

// Charger absorbs directly attributed marginal joules. Device models
// check whether the driving process's owner (sim.Proc.Owner) implements
// it and, if so, credit the marginal energy of each operation — the
// busy-minus-idle power integrated over the service time — as they charge
// the meter. *Account implements Charger.
type Charger interface {
	ChargeJoules(j Joules)
}

// Attributor watches a Meter and splits its reading among Accounts. All
// methods must be called with the simulation's current time (time must
// not go backwards); the engine's single-threaded discipline makes that
// natural — Begin/End are called from admission events, ChargeJoules from
// device models in between.
type Attributor struct {
	meter *Meter

	active       []*Account // accounts begun and not yet ended, in begin order
	direct       Joules     // raw direct charges across all accounts, ever
	lastT        Seconds
	lastTotal    Joules
	lastDirect   Joules
	unattributed Joules // residual of intervals with no active account
}

// NewAttributor returns an attributor over the meter, starting at time 0.
func NewAttributor(m *Meter) *Attributor {
	return &Attributor{meter: m}
}

// Begin settles the elapsed interval and opens an account for a query
// admitted at time t.
func (a *Attributor) Begin(t Seconds) *Account {
	a.settle(t)
	acct := &Account{at: a, begun: t}
	a.active = append(a.active, acct)
	return acct
}

// End settles the elapsed interval and closes the account at time t; its
// Attributed value is final afterwards.
func (a *Attributor) End(acct *Account, t Seconds) {
	a.settle(t)
	for i, x := range a.active {
		if x == acct {
			a.active = append(a.active[:i], a.active[i+1:]...)
			break
		}
	}
	acct.ended = t
	acct.closed = true
}

// Active reports the number of open accounts.
func (a *Attributor) Active() int { return len(a.active) }

// Unattributed reports the energy of intervals during which no account
// was open (the idle floor between workloads); it belongs to no query.
func (a *Attributor) Unattributed() Joules { return a.unattributed }

// SettledThrough reports the time of the last settlement: the invariant
// Σ accounts.Attributed() + Unattributed() == meter.TotalEnergy(t) holds
// exactly at t = SettledThrough().
func (a *Attributor) SettledThrough() Seconds { return a.lastT }

// Settle distributes energy up to time t (>= SettledThrough), extending
// the attribution invariant to t even when no account begins or ends
// there — how a drained workload's ledger closes over its idle tail.
func (a *Attributor) Settle(t Seconds) { a.settle(t) }

// settle distributes the interval [lastT, t): each account keeps what its
// processes were charged directly (scaled by the meter's cooling/PSU
// overhead, since the meter reading includes it), and the residual —
// meter delta minus direct charges — splits equally among the accounts
// active over the interval. Direct charges land when a device operation
// completes, so an operation straddling a settlement is smeared one
// interval late; the telescoped sum is unaffected.
func (a *Attributor) settle(t Seconds) {
	total := a.meter.TotalEnergy(t)
	dDirect := Joules(float64(a.direct-a.lastDirect) * a.meter.Overhead)
	residual := total - a.lastTotal - dDirect
	if len(a.active) == 0 {
		a.unattributed += residual
	} else {
		share := Joules(float64(residual) / float64(len(a.active)))
		for _, acct := range a.active {
			acct.shared += share
		}
	}
	a.lastT = t
	a.lastTotal = total
	a.lastDirect = a.direct
}

// Account accumulates one query's energy: the marginal joules its own
// processes were charged plus its share of every overlapped interval's
// residual (the idle floor).
type Account struct {
	at     *Attributor
	direct Joules // raw, before the meter's overhead factor
	shared Joules
	begun  Seconds
	ended  Seconds
	closed bool
}

// ChargeJoules implements Charger: device models credit marginal energy
// here as they charge the meter. Charges arriving after End — a
// cancelled query's readers finishing in-flight device operations — are
// declined: the account's Attributed was already snapshotted, so the
// energy stays in the residual and is shared like any other unowned
// activity, keeping the decomposition exact.
func (acct *Account) ChargeJoules(j Joules) {
	if acct.closed {
		return
	}
	acct.direct += j
	acct.at.direct += j
}

// Direct reports the marginal energy charged by this query's own
// processes, scaled by the meter's overhead factor (the meter reading the
// attribution must sum to includes it).
func (acct *Account) Direct() Joules {
	return Joules(float64(acct.direct) * acct.at.meter.Overhead)
}

// Shared reports this query's accumulated residual (idle-floor) share.
func (acct *Account) Shared() Joules { return acct.shared }

// Closed reports whether End has been called on the account. Crash
// recovery uses it to close only the accounts still open at the crash.
func (acct *Account) Closed() bool { return acct.closed }

// Attributed reports the query's total energy share. Across concurrent
// queries these sum, with Unattributed, to the whole-server meter.
func (acct *Account) Attributed() Joules { return acct.Direct() + acct.shared }

// Window reports the account's [begin, end] times (end is meaningful only
// after End).
func (acct *Account) Window() (begun, ended Seconds) { return acct.begun, acct.ended }
