// Package energy defines the units, accounting primitives, and metrics used
// throughout energydb to reason about power and energy.
//
// The paper's central identity (Section 2.1) is
//
//	Energy = AvgPower × Time        (1 J = 1 W × 1 s)
//	EE     = WorkDone / Energy = Perf / Power
//
// Everything in this package is pure computation over simulated time; there
// is no OS or hardware interaction.
package energy

import (
	"fmt"
	"math"
)

// Joules is an amount of energy.
type Joules float64

// Watts is an instantaneous rate of energy use (power).
type Watts float64

// Seconds is a duration of simulated time. The simulator uses float64
// seconds throughout; all arithmetic on it is deterministic.
type Seconds float64

// Energy returns the energy consumed by drawing power w for duration d.
func Energy(w Watts, d Seconds) Joules {
	return Joules(float64(w) * float64(d))
}

// AvgPower returns the average power implied by consuming e over d.
// It returns 0 when d is 0 to keep callers free of special cases.
func AvgPower(e Joules, d Seconds) Watts {
	if d == 0 {
		return 0
	}
	return Watts(float64(e) / float64(d))
}

// Efficiency is work done per Joule, the paper's energy-efficiency metric
// (e.g. transactions/J for OLTP, queries/J for a throughput test).
type Efficiency float64

// EfficiencyOf computes work/energy, returning 0 for zero energy.
func EfficiencyOf(work float64, e Joules) Efficiency {
	if e == 0 {
		return 0
	}
	return Efficiency(work / float64(e))
}

// EDP is the energy-delay product, a metric that penalises both energy and
// time; lower is better. It is the standard compromise objective when
// neither pure performance nor pure energy is acceptable.
func EDP(e Joules, d Seconds) float64 {
	return float64(e) * float64(d)
}

func (j Joules) String() string  { return formatUnit(float64(j), "J") }
func (w Watts) String() string   { return formatUnit(float64(w), "W") }
func (s Seconds) String() string { return formatUnit(float64(s), "s") }

func formatUnit(v float64, unit string) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3gG%s", v/1e9, unit)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM%s", v/1e6, unit)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk%s", v/1e3, unit)
	case av >= 1 || av == 0:
		return fmt.Sprintf("%.3g%s", v, unit)
	case av >= 1e-3:
		return fmt.Sprintf("%.3gm%s", v*1e3, unit)
	case av >= 1e-6:
		return fmt.Sprintf("%.3gµ%s", v*1e6, unit)
	default:
		return fmt.Sprintf("%.3gn%s", v*1e9, unit)
	}
}
