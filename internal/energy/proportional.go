package energy

// This file implements the energy-proportionality metrics the paper builds
// on (Section 2.3, citing Barroso & Hölzle, "The Case for Energy-
// Proportional Computing"). An ideal energy-proportional server draws zero
// power at zero utilisation and power linear in delivered performance, so
// its energy efficiency is constant across load. Real servers draw a large
// fraction of peak power while idle.

// UtilPoint is one sample of a power-versus-utilisation curve.
type UtilPoint struct {
	Utilization float64 // 0..1 fraction of peak performance
	Power       Watts
}

// DynamicRange is the ratio of the power that scales with load to peak
// power: (peak - idle) / peak. 1.0 is perfectly proportional hardware,
// 0.0 is hardware whose power is completely insensitive to load (the
// "limited dynamic power range" the paper complains about in §2.4).
func DynamicRange(idle, peak Watts) float64 {
	if peak <= 0 {
		return 0
	}
	r := float64(peak-idle) / float64(peak)
	if r < 0 {
		return 0
	}
	return r
}

// ProportionalityIndex summarises how close a measured power curve is to
// the ideal proportional line P(u) = u * P(1). It is 1 - the mean relative
// excess over the ideal line across the samples, clamped to [0, 1].
// An ideal curve scores 1; a flat curve at peak power scores near 0.
func ProportionalityIndex(points []UtilPoint) float64 {
	var peak Watts
	for _, p := range points {
		if p.Utilization >= 0.999 && p.Power > peak {
			peak = p.Power
		}
	}
	if peak == 0 {
		// No full-load sample; normalise by the maximum power seen.
		for _, p := range points {
			if p.Power > peak {
				peak = p.Power
			}
		}
	}
	if peak == 0 || len(points) == 0 {
		return 0
	}
	var excess float64
	var n int
	for _, p := range points {
		ideal := p.Utilization * float64(peak)
		excess += (float64(p.Power) - ideal) / float64(peak)
		n++
	}
	idx := 1 - excess/float64(n)
	if idx < 0 {
		return 0
	}
	if idx > 1 {
		return 1
	}
	return idx
}

// EfficiencyCurve converts a power-vs-utilisation curve into energy
// efficiency at each point, taking performance at utilisation u to be
// u * peakPerf. This is the curve the paper says should be constant for
// energy-proportional systems ("constant energy efficiency ... at all
// performance levels").
func EfficiencyCurve(points []UtilPoint, peakPerf float64) []Efficiency {
	out := make([]Efficiency, len(points))
	for i, p := range points {
		if p.Power == 0 {
			out[i] = 0
			continue
		}
		out[i] = Efficiency(p.Utilization * peakPerf / float64(p.Power))
	}
	return out
}
