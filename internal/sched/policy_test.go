package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"energydb/internal/sim"
)

// TestEDFNeverInvertsDeadlines is the EDF ordering property: on a
// saturated one-core box, jobs submitted together must start in deadline
// order — for any two queued jobs, the one with the earlier deadline is
// never dispatched after the other. Deadlines are far enough out that
// nothing expires; the property is pure ordering.
func TestEDFNeverInvertsDeadlines(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		jobs := int(n%12) + 2
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		a := NewAdmissionPolicy(eng, 1, 0, EDF{})
		var order []int // job index in dispatch order
		deadlines := make([]float64, jobs)
		eng.At(0, "submit", func() {
			for i := 0; i < jobs; i++ {
				i := i
				deadlines[i] = 1000 + rng.Float64()*1000
				a.SubmitJob(Job{Name: "job", Want: 1, Deadline: deadlines[i],
					Run: func(p *sim.Proc, granted int) {
						order = append(order, i)
						p.Sleep(1)
					}})
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if len(order) != jobs {
			return false
		}
		for k := 1; k < len(order); k++ {
			if deadlines[order[k-1]] > deadlines[order[k]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEDFTiesBreakFIFO: equal deadlines (and no deadlines) dispatch in
// arrival order.
func TestEDFTiesBreakFIFO(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmissionPolicy(eng, 1, 0, EDF{})
	var order []int
	eng.At(0, "submit", func() {
		for i := 0; i < 4; i++ {
			i := i
			d := 0.0 // two undeadlined...
			if i >= 2 {
				d = 500 // ...and two with the same deadline
			}
			a.SubmitJob(Job{Name: "job", Want: 1, Deadline: d,
				Run: func(p *sim.Proc, granted int) {
					order = append(order, i)
					p.Sleep(1)
				}})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Deadline jobs (2, 3) jump the undeadlined backlog (0, 1); ties and
	// the backlog itself stay FIFO.
	want := []int{2, 3, 0, 1}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestEnergyAwareHoldsBackgroundUnderDeadlineWork: the consolidating
// policy keeps background jobs queued while deadline work runs, then
// releases them batched by tag with a wide grant minus the held-back
// headroom.
func TestEnergyAwareHoldsBackgroundUnderDeadlineWork(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmissionPolicy(eng, 8, 0, EnergyAware{HoldFree: 2})
	type start struct {
		name    string
		at      float64
		granted int
	}
	var starts []start
	run := func(name string, dur float64) func(p *sim.Proc, granted int) {
		return func(p *sim.Proc, granted int) {
			starts = append(starts, start{name, p.Now(), granted})
			p.Sleep(dur)
		}
	}
	eng.At(0, "submit", func() {
		a.SubmitJob(Job{Name: "dl", Want: 8, Deadline: 100, Run: run("dl", 5)})
		a.SubmitJob(Job{Name: "bgA", Want: 8, Tag: "A", Run: run("bgA", 3)})
		a.SubmitJob(Job{Name: "bgB", Want: 8, Tag: "B", Run: run("bgB", 3)})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(starts) != 3 || starts[0].name != "dl" {
		t.Fatalf("starts = %+v, want deadline job first", starts)
	}
	for _, s := range starts[1:] {
		if s.at < 5 {
			t.Fatalf("background %q started at %v, while deadline work ran", s.name, s.at)
		}
	}
	// First background released onto the drained box: 8 free minus 2 held.
	if starts[1].granted != 6 {
		t.Fatalf("background grant = %d, want 6 (8 free - 2 held)", starts[1].granted)
	}
}

// TestEnergyAwarePrefersCompatibleTag: with background work of two tags
// queued and one tag already running, the matching tag dispatches first.
func TestEnergyAwarePrefersCompatibleTag(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmissionPolicy(eng, 4, 0, EnergyAware{})
	var order []string
	run := func(name string, dur float64) func(p *sim.Proc, granted int) {
		return func(p *sim.Proc, granted int) {
			order = append(order, name)
			p.Sleep(dur)
		}
	}
	eng.At(0, "submit", func() {
		a.SubmitJob(Job{Name: "a1", Want: 3, Tag: "A", Run: run("a1", 4)})
	})
	eng.At(1, "submit", func() {
		// One core is free while a1 runs. B arrives first but A matches
		// the running tag.
		a.SubmitJob(Job{Name: "b1", Want: 1, Tag: "B", Run: run("b1", 1)})
		a.SubmitJob(Job{Name: "a2", Want: 1, Tag: "A", Run: run("a2", 1)})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "a2", "b1"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

// TestRegrantOffersFreedCores: with ReGrant enabled, a completion that
// leaves the queue empty offers the freed cores to the running ticket's
// widen callback, and the acceptance lands on its grant and the stats.
func TestRegrantOffersFreedCores(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmissionPolicy(eng, 8, 0, FIFO{})
	a.ReGrant = true
	var offered []int
	var longTicket *Ticket
	eng.At(0, "submit", func() {
		longTicket = a.Submit("long", 8, func(p *sim.Proc, granted int) {
			p.Sleep(10)
		})
		a.Submit("short", 8, func(p *sim.Proc, granted int) {
			p.Sleep(1)
		})
	})
	eng.At(0.5, "widen", func() {
		// Register after dispatch so the grant split (4/4) is done.
		a.SetWiden(longTicket, func(free int) int {
			offered = append(offered, free)
			return free // take everything
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(offered) != 1 || offered[0] != 4 {
		t.Fatalf("offers = %v, want one offer of the short job's 4 cores", offered)
	}
	if longTicket.Granted != 8 {
		t.Fatalf("granted after widen = %d, want 8", longTicket.Granted)
	}
	st := a.Stats()
	if st.Regrants != 1 || st.RegrantCores != 4 {
		t.Fatalf("regrant stats = %+v, want 1 offer / 4 cores", st)
	}
	if a.FreeCores() != 8 {
		t.Fatalf("free = %d after drain, want 8", a.FreeCores())
	}
}

// TestRegrantSkipsWhenQueueNonEmpty: queued work has first claim on freed
// cores; no widen offer happens while anything waits.
func TestRegrantSkipsWhenQueueNonEmpty(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmissionPolicy(eng, 2, 0, FIFO{})
	a.ReGrant = true
	offers := 0
	eng.At(0, "submit", func() {
		tk := a.Submit("long", 1, func(p *sim.Proc, granted int) { p.Sleep(10) })
		a.SetWiden(tk, func(free int) int { offers++; return free })
		a.Submit("short", 1, func(p *sim.Proc, granted int) { p.Sleep(1) })
		a.Submit("queued", 2, func(p *sim.Proc, granted int) { p.Sleep(1) })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// short completes at t=1 with "queued" waiting: its core must go to
	// the queue, not the widen callback. queued completes at t=2 with
	// nothing waiting: that one is offered.
	if offers != 1 {
		t.Fatalf("offers = %d, want exactly 1 (after the queue drained)", offers)
	}
}

// TestPolicyDeadlineExpiryStillEnforced: queue-jumping policies still
// reject tickets whose deadline passed while queued.
func TestPolicyDeadlineExpiryStillEnforced(t *testing.T) {
	for _, pol := range []Policy{FIFO{}, EDF{}, EnergyAware{}} {
		eng := sim.NewEngine()
		a := NewAdmissionPolicy(eng, 1, 0, pol)
		var failed error
		ran := false
		eng.At(0, "submit", func() {
			a.Submit("hog", 1, func(p *sim.Proc, granted int) { p.Sleep(10) })
		})
		eng.At(1, "submit", func() {
			// The hog holds the only core until t=10; even queue-jumping
			// policies cannot run this before its t=5 deadline.
			a.SubmitJob(Job{Name: "late", Want: 1, Deadline: 5,
				Run:  func(p *sim.Proc, granted int) { ran = true },
				Fail: func(err error) { failed = err }})
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if ran || failed == nil {
			t.Fatalf("%s: expired job ran=%v failed=%v", pol.Name(), ran, failed)
		}
		if a.Stats().Expired != 1 {
			t.Fatalf("%s: expired = %d, want 1", pol.Name(), a.Stats().Expired)
		}
	}
}

// TestAllPoliciesCompleteEverything is the liveness property: whatever
// the policy and the arrival pattern, every submitted job eventually
// runs (no policy may strand work on a drained box).
func TestAllPoliciesCompleteEverything(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		jobs := int(n%20) + 1
		for _, pol := range []Policy{FIFO{}, EDF{}, EnergyAware{HoldFree: 1}} {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine()
			a := NewAdmissionPolicy(eng, 4, 0, pol)
			a.ReGrant = true
			done := 0
			arrivals := make([]float64, jobs)
			for i := range arrivals {
				arrivals[i] = rng.Float64() * 5
			}
			sort.Float64s(arrivals)
			for i := 0; i < jobs; i++ {
				at := arrivals[i]
				d := 0.0
				if rng.Intn(2) == 0 {
					d = at + 1000 // generous: ordering pressure, no expiry
				}
				tag := string(rune('A' + rng.Intn(2)))
				eng.At(at, "submit", func() {
					a.SubmitJob(Job{Name: "job", Want: 1 + rng.Intn(4), Deadline: d, Tag: tag,
						Run: func(p *sim.Proc, granted int) {
							p.Sleep(0.5)
							done++
						}})
				})
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if done != jobs || a.Active() != 0 || a.FreeCores() != 4 {
				t.Errorf("%s: done=%d/%d active=%d free=%d",
					pol.Name(), done, jobs, a.Active(), a.FreeCores())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
