package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
)

func TestImmediateAdmission(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBatcher(eng, 0, 2)
	done := 0
	eng.At(0, "submit", func() {
		for i := 0; i < 4; i++ {
			b.Submit(func(p *sim.Proc) {
				p.Sleep(1)
				done++
			})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 || b.Stats().Completed != 4 {
		t.Fatalf("done=%d stats=%+v", done, b.Stats())
	}
	// Window 0 releases each submission as its own batch.
	if b.Stats().Batches != 4 {
		t.Fatalf("batches = %d", b.Stats().Batches)
	}
}

func TestWindowCollectsBatch(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBatcher(eng, 10, 4)
	var starts []float64
	for i := 0; i < 5; i++ {
		at := float64(i) // arrivals at t=0..4, window closes at t=10
		eng.At(at, "submit", func() {
			b.Submit(func(p *sim.Proc) {
				starts = append(starts, p.Now())
			})
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Batches != 1 {
		t.Fatalf("batches = %d, want 1", b.Stats().Batches)
	}
	for _, s := range starts {
		if s < 10 {
			t.Fatalf("job started at %v, before the window closed", s)
		}
	}
	if w := b.Stats().MeanWait(); w < 6 || w > 10 {
		t.Fatalf("mean wait = %v, want ~8", w)
	}
}

func TestWorkerParallelism(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBatcher(eng, 0.1, 3)
	eng.At(0, "submit", func() {
		for i := 0; i < 6; i++ {
			b.Submit(func(p *sim.Proc) { p.Sleep(5) })
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 6 jobs of 5s on 3 workers = 2 waves of 5s, after the 0.1s window.
	want := 0.1 + 10
	if eng.Now() != want {
		t.Fatalf("makespan = %v, want %v", eng.Now(), want)
	}
}

func TestBatchingEnablesSpinDown(t *testing.T) {
	// The E4 effect in miniature: sparse arrivals touching a disk. With
	// no batching the disk never idles long enough to spin down; with a
	// 60s window the bursts leave long gaps.
	run := func(window float64) (spins int64, joules float64) {
		eng := sim.NewEngine()
		m := energy.NewMeter()
		d := hw.NewDisk(eng, m, "d", hw.Cheetah15K())
		d.SpinDownAfter = 15
		b := NewBatcher(eng, window, 1)
		rng := rand.New(rand.NewSource(4))
		at := 0.0
		for i := 0; i < 40; i++ {
			at += 5 + rng.Float64()*5 // one query every ~7.5s for ~5 min
			off := int64(i) * 100 * 1e6
			eng.At(at, "arrival", func() {
				b.Submit(func(p *sim.Proc) {
					d.Read(p, off, 2*1e6)
				})
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().SpinDowns, float64(m.ComponentEnergy("d", energy.Seconds(eng.Now())))
	}
	trickleSpins, _ := run(0)
	burstSpins, _ := run(60)
	if trickleSpins > 1 { // at most the trailing timer
		t.Fatalf("trickle admission spun down %d times", trickleSpins)
	}
	if burstSpins < 3 {
		t.Fatalf("batched admission only spun down %d times", burstSpins)
	}
}

func TestBatchingLatencyCost(t *testing.T) {
	run := func(window float64) float64 {
		eng := sim.NewEngine()
		b := NewBatcher(eng, window, 1)
		for i := 0; i < 10; i++ {
			at := float64(i)
			eng.At(at, "a", func() {
				b.Submit(func(p *sim.Proc) { p.Sleep(0.1) })
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return b.Stats().MeanLatency()
	}
	if l0, l30 := run(0), run(30); l30 <= l0 {
		t.Fatalf("batching should cost latency: window0=%v window30=%v", l0, l30)
	}
}

func TestBadWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatcher(sim.NewEngine(), 1, 0)
}

// Property: every submitted job completes exactly once regardless of
// window, worker count and arrival pattern.
func TestAllJobsComplete(t *testing.T) {
	f := func(seed int64, windowTenths, workers uint8) bool {
		eng := sim.NewEngine()
		b := NewBatcher(eng, float64(windowTenths%50)/10, int(workers%4)+1)
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		runs := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			at := rng.Float64() * 20
			eng.At(at, fmt.Sprintf("a%d", i), func() {
				b.Submit(func(p *sim.Proc) {
					p.Sleep(rng.Float64() * 0.5)
					runs[i]++
				})
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for _, r := range runs {
			if r != 1 {
				return false
			}
		}
		return b.Stats().Completed == int64(n) && b.Active() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
