package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"energydb/internal/energy"
	"energydb/internal/hw"
	"energydb/internal/sim"
)

func TestImmediateAdmission(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmission(eng, 2, 0)
	done := 0
	eng.At(0, "submit", func() {
		for i := 0; i < 4; i++ {
			a.Submit("job", 1, func(p *sim.Proc, granted int) {
				p.Sleep(1)
				done++
			})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 || a.Stats().Completed != 4 {
		t.Fatalf("done=%d stats=%+v", done, a.Stats())
	}
	// 4 one-second jobs on 2 cores: two waves.
	if eng.Now() != 2 {
		t.Fatalf("makespan = %v, want 2", eng.Now())
	}
	if a.Active() != 0 || a.FreeCores() != 2 {
		t.Fatalf("controller not drained: active=%d free=%d", a.Active(), a.FreeCores())
	}
}

func TestWindowCollectsBatch(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmission(eng, 4, 10)
	var starts []float64
	for i := 0; i < 5; i++ {
		at := float64(i) // arrivals at t=0..4, window closes at t=10
		eng.At(at, "submit", func() {
			a.Submit("job", 1, func(p *sim.Proc, granted int) {
				starts = append(starts, p.Now())
			})
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Batches != 1 {
		t.Fatalf("batches = %d, want 1", a.Stats().Batches)
	}
	for _, s := range starts {
		if s < 10 {
			t.Fatalf("job started at %v, before the window closed", s)
		}
	}
	if w := a.Stats().MeanWait(); w < 6 || w > 10 {
		t.Fatalf("mean wait = %v, want ~8", w)
	}
}

func TestSlotParallelism(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmission(eng, 3, 0.1)
	eng.At(0, "submit", func() {
		for i := 0; i < 6; i++ {
			a.Submit("job", 1, func(p *sim.Proc, granted int) { p.Sleep(5) })
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 6 jobs of 5s on 3 cores = 2 waves of 5s, after the 0.1s window.
	want := 0.1 + 10
	if eng.Now() != want {
		t.Fatalf("makespan = %v, want %v", eng.Now(), want)
	}
	if a.Stats().PeakActive != 3 {
		t.Fatalf("peak active = %d, want 3", a.Stats().PeakActive)
	}
}

// TestFairShareGrants is the concurrency-aware heart of the controller: a
// lone job is granted the whole box; same-instant arrivals split it; a
// late arrival is granted only from what is free.
func TestFairShareGrants(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmission(eng, 8, 0)
	var lone, late *Ticket
	var crowd []*Ticket
	eng.At(0, "lone", func() {
		lone = a.Submit("lone", 8, func(p *sim.Proc, granted int) { p.Sleep(1) })
	})
	eng.At(2, "crowd", func() {
		for i := 0; i < 4; i++ {
			d := 5 + float64(i) // staggered completions at t=7..10
			crowd = append(crowd, a.Submit("crowd", 8, func(p *sim.Proc, granted int) { p.Sleep(d) }))
		}
	})
	eng.At(3, "late", func() {
		late = a.Submit("late", 8, func(p *sim.Proc, granted int) { p.Sleep(1) })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if lone.Granted != 8 {
		t.Fatalf("lone job granted %d of 8 free cores", lone.Granted)
	}
	// Four same-instant arrivals on an idle 8-core box: 2 cores each.
	for _, c := range crowd {
		if c.Granted != 2 {
			t.Fatalf("crowd granted %d, want 2", c.Granted)
		}
	}
	// The late job arrives with 4 jobs holding all 8 cores: it must queue
	// until the first completion (t=7) and then take only the 2 freed
	// cores, even though it asked for 8.
	if w := late.Wait(); w != 4 {
		t.Fatalf("late job waited %v, want 4", w)
	}
	if late.Granted != 2 {
		t.Fatalf("late job granted %d, want the 2 freed cores", late.Granted)
	}
	if a.Stats().Waited != 1 {
		t.Fatalf("waited = %d, want 1", a.Stats().Waited)
	}
}

// TestSaturationQueuesFIFO: more same-instant arrivals than cores — every
// core granted once, the surplus queues and runs in submission order.
func TestSaturationQueuesFIFO(t *testing.T) {
	eng := sim.NewEngine()
	a := NewAdmission(eng, 2, 0)
	var order []int
	tickets := make([]*Ticket, 5)
	eng.At(0, "submit", func() {
		for i := 0; i < 5; i++ {
			i := i
			tickets[i] = a.Submit(fmt.Sprintf("j%d", i), 2, func(p *sim.Proc, granted int) {
				order = append(order, i)
				p.Sleep(1)
			})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
	// While demand exceeds the box every grant is one core; the last job
	// runs alone and may take both.
	for _, tk := range tickets[:4] {
		if tk.Granted != 1 {
			t.Fatalf("saturated grant = %d, want 1", tk.Granted)
		}
	}
	if a.Stats().PeakQueue < 3 {
		t.Fatalf("peak queue = %d, want >= 3", a.Stats().PeakQueue)
	}
	if a.Stats().Waited != 3 {
		t.Fatalf("waited = %d, want 3", a.Stats().Waited)
	}
}

func TestBatchingEnablesSpinDown(t *testing.T) {
	// The E4 effect in miniature: sparse arrivals touching a disk. With
	// no batching the disk never idles long enough to spin down; with a
	// 60s window the bursts leave long gaps.
	run := func(window float64) (spins int64, joules float64) {
		eng := sim.NewEngine()
		m := energy.NewMeter()
		d := hw.NewDisk(eng, m, "d", hw.Cheetah15K())
		d.SpinDownAfter = 15
		a := NewAdmission(eng, 1, window)
		rng := rand.New(rand.NewSource(4))
		at := 0.0
		for i := 0; i < 40; i++ {
			at += 5 + rng.Float64()*5 // one query every ~7.5s for ~5 min
			off := int64(i) * 100 * 1e6
			eng.At(at, "arrival", func() {
				a.Submit("read", 1, func(p *sim.Proc, granted int) {
					d.Read(p, off, 2*1e6)
				})
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().SpinDowns, float64(m.ComponentEnergy("d", energy.Seconds(eng.Now())))
	}
	trickleSpins, _ := run(0)
	burstSpins, _ := run(60)
	if trickleSpins > 1 { // at most the trailing timer
		t.Fatalf("trickle admission spun down %d times", trickleSpins)
	}
	if burstSpins < 3 {
		t.Fatalf("batched admission only spun down %d times", burstSpins)
	}
}

func TestBatchingLatencyCost(t *testing.T) {
	run := func(window float64) float64 {
		eng := sim.NewEngine()
		a := NewAdmission(eng, 1, window)
		for i := 0; i < 10; i++ {
			at := float64(i)
			eng.At(at, "a", func() {
				a.Submit("job", 1, func(p *sim.Proc, granted int) { p.Sleep(0.1) })
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return a.Stats().MeanLatency()
	}
	if l0, l30 := run(0), run(30); l30 <= l0 {
		t.Fatalf("batching should cost latency: window0=%v window30=%v", l0, l30)
	}
}

func TestBadCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdmission(sim.NewEngine(), 0, 1)
}

// Property: every submitted job completes exactly once with a grant in
// [1, cores], regardless of window, core count and arrival pattern, and
// the controller ends drained.
func TestAllJobsComplete(t *testing.T) {
	f := func(seed int64, windowTenths, cores uint8) bool {
		eng := sim.NewEngine()
		nc := int(cores%4) + 1
		a := NewAdmission(eng, nc, float64(windowTenths%50)/10)
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		runs := make([]int, n)
		grants := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			at := rng.Float64() * 20
			want := rng.Intn(6) + 1
			eng.At(at, fmt.Sprintf("a%d", i), func() {
				a.Submit(fmt.Sprintf("j%d", i), want, func(p *sim.Proc, granted int) {
					p.Sleep(rng.Float64() * 0.5)
					runs[i]++
					grants[i] = granted
				})
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for i, r := range runs {
			if r != 1 || grants[i] < 1 || grants[i] > nc {
				return false
			}
		}
		return a.Stats().Completed == int64(n) && a.Active() == 0 && a.FreeCores() == nc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
