// Package sched is the workload manager: admission control that batches
// query arrivals in time.
//
// §4.2 of the paper: "we expect to see workload management policies that
// encourage identifiable periods of low and high activity — perhaps
// batching requests at the cost of increased latency." The Batcher holds
// arriving jobs for a configurable window and releases them together, so
// the gaps between windows become long enough for disks to spin down
// (whereas a steady trickle keeps every device at idle power forever).
package sched

import (
	"fmt"

	"energydb/internal/sim"
)

// Job is one admitted unit of work.
type Job struct {
	ID  int64
	Run func(p *sim.Proc)

	submitted float64
	started   float64
	finished  float64
}

// Stats summarises completed work.
type Stats struct {
	Completed    int64
	Batches      int64
	TotalWait    float64 // time between submission and start
	TotalLatency float64 // time between submission and completion
}

// MeanWait reports the average queueing delay added by batching.
func (s Stats) MeanWait() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalWait / float64(s.Completed)
}

// MeanLatency reports the average submission-to-completion time.
func (s Stats) MeanLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalLatency / float64(s.Completed)
}

// Batcher accumulates jobs for Window seconds (measured from the first
// job of a batch) and then runs the whole batch on up to Workers
// concurrent processes. Window 0 degenerates to immediate admission.
type Batcher struct {
	eng     *sim.Engine
	Window  float64
	Workers int

	nextID  int64
	holding []*Job
	stats   Stats
	active  int // batches currently running
}

// NewBatcher returns a batcher on the engine.
func NewBatcher(eng *sim.Engine, window float64, workers int) *Batcher {
	if workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", workers))
	}
	return &Batcher{eng: eng, Window: window, Workers: workers}
}

// Stats returns a copy of the counters.
func (b *Batcher) Stats() Stats { return b.stats }

// Active reports how many batches are currently executing.
func (b *Batcher) Active() int { return b.active }

// Submit admits a job at the current simulated time. It may be called
// from event context or from a process.
func (b *Batcher) Submit(run func(p *sim.Proc)) int64 {
	b.nextID++
	j := &Job{ID: b.nextID, Run: run, submitted: b.eng.Now()}
	b.holding = append(b.holding, j)
	if b.Window <= 0 {
		b.release()
		return j.ID
	}
	if len(b.holding) == 1 {
		b.eng.After(b.Window, "sched-window", func() { b.release() })
	}
	return j.ID
}

// release moves the held batch to execution.
func (b *Batcher) release() {
	batch := b.holding
	b.holding = nil
	if len(batch) == 0 {
		return
	}
	b.stats.Batches++
	b.active++
	// A shared cursor feeds up to Workers processes.
	next := 0
	workers := b.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	remaining := workers
	for w := 0; w < workers; w++ {
		b.eng.Go(fmt.Sprintf("sched-worker%d", w), func(p *sim.Proc) {
			for {
				if next >= len(batch) {
					break
				}
				j := batch[next]
				next++
				j.started = p.Now()
				j.Run(p)
				j.finished = p.Now()
				b.stats.Completed++
				b.stats.TotalWait += j.started - j.submitted
				b.stats.TotalLatency += j.finished - j.submitted
			}
			remaining--
			if remaining == 0 {
				b.active--
			}
		})
	}
}
