// Package sched is the workload manager: concurrency-aware admission
// control with optional time-batching.
//
// §4.2 of the paper argues the big energy levers are workload-level —
// deciding *when* work runs and *how much hardware* it may occupy, across
// concurrent queries. The Admission controller owns both decisions:
//
//   - Concurrency. It tracks the server's simulated cores. A job asks for
//     up to `want` cores and is granted its share of the currently free
//     ones at admission time — a lone query gets the whole box and plans
//     wide, while under a saturating multi-stream load every query is
//     granted one core and plans serial, so inter- and intra-query
//     parallelism coexist without oversubscribing the cost model's
//     assumptions. When no core is free, arrivals queue FIFO.
//
//   - Batching (grown out of the earlier Batcher). A nonzero Window holds
//     arrivals for that many seconds from the first held job and releases
//     them together, consolidating activity so the gaps between bursts
//     grow long enough for disks to spin down — at the cost of latency.
//
// Which queued job dispatches next, and how many cores it is granted, is
// delegated to a pluggable Policy (policy.go): FIFO with fair-share
// grants (the default), earliest-deadline-first, or the consolidating
// energy-aware policy. The controller additionally supports *re-grant on
// completion*: when a job finishes and leaves cores free with nothing
// queued, running jobs that registered a widen callback are offered the
// freed cores in admission order, so a query admitted narrow on a busy
// box can restart its pipeline wider once the box drains.
package sched

import (
	"fmt"

	"energydb/internal/fault"
	"energydb/internal/sim"
)

// Ticket is one submitted job's admission record.
type Ticket struct {
	ID       int64
	Name     string
	Want     int     // cores requested (clamped to [1, TotalCores])
	Granted  int     // cores granted at admission; 0 while held or queued
	Deadline float64 // absolute engine time; 0 = none
	Tag      string  // compatibility tag for consolidating policies; "" = untagged

	run       func(p *sim.Proc, granted int)
	fail      func(err error)
	widen     func(free int) int
	submitted float64
	admitted  float64
	finished  float64
	canceled  bool
	running   bool
}

// Wait reports the delay between submission and admission.
func (t *Ticket) Wait() float64 { return t.admitted - t.submitted }

// Running reports whether the ticket's job has been dispatched and has
// not yet completed.
func (t *Ticket) Running() bool { return t.running }

// Stats summarises the controller's history.
type Stats struct {
	Submitted    int64
	Completed    int64   // jobs that ran to completion (never canceled/expired ones)
	Canceled     int64   // jobs dequeued by Cancel before ever running
	Expired      int64   // jobs rejected because their deadline passed while queued
	Batches      int64   // window releases (window > 0 only)
	Waited       int64   // jobs admitted strictly later than submitted
	TotalWait    float64 // time between submission and admission
	TotalLatency float64 // time between submission and completion
	PeakActive   int     // most jobs running at once
	PeakQueue    int     // deepest admission queue
	Regrants     int64   // widen offers accepted by running jobs
	RegrantCores int64   // cores handed out through accepted widen offers
}

// MeanWait reports the average queueing delay added by admission.
func (s Stats) MeanWait() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalWait / float64(s.Completed)
}

// MeanLatency reports the average submission-to-completion time.
func (s Stats) MeanLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalLatency / float64(s.Completed)
}

// Admission is the engine-resident admission controller. It is not safe
// for use outside the owning engine's single-threaded discipline; Submit
// may be called from event context, from a process, or from ordinary code
// before the engine is pumped.
type Admission struct {
	eng *sim.Engine

	// TotalCores is the capacity grants are drawn from (the server's
	// simulated cores).
	TotalCores int
	// Window, when positive, holds arrivals for that many seconds from
	// the first held job and releases them together (admission batching).
	Window float64
	// ReGrant enables widen offers: when a completion leaves cores free
	// and the queue empty, running tickets that registered a widen
	// callback are offered the freed cores in admission order.
	ReGrant bool

	policy   Policy
	nextID   int64
	free     int
	active   int
	holding  []*Ticket // waiting for the window to close
	queue    []*Ticket // released, waiting for a free core
	running  []*Ticket // dispatched, not yet complete (admission order)
	armed    bool      // a dispatch event is pending
	windowed bool      // a window-release event is pending
	offering bool      // a widen-offer event is pending
	stats    Stats
}

// NewAdmission returns a controller over cores simulated cores using the
// FIFO fair-share policy.
func NewAdmission(eng *sim.Engine, cores int, window float64) *Admission {
	return NewAdmissionPolicy(eng, cores, window, FIFO{})
}

// NewAdmissionPolicy returns a controller dispatching under the given
// policy.
func NewAdmissionPolicy(eng *sim.Engine, cores int, window float64, pol Policy) *Admission {
	if cores < 1 {
		panic(fmt.Sprintf("sched: %d cores", cores))
	}
	if pol == nil {
		pol = FIFO{}
	}
	return &Admission{eng: eng, TotalCores: cores, Window: window, policy: pol, free: cores}
}

// Stats returns a copy of the counters.
func (a *Admission) Stats() Stats { return a.stats }

// Policy returns the dispatch policy in force.
func (a *Admission) Policy() Policy { return a.policy }

// Active reports how many admitted jobs are currently running.
func (a *Admission) Active() int { return a.active }

// FreeCores reports the cores not granted to any running job.
func (a *Admission) FreeCores() int { return a.free }

// Queued reports jobs released from the window but not yet admitted.
func (a *Admission) Queued() int { return len(a.queue) }

// Job describes a submission with the full lifecycle surface: an
// optional absolute deadline and an optional failure callback invoked
// (in event context) if the job is rejected before it ever runs —
// because its deadline passed while it was queued or held.
type Job struct {
	Name     string
	Want     int     // cores requested (clamped to [1, TotalCores])
	Deadline float64 // absolute engine time; 0 = none
	Tag      string  // compatibility tag (e.g. statement text); "" = untagged
	Run      func(p *sim.Proc, granted int)
	Fail     func(err error)
}

// Submit offers a job wanting up to want cores. The job starts when the
// window (if any) closes and a core is free; run receives its own
// simulated process and the number of cores granted. Submit returns the
// ticket, whose Granted field is filled at admission.
func (a *Admission) Submit(name string, want int, run func(p *sim.Proc, granted int)) *Ticket {
	return a.SubmitJob(Job{Name: name, Want: want, Run: run})
}

// SubmitJob is Submit with deadline and failure-callback support. A job
// whose deadline passes while it is still queued or held never runs: it
// leaves the queue, counts as Expired (not Completed), and its Fail
// callback fires with fault.ErrDeadlineExceeded. Deadline enforcement
// for *running* jobs belongs to the session layer, which owns the
// query's cancel flag.
func (a *Admission) SubmitJob(j Job) *Ticket {
	a.nextID++
	want := j.Want
	if want < 1 {
		want = 1
	}
	if want > a.TotalCores {
		want = a.TotalCores
	}
	t := &Ticket{ID: a.nextID, Name: j.Name, Want: want, Deadline: j.Deadline,
		Tag: j.Tag, run: j.Run, fail: j.Fail, submitted: a.eng.Now()}
	a.stats.Submitted++
	if t.Deadline > 0 {
		at := t.Deadline
		if at < a.eng.Now() {
			at = a.eng.Now()
		}
		a.eng.At(at, "sched-deadline", func() { a.expire(t) })
	}
	if a.Window > 0 {
		a.holding = append(a.holding, t)
		if !a.windowed {
			a.windowed = true
			a.eng.After(a.Window, "sched-window", func() { a.release() })
		}
		return t
	}
	a.queue = append(a.queue, t)
	if len(a.queue) > a.stats.PeakQueue {
		a.stats.PeakQueue = len(a.queue)
	}
	a.armDispatch()
	return t
}

// Cancel removes a ticket that has not started running from the queue
// (or the window hold), reporting whether it was dequeued. A canceled
// ticket never dispatches and is not counted as completed. Canceling a
// running or finished ticket reports false and does nothing — running
// work is stopped through the job's own cancellation path.
func (a *Admission) Cancel(t *Ticket) bool {
	if t.running || t.canceled {
		return false
	}
	if !a.remove(t) {
		return false
	}
	t.canceled = true
	a.stats.Canceled++
	return true
}

// expire rejects a ticket whose deadline passed while it was waiting.
func (a *Admission) expire(t *Ticket) {
	if t.running || t.canceled {
		return
	}
	if !a.remove(t) {
		return
	}
	t.canceled = true
	a.stats.Expired++
	if t.fail != nil {
		t.fail(fmt.Errorf("sched: %s queued past its deadline (%.6f): %w",
			t.Name, t.Deadline, fault.ErrDeadlineExceeded))
	}
}

// remove deletes t from the queue or the window hold, reporting success.
func (a *Admission) remove(t *Ticket) bool {
	for i, q := range a.queue {
		if q == t {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return true
		}
	}
	for i, h := range a.holding {
		if h == t {
			a.holding = append(a.holding[:i], a.holding[i+1:]...)
			return true
		}
	}
	return false
}

// Reset forcibly returns the controller to an empty, all-cores-free
// state after Engine.Crash has unwound every running job. Queued and
// held tickets are dropped without callbacks — the crash path fails
// their owners directly.
func (a *Admission) Reset() {
	a.free = a.TotalCores
	a.active = 0
	a.queue = nil
	a.holding = nil
	a.running = nil
	a.armed = false
	a.windowed = false
	a.offering = false
}

// release moves the held window batch to the admission queue.
func (a *Admission) release() {
	a.windowed = false
	if len(a.holding) == 0 {
		return
	}
	a.stats.Batches++
	a.queue = append(a.queue, a.holding...)
	a.holding = nil
	if len(a.queue) > a.stats.PeakQueue {
		a.stats.PeakQueue = len(a.queue)
	}
	a.dispatch()
}

// armDispatch schedules one dispatch at the current instant, so all
// same-instant submissions are granted together under one fair share.
func (a *Admission) armDispatch() {
	if a.armed {
		return
	}
	a.armed = true
	a.eng.After(0, "sched-dispatch", func() {
		a.armed = false
		a.dispatch()
	})
}

// dispatch admits queued jobs while cores are free. The policy picks
// which queued job goes next (or holds the queue); the grant is the
// policy's, clamped to [1, free]. Under the default FIFO policy this is
// the historical behaviour: arrival order with fair-share grants —
// min(want, totalCores/(active+queued), free), never less than one — so
// grants come only from free cores, a lone query gets them all, and a
// saturating stream load degrades to one core per query.
func (a *Admission) dispatch() {
	for len(a.queue) > 0 && a.free > 0 {
		i := a.policy.Select(a.eng.Now(), a.queue, a.running, a.free, a.TotalCores)
		if i < 0 || i >= len(a.queue) {
			if a.active > 0 {
				break // policy holds the queue; a completion re-arms dispatch
			}
			i = 0 // starvation guard: never hold work on an idle box
		}
		t := a.queue[i]
		if t.Deadline > 0 && t.Deadline <= a.eng.Now() {
			// Already past its deadline at dispatch time: reject rather
			// than start work that can only be thrown away.
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			t.canceled = true
			a.stats.Expired++
			if t.fail != nil {
				t.fail(fmt.Errorf("sched: %s queued past its deadline (%.6f): %w",
					t.Name, t.Deadline, fault.ErrDeadlineExceeded))
			}
			continue
		}
		g := a.policy.Grant(t, a.eng.Now(), a.free, a.TotalCores, a.active, len(a.queue))
		if g < 1 {
			g = 1
		}
		if a.free < g {
			g = a.free
		}
		a.queue = append(a.queue[:i], a.queue[i+1:]...)
		a.free -= g
		a.active++
		if a.active > a.stats.PeakActive {
			a.stats.PeakActive = a.active
		}
		t.Granted = g
		t.running = true
		t.admitted = a.eng.Now()
		if t.admitted > t.submitted {
			a.stats.Waited++
		}
		a.stats.TotalWait += t.admitted - t.submitted
		a.running = append(a.running, t)
		a.eng.Go(t.Name, func(p *sim.Proc) {
			t.run(p, t.Granted)
			a.complete(t)
		})
	}
}

// SetWiden registers a running ticket's widen callback. When a completion
// leaves cores free and nothing queued (and ReGrant is enabled), the
// callback is offered the free cores and returns how many it accepts —
// typically after replanning at the wider grant and arranging a pipeline
// restart. It must return between 0 and the offer; the controller
// applies the acceptance to the ticket's grant. Pass nil to deregister.
func (a *Admission) SetWiden(t *Ticket, fn func(free int) int) { t.widen = fn }

// Shrink returns part of a running job's grant to the free pool — a
// query whose chosen plan uses fewer cores than it was granted gives the
// remainder back as soon as the plan is known, so staggered arrivals are
// not serialized behind grants nobody uses. The ticket keeps holding `to`
// cores (floor one) until completion.
func (a *Admission) Shrink(t *Ticket, to int) {
	if to < 1 {
		to = 1
	}
	if to >= t.Granted {
		return
	}
	a.free += t.Granted - to
	t.Granted = to
	if len(a.queue) > 0 {
		a.armDispatch()
	}
}

// complete returns a finished job's cores and admits waiting work. When
// nothing is queued and re-grant is enabled, the freed cores are instead
// offered to the jobs still running.
func (a *Admission) complete(t *Ticket) {
	t.finished = a.eng.Now()
	t.running = false
	t.widen = nil
	a.free += t.Granted
	a.active--
	a.stats.Completed++
	a.stats.TotalLatency += t.finished - t.submitted
	for i, r := range a.running {
		if r == t {
			a.running = append(a.running[:i], a.running[i+1:]...)
			break
		}
	}
	if len(a.queue) > 0 {
		a.armDispatch()
		return
	}
	if a.ReGrant && a.free > 0 && len(a.running) > 0 && !a.offering {
		a.offering = true
		a.eng.After(0, "sched-regrant", func() {
			a.offering = false
			a.offerWiden()
		})
	}
}

// offerWiden hands freed cores to running tickets in admission order.
// Each widen callback sees the cores still free and accepts some prefix
// of them; the controller moves the acceptance from the free pool onto
// the ticket's grant. Offers are only made when the queue is empty —
// queued work always has first claim on freed cores.
func (a *Admission) offerWiden() {
	if a.free <= 0 || len(a.queue) > 0 || len(a.holding) > 0 {
		return
	}
	for _, t := range a.running {
		if a.free <= 0 {
			break
		}
		if t.widen == nil || !t.running {
			continue
		}
		got := t.widen(a.free)
		if got <= 0 {
			continue
		}
		if got > a.free {
			got = a.free
		}
		a.free -= got
		t.Granted += got
		a.stats.Regrants++
		a.stats.RegrantCores += int64(got)
	}
}
