package sched

// This file holds the pluggable admission policies. The controller owns
// the mechanics (queueing, windows, grants, re-grant offers); a Policy
// owns the decisions the paper's §4.2 says matter — *which* queued job
// runs next and *how many* cores it gets:
//
//   - FIFO is the classical arrival-order policy with fair-share grants,
//     the controller's historical behaviour, bit-for-bit.
//   - EDF (earliest deadline first) dispatches the queued job whose
//     deadline is nearest, so latency-budgeted work jumps the analytic
//     backlog instead of expiring behind it (Niemann et al.'s observation
//     that the latency-vs-energy trade only exists per-query under load).
//   - EnergyAware is EDF for deadline work plus consolidation for the
//     rest: background (deadline-free) jobs are held while deadline work
//     runs, released batched by compatibility tag (same statement —
//     buffer-pool-warm scans), granted wide so DVFS-aware planning can go
//     wide-and-slow, and the grant can hold cores back as headroom so an
//     arriving deadline query finds a free core instead of a saturated box.

// Policy decides dispatch order and grant size. Implementations must be
// deterministic pure functions of their arguments: the controller calls
// them under the simulation's single-threaded discipline, and the chaos
// harness asserts bit-identical replay per seed.
type Policy interface {
	Name() string

	// Select returns the index in queue of the job to dispatch next, or
	// -1 to hold the queue as it is (wait for a completion or for more
	// compatible work). queue and running must not be mutated. The
	// controller guards against starvation: a hold is overridden when
	// nothing is running.
	Select(now float64, queue, running []*Ticket, free, total int) int

	// Grant sizes the core grant for the selected job. queued counts the
	// job itself. The controller clamps the result to [1, free]; returning
	// less than free deliberately holds cores back.
	Grant(t *Ticket, now float64, free, total, active, queued int) int
}

// fairShare is the shared grant rule: every job running or waiting gets an
// equal slice of the machine, clamped by what the job wants and what is
// actually free — a lone query gets the whole box, a saturating stream
// load degrades to one core per query.
func fairShare(t *Ticket, free, total, active, queued int) int {
	share := total / (active + queued)
	if share < 1 {
		share = 1
	}
	g := t.Want
	if share < g {
		g = share
	}
	if g > free {
		g = free
	}
	return g
}

// FIFO dispatches in arrival order with fair-share grants — the
// controller's historical behaviour.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Select implements Policy: always the head of the queue.
func (FIFO) Select(now float64, queue, running []*Ticket, free, total int) int { return 0 }

// Grant implements Policy.
func (FIFO) Grant(t *Ticket, now float64, free, total, active, queued int) int {
	return fairShare(t, free, total, active, queued)
}

// EDF dispatches the queued job with the earliest deadline; jobs without
// a deadline sort after every deadline, in arrival order. Grants are the
// same fair share as FIFO, so the two policies differ only in order.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "edf" }

// Select implements Policy.
func (EDF) Select(now float64, queue, running []*Ticket, free, total int) int {
	return earliestDeadline(queue, false)
}

// Grant implements Policy.
func (EDF) Grant(t *Ticket, now float64, free, total, active, queued int) int {
	return fairShare(t, free, total, active, queued)
}

// earliestDeadline returns the index of the queued job with the earliest
// positive deadline (ties break FIFO). Jobs without a deadline sort last;
// if deadlineOnly is set and no queued job has one, it returns -1,
// otherwise the first deadline-free job (index 0) wins.
func earliestDeadline(queue []*Ticket, deadlineOnly bool) int {
	best := -1
	for i, t := range queue {
		if t.Deadline <= 0 {
			continue
		}
		if best < 0 || t.Deadline < queue[best].Deadline {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	if deadlineOnly {
		return -1
	}
	return 0
}

// EnergyAware is the consolidating policy: deadline work runs EDF with
// fair-share grants; background work is held while any deadline job is
// queued or running, then released preferring the compatibility tag
// already on the box (batching same-statement scans onto a warm buffer
// pool), granted every free core beyond HoldFree so DVFS-aware planning
// can choose wide-and-slow at a low P-state.
type EnergyAware struct {
	// HoldFree cores are kept back from background grants: headroom so an
	// arriving deadline query finds a free core (and the box can stay at
	// its low P-state) instead of queueing behind a full-width grant.
	HoldFree int
}

// Name implements Policy.
func (EnergyAware) Name() string { return "energy" }

// Select implements Policy.
func (p EnergyAware) Select(now float64, queue, running []*Ticket, free, total int) int {
	if i := earliestDeadline(queue, true); i >= 0 {
		return i
	}
	// Only background work is queued. Hold it while deadline work runs —
	// consolidating the background burst to after the latency-critical
	// period — but never under other background work (that would
	// serialize the whole background tier).
	for _, r := range running {
		if r.Deadline > 0 {
			return -1
		}
	}
	// Prefer work compatible with what is already running: same tag means
	// same statement, so its scan hits the pool pages the running copy
	// just faulted in.
	for _, r := range running {
		if r.Tag == "" {
			continue
		}
		for i, q := range queue {
			if q.Tag == r.Tag {
				return i
			}
		}
	}
	return 0
}

// Grant implements Policy.
func (p EnergyAware) Grant(t *Ticket, now float64, free, total, active, queued int) int {
	if t.Deadline > 0 {
		return fairShare(t, free, total, active, queued)
	}
	g := free - p.HoldFree
	if g < 1 {
		g = 1
	}
	if t.Want < g {
		g = t.Want
	}
	return g
}
