package lint

// The fixture tests follow the analysistest convention: each
// testdata/<analyzer>/ package is loaded under an impersonated import
// path (CheckDirAs) and its `// want "regex"` comments must match the
// analyzer's diagnostics line for line — every want must be hit, every
// diagnostic must be wanted. TestSuiteCleanAtHead then runs the whole
// suite over the module itself, pinning the tree at zero violations.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	sharedLd   *Loader
	loaderErr  error
)

// testLoader shares one Loader across all tests so the standard library
// is typechecked once per `go test` process.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLd, loaderErr = NewLoader("") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return sharedLd
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans the fixture directory's Go files for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var wants []*expectation
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", de.Name(), line, m[1], err)
			}
			wants = append(wants, &expectation{file: de.Name(), line: line, re: re})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// runFixture loads dir as a package named asPath, runs one analyzer, and
// checks the diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	diags := fixtureDiags(t, a, dir, asPath)
	wants := collectWants(t, dir)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && filepath.Base(d.Pos.Filename) == w.file &&
				d.Pos.Line == w.line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// runFixtureClean loads dir under asPath and requires zero diagnostics,
// ignoring any want comments — the scope-exclusion test shape.
func runFixtureClean(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	for _, d := range fixtureDiags(t, a, dir, asPath) {
		t.Errorf("unexpected diagnostic under %s: %s", asPath, d)
	}
}

func fixtureDiags(t *testing.T, a *Analyzer, dir, asPath string) []Diagnostic {
	t.Helper()
	pkg, err := testLoader(t).CheckDirAs(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

func TestBatchRetainFixture(t *testing.T) {
	runFixture(t, BatchRetain, "testdata/batchretain", "energydb/internal/exec/fixture")
}

func TestFragFreshFixture(t *testing.T) {
	runFixture(t, FragFresh, "testdata/fragfresh", "energydb/internal/exec/fixture")
}

func TestErrTaxonomyFixture(t *testing.T) {
	runFixture(t, ErrTaxonomy, "testdata/errtaxonomy", "energydb/internal/exec/fixture")
}

// Outside the engine packages the %w rule is off; the same analyzer must
// stay silent on an un-wrapped fmt.Errorf.
func TestErrTaxonomyOutsideWrapScope(t *testing.T) {
	runFixtureClean(t, ErrTaxonomy, "testdata/errtaxonomy_noscope", "energydb/internal/wire/fixture")
}

func TestSimDeterminismFixture(t *testing.T) {
	runFixture(t, SimDeterminism, "testdata/simdeterminism", "energydb/internal/sim/fixture")
}

// The same violations are legal outside the simulation-deterministic
// packages (wire code may read the wall clock).
func TestSimDeterminismOutsideScope(t *testing.T) {
	runFixtureClean(t, SimDeterminism, "testdata/simdeterminism", "energydb/internal/wire/fixture")
}

func TestChargeOwnerFixture(t *testing.T) {
	runFixture(t, ChargeOwner, "testdata/chargeowner", "energydb/internal/exec/fixture")
}

// Device-model code is allowed to charge.
func TestChargeOwnerAllowedScope(t *testing.T) {
	runFixtureClean(t, ChargeOwner, "testdata/chargeowner_allowed", "energydb/internal/hw/fixture")
}

// TestSuiteCleanAtHead pins the whole module (tests included) at zero
// contract violations — the same gate CI's eelint run enforces.
func TestSuiteCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the entire module")
	}
	diags, err := testLoader(t).LoadAndRun(Suite(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("HEAD is not eelint-clean: %s", d)
	}
}
