package lint

import (
	"go/ast"
	"go/types"
)

// SimDeterminism protects the simulation's bit-identity guarantee
// (CONTRACT.md "Determinism"): the same program and seeds must produce
// identical results, timings and joules at any DOP. In the packages that
// execute under the simulated clock — exec, opt, sim, sched, energy —
// three nondeterminism sources are banned:
//
//  1. Wall-clock reads (time.Now, time.Since): simulated code asks the
//     engine (sim.Engine.Now / Proc.Now) for time.
//  2. The global math/rand source (rand.Intn, rand.Shuffle, ...): all
//     randomness flows from explicit seeded rand.New(rand.NewSource(s)).
//  3. Map iteration that feeds an ordered output path (append, channel
//     send, or return inside the range body) — Go randomises map order,
//     so results would differ run to run. Collect-then-sort is the
//     sanctioned idiom: a loop whose collected slice is passed to a
//     sort.*/slices.Sort* call later in the same function is clean.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "no wall-clock, no unseeded math/rand, no map-iteration order leaking into results in simulation-deterministic packages",
	Run:  runSimDeterminism,
}

var simDetScope = []string{
	"energydb/internal/exec",
	"energydb/internal/opt",
	"energydb/internal/sim",
	"energydb/internal/sched",
	"energydb/internal/energy",
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

func runSimDeterminism(pass *Pass) error {
	if !pathInAny(pass.Path, simDetScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulated code must use the engine clock (sim.Engine.Now)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(call.Pos(), "rand.%s draws from the unseeded global source; use a seeded rand.New(rand.NewSource(seed))", fn.Name())
				}
			}
			return true
		})
	}
	checkMapIterationOrder(pass)
	return nil
}

// checkMapIterationOrder flags range-over-map loops whose body emits in
// iteration order, unless the collected slice is sorted afterwards in the
// same function.
func checkMapIterationOrder(pass *Pass) {
	funcScope(pass.Files, func(fnNode ast.Node, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Pos() != fnNode.Pos() {
				return false // nested literals get their own funcScope visit
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rng.X); t == nil || !isMapType(t) {
				return true
			}
			emits, appendTargets := scanRangeBody(pass, rng)
			if !emits {
				return true
			}
			if sortedAfter(pass, body, rng, appendTargets) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration order feeds an emit path; iterate sorted keys or sort the collected slice before use")
			return true
		})
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// scanRangeBody looks for order-leaking statements inside a range body:
// appends, channel sends, and returns whose payload derives from the
// iteration variables. Order-independent bodies (summing into a scalar,
// counting, deleting keys) stay clean.
func scanRangeBody(pass *Pass, rng *ast.RangeStmt) (emits bool, appendTargets map[types.Object]bool) {
	appendTargets = make(map[types.Object]bool)
	tainted := rangeVarObjects(pass, rng)
	// Two propagation passes: a var assigned from a tainted expression is
	// itself tainted (one level of indirection covers the common
	// `x := v.field; out = append(out, x)` shape).
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for i, rhs := range as.Rhs {
					if i < len(as.Lhs) && refsAny(pass, rhs, tainted) {
						if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								tainted[obj] = true
							} else if obj := pass.Info.Uses[id]; obj != nil {
								tainted[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if refsAny(pass, r, tainted) {
					emits = true
				}
			}
		case *ast.SendStmt:
			if refsAny(pass, s.Value, tainted) {
				emits = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.Info, id) {
				// Builtin append (not a shadowing user function).
				taintedArg := false
				for _, a := range s.Args[1:] {
					if refsAny(pass, a, tainted) {
						taintedArg = true
					}
				}
				if taintedArg && len(s.Args) > 0 {
					emits = true
					if base := rootIdent(s.Args[0]); base != nil {
						appendTargets[pass.Info.Uses[base]] = true
					}
				}
			}
		}
		return true
	})
	return emits, appendTargets
}

// rangeVarObjects returns the objects bound to the range statement's key
// and value variables.
func rangeVarObjects(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// refsAny reports whether expression e references any of the given
// objects.
func refsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, after the range loop, the function sorts
// one of the slices the loop appended to (sort.* / slices.Sort*).
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, targets map[types.Object]bool) bool {
	if len(targets) == 0 {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if base := rootIdent(arg); base != nil && targets[pass.Info.Uses[base]] {
				found = true
			}
		}
		return true
	})
	return found
}

// rootIdent digs the base identifier out of expressions like x,
// x.f, x[i], or &x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
