package lint

import (
	"go/ast"
	"go/types"
)

// BatchRetain enforces the volcano lifetime rule (CONTRACT.md "The one
// rule" and exec.Operator's doc): a batch returned by a child's Next —
// and the vectors and selection it references — is valid only until the
// producer's next Next/Close, because producers reuse their buffers. An
// operator that stows such a borrowed batch (or b.Vecs / b.Sel) into a
// struct field or package variable would read recycled memory on the
// following iteration. Retention requires materialisation first:
// Clone, AppendBatch, or AppendGather copy the rows into state the
// consumer owns (NestedLoopJoin's `j.outerB = ob.Clone()` is the
// canonical legal form).
//
// The analysis is a per-function forward scan: values bound from a
// `*.Next(ctx)` call returning (*table.Batch, error) are borrowed, as
// are projections of them (b.Vecs, b.Vecs[i], b.Sel); assigning a
// borrowed value to a struct field, package variable, or an element of
// a field-held container is flagged unless the right-hand side passes
// through a materialising call.
var BatchRetain = &Analyzer{
	Name: "batchretain",
	Doc:  "batches borrowed from a child Next may not be stored into fields or globals without Clone/AppendBatch/AppendGather",
	Run:  runBatchRetain,
}

func runBatchRetain(pass *Pass) error {
	funcScope(pass.Files, func(fnNode ast.Node, body *ast.BlockStmt) {
		borrowed := make(map[types.Object]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Pos() != fnNode.Pos() {
				return false // literals get their own visit
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			checkBatchAssign(pass, as, borrowed)
			return true
		})
	})
	return nil
}

func checkBatchAssign(pass *Pass, as *ast.AssignStmt, borrowed map[types.Object]bool) {
	// Tuple form: b, err := child.Next(ctx).
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isChildNextCall(pass, call) {
			reportOrMark(pass, as.Lhs[0], borrowed, "the batch returned by a child Next")
			return
		}
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		what, isBorrowed := borrowedValue(pass, rhs, borrowed)
		if !isBorrowed {
			continue
		}
		reportOrMark(pass, as.Lhs[i], borrowed, what)
	}
}

// reportOrMark flags lhs when it escapes the function's locals (struct
// field, package var, or element of one); a plain local binding just
// propagates the borrow.
func reportOrMark(pass *Pass, lhs ast.Expr, borrowed map[types.Object]bool, what string) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			if isPackageVar(v) {
				pass.Reportf(lhs.Pos(), "%s escapes into package variable %s; materialise with Clone/AppendBatch/AppendGather first (volcano lifetime rule)", what, v.Name())
				return
			}
			borrowed[v] = true
		}
		return
	}
	if escapesToField(pass, lhs) {
		pass.Reportf(lhs.Pos(), "%s escapes into a struct field; materialise with Clone/AppendBatch/AppendGather first (volcano lifetime rule)", what)
	}
}

// escapesToField reports whether the assignment target is a struct field
// or an element reached through one (o.f, o.f[i], globalSlice[i]).
func escapesToField(pass *Pass, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && isPackageVar(v) {
			return true // qualified package-level var (pkg.Var)
		}
	case *ast.IndexExpr:
		return escapesToField(pass, e.X) || isPackageVarExpr(pass, e.X)
	case *ast.StarExpr:
		return escapesToField(pass, e.X)
	}
	return false
}

func isPackageVar(v *types.Var) bool {
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

func isPackageVarExpr(pass *Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			return isPackageVar(v)
		}
	}
	return false
}

// borrowedValue decides whether rhs evaluates to borrowed child-batch
// state, describing it when so. Materialising calls (Clone and friends)
// launder the value.
func borrowedValue(pass *Pass, rhs ast.Expr, borrowed map[types.Object]bool) (string, bool) {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok && borrowed[v] {
			return "a batch borrowed from a child Next", true
		}
	case *ast.SelectorExpr:
		// b.Vecs / b.Sel of a borrowed b.
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[base].(*types.Var); ok && borrowed[v] &&
				(e.Sel.Name == "Vecs" || e.Sel.Name == "Sel") {
				return "a borrowed batch's " + e.Sel.Name, true
			}
		}
	case *ast.IndexExpr:
		// b.Vecs[i] of a borrowed b.
		if what, ok := borrowedValue(pass, e.X, borrowed); ok {
			return what, true
		}
	case *ast.CallExpr:
		if isChildNextCall(pass, e) {
			return "the batch returned by a child Next", true
		}
		// Any other call — Clone, AppendBatch, a constructor — owns its
		// result; the borrow does not propagate through it.
	}
	return "", false
}

// isChildNextCall matches method calls named Next returning
// (*table.Batch, error) — the volcano producer handoff.
func isChildNextCall(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Next" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 2 {
		return false
	}
	return namedType(sig.Results().At(0).Type(), pkgTable, "Batch") &&
		isErrorType(sig.Results().At(1).Type())
}
