package lint

import (
	"go/ast"
	"go/types"
)

// FragFresh enforces the fragment-boundary rule (CONTRACT.md "The
// fragment-boundary rule"): everything handed to an exchange as a
// fragment is exclusively owned by its worker — predicates carry
// evaluation scratch, fused kernels carry register banks, and the
// coordinator's Ctx is per-process — so each fragment must construct its
// own instances. Sharing one Pred or FusedExpr across fragment indices
// is a data race in real engines and nondeterminism here.
//
// Two shapes are flagged:
//
//  1. A fragment factory (any func literal returning exec.Operator, the
//     shape of PScan.BuildFragments' mk and Parallel.Spawn) that
//     captures a Pred, *FusedExpr, or *exec.Ctx declared outside the
//     literal: the factory runs once per fragment, so the capture is
//     shared across all of them. Fresh construction inside the literal
//     is the fix.
//  2. A loop that fills a []exec.Operator (frags[i] = ... / frags =
//     append(frags, ...)) passing a Pred or *FusedExpr constructed
//     outside the loop into each element.
var FragFresh = &Analyzer{
	Name: "fragfresh",
	Doc:  "fragment factories and fragment-array loops must construct per-fragment Pred/kernel/Ctx state fresh, not capture shared instances",
	Run:  runFragFresh,
}

func runFragFresh(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				checkFactoryCaptures(pass, e)
			case *ast.ForStmt:
				checkFragmentLoop(pass, e, e.Body)
			case *ast.RangeStmt:
				checkFragmentLoop(pass, e, e.Body)
			}
			return true
		})
	}
	return nil
}

// isSharedFragState reports whether t is per-fragment state that must
// not be shared: a predicate, a fused kernel, or the executor context.
// The description names the offending kind.
func isSharedFragState(t types.Type) (string, bool) {
	switch {
	case namedType(t, pkgExec, "Pred"):
		return "Pred", true
	case namedType(t, pkgExec, "FusedExpr"):
		return "fused kernel", true
	case namedType(t, pkgExec, "Ctx"):
		return "Ctx", true
	}
	return "", false
}

// returnsOperator reports whether the literal's signature produces an
// exec.Operator — the fragment-factory shape.
func returnsOperator(pass *Pass, lit *ast.FuncLit) bool {
	sig, ok := pass.TypeOf(lit).(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if namedType(sig.Results().At(i).Type(), pkgExec, "Operator") {
			return true
		}
	}
	return false
}

// checkFactoryCaptures flags free variables of banned types referenced
// inside a fragment-factory literal.
func checkFactoryCaptures(pass *Pass, lit *ast.FuncLit) {
	if !returnsOperator(pass, lit) {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || reported[v] || !declaredOutside(v, lit) {
			return true
		}
		if kind, bad := isSharedFragState(v.Type()); bad {
			reported[v] = true
			pass.Reportf(id.Pos(), "fragment factory captures shared %s %q; construct a fresh instance inside the per-fragment closure (fragment-boundary rule)", kind, v.Name())
		}
		return true
	})
}

// checkFragmentLoop flags loops that build a fragment array while
// passing the same Pred/kernel instance (declared outside the loop) to
// every element.
func checkFragmentLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if !isOperatorSliceTarget(pass, lhs, as.Rhs[i]) {
				continue
			}
			for _, arg := range fragConstructorArgs(as.Rhs[i]) {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.Info.Uses[id].(*types.Var)
				if !ok || v.IsField() || !declaredOutside(v, loop) {
					continue
				}
				if kind, bad := isSharedFragState(v.Type()); bad {
					pass.Reportf(id.Pos(), "fragment loop shares one %s %q across fragments; construct it inside the loop body (fragment-boundary rule)", kind, v.Name())
				}
			}
		}
		return true
	})
}

// isOperatorSliceTarget reports whether the assignment fills an element
// of (or appends to) a []exec.Operator.
func isOperatorSliceTarget(pass *Pass, lhs, rhs ast.Expr) bool {
	isOpSlice := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		sl, ok := t.Underlying().(*types.Slice)
		return ok && namedType(sl.Elem(), pkgExec, "Operator")
	}
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isOpSlice(ix.X) {
		return true
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" &&
			isBuiltin(pass.Info, id) && len(call.Args) > 0 && isOpSlice(call.Args[0]) {
			return true
		}
	}
	return false
}

// fragConstructorArgs collects the argument expressions of the
// constructor call(s) on the right-hand side, looking through append and
// nested constructor calls one level deep.
func fragConstructorArgs(rhs ast.Expr) []ast.Expr {
	var out []ast.Expr
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	args := call.Args
	if id, isAppend := ast.Unparen(call.Fun).(*ast.Ident); isAppend && id.Name == "append" && len(args) > 1 {
		args = args[1:]
	}
	for _, a := range args {
		if inner, ok := ast.Unparen(a).(*ast.CallExpr); ok {
			out = append(out, inner.Args...)
			continue
		}
		if cl, ok := ast.Unparen(a).(*ast.CompositeLit); ok {
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					out = append(out, kv.Value)
				} else {
					out = append(out, el)
				}
			}
			continue
		}
		out = append(out, a)
	}
	return out
}
