// Package lint is the eelint analyzer suite: static checks that enforce
// the executor contract (internal/exec/CONTRACT.md) at compile time.
//
// The suite is shaped like golang.org/x/tools/go/analysis — named
// analyzers over a typechecked package, reporting position-anchored
// diagnostics — but is built on the standard library alone (go/ast,
// go/types, and a `go list`-driven loader) because the module carries no
// external dependencies. Each analyzer encodes one CONTRACT.md rule:
//
//   - batchretain: a batch borrowed from a child's Next (or its Vecs or
//     Sel) may not escape into a struct field or package variable without
//     an intervening Clone/AppendBatch/AppendGather materialisation.
//   - fragfresh: fragment factories may not capture a shared Pred, fused
//     kernel, or coordinator Ctx across fragment indices — per-fragment
//     state is constructed inside the factory.
//   - errtaxonomy: no err.Error() string comparison anywhere; error
//     wrapping in the engine packages uses %w (or the fault sentinels)
//     so errors.Is works across the wire.
//   - simdeterminism: no wall-clock reads, no unseeded global math/rand,
//     and no map iteration feeding an ordered output path in the
//     simulation-deterministic packages.
//   - chargeowner: marginal-energy charging stays in device/volume code;
//     simulated processes are spawned through sim.Engine.Go, never
//     constructed raw, so energy accounts inherit.
//
// A diagnostic can be suppressed with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named contract check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one typechecked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the logical import path used for scope decisions. For
	// packages loaded from the module it equals Pkg.Path(); fixture
	// packages under testdata override it to impersonate the package
	// whose rules they exercise.
	Path string

	diags   *[]Diagnostic
	ignores map[string][]ignoreDirective // file name -> directives
}

// Diagnostic is one reported contract violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

type ignoreDirective struct {
	line     int
	analyzer string
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)`)

// collectIgnores indexes //lint:ignore directives by file and line. A
// directive suppresses matching diagnostics on its own line and on the
// line below it (so it can trail the offending expression or sit on its
// own line above it).
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	out := make(map[string][]ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename],
					ignoreDirective{line: pos.Line, analyzer: m[1]})
			}
		}
	}
	return out
}

func (p *Pass) suppressed(pos token.Position) bool {
	for _, d := range p.ignores[pos.Filename] {
		if d.analyzer == p.Analyzer.Name && (d.line == pos.Line || d.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// Reportf records a diagnostic at pos unless a //lint:ignore directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Suite returns every analyzer in the eelint suite, in report order.
func Suite() []*Analyzer {
	return []*Analyzer{
		BatchRetain,
		FragFresh,
		ErrTaxonomy,
		SimDeterminism,
		ChargeOwner,
	}
}

// RunAnalyzers applies analyzers to one loaded package and returns the
// diagnostics, sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			diags:    &diags,
			ignores:  ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathHasPrefix reports whether path is pkg or sits under pkg ("a/b"
// matches "a/b" and "a/b/c", not "a/bc").
func pathHasPrefix(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// pathInAny reports whether path sits under any of the given prefixes.
func pathInAny(path string, prefixes ...string) bool {
	for _, p := range prefixes {
		if pathHasPrefix(path, p) {
			return true
		}
	}
	return false
}
