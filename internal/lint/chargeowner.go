package lint

import (
	"go/ast"
	"go/types"
)

// ChargeOwner enforces the owner-propagated energy accounting rules
// (CONTRACT.md "Admission and attribution"): per-query attribution holds
// because (a) only device and volume models credit marginal joules to the
// account riding on a process, and (b) every process is spawned through
// sim.Engine.Go, which makes children inherit the spawner's owner. A
// ChargeJoules call from operator or session code would double-bill the
// account next to the device's own charge; a raw &sim.Proc{} would carry
// no owner and silently drop its charges from the attribution sum —
// exactly the Σ attributed != meter drift the reconciliation tests exist
// to catch.
var ChargeOwner = &Analyzer{
	Name: "chargeowner",
	Doc:  "marginal-energy charging only from device/volume code; processes spawned via sim.Engine.Go, never constructed raw",
	Run:  runChargeOwner,
}

// chargeScope are the packages allowed to call Charger.ChargeJoules:
// hardware device models, the storage volume layer, and the attribution
// machinery itself.
var chargeScope = []string{
	"energydb/internal/hw",
	"energydb/internal/storage",
	"energydb/internal/energy",
}

func runChargeOwner(pass *Pass) error {
	chargeAllowed := pathInAny(pass.Path, chargeScope...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if !chargeAllowed && isChargeJoulesCall(pass, e) {
					pass.Reportf(e.Pos(), "ChargeJoules outside device/volume code; devices charge owners as they charge the meter — charging here double-bills the account")
				}
				if isRawProcNew(pass, e) {
					pass.Reportf(e.Pos(), "raw sim.Proc construction; spawn processes with sim.Engine.Go so energy accounts inherit the owner")
				}
			case *ast.CompositeLit:
				if namedType(pass.TypeOf(e), pkgSim, "Proc") && pass.Path != pkgSim {
					pass.Reportf(e.Pos(), "raw sim.Proc literal; spawn processes with sim.Engine.Go so energy accounts inherit the owner")
				}
			}
			return true
		})
	}
	return nil
}

// isChargeJoulesCall matches calls of energy.Charger's ChargeJoules —
// through the interface or any concrete implementation.
func isChargeJoulesCall(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "ChargeJoules" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	return namedType(sig.Params().At(0).Type(), pkgEnergy, "Joules")
}

// isRawProcNew matches new(sim.Proc) outside the sim package.
func isRawProcNew(pass *Pass, call *ast.CallExpr) bool {
	if pass.Path == pkgSim {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "new" || !isBuiltin(pass.Info, id) || len(call.Args) != 1 {
		return false
	}
	return namedType(pass.TypeOf(call.Args[0]), pkgSim, "Proc")
}
