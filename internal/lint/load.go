package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves and typechecks packages the way go/packages would,
// but with the standard library alone: `go list -json` supplies the file
// sets and import graphs (build-tag filtered, test variants included) and
// go/types checks everything from source in dependency order. The module
// has no external dependencies, so every import resolves to either the
// module itself or GOROOT source — both present offline.

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string // logical import path (scope decisions)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	Error      *struct{ Err string }
}

// Loader memoises typechecked packages across analyzer runs and fixture
// loads, so the standard library is checked once per process.
type Loader struct {
	ModRoot string // module root directory; `go list` runs here

	fset  *token.FileSet
	metas map[string]*listEntry
	pkgs  map[string]*loaded
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// NewLoader returns a loader rooted at the enclosing module of dir (or of
// the working directory when dir is empty).
func NewLoader(dir string) (*Loader, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModRoot: root,
		fset:    token.NewFileSet(),
		metas:   make(map[string]*listEntry),
		pkgs:    make(map[string]*loaded),
	}, nil
}

func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: not inside a module (dir %q)", dir)
	}
	return filepath.Dir(gomod), nil
}

// golist runs `go list -json` with the given extra args and folds the
// resulting entries into the meta index. CGO is disabled so every listed
// package is pure Go and checkable from source.
func (l *Loader) golist(args ...string) ([]*listEntry, error) {
	full := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,CgoFiles,Imports,ImportMap,Standard,ForTest,Error"}, args...)
	cmd := exec.Command("go", full...)
	cmd.Dir = l.ModRoot
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(full, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []*listEntry
	for dec.More() {
		e := new(listEntry)
		if err := dec.Decode(e); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		entries = append(entries, e)
		if _, seen := l.metas[e.ImportPath]; !seen {
			l.metas[e.ImportPath] = e
		}
	}
	return entries, nil
}

// Roots lists the analyzable packages matching patterns: test-augmented
// variants replace their plain package (they are a superset — GoFiles plus
// in-package test files), external test packages ride along, and compiled
// test mains are skipped.
func (l *Loader) Roots(patterns ...string) ([]string, error) {
	// The -deps listing primes the meta index with the full import graph;
	// the shallow re-list tells us which entries the patterns themselves
	// name.
	if _, err := l.golist(append([]string{"-test", "-deps", "--"}, patterns...)...); err != nil {
		return nil, err
	}
	top, err := l.golist(append([]string{"-test", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	augmented := make(map[string]bool) // plain paths covered by a test variant
	var roots []string
	for _, e := range top {
		if strings.HasSuffix(e.ImportPath, ".test") || len(e.GoFiles) == 0 {
			continue // compiled test main (its GoFiles live in the build cache)
		}
		if e.ForTest != "" {
			augmented[e.ForTest] = true
		}
		roots = append(roots, e.ImportPath)
	}
	var out []string
	for _, ip := range roots {
		if meta := l.metas[ip]; meta.ForTest == "" && augmented[ip] {
			continue // the [pkg.test] variant supersedes the plain package
		}
		out = append(out, ip)
	}
	return out, nil
}

// LoadPackage typechecks the package with the given `go list` import path
// (bracketed test-variant paths included).
func (l *Loader) LoadPackage(importPath string) (*Package, error) {
	ld := l.check(importPath)
	if ld.err != nil {
		return nil, ld.err
	}
	return &Package{
		Path:  logicalPath(importPath),
		Fset:  l.fset,
		Files: ld.files,
		Types: ld.pkg,
		Info:  ld.info,
	}, nil
}

// logicalPath strips the " [pkg.test]" suffix go list puts on test
// variants, leaving the path analyzers scope against.
func logicalPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func (l *Loader) check(importPath string) *loaded {
	if importPath == "unsafe" {
		return &loaded{pkg: types.Unsafe}
	}
	if ld, ok := l.pkgs[importPath]; ok {
		return ld
	}
	ld := &loaded{}
	l.pkgs[importPath] = ld // memoise first: import cycles fail fast below

	meta, ok := l.metas[importPath]
	if !ok {
		// On-demand resolution for imports outside the initial listing
		// (fixture packages import freely).
		if _, err := l.golist("-deps", "--", importPath); err != nil {
			ld.err = err
			return ld
		}
		if meta, ok = l.metas[importPath]; !ok {
			ld.err = fmt.Errorf("lint: package %q not found by go list", importPath)
			return ld
		}
	}
	if meta.Error != nil {
		ld.err = fmt.Errorf("lint: go list %s: %s", importPath, meta.Error.Err)
		return ld
	}
	var paths []string
	for _, f := range append(append([]string{}, meta.GoFiles...), meta.CgoFiles...) {
		if !strings.HasSuffix(f, ".go") {
			continue // generated test mains list build-cache blobs
		}
		paths = append(paths, filepath.Join(meta.Dir, f))
	}
	if len(paths) == 0 {
		ld.err = fmt.Errorf("lint: package %q has no Go files", importPath)
		return ld
	}
	files, err := l.parseFiles(paths)
	if err != nil {
		ld.err = err
		return ld
	}
	pkg, info, err := l.typecheck(logicalPath(importPath), meta, files)
	if err != nil && !meta.Standard {
		ld.err = err
		return ld
	}
	// Standard-library quirks (assembly-backed declarations, compiler
	// intrinsics) may typecheck imperfectly from source; an incomplete
	// stdlib package is still usable as an import.
	ld.pkg, ld.info, ld.files = pkg, info, files
	return ld
}

func (l *Loader) parseFiles(paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFor resolves an import seen while typechecking importer's
// files: the meta's ImportMap rewrites source-level paths to resolved
// ones (test variants), then the target is typechecked recursively.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func (l *Loader) typecheck(path string, meta *listEntry, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if meta != nil {
				if mapped, ok := meta.ImportMap[imp]; ok {
					imp = mapped
				}
			}
			ld := l.check(imp)
			if ld.err != nil {
				return nil, ld.err
			}
			return ld.pkg, nil
		}),
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err == nil {
		err = firstErr
	}
	if err != nil {
		return pkg, info, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	return pkg, info, nil
}

// CheckDirAs parses and typechecks every .go file in dir as one package
// whose logical import path is asPath — the fixture loader. Imports
// resolve against the module and the standard library exactly as for
// listed packages.
func (l *Loader) CheckDirAs(dir, asPath string) (*Package, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var paths []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, de.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files, err := l.parseFiles(paths)
	if err != nil {
		return nil, err
	}
	pkg, info, err := l.typecheck(asPath, nil, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: asPath, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

// LoadAndRun loads every package matching patterns and applies the
// analyzers, returning all diagnostics sorted by position.
func (l *Loader) LoadAndRun(analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	roots, err := l.Roots(patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, ip := range roots {
		pkg, err := l.LoadPackage(ip)
		if err != nil {
			return nil, err
		}
		ds, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(all)
	return all, nil
}
