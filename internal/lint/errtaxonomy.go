package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ErrTaxonomy enforces the typed-error taxonomy (CONTRACT.md "Errors,
// deadlines, and cancellation"): callers branch on errors with
// errors.Is/errors.As against the internal/fault sentinels, never by
// string-matching rendered messages — messages carry device names and
// times and do not survive the wire byte-for-byte. Two rules:
//
//  1. Anywhere: the result of err.Error() may not feed a string
//     comparison (==, !=, switch) or a strings.Contains-family call.
//  2. In the engine packages (exec, core, server, client, sched, fault):
//     fmt.Errorf with an error-typed argument must wrap it with %w, so
//     errors.Is sees through the added context.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "no err.Error() string comparisons; error wrapping must use %w so errors.Is works across the wire",
	Run:  runErrTaxonomy,
}

// errWrapScope are the packages whose fmt.Errorf calls must wrap error
// arguments with %w.
var errWrapScope = []string{
	"energydb/internal/exec",
	"energydb/internal/core",
	"energydb/internal/server",
	"energydb/internal/client",
	"energydb/internal/sched",
	"energydb/internal/fault",
}

// stringMatchFuncs are the strings-package predicates that must not
// consume a rendered error message.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

func runErrTaxonomy(pass *Pass) error {
	wrapScoped := pathInAny(pass.Path, errWrapScope...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if isErrErrorCall(pass.Info, e.X) || isErrErrorCall(pass.Info, e.Y) {
					pass.Reportf(e.Pos(), "string comparison on err.Error(); branch with errors.Is against a fault sentinel instead")
				}
			case *ast.SwitchStmt:
				if e.Tag != nil && isErrErrorCall(pass.Info, e.Tag) {
					pass.Reportf(e.Tag.Pos(), "switch on err.Error(); branch with errors.Is against a fault sentinel instead")
				}
			case *ast.CallExpr:
				if f := calleeFunc(pass.Info, e); f != nil && f.Pkg() != nil &&
					f.Pkg().Path() == "strings" && stringMatchFuncs[f.Name()] {
					for _, arg := range e.Args {
						if isErrErrorCall(pass.Info, arg) {
							pass.Reportf(arg.Pos(), "strings.%s on err.Error(); branch with errors.Is against a fault sentinel instead", f.Name())
						}
					}
				}
				if wrapScoped {
					checkErrorfWrap(pass, e)
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// without a %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // non-literal format: cannot judge statically
	}
	if countWrapVerbs(lit.Value) > 0 {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := pass.TypeOf(arg); isErrorType(t) {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error without %%w; wrap it so errors.Is sees the sentinel")
			return
		}
	}
}

// countWrapVerbs counts %w verbs in a format string literal, skipping
// escaped percents.
func countWrapVerbs(lit string) int {
	n := 0
	for i := 0; i+1 < len(lit); i++ {
		if lit[i] != '%' {
			continue
		}
		if lit[i+1] == '%' {
			i++
			continue
		}
		// Scan past flags/width to the verb.
		j := i + 1
		for j < len(lit) && strings.ContainsRune("+-# 0123456789.[]", rune(lit[j])) {
			j++
		}
		if j < len(lit) && lit[j] == 'w' {
			n++
		}
		i = j - 1
	}
	return n
}
