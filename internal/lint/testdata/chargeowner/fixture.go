// Package fixture exercises the chargeowner analyzer under a path
// outside the device/volume packages: ChargeJoules calls and raw
// sim.Proc construction are both violations here.
package fixture

import (
	"energydb/internal/energy"
	"energydb/internal/sim"
)

func badChargeConcrete(acct *energy.Account, j energy.Joules) {
	acct.ChargeJoules(j) // want "ChargeJoules outside device/volume code"
}

func badChargeInterface(c energy.Charger, j energy.Joules) {
	c.ChargeJoules(j) // want "ChargeJoules outside device/volume code"
}

func badProcLiteral() *sim.Proc {
	return &sim.Proc{} // want "raw sim.Proc literal"
}

func badProcNew() *sim.Proc {
	return new(sim.Proc) // want "raw sim.Proc construction"
}

func goodSpawn(e *sim.Engine) *sim.Proc {
	return e.Go("worker", func(p *sim.Proc) {}) // owner inherits from the spawner
}
