// Package fixture exercises the batchretain analyzer: a batch borrowed
// from a child's Next (or its Vecs/Sel) must not escape into a struct
// field or package variable without materialisation.
package fixture

import (
	"energydb/internal/exec"
	"energydb/internal/table"
)

var stash *table.Batch

type op struct {
	child exec.Operator
	saved *table.Batch
	vecs  []*table.Vector
	sel   []int32
}

func (o *op) storesBorrow(ctx *exec.Ctx) error {
	b, err := o.child.Next(ctx)
	if err != nil {
		return err
	}
	o.saved = b     // want "escapes into a struct field"
	o.vecs = b.Vecs // want "escapes into a struct field"
	o.sel = b.Sel   // want "escapes into a struct field"
	stash = b       // want "escapes into package variable"
	return nil
}

func (o *op) storesThroughAlias(ctx *exec.Ctx) error {
	b, _ := o.child.Next(ctx)
	tmp := b      // the borrow propagates through local bindings
	o.saved = tmp // want "escapes into a struct field"
	return nil
}

func (o *op) legal(ctx *exec.Ctx) (*table.Batch, error) {
	b, err := o.child.Next(ctx)
	if err != nil {
		return nil, err
	}
	o.saved = b.Clone() // materialised copy: the consumer owns it
	local := b          // plain local binding within the iteration: fine
	_ = local
	return b, nil // passing the borrow up the tree is the volcano protocol
}
