// Package fixture is loaded under a device-model path, where marginal
// charging is the sanctioned pattern; the analyzer must stay silent.
package fixture

import "energydb/internal/energy"

func deviceCharge(c energy.Charger, j energy.Joules) {
	c.ChargeJoules(j) // legal: device models charge owners as they charge the meter
}
