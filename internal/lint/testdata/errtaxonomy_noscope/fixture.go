// Package fixture is loaded under a path outside the engine packages:
// the %w wrapping rule must not fire here (err.Error() matching is
// banned everywhere, so none appears in this file).
package fixture

import "fmt"

func wrapOutsideScope(err error) error {
	return fmt.Errorf("wire: %v", err) // legal: wire is outside the wrap scope
}
