// Package fixture exercises the errtaxonomy analyzer: no string
// comparisons on err.Error(), and (in the engine packages this fixture
// impersonates) fmt.Errorf must wrap error arguments with %w.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

var errSentinel = errors.New("boom")

func badEqual(err error) bool {
	return err.Error() == "boom" // want "string comparison on err.Error"
}

func badNotEqual(err error) bool {
	return "boom" != err.Error() // want "string comparison on err.Error"
}

func badSwitch(err error) int {
	switch err.Error() { // want "switch on err.Error"
	case "boom":
		return 1
	}
	return 0
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "boom") // want "strings.Contains on err.Error"
}

func badWrap(err error) error {
	return fmt.Errorf("op failed: %v", err) // want "fmt.Errorf formats an error without"
}

func goodWrap(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

func goodIs(err error) bool {
	return errors.Is(err, errSentinel)
}

func goodMessageUse(err error) string {
	return "prefix: " + err.Error() // rendering for display is fine; only matching is banned
}

func suppressedCompare(err error) bool {
	//lint:ignore errtaxonomy fixture exercises the suppression directive
	return err.Error() == "boom"
}
