// Package fixture exercises the simdeterminism analyzer: no wall-clock
// reads, no unseeded global math/rand, and no map iteration order
// leaking into emitted results in the simulation-deterministic packages.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func badClock() time.Duration {
	t := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t) // want "time.Since reads the wall clock"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the unseeded global source"
}

func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit seeded source: legal
	return r.Intn(10)
}

func badMapEmit(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order feeds an emit path"
		out = append(out, k)
	}
	return out
}

func badMapReturn(m map[string]int) string {
	for k, v := range m { // want "map iteration order feeds an emit path"
		if v > 0 {
			return k
		}
	}
	return ""
}

func goodCollectThenSort(m map[string]int) []string {
	var out []string
	for k := range m { // sanctioned idiom: the collected slice is sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodOrderIndependent(m map[string]int) int {
	total := 0
	for _, v := range m { // folding into a scalar is order-independent
		total += v
	}
	return total
}
