// Package fixture exercises the fragfresh analyzer: fragment factories
// and fragment-array loops must construct per-fragment Pred/kernel/Ctx
// state fresh instead of sharing one instance across fragments.
package fixture

import "energydb/internal/exec"

func filterOp(p exec.Pred) exec.Operator { return nil }

func badPredFactory(shared exec.Pred) func() (exec.Operator, error) {
	return func() (exec.Operator, error) {
		return filterOp(shared), nil // want "captures shared Pred"
	}
}

func badKernelFactory(k *exec.FusedExpr) func() exec.Operator {
	return func() exec.Operator {
		_ = k // want "captures shared fused kernel"
		return nil
	}
}

func badCtxFactory(ctx *exec.Ctx) func() (exec.Operator, error) {
	return func() (exec.Operator, error) {
		_ = ctx // want "captures shared Ctx"
		return nil, nil
	}
}

func goodFactory(mkPred func() exec.Pred) func() (exec.Operator, error) {
	return func() (exec.Operator, error) {
		p := mkPred() // fresh instance per fragment: legal
		return filterOp(p), nil
	}
}

func badIndexLoop(n int, shared exec.Pred) []exec.Operator {
	frags := make([]exec.Operator, n)
	for i := range frags {
		frags[i] = filterOp(shared) // want "shares one Pred"
	}
	return frags
}

func badAppendLoop(n int, shared exec.Pred) []exec.Operator {
	var frags []exec.Operator
	for i := 0; i < n; i++ {
		frags = append(frags, filterOp(shared)) // want "shares one Pred"
	}
	return frags
}

func goodLoop(n int, mkPred func() exec.Pred) []exec.Operator {
	frags := make([]exec.Operator, n)
	for i := range frags {
		p := mkPred() // constructed inside the loop body: legal
		frags[i] = filterOp(p)
	}
	return frags
}
