package lint

import (
	"go/ast"
	"go/types"
)

// Well-known import paths the analyzers key off.
const (
	pkgTable  = "energydb/internal/table"
	pkgExec   = "energydb/internal/exec"
	pkgSim    = "energydb/internal/sim"
	pkgEnergy = "energydb/internal/energy"
)

// namedType reports whether t (after pointer unwrapping) is the named
// type path.name.
func namedType(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function-typed variables, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// path.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name {
		return false
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return false
	}
	return f.Pkg() != nil && f.Pkg().Path() == path
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isErrErrorCall reports whether e is a call of the error interface's
// Error method — `err.Error()` for any error-typed err.
func isErrErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	if b, ok := sig.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	return isErrorType(info.TypeOf(sel.X))
}

// funcScope walks every function body in the files, handing the enclosing
// function node (FuncDecl or FuncLit) plus its body to fn.
func funcScope(files []*ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.FuncLit:
				fn(d, d.Body)
			}
			return true
		})
	}
}

// isBuiltin reports whether id resolves to a predeclared builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// declaredOutside reports whether obj's declaration lies outside node's
// source range — i.e. the identifier is a free variable of node.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || obj.Pos() == 0 {
		return true // universe or imported: defined elsewhere by definition
	}
	return obj.Pos() < node.Pos() || obj.Pos() > node.End()
}
