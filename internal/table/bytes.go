package table

import (
	"fmt"
	"math"
)

// This file defines the wire encodings shared by the column store, the
// row store and the WAL:
//
//   - int-class values: 8-byte little-endian
//   - float values:     8-byte little-endian of the IEEE bits
//   - strings:          uvarint length + bytes
//
// Column encodings feed the compression codecs (which are byte
// transformers); row encodings form slotted row-store pages.

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

func readUvarint(src []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range src {
		if i == 10 {
			return 0, -1
		}
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

func appendLE64(dst []byte, u uint64) []byte {
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func readLE64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// EncodeBytes appends the wire form of elements [lo, hi) of v to dst.
func (v *Vector) EncodeBytes(dst []byte, lo, hi int) []byte {
	switch v.Type.Physical() {
	case PhysInt:
		for _, x := range v.I[lo:hi] {
			dst = appendLE64(dst, uint64(x))
		}
	case PhysFloat:
		for _, x := range v.F[lo:hi] {
			dst = appendLE64(dst, math.Float64bits(x))
		}
	default:
		for _, s := range v.S[lo:hi] {
			dst = appendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// DecodeVector parses n values of type t from data, which must contain
// exactly n encoded values.
func DecodeVector(t Type, data []byte, n int) (*Vector, error) {
	v := NewVector(t, n)
	switch t.Physical() {
	case PhysInt:
		if len(data) != n*8 {
			return nil, fmt.Errorf("table: int column of %d values needs %d bytes, have %d", n, n*8, len(data))
		}
		for i := 0; i < n; i++ {
			v.I = append(v.I, int64(readLE64(data[i*8:])))
		}
	case PhysFloat:
		if len(data) != n*8 {
			return nil, fmt.Errorf("table: float column of %d values needs %d bytes, have %d", n, n*8, len(data))
		}
		for i := 0; i < n; i++ {
			v.F = append(v.F, math.Float64frombits(readLE64(data[i*8:])))
		}
	default:
		off := 0
		for i := 0; i < n; i++ {
			l, k := readUvarint(data[off:])
			if k <= 0 || l > uint64(len(data)) || off+k+int(l) > len(data) {
				return nil, fmt.Errorf("table: corrupt string column at value %d", i)
			}
			off += k
			v.S = append(v.S, string(data[off:off+int(l)]))
			off += int(l)
		}
		if off != len(data) {
			return nil, fmt.Errorf("table: %d trailing bytes after string column", len(data)-off)
		}
	}
	return v, nil
}

// EncodeRows appends the row-major wire form of batch rows [lo, hi): each
// row is its columns' wire values concatenated in schema order. This is
// the row-store page payload and the WAL record body. lo and hi index
// physical rows: a batch carrying a deferred selection must be compacted
// first (Clone, AppendBatch), or filtered-out rows would be encoded.
func (b *Batch) EncodeRows(dst []byte, lo, hi int) []byte {
	if b.Sel != nil {
		panic("table: EncodeRows over a selected batch; compact it first")
	}
	for r := lo; r < hi; r++ {
		for _, v := range b.Vecs {
			dst = v.EncodeBytes(dst, r, r+1)
		}
	}
	return dst
}

// DecodeRows parses n rows in the EncodeRows format into a fresh batch.
func DecodeRows(s *Schema, data []byte, n int) (*Batch, error) {
	b := NewBatch(s, n)
	off := 0
	for r := 0; r < n; r++ {
		for ci, c := range s.Cols {
			switch c.Type.Physical() {
			case PhysInt:
				if off+8 > len(data) {
					return nil, fmt.Errorf("table: truncated row %d col %d", r, ci)
				}
				b.Vecs[ci].I = append(b.Vecs[ci].I, int64(readLE64(data[off:])))
				off += 8
			case PhysFloat:
				if off+8 > len(data) {
					return nil, fmt.Errorf("table: truncated row %d col %d", r, ci)
				}
				b.Vecs[ci].F = append(b.Vecs[ci].F, math.Float64frombits(readLE64(data[off:])))
				off += 8
			default:
				l, k := readUvarint(data[off:])
				if k <= 0 || l > uint64(len(data)) || off+k+int(l) > len(data) {
					return nil, fmt.Errorf("table: corrupt string in row %d col %d", r, ci)
				}
				off += k
				b.Vecs[ci].S = append(b.Vecs[ci].S, string(data[off:off+int(l)]))
				off += int(l)
			}
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("table: %d trailing bytes after %d rows", len(data)-off, n)
	}
	b.SetRows(n)
	return b, nil
}
