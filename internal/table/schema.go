package table

import "fmt"

// Column describes one attribute of a relation. Width is the declared (or
// expected average) byte width of the value, used by cost models to size
// scans before execution; for PhysInt/PhysFloat columns it is always 8.
type Column struct {
	Name  string
	Type  Type
	Width int
}

// Col builds a column, defaulting Width to 8 for fixed-width physical
// types and 16 for strings.
func Col(name string, t Type) Column {
	w := 8
	if t.Physical() == PhysString {
		w = 16
	}
	return Column{Name: name, Type: t, Width: w}
}

// ColW builds a column with an explicit width (e.g. TPC-H char(N)).
func ColW(name string, t Type, width int) Column {
	return Column{Name: name, Type: t, Width: width}
}

// Schema is an ordered list of columns with a relation name.
type Schema struct {
	Name string
	Cols []Column
}

// NewSchema builds a schema, rejecting duplicate column names.
func NewSchema(name string, cols ...Column) *Schema {
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			panic(fmt.Sprintf("table: duplicate column %q in schema %q", c.Name, name))
		}
		seen[c.Name] = true
	}
	return &Schema{Name: name, Cols: cols}
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on unknown columns, for internal
// plan construction where absence is a bug.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("table: schema %q has no column %q", s.Name, name))
	}
	return i
}

// Project returns a schema with only the named columns (in the given
// order) and their indexes in the source schema.
func (s *Schema) Project(names ...string) (*Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i := s.ColIndex(n)
		if i < 0 {
			return nil, nil, fmt.Errorf("table: schema %q has no column %q", s.Name, n)
		}
		cols = append(cols, s.Cols[i])
		idx = append(idx, i)
	}
	return NewSchema(s.Name, cols...), idx, nil
}

// RowWidth is the expected byte width of one tuple under this schema.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.Cols {
		w += c.Width
	}
	return w
}

func (s *Schema) String() string {
	out := s.Name + "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %v", c.Name, c.Type)
	}
	return out + ")"
}
