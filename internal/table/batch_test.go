package table

import (
	"reflect"
	"testing"
)

// mixedBatch builds a batch over all three physical classes with rows
// (i, i+0.5, s[i]) for i in [0, n).
func mixedBatch(n int) *Batch {
	s := NewSchema("mix",
		Col("i", Int64),
		Col("f", Float64),
		Col("s", String),
		Col("d", Date), // second int-class column
	)
	b := NewBatch(s, n)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		b.AppendRow(
			IntVal(int64(i)),
			FloatVal(float64(i)+0.5),
			StrVal(names[i%len(names)]),
			DateVal(int64(1000+i)),
		)
	}
	return b
}

func rowsOf(b *Batch) [][]Value {
	out := make([][]Value, b.Rows())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

func TestVectorAppendSlice(t *testing.T) {
	src := mixedBatch(10)
	for c, col := range src.Vecs {
		dst := NewVector(col.Type, 0)
		dst.AppendSlice(col, 2, 7)
		dst.AppendSlice(col, 0, 0) // empty range is a no-op
		if dst.Len() != 5 {
			t.Fatalf("col %d: len = %d, want 5", c, dst.Len())
		}
		for i := 0; i < 5; i++ {
			if dst.Value(i) != col.Value(i+2) {
				t.Fatalf("col %d row %d: %v != %v", c, i, dst.Value(i), col.Value(i+2))
			}
		}
	}
}

func TestVectorAppendSlicePhysMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic appending float slice to int vector")
		}
	}()
	NewVector(Int64, 0).AppendSlice(NewVector(Float64, 0), 0, 0)
}

func TestBatchGather(t *testing.T) {
	b := mixedBatch(8)
	want := rowsOf(b)

	// Empty selection.
	empty := b.Gather(nil)
	if empty.Rows() != 0 {
		t.Fatalf("empty gather rows = %d", empty.Rows())
	}
	if len(empty.Vecs) != 4 {
		t.Fatalf("empty gather cols = %d", len(empty.Vecs))
	}

	// Full selection is the identity.
	full := b.Gather([]int32{0, 1, 2, 3, 4, 5, 6, 7})
	if !reflect.DeepEqual(rowsOf(full), want) {
		t.Fatal("full gather changed rows")
	}

	// Mixed selection with repeats and reordering.
	sel := []int32{7, 0, 3, 3}
	g := b.Gather(sel)
	if g.Rows() != 4 {
		t.Fatalf("gather rows = %d", g.Rows())
	}
	for i, s := range sel {
		if !reflect.DeepEqual(g.Row(i), want[s]) {
			t.Fatalf("gather row %d: %v, want row %d %v", i, g.Row(i), s, want[s])
		}
	}

	// Gather copies: mutating the source must not change the result.
	b.Vecs[0].I[7] = -1
	if g.Vecs[0].I[0] != 7 {
		t.Fatal("gather aliased the source")
	}
}

func TestBatchAppendBatch(t *testing.T) {
	a, b := mixedBatch(3), mixedBatch(5)
	out := NewBatch(a.Schema, 0)
	out.AppendBatch(a)
	out.AppendBatch(b)
	out.AppendBatch(NewBatch(a.Schema, 0)) // empty batch is a no-op
	if out.Rows() != 8 {
		t.Fatalf("rows = %d, want 8", out.Rows())
	}
	want := append(rowsOf(a), rowsOf(b)...)
	if !reflect.DeepEqual(rowsOf(out), want) {
		t.Fatal("AppendBatch rows differ")
	}
}

func TestTableAppendBatch(t *testing.T) {
	b := mixedBatch(6)
	tab := NewTable(b.Schema)
	tab.AppendBatch(b)
	tab.AppendBatch(b)
	if tab.Rows() != 12 {
		t.Fatalf("rows = %d, want 12", tab.Rows())
	}
	for i := 0; i < 6; i++ {
		if !reflect.DeepEqual(tab.Slice(6+i, 7+i).Row(0), b.Row(i)) {
			t.Fatalf("row %d differs after second append", 6+i)
		}
	}
}

func TestBatchSliceAndClone(t *testing.T) {
	b := mixedBatch(10)
	v := b.Slice(2, 5)
	if v.Rows() != 3 {
		t.Fatalf("slice rows = %d", v.Rows())
	}
	// Slice is a view over the same backing arrays.
	b.Vecs[0].I[2] = 99
	if v.Vecs[0].I[0] != 99 {
		t.Fatal("slice did not share backing array")
	}
	// Clone is a deep copy.
	c := b.Clone()
	b.Vecs[0].I[2] = 0
	if c.Vecs[0].I[2] != 99 {
		t.Fatal("clone shared backing array")
	}
}

func TestBatchReset(t *testing.T) {
	b := mixedBatch(4)
	b.Reset()
	if b.Rows() != 0 {
		t.Fatalf("rows after reset = %d", b.Rows())
	}
	b.AppendRow(IntVal(1), FloatVal(1.5), StrVal("x"), DateVal(2))
	if b.Rows() != 1 || b.Vecs[2].S[0] != "x" {
		t.Fatal("append after reset broken")
	}
}

// TestZeroColumnBatch covers the column-less batch contract: the batch
// APIs stay legal with an empty schema and cardinality flows through
// SetRows and every mutator instead of being inferred from vectors.
func TestZeroColumnBatch(t *testing.T) {
	s := NewSchema("empty")
	b := NewBatch(s, 0)
	if len(b.Vecs) != 0 || b.Rows() != 0 {
		t.Fatalf("fresh zero-column batch: vecs=%d rows=%d", len(b.Vecs), b.Rows())
	}
	b.SetRows(7)
	if b.Rows() != 7 {
		t.Fatalf("SetRows: rows = %d, want 7", b.Rows())
	}

	// AppendBatch accumulates cardinality with no columns to copy.
	acc := NewBatch(s, 0)
	acc.AppendBatch(b)
	acc.AppendBatch(b)
	if acc.Rows() != 14 {
		t.Fatalf("AppendBatch rows = %d, want 14", acc.Rows())
	}

	// Gather and Slice keep working on the empty column set.
	if g := b.Gather([]int32{0, 2, 4}); g.Rows() != 3 || len(g.Vecs) != 0 {
		t.Fatalf("gather: rows=%d vecs=%d", g.Rows(), len(g.Vecs))
	}
	if v := b.Slice(2, 6); v.Rows() != 4 {
		t.Fatalf("slice rows = %d, want 4", v.Rows())
	}
	if v := b.Slice(0, 0); v.Rows() != 0 {
		t.Fatalf("empty slice rows = %d, want 0", v.Rows())
	}
	if c := b.Clone(); c.Rows() != 7 {
		t.Fatalf("clone rows = %d, want 7", c.Rows())
	}
	b.Reset()
	if b.Rows() != 0 {
		t.Fatalf("rows after reset = %d", b.Rows())
	}

	// A zero-column table accumulates batch cardinality too.
	tab := NewTable(s)
	acc.SetRows(5)
	tab.AppendBatch(acc)
	if tab.Rows() != 5 {
		t.Fatalf("table rows = %d, want 5", tab.Rows())
	}
}

// TestBatchSelection covers the deferred-selection contract: a batch
// carrying Sel exposes only the selected rows through the logical
// accessors, and materialising consumers resolve the selection once.
func TestBatchSelection(t *testing.T) {
	b := mixedBatch(8)
	want := rowsOf(b)
	b.SetSel([]int32{1, 3, 6})

	if b.Rows() != 3 || b.PhysRows() != 8 {
		t.Fatalf("rows=%d phys=%d, want 3/8", b.Rows(), b.PhysRows())
	}
	for i, p := range []int{1, 3, 6} {
		if !reflect.DeepEqual(b.Row(i), want[p]) {
			t.Fatalf("logical row %d: %v, want physical row %d %v", i, b.Row(i), p, want[p])
		}
	}

	// Slice narrows the selection, still without copying.
	v := b.Slice(1, 3)
	if v.Rows() != 2 || !reflect.DeepEqual(v.Row(0), want[3]) || !reflect.DeepEqual(v.Row(1), want[6]) {
		t.Fatalf("sliced selection wrong: %v", rowsOf(v))
	}

	// Clone and AppendBatch compact: fresh aligned vectors, Sel dropped.
	c := b.Clone()
	if c.Sel != nil || c.Rows() != 3 || c.PhysRows() != 3 {
		t.Fatalf("clone: sel=%v rows=%d phys=%d", c.Sel, c.Rows(), c.PhysRows())
	}
	for i, p := range []int{1, 3, 6} {
		if !reflect.DeepEqual(c.Row(i), want[p]) {
			t.Fatalf("clone row %d differs", i)
		}
	}

	// ByteSize counts logical rows only.
	if got, wantSz := b.ByteSize(), c.ByteSize(); got != wantSz {
		t.Fatalf("selected ByteSize = %d, compacted = %d", got, wantSz)
	}

	// Table.AppendBatch resolves the selection.
	tab := NewTable(b.Schema)
	tab.AppendBatch(b)
	if tab.Rows() != 3 || tab.Column(0).I[1] != 3 {
		t.Fatalf("table after selected append: rows=%d col0=%v", tab.Rows(), tab.Column(0).I)
	}

	// SetRows clears the selection.
	b.SetRows(8)
	if b.Sel != nil || b.Rows() != 8 {
		t.Fatalf("SetRows did not clear selection: sel=%v rows=%d", b.Sel, b.Rows())
	}
}

func TestVectorAppendN(t *testing.T) {
	for _, tc := range []struct {
		v Value
		n int
	}{
		{IntVal(7), 5},
		{FloatVal(2.5), 3},
		{StrVal("k"), 4},
	} {
		vec := NewVector(tc.v.Type, 0)
		vec.AppendN(tc.v, tc.n)
		if vec.Len() != tc.n {
			t.Fatalf("%v: len = %d, want %d", tc.v, vec.Len(), tc.n)
		}
		for i := 0; i < tc.n; i++ {
			if vec.Value(i) != tc.v {
				t.Fatalf("%v: element %d = %v", tc.v, i, vec.Value(i))
			}
		}
	}
}

func TestVectorSliceInto(t *testing.T) {
	b := mixedBatch(10)
	for c, col := range b.Vecs {
		var view Vector
		col.SliceInto(&view, 3, 8)
		if view.Len() != 5 || view.Type != col.Type {
			t.Fatalf("col %d: len=%d type=%v", c, view.Len(), view.Type)
		}
		if view.Value(0) != col.Value(3) {
			t.Fatalf("col %d: view mismatch", c)
		}
		// Re-pointing the same view at a different range must fully
		// replace the previous window (no stale backing slice).
		col.SliceInto(&view, 0, 2)
		if view.Len() != 2 || view.Value(1) != col.Value(1) {
			t.Fatalf("col %d: re-pointed view mismatch", c)
		}
	}
}
