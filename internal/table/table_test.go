package table

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema("t",
		Col("id", Int64),
		Col("price", Decimal),
		Col("ratio", Float64),
		ColW("name", String, 12),
		Col("day", Date),
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.ColIndex("ratio") != 2 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex")
	}
	if s.MustColIndex("day") != 4 {
		t.Fatal("MustColIndex")
	}
	proj, idx, err := s.Project("name", "id")
	if err != nil || len(proj.Cols) != 2 || idx[0] != 3 || idx[1] != 0 {
		t.Fatalf("Project: %v %v %v", proj, idx, err)
	}
	if _, _, err := s.Project("ghost"); err == nil {
		t.Fatal("Project of unknown column should error")
	}
	if w := s.RowWidth(); w != 8+8+8+12+8 {
		t.Fatalf("RowWidth = %d", w)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	NewSchema("bad", Col("x", Int64), Col("x", Float64))
}

func TestMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testSchema().MustColIndex("ghost")
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{FloatVal(1.5), FloatVal(2.5), -1},
		{StrVal("a"), StrVal("b"), -1},
		{DateVal(100), IntVal(100), 0},    // same physical class
		{DecimalVal(250), IntVal(200), 1}, // same physical class
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueCompareCrossClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IntVal(1).Compare(StrVal("x"))
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{IntVal(42), "42"},
		{DecimalVal(1234), "12.34"},
		{DecimalVal(-250), "-2.50"},
		{StrVal("hi"), "hi"},
		{FloatVal(2.5), "2.5"},
		{DateVal(0), "0"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestBatchAppendAndRow(t *testing.T) {
	s := testSchema()
	b := NewBatch(s, 4)
	b.AppendRow(IntVal(1), DecimalVal(100), FloatVal(0.5), StrVal("ann"), DateVal(10))
	b.AppendRow(IntVal(2), DecimalVal(200), FloatVal(1.5), StrVal("bob"), DateVal(20))
	if b.Rows() != 2 {
		t.Fatalf("Rows = %d", b.Rows())
	}
	row := b.Row(1)
	if row[0].I != 2 || row[3].S != "bob" || row[2].F != 1.5 {
		t.Fatalf("Row(1) = %v", row)
	}
}

func TestBatchAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatch(testSchema(), 1).AppendRow(IntVal(1))
}

func TestVectorTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVector(Int64, 1).Append(StrVal("x"))
}

func TestTableSliceSharesData(t *testing.T) {
	s := testSchema()
	tab := NewTable(s)
	for i := 0; i < 10; i++ {
		tab.AppendRow(IntVal(int64(i)), DecimalVal(int64(i*100)), FloatVal(float64(i)),
			StrVal("row"), DateVal(int64(i)))
	}
	b := tab.Slice(3, 7)
	if b.Rows() != 4 || b.Vecs[0].I[0] != 3 {
		t.Fatalf("slice = %v rows, first id %v", b.Rows(), b.Vecs[0].I)
	}
	// Views share memory: mutating the table shows through the batch.
	tab.Column(0).I[3] = 99
	if b.Vecs[0].I[0] != 99 {
		t.Fatal("Slice copied instead of sharing")
	}
}

func TestColumnBytesRoundTrip(t *testing.T) {
	s := testSchema()
	tab := NewTable(s)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 257; i++ {
		tab.AppendRow(
			IntVal(rng.Int63()),
			DecimalVal(rng.Int63n(1e6)),
			FloatVal(rng.NormFloat64()),
			StrVal(randWord(rng)),
			DateVal(int64(rng.Intn(10000))),
		)
	}
	for ci := range s.Cols {
		v := tab.Column(ci)
		enc := v.EncodeBytes(nil, 0, v.Len())
		if int64(len(enc)) != v.ByteSize(0, v.Len()) {
			t.Fatalf("col %d: ByteSize %d != encoded %d", ci, v.ByteSize(0, v.Len()), len(enc))
		}
		dec, err := DecodeVector(s.Cols[ci].Type, enc, v.Len())
		if err != nil {
			t.Fatalf("col %d: %v", ci, err)
		}
		if !reflect.DeepEqual(dec, v) {
			t.Fatalf("col %d: round trip mismatch", ci)
		}
	}
}

func TestRowBytesRoundTrip(t *testing.T) {
	s := testSchema()
	b := NewBatch(s, 8)
	for i := 0; i < 8; i++ {
		b.AppendRow(IntVal(int64(i)), DecimalVal(int64(100*i)), FloatVal(float64(i)/3),
			StrVal(string(rune('a'+i))), DateVal(int64(9000+i)))
	}
	enc := b.EncodeRows(nil, 0, b.Rows())
	dec, err := DecodeRows(s, enc, b.Rows())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, b) {
		t.Fatal("row round trip mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeVector(Int64, []byte{1, 2, 3}, 1); err == nil {
		t.Error("short int column should error")
	}
	if _, err := DecodeVector(String, []byte{5, 'h'}, 1); err == nil {
		t.Error("truncated string should error")
	}
	if _, err := DecodeVector(String, []byte{1, 'h', 'x'}, 1); err == nil {
		t.Error("trailing bytes should error")
	}
	if _, err := DecodeRows(testSchema(), []byte{0}, 1); err == nil {
		t.Error("truncated row should error")
	}
}

// Property: column encode/decode round-trips for arbitrary int64 data, and
// row encode of a batch equals the concatenation of its per-row encodes.
func TestEncodeProperties(t *testing.T) {
	f := func(vals []int64, strs []string) bool {
		v := NewVector(Int64, len(vals))
		v.I = append(v.I, vals...)
		enc := v.EncodeBytes(nil, 0, v.Len())
		dec, err := DecodeVector(Int64, enc, v.Len())
		if err != nil || !reflect.DeepEqual(dec.I, v.I) {
			return false
		}
		sv := NewVector(String, len(strs))
		sv.S = append(sv.S, strs...)
		senc := sv.EncodeBytes(nil, 0, sv.Len())
		sdec, err := DecodeVector(String, senc, sv.Len())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(sdec.S, sv.S)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randWord(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
