package table

import "fmt"

// Vector is a typed column of values. Exactly one of the backing slices is
// used, selected by the type's physical class.
type Vector struct {
	Type Type
	I    []int64
	F    []float64
	S    []string
}

// NewVector returns an empty vector of type t with the given capacity.
func NewVector(t Type, capacity int) *Vector {
	v := &Vector{Type: t}
	switch t.Physical() {
	case PhysInt:
		v.I = make([]int64, 0, capacity)
	case PhysFloat:
		v.F = make([]float64, 0, capacity)
	case PhysString:
		v.S = make([]string, 0, capacity)
	}
	return v
}

// Len reports the number of values.
func (v *Vector) Len() int {
	switch v.Type.Physical() {
	case PhysInt:
		return len(v.I)
	case PhysFloat:
		return len(v.F)
	default:
		return len(v.S)
	}
}

// Append adds a value, which must match the vector's physical class.
func (v *Vector) Append(val Value) {
	if val.Type.Physical() != v.Type.Physical() {
		panic(fmt.Sprintf("table: appending %v to %v vector", val.Type, v.Type))
	}
	switch v.Type.Physical() {
	case PhysInt:
		v.I = append(v.I, val.I)
	case PhysFloat:
		v.F = append(v.F, val.F)
	default:
		v.S = append(v.S, val.S)
	}
}

// AppendN appends n copies of val.
func (v *Vector) AppendN(val Value, n int) {
	if val.Type.Physical() != v.Type.Physical() {
		panic(fmt.Sprintf("table: appending %v to %v vector", val.Type, v.Type))
	}
	switch v.Type.Physical() {
	case PhysInt:
		for i := 0; i < n; i++ {
			v.I = append(v.I, val.I)
		}
	case PhysFloat:
		for i := 0; i < n; i++ {
			v.F = append(v.F, val.F)
		}
	default:
		for i := 0; i < n; i++ {
			v.S = append(v.S, val.S)
		}
	}
}

// AppendSlice bulk-appends elements [lo, hi) of src, which must share v's
// physical class. It is a single per-column copy, not hi-lo boxed appends.
func (v *Vector) AppendSlice(src *Vector, lo, hi int) {
	if src.Type.Physical() != v.Type.Physical() {
		panic(fmt.Sprintf("table: appending %v slice to %v vector", src.Type, v.Type))
	}
	switch v.Type.Physical() {
	case PhysInt:
		v.I = append(v.I, src.I[lo:hi]...)
	case PhysFloat:
		v.F = append(v.F, src.F[lo:hi]...)
	default:
		v.S = append(v.S, src.S[lo:hi]...)
	}
}

// AppendGather appends src's elements at the positions in sel, in order.
func (v *Vector) AppendGather(src *Vector, sel []int32) {
	if src.Type.Physical() != v.Type.Physical() {
		panic(fmt.Sprintf("table: gathering %v into %v vector", src.Type, v.Type))
	}
	switch v.Type.Physical() {
	case PhysInt:
		for _, i := range sel {
			v.I = append(v.I, src.I[i])
		}
	case PhysFloat:
		for _, i := range sel {
			v.F = append(v.F, src.F[i])
		}
	default:
		for _, i := range sel {
			v.S = append(v.S, src.S[i])
		}
	}
}

// Reset truncates the vector to zero length, keeping its capacity.
func (v *Vector) Reset() {
	v.I = v.I[:0:cap(v.I)]
	v.F = v.F[:0:cap(v.F)]
	v.S = v.S[:0:cap(v.S)]
}

// Value returns the i'th element boxed as a Value.
func (v *Vector) Value(i int) Value {
	switch v.Type.Physical() {
	case PhysInt:
		return Value{Type: v.Type, I: v.I[i]}
	case PhysFloat:
		return Value{Type: v.Type, F: v.F[i]}
	default:
		return Value{Type: v.Type, S: v.S[i]}
	}
}

// Slice returns a view of elements [lo, hi) sharing the backing array.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Type: v.Type}
	switch v.Type.Physical() {
	case PhysInt:
		out.I = v.I[lo:hi]
	case PhysFloat:
		out.F = v.F[lo:hi]
	default:
		out.S = v.S[lo:hi]
	}
	return out
}

// SliceInto points dst at elements [lo, hi) of v, sharing the backing
// array. It lets iterating operators reuse one view vector per column
// instead of allocating a fresh view per batch.
func (v *Vector) SliceInto(dst *Vector, lo, hi int) {
	dst.Type = v.Type
	dst.I, dst.F, dst.S = nil, nil, nil
	switch v.Type.Physical() {
	case PhysInt:
		dst.I = v.I[lo:hi]
	case PhysFloat:
		dst.F = v.F[lo:hi]
	default:
		dst.S = v.S[lo:hi]
	}
}

// ByteSize reports the in-memory (and on-wire) size of elements [lo, hi):
// 8 bytes for fixed-width classes, uvarint length prefix + bytes for
// strings. It matches EncodeBytes exactly.
func (v *Vector) ByteSize(lo, hi int) int64 {
	switch v.Type.Physical() {
	case PhysInt, PhysFloat:
		return int64(hi-lo) * 8
	default:
		var n int64
		for _, s := range v.S[lo:hi] {
			n += int64(uvarintLen(uint64(len(s)))) + int64(len(s))
		}
		return n
	}
}

// ByteSizeSel reports the wire size of the elements at the positions in
// sel, in the EncodeBytes format (8 bytes per fixed-width element,
// uvarint length prefix + bytes per string).
func (v *Vector) ByteSizeSel(sel []int32) int64 {
	switch v.Type.Physical() {
	case PhysInt, PhysFloat:
		return int64(len(sel)) * 8
	default:
		var n int64
		for _, i := range sel {
			s := v.S[i]
			n += int64(uvarintLen(uint64(len(s)))) + int64(len(s))
		}
		return n
	}
}

// Batch is a set of aligned column vectors: the unit the executor's
// operators pass between each other.
//
// Cardinality is explicit: Rows() reports the rows field maintained by
// every mutator, never inferred from vector lengths, so zero-column
// batches (count-only plans) carry a correct row count.
//
// Sel, when non-nil, is a selection vector: the batch's logical rows are
// Vecs' physical rows at the positions in Sel, in order, and
// Rows() == len(Sel). Producers use it to defer the gather a filter would
// otherwise perform per batch; consumers that materialise (AppendBatch,
// Clone, Row, ByteSize, Slice) resolve it transparently, so the one
// compaction happens at the materialisation boundary. Invariants: a batch
// without a selection has every vector aligned at Rows() values; a
// zero-column batch never carries a selection.
type Batch struct {
	Schema *Schema
	Vecs   []*Vector
	Sel    []int32

	rows int
}

// NewBatch returns an empty batch for the schema with the given row
// capacity. A schema with no columns is legal: the batch then carries
// cardinality only (set via SetRows / AppendBatch).
func NewBatch(s *Schema, capacity int) *Batch {
	b := &Batch{Schema: s, Vecs: make([]*Vector, len(s.Cols))}
	for i, c := range s.Cols {
		b.Vecs[i] = NewVector(c.Type, capacity)
	}
	return b
}

// Rows reports the logical row count.
func (b *Batch) Rows() int { return b.rows }

// SetRows sets the logical row count directly and clears any selection.
// It is how column-less batches carry cardinality, and how operators that
// write Vecs directly (bypassing the batch mutators) restore the row
// invariant afterwards.
func (b *Batch) SetRows(n int) {
	b.rows = n
	b.Sel = nil
}

// SetSel installs sel as the batch's selection vector (positions into the
// physical vectors) and sets the logical row count to len(sel). The batch
// aliases sel; it stays valid only as long as sel's backing array does.
func (b *Batch) SetSel(sel []int32) {
	b.Sel = sel
	b.rows = len(sel)
}

// PhysRows reports the physical row count of the backing vectors (equal
// to Rows() when no selection is installed).
func (b *Batch) PhysRows() int {
	if len(b.Vecs) == 0 {
		return b.rows
	}
	return b.Vecs[0].Len()
}

// AppendRow adds one tuple; len(vals) must equal the column count.
func (b *Batch) AppendRow(vals ...Value) {
	if len(vals) != len(b.Vecs) {
		panic(fmt.Sprintf("table: AppendRow with %d values into %d columns", len(vals), len(b.Vecs)))
	}
	for i, v := range vals {
		b.Vecs[i].Append(v)
	}
	b.rows++
}

// AppendBatch bulk-appends all logical rows of src column-wise: one slice
// copy (or gather, when src carries a selection) per column instead of
// one boxed []Value per row.
func (b *Batch) AppendBatch(src *Batch) {
	if len(src.Vecs) != len(b.Vecs) {
		panic(fmt.Sprintf("table: AppendBatch with %d columns into %d", len(src.Vecs), len(b.Vecs)))
	}
	if src.Sel != nil {
		for i, v := range src.Vecs {
			b.Vecs[i].AppendGather(v, src.Sel)
		}
	} else {
		for i, v := range src.Vecs {
			b.Vecs[i].AppendSlice(v, 0, v.Len())
		}
	}
	b.rows += src.rows
}

// AppendGather appends src's rows at the physical positions in sel,
// column-wise (sel indexes src's vectors directly, ignoring any selection
// already installed on src).
func (b *Batch) AppendGather(src *Batch, sel []int32) {
	if len(src.Vecs) != len(b.Vecs) {
		panic(fmt.Sprintf("table: AppendGather with %d columns into %d", len(src.Vecs), len(b.Vecs)))
	}
	for i, v := range src.Vecs {
		b.Vecs[i].AppendGather(v, sel)
	}
	b.rows += len(sel)
}

// Gather returns a new batch holding the rows at the physical positions
// in sel. Gathering a zero-column batch yields a zero-column batch of
// len(sel) rows.
func (b *Batch) Gather(sel []int32) *Batch {
	out := NewBatch(b.Schema, len(sel))
	out.AppendGather(b, sel)
	return out
}

// Slice returns a batch viewing logical rows [lo, hi) without copying.
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{Schema: b.Schema, Vecs: make([]*Vector, len(b.Vecs)), rows: hi - lo}
	if b.Sel != nil {
		copy(out.Vecs, b.Vecs)
		out.Sel = b.Sel[lo:hi]
		return out
	}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Slice(lo, hi)
	}
	return out
}

// Clone returns a deep copy of the batch's logical rows (fresh backing
// arrays, any selection compacted away).
func (b *Batch) Clone() *Batch {
	out := NewBatch(b.Schema, b.Rows())
	out.AppendBatch(b)
	return out
}

// Reset truncates all vectors to zero rows, keeping their capacity, and
// drops any selection.
func (b *Batch) Reset() {
	for _, v := range b.Vecs {
		v.Reset()
	}
	b.rows = 0
	b.Sel = nil
}

// Row returns logical tuple i boxed as values.
func (b *Batch) Row(i int) []Value {
	if b.Sel != nil {
		i = int(b.Sel[i])
	}
	out := make([]Value, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Value(i)
	}
	return out
}

// ByteSize reports the wire size of the batch's logical rows.
func (b *Batch) ByteSize() int64 {
	var n int64
	if b.Sel != nil {
		for _, v := range b.Vecs {
			n += v.ByteSizeSel(b.Sel)
		}
		return n
	}
	for _, v := range b.Vecs {
		n += v.ByteSize(0, v.Len())
	}
	return n
}

// Table is an in-memory columnar relation: the data plane the simulated
// storage charges I/O time against. Like Batch, it carries an explicit
// row count so zero-column (and count-only) relations stay well-defined.
type Table struct {
	Schema *Schema
	cols   []*Vector
	rows   int
}

// NewTable returns an empty table.
func NewTable(s *Schema) *Table {
	t := &Table{Schema: s, cols: make([]*Vector, len(s.Cols))}
	for i, c := range s.Cols {
		t.cols[i] = NewVector(c.Type, 0)
	}
	return t
}

// Rows reports the row count.
func (t *Table) Rows() int { return t.rows }

// Column returns the i'th column vector (shared, not copied).
func (t *Table) Column(i int) *Vector { return t.cols[i] }

// AppendRow adds one tuple.
func (t *Table) AppendRow(vals ...Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("table: AppendRow with %d values into %d columns", len(vals), len(t.cols)))
	}
	for i, v := range vals {
		t.cols[i].Append(v)
	}
	t.rows++
}

// AppendBatch bulk-appends all logical rows of b column-wise, resolving
// any selection b carries.
func (t *Table) AppendBatch(b *Batch) {
	if len(b.Vecs) != len(t.cols) {
		panic(fmt.Sprintf("table: AppendBatch with %d columns into %d", len(b.Vecs), len(t.cols)))
	}
	if b.Sel != nil {
		for i, v := range b.Vecs {
			t.cols[i].AppendGather(v, b.Sel)
		}
	} else {
		for i, v := range b.Vecs {
			t.cols[i].AppendSlice(v, 0, v.Len())
		}
	}
	t.rows += b.Rows()
}

// Slice returns a batch viewing rows [lo, hi) without copying.
func (t *Table) Slice(lo, hi int) *Batch {
	b := &Batch{Schema: t.Schema, Vecs: make([]*Vector, len(t.cols)), rows: hi - lo}
	for i, c := range t.cols {
		b.Vecs[i] = c.Slice(lo, hi)
	}
	return b
}

// ByteSize reports the wire size of the whole table.
func (t *Table) ByteSize() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.ByteSize(0, c.Len())
	}
	return n
}
