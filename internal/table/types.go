// Package table defines the relational data plane: column types, schemas,
// typed vectors, tuple batches, and in-memory tables, plus the byte
// encodings that connect columns to the compression codecs and the
// row-store page format.
//
// Data lives entirely in memory; the storage layer charges simulated I/O
// time for the bytes these encodings produce (see DESIGN.md).
package table

import "fmt"

// Type is a column's logical type.
type Type int

const (
	// Int64 is a 64-bit signed integer.
	Int64 Type = iota
	// Float64 is a 64-bit IEEE float.
	Float64
	// String is a variable-length byte string.
	String
	// Date is a day count since 1970-01-01, stored as an int64.
	Date
	// Decimal is a fixed-point value scaled by 100 (cents), stored as an
	// int64 — the TPC-H money type.
	Decimal
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Date:
		return "date"
	case Decimal:
		return "decimal"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Phys is the physical representation class of a type.
type Phys int

const (
	// PhysInt covers Int64, Date and Decimal.
	PhysInt Phys = iota
	// PhysFloat covers Float64.
	PhysFloat
	// PhysString covers String.
	PhysString
)

// Physical reports how values of t are stored.
func (t Type) Physical() Phys {
	switch t {
	case Float64:
		return PhysFloat
	case String:
		return PhysString
	default:
		return PhysInt
	}
}

// Value is a single typed datum, used for literals, row APIs and keys.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
}

// IntVal, FloatVal, StrVal, DateVal and DecimalVal build Values.
func IntVal(v int64) Value         { return Value{Type: Int64, I: v} }
func FloatVal(v float64) Value     { return Value{Type: Float64, F: v} }
func StrVal(v string) Value        { return Value{Type: String, S: v} }
func DateVal(days int64) Value     { return Value{Type: Date, I: days} }
func DecimalVal(cents int64) Value { return Value{Type: Decimal, I: cents} }

// Compare orders two values of the same physical class: -1, 0 or +1.
// Comparing values of different physical classes panics; the binder
// prevents that in well-typed plans.
func (v Value) Compare(w Value) int {
	pa, pb := v.Type.Physical(), w.Type.Physical()
	if pa != pb {
		panic(fmt.Sprintf("table: comparing %v with %v", v.Type, w.Type))
	}
	switch pa {
	case PhysInt:
		switch {
		case v.I < w.I:
			return -1
		case v.I > w.I:
			return 1
		}
	case PhysFloat:
		switch {
		case v.F < w.F:
			return -1
		case v.F > w.F:
			return 1
		}
	case PhysString:
		switch {
		case v.S < w.S:
			return -1
		case v.S > w.S:
			return 1
		}
	}
	return 0
}

func (v Value) String() string {
	switch v.Type {
	case Int64, Date:
		return fmt.Sprintf("%d", v.I)
	case Decimal:
		return fmt.Sprintf("%d.%02d", v.I/100, abs64(v.I%100))
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	default:
		return fmt.Sprintf("Value(%v)", v.Type)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
