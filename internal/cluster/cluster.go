// Package cluster models cluster-level resource consolidation: placing
// tenant workloads on as few servers as their load allows and powering
// the rest down.
//
// §2.4 of the paper: "Recent work has considered using virtual machine
// migration and turning off servers to effect energy-proportionality
// [TWM+08]" — non-proportional servers waste most of their idle power, so
// a cluster of half-idle machines costs far more than a packed half-size
// cluster. The model here is epoch-based and analytic: per epoch, a
// placement policy assigns tenants to nodes, busy nodes draw idle +
// per-core power, empty nodes are powered off, and re-assignments pay a
// migration energy proportional to tenant state size.
package cluster

import (
	"fmt"
	"sort"
)

// NodeSpec is the power/capacity model of one server.
type NodeSpec struct {
	Cores        float64 // capacity in cores
	IdleWatts    float64 // powered but unloaded
	PerCoreWatts float64 // marginal watts per busy core
	OffWatts     float64 // powered down (iLO etc.)
}

// Power reports a node's draw at the given core load.
func (n NodeSpec) Power(load float64, poweredOn bool) float64 {
	if !poweredOn {
		return n.OffWatts
	}
	return n.IdleWatts + n.PerCoreWatts*load
}

// Tenant is one hosted workload with a per-epoch core demand.
type Tenant struct {
	Name      string
	DataBytes int64     // state that must move on migration
	Load      []float64 // cores demanded per epoch
}

// Policy assigns tenants to nodes each epoch. prev is the previous
// assignment (nil on the first epoch); implementations return one node
// index per tenant.
type Policy interface {
	Name() string
	Place(tenants []Tenant, epoch int, prev []int, nodes int, spec NodeSpec) []int
}

// Spread statically round-robins tenants across all nodes — the
// energy-oblivious baseline every load balancer implements.
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Place implements Policy.
func (Spread) Place(tenants []Tenant, epoch int, prev []int, nodes int, spec NodeSpec) []int {
	out := make([]int, len(tenants))
	for i := range tenants {
		out[i] = i % nodes
	}
	return out
}

// Consolidate packs tenants onto the fewest nodes each epoch using
// first-fit decreasing on current load, leaving the rest powered down.
type Consolidate struct {
	// Headroom reserves a fraction of each node's capacity (0.1 = pack
	// to 90%), protecting against load spikes between epochs.
	Headroom float64
}

// Name implements Policy.
func (c Consolidate) Name() string { return "consolidate" }

// Place implements Policy.
func (c Consolidate) Place(tenants []Tenant, epoch int, prev []int, nodes int, spec NodeSpec) []int {
	cap := spec.Cores * (1 - c.Headroom)
	order := make([]int, len(tenants))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tenants[order[a]].Load[epoch] > tenants[order[b]].Load[epoch]
	})
	used := make([]float64, nodes)
	out := make([]int, len(tenants))
	for _, ti := range order {
		load := tenants[ti].Load[epoch]
		placed := false
		for n := 0; n < nodes; n++ {
			if used[n]+load <= cap {
				used[n] += load
				out[ti] = n
				placed = true
				break
			}
		}
		if !placed {
			// Overload: put it on the least-loaded node and accept the
			// capacity violation (counted by Evaluate).
			best := 0
			for n := 1; n < nodes; n++ {
				if used[n] < used[best] {
					best = n
				}
			}
			used[best] += load
			out[ti] = best
		}
	}
	return out
}

// Sticky wraps Consolidate but keeps a tenant on its previous node when
// that node still has room, trading packing quality for fewer migrations.
type Sticky struct {
	Headroom float64
}

// Name implements Policy.
func (s Sticky) Name() string { return "sticky" }

// Place implements Policy.
func (s Sticky) Place(tenants []Tenant, epoch int, prev []int, nodes int, spec NodeSpec) []int {
	if prev == nil {
		return Consolidate{Headroom: s.Headroom}.Place(tenants, epoch, prev, nodes, spec)
	}
	cap := spec.Cores * (1 - s.Headroom)
	used := make([]float64, nodes)
	out := make([]int, len(tenants))
	var homeless []int
	for ti := range tenants {
		n := prev[ti]
		load := tenants[ti].Load[epoch]
		if used[n]+load <= cap {
			used[n] += load
			out[ti] = n
			continue
		}
		homeless = append(homeless, ti)
	}
	for _, ti := range homeless {
		load := tenants[ti].Load[epoch]
		placed := false
		// Prefer already-busy nodes so empty ones can stay off.
		for n := 0; n < nodes; n++ {
			if used[n] > 0 && used[n]+load <= cap {
				used[n] += load
				out[ti] = n
				placed = true
				break
			}
		}
		if !placed {
			for n := 0; n < nodes; n++ {
				if used[n]+load <= cap {
					used[n] += load
					out[ti] = n
					placed = true
					break
				}
			}
		}
		if !placed {
			best := 0
			for n := 1; n < nodes; n++ {
				if used[n] < used[best] {
					best = n
				}
			}
			used[best] += load
			out[ti] = best
		}
	}
	return out
}

// Result summarises an evaluated policy run.
type Result struct {
	Policy          string
	TotalJoules     float64
	MigrationJoules float64
	Migrations      int64
	Violations      int64   // epoch-node capacity overruns
	MeanNodesOn     float64 // average powered-on nodes per epoch
}

// Config describes the evaluated cluster.
type Config struct {
	Nodes        int
	Spec         NodeSpec
	EpochSeconds float64
	// MigrationJPerByte prices moving tenant state (network + source +
	// destination work); 2008-era numbers are ~20-50 nJ/byte end to end.
	MigrationJPerByte float64
}

// Evaluate replays the tenants' load trace under the policy and returns
// the energy account.
func Evaluate(cfg Config, tenants []Tenant, policy Policy) (Result, error) {
	if cfg.Nodes <= 0 || len(tenants) == 0 {
		return Result{}, fmt.Errorf("cluster: need nodes and tenants")
	}
	epochs := len(tenants[0].Load)
	for _, tn := range tenants {
		if len(tn.Load) != epochs {
			return Result{}, fmt.Errorf("cluster: tenant %q trace length %d != %d", tn.Name, len(tn.Load), epochs)
		}
	}
	res := Result{Policy: policy.Name()}
	var prev []int
	var nodesOnSum int64
	for e := 0; e < epochs; e++ {
		asn := policy.Place(tenants, e, prev, cfg.Nodes, cfg.Spec)
		if len(asn) != len(tenants) {
			return Result{}, fmt.Errorf("cluster: policy %q returned %d assignments", policy.Name(), len(asn))
		}
		load := make([]float64, cfg.Nodes)
		for ti, n := range asn {
			if n < 0 || n >= cfg.Nodes {
				return Result{}, fmt.Errorf("cluster: assignment to node %d", n)
			}
			load[n] += tenants[ti].Load[e]
		}
		for n := 0; n < cfg.Nodes; n++ {
			on := load[n] > 0
			if on {
				nodesOnSum++
				if load[n] > cfg.Spec.Cores {
					res.Violations++
				}
			}
			res.TotalJoules += cfg.Spec.Power(load[n], on) * cfg.EpochSeconds
		}
		if prev != nil {
			for ti := range tenants {
				if asn[ti] != prev[ti] {
					res.Migrations++
					mj := float64(tenants[ti].DataBytes) * cfg.MigrationJPerByte
					res.MigrationJoules += mj
					res.TotalJoules += mj
				}
			}
		}
		prev = asn
	}
	res.MeanNodesOn = float64(nodesOnSum) / float64(epochs)
	return res, nil
}
