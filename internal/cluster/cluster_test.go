package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return Config{
		Nodes: 8,
		Spec: NodeSpec{
			Cores:        8,
			IdleWatts:    200, // non-proportional 2008 server
			PerCoreWatts: 12,
			OffWatts:     5,
		},
		EpochSeconds:      3600,
		MigrationJPerByte: 30e-9,
	}
}

// diurnalTenants builds tenants with a low/high daily cycle averaging
// well under cluster capacity.
func diurnalTenants(n, epochs int, seed int64) []Tenant {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tenant, n)
	for i := range out {
		load := make([]float64, epochs)
		phase := rng.Float64() * 2 * math.Pi
		for e := range load {
			day := 0.5 + 0.45*math.Sin(2*math.Pi*float64(e)/24+phase)
			load[e] = 0.2 + 1.5*day*rng.Float64()
		}
		out[i] = Tenant{
			Name:      string(rune('A' + i)),
			DataBytes: int64(1+rng.Intn(20)) << 30,
			Load:      load,
		}
	}
	return out
}

func TestConsolidationBeatsSpread(t *testing.T) {
	cfg := testCfg()
	tenants := diurnalTenants(12, 48, 1)
	spread, err := Evaluate(cfg, tenants, Spread{})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Evaluate(cfg, tenants, Consolidate{Headroom: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if cons.TotalJoules >= spread.TotalJoules {
		t.Fatalf("consolidation should save energy: cons=%v spread=%v", cons.TotalJoules, spread.TotalJoules)
	}
	if cons.MeanNodesOn >= spread.MeanNodesOn {
		t.Fatalf("consolidation should use fewer nodes: %v vs %v", cons.MeanNodesOn, spread.MeanNodesOn)
	}
	if cons.Violations != 0 || spread.Violations != 0 {
		t.Fatalf("violations: cons=%d spread=%d", cons.Violations, spread.Violations)
	}
}

func TestStickyMigratesLess(t *testing.T) {
	cfg := testCfg()
	tenants := diurnalTenants(12, 48, 2)
	cons, err := Evaluate(cfg, tenants, Consolidate{Headroom: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := Evaluate(cfg, tenants, Sticky{Headroom: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if sticky.Migrations >= cons.Migrations {
		t.Fatalf("sticky should migrate less: %d vs %d", sticky.Migrations, cons.Migrations)
	}
	if sticky.MigrationJoules >= cons.MigrationJoules {
		t.Fatalf("sticky migration energy %v >= consolidate %v", sticky.MigrationJoules, cons.MigrationJoules)
	}
}

func TestMigrationCostCharged(t *testing.T) {
	cfg := testCfg()
	cfg.MigrationJPerByte = 0
	tenants := diurnalTenants(10, 24, 3)
	free, err := Evaluate(cfg, tenants, Consolidate{Headroom: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.MigrationJPerByte = 30e-9
	paid, err := Evaluate(cfg, tenants, Consolidate{Headroom: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if paid.MigrationJoules <= 0 || paid.TotalJoules <= free.TotalJoules {
		t.Fatalf("migration cost not charged: paid=%+v free=%+v", paid, free)
	}
}

func TestSpreadNeverMigrates(t *testing.T) {
	res, err := Evaluate(testCfg(), diurnalTenants(9, 24, 4), Spread{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("spread migrated %d times", res.Migrations)
	}
}

func TestNodePower(t *testing.T) {
	spec := testCfg().Spec
	if got := spec.Power(0, false); got != 5 {
		t.Fatalf("off power = %v", got)
	}
	if got := spec.Power(0, true); got != 200 {
		t.Fatalf("idle power = %v", got)
	}
	if got := spec.Power(4, true); got != 248 {
		t.Fatalf("loaded power = %v", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	cfg := testCfg()
	if _, err := Evaluate(cfg, nil, Spread{}); err == nil {
		t.Fatal("no tenants should error")
	}
	bad := []Tenant{
		{Name: "a", Load: []float64{1, 2}},
		{Name: "b", Load: []float64{1}},
	}
	if _, err := Evaluate(cfg, bad, Spread{}); err == nil {
		t.Fatal("ragged traces should error")
	}
}

// Property: consolidation never uses more powered-on nodes than spread,
// and total joules (ignoring migrations) are never higher, across random
// light-load traces.
func TestConsolidationDominatesUnderLightLoad(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testCfg()
		cfg.MigrationJPerByte = 0
		tenants := diurnalTenants(10, 24, seed)
		spread, err1 := Evaluate(cfg, tenants, Spread{})
		cons, err2 := Evaluate(cfg, tenants, Consolidate{Headroom: 0.1})
		if err1 != nil || err2 != nil {
			return false
		}
		return cons.MeanNodesOn <= spread.MeanNodesOn+1e-9 &&
			cons.TotalJoules <= spread.TotalJoules+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
