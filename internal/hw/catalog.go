package hw

// This file is the device catalog: datasheet-class constants for the
// 2008-era hardware the paper's two experiments ran on. All experiment
// behaviour emerges from these models; nothing downstream fits curves to
// the paper's figures.

// GiB is 2^30 bytes.
const GiB = int64(1) << 30

// MB is 10^6 bytes (storage-vendor megabytes, as in "90 MB/s").
const MB = 1e6

// Cheetah15K models a 73 GB 15K-RPM SCSI drive (the paper's MSA70 trays
// held 15K RPM 73 GB drives). Power numbers include a per-slot share of
// the drive tray's backplane and fans, which is why they sit slightly
// above bare-drive datasheet figures.
func Cheetah15K() DiskSpec {
	return DiskSpec{
		Name:          "cheetah15k",
		CapacityBytes: 73 * GiB,
		SeqReadBW:     90 * MB,
		SeqWriteBW:    85 * MB,
		AvgSeek:       0.0035, // 3.5 ms
		RotLatency:    0.0020, // 2 ms at 15K RPM
		ActiveWatts:   17,
		IdleWatts:     13,
		StandbyWatts:  2.5,
		SpinUpWatts:   24,
		SpinUpTime:    6.0,
	}
}

// FlashSSD2008 models one of the three flash drives in the paper's scan
// experiment (Figure 2). The three together draw 5 W, so each is ~1.67 W;
// the paper's arithmetic charges the same 5 W for the whole query, so idle
// and active power are set equal.
func FlashSSD2008() SSDSpec {
	return SSDSpec{
		Name:          "flash2008",
		CapacityBytes: 32 * GiB,
		ReadBW:        80 * MB,
		WriteBW:       40 * MB,
		ReadLatency:   0.0001,
		ActiveWatts:   5.0 / 3,
		IdleWatts:     5.0 / 3,
	}
}

// ScanCPU2008 is the single 90 W CPU of the Figure 2 experiment. The paper
// assumes "an idle CPU does not consume any power (or ... some other
// concurrent task is taking up the rest of the CPU cycles)", so idle power
// is zero and the whole 90 W is attributed to the busy state.
func ScanCPU2008() CPUSpec {
	return CPUSpec{
		Name:          "scan-cpu",
		Cores:         1,
		FreqHz:        2.4e9,
		CyclesPerByte: 3.2,
		IdleWatts:     0,
		ActivePerCore: 90,
		PStates: []PState{
			{Name: "P0", FreqScale: 1.0, PowerScale: 1.0},
			{Name: "P1", FreqScale: 0.8, PowerScale: 0.55},
			{Name: "P2", FreqScale: 0.6, PowerScale: 0.30},
		},
	}
}

// OpteronComplex models the 8-socket quad-core Opteron complex of the
// HP ProLiant DL785 used for Figure 1 (32 cores at 2.2 GHz).
func OpteronComplex() CPUSpec {
	return CPUSpec{
		Name:          "opteron-8x4",
		Cores:         32,
		FreqHz:        2.2e9,
		CyclesPerByte: 3.0,
		IdleWatts:     200, // 8 sockets idling
		ActivePerCore: 9,   // +288 W with all 32 cores busy
		PStates: []PState{
			{Name: "P0", FreqScale: 1.0, PowerScale: 1.0},
			{Name: "P1", FreqScale: 0.75, PowerScale: 0.5},
		},
	}
}

// DDR2x64GiB models the DL785's 64 GB of DDR2 in 8 power-managed ranks.
func DDR2x64GiB() DRAMSpec {
	return DRAMSpec{
		Name:          "ddr2-64g",
		Ranks:         8,
		BytesPerRank:  8 * GiB,
		WattsPerRank:  8, // 64 W background for 64 GB
		AccessJPerGiB: 0.5,
	}
}

// DL785 returns the Figure 1 server: the audited-TPC-H-like HP ProLiant
// DL785 with a configurable number of SCSI disks (the paper sweeps 36, 66,
// 108, 204). BaseWatts covers chassis, fans, PSU losses and SAS
// controllers.
func DL785(numDisks int) ServerSpec {
	return ServerSpec{
		Name:            "dl785",
		CPU:             OpteronComplex(),
		DRAM:            DDR2x64GiB(),
		BaseWatts:       180,
		Disk:            Cheetah15K(),
		NumDisks:        numDisks,
		CoolingOverhead: 1.0, // the paper's figures meter server power only
	}
}

// ScanRig returns the Figure 2 machine: one 90 W CPU and three flash SSDs
// totalling 5 W. No DRAM or base power is modelled because the paper's
// energy arithmetic includes neither.
func ScanRig() ServerSpec {
	return ServerSpec{
		Name:    "scanrig",
		CPU:     ScanCPU2008(),
		NumSSDs: 3,
		SSD:     FlashSSD2008(),
	}
}

// SmallServer is a modest 8-core box used by examples, unit tests and the
// consolidation experiments: big enough to be interesting, cheap to run.
func SmallServer(numDisks int) ServerSpec {
	return ServerSpec{
		Name: "small",
		CPU: CPUSpec{
			Name:          "xeon-8c",
			Cores:         8,
			FreqHz:        2.5e9,
			CyclesPerByte: 3.0,
			IdleWatts:     40,
			ActivePerCore: 11,
			PStates: []PState{
				{Name: "P0", FreqScale: 1.0, PowerScale: 1.0},
				{Name: "P1", FreqScale: 0.7, PowerScale: 0.4},
			},
		},
		DRAM: DRAMSpec{
			Name:          "ddr3-16g",
			Ranks:         4,
			BytesPerRank:  4 * GiB,
			WattsPerRank:  3,
			AccessJPerGiB: 0.5,
		},
		BaseWatts: 60,
		Disk:      Cheetah15K(),
		NumDisks:  numDisks,
	}
}
