package hw

import (
	"math"
	"testing"
	"testing/quick"

	"energydb/internal/energy"
	"energydb/internal/sim"
)

func newRig(t *testing.T) (*sim.Engine, *energy.Meter) {
	t.Helper()
	return sim.NewEngine(), energy.NewMeter()
}

func TestCPUUseTimeAndEnergy(t *testing.T) {
	e, m := newRig(t)
	cpu := NewCPU(e, m, "cpu", ScanCPU2008()) // 2.4 GHz, 0 W idle, 90 W busy
	e.Go("q", func(p *sim.Proc) {
		cpu.Use(p, 2.4e9) // exactly one second of work
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 1.0 {
		t.Fatalf("elapsed = %v, want 1.0", e.Now())
	}
	got := m.ComponentEnergy("cpu", energy.Seconds(e.Now()))
	if math.Abs(float64(got)-90) > 1e-9 {
		t.Fatalf("cpu energy = %v, want 90 J", got)
	}
	if cpu.TotalCycles() != 2.4e9 {
		t.Fatalf("TotalCycles = %v", cpu.TotalCycles())
	}
}

func TestCPUMulticoreOverlap(t *testing.T) {
	e, m := newRig(t)
	spec := OpteronComplex()
	cpu := NewCPU(e, m, "cpu", spec)
	for i := 0; i < spec.Cores; i++ {
		e.Go("q", func(p *sim.Proc) { cpu.Use(p, spec.FreqHz) }) // 1s each
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 1.0 {
		t.Fatalf("32 jobs on 32 cores took %v, want 1.0", e.Now())
	}
	// Energy: idle + all cores busy for 1s.
	want := float64(spec.IdleWatts) + float64(spec.ActivePerCore)*float64(spec.Cores)
	got := m.ComponentEnergy("cpu", energy.Seconds(1))
	if math.Abs(float64(got)-want) > 1e-6 {
		t.Fatalf("cpu energy = %v, want %v", got, want)
	}
	if u := cpu.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

func TestCPUQueueingBeyondCores(t *testing.T) {
	e, m := newRig(t)
	spec := ScanCPU2008() // 1 core
	cpu := NewCPU(e, m, "cpu", spec)
	for i := 0; i < 3; i++ {
		e.Go("q", func(p *sim.Proc) { cpu.Use(p, spec.FreqHz) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 3.0 {
		t.Fatalf("3 jobs on 1 core took %v, want 3.0", e.Now())
	}
}

func TestCPUDVFS(t *testing.T) {
	e, m := newRig(t)
	spec := ScanCPU2008()
	cpu := NewCPU(e, m, "cpu", spec)
	cpu.SetPState(2) // 0.6x freq, 0.3x power
	e.Go("q", func(p *sim.Proc) { cpu.Use(p, 2.4e9) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wantT := 1 / 0.6
	if math.Abs(e.Now()-wantT) > 1e-9 {
		t.Fatalf("slow P-state elapsed = %v, want %v", e.Now(), wantT)
	}
	// Energy at P2: 90*0.3 W for 1/0.6 s = 45 J — less than the 90 J at P0,
	// the race-to-idle-vs-DVFS tradeoff the paper alludes to.
	got := m.ComponentEnergy("cpu", energy.Seconds(e.Now()))
	if math.Abs(float64(got)-45) > 1e-6 {
		t.Fatalf("DVFS energy = %v, want 45", got)
	}
}

func TestCPUInvalidPState(t *testing.T) {
	e, m := newRig(t)
	spec := ScanCPU2008() // three P-states
	cpu := NewCPU(e, m, "cpu", spec)
	deepest := len(spec.PStates) - 1
	if got := cpu.SetPState(99); got != deepest || cpu.PState() != deepest {
		t.Fatalf("SetPState(99) = %d (pstate %d), want clamp to %d", got, cpu.PState(), deepest)
	}
	if got := cpu.SetPState(-5); got != 0 || cpu.PState() != 0 {
		t.Fatalf("SetPState(-5) = %d (pstate %d), want clamp to 0", got, cpu.PState())
	}
	if got := cpu.SetPState(1); got != 1 || cpu.PState() != 1 {
		t.Fatalf("SetPState(1) = %d (pstate %d), want 1 applied as-is", got, cpu.PState())
	}
}

func TestDiskSequentialVsRandom(t *testing.T) {
	e, m := newRig(t)
	spec := Cheetah15K()
	d := NewDisk(e, m, "d0", spec)
	var seqT, randT float64
	e.Go("io", func(p *sim.Proc) {
		start := p.Now()
		d.Read(p, 0, 1*MB)
		d.Read(p, 1*MB, 1*MB) // sequential: no seek
		seqT = p.Now() - start

		start = p.Now()
		d.Read(p, 500*MB, 1*MB) // random: seek + rotate
		randT = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	perMB := 1 * MB / spec.SeqReadBW
	wantSeq := (spec.AvgSeek + spec.RotLatency) + 2*perMB // first read seeks
	if math.Abs(seqT-wantSeq) > 1e-9 {
		t.Fatalf("sequential pair took %v, want %v", seqT, wantSeq)
	}
	wantRand := spec.AvgSeek + spec.RotLatency + perMB
	if math.Abs(randT-wantRand) > 1e-9 {
		t.Fatalf("random read took %v, want %v", randT, wantRand)
	}
	st := d.Stats()
	if st.Reads != 3 || st.Seeks != 2 || st.BytesRead != 3*MB {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskSpinDownAndUp(t *testing.T) {
	e, m := newRig(t)
	spec := Cheetah15K()
	d := NewDisk(e, m, "d0", spec)
	d.SpinDownAfter = 10

	e.Go("io", func(p *sim.Proc) {
		d.Read(p, 0, 1*MB)
		p.Sleep(100) // long idle: disk should spin down after 10s
		if d.State() != SpinStandby {
			t.Errorf("disk not in standby after idle: %v", d.State())
		}
		start := p.Now()
		d.Read(p, 0, 1*MB) // must pay spin-up
		if got := p.Now() - start; got < spec.SpinUpTime {
			t.Errorf("post-standby read took %v, want >= spin-up %v", got, spec.SpinUpTime)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two spin-downs: the one mid-idle, plus the trailing timer after the
	// last read fires once the workload ends.
	st := d.Stats()
	if st.SpinDowns != 2 || st.SpinUps != 1 {
		t.Fatalf("spin transitions = %+v", st)
	}
}

func TestDiskSpinDownSavesEnergyOnLongIdle(t *testing.T) {
	// The §4.2 tradeoff: spin-down wins only if the idle period is long
	// enough to amortise the spin-up cost.
	run := func(spinDown float64, idle float64) energy.Joules {
		e, m := newRig(t)
		d := NewDisk(e, m, "d0", Cheetah15K())
		d.SpinDownAfter = spinDown
		e.Go("io", func(p *sim.Proc) {
			d.Read(p, 0, 1*MB)
			p.Sleep(idle)
			d.Read(p, 0, 1*MB)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return m.ComponentEnergy("d0", energy.Seconds(e.Now()))
	}
	const longIdle = 600
	if on, off := run(10, longIdle), run(0, longIdle); on >= off {
		t.Fatalf("spin-down should save energy over %vs idle: on=%v off=%v", longIdle, on, off)
	}
	const shortIdle = 12 // just past the threshold: pays spin-up for nothing
	if on, off := run(10, shortIdle), run(0, shortIdle); on <= off {
		t.Fatalf("spin-down should cost energy over %vs idle: on=%v off=%v", shortIdle, on, off)
	}
}

func TestDiskIdleTimerCancelledByIO(t *testing.T) {
	e, m := newRig(t)
	d := NewDisk(e, m, "d0", Cheetah15K())
	d.SpinDownAfter = 10
	e.Go("io", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			d.Read(p, 0, 1*MB)
			p.Sleep(5) // always under the threshold
		}
		if n := d.Stats().SpinDowns; n != 0 {
			t.Errorf("disk spun down %d time(s) despite steady I/O", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForcedSpinDown(t *testing.T) {
	e, m := newRig(t)
	d := NewDisk(e, m, "d0", Cheetah15K())
	if !d.SpinDown() {
		t.Fatal("SpinDown on idle disk should succeed")
	}
	if d.SpinDown() {
		t.Fatal("SpinDown on standby disk should fail")
	}
	_ = e
	_ = m
}

func TestSSDReadWrite(t *testing.T) {
	e, m := newRig(t)
	spec := FlashSSD2008()
	s := NewSSD(e, m, "ssd", spec)
	e.Go("io", func(p *sim.Proc) {
		s.Read(p, 0, 80*MB) // exactly 1s + latency
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1 + spec.ReadLatency
	if math.Abs(e.Now()-want) > 1e-9 {
		t.Fatalf("ssd read took %v, want %v", e.Now(), want)
	}
	if s.Stats().BytesRead != 80*MB {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestDRAMRankPowerDown(t *testing.T) {
	e, m := newRig(t)
	spec := DDR2x64GiB()
	d := NewDRAM(e, m, "dram", spec)
	if d.PoweredBytes() != 64*GiB {
		t.Fatalf("powered bytes = %d", d.PoweredBytes())
	}
	e.Go("policy", func(p *sim.Proc) {
		p.Sleep(10)            // 10s at 64 W
		d.SetPoweredRanks(4)   // halve background power
		p.Sleep(10)            // 10s at 32 W
		d.SetPoweredRanks(-99) // clamped to 1
		if d.PoweredRanks() != 1 {
			t.Errorf("ranks = %d, want 1", d.PoweredRanks())
		}
		d.SetPoweredRanks(999) // clamped to max
		if d.PoweredRanks() != spec.Ranks {
			t.Errorf("ranks = %d, want %d", d.PoweredRanks(), spec.Ranks)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := m.ComponentEnergy("dram", energy.Seconds(20))
	if math.Abs(float64(got)-(640+320)) > 1e-6 {
		t.Fatalf("dram energy = %v, want 960", got)
	}
}

func TestDRAMAccessEnergy(t *testing.T) {
	e, m := newRig(t)
	d := NewDRAM(e, m, "dram", DDR2x64GiB())
	d.Access(1 * GiB)
	if math.Abs(float64(d.AccessEnergy())-0.5) > 1e-9 {
		t.Fatalf("access energy = %v, want 0.5", d.AccessEnergy())
	}
	if d.HoldingPower() <= 0 {
		t.Fatal("holding power must be positive")
	}
	_, _ = e, m
}

func TestServerComposition(t *testing.T) {
	srv := NewServer(DL785(36))
	if len(srv.Disks) != 36 || srv.CPU == nil || srv.DRAM == nil {
		t.Fatalf("bad composition: %d disks", len(srv.Disks))
	}
	idle := srv.IdlePower()
	peak := srv.PeakPower()
	if idle <= 0 || peak <= idle {
		t.Fatalf("idle=%v peak=%v", idle, peak)
	}
	// 2008-era servers have a small dynamic range (the paper's complaint).
	if dr := srv.DynamicRange(); dr < 0.05 || dr > 0.6 {
		t.Fatalf("dynamic range = %v, not server-like", dr)
	}
}

func TestServerDiskPowerDominates(t *testing.T) {
	// §5.1: "more than half the power use is concentrated in the disk
	// subsystem" — verify our DL785 model reproduces this for the paper's
	// larger configurations.
	srv := NewServer(DL785(204))
	diskIdle := float64(srv.Spec.Disk.IdleWatts) * 204
	if frac := diskIdle / float64(srv.IdlePower()); frac < 0.5 {
		t.Fatalf("disk power fraction = %v, want > 0.5", frac)
	}
}

func TestFig2RigMatchesPaperPower(t *testing.T) {
	srv := NewServer(ScanRig())
	// Idle: CPU 0 W + 3 SSDs at 5 W total.
	if got := float64(srv.IdlePower()); math.Abs(got-5) > 1e-9 {
		t.Fatalf("scan rig idle = %v, want 5", got)
	}
	if got := float64(srv.PeakPower()); math.Abs(got-95) > 1e-9 {
		t.Fatalf("scan rig peak = %v, want 95", got)
	}
}

// Property: for any split of a byte budget across sequential reads, total
// transfer time on an SSD is invariant (no positional costs beyond the
// fixed per-request latency, which we subtract).
func TestSSDTransferTimeLinearity(t *testing.T) {
	f := func(parts uint8) bool {
		n := int(parts%7) + 1
		total := int64(70 * MB)
		e := sim.NewEngine()
		m := energy.NewMeter()
		s := NewSSD(e, m, "ssd", FlashSSD2008())
		e.Go("io", func(p *sim.Proc) {
			chunk := total / int64(n)
			rem := total
			for i := 0; i < n; i++ {
				sz := chunk
				if i == n-1 {
					sz = rem
				}
				s.Read(p, 0, sz)
				rem -= sz
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		pure := e.Now() - float64(n)*s.Spec().ReadLatency
		want := float64(total) / s.Spec().ReadBW
		return math.Abs(pure-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: disk energy over any workload is bounded by time x active
// power and at least time x standby power.
func TestDiskEnergyBounds(t *testing.T) {
	f := func(nReads uint8, gap uint8) bool {
		e := sim.NewEngine()
		m := energy.NewMeter()
		spec := Cheetah15K()
		d := NewDisk(e, m, "d", spec)
		d.SpinDownAfter = 5
		n := int(nReads%10) + 1
		g := float64(gap % 30)
		e.Go("io", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				d.Read(p, int64(i)*10*MB, 1*MB)
				p.Sleep(g)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		elapsed := e.Now()
		got := float64(m.ComponentEnergy("d", energy.Seconds(elapsed)))
		hi := elapsed * float64(spec.SpinUpWatts)
		lo := elapsed * float64(spec.StandbyWatts)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
