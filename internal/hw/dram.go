package hw

import (
	"fmt"

	"energydb/internal/energy"
	"energydb/internal/sim"
)

// DRAMSpec describes main memory. Background (refresh + standby) power is
// proportional to the number of powered ranks; the paper (§4.3) observes
// that "keeping a page in RAM will require energy, proportional to the time
// the page is cached", which is exactly this term.
type DRAMSpec struct {
	Name          string
	Ranks         int // independently power-managed units
	BytesPerRank  int64
	WattsPerRank  energy.Watts  // background power of a powered rank
	AccessJPerGiB energy.Joules // marginal energy per GiB moved
}

// DRAM models memory background power with rank power-down, plus a marginal
// access-energy term. Access energy costs no simulated time (memory
// bandwidth is folded into CPU work), so it is tracked as a running total
// and reported via AccessEnergy; the buffer manager's energy
// cost model consumes it analytically.
type DRAM struct {
	eng          *sim.Engine
	spec         DRAMSpec
	trace        *energy.Trace
	poweredRanks int
	accessEnergy energy.Joules
	bytesMoved   int64
}

// NewDRAM registers memory on the meter with all ranks powered.
func NewDRAM(e *sim.Engine, m *energy.Meter, name string, spec DRAMSpec) *DRAM {
	if spec.Ranks <= 0 || spec.BytesPerRank <= 0 {
		panic(fmt.Sprintf("hw: invalid DRAM spec %+v", spec))
	}
	d := &DRAM{
		eng:          e,
		spec:         spec,
		poweredRanks: spec.Ranks,
	}
	d.trace = m.Register(name, d.backgroundPower())
	return d
}

func (d *DRAM) backgroundPower() energy.Watts {
	return energy.Watts(float64(d.spec.WattsPerRank) * float64(d.poweredRanks))
}

// Spec returns the DRAM specification.
func (d *DRAM) Spec() DRAMSpec { return d.spec }

// TotalBytes reports installed capacity.
func (d *DRAM) TotalBytes() int64 { return d.spec.BytesPerRank * int64(d.spec.Ranks) }

// PoweredBytes reports the capacity of currently powered ranks.
func (d *DRAM) PoweredBytes() int64 { return d.spec.BytesPerRank * int64(d.poweredRanks) }

// PoweredRanks reports how many ranks are powered.
func (d *DRAM) PoweredRanks() int { return d.poweredRanks }

// SetPoweredRanks powers ranks up or down; at least one rank stays powered.
// The buffer manager calls this after shrinking itself so unused memory
// stops drawing refresh power (§4.2's "powering down unused hardware").
func (d *DRAM) SetPoweredRanks(n int) {
	if n < 1 {
		n = 1
	}
	if n > d.spec.Ranks {
		n = d.spec.Ranks
	}
	d.poweredRanks = n
	d.trace.Set(energy.Seconds(d.eng.Now()), d.backgroundPower())
}

// Access charges the marginal energy of moving n bytes through memory.
// It costs no simulated time (bandwidth is folded into CPU work); the
// energy is what matters for policy decisions.
func (d *DRAM) Access(n int64) {
	if n < 0 {
		panic("hw: negative DRAM access")
	}
	d.bytesMoved += n
	d.accessEnergy += energy.Joules(float64(n) / (1 << 30) * float64(d.spec.AccessJPerGiB))
}

// AccessEnergy reports accumulated marginal access energy.
func (d *DRAM) AccessEnergy() energy.Joules { return d.accessEnergy }

// BytesMoved reports total bytes charged through Access.
func (d *DRAM) BytesMoved() int64 { return d.bytesMoved }

// HoldingPower reports the background watts attributable to caching one
// byte for one second, used by the energy-aware buffer policy: W/byte.
func (d *DRAM) HoldingPower() float64 {
	return float64(d.backgroundPower()) / float64(d.PoweredBytes())
}
