package hw

import (
	"fmt"

	"energydb/internal/energy"
	"energydb/internal/sim"
)

// ServerSpec composes a whole machine out of device specs.
type ServerSpec struct {
	Name      string
	CPU       CPUSpec
	DRAM      DRAMSpec
	BaseWatts energy.Watts // chassis, fans, PSU fixed losses (always drawn)

	Disk     DiskSpec
	NumDisks int
	SSD      SSDSpec
	NumSSDs  int

	// CoolingOverhead multiplies total energy to account for cooling: the
	// paper cites 0.5–1 W of cooling per server watt [PBS+03]. 1.0 = none.
	CoolingOverhead float64
}

// Server is a simulated machine: one engine-attached CPU complex, DRAM,
// and arrays of disks and SSDs, all metered.
type Server struct {
	Spec  ServerSpec
	Eng   *sim.Engine
	Meter *energy.Meter
	CPU   *CPU
	DRAM  *DRAM
	Disks []*Disk
	SSDs  []*SSD
}

// NewServer builds a server with a fresh simulation engine and meter.
func NewServer(spec ServerSpec) *Server {
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	return NewServerOn(eng, meter, spec)
}

// NewServerOn builds a server on an existing engine and meter so several
// servers can share one simulation (see internal/cluster).
func NewServerOn(eng *sim.Engine, meter *energy.Meter, spec ServerSpec) *Server {
	if spec.CoolingOverhead == 0 {
		spec.CoolingOverhead = 1.0
	}
	meter.Overhead = spec.CoolingOverhead
	s := &Server{Spec: spec, Eng: eng, Meter: meter}
	prefix := spec.Name
	if prefix != "" {
		prefix += "/"
	}
	if spec.BaseWatts > 0 {
		meter.Register(prefix+"base", spec.BaseWatts)
	}
	s.CPU = NewCPU(eng, meter, prefix+"cpu", spec.CPU)
	if spec.DRAM.Ranks > 0 {
		s.DRAM = NewDRAM(eng, meter, prefix+"dram", spec.DRAM)
	}
	for i := 0; i < spec.NumDisks; i++ {
		s.Disks = append(s.Disks, NewDisk(eng, meter, fmt.Sprintf("%sdisk%03d", prefix, i), spec.Disk))
	}
	for i := 0; i < spec.NumSSDs; i++ {
		s.SSDs = append(s.SSDs, NewSSD(eng, meter, fmt.Sprintf("%sssd%d", prefix, i), spec.SSD))
	}
	return s
}

// Energy reports whole-server energy (including cooling overhead) through
// the current simulated time.
func (s *Server) Energy() energy.Joules {
	return s.Meter.TotalEnergy(energy.Seconds(s.Eng.Now()))
}

// Power reports instantaneous whole-server power (including overhead).
func (s *Server) Power() energy.Watts { return s.Meter.TotalPower() }

// IdlePower reports the modelled power draw with every component idle
// (disks spinning). Useful for dynamic-range and proportionality metrics.
func (s *Server) IdlePower() energy.Watts {
	w := s.Spec.BaseWatts + s.Spec.CPU.IdleWatts
	if s.DRAM != nil {
		w += energy.Watts(float64(s.Spec.DRAM.WattsPerRank) * float64(s.Spec.DRAM.Ranks))
	}
	w += energy.Watts(float64(s.Spec.Disk.IdleWatts) * float64(s.Spec.NumDisks))
	w += energy.Watts(float64(s.Spec.SSD.IdleWatts) * float64(s.Spec.NumSSDs))
	return energy.Watts(float64(w) * s.Spec.CoolingOverhead)
}

// PeakPower reports the modelled power with every component fully active.
func (s *Server) PeakPower() energy.Watts {
	w := s.Spec.BaseWatts + s.Spec.CPU.IdleWatts +
		energy.Watts(float64(s.Spec.CPU.ActivePerCore)*float64(s.Spec.CPU.Cores))
	if s.DRAM != nil {
		w += energy.Watts(float64(s.Spec.DRAM.WattsPerRank) * float64(s.Spec.DRAM.Ranks))
	}
	w += energy.Watts(float64(s.Spec.Disk.ActiveWatts) * float64(s.Spec.NumDisks))
	w += energy.Watts(float64(s.Spec.SSD.ActiveWatts) * float64(s.Spec.NumSSDs))
	return energy.Watts(float64(w) * s.Spec.CoolingOverhead)
}

// DynamicRange reports the Barroso–Hölzle dynamic power range of the server
// model: (peak-idle)/peak.
func (s *Server) DynamicRange() float64 {
	return energy.DynamicRange(s.IdlePower(), s.PeakPower())
}
