// Package hw models the hardware components the paper's experiments run on:
// CPUs with P-states (DVFS) and idle states, 15K-RPM SCSI disks with spin
// states, flash SSDs, DRAM with rank power-down, and whole servers.
//
// Every device charges real simulated time for the work it is asked to do
// and reports its piecewise-constant power draw to an energy.Meter, so the
// energy of any workload is the exact integral of the modelled power. The
// constants in catalog.go are datasheet-class numbers for the 2008-era
// hardware the paper used; experiments emerge from these models rather than
// from fitted curves.
package hw

import (
	"fmt"

	"energydb/internal/energy"
	"energydb/internal/sim"
)

// PState is one DVFS operating point of a CPU. Scaling voltage and
// frequency together makes dynamic power fall roughly with the cube of the
// frequency scale; the catalog provides explicit points instead of assuming
// a law.
type PState struct {
	Name       string
	FreqScale  float64 // multiplier on CPUSpec.FreqHz, in (0, 1]
	PowerScale float64 // multiplier on CPUSpec.ActivePerCore
}

// CPUSpec describes a CPU complex (all sockets of a server together).
type CPUSpec struct {
	Name          string
	Cores         int
	FreqHz        float64      // per-core frequency at the top P-state
	CyclesPerByte float64      // default charge for memcpy-class work
	IdleWatts     energy.Watts // package idle power (C-state floor)
	ActivePerCore energy.Watts // additional power per busy core at top P-state
	PStates       []PState     // sorted fastest first; index 0 must be {1,1}
}

// CPU is a simulated CPU complex: a sim.Resource with one unit per core,
// plus DVFS state and power accounting.
type CPU struct {
	eng    *sim.Engine
	spec   CPUSpec
	res    *sim.Resource
	trace  *energy.Trace
	pstate int

	busyTime   float64 // core-seconds of work executed
	lastChange float64
	busyCores  int
	peakBusy   int     // most cores simultaneously busy since construction
	totalWork  float64 // cycles executed
}

// NewCPU registers a CPU on the meter and returns it.
func NewCPU(e *sim.Engine, m *energy.Meter, name string, spec CPUSpec) *CPU {
	if spec.Cores <= 0 || spec.FreqHz <= 0 {
		panic(fmt.Sprintf("hw: invalid CPU spec %+v", spec))
	}
	if len(spec.PStates) == 0 {
		spec.PStates = []PState{{Name: "P0", FreqScale: 1, PowerScale: 1}}
	}
	c := &CPU{
		eng:   e,
		spec:  spec,
		res:   sim.NewResource(e, name, spec.Cores),
		trace: m.Register(name, spec.IdleWatts),
	}
	c.res.OnBusyChange(func(n int) { c.onBusy(n) })
	return c
}

func (c *CPU) onBusy(n int) {
	now := c.eng.Now()
	c.busyTime += float64(c.busyCores) * (now - c.lastChange)
	c.lastChange = now
	c.busyCores = n
	if n > c.peakBusy {
		c.peakBusy = n
	}
	c.trace.Set(energy.Seconds(now), c.powerAt(n))
}

func (c *CPU) powerAt(busy int) energy.Watts {
	ps := c.spec.PStates[c.pstate]
	return c.spec.IdleWatts + energy.Watts(float64(c.spec.ActivePerCore)*ps.PowerScale*float64(busy))
}

// Spec returns the CPU's specification.
func (c *CPU) Spec() CPUSpec { return c.spec }

// Cores reports the core count.
func (c *CPU) Cores() int { return c.spec.Cores }

// FreqHz reports the effective per-core frequency at the current P-state.
func (c *CPU) FreqHz() float64 {
	return c.spec.FreqHz * c.spec.PStates[c.pstate].FreqScale
}

// SetPState selects DVFS operating point i (0 is fastest), clamping an
// out-of-range index to the nearest valid point, and returns the index
// actually applied — so a governor asking for a deeper state than the
// part supports lands on the deepest one instead of panicking mid-run.
// Work in flight keeps its original duration; new work sees the new
// frequency. This mirrors real governors, which take effect at
// scheduling boundaries.
func (c *CPU) SetPState(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= len(c.spec.PStates) {
		i = len(c.spec.PStates) - 1
	}
	if i != c.pstate {
		c.pstate = i
		c.trace.Set(energy.Seconds(c.eng.Now()), c.powerAt(c.busyCores))
	}
	return i
}

// PState reports the current P-state index.
func (c *CPU) PState() int { return c.pstate }

// Use executes the given number of cycles on one core, blocking the calling
// process for cycles/frequency seconds of simulated time.
func (c *CPU) Use(p *sim.Proc, cycles float64) {
	if cycles < 0 {
		panic("hw: negative CPU cycles")
	}
	if cycles == 0 {
		return
	}
	c.totalWork += cycles
	d := cycles / c.FreqHz()
	marginal := float64(c.spec.ActivePerCore) * c.spec.PStates[c.pstate].PowerScale * d
	c.res.Use(p, 1, d)
	chargeOwner(p, marginal)
}

// chargeOwner credits directly attributed marginal joules — what the
// device drew above idle to serve this operation — to the account riding
// on the process, if any (per-query energy attribution).
func chargeOwner(p *sim.Proc, j float64) {
	if j <= 0 {
		return
	}
	if c, ok := p.Owner().(energy.Charger); ok {
		c.ChargeJoules(energy.Joules(j))
	}
}

// UseBytes charges byte-proportional work at the spec's CyclesPerByte rate.
func (c *CPU) UseBytes(p *sim.Proc, bytes int64) {
	c.Use(p, float64(bytes)*c.spec.CyclesPerByte)
}

// PeakBusyCores reports the most cores observed simultaneously busy since
// construction — the *realised* (as opposed to planned) degree of
// parallelism, which the exchange-layer tests assert actually rose when a
// plan fanned out worker processes.
func (c *CPU) PeakBusyCores() int { return c.peakBusy }

// BusyCoreSeconds reports accumulated core-seconds of executed work.
func (c *CPU) BusyCoreSeconds() float64 {
	return c.busyTime + float64(c.busyCores)*(c.eng.Now()-c.lastChange)
}

// TotalCycles reports the cycles executed so far.
func (c *CPU) TotalCycles() float64 { return c.totalWork }

// Utilization reports mean core utilisation in [0,1] since time 0.
func (c *CPU) Utilization() float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	return c.BusyCoreSeconds() / (now * float64(c.spec.Cores))
}

// Resource exposes the underlying core resource (for schedulers).
func (c *CPU) Resource() *sim.Resource { return c.res }

// Reset returns every core to the free pool after Engine.Crash has
// unwound the processes that held them; the power trace drops to idle at
// the crash instant.
func (c *CPU) Reset() { c.res.Reset() }
