package hw

import (
	"fmt"

	"energydb/internal/energy"
	"energydb/internal/fault"
	"energydb/internal/sim"
)

// SpinState is the power state of a rotating disk. The paper's complaint
// (§2.4) is that disks "are either on (and at full performance and power)
// or off, and the transitions can be expensive" — the model captures
// exactly that: a spun-down disk draws little power but the next request
// pays a multi-second, high-power spin-up.
type SpinState int

const (
	// SpinActive: platters spinning, head serving a request.
	SpinActive SpinState = iota
	// SpinIdle: platters spinning, no request in flight.
	SpinIdle
	// SpinStandby: platters stopped; next access must spin up.
	SpinStandby
)

func (s SpinState) String() string {
	switch s {
	case SpinActive:
		return "active"
	case SpinIdle:
		return "idle"
	case SpinStandby:
		return "standby"
	default:
		return fmt.Sprintf("SpinState(%d)", int(s))
	}
}

// DiskSpec describes a rotating disk model.
type DiskSpec struct {
	Name          string
	CapacityBytes int64
	SeqReadBW     float64 // bytes/s sustained sequential read
	SeqWriteBW    float64 // bytes/s sustained sequential write
	AvgSeek       float64 // s, average seek
	RotLatency    float64 // s, average rotational latency (half a revolution)

	ActiveWatts  energy.Watts // seeking/transferring
	IdleWatts    energy.Watts // spinning, no I/O
	StandbyWatts energy.Watts // spun down
	SpinUpWatts  energy.Watts // during spin-up
	SpinUpTime   float64      // s to go standby -> spinning
}

// DiskStats counts the work a disk has done.
type DiskStats struct {
	Reads      int64
	Writes     int64
	BytesRead  int64
	BytesWrite int64
	Seeks      int64
	SpinUps    int64
	SpinDowns  int64
}

// Disk is a simulated rotating disk: one actuator (sim.Resource of
// capacity 1), a seek/rotate/transfer service-time model, spin states with
// an optional idle spin-down policy, and power accounting.
type Disk struct {
	eng   *sim.Engine
	spec  DiskSpec
	res   *sim.Resource
	trace *energy.Trace
	state SpinState

	// SpinDownAfter, if > 0, spins the disk down after that many seconds
	// without I/O. Zero (default) disables the policy, matching default
	// server firmware.
	SpinDownAfter float64

	nextOffset int64 // for sequential-access detection
	idleGen    int64
	stats      DiskStats
	fault      *fault.DeviceFault
}

// NewDisk registers a disk on the meter, initially spinning and idle.
func NewDisk(e *sim.Engine, m *energy.Meter, name string, spec DiskSpec) *Disk {
	if spec.SeqReadBW <= 0 || spec.SeqWriteBW <= 0 {
		panic(fmt.Sprintf("hw: invalid disk spec %+v", spec))
	}
	d := &Disk{
		eng:        e,
		spec:       spec,
		res:        sim.NewResource(e, name, 1),
		trace:      m.Register(name, spec.IdleWatts),
		state:      SpinIdle,
		nextOffset: -1, // head position unknown: first access seeks
	}
	return d
}

// Spec returns the disk specification.
func (d *Disk) Spec() DiskSpec { return d.spec }

// State reports the current spin state.
func (d *Disk) State() SpinState { return d.state }

// Stats returns a copy of the disk's counters.
func (d *Disk) Stats() DiskStats { return d.stats }

func (d *Disk) setState(s SpinState, w energy.Watts) {
	d.state = s
	d.trace.Set(energy.Seconds(d.eng.Now()), w)
}

// SetFault attaches a scripted fault schedule. Every subsequent request
// consults it: a dead device fails instantly, an armed transient window
// fails the request, and limp mode stretches service time. nil clears.
func (d *Disk) SetFault(f *fault.DeviceFault) { d.fault = f }

// Reset returns the disk to a quiescent idle state after Engine.Crash
// has unwound every process that could be mid-request.
func (d *Disk) Reset() {
	d.res.Reset()
	d.idleGen++
	d.nextOffset = -1
	if d.state != SpinStandby {
		d.setState(SpinIdle, d.spec.IdleWatts)
	}
}

// Read performs a read of size bytes at offset, blocking the calling
// process for the modelled service time. Sequential reads (offset equal to
// the end of the previous access) skip the seek and rotational delay.
// It fails with a typed fault error if a fault script says so.
func (d *Disk) Read(p *sim.Proc, offset, size int64) error {
	return d.access(p, offset, size, false)
}

// Write performs a write of size bytes at offset.
func (d *Disk) Write(p *sim.Proc, offset, size int64) error {
	return d.access(p, offset, size, true)
}

func (d *Disk) access(p *sim.Proc, offset, size int64, write bool) error {
	if size <= 0 {
		panic(fmt.Sprintf("hw: disk %s access of %d bytes", d.spec.Name, size))
	}
	d.res.Acquire(p, 1)
	d.idleGen++ // cancel any pending spin-down decision
	if err := d.fault.Check(p.Now()); err != nil {
		// The request dies before the actuator moves: no service time,
		// no energy beyond the idle floor the meter already charges.
		d.armSpinDown()
		d.res.Release(1)
		return err
	}

	if d.state == SpinStandby {
		d.setState(SpinActive, d.spec.SpinUpWatts)
		p.Sleep(d.spec.SpinUpTime)
		d.stats.SpinUps++
		d.nextOffset = -1 // position unknown after spin-up
		chargeOwner(p, float64(d.spec.SpinUpWatts-d.spec.IdleWatts)*d.spec.SpinUpTime)
	}
	d.setState(SpinActive, d.spec.ActiveWatts)

	service := 0.0
	if offset != d.nextOffset {
		service += d.spec.AvgSeek + d.spec.RotLatency
		d.stats.Seeks++
	}
	bw := d.spec.SeqReadBW
	if write {
		bw = d.spec.SeqWriteBW
	}
	service += float64(size) / bw
	service = d.fault.Stretch(p.Now(), service)
	p.Sleep(service)
	chargeOwner(p, float64(d.spec.ActiveWatts-d.spec.IdleWatts)*service)

	d.nextOffset = offset + size
	if write {
		d.stats.Writes++
		d.stats.BytesWrite += size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += size
	}

	d.setState(SpinIdle, d.spec.IdleWatts)
	d.armSpinDown()
	d.res.Release(1)
	return nil
}

// armSpinDown schedules the idle spin-down check. A generation counter
// invalidates the timer if any I/O arrives in the meantime.
func (d *Disk) armSpinDown() {
	if d.SpinDownAfter <= 0 {
		return
	}
	gen := d.idleGen
	d.eng.After(d.SpinDownAfter, "spindown:"+d.spec.Name, func() {
		if d.idleGen == gen && d.state == SpinIdle && d.res.InUse() == 0 {
			d.stats.SpinDowns++
			d.setState(SpinStandby, d.spec.StandbyWatts)
		}
	})
}

// Sync charges the cost of a synchronous barrier after a write: even a
// sequential append must wait on average half a rotation for the commit
// sector to come around (plus cache flush). Group commit exists to
// amortise exactly this cost.
func (d *Disk) Sync(p *sim.Proc) error {
	d.res.Acquire(p, 1)
	d.idleGen++
	if err := d.fault.Check(p.Now()); err != nil {
		d.armSpinDown()
		d.res.Release(1)
		return err
	}
	d.setState(SpinActive, d.spec.ActiveWatts)
	service := d.fault.Stretch(p.Now(), d.spec.RotLatency)
	p.Sleep(service)
	chargeOwner(p, float64(d.spec.ActiveWatts-d.spec.IdleWatts)*service)
	d.setState(SpinIdle, d.spec.IdleWatts)
	d.armSpinDown()
	d.res.Release(1)
	return nil
}

// SpinDown forces the disk to standby immediately if it is idle.
// It reports whether the transition happened.
func (d *Disk) SpinDown() bool {
	if d.state != SpinIdle || d.res.InUse() != 0 {
		return false
	}
	d.idleGen++
	d.stats.SpinDowns++
	d.setState(SpinStandby, d.spec.StandbyWatts)
	return true
}

// ReadServiceTime predicts the service time of a read without performing
// it; the optimizer's time cost model uses this.
func (d *Disk) ReadServiceTime(sequential bool, size int64) float64 {
	t := float64(size) / d.spec.SeqReadBW
	if !sequential {
		t += d.spec.AvgSeek + d.spec.RotLatency
	}
	return t
}

// SSDSpec describes a flash solid-state drive. The paper's Figure 2 uses
// three SSDs totalling 5 W — "an order of magnitude more energy efficient
// than regular hard drives".
type SSDSpec struct {
	Name          string
	CapacityBytes int64
	ReadBW        float64 // bytes/s
	WriteBW       float64 // bytes/s
	ReadLatency   float64 // s, per-request fixed overhead
	ActiveWatts   energy.Watts
	IdleWatts     energy.Watts
}

// SSD is a simulated flash drive: no seeks, no spin states.
type SSD struct {
	eng   *sim.Engine
	spec  SSDSpec
	res   *sim.Resource
	trace *energy.Trace
	stats DiskStats
	fault *fault.DeviceFault
}

// NewSSD registers an SSD on the meter.
func NewSSD(e *sim.Engine, m *energy.Meter, name string, spec SSDSpec) *SSD {
	if spec.ReadBW <= 0 || spec.WriteBW <= 0 {
		panic(fmt.Sprintf("hw: invalid SSD spec %+v", spec))
	}
	s := &SSD{
		eng:   e,
		spec:  spec,
		res:   sim.NewResource(e, name, 1),
		trace: m.Register(name, spec.IdleWatts),
	}
	s.res.OnBusyChange(func(n int) {
		w := spec.IdleWatts
		if n > 0 {
			w = spec.ActiveWatts
		}
		s.trace.Set(energy.Seconds(e.Now()), w)
	})
	return s
}

// Spec returns the SSD specification.
func (s *SSD) Spec() SSDSpec { return s.spec }

// Stats returns a copy of the SSD's counters.
func (s *SSD) Stats() DiskStats { return s.stats }

// SetFault attaches a scripted fault schedule; nil clears it.
func (s *SSD) SetFault(f *fault.DeviceFault) { s.fault = f }

// Reset returns the SSD to a quiescent state after Engine.Crash.
func (s *SSD) Reset() { s.res.Reset() }

// Read performs a read of size bytes (offset is irrelevant to timing on
// flash but kept for interface symmetry).
func (s *SSD) Read(p *sim.Proc, offset, size int64) error {
	if size <= 0 {
		panic(fmt.Sprintf("hw: ssd %s read of %d bytes", s.spec.Name, size))
	}
	s.res.Acquire(p, 1)
	if err := s.fault.Check(p.Now()); err != nil {
		s.res.Release(1)
		return err
	}
	service := s.fault.Stretch(p.Now(), s.spec.ReadLatency+float64(size)/s.spec.ReadBW)
	p.Sleep(service)
	chargeOwner(p, float64(s.spec.ActiveWatts-s.spec.IdleWatts)*service)
	s.stats.Reads++
	s.stats.BytesRead += size
	s.res.Release(1)
	return nil
}

// Write performs a write of size bytes.
func (s *SSD) Write(p *sim.Proc, offset, size int64) error {
	if size <= 0 {
		panic(fmt.Sprintf("hw: ssd %s write of %d bytes", s.spec.Name, size))
	}
	s.res.Acquire(p, 1)
	if err := s.fault.Check(p.Now()); err != nil {
		s.res.Release(1)
		return err
	}
	service := s.fault.Stretch(p.Now(), s.spec.ReadLatency+float64(size)/s.spec.WriteBW)
	p.Sleep(service)
	chargeOwner(p, float64(s.spec.ActiveWatts-s.spec.IdleWatts)*service)
	s.stats.Writes++
	s.stats.BytesWrite += size
	s.res.Release(1)
	return nil
}

// ReadServiceTime predicts a read's service time.
func (s *SSD) ReadServiceTime(size int64) float64 {
	return s.spec.ReadLatency + float64(size)/s.spec.ReadBW
}

// Sync charges a flash write barrier (one request latency).
func (s *SSD) Sync(p *sim.Proc) error {
	s.res.Acquire(p, 1)
	if err := s.fault.Check(p.Now()); err != nil {
		s.res.Release(1)
		return err
	}
	service := s.fault.Stretch(p.Now(), s.spec.ReadLatency)
	p.Sleep(service)
	chargeOwner(p, float64(s.spec.ActiveWatts-s.spec.IdleWatts)*service)
	s.res.Release(1)
	return nil
}
