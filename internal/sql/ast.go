package sql

import "energydb/internal/table"

// Stmt is a parsed statement: exactly one field is set.
type Stmt struct {
	Select  *SelectStmt
	Create  *CreateStmt
	Insert  *InsertStmt
	Explain bool // EXPLAIN prefix on a SELECT
}

// SelectStmt is a single-block SELECT.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Joins   []JoinClause
	Where   []WherePred // conjunction
	GroupBy []ColName
	OrderBy []OrderItem
	Limit   int64 // -1 = absent
}

// SelectItem is one output: a star, an expression, or an aggregate call.
type SelectItem struct {
	Star bool
	Expr *AstExpr
	Agg  *AggCall
	As   string
}

// AggCall is COUNT(*) / SUM(e) / MIN(e) / MAX(e) / AVG(e).
type AggCall struct {
	Func string // upper-case
	Star bool
	Arg  *AstExpr
}

// TableRef names a relation with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// JoinClause is JOIN <table> ON <a> = <b>.
type JoinClause struct {
	Table TableRef
	Left  ColName
	Right ColName
}

// ColName is a possibly-qualified column reference.
type ColName struct {
	Table string
	Col   string
}

// WherePred is one conjunct: column <op> (literal | column).
type WherePred struct {
	Left  ColName
	Op    string // = <> < <= > >=
	Lit   *table.Value
	Right *ColName
}

// OrderItem names an output column (by alias or position) with direction.
type OrderItem struct {
	Name string // output name; empty when Pos used
	Pos  int    // 1-based output position; 0 when Name used
	Desc bool
}

// AstExpr is an arithmetic expression over columns and literals.
type AstExpr struct {
	Col *ColName
	Lit *table.Value
	Op  string // + - * /
	L   *AstExpr
	R   *AstExpr
}

// CreateStmt is CREATE TABLE name (col type, ...).
type CreateStmt struct {
	Name string
	Cols []table.Column
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]table.Value
}
