package sql

import (
	"errors"
	"testing"
	"testing/quick"

	"energydb/internal/exec"
	"energydb/internal/table"
)

func testSchemas() SchemaLookup {
	orders := table.NewSchema("orders",
		table.Col("o_orderkey", table.Int64),
		table.Col("o_custkey", table.Int64),
		table.Col("o_totalprice", table.Float64),
		table.Col("o_orderdate", table.Date),
		table.ColW("o_orderpriority", table.String, 15),
	)
	customer := table.NewSchema("customer",
		table.Col("c_custkey", table.Int64),
		table.ColW("c_name", table.String, 18),
	)
	m := map[string]*table.Schema{"orders": orders, "customer": customer}
	return func(rel string) (*table.Schema, bool) {
		s, ok := m[rel]
		return s, ok
	}
}

func mustBind(t *testing.T, src string) *SelectStmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if st.Select == nil {
		t.Fatalf("not a select: %q", src)
	}
	return st.Select
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustBind(t, "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 100.5 LIMIT 10")
	if len(sel.Items) != 2 || len(sel.From) != 1 || sel.Limit != 10 {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.Where[0].Op != ">" || sel.Where[0].Lit.F != 100.5 {
		t.Fatalf("where = %+v", sel.Where[0])
	}
}

func TestParseAggregatesAndGrouping(t *testing.T) {
	sel := mustBind(t, `
		SELECT o_orderpriority, COUNT(*) AS n, SUM(o_totalprice) AS rev
		FROM orders
		GROUP BY o_orderpriority
		ORDER BY rev DESC, 1 ASC
		LIMIT 5`)
	if !sel.Items[1].Agg.Star || sel.Items[1].Agg.Func != "COUNT" {
		t.Fatalf("count(*) = %+v", sel.Items[1])
	}
	if sel.OrderBy[0].Name != "rev" || !sel.OrderBy[0].Desc {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
	if sel.OrderBy[1].Pos != 1 || sel.OrderBy[1].Desc {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
}

func TestParseJoin(t *testing.T) {
	sel := mustBind(t, `
		SELECT c.c_name, o.o_totalprice
		FROM customer c
		JOIN orders o ON c.c_custkey = o.o_custkey
		WHERE o.o_totalprice >= 1000`)
	if len(sel.Joins) != 1 || sel.Joins[0].Left.Col != "c_custkey" {
		t.Fatalf("joins = %+v", sel.Joins)
	}
}

func TestParseBetweenAndDate(t *testing.T) {
	sel := mustBind(t, `SELECT o_orderkey FROM orders
		WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'`)
	if len(sel.Where) != 2 {
		t.Fatalf("between should expand to 2 preds: %+v", sel.Where)
	}
	lo, _ := ParseDate("1995-01-01")
	if sel.Where[0].Lit.I != lo || sel.Where[0].Op != ">=" {
		t.Fatalf("between lower = %+v", sel.Where[0])
	}
}

func TestDateRoundTrip(t *testing.T) {
	f := func(d uint16) bool {
		days := int64(d)
		back, err := ParseDate(FormatDate(days))
		return err == nil && back == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseArithmetic(t *testing.T) {
	sel := mustBind(t, "SELECT o_totalprice * (1 - 0.05) AS discounted FROM orders")
	e := sel.Items[0].Expr
	if e.Op != "*" || e.R.Op != "-" {
		t.Fatalf("precedence wrong: %+v", e)
	}
}

func TestParseCreateAndInsert(t *testing.T) {
	st, err := Parse("CREATE TABLE t (a BIGINT, b DOUBLE, c VARCHAR(12), d DATE)")
	if err != nil {
		t.Fatal(err)
	}
	if st.Create == nil || len(st.Create.Cols) != 4 {
		t.Fatalf("create = %+v", st.Create)
	}
	if st.Create.Cols[2].Width != 12 || st.Create.Cols[2].Type != table.String {
		t.Fatalf("varchar = %+v", st.Create.Cols[2])
	}

	st, err = Parse("INSERT INTO t VALUES (1, 2.5, 'x', DATE '2000-01-01'), (2, 3.5, 'y', DATE '2000-01-02')")
	if err != nil {
		t.Fatal(err)
	}
	if st.Insert == nil || len(st.Insert.Rows) != 2 || len(st.Insert.Rows[0]) != 4 {
		t.Fatalf("insert = %+v", st.Insert)
	}
	if st.Insert.Rows[0][3].Type != table.Date {
		t.Fatalf("date literal = %+v", st.Insert.Rows[0][3])
	}
}

func TestParseExplain(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT * FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain || st.Select == nil {
		t.Fatalf("explain = %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT x FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ~ 3",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t extra garbage here ,",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"CREATE TABLE t (a WIBBLE)",
		"SELECT SUM(*) FROM t",
		"SELECT a, 1.2.3 FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBindSimple(t *testing.T) {
	sel := mustBind(t, "SELECT o_orderkey FROM orders WHERE o_custkey = 7")
	q, err := Bind(sel, testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Rels["orders"] != "orders" {
		t.Fatalf("tables = %+v", q)
	}
	if q.Preds[0].Left.Col != "o_custkey" || q.Preds[0].Val.I != 7 {
		t.Fatalf("pred = %+v", q.Preds[0])
	}
	if q.Outputs[0].As != "o_orderkey" {
		t.Fatalf("output = %+v", q.Outputs[0])
	}
}

func TestBindQualifiedAndJoin(t *testing.T) {
	sel := mustBind(t, `SELECT c.c_name, COUNT(*) AS n FROM customer c
		JOIN orders o ON c.c_custkey = o.o_custkey
		GROUP BY c.c_name`)
	q, err := Bind(sel, testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || !q.Preds[0].IsJoin {
		t.Fatalf("join pred = %+v", q.Preds)
	}
	if !q.HasAggs() || len(q.GroupBy) != 1 {
		t.Fatalf("agg binding = %+v", q)
	}
}

func TestBindCoercion(t *testing.T) {
	// Int literal against a float column must coerce.
	sel := mustBind(t, "SELECT o_orderkey FROM orders WHERE o_totalprice > 100")
	q, err := Bind(sel, testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Val.Type != table.Float64 || q.Preds[0].Val.F != 100 {
		t.Fatalf("coerced literal = %+v", q.Preds[0].Val)
	}
}

func TestBindStar(t *testing.T) {
	sel := mustBind(t, "SELECT * FROM customer")
	q, err := Bind(sel, testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Outputs) != 2 {
		t.Fatalf("star outputs = %d", len(q.Outputs))
	}
}

func TestBindErrors(t *testing.T) {
	cases := []string{
		"SELECT ghost FROM orders",                                         // unknown column
		"SELECT o_orderkey FROM nope",                                      // unknown table
		"SELECT c_custkey FROM customer c, customer d",                     // dup alias col ambiguous
		"SELECT o_orderkey, COUNT(*) AS n FROM orders",                     // non-grouped output
		"SELECT o_orderkey FROM orders ORDER BY ghost",                     // unknown order name
		"SELECT o_orderkey FROM orders WHERE o_orderpriority = 5",          // type mismatch
		"SELECT o_orderkey FROM orders WHERE o_orderkey = o_orderpriority", // cross-class compare
		"SELECT * , COUNT(*) FROM orders",                                  // star with aggregate
	}
	for _, src := range cases {
		sel := mustBind(t, src)
		if _, err := Bind(sel, testSchemas()); err == nil {
			t.Errorf("Bind(%q) should fail", src)
		}
	}
}

func TestBindDuplicateAlias(t *testing.T) {
	sel := mustBind(t, "SELECT 1 FROM orders o, customer o")
	if _, err := Bind(sel, testSchemas()); !errors.Is(err, ErrDuplicateAlias) {
		t.Fatalf("err = %v", err)
	}
}

func TestBindAggExprArgument(t *testing.T) {
	sel := mustBind(t, "SELECT SUM(o_totalprice * 2) AS dbl FROM orders")
	q, err := Bind(sel, testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if q.Outputs[0].Agg == nil || q.Outputs[0].Agg.Func != exec.Sum {
		t.Fatalf("agg = %+v", q.Outputs[0])
	}
	if q.Outputs[0].Agg.Arg.Op != exec.Mul {
		t.Fatalf("agg arg = %+v", q.Outputs[0].Agg.Arg)
	}
}
