// Package sql is the SQL front end: a lexer, a recursive-descent parser
// for a single-block SELECT dialect (plus CREATE TABLE / INSERT for the
// REPL), and a binder that resolves names against a catalog of schemas and
// produces the optimizer's query IR.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // ( ) , . = <> <= >= < > * + - /
)

type token struct {
	kind tokKind
	text string // keywords are upper-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "GROUP": true, "BY": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "AS": true, "JOIN": true, "ON": true,
	"INNER": true, "CREATE": true, "TABLE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "DATE": true, "INT": true, "BIGINT": true,
	"FLOAT": true, "DOUBLE": true, "VARCHAR": true, "CHAR": true,
	"DECIMAL": true, "TEXT": true, "EXPLAIN": true, "BETWEEN": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises src, returning a descriptive error with byte position on
// invalid input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexWord()
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.emit(tokKeyword, up)
		return
	}
	l.emit(tokIdent, word)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("sql: malformed number at byte %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	if seenDot {
		l.emit(tokFloat, l.src[start:l.pos])
	} else {
		l.emit(tokInt, l.src[start:l.pos])
	}
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String())
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at byte %d", start)
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		if two == "!=" {
			two = "<>"
		}
		l.emit(tokSymbol, two)
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '=', '<', '>', '*', '+', '-', '/', ';':
		l.emit(tokSymbol, string(c))
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at byte %d", c, l.pos)
}
