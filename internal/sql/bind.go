package sql

import (
	"errors"
	"fmt"

	"energydb/internal/exec"
	"energydb/internal/opt"
	"energydb/internal/table"
)

// ErrDuplicateAlias is the sentinel Bind wraps when two FROM items share an
// alias; match with errors.Is, not the message.
var ErrDuplicateAlias = errors.New("sql: duplicate alias")

// SchemaLookup resolves a relation name to its schema.
type SchemaLookup func(rel string) (*table.Schema, bool)

// Bind resolves a parsed SELECT against the catalog and produces the
// optimizer's query IR.
func Bind(sel *SelectStmt, lookup SchemaLookup) (*opt.Query, error) {
	b := &binder{sel: sel, lookup: lookup}
	return b.run()
}

type binder struct {
	sel    *SelectStmt
	lookup SchemaLookup

	aliases []string
	rels    map[string]string
	schemas map[string]*table.Schema
}

func (b *binder) run() (*opt.Query, error) {
	if err := b.bindTables(); err != nil {
		return nil, err
	}
	q := &opt.Query{
		Tables: b.aliases,
		Rels:   b.rels,
		Limit:  b.sel.Limit,
	}

	// WHERE and JOIN ... ON conjuncts.
	for _, w := range b.sel.Where {
		p, err := b.bindPred(w)
		if err != nil {
			return nil, err
		}
		q.Preds = append(q.Preds, *p)
	}
	for _, j := range b.sel.Joins {
		l, _, err := b.resolve(j.Left)
		if err != nil {
			return nil, err
		}
		r, _, err := b.resolve(j.Right)
		if err != nil {
			return nil, err
		}
		q.Preds = append(q.Preds, opt.PredIR{Left: l, Op: exec.Eq, Right: r, IsJoin: true})
	}

	// GROUP BY first (outputs validate against it).
	groupSet := map[opt.ColRef]bool{}
	for _, g := range b.sel.GroupBy {
		c, _, err := b.resolve(g)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, c)
		groupSet[c] = true
	}

	// Select list.
	hasAgg := false
	for _, item := range b.sel.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	aggIdx := 0
	for i, item := range b.sel.Items {
		switch {
		case item.Star:
			if hasAgg {
				return nil, fmt.Errorf("sql: * cannot appear with aggregates")
			}
			for _, a := range b.aliases {
				for _, c := range b.schemas[a].Cols {
					ref := opt.ColRef{Table: a, Col: c.Name}
					q.Outputs = append(q.Outputs, opt.OutputIR{
						Expr: &opt.ExprIR{Col: &ref}, As: c.Name,
					})
				}
			}
		case item.Agg != nil:
			ag, err := b.bindAgg(item.Agg)
			if err != nil {
				return nil, err
			}
			as := item.As
			if as == "" {
				as = fmt.Sprintf("%v_%d", ag.Func, aggIdx)
			}
			ag.As = as
			aggIdx++
			q.Outputs = append(q.Outputs, opt.OutputIR{Agg: ag, As: as})
		default:
			e, err := b.bindExpr(item.Expr)
			if err != nil {
				return nil, err
			}
			if hasAgg {
				if e.Col == nil || !groupSet[*e.Col] {
					return nil, fmt.Errorf("sql: output %d must be an aggregate or a GROUP BY column", i+1)
				}
			}
			as := item.As
			if as == "" && e.Col != nil {
				as = e.Col.Col
			}
			if as == "" {
				as = fmt.Sprintf("col%d", i)
			}
			q.Outputs = append(q.Outputs, opt.OutputIR{Expr: e, As: as})
		}
	}

	// ORDER BY resolves against output names/positions.
	for _, ob := range b.sel.OrderBy {
		idx := -1
		if ob.Pos > 0 {
			idx = ob.Pos - 1
		} else {
			for i, out := range q.Outputs {
				if out.As == ob.Name {
					idx = i
					break
				}
			}
		}
		if idx < 0 || idx >= len(q.Outputs) {
			return nil, fmt.Errorf("sql: ORDER BY references unknown output %q", ob.Name)
		}
		q.OrderBy = append(q.OrderBy, opt.OrderIR{Output: idx, Desc: ob.Desc})
	}
	return q, nil
}

func (b *binder) bindTables() error {
	b.rels = make(map[string]string)
	b.schemas = make(map[string]*table.Schema)
	add := func(tr TableRef) error {
		s, ok := b.lookup(tr.Name)
		if !ok {
			return fmt.Errorf("sql: unknown table %q", tr.Name)
		}
		if _, dup := b.rels[tr.Alias]; dup {
			return fmt.Errorf("%w %q", ErrDuplicateAlias, tr.Alias)
		}
		b.aliases = append(b.aliases, tr.Alias)
		b.rels[tr.Alias] = tr.Name
		b.schemas[tr.Alias] = s
		return nil
	}
	for _, tr := range b.sel.From {
		if err := add(tr); err != nil {
			return err
		}
	}
	for _, j := range b.sel.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	return nil
}

// resolve maps a possibly-unqualified column to (alias, col) and its type.
func (b *binder) resolve(c ColName) (opt.ColRef, table.Type, error) {
	if c.Table != "" {
		s, ok := b.schemas[c.Table]
		if !ok {
			return opt.ColRef{}, 0, fmt.Errorf("sql: unknown alias %q", c.Table)
		}
		i := s.ColIndex(c.Col)
		if i < 0 {
			return opt.ColRef{}, 0, fmt.Errorf("sql: table %q has no column %q", c.Table, c.Col)
		}
		return opt.ColRef{Table: c.Table, Col: c.Col}, s.Cols[i].Type, nil
	}
	var found opt.ColRef
	var ft table.Type
	matches := 0
	for _, a := range b.aliases {
		if i := b.schemas[a].ColIndex(c.Col); i >= 0 {
			found = opt.ColRef{Table: a, Col: c.Col}
			ft = b.schemas[a].Cols[i].Type
			matches++
		}
	}
	switch matches {
	case 0:
		return opt.ColRef{}, 0, fmt.Errorf("sql: unknown column %q", c.Col)
	case 1:
		return found, ft, nil
	default:
		return opt.ColRef{}, 0, fmt.Errorf("sql: ambiguous column %q", c.Col)
	}
}

func cmpOpOf(s string) (exec.CmpOp, error) {
	switch s {
	case "=":
		return exec.Eq, nil
	case "<>":
		return exec.Ne, nil
	case "<":
		return exec.Lt, nil
	case "<=":
		return exec.Le, nil
	case ">":
		return exec.Gt, nil
	case ">=":
		return exec.Ge, nil
	default:
		return 0, fmt.Errorf("sql: unknown operator %q", s)
	}
}

func (b *binder) bindPred(w WherePred) (*opt.PredIR, error) {
	op, err := cmpOpOf(w.Op)
	if err != nil {
		return nil, err
	}
	l, lt, err := b.resolve(w.Left)
	if err != nil {
		return nil, err
	}
	if w.Right != nil {
		r, rt, err := b.resolve(*w.Right)
		if err != nil {
			return nil, err
		}
		if lt.Physical() != rt.Physical() {
			return nil, fmt.Errorf("sql: cannot compare %v with %v", lt, rt)
		}
		return &opt.PredIR{Left: l, Op: op, Right: r, IsJoin: true}, nil
	}
	v, err := coerce(*w.Lit, lt)
	if err != nil {
		return nil, err
	}
	return &opt.PredIR{Left: l, Op: op, Val: v}, nil
}

// coerce adapts a literal to a column's type (int literals compare against
// float columns, decimals are scaled, etc.).
func coerce(v table.Value, target table.Type) (table.Value, error) {
	if v.Type.Physical() == target.Physical() {
		v.Type = target
		return v, nil
	}
	switch {
	case target.Physical() == table.PhysFloat && v.Type.Physical() == table.PhysInt:
		return table.FloatVal(float64(v.I)), nil
	case target == table.Decimal && v.Type == table.Float64:
		return table.DecimalVal(int64(v.F * 100)), nil
	case target.Physical() == table.PhysInt && v.Type == table.Float64:
		return table.Value{Type: target, I: int64(v.F)}, nil
	default:
		return v, fmt.Errorf("sql: cannot use %v literal for %v column", v.Type, target)
	}
}

func (b *binder) bindAgg(a *AggCall) (*opt.AggIR, error) {
	var fn exec.AggFunc
	switch a.Func {
	case "COUNT":
		fn = exec.Count
	case "SUM":
		fn = exec.Sum
	case "MIN":
		fn = exec.Min
	case "MAX":
		fn = exec.Max
	case "AVG":
		fn = exec.Avg
	default:
		return nil, fmt.Errorf("sql: unknown aggregate %q", a.Func)
	}
	out := &opt.AggIR{Func: fn}
	if !a.Star {
		e, err := b.bindExpr(a.Arg)
		if err != nil {
			return nil, err
		}
		out.Arg = e
	} else if fn != exec.Count {
		return nil, fmt.Errorf("sql: %s(*) is not valid", a.Func)
	}
	return out, nil
}

func (b *binder) bindExpr(e *AstExpr) (*opt.ExprIR, error) {
	switch {
	case e.Col != nil:
		c, _, err := b.resolve(*e.Col)
		if err != nil {
			return nil, err
		}
		return &opt.ExprIR{Col: &c}, nil
	case e.Lit != nil:
		v := *e.Lit
		return &opt.ExprIR{Const: &v}, nil
	default:
		l, err := b.bindExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(e.R)
		if err != nil {
			return nil, err
		}
		var op exec.ArithOp
		switch e.Op {
		case "+":
			op = exec.Add
		case "-":
			op = exec.Sub
		case "*":
			op = exec.Mul
		case "/":
			op = exec.Div
		default:
			return nil, fmt.Errorf("sql: unknown arithmetic operator %q", e.Op)
		}
		return &opt.ExprIR{Op: op, L: l, R: r}, nil
	}
}
