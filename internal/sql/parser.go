package sql

import (
	"fmt"
	"strconv"
	"time"

	"energydb/internal/table"
)

// Parse parses one SQL statement.
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		t := p.cur()
		p.i++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at byte %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) parseStmt() (*Stmt, error) {
	switch {
	case p.accept(tokKeyword, "EXPLAIN"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Stmt{Select: sel, Explain: true}, nil
	case p.at(tokKeyword, "SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Stmt{Select: sel}, nil
	case p.accept(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	default:
		return nil, p.errf("expected SELECT, CREATE, INSERT or EXPLAIN")
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	// FROM.
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, *tr)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	// JOIN ... ON a = b (INNER only).
	for {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		l, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		r, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: *tr, Left: *l, Right: *r})
	}

	// WHERE (conjunction of simple comparisons).
	if p.accept(tokKeyword, "WHERE") {
		for {
			pred, err := p.parseWherePred()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, pred...)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}

	// GROUP BY.
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, *c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	// ORDER BY.
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			var item OrderItem
			if p.at(tokInt, "") {
				n, _ := strconv.Atoi(p.cur().text)
				p.i++
				item.Pos = n
			} else {
				c, err := p.parseColName()
				if err != nil {
					return nil, err
				}
				if c.Table != "" {
					return nil, p.errf("ORDER BY takes output names, not qualified columns")
				}
				item.Name = c.Col
			}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	// LIMIT.
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return &SelectItem{Star: true}, nil
	}
	// Aggregate call?
	if p.cur().kind == tokKeyword {
		switch p.cur().text {
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			fn := p.cur().text
			p.i++
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			agg := &AggCall{Func: fn}
			if p.accept(tokSymbol, "*") {
				if fn != "COUNT" {
					return nil, p.errf("%s(*) is not valid", fn)
				}
				agg.Star = true
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				agg.Arg = e
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			item := &SelectItem{Agg: agg}
			item.As = p.parseAlias()
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	item.As = p.parseAlias()
	return item, nil
}

func (p *parser) parseAlias() string {
	if p.accept(tokKeyword, "AS") {
		if p.cur().kind == tokIdent {
			a := p.cur().text
			p.i++
			return a
		}
	} else if p.cur().kind == tokIdent {
		a := p.cur().text
		p.i++
		return a
	}
	return ""
}

func (p *parser) parseTableRef() (*TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Name: t.text, Alias: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		tr.Alias = a.text
	} else if p.cur().kind == tokIdent {
		tr.Alias = p.cur().text
		p.i++
	}
	return tr, nil
}

func (p *parser) parseColName() (*ColName, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	c := &ColName{Col: t.text}
	if p.accept(tokSymbol, ".") {
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		c.Table = t.text
		c.Col = t2.text
	}
	return c, nil
}

// parseWherePred parses one comparison, expanding BETWEEN to two preds.
func (p *parser) parseWherePred() ([]WherePred, error) {
	l, err := p.parseColName()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return []WherePred{
			{Left: *l, Op: ">=", Lit: lo},
			{Left: *l, Op: "<=", Lit: hi},
		}, nil
	}
	opTok := p.cur()
	switch opTok.text {
	case "=", "<>", "<", "<=", ">", ">=":
		p.i++
	default:
		return nil, p.errf("expected comparison operator, found %q", opTok.text)
	}
	pred := WherePred{Left: *l, Op: opTok.text}
	if p.cur().kind == tokIdent {
		r, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		pred.Right = r
		return []WherePred{pred}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	pred.Lit = lit
	return []WherePred{pred}, nil
}

// parseLiteral parses an int, float, string or DATE 'YYYY-MM-DD' literal.
func (p *parser) parseLiteral() (*table.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		v := table.IntVal(n)
		return &v, nil
	case t.kind == tokFloat:
		p.i++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		v := table.FloatVal(f)
		return &v, nil
	case t.kind == tokString:
		p.i++
		v := table.StrVal(t.text)
		return &v, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.i++
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		days, err := ParseDate(s.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		v := table.DateVal(days)
		return &v, nil
	case t.kind == tokSymbol && t.text == "-":
		p.i++
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		switch v.Type.Physical() {
		case table.PhysInt:
			v.I = -v.I
		case table.PhysFloat:
			v.F = -v.F
		default:
			return nil, p.errf("cannot negate a string")
		}
		return v, nil
	default:
		return nil, p.errf("expected literal, found %q", t.text)
	}
}

// ParseDate converts 'YYYY-MM-DD' to days since 1970-01-01.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sql: bad date %q", s)
	}
	return t.Unix() / 86400, nil
}

// FormatDate converts days since 1970-01-01 back to 'YYYY-MM-DD'.
func FormatDate(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}

// parseExpr parses + and - over terms.
func (p *parser) parseExpr() (*AstExpr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &AstExpr{Op: "+", L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &AstExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseTerm() (*AstExpr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &AstExpr{Op: "*", L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &AstExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseFactor() (*AstExpr, error) {
	if p.accept(tokSymbol, "(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.cur().kind == tokIdent {
		c, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		return &AstExpr{Col: c}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &AstExpr{Lit: lit}, nil
}

func (p *parser) parseCreate() (*Stmt, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	cs := &CreateStmt{Name: name.text}
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ty, width, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if width > 0 {
			cs.Cols = append(cs.Cols, table.ColW(cn.text, ty, width))
		} else {
			cs.Cols = append(cs.Cols, table.Col(cn.text, ty))
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &Stmt{Create: cs}, nil
}

func (p *parser) parseType() (table.Type, int, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return 0, 0, p.errf("expected type, found %q", t.text)
	}
	p.i++
	switch t.text {
	case "INT", "BIGINT":
		return table.Int64, 0, nil
	case "FLOAT", "DOUBLE":
		return table.Float64, 0, nil
	case "DATE":
		return table.Date, 0, nil
	case "DECIMAL":
		return table.Decimal, 0, nil
	case "TEXT":
		return table.String, 0, nil
	case "VARCHAR", "CHAR":
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return 0, 0, err
		}
		n, err := p.expect(tokInt, "")
		if err != nil {
			return 0, 0, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return 0, 0, err
		}
		w, _ := strconv.Atoi(n.text)
		return table.String, w, nil
	default:
		return 0, 0, p.errf("unknown type %q", t.text)
	}
}

func (p *parser) parseInsert() (*Stmt, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name.text}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []table.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, *v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return &Stmt{Insert: ins}, nil
}
