// Package server is the engine's network front door: a TCP (or, in
// tests, net.Pipe) server speaking the wire protocol over one core.DB.
// Each connection authenticates with a tenant ID, opens sessions mapped
// to core.Session, and streams statements through the existing admission
// controller; result batches flow back one per FETCH in the columnar
// wire encoding, and typed fault errors survive as wire codes.
//
// The engine is a single-threaded discrete-event simulation, so the
// server serializes every request — whatever connection it arrived on —
// under one mutex. Connections are goroutine-per-conn for I/O, but the
// database only ever sees one request at a time; a deterministic driver
// (one goroutine, one connection at a time) therefore gets bit-identical
// runs, while concurrent drivers get correctness without determinism.
//
// Per-tenant billing happens here, not in the client: every statement a
// tenant submits keeps its settled energy account on the server, and the
// METER frame rolls them into a report whose tenant sums plus the
// unattributed idle floor equal the wall meter exactly — the attribution
// invariant extended across the wire.
package server

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"energydb/internal/core"
	"energydb/internal/sql"
	"energydb/internal/wire"
)

// Server serves one core.DB to many connections.
type Server struct {
	db *core.DB

	// mu serializes all engine access: the simulation is single-threaded
	// and lazy-pumped, so every request — on any connection — runs under
	// it, as do disconnect teardowns.
	mu sync.Mutex

	bills map[string]*tenantBill

	// caches holds one shared prepared-plan cache per tenant: every
	// connection a tenant opens prepares through its cache, so a fleet of
	// identical clients parses, binds, and plans each statement once.
	// Per-tenant (not global) because plan reuse must not couple tenants:
	// one tenant's epoch invalidations and statistics stay its own.
	caches map[string]*core.PlanCache

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// tenantBill accumulates one tenant's statements across all of its
// connections, living past connection teardown so disconnects never lose
// billed energy.
type tenantBill struct {
	queries []*core.Rows
	inserts []*core.Deferred
}

// New returns a server over db. The caller must not drive db directly
// while connections are being served (the embedded path and the served
// path share one single-threaded engine).
func New(db *core.DB) *Server {
	return &Server{db: db,
		bills:  map[string]*tenantBill{},
		caches: map[string]*core.PlanCache{}}
}

// Listen starts accepting TCP connections on addr (e.g. "127.0.0.1:0")
// and serves each on its own goroutine until Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.ServeConn(c)
			}()
		}
	}()
	return nil
}

// Addr reports the listening address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Pipe returns an in-process connection to the server: the other end of
// a net.Pipe being served on its own goroutine. Tests and embedded
// drivers use it to run the full wire protocol with no sockets.
func (s *Server) Pipe() net.Conn {
	client, srv := net.Pipe()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.ServeConn(srv)
	}()
	return client
}

// Close stops the listener and waits for in-flight connections to drain.
// Connections opened via Pipe are closed by their clients.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// MeterReport settles the energy ledger and builds the per-tenant bill:
// each tenant's attributed joules summed over every statement it ever
// submitted, the unattributed idle floor, and the wall meter they add up
// to. Tenants are sorted for deterministic output.
func (s *Server) MeterReport() wire.MeterReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meterReportLocked()
}

func (s *Server) meterReportLocked() wire.MeterReport {
	meterJ, unattrJ := s.db.Ledger()
	m := wire.MeterReport{
		Now:           s.db.Srv.Eng.Now(),
		MeterJ:        float64(meterJ),
		UnattributedJ: float64(unattrJ),
	}
	names := make([]string, 0, len(s.bills))
	for n := range s.bills {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := s.bills[n]
		t := wire.TenantBill{Tenant: n}
		for _, r := range b.queries {
			t.AttributedJ += float64(r.Attributed())
			t.Queries++
		}
		for _, d := range b.inserts {
			t.AttributedJ += float64(d.Attributed())
			t.Inserts++
		}
		m.Tenants = append(m.Tenants, t)
	}
	return m
}

// bill returns (creating on first use) a tenant's bill. Callers hold mu.
func (s *Server) bill(tenant string) *tenantBill {
	b := s.bills[tenant]
	if b == nil {
		b = &tenantBill{}
		s.bills[tenant] = b
	}
	return b
}

// planCache returns (creating on first use) a tenant's shared prepared
// statement cache. Callers hold mu.
func (s *Server) planCache(tenant string) *core.PlanCache {
	c := s.caches[tenant]
	if c == nil {
		c = core.NewPlanCache()
		s.caches[tenant] = c
	}
	return c
}

// PlanCacheStats sums prepare hits and misses across all tenants' caches
// — the reuse counter the consolidation benchmarks report.
func (s *Server) PlanCacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.caches {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// conn is one connection's protocol state. All fields are touched only
// by the connection's own goroutine; the db behind them only under
// srv.mu.
type conn struct {
	srv    *Server
	rw     net.Conn
	tenant string

	sessions map[uint64]*core.Session
	stmts    map[uint64]*stmtState
	queries  map[uint64]*core.Rows
	nextID   uint64
}

type stmtState struct {
	stmt *core.Stmt
	sess uint64
}

// ServeConn speaks the wire protocol on c until EOF or a protocol error,
// then tears the connection down: every live Rows is closed (cancelling
// still-running queries at their next batch boundary, so a drain leaves
// zero live processes) and every session is closed. It blocks; callers
// own the goroutine.
func (s *Server) ServeConn(c net.Conn) {
	cn := &conn{
		srv: s, rw: c,
		sessions: map[uint64]*core.Session{},
		stmts:    map[uint64]*stmtState{},
		queries:  map[uint64]*core.Rows{},
	}
	defer cn.teardown()
	defer c.Close()

	if err := cn.handshake(); err != nil {
		return
	}
	for {
		typ, body, err := wire.ReadFrame(c)
		if err != nil {
			return // EOF, torn frame, or closed conn: teardown handles state
		}
		if err := cn.handle(typ, body); err != nil {
			// Protocol-level failure: report it if the pipe still works,
			// then drop the connection.
			_ = cn.reply(wire.MsgError, wire.AppendStr(
				wire.AppendU32(nil, wire.CodeProtocol), err.Error()))
			return
		}
	}
}

// teardown is the disconnect path: close every statement the connection
// still tracks. Rows.Close cancels running queries at their next batch
// boundary and dequeues queued ones, so no process of this connection's
// survives the next drain; settled accounts stay on the tenant's bill.
func (cn *conn) teardown() {
	cn.srv.mu.Lock()
	defer cn.srv.mu.Unlock()
	for _, r := range cn.queries {
		_ = r.Close()
	}
	for _, sess := range cn.sessions {
		_ = sess.Close()
	}
	cn.queries, cn.sessions, cn.stmts = nil, nil, nil
}

func (cn *conn) handshake() error {
	typ, body, err := wire.ReadFrame(cn.rw)
	if err != nil {
		return err
	}
	r := wire.NewReader(body)
	if typ != wire.MsgHello {
		return fmt.Errorf("server: first frame %d, want Hello", typ)
	}
	ver := r.U32()
	tenant := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	if ver != wire.Version {
		_ = cn.reply(wire.MsgError, wire.AppendStr(wire.AppendU32(nil, wire.CodeProtocol),
			fmt.Sprintf("server: protocol version %d, want %d", ver, wire.Version)))
		return fmt.Errorf("server: version mismatch")
	}
	if tenant == "" {
		tenant = "default"
	}
	cn.tenant = tenant
	return cn.reply(wire.MsgWelcome, wire.AppendU32(ok(nil), wire.Version))
}

// ok appends a success code and empty message — the standard reply
// prefix.
func ok(dst []byte) []byte {
	return wire.AppendStr(wire.AppendU32(dst, wire.CodeOK), "")
}

// fail appends err's code and message as a reply prefix.
func fail(dst []byte, err error) []byte {
	return wire.AppendStr(wire.AppendU32(dst, wire.CodeFor(err)), err.Error())
}

func (cn *conn) reply(typ byte, body []byte) error {
	return wire.WriteFrame(cn.rw, typ, body)
}

// handle dispatches one request frame. A returned error is a protocol
// violation (malformed body, unknown statement id) and kills the
// connection; statement-level failures travel back as error codes in the
// reply.
func (cn *conn) handle(typ byte, body []byte) error {
	r := wire.NewReader(body)
	switch typ {
	case wire.MsgSessionOpen:
		cn.srv.mu.Lock()
		sess := cn.srv.db.Session()
		cn.srv.mu.Unlock()
		cn.nextID++
		cn.sessions[cn.nextID] = sess
		return cn.reply(wire.MsgSessionOK, wire.AppendU64(ok(nil), cn.nextID))

	case wire.MsgSessionClose:
		sid := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		sess := cn.sessions[sid]
		if sess == nil {
			return fmt.Errorf("server: close of unknown session %d", sid)
		}
		cn.srv.mu.Lock()
		_ = sess.Close()
		cn.srv.mu.Unlock()
		delete(cn.sessions, sid)
		return cn.reply(wire.MsgOK, ok(nil))

	case wire.MsgPrepare:
		sid := r.U64()
		text := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		sess := cn.sessions[sid]
		if sess == nil {
			return fmt.Errorf("server: prepare on unknown session %d", sid)
		}
		cn.srv.mu.Lock()
		st, err := sess.PrepareCached(cn.srv.planCache(cn.tenant), text)
		cn.srv.mu.Unlock()
		if err != nil {
			return cn.reply(wire.MsgPrepared, wire.AppendU64(fail(nil, err), 0))
		}
		cn.nextID++
		cn.stmts[cn.nextID] = &stmtState{stmt: st, sess: sid}
		return cn.reply(wire.MsgPrepared, wire.AppendU64(ok(nil), cn.nextID))

	case wire.MsgExecute:
		stid := r.U64()
		flags := r.U8()
		at := r.F64()
		deadline := r.F64()
		if r.Err() != nil {
			return r.Err()
		}
		st := cn.stmts[stid]
		if st == nil {
			return fmt.Errorf("server: execute of unknown statement %d", stid)
		}
		cn.srv.mu.Lock()
		rows, err := st.stmt.QueryAtDeadline(at, deadline)
		if err == nil {
			if flags&wire.FlagDiscard != 0 {
				rows.Discard()
			}
			cn.srv.bill(cn.tenant).queries = append(cn.srv.bill(cn.tenant).queries, rows)
		}
		cn.srv.mu.Unlock()
		if err != nil {
			return cn.reply(wire.MsgExecuted, wire.AppendU64(fail(nil, err), 0))
		}
		cn.nextID++
		cn.queries[cn.nextID] = rows
		return cn.reply(wire.MsgExecuted, wire.AppendU64(ok(nil), cn.nextID))

	case wire.MsgDiscard:
		qid := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		rows := cn.queries[qid]
		if rows == nil {
			return fmt.Errorf("server: discard of unknown query %d", qid)
		}
		cn.srv.mu.Lock()
		rows.Discard()
		cn.srv.mu.Unlock()
		return cn.reply(wire.MsgOK, ok(nil))

	case wire.MsgFetch:
		qid := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		rows := cn.queries[qid]
		if rows == nil {
			return fmt.Errorf("server: fetch of unknown query %d", qid)
		}
		cn.srv.mu.Lock()
		var body []byte
		var reply byte
		if rows.Next() {
			reply = wire.MsgBatch
			body = wire.AppendBatch(ok(nil), rows.Batch())
		} else {
			reply = wire.MsgDone
			body = doneBody(rows)
		}
		cn.srv.mu.Unlock()
		return cn.reply(reply, body)

	case wire.MsgCancel:
		qid := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		// Cancel is idempotent and lenient: a finished or already
		// torn-down query just acks.
		if rows := cn.queries[qid]; rows != nil {
			cn.srv.mu.Lock()
			_ = rows.Close()
			cn.srv.mu.Unlock()
			delete(cn.queries, qid)
		}
		return cn.reply(wire.MsgOK, ok(nil))

	case wire.MsgExec:
		at := r.F64()
		text := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		return cn.exec(at, text)

	case wire.MsgExplain:
		sid := r.U64()
		text := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		sess := cn.sessions[sid]
		if sess == nil {
			return fmt.Errorf("server: explain on unknown session %d", sid)
		}
		cn.srv.mu.Lock()
		plan, err := sess.Explain(text)
		cn.srv.mu.Unlock()
		if err != nil {
			return cn.reply(wire.MsgOK, fail(nil, err))
		}
		b := plan.Slice(0, plan.Rows())
		return cn.reply(wire.MsgBatch, wire.AppendBatch(ok(nil), b))

	case wire.MsgDrain:
		cn.srv.mu.Lock()
		err := cn.srv.db.Drain()
		cn.srv.mu.Unlock()
		if err != nil {
			return cn.reply(wire.MsgOK, fail(nil, err))
		}
		return cn.reply(wire.MsgOK, ok(nil))

	case wire.MsgMeter:
		cn.srv.mu.Lock()
		m := cn.srv.meterReportLocked()
		cn.srv.mu.Unlock()
		return cn.reply(wire.MsgMeterReport, wire.AppendMeterReport(nil, m))

	default:
		return fmt.Errorf("server: unknown frame type %d", typ)
	}
}

// exec runs a non-SELECT statement: CREATE immediately, INSERT as a
// scheduled commit at time at (>= now). A statement arriving for the
// present is pumped to completion so the reply carries its real outcome;
// a future one is acked immediately and its error surfaces at DRAIN (or
// in the deferred handle's tenant bill regardless).
func (cn *conn) exec(at float64, text string) error {
	st, err := sql.Parse(text)
	if err != nil {
		return cn.reply(wire.MsgOK, fail(nil, err))
	}
	if st.Select != nil {
		return cn.reply(wire.MsgOK, fail(nil,
			fmt.Errorf("server: EXEC takes CREATE or INSERT; use PREPARE/EXECUTE for SELECT")))
	}
	cn.srv.mu.Lock()
	d, err := cn.srv.db.ExecAt(at, text)
	if err == nil {
		if st.Insert != nil {
			cn.srv.bill(cn.tenant).inserts = append(cn.srv.bill(cn.tenant).inserts, d)
		}
		if at <= cn.srv.db.Srv.Eng.Now() {
			// Present-time statement: run it now (pumping only until it
			// finishes, not draining scheduled future work) and report
			// its real outcome.
			err = d.Err()
		}
	}
	cn.srv.mu.Unlock()
	if err != nil {
		return cn.reply(wire.MsgOK, fail(nil, err))
	}
	return cn.reply(wire.MsgOK, ok(nil))
}

// doneBody builds the MsgDone frame for a finished query: its error code
// (CodeOK on success) and its settled stats. finish() always builds the
// Result, so even a failed query reports elapsed/wait/attributed.
func doneBody(rows *core.Rows) []byte {
	var res wire.Result
	if st := rows.Stats(); st != nil {
		res = wire.Result{
			Elapsed:    float64(st.Elapsed),
			Joules:     float64(st.Joules),
			Attributed: float64(st.Attributed),
			Marginal:   float64(st.Marginal),
			Shared:     float64(st.Shared),
			Wait:       float64(st.Wait),
			Granted:    int64(st.Granted),
			RowCount:   st.RowCount,
			Retries:    int64(rows.Retries()),
		}
	}
	code, msg := wire.CodeOK, ""
	if err := rows.Err(); err != nil {
		code, msg = wire.CodeFor(err), err.Error()
	}
	return wire.AppendResult(nil, res, code, msg)
}
