package server_test

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"energydb/internal/client"
	"energydb/internal/core"
	"energydb/internal/fault"
	"energydb/internal/hw"
	"energydb/internal/server"
	"energydb/internal/table"
	"energydb/internal/tpch"
	"energydb/internal/wire"
)

// rig is an 8-core box with enough parallel I/O that TPC-H plans go
// wide — the same shape core's parallel tests use.
func rig() hw.ServerSpec {
	ssd := hw.FlashSSD2008()
	ssd.ReadBW *= 6
	ssd.ReadLatency /= 100
	return hw.ServerSpec{
		Name: "srv-rig",
		CPU: hw.CPUSpec{
			Name: "xeon-8c", Cores: 8, FreqHz: 2.4e9,
			CyclesPerByte: 3.2, IdleWatts: 40, ActivePerCore: 15,
		},
		NumSSDs: 4,
		SSD:     ssd,
	}
}

func openTPCH(t *testing.T, sf float64) *core.DB {
	t.Helper()
	db, err := core.Open(core.Config{Server: rig(), BlockRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tpch.Generate(sf, 42).Tables {
		if err := db.LoadTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// fingerprint renders a result table row by row, column by column, with
// full float bits — the bit-identity yardstick.
func fingerprint(tab *table.Table) string {
	if tab == nil {
		return "<nil>"
	}
	var b strings.Builder
	for _, c := range tab.Schema.Cols {
		fmt.Fprintf(&b, "%s:%d|", c.Name, c.Type)
	}
	b.WriteByte('\n')
	for i := 0; i < tab.Rows(); i++ {
		for c := 0; c < len(tab.Schema.Cols); c++ {
			v := tab.Column(c)
			switch {
			case v.I != nil:
				fmt.Fprintf(&b, "%d|", v.I[i])
			case v.F != nil:
				fmt.Fprintf(&b, "%x|", math.Float64bits(v.F[i]))
			default:
				fmt.Fprintf(&b, "%s|", v.S[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runEmbedded executes the TPC-H mix through the embedded Session API
// and returns per-query fingerprints.
func runEmbedded(t *testing.T, sf float64) []string {
	t.Helper()
	db := openTPCH(t, sf)
	sess := db.Session()
	defer sess.Close()
	var fps []string
	for _, q := range tpch.ThroughputMix() {
		rows, err := sess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fingerprint(res.Rows))
	}
	return fps
}

// runRemote executes the same mix through the wire protocol over a
// net.Pipe connection and returns per-query fingerprints.
func runRemote(t *testing.T, sf float64) []string {
	t.Helper()
	db := openTPCH(t, sf)
	srv := server.New(db)
	defer srv.Close()
	c, err := client.New(srv.Pipe(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var fps []string
	for _, q := range tpch.ThroughputMix() {
		rows, err := sess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		tab, _, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fingerprint(tab))
	}
	return fps
}

// TestEmbeddedRemoteBitIdentity is the tentpole acceptance test: the
// TPC-H throughput mix produces bit-identical rows embedded and through
// the server/client driver.
func TestEmbeddedRemoteBitIdentity(t *testing.T) {
	emb := runEmbedded(t, 0.01)
	rem := runRemote(t, 0.01)
	for i := range emb {
		if emb[i] != rem[i] {
			t.Fatalf("query %d (%s...) differs embedded vs remote:\nembedded:\n%s\nremote:\n%s",
				i, tpch.ThroughputMix()[i][:40], emb[i], rem[i])
		}
	}
}

// TestTypedErrorsOverTheWire: a query cancelled at its deadline on the
// server must classify as fault.ErrDeadlineExceeded on the client via
// errors.Is.
func TestTypedErrorsOverTheWire(t *testing.T) {
	db := openTPCH(t, 0.01)
	srv := server.New(db)
	defer srv.Close()
	c, err := client.New(srv.Pipe(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}

	st, err := sess.Prepare(tpch.Q1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryDeadline(1e-7) // hopeless deadline
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := rows.Result()
	if qerr == nil {
		t.Fatal("hopeless deadline succeeded")
	}
	if !errors.Is(qerr, fault.ErrDeadlineExceeded) {
		t.Fatalf("remote error %v does not match fault.ErrDeadlineExceeded", qerr)
	}
	if errors.Is(qerr, fault.ErrCanceled) || errors.Is(qerr, fault.ErrTransientIO) {
		t.Fatalf("remote error %v matches unrelated sentinels", qerr)
	}

	// A statement-level failure (unknown table) comes back typed generic,
	// with the server's message, without killing the connection.
	if _, err := sess.Prepare(`SELECT x FROM missing`); err == nil {
		t.Fatal("prepare of unknown table succeeded")
	}
	if _, err := sess.Query(tpch.Q6); err != nil {
		t.Fatalf("connection dead after statement error: %v", err)
	}
}

// TestCancelMidStream: fetch a couple of batches, CANCEL, and verify the
// server cancels cleanly — the connection keeps working and a drain
// leaves zero live processes.
func TestCancelMidStream(t *testing.T) {
	db := openTPCH(t, 0.02)
	srv := server.New(db)
	defer srv.Close()
	c, err := client.New(srv.Pipe(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}

	// A multi-batch stream: scan with no aggregation.
	rows, err := sess.Query(`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 45`)
	if err != nil {
		t.Fatal(err)
	}
	fetched := 0
	for rows.Next() {
		fetched++
		if fetched == 2 {
			break
		}
	}
	if fetched != 2 {
		t.Fatalf("stream produced %d batches before cancel, want 2", fetched)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("cancel mid-stream: %v", err)
	}
	// The connection is still usable after CANCEL...
	res, err := sess.Query(`SELECT COUNT(*) AS n FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowCount(); err != nil || n != 1 {
		t.Fatalf("post-cancel query: n=%d err=%v", n, err)
	}
	// ...and no process of the cancelled query survives the drain.
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live processes after cancel + drain: %v", live, db.Srv.Eng.LiveNames())
	}
}

// TestDisconnectClosesRows is the bugfix regression: a client vanishing
// mid-stream must not leak the server-side Rows — teardown closes them,
// and after a drain no process is left alive.
func TestDisconnectClosesRows(t *testing.T) {
	db := openTPCH(t, 0.02)
	srv := server.New(db)
	defer srv.Close()
	conn := srv.Pipe()
	c, err := client.New(conn, "acme")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 45`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first batch: %v", rows.Err())
	}
	// Drop the connection mid-stream without CANCEL or CLOSE.
	conn.Close()
	srv.Close() // waits for the conn goroutine's teardown

	// The abandoned query must not hold the engine: draining the
	// simulation leaves zero live processes.
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live processes leaked by disconnect: %v", live, db.Srv.Eng.LiveNames())
	}
}

// TestTornFramesKillConnCleanly: a malformed frame must kill only that
// connection (with teardown), never the server or another connection.
func TestTornFramesKillConnCleanly(t *testing.T) {
	db := openTPCH(t, 0.01)
	srv := server.New(db)
	defer srv.Close()

	// Healthy connection A.
	ca, err := client.New(srv.Pipe(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	sa, err := ca.Session()
	if err != nil {
		t.Fatal(err)
	}

	// Connection B handshakes, then sends garbage.
	raw := srv.Pipe()
	body := wire.AppendStr(wire.AppendU32(nil, wire.Version), "evil")
	if err := wire.WriteFrame(raw, wire.MsgHello, body); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(raw); err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: typ=%d err=%v", typ, err)
	}
	// An unknown frame type gets MsgError back, then the conn dies.
	if err := wire.WriteFrame(raw, 0xEE, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, ebody, err := wire.ReadFrame(raw)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("garbage frame reply: typ=%d err=%v", typ, err)
	}
	er := wire.NewReader(ebody)
	if code := er.U32(); code != wire.CodeProtocol {
		t.Fatalf("garbage frame error code %d", code)
	}
	if _, _, err := wire.ReadFrame(raw); err == nil {
		t.Fatal("connection still alive after protocol error")
	}

	// A truncated body (Execute with half a frame) on a fresh conn dies
	// too — server side reads a short body and drops the conn.
	raw2 := srv.Pipe()
	if err := wire.WriteFrame(raw2, wire.MsgHello, body); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(raw2); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(raw2, wire.MsgExecute, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(raw2); err == nil && typ != wire.MsgError {
		t.Fatalf("short execute body got reply type %d", typ)
	}
	raw2.Close()

	// Connection A is unaffected.
	res, err := sa.Query(`SELECT COUNT(*) AS n FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowCount(); err != nil || n != 1 {
		t.Fatalf("healthy conn after torn frames: n=%d err=%v", n, err)
	}
}

// TestConcurrentTenants runs several tenants on their own goroutines and
// connections (the -race workout) and then checks the ledger: every
// query completed, Σ tenant bills + idle floor == wall meter, and no
// leaked processes.
func TestConcurrentTenants(t *testing.T) {
	db := openTPCH(t, 0.01)
	srv := server.New(db)
	defer srv.Close()

	const tenants = 4
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.New(srv.Pipe(), fmt.Sprintf("tenant%d", id))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sess, err := c.Session()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			for _, q := range []string{tpch.Q6, tpch.Q1, tpch.Q6} {
				rows, err := sess.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if _, err := rows.Result(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := client.New(srv.Pipe(), "auditor")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	m, err := c.Meter()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var queries int64
	for _, tb := range m.Tenants {
		sum += tb.AttributedJ
		queries += tb.Queries
	}
	if queries != tenants*3 {
		t.Fatalf("%d queries billed, want %d", queries, tenants*3)
	}
	if diff := math.Abs(m.MeterJ - (sum + m.UnattributedJ)); diff > 1e-6 {
		t.Fatalf("billing broken: meter %.6f != Σ tenants %.6f + idle %.6f (diff %.2e)",
			m.MeterJ, sum, m.UnattributedJ, diff)
	}
	if live := db.Srv.Eng.Live(); live != 0 {
		t.Fatalf("%d live processes after drain", live)
	}
}

// TestRemoteExplainAndExec: EXPLAIN flows through the front door as
// rows; CREATE/INSERT flow through EXEC, with arrival-time inserts
// billed to the tenant.
func TestRemoteExplainAndExec(t *testing.T) {
	db, err := core.Open(core.Config{Server: hw.SmallServer(2), WALBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	defer srv.Close()
	c, err := client.New(srv.Pipe(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Exec(`CREATE TABLE events (tenant BIGINT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec(`INSERT INTO events VALUES (1, 0.5)`); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecAt(2.0, `INSERT INTO events VALUES (2, 1.5), (3, 2.5)`); err != nil {
		t.Fatal(err)
	}
	// Present-time statement errors come back on the reply.
	if err := c.Exec(`INSERT INTO missing VALUES (1)`); err == nil {
		t.Fatal("insert into unknown table succeeded")
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	sess, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(`SELECT COUNT(*) AS n FROM events`)
	if err != nil {
		t.Fatal(err)
	}
	tab, _, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Column(0).I[0]; n != 3 {
		t.Fatalf("%d rows after inserts, want 3", n)
	}

	plan, err := sess.Explain(`SELECT COUNT(*) AS n FROM events WHERE v > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rows() == 0 || len(plan.Schema.Cols) != 6 {
		t.Fatalf("explain shape: %d rows × %d cols", plan.Rows(), len(plan.Schema.Cols))
	}
	var sawScan bool
	for i := 0; i < plan.Rows(); i++ {
		if strings.Contains(plan.Vecs[0].S[i], "scan") {
			sawScan = true
			if !strings.Contains(plan.Vecs[1].S[i], "events") {
				t.Fatalf("scan detail %q", plan.Vecs[1].S[i])
			}
		}
	}
	if !sawScan {
		t.Fatal("no scan row in remote explain")
	}

	// The deferred insert is on the bill.
	m, err := c.Meter()
	if err != nil {
		t.Fatal(err)
	}
	var acme *wire.TenantBill
	for i := range m.Tenants {
		if m.Tenants[i].Tenant == "acme" {
			acme = &m.Tenants[i]
		}
	}
	if acme == nil || acme.Inserts != 2 || acme.Queries != 1 {
		t.Fatalf("acme bill: %+v", acme)
	}
	if acme.AttributedJ <= 0 {
		t.Fatalf("acme attributed %.6fJ, want > 0", acme.AttributedJ)
	}
}

// TestTCPTransport: the same protocol over a real TCP socket.
func TestTCPTransport(t *testing.T) {
	db := openTPCH(t, 0.01)
	srv := server.New(db)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(tpch.Q6)
	if err != nil {
		t.Fatal(err)
	}
	tab, res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || tab.Rows() != 1 {
		t.Fatalf("q6 over TCP: %v", tab)
	}
	if res.Attributed <= 0 || res.Elapsed <= 0 {
		t.Fatalf("q6 stats over TCP: %+v", res)
	}
	var _ net.Addr = srv.Addr()
}

// TestSharedPlanCacheAcrossConnections: connections of one tenant share
// one prepared-plan cache (the second identical PREPARE is a hit), a
// second tenant gets its own cache (a fresh miss), and an INSERT that
// dirties the table invalidates the shared plans through the placement
// epoch — the cached statement re-executed afterwards sees the new rows.
func TestSharedPlanCacheAcrossConnections(t *testing.T) {
	db, err := core.Open(core.Config{Server: hw.SmallServer(2), WALBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	defer srv.Close()

	dial := func(tenant string) *client.DB {
		t.Helper()
		c, err := client.New(srv.Pipe(), tenant)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Clients must close before srv.Close can drain its conn goroutines.
	c1, c2, c3 := dial("acme"), dial("acme"), dial("globex")
	defer c1.Close()
	defer c2.Close()
	defer c3.Close()

	if err := c1.Exec(`CREATE TABLE events (tenant BIGINT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if err := c1.Exec(`INSERT INTO events VALUES (1, 0.5), (2, 1.5)`); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT COUNT(*) AS n FROM events`
	count := func(c *client.DB) int64 {
		t.Helper()
		sess, err := c.Session()
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		rows, err := sess.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		tab, _, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return tab.Column(0).I[0]
	}

	if n := count(c1); n != 2 {
		t.Fatalf("first count %d, want 2", n)
	}
	if h, m := srv.PlanCacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first prepare: %d hits / %d misses, want 0/1", h, m)
	}
	if n := count(c2); n != 2 {
		t.Fatalf("shared-cache count %d, want 2", n)
	}
	if h, m := srv.PlanCacheStats(); h != 1 || m != 1 {
		t.Fatalf("same tenant, second conn: %d hits / %d misses, want 1/1", h, m)
	}
	if n := count(c3); n != 2 {
		t.Fatalf("other-tenant count %d, want 2", n)
	}
	if h, m := srv.PlanCacheStats(); h != 1 || m != 2 {
		t.Fatalf("other tenant must miss its own cache: %d hits / %d misses, want 1/2", h, m)
	}

	// Dirty the table; the shared entry must replan, not replay stale rows.
	if err := c1.Exec(`INSERT INTO events VALUES (3, 2.5)`); err != nil {
		t.Fatal(err)
	}
	if n := count(c2); n != 3 {
		t.Fatalf("post-insert count %d, want 3 (stale shared plan?)", n)
	}
	if h, m := srv.PlanCacheStats(); h != 2 || m != 2 {
		t.Fatalf("post-insert reuse: %d hits / %d misses, want 2/2", h, m)
	}
}
