package tpch

// Simplified TPC-H queries expressed in the engine's SQL dialect. They
// keep each benchmark query's *shape* — the tables touched, the join
// pattern, the aggregation — within the dialect's single-block subset.

// Q1 is the pricing summary report: a wide scan of lineitem with
// grouped aggregation.
const Q1 = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       AVG(l_quantity) AS avg_qty,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-08-01'
GROUP BY l_returnflag, l_linestatus
ORDER BY 1, 2`

// Q3 is the shipping priority query: customer x orders x lineitem join
// with grouped revenue and a top-10.
const Q3 = `
SELECT o.o_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, o.o_orderdate
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < DATE '1995-03-15'
GROUP BY o.o_orderkey, o.o_orderdate
ORDER BY revenue DESC
LIMIT 10`

// Q5 (simplified) is a four-way join through supplier and nation with
// grouped revenue per nation.
const Q5 = `
SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM supplier s
JOIN lineitem l ON s.s_suppkey = l.l_suppkey
JOIN orders o ON l.l_orderkey = o.o_orderkey
JOIN nation n ON s.s_nationkey = n.n_nationkey
WHERE o.o_orderdate >= DATE '1994-01-01' AND o.o_orderdate < DATE '1995-01-01'
GROUP BY n.n_name
ORDER BY revenue DESC`

// Q6 is the forecasting revenue change query: a tight selective scan.
const Q6 = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`

// ScanQuery is the paper's Figure 2 query: scan ORDERS, apply a
// predicate, and project five of its seven attributes.
const ScanQuery = `
SELECT o_orderkey, o_custkey, o_totalprice, o_orderdate, o_orderpriority
FROM orders
WHERE o_totalprice > 0`

// ThroughputMix returns the query stream one TPC-H throughput-test client
// submits: a rotation over the implemented queries, as the paper's
// "mixture of TPC-H queries issued simultaneously from multiple clients".
func ThroughputMix() []string {
	return []string{Q1, Q6, Q3, Q6, Q1, Q5}
}

// Queries maps query names to SQL for tooling.
func Queries() map[string]string {
	return map[string]string{
		"q1":   Q1,
		"q3":   Q3,
		"q5":   Q5,
		"q6":   Q6,
		"scan": ScanQuery,
	}
}
