package tpch

import (
	"testing"
	"testing/quick"

	"energydb/internal/compress"
	"energydb/internal/sql"
	"energydb/internal/table"
)

func TestGenerateCardinalities(t *testing.T) {
	db := Generate(0.001, 42)
	if got := db.Tables["region"].Rows(); got != 5 {
		t.Fatalf("regions = %d", got)
	}
	if got := db.Tables["nation"].Rows(); got != 25 {
		t.Fatalf("nations = %d", got)
	}
	if got := db.Tables["orders"].Rows(); got != 1500 {
		t.Fatalf("orders = %d, want 1500", got)
	}
	if got := db.Tables["customer"].Rows(); got != 150 {
		t.Fatalf("customers = %d, want 150", got)
	}
	li := db.Tables["lineitem"].Rows()
	// 1..7 lines per order, average 4.
	if li < 1500 || li > 1500*7 {
		t.Fatalf("lineitems = %d out of range", li)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	for name := range a.Tables {
		ta, tb := a.Tables[name], b.Tables[name]
		if ta.Rows() != tb.Rows() {
			t.Fatalf("%s: row counts differ", name)
		}
	}
	// Spot-check a column byte-for-byte.
	la := a.Tables["lineitem"].Column(5)
	lb := b.Tables["lineitem"].Column(5)
	for i := range la.F {
		if la.F[i] != lb.F[i] {
			t.Fatalf("lineitem price differs at %d", i)
		}
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	db := Generate(0.002, 3)
	nOrders := int64(db.Tables["orders"].Rows())
	nCust := int64(db.Tables["customer"].Rows())
	ordCust := db.Tables["orders"].Column(1)
	for _, ck := range ordCust.I {
		if ck < 1 || ck > nCust {
			t.Fatalf("o_custkey %d out of [1,%d]", ck, nCust)
		}
	}
	liOrd := db.Tables["lineitem"].Column(0)
	for _, ok := range liOrd.I {
		if ok < 1 || ok > nOrders {
			t.Fatalf("l_orderkey %d out of [1,%d]", ok, nOrders)
		}
	}
	// Dates within the spec range.
	for _, d := range db.Tables["orders"].Column(4).I {
		if d < dateLo || d >= dateHi {
			t.Fatalf("o_orderdate %d out of range", d)
		}
	}
}

func TestLineitemDatesFollowOrderDates(t *testing.T) {
	db := Generate(0.001, 9)
	orderDate := map[int64]int64{}
	ord := db.Tables["orders"]
	for i := 0; i < ord.Rows(); i++ {
		orderDate[ord.Column(0).I[i]] = ord.Column(4).I[i]
	}
	li := db.Tables["lineitem"]
	for i := 0; i < li.Rows(); i++ {
		if li.Column(10).I[i] <= orderDate[li.Column(0).I[i]] {
			t.Fatalf("l_shipdate not after o_orderdate at row %d", i)
		}
	}
}

func TestSchemasCoverAllTables(t *testing.T) {
	db := Generate(0.001, 1)
	schemas := Schemas()
	if len(schemas) != 8 {
		t.Fatalf("schemas = %d", len(schemas))
	}
	for name, s := range schemas {
		tab, ok := db.Tables[name]
		if !ok {
			t.Fatalf("no data for %s", name)
		}
		if tab.Schema.Name != s.Name || len(tab.Schema.Cols) != len(s.Cols) {
			t.Fatalf("%s schema mismatch", name)
		}
	}
}

func TestQueriesParseAndBind(t *testing.T) {
	schemas := Schemas()
	lookup := func(rel string) (*table.Schema, bool) {
		s, ok := schemas[rel]
		return s, ok
	}
	for name, q := range Queries() {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := sql.Bind(st.Select, lookup); err != nil {
			t.Fatalf("%s: bind: %v", name, err)
		}
	}
	if len(ThroughputMix()) == 0 {
		t.Fatal("empty throughput mix")
	}
}

func TestDefaultCodecsCompress(t *testing.T) {
	db := Generate(0.002, 5)
	li := db.Tables["lineitem"]
	codecs := DefaultCodecs(li.Schema)
	if len(codecs) != len(li.Schema.Cols) {
		t.Fatal("codec arity")
	}
	// Per-column sanity: the categorical and key columns must compress.
	checks := map[string]float64{
		"l_orderkey":   0.40, // delta on near-monotone keys
		"l_returnflag": 0.55, // dict on 3 values (2 bytes in, 1 index byte out)
		"l_shipdate":   0.40, // bitpack on a small domain
	}
	for col, maxRatio := range checks {
		ci := li.Schema.MustColIndex(col)
		v := li.Column(ci)
		raw := v.EncodeBytes(nil, 0, v.Len())
		if r := compress.Ratio(codecs[ci], raw); r > maxRatio {
			t.Errorf("%s: ratio %v > %v under %s", col, r, maxRatio, codecs[ci].Name())
		}
	}
	// Overall the default placement must beat raw comfortably.
	var enc, rawTotal int64
	for ci := range li.Schema.Cols {
		v := li.Column(ci)
		raw := v.EncodeBytes(nil, 0, v.Len())
		rawTotal += int64(len(raw))
		enc += int64(len(codecs[ci].Encode(nil, raw)))
	}
	if ratio := float64(enc) / float64(rawTotal); ratio > 0.75 {
		t.Fatalf("lineitem overall ratio = %v, want < 0.75", ratio)
	}
}

// Property: any scale factor yields internally consistent cardinalities.
func TestScaleProperty(t *testing.T) {
	f := func(s uint8) bool {
		sf := float64(s%20+1) / 10000 // 0.0001 .. 0.002
		db := Generate(sf, 11)
		return db.Tables["orders"].Rows() == scaled(ordersPerSF, sf) &&
			db.Tables["lineitem"].Rows() >= db.Tables["orders"].Rows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
