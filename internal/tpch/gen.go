package tpch

import (
	"fmt"
	"math/rand"

	"energydb/internal/compress"
	"energydb/internal/table"
)

// Cardinality factors per unit scale factor, as in the TPC-H spec.
const (
	suppliersPerSF = 10000
	customersPerSF = 150000
	partsPerSF     = 200000
	ordersPerSF    = 1500000
	psPerPart      = 4
	maxLines       = 7
)

var (
	regions  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	prios    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	modes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	types    = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	// Date range 1992-01-01 .. 1998-08-02 in days since the Unix epoch.
	dateLo = int64(8035)
	dateHi = int64(10440)
)

// DB is a generated TPC-H database.
type DB struct {
	SF     float64
	Tables map[string]*table.Table
}

// Generate builds a deterministic TPC-H database at the given scale
// factor. The same (sf, seed) always yields identical data.
func Generate(sf float64, seed int64) *DB {
	if sf <= 0 {
		panic(fmt.Sprintf("tpch: scale factor %v", sf))
	}
	rng := rand.New(rand.NewSource(seed))
	db := &DB{SF: sf, Tables: map[string]*table.Table{}}

	// region, nation: fixed.
	region := table.NewTable(Region())
	for i, r := range regions {
		region.AppendRow(table.IntVal(int64(i)), table.StrVal(r))
	}
	db.Tables["region"] = region

	nation := table.NewTable(Nation())
	for i, n := range nations {
		nation.AppendRow(table.IntVal(int64(i)), table.StrVal(n), table.IntVal(int64(i%len(regions))))
	}
	db.Tables["nation"] = nation

	nSupp := scaled(suppliersPerSF, sf)
	supplier := table.NewTable(Supplier())
	for i := 1; i <= nSupp; i++ {
		supplier.AppendRow(
			table.IntVal(int64(i)),
			table.StrVal(fmt.Sprintf("Supplier#%09d", i)),
			table.IntVal(int64(rng.Intn(len(nations)))),
			table.FloatVal(round2(-999.99+rng.Float64()*10998.98)),
		)
	}
	db.Tables["supplier"] = supplier

	nCust := scaled(customersPerSF, sf)
	customer := table.NewTable(Customer())
	for i := 1; i <= nCust; i++ {
		customer.AppendRow(
			table.IntVal(int64(i)),
			table.StrVal(fmt.Sprintf("Customer#%09d", i)),
			table.IntVal(int64(rng.Intn(len(nations)))),
			table.FloatVal(round2(-999.99+rng.Float64()*10998.98)),
			table.StrVal(segments[rng.Intn(len(segments))]),
		)
	}
	db.Tables["customer"] = customer

	nPart := scaled(partsPerSF, sf)
	part := table.NewTable(Part())
	for i := 1; i <= nPart; i++ {
		part.AppendRow(
			table.IntVal(int64(i)),
			table.StrVal(fmt.Sprintf("part %s %d", types[rng.Intn(len(types))], i)),
			table.StrVal(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			table.StrVal(types[rng.Intn(len(types))]+" PLATED"),
			table.IntVal(int64(1+rng.Intn(50))),
			table.FloatVal(round2(900+float64(i%1000))),
		)
	}
	db.Tables["part"] = part

	partsupp := table.NewTable(PartSupp())
	for i := 1; i <= nPart; i++ {
		for j := 0; j < psPerPart; j++ {
			partsupp.AppendRow(
				table.IntVal(int64(i)),
				table.IntVal(int64(1+(i+j*nPart/psPerPart)%maxInt(nSupp, 1))),
				table.IntVal(int64(1+rng.Intn(9999))),
				table.FloatVal(round2(1+rng.Float64()*999)),
			)
		}
	}
	db.Tables["partsupp"] = partsupp

	nOrders := scaled(ordersPerSF, sf)
	orders := table.NewTable(Orders())
	lineitem := table.NewTable(Lineitem())
	statuses := []string{"F", "O", "P"}
	flags := []string{"A", "N", "R"}
	for i := 1; i <= nOrders; i++ {
		odate := dateLo + rng.Int63n(dateHi-dateLo)
		nLines := 1 + rng.Intn(maxLines)
		var total float64
		for ln := 1; ln <= nLines; ln++ {
			qty := float64(1 + rng.Intn(50))
			price := round2(qty * (900 + rng.Float64()*10000) / 10)
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := odate + 1 + rng.Int63n(121)
			flag := "N"
			status := "O"
			if ship < dateHi-200 {
				flag = flags[rng.Intn(len(flags))]
				status = "F"
			}
			lineitem.AppendRow(
				table.IntVal(int64(i)),
				table.IntVal(int64(1+rng.Intn(maxInt(nPart, 1)))),
				table.IntVal(int64(1+rng.Intn(maxInt(nSupp, 1)))),
				table.IntVal(int64(ln)),
				table.FloatVal(qty),
				table.FloatVal(price),
				table.FloatVal(disc),
				table.FloatVal(tax),
				table.StrVal(flag),
				table.StrVal(status),
				table.DateVal(ship),
				table.StrVal(modes[rng.Intn(len(modes))]),
			)
			total += price * (1 - disc) * (1 + tax)
		}
		orders.AppendRow(
			table.IntVal(int64(i)),
			table.IntVal(int64(1+rng.Intn(maxInt(nCust, 1)))),
			table.StrVal(statuses[rng.Intn(len(statuses))]),
			table.FloatVal(round2(total)),
			table.DateVal(odate),
			table.StrVal(prios[rng.Intn(len(prios))]),
			table.StrVal(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000))),
		)
	}
	db.Tables["orders"] = orders
	db.Tables["lineitem"] = lineitem
	return db
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// DefaultCodecs picks a per-column codec the way a column store's
// physical designer would: deltas for monotone keys, bit-packing for
// small-domain ints and dates, dictionaries for categorical strings, raw
// for incompressible floats.
func DefaultCodecs(s *table.Schema) []compress.Codec {
	out := make([]compress.Codec, len(s.Cols))
	for i, c := range s.Cols {
		switch {
		case c.Type == table.Date:
			out[i] = compress.Bitpack
		case c.Type.Physical() == table.PhysInt:
			if i == 0 { // leading keys are near-monotone
				out[i] = compress.Delta
			} else {
				out[i] = compress.Bitpack
			}
		case c.Type.Physical() == table.PhysString:
			out[i] = compress.Dict
		default:
			out[i] = compress.LZ
		}
	}
	return out
}

// RawCodecs returns the uncompressed placement's codec list.
func RawCodecs(s *table.Schema) []compress.Codec {
	out := make([]compress.Codec, len(s.Cols))
	for i := range out {
		out[i] = compress.Raw
	}
	return out
}
