// Package tpch provides a deterministic TPC-H-like workload: the eight
// benchmark schemas, a scale-factor-parameterised data generator in the
// spirit of dbgen, the simplified query set the experiments run, and
// sensible per-column compression defaults.
//
// The paper's Figure 1 runs the TPC-H *throughput test* at 300 GB scale on
// a commercial system; we generate reduced scale factors (the simulator's
// device constants are what carry the timing, see DESIGN.md) with the same
// schema shapes and value distributions.
package tpch

import "energydb/internal/table"

// Schemas returns the eight TPC-H table schemas keyed by name.
func Schemas() map[string]*table.Schema {
	return map[string]*table.Schema{
		"region":   Region(),
		"nation":   Nation(),
		"supplier": Supplier(),
		"customer": Customer(),
		"part":     Part(),
		"partsupp": PartSupp(),
		"orders":   Orders(),
		"lineitem": Lineitem(),
	}
}

// Region returns the REGION schema.
func Region() *table.Schema {
	return table.NewSchema("region",
		table.Col("r_regionkey", table.Int64),
		table.ColW("r_name", table.String, 12),
	)
}

// Nation returns the NATION schema.
func Nation() *table.Schema {
	return table.NewSchema("nation",
		table.Col("n_nationkey", table.Int64),
		table.ColW("n_name", table.String, 15),
		table.Col("n_regionkey", table.Int64),
	)
}

// Supplier returns the SUPPLIER schema.
func Supplier() *table.Schema {
	return table.NewSchema("supplier",
		table.Col("s_suppkey", table.Int64),
		table.ColW("s_name", table.String, 18),
		table.Col("s_nationkey", table.Int64),
		table.Col("s_acctbal", table.Float64),
	)
}

// Customer returns the CUSTOMER schema.
func Customer() *table.Schema {
	return table.NewSchema("customer",
		table.Col("c_custkey", table.Int64),
		table.ColW("c_name", table.String, 18),
		table.Col("c_nationkey", table.Int64),
		table.Col("c_acctbal", table.Float64),
		table.ColW("c_mktsegment", table.String, 10),
	)
}

// Part returns the PART schema.
func Part() *table.Schema {
	return table.NewSchema("part",
		table.Col("p_partkey", table.Int64),
		table.ColW("p_name", table.String, 30),
		table.ColW("p_brand", table.String, 10),
		table.ColW("p_type", table.String, 20),
		table.Col("p_size", table.Int64),
		table.Col("p_retailprice", table.Float64),
	)
}

// PartSupp returns the PARTSUPP schema.
func PartSupp() *table.Schema {
	return table.NewSchema("partsupp",
		table.Col("ps_partkey", table.Int64),
		table.Col("ps_suppkey", table.Int64),
		table.Col("ps_availqty", table.Int64),
		table.Col("ps_supplycost", table.Float64),
	)
}

// Orders returns the ORDERS schema (the seven attributes the paper's
// Figure 2 scan draws on).
func Orders() *table.Schema {
	return table.NewSchema("orders",
		table.Col("o_orderkey", table.Int64),
		table.Col("o_custkey", table.Int64),
		table.ColW("o_orderstatus", table.String, 1),
		table.Col("o_totalprice", table.Float64),
		table.Col("o_orderdate", table.Date),
		table.ColW("o_orderpriority", table.String, 15),
		table.ColW("o_clerk", table.String, 15),
	)
}

// Lineitem returns the LINEITEM schema.
func Lineitem() *table.Schema {
	return table.NewSchema("lineitem",
		table.Col("l_orderkey", table.Int64),
		table.Col("l_partkey", table.Int64),
		table.Col("l_suppkey", table.Int64),
		table.Col("l_linenumber", table.Int64),
		table.Col("l_quantity", table.Float64),
		table.Col("l_extendedprice", table.Float64),
		table.Col("l_discount", table.Float64),
		table.Col("l_tax", table.Float64),
		table.ColW("l_returnflag", table.String, 1),
		table.ColW("l_linestatus", table.String, 1),
		table.Col("l_shipdate", table.Date),
		table.ColW("l_shipmode", table.String, 10),
	)
}
