package opt

import (
	"fmt"

	"energydb/internal/exec"
	"energydb/internal/table"
)

// ColRef names a column of a query's table (by alias).
type ColRef struct {
	Table string // alias
	Col   string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// PredIR is one conjunct of the WHERE clause: either column-vs-constant or
// column-vs-column (an equi-join predicate when the columns belong to
// different tables).
type PredIR struct {
	Left   ColRef
	Op     exec.CmpOp
	Right  ColRef      // valid when IsJoin
	Val    table.Value // valid when !IsJoin
	IsJoin bool
}

func (p PredIR) String() string {
	if p.IsJoin {
		return fmt.Sprintf("%v %v %v", p.Left, p.Op, p.Right)
	}
	return fmt.Sprintf("%v %v %v", p.Left, p.Op, p.Val)
}

// ExprIR is a scalar output expression: a column, a constant, or an
// arithmetic combination.
type ExprIR struct {
	Col   *ColRef
	Const *table.Value
	Op    exec.ArithOp // valid when L and R are set
	L, R  *ExprIR
}

func (e *ExprIR) String() string {
	switch {
	case e.Col != nil:
		return e.Col.String()
	case e.Const != nil:
		return e.Const.String()
	default:
		return fmt.Sprintf("(%s %v %s)", e.L, e.Op, e.R)
	}
}

// columns appends every column referenced by e to dst.
func (e *ExprIR) columns(dst []ColRef) []ColRef {
	switch {
	case e.Col != nil:
		return append(dst, *e.Col)
	case e.Const != nil:
		return dst
	default:
		return e.R.columns(e.L.columns(dst))
	}
}

// AggIR is one aggregate output.
type AggIR struct {
	Func exec.AggFunc
	Arg  *ExprIR // nil for COUNT(*)
	As   string
}

// OutputIR is one SELECT-list item: either a plain expression or an
// aggregate (mixing is resolved by the binder: plain columns must appear
// in GROUP BY when aggregates are present).
type OutputIR struct {
	Expr *ExprIR
	Agg  *AggIR
	As   string
}

// OrderIR is one ORDER BY key, naming an output column.
type OrderIR struct {
	Output int // index into Outputs
	Desc   bool
}

// Query is the bound single-block query IR the SQL front end produces and
// the optimizer consumes.
type Query struct {
	Tables  []string // aliases, in FROM order; alias -> relation via Rels
	Rels    map[string]string
	Preds   []PredIR
	Outputs []OutputIR
	GroupBy []ColRef
	OrderBy []OrderIR
	Limit   int64 // -1 = none
}

// HasAggs reports whether any output is an aggregate.
func (q *Query) HasAggs() bool {
	for _, o := range q.Outputs {
		if o.Agg != nil {
			return true
		}
	}
	return false
}
