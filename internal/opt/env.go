package opt

import (
	"fmt"

	"energydb/internal/exec"
)

// Objective selects what the optimizer minimises.
type Objective int

const (
	// MinTime is the classical objective: fastest plan wins.
	MinTime Objective = iota
	// MinEnergy minimises modelled joules — the paper's proposal.
	MinEnergy
	// MinEDP minimises energy x delay, a balanced compromise.
	MinEDP
)

func (o Objective) String() string {
	switch o {
	case MinTime:
		return "time"
	case MinEnergy:
		return "energy"
	default:
		return "edp"
	}
}

// Env describes the hardware to the cost models: performance parameters
// for the time model, marginal power parameters for the energy model.
// Power is *marginal* (above idle): the paper's Figure 2 arithmetic
// attributes only busy watts to the query ("assuming that an idle CPU
// does not consume any power, or ... some other concurrent task is taking
// up the rest of the CPU cycles").
type Env struct {
	CPUFreqHz float64
	Cores     int

	// MaxPipelineDOP caps the degree of parallelism the optimizer may buy
	// for pipeline fragments above the scan (partitioned aggregation and
	// hash-join builds); 0 leaves it bounded only by Cores. Scan-level
	// parallelism is unaffected. Multi-stream drivers use it as a crude
	// admission control until DOP is priced against free cores.
	MaxPipelineDOP int

	// ScanBW is the aggregate sequential bandwidth of the data volume
	// (bytes/s); PageLatency the per-page fixed cost; PageBytes the page
	// size.
	ScanBW      float64
	PageLatency float64
	PageBytes   int64

	// Marginal power, watts.
	CPUWattPerCore float64 // busy minus idle, per core
	StorageWatt    float64 // volume busy minus idle, whole array
	// DRAMWattPerByte is the holding power of operator working memory
	// (hash tables, sort runs). Datasheet DRAM is ~1.3e-9 W/byte; the
	// paper argues optimizers should treat memory as power-expensive, so
	// experiments sweep this knob upward (see EXPERIMENTS.md E3).
	DRAMWattPerByte float64

	Costs exec.CostParams
}

// Grant derives the per-query planning environment from an admission
// grant: every degree-of-parallelism sweep (scan morsels, partitioned
// aggregation, partitioned join builds) is priced against the cores the
// admission controller actually granted from the free pool, rather than
// the machine's configured total. Cores acts as the configured ceiling;
// MaxPipelineDOP, if set, still applies on top. A grant of one core
// reproduces the serial plans exactly.
func (e *Env) Grant(cores int) *Env {
	g := *e
	if cores < 1 {
		cores = 1
	}
	if cores < g.Cores {
		g.Cores = cores
	}
	return &g
}

// Validate reports a descriptive error for unusable parameters.
func (e *Env) Validate() error {
	if e.CPUFreqHz <= 0 || e.Cores <= 0 {
		return fmt.Errorf("opt: env CPU not configured: %+v", e)
	}
	if e.ScanBW <= 0 || e.PageBytes <= 0 {
		return fmt.Errorf("opt: env storage not configured: %+v", e)
	}
	return nil
}

// Cost is a plan cost under both models.
type Cost struct {
	Seconds float64
	Joules  float64
	// MemBytes is the peak working memory the plan holds (for reporting
	// and for the DRAM holding-power term already folded into Joules).
	MemBytes int64
}

// Score reduces a cost to the optimizer's comparison key.
func (c Cost) Score(o Objective) float64 {
	switch o {
	case MinTime:
		return c.Seconds
	case MinEnergy:
		return c.Joules
	default:
		return c.Joules * c.Seconds
	}
}

// Add composes sequential costs: times add, joules add, memory peaks.
func (c Cost) Add(d Cost) Cost {
	m := c.MemBytes
	if d.MemBytes > m {
		m = d.MemBytes
	}
	return Cost{Seconds: c.Seconds + d.Seconds, Joules: c.Joules + d.Joules, MemBytes: m}
}

func (c Cost) String() string {
	return fmt.Sprintf("%.4fs / %.2fJ / %dB mem", c.Seconds, c.Joules, c.MemBytes)
}
