package opt

import (
	"fmt"

	"energydb/internal/exec"
)

// Objective selects what the optimizer minimises.
type Objective int

const (
	// MinTime is the classical objective: fastest plan wins.
	MinTime Objective = iota
	// MinEnergy minimises modelled joules — the paper's proposal.
	MinEnergy
	// MinEDP minimises energy x delay, a balanced compromise.
	MinEDP
)

func (o Objective) String() string {
	switch o {
	case MinTime:
		return "time"
	case MinEnergy:
		return "energy"
	default:
		return "edp"
	}
}

// EnergyMode selects how the energy objectives (MinEnergy, MinEDP) price
// a plan's joules.
type EnergyMode int

const (
	// MarginalEnergy prices only busy-minus-idle joules — the paper's
	// Figure 2 arithmetic, which assumes the idle floor is someone else's
	// problem. Under it MinEnergy never buys race-to-idle: parallelism
	// costs startup joules and saves only seconds.
	MarginalEnergy EnergyMode = iota
	// IdleFloorAware adds IdleWatts × Seconds to the energy score: the
	// query is billed the idle floor it keeps the server awake for, the
	// same attribution the wall meter and the energy.Attributor use. Under
	// it MinEnergy agrees with the meter — finishing sooner saves the
	// floor, so race-to-idle and wide-and-slow DVFS plans can win.
	IdleFloorAware
)

func (m EnergyMode) String() string {
	if m == IdleFloorAware {
		return "idle-floor"
	}
	return "marginal"
}

// PStatePoint is one CPU operating point for the planner's P-state axis,
// mirroring hw.PState: frequency and active power relative to P0.
type PStatePoint struct {
	Name       string
	FreqScale  float64
	PowerScale float64
}

// Env describes the hardware to the cost models: performance parameters
// for the time model, marginal power parameters for the energy model.
// Power is *marginal* (above idle): the paper's Figure 2 arithmetic
// attributes only busy watts to the query ("assuming that an idle CPU
// does not consume any power, or ... some other concurrent task is taking
// up the rest of the CPU cycles").
type Env struct {
	CPUFreqHz float64
	Cores     int

	// MaxPipelineDOP caps the degree of parallelism the optimizer may buy
	// for pipeline fragments above the scan (partitioned aggregation and
	// hash-join builds); 0 leaves it bounded only by Cores. Scan-level
	// parallelism is unaffected. Multi-stream drivers use it as a crude
	// admission control until DOP is priced against free cores.
	MaxPipelineDOP int

	// ScanBW is the aggregate sequential bandwidth of the data volume
	// (bytes/s); PageLatency the per-page fixed cost; PageBytes the page
	// size.
	ScanBW      float64
	PageLatency float64
	PageBytes   int64

	// Marginal power, watts.
	CPUWattPerCore float64 // busy minus idle, per core
	StorageWatt    float64 // volume busy minus idle, whole array
	// DRAMWattPerByte is the holding power of operator working memory
	// (hash tables, sort runs). Datasheet DRAM is ~1.3e-9 W/byte; the
	// paper argues optimizers should treat memory as power-expensive, so
	// experiments sweep this knob upward (see EXPERIMENTS.md E3).
	DRAMWattPerByte float64

	// EnergyMode selects marginal or idle-floor-aware pricing for the
	// energy objectives; IdleWatts is the whole-server idle floor the
	// idle-floor-aware mode bills per second of plan runtime.
	EnergyMode EnergyMode
	IdleWatts  float64

	// PStates, when it has more than one point, opens the P-state axis:
	// Optimize re-prices the whole plan at each operating point and keeps
	// the best under the objective (MinTime always runs at the first
	// point, P0). Point 0 must be the nominal {1, 1}.
	PStates []PStatePoint

	// TimeBudget, when positive, constrains plan choice: among candidate
	// plans only those with Seconds within the budget compete under the
	// objective, and a fastest-at-P0 fallback is always considered — so a
	// deadline query is planned cheap-if-possible, fast-if-necessary.
	TimeBudget float64

	Costs exec.CostParams
}

// Grant derives the per-query planning environment from an admission
// grant: every degree-of-parallelism sweep (scan morsels, partitioned
// aggregation, partitioned join builds) is priced against the cores the
// admission controller actually granted from the free pool, rather than
// the machine's configured total. Cores acts as the configured ceiling;
// MaxPipelineDOP, if set, still applies on top. A grant of one core
// reproduces the serial plans exactly.
func (e *Env) Grant(cores int) *Env {
	g := *e
	if cores < 1 {
		cores = 1
	}
	if cores < g.Cores {
		g.Cores = cores
	}
	return &g
}

// Validate reports a descriptive error for unusable parameters.
func (e *Env) Validate() error {
	if e.CPUFreqHz <= 0 || e.Cores <= 0 {
		return fmt.Errorf("opt: env CPU not configured: %+v", e)
	}
	if e.ScanBW <= 0 || e.PageBytes <= 0 {
		return fmt.Errorf("opt: env storage not configured: %+v", e)
	}
	return nil
}

// Cost is a plan cost under both models.
type Cost struct {
	Seconds float64
	Joules  float64
	// MemBytes is the peak working memory the plan holds (for reporting
	// and for the DRAM holding-power term already folded into Joules).
	MemBytes int64
}

// Score reduces a cost to the optimizer's comparison key under marginal
// energy pricing. Env.Score is the environment-aware version.
func (c Cost) Score(o Objective) float64 {
	switch o {
	case MinTime:
		return c.Seconds
	case MinEnergy:
		return c.Joules
	default:
		return c.Joules * c.Seconds
	}
}

// Score reduces a cost to the comparison key the optimizer minimises,
// honouring the environment's energy mode: in IdleFloorAware mode the
// energy objectives bill the idle floor the plan keeps the server awake
// for (IdleWatts × Seconds) on top of marginal joules.
func (e *Env) Score(c Cost, o Objective) float64 {
	if o == MinTime {
		return c.Seconds
	}
	j := c.Joules
	if e.EnergyMode == IdleFloorAware {
		j += e.IdleWatts * c.Seconds
	}
	if o == MinEnergy {
		return j
	}
	return j * c.Seconds
}

// AtPState derives the environment at one CPU operating point: frequency
// and marginal core power scale by the point's factors. The idle floor
// does not scale — that is the point of DVFS.
func (e *Env) AtPState(p PStatePoint) *Env {
	g := *e
	g.CPUFreqHz *= p.FreqScale
	g.CPUWattPerCore *= p.PowerScale
	return &g
}

// Add composes sequential costs: times add, joules add, memory peaks.
func (c Cost) Add(d Cost) Cost {
	m := c.MemBytes
	if d.MemBytes > m {
		m = d.MemBytes
	}
	return Cost{Seconds: c.Seconds + d.Seconds, Joules: c.Joules + d.Joules, MemBytes: m}
}

func (c Cost) String() string {
	return fmt.Sprintf("%.4fs / %.2fJ / %dB mem", c.Seconds, c.Joules, c.MemBytes)
}
