package opt

import (
	"strings"
	"testing"

	"energydb/internal/exec"
	"energydb/internal/table"
)

// scanQueryIR is the CPU-bound projection TestParallelScanDOPChoice uses.
func scanQueryIR() *Query {
	return &Query{
		Tables: []string{"f"},
		Rels:   map[string]string{"f": "fact"},
		Preds: []PredIR{
			{Left: col("f", "f_price"), Op: exec.Lt, Val: table.FloatVal(900)},
		},
		Outputs: []OutputIR{
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"},
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_price"}}, As: "p"},
		},
		Limit: -1,
	}
}

// cpuBoundEnv reshapes the test world's env so the scan is CPU-bound on
// an 8-core box (same knobs as the parallel DOP tests).
func cpuBoundEnv(w *testWorld) *Env {
	w.env.Cores = 8
	w.env.ScanBW *= 8
	w.env.PageLatency /= 50
	return w.env
}

// TestEnvScoreIdleFloor pins the scoring arithmetic: the idle-floor-aware
// mode bills IdleWatts × Seconds on the energy objectives and leaves
// MinTime untouched.
func TestEnvScoreIdleFloor(t *testing.T) {
	c := Cost{Seconds: 2, Joules: 10}
	marginal := &Env{EnergyMode: MarginalEnergy, IdleWatts: 40}
	aware := &Env{EnergyMode: IdleFloorAware, IdleWatts: 40}
	if got := marginal.Score(c, MinEnergy); got != 10 {
		t.Fatalf("marginal MinEnergy score = %v, want 10", got)
	}
	if got := aware.Score(c, MinEnergy); got != 10+40*2 {
		t.Fatalf("idle-aware MinEnergy score = %v, want 90", got)
	}
	if got := aware.Score(c, MinEDP); got != (10+40*2)*2 {
		t.Fatalf("idle-aware MinEDP score = %v, want 180", got)
	}
	if got := aware.Score(c, MinTime); got != 2 {
		t.Fatalf("MinTime score must ignore energy mode, got %v", got)
	}
}

// TestIdleFloorAwareMinEnergyBuysParallel: under marginal pricing
// MinEnergy keeps a CPU-bound scan serial (parallelism costs startup
// joules and only saves seconds). Once the objective bills the idle
// floor, seconds *are* joules — MinEnergy buys the parallel race-to-idle
// plan the wall meter prefers, agreeing with MinTime's shape.
func TestIdleFloorAwareMinEnergyBuysParallel(t *testing.T) {
	w := newWorld(t, 40000, 50)
	env := cpuBoundEnv(w)
	q := scanQueryIR()

	env.EnergyMode = MarginalEnergy
	lean, err := Optimize(q, w.cat, env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(lean.Explain(), "dop=") {
		t.Fatalf("marginal MinEnergy went parallel:\n%s", lean.Explain())
	}

	env.EnergyMode = IdleFloorAware
	env.IdleWatts = 200 // idle floor dwarfs the per-core startup joules
	aware, err := Optimize(q, w.cat, env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(aware.Explain(), "dop=") {
		t.Fatalf("idle-floor-aware MinEnergy stayed serial:\n%s", aware.Explain())
	}
	// The wall meter agrees: marginal joules + floor joules are lower for
	// the plan the aware objective picked.
	wall := func(c Cost) float64 { return c.Joules + env.IdleWatts*c.Seconds }
	if wall(aware.Cost()) >= wall(lean.Cost()) {
		t.Fatalf("aware plan wall energy %v >= serial %v", wall(aware.Cost()), wall(lean.Cost()))
	}
}

// TestPStateSweepWideAndSlow: with the P-state axis open and marginal
// core power well above the idle floor, MinEnergy should run the CPU
// slow (P1: 0.7x freq at 0.4x power) — trading seconds it now pays the
// small floor for against active joules — while MinTime stays at P0.
func TestPStateSweepWideAndSlow(t *testing.T) {
	w := newWorld(t, 40000, 50)
	env := cpuBoundEnv(w)
	env.EnergyMode = IdleFloorAware
	env.IdleWatts = 10 // CPUWattPerCore is 90: slowing down pays
	env.PStates = []PStatePoint{
		{Name: "P0", FreqScale: 1, PowerScale: 1},
		{Name: "P1", FreqScale: 0.7, PowerScale: 0.4},
	}
	q := scanQueryIR()

	slow, err := Optimize(q, w.cat, env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if slow.PState != 1 || slow.PStateName != "P1" {
		t.Fatalf("MinEnergy P-state = %d (%s), want the slow point:\n%s",
			slow.PState, slow.PStateName, slow.Explain())
	}
	if !strings.Contains(slow.Explain(), "pstate=P1") {
		t.Fatalf("explain does not surface the P-state:\n%s", slow.Explain())
	}

	fast, err := Optimize(q, w.cat, env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if fast.PState != 0 {
		t.Fatalf("MinTime P-state = %d, want P0", fast.PState)
	}
	if fast.Cost().Seconds >= slow.Cost().Seconds {
		t.Fatalf("P1 plan is not slower: %v vs %v", slow.Cost(), fast.Cost())
	}
	// And genuinely cheaper under the objective's own score.
	if env.Score(slow.Cost(), MinEnergy) >= env.Score(fast.Cost(), MinEnergy) {
		t.Fatalf("P1 plan is not cheaper: %v vs %v", slow.Cost(), fast.Cost())
	}
}

// TestTimeBudgetConstrainsPlanChoice: a deadline budget restricts the
// candidates to plans that fit; a budget nothing fits falls back to the
// fastest plan rather than failing.
func TestTimeBudgetConstrainsPlanChoice(t *testing.T) {
	w := newWorld(t, 40000, 50)
	env := cpuBoundEnv(w)
	env.EnergyMode = IdleFloorAware
	env.IdleWatts = 10
	env.PStates = []PStatePoint{
		{Name: "P0", FreqScale: 1, PowerScale: 1},
		{Name: "P1", FreqScale: 0.7, PowerScale: 0.4},
	}
	q := scanQueryIR()

	free, err := Optimize(q, w.cat, env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	fastest, err := Optimize(q, w.cat, env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if free.Cost().Seconds <= fastest.Cost().Seconds {
		t.Fatalf("unbudgeted MinEnergy is not slower than MinTime; test rig broken")
	}

	// A budget between the two forces MinEnergy off its slow plan onto
	// something that fits.
	env.TimeBudget = (free.Cost().Seconds + fastest.Cost().Seconds) / 2
	fits, err := Optimize(q, w.cat, env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if fits.Cost().Seconds > env.TimeBudget {
		t.Fatalf("budgeted plan takes %v > budget %v", fits.Cost().Seconds, env.TimeBudget)
	}

	// An impossible budget degrades to the fastest candidate.
	env.TimeBudget = fastest.Cost().Seconds / 1e6
	desperate, err := Optimize(q, w.cat, env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if desperate.Cost().Seconds > fastest.Cost().Seconds*(1+1e-9) {
		t.Fatalf("fallback plan takes %v, fastest is %v", desperate.Cost().Seconds, fastest.Cost().Seconds)
	}
}
