package opt

import (
	"fmt"
	"math"

	"energydb/internal/exec"
)

// Optimize compiles a bound query into the cheapest physical plan under
// the objective: access-path (placement variant) selection per table,
// predicate pushdown, join order and algorithm by dynamic programming over
// table subsets, then aggregation, sort and limit.
//
// When the environment exposes more than one CPU P-state and the
// objective is an energy one, the whole plan search repeats at each
// operating point and the best plan under the environment's score wins —
// wide-and-slow at a low P-state competes directly with narrow-and-fast
// at P0. A positive Env.TimeBudget restricts the field to plans that fit
// the budget (with a fastest-at-P0 fallback candidate, and the overall
// fastest plan if nothing fits), so deadline queries are planned
// cheap-if-possible, fast-if-necessary.
func Optimize(q *Query, cat *Catalog, env *Env, obj Objective) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("opt: query has no tables")
	}
	if len(q.Tables) > 12 {
		return nil, fmt.Errorf("opt: %d tables exceeds the 12-table DP limit", len(q.Tables))
	}
	pstates := env.PStates
	if len(pstates) == 0 {
		pstates = []PStatePoint{{Name: "P0", FreqScale: 1, PowerScale: 1}}
	}
	if obj == MinTime {
		// Lower P-states only trade time for energy; MinTime never wants
		// that, so skip the sweep.
		pstates = pstates[:1]
	}
	var plans []*Plan
	for i, ps := range pstates {
		o := &optimizer{q: q, cat: cat, env: env.AtPState(ps), obj: obj}
		p, err := o.run()
		if err != nil {
			return nil, err
		}
		p.PState = i
		p.PStateName = ps.Name
		plans = append(plans, p)
	}
	if env.TimeBudget > 0 && obj != MinTime {
		// A deadline query must also consider the plan a pure-latency
		// optimizer would pick, at full frequency.
		o := &optimizer{q: q, cat: cat, env: env.AtPState(pstates[0]), obj: MinTime}
		p, err := o.run()
		if err != nil {
			return nil, err
		}
		p.PState = 0
		p.PStateName = pstates[0].Name
		plans = append(plans, p)
	}
	var best *Plan
	bestScore := math.Inf(1)
	for _, p := range plans {
		if env.TimeBudget > 0 && p.Root.Cost().Seconds > env.TimeBudget {
			continue
		}
		if s := env.Score(p.Root.Cost(), obj); s < bestScore {
			best, bestScore = p, s
		}
	}
	if best == nil {
		// Nothing fits the budget: take the fastest candidate and let the
		// deadline machinery decide its fate at run time.
		for _, p := range plans {
			if best == nil || p.Root.Cost().Seconds < best.Root.Cost().Seconds {
				best = p
			}
		}
	}
	best.Objective = obj
	return best, nil
}

type optimizer struct {
	q   *Query
	cat *Catalog
	env *Env
	obj Objective

	aliases []string
	place   map[string]*Placement
	local   map[string][]PredIR // single-table predicates by alias
	joins   []PredIR            // cross-table equality predicates
	resid   []PredIR            // cross-table non-equality predicates
}

func (o *optimizer) run() (*Plan, error) {
	if err := o.bindTables(); err != nil {
		return nil, err
	}
	o.classifyPreds()

	// Best scan per alias.
	scans := make(map[string]PhysNode, len(o.aliases))
	for _, a := range o.aliases {
		s, err := o.bestScan(a)
		if err != nil {
			return nil, err
		}
		scans[a] = s
	}

	// Join order DP over alias subsets.
	root, err := o.joinDP(scans)
	if err != nil {
		return nil, err
	}

	// Equality predicates the join tree did not consume (cycles in the
	// join graph) must still be applied, as residual filters.
	applied := map[string]bool{}
	collectJoinPreds(root, applied)
	for _, jp := range o.joins {
		if !applied[jp.String()] {
			o.resid = append(o.resid, jp)
		}
	}

	// Residual cross-table filters.
	if len(o.resid) > 0 {
		sel := 1.0
		for _, p := range o.resid {
			sel *= predSelectivity(p, nil)
		}
		card := root.Card() * sel
		cost := root.Cost().Add(Cost{
			Seconds: root.Card() * float64(len(o.resid)) * o.env.Costs.FilterCyclesPerRow / o.env.CPUFreqHz,
			Joules:  root.Card() * float64(len(o.resid)) * o.env.Costs.FilterCyclesPerRow / o.env.CPUFreqHz * o.env.CPUWattPerCore,
		})
		root = &PFilter{In: root, Preds: o.resid, card: card, cost: cost}
	}

	// Aggregation or plain projection.
	if o.q.HasAggs() {
		var err error
		root, err = o.buildAgg(root)
		if err != nil {
			return nil, err
		}
		root, err = o.buildFinalSelect(root)
		if err != nil {
			return nil, err
		}
	} else if len(o.q.Outputs) > 0 {
		var err error
		root, err = o.buildProject(root)
		if err != nil {
			return nil, err
		}
	}

	// Order by, limit.
	if len(o.q.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(o.q.OrderBy))
		for i, ob := range o.q.OrderBy {
			keys[i] = exec.SortKey{Col: ob.Output, Desc: ob.Desc}
		}
		n := math.Max(root.Card(), 2)
		cycles := n * math.Log2(n) * o.env.Costs.SortCyclesPerRowLog * float64(len(keys))
		secs := cycles / o.env.CPUFreqHz
		mem := int64(n * root.RowBytes())
		c := root.Cost().Add(Cost{
			Seconds:  secs,
			Joules:   secs*o.env.CPUWattPerCore + float64(mem)*o.env.DRAMWattPerByte*secs,
			MemBytes: mem,
		})
		root = &PSort{In: root, Keys: keys, cost: c}
	}
	if o.q.Limit >= 0 {
		root = &PLimit{In: root, N: o.q.Limit}
	}
	return &Plan{Root: root, Objective: o.obj}, nil
}

func (o *optimizer) bindTables() error {
	o.place = make(map[string]*Placement)
	seen := map[string]bool{}
	for _, a := range o.aliasesInOrder() {
		if seen[a] {
			return fmt.Errorf("opt: duplicate table alias %q", a)
		}
		seen[a] = true
		rel, ok := o.q.Rels[a]
		if !ok {
			return fmt.Errorf("opt: alias %q has no relation", a)
		}
		p, err := o.cat.Get(rel)
		if err != nil {
			return err
		}
		if len(p.Variants) == 0 {
			return fmt.Errorf("opt: relation %q has no placements", rel)
		}
		o.place[a] = p
	}
	o.aliases = o.aliasesInOrder()
	return nil
}

func (o *optimizer) aliasesInOrder() []string { return o.q.Tables }

func (o *optimizer) classifyPreds() {
	o.local = make(map[string][]PredIR)
	for _, p := range o.q.Preds {
		if !p.IsJoin {
			o.local[p.Left.Table] = append(o.local[p.Left.Table], p)
			continue
		}
		if p.Left.Table == p.Right.Table {
			o.local[p.Left.Table] = append(o.local[p.Left.Table], p)
			continue
		}
		if p.Op == exec.Eq {
			o.joins = append(o.joins, p)
		} else {
			o.resid = append(o.resid, p)
		}
	}
}

// requiredCols computes the columns of alias needed anywhere in the query.
func (o *optimizer) requiredCols(alias string) []string {
	need := map[string]bool{}
	add := func(c ColRef) {
		if c.Table == alias {
			need[c.Col] = true
		}
	}
	for _, p := range o.q.Preds {
		add(p.Left)
		if p.IsJoin {
			add(p.Right)
		}
	}
	for _, out := range o.q.Outputs {
		if out.Expr != nil {
			for _, c := range out.Expr.columns(nil) {
				add(c)
			}
		}
		if out.Agg != nil && out.Agg.Arg != nil {
			for _, c := range out.Agg.Arg.columns(nil) {
				add(c)
			}
		}
	}
	for _, g := range o.q.GroupBy {
		add(g)
	}
	schema := o.place[alias].Variants[0].ST.Tab.Schema
	var cols []string
	for _, c := range schema.Cols { // schema order keeps plans deterministic
		if need[c.Name] {
			cols = append(cols, c.Name)
		}
	}
	// A count-only query may need no columns at all: batches carry an
	// explicit row count, so the scan reads nothing and emits cardinality.
	return cols
}

// parallelStartupCycles is the modelled per-extra-worker overhead of a
// parallel scan (spawning the fragment process, morsel-queue traffic, the
// merge hop). It is deliberately small but non-zero: under MinTime a
// CPU-bound scan still wins big from parallelism, while under MinEnergy —
// where the marginal-joule account is otherwise flat in DOP (the same
// core-seconds at the same watts) — the overhead makes the serial plan the
// strictly cheapest, matching the paper's observation that parallelism
// buys time, not marginal energy.
const parallelStartupCycles = 200e3

// bestScan picks the cheapest placement variant and degree of parallelism
// for alias under the objective, with local predicates pushed down.
func (o *optimizer) bestScan(alias string) (PhysNode, error) {
	pl := o.place[alias]
	needed := o.requiredCols(alias)
	preds := o.local[alias]

	var best *PScan
	var bestScore float64
	for _, v := range pl.Variants {
		schema := v.ST.Tab.Schema
		// Read set: needed columns (they include predicate columns).
		read := make([]int, 0, len(needed))
		for _, n := range needed {
			read = append(read, schema.MustColIndex(n))
		}
		emit := make([]int, len(read))
		for i := range emit {
			emit[i] = i
		}
		sel := 1.0
		for _, p := range preds {
			sel *= predSelectivity(p, o.colStats(alias, p.Left.Col))
		}
		card := float64(pl.Stats.Rows) * sel
		for _, dop := range o.dopCandidates(v.ST, len(read)) {
			cost := o.scanCost(v.ST, read, float64(pl.Stats.Rows), len(preds), dop)
			cand := &PScan{
				Alias: alias, Rel: o.q.Rels[alias], Variant: v,
				Read: read, Emit: emit, Preds: preds, DOP: dop,
				card: card, cost: cost,
			}
			cand.cols = make([]ColRef, len(needed))
			for i, n := range needed {
				cand.cols[i] = ColRef{Table: alias, Col: n}
			}
			if best == nil || o.env.Score(cost, o.obj) < bestScore {
				best = cand
				bestScore = o.env.Score(cost, o.obj)
			}
		}
	}
	return best, nil
}

// dopCandidates enumerates the degrees of parallelism worth pricing for a
// scan: powers of two up to the core count (plus the core count itself),
// capped by the morsel count — morsels are the unit of work distribution,
// so a worker beyond ceil(blocks/morsel) can never claim anything and is
// pure startup overhead the cpu/dop model would wrongly credit. Count-only
// column scans read nothing and stay serial.
func (o *optimizer) dopCandidates(st *exec.StoredTable, readCols int) []int {
	maxDop := o.env.Cores
	nm := (st.NumBlocks() + exec.DefaultMorselBlocks - 1) / exec.DefaultMorselBlocks
	if nm < maxDop {
		maxDop = nm
	}
	if maxDop <= 1 || (st.Layout == exec.ColumnMajor && readCols == 0) {
		return []int{1}
	}
	dops := []int{1}
	for d := 2; d < maxDop; d *= 2 {
		dops = append(dops, d)
	}
	return append(dops, maxDop)
}

// pipelineDops is the DOP sweep for whole pipeline fragments above the
// scan (partitioned aggregation, partitioned join builds): the scan's
// candidates, additionally capped by Env.MaxPipelineDOP.
func (o *optimizer) pipelineDops(st *exec.StoredTable, readCols int) []int {
	dops := o.dopCandidates(st, readCols)
	if lim := o.env.MaxPipelineDOP; lim > 0 {
		capped := make([]int, 0, len(dops))
		for _, d := range dops {
			if d <= lim {
				capped = append(capped, d)
			}
		}
		if len(capped) == 0 {
			capped = []int{1}
		}
		dops = capped
	}
	return dops
}

// scanWork is the decomposed cost of one table scan: I/O elapsed seconds,
// single-core CPU seconds, and the storage energy — the pieces
// pipeline-level parallelism recombines. CPU divides by DOP; I/O time and
// every joule do not (the fragments share the volume's bandwidth and the
// work is the same regardless of how many cores execute it).
type scanWork struct {
	ioSecs    float64
	cpuSecs   float64
	ioJoules  float64
	pipelined bool // column scans overlap I/O with CPU; row scans read-then-parse
}

// scanWork decomposes the cost of scanning the given columns of st. A
// column scan that reads no columns (count-only plan) touches neither the
// volume nor the data: it emits block cardinality from placement metadata
// for free.
func (o *optimizer) scanWork(st *exec.StoredTable, readCols []int, rows float64, predTerms int) scanWork {
	env := o.env
	if st.Layout == exec.ColumnMajor && len(readCols) == 0 {
		return scanWork{pipelined: true}
	}
	var encBytes, rawBytes, decodeCycles float64
	if st.Layout == exec.ColumnMajor {
		for _, ci := range readCols {
			enc := float64(st.ColEncodedBytes(ci))
			encBytes += enc
			raw := float64(st.ColRawBytes(ci))
			rawBytes += raw
			decodeCycles += raw * st.Codecs[ci].Cost().DecodeCyclesPerByte
		}
	} else {
		encBytes = float64(st.EncodedBytes())
		rawBytes = float64(st.RawBytes())
		decodeCycles = rawBytes * (st.RowCodec.Cost().DecodeCyclesPerByte + env.Costs.RowParseCyclesPerByte)
	}
	pages := encBytes/float64(env.PageBytes) + float64(st.NumBlocks()*maxInt(1, len(readCols)))
	ioTime := encBytes/env.ScanBW + pages*env.PageLatency
	cpuCycles := decodeCycles + rawBytes*env.Costs.ScanCyclesPerByte +
		rows*float64(predTerms)*env.Costs.FilterCyclesPerRow
	return scanWork{
		ioSecs:    ioTime,
		cpuSecs:   cpuCycles / env.CPUFreqHz,
		ioJoules:  ioTime * env.StorageWatt,
		pipelined: st.Layout == exec.ColumnMajor,
	}
}

// elapsed is the scan's wall time when its CPU work — plus extraCPUSecs of
// downstream pipeline work fragmented along with it — runs dop-wide.
func (w scanWork) elapsed(extraCPUSecs float64, dop int) float64 {
	cpu := (w.cpuSecs + extraCPUSecs) / float64(dop)
	if w.pipelined {
		return math.Max(w.ioSecs, cpu)
	}
	return w.ioSecs + cpu
}

// pipeWork is the decomposed cost of a fragmentable pipeline: the leaf
// scan's io/cpu/joule split, the per-row CPU of the filter, project and
// probe operators that fragment along with the scan, the serial prefix
// that must complete before the pipeline streams (hash-join build
// phases), and the hash-table working set held live while it does.
type pipeWork struct {
	scan     scanWork
	extraCPU float64 // seconds of fragmented per-row work above the scan
	prefix   Cost    // serial build phases preceding the streaming pipeline
	memBytes float64 // build tables held live while the pipeline streams
	src      *PScan  // the leaf scan; the DOP sweep bounds come from its table
}

// pipelineWork decomposes n's cost when its whole pipeline can fragment
// end to end: a PScan leaf under any stack of PFilter, PProject and
// hash-PJoin probe sides. It mirrors fragSource — shapes it declines
// cannot BuildFragments either — and prices filter and probe CPU inside
// the fragmented pipeline (divided by DOP alongside the scan) instead of
// as a serial tax above the exchange.
func (o *optimizer) pipelineWork(n PhysNode) (pipeWork, bool) {
	env := o.env
	switch v := n.(type) {
	case *PScan:
		w := o.scanWork(v.Variant.ST, v.Read, float64(v.Variant.ST.Tab.Rows()), len(v.Preds))
		return pipeWork{scan: w, src: v}, true
	case *PFilter:
		pw, ok := o.pipelineWork(v.In)
		if !ok {
			return pw, false
		}
		pw.extraCPU += v.In.Card() * float64(len(v.Preds)) * env.Costs.FilterCyclesPerRow / env.CPUFreqHz
		return pw, true
	case *PProject:
		pw, ok := o.pipelineWork(v.In)
		if !ok {
			return pw, false
		}
		pw.extraCPU += v.In.Card() * float64(len(v.Exprs)) * env.Costs.ProjectCyclesPerRow / env.CPUFreqHz
		return pw, true
	case *PJoin:
		if v.Algo != "hash" {
			return pipeWork{}, false
		}
		pw, ok := o.pipelineWork(v.Right)
		if !ok {
			return pw, false
		}
		pw.extraCPU += (v.Right.Card()*env.Costs.HashProbeCyclesPerRow +
			v.Card()*env.Costs.JoinOutputCyclesPerRow) / env.CPUFreqHz
		// The build side runs to completion before the probe streams: a
		// serial prefix priced at the build input's own cost plus table
		// insertion, with its tables resident for the rest of the pipeline.
		bsecs := v.Left.Card() * env.Costs.HashBuildCyclesPerRow / env.CPUFreqHz
		pw.prefix = pw.prefix.Add(v.Left.Cost()).Add(Cost{
			Seconds: bsecs, Joules: bsecs * env.CPUWattPerCore})
		pw.memBytes += v.Left.Card() * v.Left.RowBytes()
		return pw, true
	}
	return pipeWork{}, false
}

// scanCost prices a dop-way scan of the given columns of st.
//
// Parallelism divides CPU time across dop cores but not I/O time — the
// fragments share the same volume bandwidth — so elapsed time approaches
// max(io, cpu/dop) while the joule account is unchanged: the same
// core-seconds of work at the same active watts, plus a small startup
// overhead per extra worker.
func (o *optimizer) scanCost(st *exec.StoredTable, readCols []int, rows float64, predTerms, dop int) Cost {
	if st.Layout == exec.ColumnMajor && len(readCols) == 0 {
		return Cost{}
	}
	if dop < 1 {
		dop = 1
	}
	env := o.env
	w := o.scanWork(st, readCols, rows, predTerms)
	startup := float64(dop-1) * parallelStartupCycles / env.CPUFreqHz
	return Cost{
		Seconds: w.elapsed(0, dop) + startup,
		Joules:  (w.cpuSecs+startup)*env.CPUWattPerCore + w.ioJoules,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// colStats returns statistics for alias.col, or nil.
func (o *optimizer) colStats(alias, col string) *ColStats {
	pl := o.place[alias]
	i := pl.Variants[0].ST.Tab.Schema.ColIndex(col)
	if i < 0 {
		return nil
	}
	return &pl.Stats.Cols[i]
}

// predSelectivity estimates the fraction of rows passing p.
func predSelectivity(p PredIR, cs *ColStats) float64 {
	switch p.Op {
	case exec.Eq:
		if p.IsJoin {
			return 0.1
		}
		if cs != nil && cs.NDV > 0 {
			return 1 / float64(cs.NDV)
		}
		return 0.01
	case exec.Ne:
		return 0.9
	default:
		return 1.0 / 3
	}
}

// joinDP finds the cheapest join tree over all aliases.
func (o *optimizer) joinDP(scans map[string]PhysNode) (PhysNode, error) {
	n := len(o.aliases)
	if n == 1 {
		return scans[o.aliases[0]], nil
	}
	idx := map[string]int{}
	for i, a := range o.aliases {
		idx[a] = i
	}
	best := make(map[uint32]PhysNode)
	for i, a := range o.aliases {
		best[1<<uint(i)] = scans[a]
	}
	full := uint32(1)<<uint(n) - 1
	for size := 2; size <= n; size++ {
		for mask := uint32(1); mask <= full; mask++ {
			if popcount(mask) != size {
				continue
			}
			var bestPlan PhysNode
			var bestScore float64
			// Enumerate proper subset splits.
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask ^ sub
				if sub > other {
					continue // each unordered split once
				}
				l, lok := best[sub]
				r, rok := best[other]
				if !lok || !rok {
					continue
				}
				// Find a connecting equality predicate.
				for _, jp := range o.joins {
					li, ri := idx[jp.Left.Table], idx[jp.Right.Table]
					var a, b PhysNode
					var ac, bc ColRef
					switch {
					case sub&(1<<uint(li)) != 0 && other&(1<<uint(ri)) != 0:
						a, b, ac, bc = l, r, jp.Left, jp.Right
					case sub&(1<<uint(ri)) != 0 && other&(1<<uint(li)) != 0:
						a, b, ac, bc = l, r, jp.Right, jp.Left
					default:
						continue
					}
					for _, cand := range o.joinCandidates(a, b, ac, bc, jp) {
						if bestPlan == nil || o.env.Score(cand.Cost(), o.obj) < bestScore {
							bestPlan = cand
							bestScore = o.env.Score(cand.Cost(), o.obj)
						}
					}
				}
			}
			if bestPlan != nil {
				best[mask] = bestPlan
			}
		}
	}
	plan, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("opt: join graph is disconnected (missing equality predicates)")
	}
	return plan, nil
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// joinCandidates prices hash join (both build orientations) and block
// nested-loop join for a (left cols, right cols) equality pair.
func (o *optimizer) joinCandidates(l, r PhysNode, lc, rc ColRef, jp PredIR) []PhysNode {
	env := o.env
	li := colIndex(l.Columns(), lc)
	ri := colIndex(r.Columns(), rc)
	if li < 0 || ri < 0 {
		return nil
	}
	outCard := joinCard(l, r, o.ndvOf(lc, l), o.ndvOf(rc, r))
	cols := append(append([]ColRef{}, l.Columns()...), r.Columns()...)
	colsRev := append(append([]ColRef{}, r.Columns()...), l.Columns()...)

	var out []PhysNode
	mkHash := func(build, probe PhysNode, bi, pi int, cs []ColRef) {
		buildMem := build.Card() * build.RowBytes()
		cycles := build.Card()*env.Costs.HashBuildCyclesPerRow +
			probe.Card()*env.Costs.HashProbeCyclesPerRow +
			outCard*env.Costs.JoinOutputCyclesPerRow
		secs := cycles / env.CPUFreqHz
		elapsed := build.Cost().Seconds + probe.Cost().Seconds + secs
		c := build.Cost().Add(probe.Cost()).Add(Cost{
			Seconds:  secs,
			Joules:   secs*env.CPUWattPerCore + buildMem*env.DRAMWattPerByte*elapsed,
			MemBytes: int64(buildMem),
		})
		out = append(out, &PJoin{Algo: "hash", Left: build, Right: probe,
			LeftCol: bi, RightCol: pi, Pred: jp, cols: cs, card: outCard, cost: c})

		// Partitioned parallel build: when the build side is a bare scan,
		// the whole scan→partition→insert pipeline fragments dop-ways, so
		// the build phase's elapsed time approaches max(io, cpu/dop) while
		// its joules only grow by worker startup — the probe is unchanged.
		if bs, ok := build.(*PScan); ok {
			w := o.scanWork(bs.Variant.ST, bs.Read, float64(bs.Variant.ST.Tab.Rows()), len(bs.Preds))
			buildCPU := build.Card() * env.Costs.HashBuildCyclesPerRow / env.CPUFreqHz
			probeSecs := (probe.Card()*env.Costs.HashProbeCyclesPerRow +
				outCard*env.Costs.JoinOutputCyclesPerRow) / env.CPUFreqHz
			for _, dop := range o.pipelineDops(bs.Variant.ST, len(bs.Read)) {
				if dop <= 1 {
					continue
				}
				startup := float64(dop-1) * parallelStartupCycles / env.CPUFreqHz
				buildSecs := w.elapsed(buildCPU, dop) + startup
				pelapsed := buildSecs + probe.Cost().Seconds + probeSecs
				pc := probe.Cost().Add(Cost{
					Seconds: buildSecs + probeSecs,
					Joules: (w.cpuSecs+buildCPU+startup+probeSecs)*env.CPUWattPerCore +
						w.ioJoules + buildMem*env.DRAMWattPerByte*pelapsed,
					MemBytes: int64(buildMem),
				})
				out = append(out, &PJoin{Algo: "hash", Left: build, Right: probe,
					LeftCol: bi, RightCol: pi, Pred: jp, BuildDOP: dop,
					cols: cs, card: outCard, cost: pc})
			}
		}

		// Fragmented probe: when the probe side fragments end to end, the
		// probe pipeline plus probe and output CPU divides across dop cores
		// against the finished shared build, while the build phase and every
		// joule stay — probe-side parallelism also buys time, not marginal
		// energy.
		pw, pok := o.pipelineWork(probe)
		if !pok {
			return
		}
		buildCPUSecs := build.Card() * env.Costs.HashBuildCyclesPerRow / env.CPUFreqHz
		streamCPU := pw.extraCPU + (probe.Card()*env.Costs.HashProbeCyclesPerRow+
			outCard*env.Costs.JoinOutputCyclesPerRow)/env.CPUFreqHz
		for _, dop := range o.pipelineDops(pw.src.Variant.ST, len(pw.src.Read)) {
			if dop <= 1 {
				continue
			}
			startup := float64(dop-1) * parallelStartupCycles / env.CPUFreqHz
			stream := pw.scan.elapsed(streamCPU, dop) + startup
			pelapsed := build.Cost().Seconds + buildCPUSecs + pw.prefix.Seconds + stream
			pj := build.Cost().Add(Cost{
				Seconds: buildCPUSecs + pw.prefix.Seconds + stream,
				Joules: buildCPUSecs*env.CPUWattPerCore + pw.prefix.Joules +
					(pw.scan.cpuSecs+streamCPU+startup)*env.CPUWattPerCore + pw.scan.ioJoules +
					(buildMem+pw.memBytes)*env.DRAMWattPerByte*pelapsed,
				MemBytes: int64(buildMem + pw.memBytes),
			})
			out = append(out, &PJoin{Algo: "hash", Left: build, Right: probe,
				LeftCol: bi, RightCol: pi, Pred: jp, ProbeDOP: dop,
				cols: cs, card: outCard, cost: pj})
		}
	}
	mkHash(l, r, li, ri, cols)
	mkHash(r, l, ri, li, colsRev)

	// Block NL: outer = smaller side; the inner is re-executed once per
	// outer batch, paying its full cost each time but holding no memory.
	outer, inner := l, r
	oc, ic := li, ri
	ocols := cols
	if r.Card() < l.Card() {
		outer, inner = r, l
		oc, ic = ri, li
		ocols = colsRev
	}
	batches := math.Max(1, math.Ceil(outer.Card()/4096))
	pairs := outer.Card() * inner.Card()
	cycles := pairs*env.Costs.FilterCyclesPerRow + outCard*env.Costs.JoinOutputCyclesPerRow
	secs := cycles / env.CPUFreqHz
	innerCost := inner.Cost()
	c := outer.Cost().Add(Cost{
		Seconds: innerCost.Seconds*batches + secs,
		Joules:  innerCost.Joules*batches + secs*env.CPUWattPerCore,
	})
	out = append(out, &PJoin{Algo: "nl", Left: outer, Right: inner,
		LeftCol: oc, RightCol: ic, Pred: jp, cols: ocols, card: outCard, cost: c})
	return out
}

// collectJoinPreds gathers the equality predicates a join tree applies.
func collectJoinPreds(n PhysNode, out map[string]bool) {
	switch v := n.(type) {
	case *PJoin:
		out[v.Pred.String()] = true
		collectJoinPreds(v.Left, out)
		collectJoinPreds(v.Right, out)
	case *PFilter:
		collectJoinPreds(v.In, out)
	case *PProject:
		collectJoinPreds(v.In, out)
	case *PAgg:
		collectJoinPreds(v.In, out)
	case *PSort:
		collectJoinPreds(v.In, out)
	case *PLimit:
		collectJoinPreds(v.In, out)
	}
}

func joinCard(l, r PhysNode, lNDV, rNDV float64) float64 {
	d := math.Max(lNDV, rNDV)
	if d < 1 {
		d = 1
	}
	return l.Card() * r.Card() / d
}

// ndvOf estimates the distinct count of a column at a node, capped by the
// node's cardinality.
func (o *optimizer) ndvOf(c ColRef, node PhysNode) float64 {
	cs := o.colStats(c.Table, c.Col)
	ndv := 1000.0
	if cs != nil {
		ndv = float64(cs.NDV)
	}
	return math.Min(ndv, math.Max(1, node.Card()))
}

// buildAgg lowers GROUP BY + aggregates: a projection computes group keys
// and aggregate arguments as columns, then a PAgg consumes them.
func (o *optimizer) buildAgg(in PhysNode) (PhysNode, error) {
	var exprs []*ExprIR
	var names []string
	var cols []ColRef
	for i, g := range o.q.GroupBy {
		g := g
		exprs = append(exprs, &ExprIR{Col: &g})
		names = append(names, fmt.Sprintf("g%d", i))
		cols = append(cols, g)
	}
	groupPos := make([]int, len(o.q.GroupBy))
	for i := range groupPos {
		groupPos[i] = i
	}
	var aggs []exec.AggSpec
	var aggRefs []ColRef
	for _, out := range o.q.Outputs {
		if out.Agg == nil {
			continue
		}
		spec := exec.AggSpec{Func: out.Agg.Func, As: out.Agg.As}
		if out.Agg.Arg != nil {
			spec.Col = len(exprs)
			exprs = append(exprs, out.Agg.Arg)
			names = append(names, spec.As+"_arg")
			cols = append(cols, ColRef{Col: spec.As + "_arg"})
		}
		aggs = append(aggs, spec)
		aggRefs = append(aggRefs, ColRef{Col: spec.As})
	}
	projCost := in.Cost().Add(Cost{
		Seconds: in.Card() * float64(len(exprs)) * o.env.Costs.ProjectCyclesPerRow / o.env.CPUFreqHz,
		Joules:  in.Card() * float64(len(exprs)) * o.env.Costs.ProjectCyclesPerRow / o.env.CPUFreqHz * o.env.CPUWattPerCore,
	})
	proj := &PProject{In: in, Exprs: exprs, Names: names, cols: cols, cost: projCost}

	groups := math.Max(1, in.Card()/10) // crude group-count estimate
	aggCycles := in.Card() * float64(maxInt(1, len(aggs))) * o.env.Costs.AggCyclesPerRow
	mem := int64(groups * proj.RowBytes())
	aggCost := projCost.Add(Cost{
		Seconds:  aggCycles / o.env.CPUFreqHz,
		Joules:   aggCycles / o.env.CPUFreqHz * o.env.CPUWattPerCore,
		MemBytes: mem,
	})
	outCols := append(append([]ColRef{}, o.q.GroupBy...), aggRefs...)
	best := &PAgg{In: proj, Group: groupPos, Aggs: aggs, AggRefs: aggRefs,
		cols: outCols, card: groups, cost: aggCost}
	bestScore := o.env.Score(aggCost, o.obj)

	// Extend the DOP sweep to the whole pipeline: when the aggregation's
	// input fragments end to end (a scan under any stack of filters,
	// projections and hash-join probe sides — see pipelineWork), price
	// fragmenting input+project+partial-agg dop-ways followed by a
	// partition-wise parallel merge. Elapsed time approaches the serial
	// prefix (join builds) plus max(io, pipelineCPU/dop) plus a merge term;
	// joules stay flat in dop except for the dop× partial groups the merge
	// folds and the per-worker startup overhead (two process waves:
	// fragments, then merge workers), so MinTime buys parallel aggregation
	// while MinEnergy keeps the serial plan — per operator, not just per
	// scan. Filter and probe CPU is priced inside the fragments here, not
	// as the serial tax the non-fragmented candidates carry.
	if pw, ok := o.pipelineWork(in); ok {
		env := o.env
		projCycles := in.Card() * float64(len(exprs)) * env.Costs.ProjectCyclesPerRow
		foldCycles := groups * float64(maxInt(1, len(aggs))) * env.Costs.AggCyclesPerRow
		for _, dop := range o.pipelineDops(pw.src.Variant.ST, len(pw.src.Read)) {
			if dop <= 1 {
				continue
			}
			pipeCPU := pw.extraCPU + (projCycles+aggCycles)/env.CPUFreqHz
			startup := float64(2*(dop-1)) * parallelStartupCycles / env.CPUFreqHz
			mergeSecs := foldCycles / env.CPUFreqHz // dop merge workers fold dop partials in parallel
			stream := pw.scan.elapsed(pipeCPU, dop) + mergeSecs + startup
			secs := pw.prefix.Seconds + stream
			joules := pw.prefix.Joules + (pw.scan.cpuSecs+pipeCPU+startup)*env.CPUWattPerCore +
				pw.scan.ioJoules + float64(dop)*foldCycles/env.CPUFreqHz*env.CPUWattPerCore +
				pw.memBytes*env.DRAMWattPerByte*stream
			c := Cost{Seconds: secs, Joules: joules,
				MemBytes: int64(dop)*mem + int64(pw.memBytes)}
			if o.env.Score(c, o.obj) < bestScore {
				best = &PAgg{In: proj, Group: groupPos, Aggs: aggs, AggRefs: aggRefs,
					DOP: dop, cols: outCols, card: groups, cost: c}
				bestScore = o.env.Score(c, o.obj)
			}
		}
	}
	return best, nil
}

// buildFinalSelect reorders the aggregate node's output (group columns
// then aggregates) into the SELECT-list order the user asked for.
func (o *optimizer) buildFinalSelect(in PhysNode) (PhysNode, error) {
	var exprs []*ExprIR
	var names []string
	var cols []ColRef
	for i, out := range o.q.Outputs {
		name := out.As
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		if out.Agg != nil {
			ref := ColRef{Col: out.Agg.As}
			exprs = append(exprs, &ExprIR{Col: &ref})
		} else {
			exprs = append(exprs, out.Expr)
		}
		names = append(names, name)
		cols = append(cols, ColRef{Col: name})
	}
	cost := in.Cost().Add(Cost{
		Seconds: in.Card() * float64(len(exprs)) * o.env.Costs.ProjectCyclesPerRow / o.env.CPUFreqHz,
		Joules:  in.Card() * float64(len(exprs)) * o.env.Costs.ProjectCyclesPerRow / o.env.CPUFreqHz * o.env.CPUWattPerCore,
	})
	return &PProject{In: in, Exprs: exprs, Names: names, cols: cols, cost: cost}, nil
}

// buildProject lowers the plain SELECT list.
func (o *optimizer) buildProject(in PhysNode) (PhysNode, error) {
	var exprs []*ExprIR
	var names []string
	var cols []ColRef
	for i, out := range o.q.Outputs {
		if out.Agg != nil {
			return nil, fmt.Errorf("opt: aggregate in non-aggregate query")
		}
		exprs = append(exprs, out.Expr)
		name := out.As
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		names = append(names, name)
		cols = append(cols, ColRef{Col: name})
	}
	cost := in.Cost().Add(Cost{
		Seconds: in.Card() * float64(len(exprs)) * o.env.Costs.ProjectCyclesPerRow / o.env.CPUFreqHz,
		Joules:  in.Card() * float64(len(exprs)) * o.env.Costs.ProjectCyclesPerRow / o.env.CPUFreqHz * o.env.CPUWattPerCore,
	})
	return &PProject{In: in, Exprs: exprs, Names: names, cols: cols, cost: cost}, nil
}
