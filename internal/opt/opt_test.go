package opt

import (
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"energydb/internal/compress"
	"energydb/internal/energy"
	"energydb/internal/exec"
	"energydb/internal/hw"
	"energydb/internal/sim"
	"energydb/internal/storage"
	"energydb/internal/table"
)

// testWorld is a catalog over a simulated 1-CPU + 3-SSD machine with two
// relations: a fact table (ordersish) and a small dimension (custish).
type testWorld struct {
	eng   *sim.Engine
	meter *energy.Meter
	cpu   *hw.CPU
	vol   *storage.Volume
	cat   *Catalog
	env   *Env
}

func newWorld(t *testing.T, factRows, dimRows int) *testWorld {
	t.Helper()
	eng := sim.NewEngine()
	meter := energy.NewMeter()
	cpu := hw.NewCPU(eng, meter, "cpu", hw.ScanCPU2008())
	devs := make([]storage.BlockDevice, 3)
	for i := range devs {
		devs[i] = hw.NewSSD(eng, meter, fmt.Sprintf("ssd%d", i), hw.FlashSSD2008())
	}
	vol := storage.NewVolume("vol", storage.Striped, 16<<10, devs)

	fact := factTable(factRows)
	dim := dimTable(dimRows)
	cat := NewCatalog()

	addRel := func(tab *table.Table, fileBase int32) {
		colsRaw := make([]compress.Codec, len(tab.Schema.Cols))
		colsLZ := make([]compress.Codec, len(tab.Schema.Cols))
		for i := range colsRaw {
			colsRaw[i] = compress.Raw
			colsLZ[i] = compress.LZ
		}
		stRaw, err := exec.PlaceColumnMajor(tab, vol, fileBase, 8192, colsRaw)
		if err != nil {
			t.Fatal(err)
		}
		stLZ, err := exec.PlaceColumnMajor(tab, vol, fileBase+1, 8192, colsLZ)
		if err != nil {
			t.Fatal(err)
		}
		stRow, err := exec.PlaceRowMajor(tab, vol, fileBase+2, 8192, compress.Raw)
		if err != nil {
			t.Fatal(err)
		}
		cat.Add(tab.Schema.Name, &Placement{
			Variants: []Variant{
				{Name: "col/raw", ST: stRaw},
				{Name: "col/lz", ST: stLZ},
				{Name: "row/raw", ST: stRow},
			},
			Stats: Analyze(tab),
		})
	}
	addRel(fact, 10)
	addRel(dim, 20)

	spec := hw.FlashSSD2008()
	env := &Env{
		CPUFreqHz:       2.4e9,
		Cores:           1,
		ScanBW:          3 * spec.ReadBW,
		PageLatency:     spec.ReadLatency,
		PageBytes:       16 << 10,
		CPUWattPerCore:  90,
		StorageWatt:     5,
		DRAMWattPerByte: 1.3e-9, // ~1.3 W/GB datasheet
		Costs:           exec.DefaultCosts(),
	}
	return &testWorld{eng: eng, meter: meter, cpu: cpu, vol: vol, cat: cat, env: env}
}

func factTable(n int) *table.Table {
	s := table.NewSchema("fact",
		table.Col("f_key", table.Int64),
		table.Col("f_dim", table.Int64),
		table.Col("f_price", table.Float64),
		table.ColW("f_tag", table.String, 10),
	)
	rng := rand.New(rand.NewSource(11))
	tags := []string{"alpha", "beta", "gamma", "delta"}
	t := table.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendRow(
			table.IntVal(int64(i)),
			table.IntVal(rng.Int63n(50)),
			table.FloatVal(rng.Float64()*1000),
			table.StrVal(tags[rng.Intn(len(tags))]),
		)
	}
	return t
}

func dimTable(n int) *table.Table {
	s := table.NewSchema("dim",
		table.Col("d_key", table.Int64),
		table.ColW("d_name", table.String, 12),
	)
	t := table.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendRow(table.IntVal(int64(i)), table.StrVal(fmt.Sprintf("dim-%03d", i)))
	}
	return t
}

// execute runs a plan on the world's hardware and returns the result.
func (w *testWorld) execute(t *testing.T, plan *Plan) *table.Table {
	t.Helper()
	var out *table.Table
	w.eng.Go("query", func(p *sim.Proc) {
		ctx := exec.NewCtx(p, w.cpu)
		op, err := plan.Build(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		out, err = exec.Collect(ctx, op)
		if err != nil {
			t.Error(err)
		}
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func col(tbl, c string) ColRef { return ColRef{Table: tbl, Col: c} }

func TestOptimizeSingleTableFilter(t *testing.T) {
	w := newWorld(t, 20000, 50)
	q := &Query{
		Tables: []string{"f"},
		Rels:   map[string]string{"f": "fact"},
		Preds: []PredIR{
			{Left: col("f", "f_dim"), Op: exec.Eq, Val: table.IntVal(7)},
		},
		Outputs: []OutputIR{
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"},
		},
		Limit: -1,
	}
	plan, err := Optimize(q, w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	got := w.execute(t, plan)

	// Cross-check against the raw data.
	fact, _ := w.cat.Get("fact")
	tab := fact.Variants[0].ST.Tab
	want := 0
	for i := 0; i < tab.Rows(); i++ {
		if tab.Column(1).I[i] == 7 {
			want++
		}
	}
	if got.Rows() != want {
		t.Fatalf("rows = %d, want %d", got.Rows(), want)
	}
	if !strings.Contains(plan.Explain(), "scan") {
		t.Fatal("explain missing scan node")
	}
}

func TestAccessPathFlipsWithObjective(t *testing.T) {
	// The Figure 2 flip at plan level: on a 90 W CPU with 5 W flash, the
	// time objective should choose the compressed variant (less I/O, scan
	// is I/O-bound) while the energy objective should choose raw (the
	// decompression cycles cost more joules than the saved I/O).
	// Scan a compressible column (small ints compress ~5x under LZ); a
	// random-float column would make raw optimal under both objectives.
	w := newWorld(t, 30000, 50)
	q := func() *Query {
		return &Query{
			Tables: []string{"f"},
			Rels:   map[string]string{"f": "fact"},
			Outputs: []OutputIR{
				{Agg: &AggIR{Func: exec.Sum, Arg: &ExprIR{Col: &ColRef{Table: "f", Col: "f_dim"}}, As: "s"}},
			},
			Limit: -1,
		}
	}
	timePlan, err := Optimize(q(), w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	energyPlan, err := Optimize(q(), w.cat, w.env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	tv := findScanVariant(timePlan.Root)
	ev := findScanVariant(energyPlan.Root)
	if tv != "col/lz" {
		t.Errorf("time objective chose %q, want col/lz\n%s", tv, timePlan.Explain())
	}
	if ev != "col/raw" {
		t.Errorf("energy objective chose %q, want col/raw\n%s", ev, energyPlan.Explain())
	}
	// Both models must agree with their own accounting.
	if timePlan.Cost().Seconds > energyPlan.Cost().Seconds {
		t.Error("time-optimal plan is slower than energy-optimal plan")
	}
	if energyPlan.Cost().Joules > timePlan.Cost().Joules {
		t.Error("energy-optimal plan uses more joules than time-optimal plan")
	}
}

func findScanVariant(n PhysNode) string {
	switch v := n.(type) {
	case *PScan:
		return v.Variant.Name
	case *PJoin:
		if s := findScanVariant(v.Left); s != "" {
			return s
		}
		return findScanVariant(v.Right)
	case *PFilter:
		return findScanVariant(v.In)
	case *PProject:
		return findScanVariant(v.In)
	case *PAgg:
		return findScanVariant(v.In)
	case *PSort:
		return findScanVariant(v.In)
	case *PLimit:
		return findScanVariant(v.In)
	default:
		return ""
	}
}

func TestJoinPlanCorrectness(t *testing.T) {
	w := newWorld(t, 5000, 50)
	q := &Query{
		Tables: []string{"f", "d"},
		Rels:   map[string]string{"f": "fact", "d": "dim"},
		Preds: []PredIR{
			{Left: col("f", "f_dim"), Op: exec.Eq, Right: col("d", "d_key"), IsJoin: true},
			{Left: col("d", "d_key"), Op: exec.Lt, Val: table.IntVal(10)},
		},
		Outputs: []OutputIR{
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"},
			{Expr: &ExprIR{Col: &ColRef{Table: "d", Col: "d_name"}}, As: "n"},
		},
		Limit: -1,
	}
	plan, err := Optimize(q, w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	got := w.execute(t, plan)

	fact, _ := w.cat.Get("fact")
	tab := fact.Variants[0].ST.Tab
	want := 0
	for i := 0; i < tab.Rows(); i++ {
		if tab.Column(1).I[i] < 10 {
			want++
		}
	}
	if got.Rows() != want {
		t.Fatalf("join rows = %d, want %d", got.Rows(), want)
	}
}

func TestJoinAlgorithmFlipsWithMemoryPower(t *testing.T) {
	// §4.1: pricing memory steeply should tip the optimizer from hash
	// join to nested-loop join. With an 8-row dimension the NL penalty is
	// small; sweep the DRAM holding-power knob until the flip happens.
	w := newWorld(t, 200000, 8)
	mkQ := func() *Query {
		return &Query{
			Tables: []string{"f", "d"},
			Rels:   map[string]string{"f": "fact", "d": "dim"},
			Preds: []PredIR{
				{Left: col("f", "f_dim"), Op: exec.Eq, Right: col("d", "d_key"), IsJoin: true},
			},
			Outputs: []OutputIR{
				{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"},
			},
			Limit: -1,
		}
	}
	algoAt := func(wattPerByte float64, obj Objective) string {
		env := *w.env
		env.DRAMWattPerByte = wattPerByte
		plan, err := Optimize(mkQ(), w.cat, &env, obj)
		if err != nil {
			t.Fatal(err)
		}
		return findJoinAlgo(plan.Root)
	}
	// At datasheet power both objectives pick hash.
	if a := algoAt(1.3e-9, MinTime); a != "hash" {
		t.Fatalf("time objective picked %q at datasheet power", a)
	}
	if a := algoAt(1.3e-9, MinEnergy); a != "hash" {
		t.Fatalf("energy objective picked %q at datasheet power", a)
	}
	// Sweep upward: the energy objective must flip to NL at some price
	// while the time objective never moves (memory watts don't cost time).
	flipped := false
	for _, wpb := range []float64{1e-6, 1e-4, 1e-2, 1} {
		if algoAt(wpb, MinEnergy) == "nl" {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("energy objective never flipped to nested-loop join")
	}
	if a := algoAt(1, MinTime); a != "hash" {
		t.Fatalf("time objective flipped to %q — it should ignore memory power", a)
	}
}

func findJoinAlgo(n PhysNode) string {
	switch v := n.(type) {
	case *PJoin:
		return v.Algo
	case *PFilter:
		return findJoinAlgo(v.In)
	case *PProject:
		return findJoinAlgo(v.In)
	case *PAgg:
		return findJoinAlgo(v.In)
	case *PSort:
		return findJoinAlgo(v.In)
	case *PLimit:
		return findJoinAlgo(v.In)
	default:
		return ""
	}
}

func TestAggregationPlan(t *testing.T) {
	w := newWorld(t, 8000, 50)
	q := &Query{
		Tables: []string{"f"},
		Rels:   map[string]string{"f": "fact"},
		Outputs: []OutputIR{
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_tag"}}, As: "tag"},
			{Agg: &AggIR{Func: exec.Count, As: "n"}, As: "n"},
			{Agg: &AggIR{Func: exec.Sum, Arg: &ExprIR{Col: &ColRef{Table: "f", Col: "f_price"}}, As: "rev"}, As: "rev"},
		},
		GroupBy: []ColRef{col("f", "f_tag")},
		OrderBy: []OrderIR{{Output: 0}},
		Limit:   -1,
	}
	plan, err := Optimize(q, w.cat, w.env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	got := w.execute(t, plan)
	if got.Rows() != 4 {
		t.Fatalf("groups = %d, want 4", got.Rows())
	}
	var n int64
	for i := 0; i < got.Rows(); i++ {
		n += got.Column(1).I[i]
	}
	if n != 8000 {
		t.Fatalf("counts sum to %d", n)
	}
	// Sorted by tag ascending.
	for i := 1; i < got.Rows(); i++ {
		if got.Column(0).S[i] < got.Column(0).S[i-1] {
			t.Fatal("order by violated")
		}
	}
}

func TestLimitPlan(t *testing.T) {
	w := newWorld(t, 5000, 50)
	q := &Query{
		Tables:  []string{"f"},
		Rels:    map[string]string{"f": "fact"},
		Outputs: []OutputIR{{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"}},
		Limit:   7,
	}
	plan, err := Optimize(q, w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	got := w.execute(t, plan)
	if got.Rows() != 7 {
		t.Fatalf("rows = %d, want 7", got.Rows())
	}
}

func TestDisconnectedJoinGraphErrors(t *testing.T) {
	w := newWorld(t, 100, 10)
	q := &Query{
		Tables:  []string{"f", "d"},
		Rels:    map[string]string{"f": "fact", "d": "dim"},
		Outputs: []OutputIR{{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"}},
		Limit:   -1,
	}
	if _, err := Optimize(q, w.cat, w.env, MinTime); err == nil {
		t.Fatal("expected disconnected-join error")
	}
}

func TestUnknownRelationErrors(t *testing.T) {
	w := newWorld(t, 100, 10)
	q := &Query{
		Tables: []string{"x"},
		Rels:   map[string]string{"x": "ghost"},
		Limit:  -1,
	}
	if _, err := Optimize(q, w.cat, w.env, MinTime); err == nil {
		t.Fatal("expected unknown-relation error")
	}
}

func TestAnalyzeStats(t *testing.T) {
	tab := dimTable(25)
	st := Analyze(tab)
	if st.Rows != 25 {
		t.Fatalf("rows = %d", st.Rows)
	}
	if st.Cols[0].NDV != 25 {
		t.Fatalf("key NDV = %d, want 25", st.Cols[0].NDV)
	}
	if st.Cols[0].Min.I != 0 || st.Cols[0].Max.I != 24 {
		t.Fatalf("min/max = %v/%v", st.Cols[0].Min, st.Cols[0].Max)
	}
}

func TestCostScore(t *testing.T) {
	c := Cost{Seconds: 2, Joules: 10}
	if c.Score(MinTime) != 2 || c.Score(MinEnergy) != 10 || c.Score(MinEDP) != 20 {
		t.Fatalf("scores: %v %v %v", c.Score(MinTime), c.Score(MinEnergy), c.Score(MinEDP))
	}
	d := c.Add(Cost{Seconds: 1, Joules: 1, MemBytes: 5})
	if d.Seconds != 3 || d.Joules != 11 || d.MemBytes != 5 {
		t.Fatalf("add: %+v", d)
	}
}

// TestParallelScanDOPChoice: on a multi-core Env a CPU-bound scan should
// be planned parallel under MinTime (elapsed falls toward cpu/dop) but
// serial under MinEnergy (the joule account is flat in DOP, so the
// per-worker startup overhead makes dop=1 strictly cheapest). The chosen
// parallel plan must execute to the same result as the serial one.
func TestParallelScanDOPChoice(t *testing.T) {
	w := newWorld(t, 40000, 50)
	w.env.Cores = 8
	// Model storage as fast enough (bandwidth and per-page latency) that
	// the scan is CPU-bound in the cost model; execution correctness below
	// is independent of this.
	w.env.ScanBW *= 8
	w.env.PageLatency /= 50

	q := &Query{
		Tables: []string{"f"},
		Rels:   map[string]string{"f": "fact"},
		Preds: []PredIR{
			{Left: col("f", "f_price"), Op: exec.Lt, Val: table.FloatVal(900)},
		},
		Outputs: []OutputIR{
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"},
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_price"}}, As: "p"},
		},
		Limit: -1,
	}
	fast, err := Optimize(q, w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fast.Explain(), "dop=") {
		t.Fatalf("MinTime plan is serial on an 8-core env:\n%s", fast.Explain())
	}
	lean, err := Optimize(q, w.cat, w.env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(lean.Explain(), "dop=") {
		t.Fatalf("MinEnergy plan went parallel (joules should be flat in DOP):\n%s", lean.Explain())
	}
	if fast.Cost().Seconds >= lean.Cost().Seconds {
		t.Fatalf("parallel plan models no speedup: %v vs %v", fast.Cost(), lean.Cost())
	}

	// Both plans must produce the same rows (order-insensitive: the
	// parallel scan merges blocks in completion order).
	sum := func(tab *table.Table) (int, float64, float64) {
		var ks, ps float64
		for i := 0; i < tab.Rows(); i++ {
			ks += float64(tab.Column(0).I[i])
			ps += tab.Column(1).F[i]
		}
		return tab.Rows(), ks, ps
	}
	gotN, gotK, gotP := sum(w.execute(t, fast))
	wantN, wantK, wantP := sum(w.execute(t, lean))
	// The float checksum is summed in arrival order, which differs between
	// the serial and merged streams — equal up to summation rounding.
	if gotN != wantN || gotK != wantK || math.Abs(gotP-wantP) > math.Abs(wantP)*1e-12 {
		t.Fatalf("parallel result (%d, %v, %v) != serial (%d, %v, %v)",
			gotN, gotK, gotP, wantN, wantK, wantP)
	}
}

// TestParallelScanCostModel pins the dop sweep arithmetic: elapsed
// approaches max(io, cpu/dop) while joules only grow by startup overhead.
func TestParallelScanCostModel(t *testing.T) {
	w := newWorld(t, 40000, 50)
	w.env.Cores = 8
	w.env.ScanBW *= 8
	w.env.PageLatency /= 50
	o := &optimizer{q: &Query{}, cat: w.cat, env: w.env, obj: MinTime}
	pl, err := w.cat.Get("fact")
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Variants[0].ST
	c1 := o.scanCost(st, []int{0, 2}, float64(pl.Stats.Rows), 1, 1)
	c4 := o.scanCost(st, []int{0, 2}, float64(pl.Stats.Rows), 1, 4)
	if c4.Seconds >= c1.Seconds {
		t.Fatalf("dop=4 models no speedup: %v vs %v", c4, c1)
	}
	if c4.Joules <= c1.Joules {
		t.Fatalf("dop=4 models an energy win out of nowhere: %v vs %v", c4, c1)
	}
	if c4.Joules > c1.Joules*1.5 {
		t.Fatalf("dop=4 startup overhead too large: %v vs %v", c4, c1)
	}
}

// aggQuery is a many-group GROUP BY + SUM over the fact table.
func aggQuery() *Query {
	return &Query{
		Tables: []string{"f"},
		Rels:   map[string]string{"f": "fact"},
		Outputs: []OutputIR{
			{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_dim"}}, As: "k"},
			{Agg: &AggIR{Func: exec.Count, As: "n"}},
			{Agg: &AggIR{Func: exec.Sum, Arg: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "s"}},
		},
		GroupBy: []ColRef{{Table: "f", Col: "f_dim"}},
		Limit:   -1,
	}
}

// TestParallelAggDOPChoice: with a CPU-bound pipeline on a multi-core Env,
// MinTime must fragment the whole scan→project→aggregate pipeline (agg
// line carries dop=) while MinEnergy keeps the aggregation serial, and the
// two plans must execute to identical results (integer aggregates only, so
// equality is exact at any DOP). Capping Env.MaxPipelineDOP must pin the
// aggregation serial without touching scan parallelism.
func TestParallelAggDOPChoice(t *testing.T) {
	w := newWorld(t, 40000, 50)
	w.env.Cores = 8
	w.env.ScanBW *= 8
	w.env.PageLatency /= 50

	aggDop := regexp.MustCompile(`(?m)^\s*agg .*dop=`)
	fast, err := Optimize(aggQuery(), w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if !aggDop.MatchString(fast.Explain()) {
		t.Fatalf("MinTime kept the aggregation serial on an 8-core env:\n%s", fast.Explain())
	}
	lean, err := Optimize(aggQuery(), w.cat, w.env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if aggDop.MatchString(lean.Explain()) {
		t.Fatalf("MinEnergy bought parallel aggregation (joules are flat in DOP):\n%s", lean.Explain())
	}
	if fast.Cost().Seconds >= lean.Cost().Seconds {
		t.Fatalf("parallel agg models no speedup: %v vs %v", fast.Cost(), lean.Cost())
	}
	if lean.Cost().Joules > fast.Cost().Joules {
		t.Fatalf("MinEnergy plan hotter than MinTime plan: %v vs %v", lean.Cost(), fast.Cost())
	}

	w.env.MaxPipelineDOP = 1
	capped, err := Optimize(aggQuery(), w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if aggDop.MatchString(capped.Explain()) {
		t.Fatalf("MaxPipelineDOP=1 still fragmented the aggregation:\n%s", capped.Explain())
	}
	w.env.MaxPipelineDOP = 0

	got := w.execute(t, fast)
	want := w.execute(t, lean)
	if got.Rows() != want.Rows() {
		t.Fatalf("group counts differ: %d vs %d", got.Rows(), want.Rows())
	}
	for i := 0; i < want.Rows(); i++ {
		for c := range want.Schema.Cols {
			if want.Column(c).Value(i).Compare(got.Column(c).Value(i)) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, c,
					got.Column(c).Value(i), want.Column(c).Value(i))
			}
		}
	}
}

// TestParallelJoinBuildDOPChoice: MinTime must parallelise a hash join
// rooted at scans — by fragmenting the build (build_dop=), the probe
// pipeline (probe_dop=), or both — MinEnergy must not, and both plans
// must join to the same multiset of rows.
func TestParallelJoinBuildDOPChoice(t *testing.T) {
	w := newWorld(t, 40000, 50)
	w.env.Cores = 8
	w.env.ScanBW *= 8
	w.env.PageLatency /= 50

	q := func() *Query {
		return &Query{
			Tables: []string{"f", "d"},
			Rels:   map[string]string{"f": "fact", "d": "dim"},
			Preds: []PredIR{
				{Left: col("f", "f_dim"), Op: exec.Eq, Right: col("d", "d_key"), IsJoin: true},
			},
			Outputs: []OutputIR{
				{Expr: &ExprIR{Col: &ColRef{Table: "f", Col: "f_key"}}, As: "k"},
				{Expr: &ExprIR{Col: &ColRef{Table: "d", Col: "d_name"}}, As: "name"},
			},
			Limit: -1,
		}
	}
	fast, err := Optimize(q(), w.cat, w.env, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fast.Explain(), "build_dop=") && !strings.Contains(fast.Explain(), "probe_dop=") {
		t.Fatalf("MinTime kept the join serial on an 8-core env:\n%s", fast.Explain())
	}
	lean, err := Optimize(q(), w.cat, w.env, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(lean.Explain(), "build_dop=") || strings.Contains(lean.Explain(), "probe_dop=") {
		t.Fatalf("MinEnergy bought a parallel join:\n%s", lean.Explain())
	}

	count := func(tab *table.Table) (int, float64) {
		var ks float64
		for i := 0; i < tab.Rows(); i++ {
			ks += float64(tab.Column(0).I[i])
		}
		return tab.Rows(), ks
	}
	gotN, gotK := count(w.execute(t, fast))
	wantN, wantK := count(w.execute(t, lean))
	if gotN != wantN || gotK != wantK {
		t.Fatalf("parallel build result (%d, %v) != serial (%d, %v)", gotN, gotK, wantN, wantK)
	}
}
