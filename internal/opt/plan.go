package opt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"energydb/internal/exec"
)

// Variant is one physical placement of a relation (e.g. "col/lz",
// "col/raw", "row/raw"). A relation may offer several; access-path
// selection chooses among them per query and per objective — this choice
// alone reproduces the Figure 2 flip.
type Variant struct {
	Name string
	ST   *exec.StoredTable
}

// Placement is everything the optimizer knows about one relation.
type Placement struct {
	Variants []Variant
	Stats    *TableStats
}

// Catalog maps relation names to placements.
type Catalog struct {
	rels map[string]*Placement
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{rels: make(map[string]*Placement)} }

// Add registers a relation.
func (c *Catalog) Add(name string, p *Placement) { c.rels[name] = p }

// Get returns a relation's placement.
func (c *Catalog) Get(name string) (*Placement, error) {
	p, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("opt: unknown relation %q", name)
	}
	return p, nil
}

// Names lists registered relations, sorted: callers emit the list (plan
// diagnostics, catalogs in explain output), so map order must not leak.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PhysNode is a node of a physical plan: it knows its output columns, its
// estimated cardinality, its cumulative dual cost, and how to build the
// executable operator tree.
type PhysNode interface {
	Columns() []ColRef
	Card() float64
	RowBytes() float64
	Cost() Cost
	// MaxDOP reports the widest degree of parallelism this subtree will
	// use — the cores it can actually occupy at once. Admission returns
	// the unused remainder of a query's grant once the plan is chosen, so
	// an under-report here would oversubscribe the free pool.
	MaxDOP() int
	Build(ctx *exec.Ctx) (exec.Operator, error)
	explain(b *strings.Builder, indent string)
}

// colIndex locates a ColRef in a node's output, or -1.
func colIndex(cols []ColRef, c ColRef) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}

// fragPipeline is a compiled set of parallel fragment pipelines sharing
// one morsel dispenser, plus a Spawn hook that constructs one more
// identical fragment over the same dispenser — the mid-pipeline widening
// path (exec.Parallel.Spawn / exec.HashAgg.Spawn) uses it to absorb
// re-granted cores into a running exchange without restarting the query.
type fragPipeline struct {
	Frags []exec.Operator
	Queue *exec.Morsels
	Spawn func() (exec.Operator, error)
}

// fragSource is implemented by physical nodes that can compile themselves
// into dop parallel fragment pipelines sharing one morsel dispenser, so
// exchange consumers — the Parallel streaming merge, partitioned
// aggregation and partitioned join builds — can parallelise the whole
// pipeline above the scan rather than just the scan itself: scans,
// filters, projections and hash-join probe sides all fragment. Fewer
// fragments than dop may come back when the table has too few blocks.
type fragSource interface {
	BuildFragments(ctx *exec.Ctx, dop int) (*fragPipeline, error)
}

// wrapFrags applies a per-fragment operator constructor over every
// fragment of a child pipeline and composes it into the Spawn hook, so
// the whole wrapped pipeline — not just the scan — runs inside each
// present and future worker.
func wrapFrags(fp *fragPipeline, wrap func(in exec.Operator) (exec.Operator, error)) (*fragPipeline, error) {
	for i, f := range fp.Frags {
		w, err := wrap(f)
		if err != nil {
			return nil, err
		}
		fp.Frags[i] = w
	}
	inner := fp.Spawn
	if inner != nil {
		fp.Spawn = func() (exec.Operator, error) {
			f, err := inner()
			if err != nil || f == nil {
				return nil, err
			}
			return wrap(f)
		}
	}
	return fp, nil
}

// PScan scans one placement variant with pushed-down predicates, possibly
// as a DOP-way parallel morsel-driven scan.
type PScan struct {
	Alias   string
	Rel     string
	Variant Variant
	Read    []int // source schema column indexes fetched
	Emit    []int // positions within Read forming the output
	Preds   []PredIR
	DOP     int // degree of parallelism; <= 1 builds the serial scan

	cols []ColRef
	card float64
	cost Cost
}

// Columns implements PhysNode.
func (s *PScan) Columns() []ColRef { return s.cols }

// Card implements PhysNode.
func (s *PScan) Card() float64 { return s.card }

// RowBytes implements PhysNode.
func (s *PScan) RowBytes() float64 {
	var w float64
	for _, e := range s.Emit {
		w += float64(s.Variant.ST.Tab.Schema.Cols[s.Read[e]].Width)
	}
	return w
}

// Cost implements PhysNode.
func (s *PScan) Cost() Cost { return s.cost }

// MaxDOP implements PhysNode.
func (s *PScan) MaxDOP() int { return max(1, s.DOP) }

// Build implements PhysNode. DOP > 1 builds DOP scan fragments sharing one
// morsel dispenser under a Parallel merge; each fragment gets its own
// predicate instance (predicates carry evaluation scratch).
func (s *PScan) Build(ctx *exec.Ctx) (exec.Operator, error) {
	dop := s.DOP
	if nb := s.Variant.ST.NumBlocks(); dop > nb {
		dop = nb
	}
	if dop > 1 {
		fp, err := s.BuildFragments(ctx, dop)
		if err != nil {
			return nil, err
		}
		par := exec.NewParallel(fp.Frags, fp.Queue)
		par.Spawn = fp.Spawn
		return par, nil
	}
	if s.Variant.ST.Layout == exec.ColumnMajor {
		pred, err := s.execPred()
		if err != nil {
			return nil, err
		}
		return exec.NewColumnScan(s.Variant.ST, s.Read, s.Emit, pred), nil
	}
	rowPred, err := s.execPredFull()
	if err != nil {
		return nil, err
	}
	rs := exec.NewRowScan(s.Variant.ST, s.rowEmit(), rowPred)
	rs.Window = 4 // planner scans are big: pipeline with readahead
	return rs, nil
}

// rowEmit maps Emit positions (within Read) to full source schema
// positions, which is what row scans project by.
func (s *PScan) rowEmit() []int {
	emit := make([]int, len(s.Emit))
	for i, e := range s.Emit {
		emit[i] = s.Read[e]
	}
	return emit
}

// BuildFragments implements fragSource: dop scan fragments sharing one
// fresh morsel dispenser, each with its own predicate instance (predicates
// carry evaluation scratch). The caller owns wiring them under an
// exchange — a Parallel merge, a partitioned aggregation or a partitioned
// join build — and resetting the dispenser on re-open.
func (s *PScan) BuildFragments(ctx *exec.Ctx, dop int) (*fragPipeline, error) {
	if nb := s.Variant.ST.NumBlocks(); dop > nb {
		dop = nb
	}
	if dop < 1 {
		dop = 1
	}
	queue := exec.NewMorsels(s.Variant.ST.NumBlocks(), 0)
	mk := func() (exec.Operator, error) {
		if s.Variant.ST.Layout == exec.ColumnMajor {
			pred, err := s.execPred()
			if err != nil {
				return nil, err
			}
			cs := exec.NewColumnScan(s.Variant.ST, s.Read, s.Emit, pred)
			cs.Morsels = queue
			return cs, nil
		}
		rowPred, err := s.execPredFull()
		if err != nil {
			return nil, err
		}
		rs := exec.NewRowScan(s.Variant.ST, s.rowEmit(), rowPred)
		rs.Window = 2 // per-fragment readahead; dop fragments stream at once
		rs.Morsels = queue
		return rs, nil
	}
	frags := make([]exec.Operator, dop)
	for i := range frags {
		f, err := mk()
		if err != nil {
			return nil, err
		}
		frags[i] = f
	}
	return &fragPipeline{Frags: frags, Queue: queue, Spawn: mk}, nil
}

// execPred translates the pushed predicates to positions within Read.
func (s *PScan) execPred() (exec.Pred, error) {
	return s.buildPred(func(col string) (int, error) {
		srcIdx := s.Variant.ST.Tab.Schema.ColIndex(col)
		for i, r := range s.Read {
			if r == srcIdx {
				return i, nil
			}
		}
		return 0, fmt.Errorf("opt: predicate column %q not fetched", col)
	})
}

// execPredFull translates predicates to full source schema positions.
func (s *PScan) execPredFull() (exec.Pred, error) {
	return s.buildPred(func(col string) (int, error) {
		i := s.Variant.ST.Tab.Schema.ColIndex(col)
		if i < 0 {
			return 0, fmt.Errorf("opt: unknown predicate column %q", col)
		}
		return i, nil
	})
}

func (s *PScan) buildPred(pos func(string) (int, error)) (exec.Pred, error) {
	if len(s.Preds) == 0 {
		return nil, nil
	}
	var terms []exec.Pred
	for _, p := range s.Preds {
		i, err := pos(p.Left.Col)
		if err != nil {
			return nil, err
		}
		if p.IsJoin {
			j, err := pos(p.Right.Col)
			if err != nil {
				return nil, err
			}
			terms = append(terms, &exec.ColCol{Left: i, Right: j, Op: p.Op})
			continue
		}
		terms = append(terms, &exec.ColConst{Col: i, Op: p.Op, Val: p.Val})
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &exec.And{Preds: terms}, nil
}

func (s *PScan) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sscan %s (%s) cols=%d rows≈%.0f %v", indent, s.Alias, s.Variant.Name, len(s.Emit), s.card, s.cost)
	if s.DOP > 1 {
		fmt.Fprintf(b, " dop=%d", s.DOP)
	}
	for _, p := range s.Preds {
		fmt.Fprintf(b, " [%v]", p)
	}
	b.WriteByte('\n')
}

// PJoin is a binary join (hash or block nested-loop).
type PJoin struct {
	Algo     string   // "hash" or "nl"
	Left     PhysNode // build (hash) or outer (nl)
	Right    PhysNode // probe (hash) or inner (nl)
	LeftCol  int
	RightCol int
	Pred     PredIR // the equality predicate this join applies
	BuildDOP int    // hash only: fragment the build pipeline this many ways; <= 1 serial
	ProbeDOP int    // hash only: fragment the probe pipeline this many ways; <= 1 serial

	cols []ColRef
	card float64
	cost Cost
}

// Columns implements PhysNode.
func (j *PJoin) Columns() []ColRef { return j.cols }

// Card implements PhysNode.
func (j *PJoin) Card() float64 { return j.card }

// RowBytes implements PhysNode.
func (j *PJoin) RowBytes() float64 { return j.Left.RowBytes() + j.Right.RowBytes() }

// Cost implements PhysNode.
func (j *PJoin) Cost() Cost { return j.cost }

// MaxDOP implements PhysNode.
func (j *PJoin) MaxDOP() int {
	return max(j.BuildDOP, j.ProbeDOP, j.Left.MaxDOP(), j.Right.MaxDOP())
}

// Build implements PhysNode. A hash join with ProbeDOP > 1 over a
// fragmentable probe side compiles into probe fragments over one shared
// build under a Parallel merge (see BuildFragments). A hash join with
// BuildDOP > 1 over a fragmentable build side compiles the build pipeline
// into fragments under the partitioned build — the fragments
// hash-partition rows by key and the per-partition tables build
// concurrently; the probe routes through the same partitioning.
func (j *PJoin) Build(ctx *exec.Ctx) (exec.Operator, error) {
	if j.Algo == "hash" && j.ProbeDOP > 1 {
		if _, ok := j.Right.(fragSource); ok {
			fp, err := j.BuildFragments(ctx, j.ProbeDOP)
			if err != nil {
				return nil, err
			}
			if len(fp.Frags) > 1 {
				par := exec.NewParallel(fp.Frags, fp.Queue)
				par.Spawn = fp.Spawn
				return par, nil
			}
			// Too few blocks to fragment the probe: fall through and build
			// the serial shape (discarding the unopened fragment set).
		}
	}
	if j.Algo == "hash" && j.BuildDOP > 1 {
		if fs, ok := j.Left.(fragSource); ok {
			fp, err := fs.BuildFragments(ctx, j.BuildDOP)
			if err != nil {
				return nil, err
			}
			if len(fp.Frags) > 1 {
				r, err := j.Right.Build(ctx)
				if err != nil {
					return nil, err
				}
				return exec.NewPartitionedHashJoin(fp.Frags, fp.Queue, r, j.LeftCol, j.RightCol, len(fp.Frags)), nil
			}
		}
	}
	l, err := j.Left.Build(ctx)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Build(ctx)
	if err != nil {
		return nil, err
	}
	if j.Algo == "hash" {
		return exec.NewHashJoin(l, r, j.LeftCol, j.RightCol), nil
	}
	return exec.NewNestedLoopJoin(l, r, j.LeftCol, j.RightCol), nil
}

// sharedBuild compiles the join's build side once for all probe
// fragments: partitioned and fragmented when BuildDOP asks for it and the
// build side can fragment, serial otherwise.
func (j *PJoin) sharedBuild(ctx *exec.Ctx) (*exec.SharedBuild, error) {
	if j.BuildDOP > 1 {
		if ls, ok := j.Left.(fragSource); ok {
			lfp, err := ls.BuildFragments(ctx, j.BuildDOP)
			if err != nil {
				return nil, err
			}
			if len(lfp.Frags) > 1 {
				return exec.NewSharedBuild(nil, lfp.Frags, lfp.Queue, j.LeftCol, len(lfp.Frags)), nil
			}
		}
	}
	l, err := j.Left.Build(ctx)
	if err != nil {
		return nil, err
	}
	return exec.NewSharedBuild(l, nil, nil, j.LeftCol, 1), nil
}

// BuildFragments implements fragSource for the probe side of a hash join:
// the probe pipeline fragments over the shared morsel dispenser and every
// fragment probes one shared build state, run once by the first fragment
// to open (exec.SharedBuild). Probe and join-output CPU thereby run
// inside the fragments at the swept DOP; build-side parallelism composes
// via BuildDOP.
func (j *PJoin) BuildFragments(ctx *exec.Ctx, dop int) (*fragPipeline, error) {
	if j.Algo != "hash" {
		return nil, fmt.Errorf("opt: %s join cannot fragment its probe side", j.Algo)
	}
	rs, ok := j.Right.(fragSource)
	if !ok {
		return nil, fmt.Errorf("opt: probe input %T cannot fragment", j.Right)
	}
	fp, err := rs.BuildFragments(ctx, dop)
	if err != nil {
		return nil, err
	}
	sb, err := j.sharedBuild(ctx)
	if err != nil {
		return nil, err
	}
	return wrapFrags(fp, func(in exec.Operator) (exec.Operator, error) {
		return exec.NewProber(sb, in, j.RightCol), nil
	})
}

func (j *PJoin) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%s%s join on L.%d = R.%d rows≈%.0f %v", indent, j.Algo, j.LeftCol, j.RightCol, j.card, j.cost)
	if j.BuildDOP > 1 {
		fmt.Fprintf(b, " build_dop=%d", j.BuildDOP)
	}
	if j.ProbeDOP > 1 {
		fmt.Fprintf(b, " probe_dop=%d", j.ProbeDOP)
	}
	b.WriteByte('\n')
	j.Left.explain(b, indent+"  ")
	j.Right.explain(b, indent+"  ")
}

// PFilter applies residual predicates above a join.
type PFilter struct {
	In    PhysNode
	Preds []PredIR

	card float64
	cost Cost
}

// Columns implements PhysNode.
func (f *PFilter) Columns() []ColRef { return f.In.Columns() }

// Card implements PhysNode.
func (f *PFilter) Card() float64 { return f.card }

// RowBytes implements PhysNode.
func (f *PFilter) RowBytes() float64 { return f.In.RowBytes() }

// Cost implements PhysNode.
func (f *PFilter) Cost() Cost { return f.cost }

// MaxDOP implements PhysNode.
func (f *PFilter) MaxDOP() int { return f.In.MaxDOP() }

// Build implements PhysNode.
func (f *PFilter) Build(ctx *exec.Ctx) (exec.Operator, error) {
	in, err := f.In.Build(ctx)
	if err != nil {
		return nil, err
	}
	return f.wrap(in)
}

// wrap puts this filter over one input operator with a fresh predicate
// instance (predicates carry evaluation scratch, so fragments must not
// share one).
func (f *PFilter) wrap(in exec.Operator) (exec.Operator, error) {
	cols := f.In.Columns()
	var terms []exec.Pred
	for _, p := range f.Preds {
		li := colIndex(cols, p.Left)
		if li < 0 {
			return nil, fmt.Errorf("opt: residual column %v not in scope", p.Left)
		}
		if p.IsJoin {
			ri := colIndex(cols, p.Right)
			if ri < 0 {
				return nil, fmt.Errorf("opt: residual column %v not in scope", p.Right)
			}
			terms = append(terms, &exec.ColCol{Left: li, Right: ri, Op: p.Op})
		} else {
			terms = append(terms, &exec.ColConst{Col: li, Op: p.Op, Val: p.Val})
		}
	}
	var pred exec.Pred = &exec.And{Preds: terms}
	if len(terms) == 1 {
		pred = terms[0]
	}
	return &exec.Filter{In: in, Pred: pred}, nil
}

// BuildFragments implements fragSource: every fragment of the child
// pipeline gets its own Filter with a fresh predicate instance, so the
// residual filter's per-row CPU runs inside the fragments at the swept
// DOP instead of as a serial stage above the exchange.
func (f *PFilter) BuildFragments(ctx *exec.Ctx, dop int) (*fragPipeline, error) {
	fs, ok := f.In.(fragSource)
	if !ok {
		return nil, fmt.Errorf("opt: filter input %T cannot fragment", f.In)
	}
	fp, err := fs.BuildFragments(ctx, dop)
	if err != nil {
		return nil, err
	}
	return wrapFrags(fp, f.wrap)
}

func (f *PFilter) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sfilter rows≈%.0f %v", indent, f.card, f.cost)
	for _, p := range f.Preds {
		fmt.Fprintf(b, " [%v]", p)
	}
	b.WriteByte('\n')
	f.In.explain(b, indent+"  ")
}

// PProject evaluates scalar expressions.
type PProject struct {
	In    PhysNode
	Exprs []*ExprIR
	Names []string

	cols []ColRef
	cost Cost
}

// Columns implements PhysNode.
func (p *PProject) Columns() []ColRef { return p.cols }

// Card implements PhysNode.
func (p *PProject) Card() float64 { return p.In.Card() }

// RowBytes implements PhysNode.
func (p *PProject) RowBytes() float64 { return float64(8 * len(p.Exprs)) }

// Cost implements PhysNode.
func (p *PProject) Cost() Cost { return p.cost }

// MaxDOP implements PhysNode.
func (p *PProject) MaxDOP() int { return p.In.MaxDOP() }

// Build implements PhysNode.
func (p *PProject) Build(ctx *exec.Ctx) (exec.Operator, error) {
	in, err := p.In.Build(ctx)
	if err != nil {
		return nil, err
	}
	return p.wrap(in)
}

// wrap puts this projection over one input operator with fresh scalar
// instances (expression trees are stateless today, but fragments must not
// share operators regardless).
func (p *PProject) wrap(in exec.Operator) (exec.Operator, error) {
	cols := p.In.Columns()
	exprs := make([]exec.Scalar, len(p.Exprs))
	for i, e := range p.Exprs {
		ex, err := buildScalar(e, cols)
		if err != nil {
			return nil, err
		}
		exprs[i] = ex
	}
	return exec.NewProject(in, exprs, p.Names), nil
}

// BuildFragments implements fragSource: the child's fragments each get
// their own copy of the projection, so the whole scan→project pipeline
// runs inside every worker.
func (p *PProject) BuildFragments(ctx *exec.Ctx, dop int) (*fragPipeline, error) {
	fs, ok := p.In.(fragSource)
	if !ok {
		return nil, fmt.Errorf("opt: project input %T cannot fragment", p.In)
	}
	fp, err := fs.BuildFragments(ctx, dop)
	if err != nil {
		return nil, err
	}
	return wrapFrags(fp, p.wrap)
}

func buildScalar(e *ExprIR, cols []ColRef) (exec.Scalar, error) {
	switch {
	case e.Col != nil:
		i := colIndex(cols, *e.Col)
		if i < 0 {
			return nil, fmt.Errorf("opt: column %v not in scope", *e.Col)
		}
		return &exec.ColRef{Col: i}, nil
	case e.Const != nil:
		return &exec.Const{Val: *e.Const}, nil
	default:
		l, err := buildScalar(e.L, cols)
		if err != nil {
			return nil, err
		}
		r, err := buildScalar(e.R, cols)
		if err != nil {
			return nil, err
		}
		return &exec.Arith{Op: e.Op, L: l, R: r}, nil
	}
}

func (p *PProject) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sproject %d exprs %v\n", indent, len(p.Exprs), p.cost)
	p.In.explain(b, indent+"  ")
}

// PAgg groups and aggregates.
type PAgg struct {
	In      PhysNode
	Group   []int // child positions
	Aggs    []exec.AggSpec
	AggRefs []ColRef // output refs for aggregate columns
	DOP     int      // fragment the input pipeline this many ways; <= 1 serial

	cols []ColRef
	card float64
	cost Cost
}

// Columns implements PhysNode.
func (a *PAgg) Columns() []ColRef { return a.cols }

// Card implements PhysNode.
func (a *PAgg) Card() float64 { return a.card }

// RowBytes implements PhysNode.
func (a *PAgg) RowBytes() float64 { return float64(8 * (len(a.Group) + len(a.Aggs))) }

// Cost implements PhysNode.
func (a *PAgg) Cost() Cost { return a.cost }

// MaxDOP implements PhysNode.
func (a *PAgg) MaxDOP() int { return max(a.DOP, a.In.MaxDOP()) }

// Build implements PhysNode. DOP > 1 over a fragmentable input compiles
// the whole input pipeline into fragments under the partitioned parallel
// aggregation (thread-local partial tables, partition-wise merge).
func (a *PAgg) Build(ctx *exec.Ctx) (exec.Operator, error) {
	if a.DOP > 1 {
		if fs, ok := a.In.(fragSource); ok {
			fp, err := fs.BuildFragments(ctx, a.DOP)
			if err != nil {
				return nil, err
			}
			if len(fp.Frags) > 1 {
				ha := exec.NewPartitionedHashAgg(fp.Frags, fp.Queue, a.Group, a.Aggs)
				ha.Spawn = fp.Spawn
				return ha, nil
			}
		}
	}
	in, err := a.In.Build(ctx)
	if err != nil {
		return nil, err
	}
	return exec.NewHashAgg(in, a.Group, a.Aggs), nil
}

func (a *PAgg) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sagg groups≈%.0f aggs=%d %v", indent, a.card, len(a.Aggs), a.cost)
	if a.DOP > 1 {
		fmt.Fprintf(b, " dop=%d", a.DOP)
	}
	b.WriteByte('\n')
	a.In.explain(b, indent+"  ")
}

// PSort orders rows.
type PSort struct {
	In   PhysNode
	Keys []exec.SortKey

	cost Cost
}

// Columns implements PhysNode.
func (s *PSort) Columns() []ColRef { return s.In.Columns() }

// Card implements PhysNode.
func (s *PSort) Card() float64 { return s.In.Card() }

// RowBytes implements PhysNode.
func (s *PSort) RowBytes() float64 { return s.In.RowBytes() }

// Cost implements PhysNode.
func (s *PSort) Cost() Cost { return s.cost }

// MaxDOP implements PhysNode.
func (s *PSort) MaxDOP() int { return s.In.MaxDOP() }

// Build implements PhysNode.
func (s *PSort) Build(ctx *exec.Ctx) (exec.Operator, error) {
	in, err := s.In.Build(ctx)
	if err != nil {
		return nil, err
	}
	return &exec.Sort{In: in, Keys: s.Keys}, nil
}

func (s *PSort) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%ssort keys=%d %v\n", indent, len(s.Keys), s.cost)
	s.In.explain(b, indent+"  ")
}

// PLimit truncates output.
type PLimit struct {
	In PhysNode
	N  int64
}

// Columns implements PhysNode.
func (l *PLimit) Columns() []ColRef { return l.In.Columns() }

// Card implements PhysNode.
func (l *PLimit) Card() float64 { return math.Min(float64(l.N), l.In.Card()) }

// RowBytes implements PhysNode.
func (l *PLimit) RowBytes() float64 { return l.In.RowBytes() }

// Cost implements PhysNode.
func (l *PLimit) Cost() Cost { return l.In.Cost() }

// MaxDOP implements PhysNode.
func (l *PLimit) MaxDOP() int { return l.In.MaxDOP() }

// Build implements PhysNode.
func (l *PLimit) Build(ctx *exec.Ctx) (exec.Operator, error) {
	in, err := l.In.Build(ctx)
	if err != nil {
		return nil, err
	}
	return &exec.Limit{In: in, N: l.N}, nil
}

func (l *PLimit) explain(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%slimit %d\n", indent, l.N)
	l.In.explain(b, indent+"  ")
}

// Plan is a costed, buildable physical plan.
type Plan struct {
	Root      PhysNode
	Objective Objective
	// PState is the CPU operating point the plan was priced at (index
	// into Env.PStates; 0 = nominal). PStateName is its label.
	PState     int
	PStateName string
}

// Cost reports the plan's dual cost.
func (p *Plan) Cost() Cost { return p.Root.Cost() }

// Build constructs the executable operator tree.
func (p *Plan) Build(ctx *exec.Ctx) (exec.Operator, error) { return p.Root.Build(ctx) }

// MaxDOP reports the widest degree of parallelism any operator of the
// plan will use — the cores the plan can actually occupy at once. The
// admission controller returns the unused remainder of a query's grant to
// the free pool once the plan is chosen.
func (p *Plan) MaxDOP() int { return p.Root.MaxDOP() }

// Explain renders the plan as an indented tree with per-node costs.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective=%v total=%v", p.Objective, p.Root.Cost())
	if p.PState > 0 {
		fmt.Fprintf(&b, " pstate=%s", p.PStateName)
	}
	b.WriteString("\n")
	p.Root.explain(&b, "")
	return b.String()
}
