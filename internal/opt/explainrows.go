package opt

import (
	"fmt"

	"energydb/internal/table"
)

// This file renders a plan as a relation, so EXPLAIN can flow through
// the session API and the wire protocol like any query result: one row
// per operator in pre-order, the tree shape carried by indentation of
// the op column.

// ExplainSchema is the row shape of Plan.ExplainRows: operator (indented
// by depth), a human-readable detail string, the operator's degree of
// parallelism, the plan's CPU operating point, and the optimizer's
// cumulative cost at that node in milliseconds and joules.
var ExplainSchema = table.NewSchema("explain",
	table.Col("op", table.String),
	table.Col("detail", table.String),
	table.Col("dop", table.Int64),
	table.Col("pstate", table.String),
	table.Col("est_ms", table.Float64),
	table.Col("est_joules", table.Float64),
)

// ExplainRows renders the plan as rows of ExplainSchema. Costs are
// cumulative per node (a node's cost includes its inputs, matching
// Cost()), and every row carries the plan-wide P-state so the relation
// is self-describing even after a slice.
func (p *Plan) ExplainRows() *table.Table {
	out := table.NewTable(ExplainSchema)
	ps := p.PStateName
	if ps == "" {
		ps = "P0"
	}
	var walk func(n PhysNode, indent string)
	row := func(indent, op, detail string, dop int, c Cost) {
		out.AppendRow(
			table.StrVal(indent+op),
			table.StrVal(detail),
			table.IntVal(int64(dop)),
			table.StrVal(ps),
			table.FloatVal(c.Seconds*1000),
			table.FloatVal(c.Joules),
		)
	}
	walk = func(n PhysNode, indent string) {
		switch x := n.(type) {
		case *PScan:
			detail := fmt.Sprintf("%s (%s) rows≈%.0f", x.Alias, x.Variant.Name, x.card)
			for _, pr := range x.Preds {
				detail += fmt.Sprintf(" [%v]", pr)
			}
			row(indent, "scan", detail, x.MaxDOP(), x.cost)
		case *PJoin:
			row(indent, x.Algo+" join",
				fmt.Sprintf("on L.%d = R.%d rows≈%.0f", x.LeftCol, x.RightCol, x.card),
				x.MaxDOP(), x.cost)
			walk(x.Left, indent+"  ")
			walk(x.Right, indent+"  ")
		case *PFilter:
			detail := fmt.Sprintf("rows≈%.0f", x.card)
			for _, pr := range x.Preds {
				detail += fmt.Sprintf(" [%v]", pr)
			}
			row(indent, "filter", detail, x.MaxDOP(), x.cost)
			walk(x.In, indent+"  ")
		case *PProject:
			row(indent, "project", fmt.Sprintf("%d exprs", len(x.Exprs)), x.MaxDOP(), x.cost)
			walk(x.In, indent+"  ")
		case *PAgg:
			row(indent, "agg",
				fmt.Sprintf("groups≈%.0f aggs=%d", x.card, len(x.Aggs)),
				x.MaxDOP(), x.cost)
			walk(x.In, indent+"  ")
		case *PSort:
			row(indent, "sort", fmt.Sprintf("keys=%d", len(x.Keys)), x.MaxDOP(), x.cost)
			walk(x.In, indent+"  ")
		case *PLimit:
			row(indent, "limit", fmt.Sprintf("%d", x.N), x.MaxDOP(), x.In.Cost())
			walk(x.In, indent+"  ")
		default:
			row(indent, fmt.Sprintf("%T", n), "", n.MaxDOP(), n.Cost())
		}
	}
	walk(p.Root, "")
	return out
}
