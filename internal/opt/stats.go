// Package opt is the cost-based query optimizer with *dual* cost models:
// every candidate physical plan is priced in seconds and in joules, and
// plan selection minimises a configurable objective (Time, Energy, or
// energy-delay product).
//
// This is the paper's §4.1 thesis made concrete: "query optimizers will
// need power models to estimate energy costs ... simple models may suffice
// in the same way simple models for device access times work well in
// practice." The energy model here is deliberately simple — marginal watts
// for busy CPU cores and storage, a holding-power rate for operator
// working memory — and the experiments show it is enough to change plans.
package opt

import (
	"energydb/internal/table"
)

// ColStats summarises one column for cardinality estimation.
type ColStats struct {
	NDV int64 // number of distinct values
	Min table.Value
	Max table.Value
}

// TableStats summarises a relation.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// Analyze computes exact statistics over an in-memory table (the simulated
// analogue of ANALYZE; exact because the data plane is in memory anyway).
func Analyze(t *table.Table) *TableStats {
	n := t.Rows()
	st := &TableStats{Rows: int64(n), Cols: make([]ColStats, len(t.Schema.Cols))}
	for ci := range t.Schema.Cols {
		v := t.Column(ci)
		cs := ColStats{}
		switch v.Type.Physical() {
		case table.PhysInt:
			seen := make(map[int64]struct{})
			for i, x := range v.I {
				seen[x] = struct{}{}
				val := table.Value{Type: v.Type, I: x}
				if i == 0 || val.Compare(cs.Min) < 0 {
					cs.Min = val
				}
				if i == 0 || val.Compare(cs.Max) > 0 {
					cs.Max = val
				}
			}
			cs.NDV = int64(len(seen))
		case table.PhysFloat:
			seen := make(map[float64]struct{})
			for i, x := range v.F {
				seen[x] = struct{}{}
				val := table.FloatVal(x)
				if i == 0 || val.Compare(cs.Min) < 0 {
					cs.Min = val
				}
				if i == 0 || val.Compare(cs.Max) > 0 {
					cs.Max = val
				}
			}
			cs.NDV = int64(len(seen))
		default:
			seen := make(map[string]struct{})
			for i, x := range v.S {
				seen[x] = struct{}{}
				val := table.StrVal(x)
				if i == 0 || val.Compare(cs.Min) < 0 {
					cs.Min = val
				}
				if i == 0 || val.Compare(cs.Max) > 0 {
					cs.Max = val
				}
			}
			cs.NDV = int64(len(seen))
		}
		if cs.NDV == 0 {
			cs.NDV = 1
		}
		st.Cols[ci] = cs
	}
	return st
}
