package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestDeviceFaultScript(t *testing.T) {
	f := NewDeviceFault("d0").TransientAt(1.0, 2).LimpAt(2.0, 3.0).FailAt(5.0)

	if err := f.Check(0.5); err != nil {
		t.Fatalf("before any window: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := f.Check(1.0 + float64(i)/10); !errors.Is(err, ErrTransientIO) {
			t.Fatalf("transient %d: %v", i, err)
		}
	}
	if err := f.Check(1.3); err != nil {
		t.Fatalf("after tokens consumed: %v", err)
	}
	if got := f.Stretch(1.5, 2.0); got != 2.0 {
		t.Fatalf("stretch before limp = %v", got)
	}
	if got := f.Stretch(2.5, 2.0); got != 6.0 {
		t.Fatalf("stretch while limping = %v", got)
	}
	if err := f.Check(5.0); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("after death: %v", err)
	}
	if !f.Failed(6.0) || f.Failed(4.9) {
		t.Fatal("Failed() disagrees with the death time")
	}
}

func TestNilDeviceFaultIsInert(t *testing.T) {
	var f *DeviceFault
	if err := f.Check(1); err != nil {
		t.Fatal(err)
	}
	if got := f.Stretch(1, 2.5); got != 2.5 {
		t.Fatalf("stretch = %v", got)
	}
	if f.Failed(1) {
		t.Fatal("nil fault reports failed")
	}
}

func TestIsTransient(t *testing.T) {
	wrapped := fmt.Errorf("scan: %w", fmt.Errorf("dev: %w", ErrTransientIO))
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient not recognised")
	}
	for _, err := range []error{ErrDeviceFailed, ErrDeadlineExceeded, ErrCanceled, ErrMemBudget, ErrCrashed, nil} {
		if IsTransient(err) {
			t.Fatalf("%v classified transient", err)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a, b := NewInjector(7), NewInjector(7)
	for i := 0; i < 16; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed diverged")
		}
	}
	if a.Device("x") != a.Device("x") {
		t.Fatal("Device is not a stable handle")
	}
	if a.Seed() != 7 {
		t.Fatalf("seed = %d", a.Seed())
	}
}
