// Package fault is the deterministic fault-injection layer: typed error
// sentinels shared by every engine layer, per-device fault scripts keyed
// off the simulated clock, and a seeded injector for chaos schedules.
//
// The package sits below hw and storage (it imports only the standard
// library) so that devices, operators, the scheduler, and the session
// layer can all classify failures against one taxonomy without import
// cycles. Fault scripts are pure functions of simulated time plus a
// consumption count, so a given (seed, schedule) always produces
// bit-identical outcomes — the same property the sim kernel guarantees
// for timings and joules.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sentinel errors forming the engine-wide failure taxonomy. Layers wrap
// them (fmt.Errorf with %w, exec.QueryError); callers classify with
// errors.Is.
var (
	// ErrDeviceFailed marks a permanent device death: the device will
	// never serve another request. Not retryable.
	ErrDeviceFailed = errors.New("device failed")

	// ErrTransientIO marks a transient I/O error (a dropped request, a
	// recoverable media error). Retryable: a later attempt may succeed.
	ErrTransientIO = errors.New("transient i/o error")

	// ErrDeadlineExceeded marks a statement cancelled because its
	// deadline passed, whether queued or running.
	ErrDeadlineExceeded = errors.New("deadline exceeded")

	// ErrCanceled marks a statement cancelled by the client (Rows.Close
	// before completion).
	ErrCanceled = errors.New("query canceled")

	// ErrMemBudget marks an operator exceeding Ctx.MemBudgetBytes.
	ErrMemBudget = errors.New("memory budget exceeded")

	// ErrCrashed marks work lost to a whole-engine crash: every
	// in-flight statement at crash time fails with it.
	ErrCrashed = errors.New("engine crashed")
)

// IsTransient reports whether err is worth retrying: only transient I/O
// qualifies. Deadline, cancel, budget, crash, and dead devices are final.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientIO) }

// DeviceFault is a scripted fault schedule for one device. Devices
// consult it on every request via Check (errors) and Stretch (limp-mode
// latency). The zero value injects nothing.
type DeviceFault struct {
	name string

	failAt float64 // permanent death time; +Inf = never

	transients []transientWindow

	limpAt     float64 // latency degradation onset; +Inf = never
	limpFactor float64 // service-time multiplier once limping
}

type transientWindow struct {
	at   float64
	left int // errors remaining to hand out
}

// NewDeviceFault returns an empty fault script for the named device.
func NewDeviceFault(name string) *DeviceFault {
	return &DeviceFault{name: name, failAt: math.Inf(1), limpAt: math.Inf(1)}
}

// Name reports the device name the script targets.
func (f *DeviceFault) Name() string { return f.name }

// FailAt schedules permanent device death: every request at time >= t
// fails with ErrDeviceFailed.
func (f *DeviceFault) FailAt(t float64) *DeviceFault {
	f.failAt = t
	return f
}

// TransientAt arms n transient errors: the first n requests at time >= t
// fail with ErrTransientIO, then the device recovers.
func (f *DeviceFault) TransientAt(t float64, n int) *DeviceFault {
	if n <= 0 {
		panic(fmt.Sprintf("fault: %d transient errors", n))
	}
	f.transients = append(f.transients, transientWindow{at: t, left: n})
	sort.SliceStable(f.transients, func(i, j int) bool {
		return f.transients[i].at < f.transients[j].at
	})
	return f
}

// LimpAt schedules latency degradation ("limp mode"): from time t every
// request's service time is multiplied by factor (> 1).
func (f *DeviceFault) LimpAt(t, factor float64) *DeviceFault {
	if factor < 1 {
		panic(fmt.Sprintf("fault: limp factor %v < 1", factor))
	}
	f.limpAt, f.limpFactor = t, factor
	return f
}

// Check is consulted by the device at the start of each request. It
// returns ErrDeviceFailed after the scripted death time, consumes and
// returns one armed ErrTransientIO if a transient window is open, and
// returns nil otherwise.
func (f *DeviceFault) Check(now float64) error {
	if f == nil {
		return nil
	}
	if now >= f.failAt {
		return fmt.Errorf("fault: %s at t=%.6f: %w", f.name, now, ErrDeviceFailed)
	}
	for i := range f.transients {
		w := &f.transients[i]
		if now >= w.at && w.left > 0 {
			w.left--
			return fmt.Errorf("fault: %s at t=%.6f: %w", f.name, now, ErrTransientIO)
		}
	}
	return nil
}

// Stretch applies limp-mode degradation to a request's service time.
func (f *DeviceFault) Stretch(now, service float64) float64 {
	if f == nil || now < f.limpAt {
		return service
	}
	return service * f.limpFactor
}

// Failed reports whether the device is permanently dead at time now.
func (f *DeviceFault) Failed(now float64) bool {
	return f != nil && now >= f.failAt
}

// Injector owns a set of device fault scripts plus a seeded random
// source for building randomized-but-reproducible chaos schedules. All
// randomness in a chaos run must come from Rand() so the run is a pure
// function of the seed.
type Injector struct {
	seed int64
	rng  *rand.Rand
	devs map[string]*DeviceFault
}

// NewInjector returns an injector whose schedule decisions derive only
// from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
		devs: make(map[string]*DeviceFault),
	}
}

// Seed reports the injector's seed.
func (i *Injector) Seed() int64 { return i.seed }

// Rand exposes the injector's deterministic random source.
func (i *Injector) Rand() *rand.Rand { return i.rng }

// Device returns (creating on first use) the fault script for a device.
func (i *Injector) Device(name string) *DeviceFault {
	f, ok := i.devs[name]
	if !ok {
		f = NewDeviceFault(name)
		i.devs[name] = f
	}
	return f
}
